# NFactor build/test entry points.

GO ?= go

# Packages with shared-state concurrency (worker-pool explorer, solver
# cache, pipeline fan-out) — the race target always covers these.
RACE_PKGS := ./internal/symexec ./internal/solver ./internal/core \
             ./internal/perf ./internal/model ./internal/experiments

.PHONY: all check build test race bench bench-parallel bench-dataplane bench-telemetry alloc vet lint fuzz

all: check

# Default gate: compile, vet, test, the zero-allocation regression
# (telemetry must never put an allocation on the packet path), and
# NFLint over the corpus (sources and synthesized models must be clean).
check: build vet test alloc lint

# NFLint over the embedded corpus: source passes, Table 1 cross-check,
# model passes. Non-zero exit on error-severity findings.
lint:
	$(GO) run ./cmd/nflint

# Short parser fuzz (the CI smoke variant; crashers land in
# internal/lang/testdata/fuzz and become regression seeds).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang

# The steady-state allocation regressions in isolation: AllocsPerRun
# must report 0 allocs/packet with telemetry attached.
alloc:
	$(GO) test -run 'ZeroAlloc' ./internal/dataplane ./internal/telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Data-race check for every concurrent code path. CI-grade variant:
#   go test -race ./...
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The Workers=1 vs Workers=GOMAXPROCS speedup benchmark (unsliced
# snortlite, ~39k paths per run — expect a couple of minutes).
bench-parallel:
	$(GO) test -bench=BenchmarkParallelSpeedup -run=^$$ -benchtime=1x .

# Compiled data plane vs reference interpreter, cross-validated by
# differential fuzzing; refreshes the checked-in BENCH_dataplane.json.
# -workers=1 keeps the per-row timings free of cross-row contention.
bench-dataplane:
	$(GO) run ./cmd/nfbench -exp dataplane -workers 1 -out BENCH_dataplane.json

# Telemetry overhead on the compiled engine (sink on vs off, same warmed
# trace); refreshes the checked-in BENCH_telemetry.json. The acceptance
# bar is <=10% ns/pkt overhead with zero allocations on the packet path.
bench-telemetry:
	$(GO) run ./cmd/nfbench -exp telemetry -workers 1 -out BENCH_telemetry.json
