# NFactor build/test entry points.

GO ?= go

# Packages with shared-state concurrency (worker-pool explorer, solver
# cache, pipeline fan-out) — the race target always covers these.
RACE_PKGS := ./internal/symexec ./internal/solver ./internal/core \
             ./internal/perf ./internal/model ./internal/experiments

.PHONY: all check build test race bench bench-parallel bench-dataplane vet

all: check

# Default gate: compile, vet, test — in that order, so vet failures
# surface before the (slower) test run.
check: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Data-race check for every concurrent code path. CI-grade variant:
#   go test -race ./...
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The Workers=1 vs Workers=GOMAXPROCS speedup benchmark (unsliced
# snortlite, ~39k paths per run — expect a couple of minutes).
bench-parallel:
	$(GO) test -bench=BenchmarkParallelSpeedup -run=^$$ -benchtime=1x .

# Compiled data plane vs reference interpreter, cross-validated by
# differential fuzzing; refreshes the checked-in BENCH_dataplane.json.
# -workers=1 keeps the per-row timings free of cross-row contention.
bench-dataplane:
	$(GO) run ./cmd/nfbench -exp dataplane -workers 1 -out BENCH_dataplane.json
