# NFactor build/test entry points.

GO ?= go

# Packages with shared-state concurrency (worker-pool explorer, solver
# cache, pipeline fan-out) — the race target always covers these.
RACE_PKGS := ./internal/symexec ./internal/solver ./internal/core \
             ./internal/perf ./internal/model ./internal/experiments

.PHONY: all check build test race bench bench-parallel bench-dataplane bench-telemetry alloc vet

all: check

# Default gate: compile, vet, test, and the zero-allocation regression
# (telemetry must never put an allocation on the packet path).
check: build vet test alloc

# The steady-state allocation regressions in isolation: AllocsPerRun
# must report 0 allocs/packet with telemetry attached.
alloc:
	$(GO) test -run 'ZeroAlloc' ./internal/dataplane ./internal/telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Data-race check for every concurrent code path. CI-grade variant:
#   go test -race ./...
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The Workers=1 vs Workers=GOMAXPROCS speedup benchmark (unsliced
# snortlite, ~39k paths per run — expect a couple of minutes).
bench-parallel:
	$(GO) test -bench=BenchmarkParallelSpeedup -run=^$$ -benchtime=1x .

# Compiled data plane vs reference interpreter, cross-validated by
# differential fuzzing; refreshes the checked-in BENCH_dataplane.json.
# -workers=1 keeps the per-row timings free of cross-row contention.
bench-dataplane:
	$(GO) run ./cmd/nfbench -exp dataplane -workers 1 -out BENCH_dataplane.json

# Telemetry overhead on the compiled engine (sink on vs off, same warmed
# trace); refreshes the checked-in BENCH_telemetry.json. The acceptance
# bar is <=10% ns/pkt overhead with zero allocations on the packet path.
bench-telemetry:
	$(GO) run ./cmd/nfbench -exp telemetry -workers 1 -out BENCH_telemetry.json
