# NFactor build/test entry points.

GO ?= go

# Packages with shared-state concurrency (worker-pool explorer, solver
# cache, pipeline fan-out) — the race target always covers these.
RACE_PKGS := ./internal/symexec ./internal/solver ./internal/core \
             ./internal/perf ./internal/model ./internal/experiments

.PHONY: all build test race bench bench-parallel vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Data-race check for every concurrent code path. CI-grade variant:
#   go test -race ./...
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The Workers=1 vs Workers=GOMAXPROCS speedup benchmark (unsliced
# snortlite, ~39k paths per run — expect a couple of minutes).
bench-parallel:
	$(GO) test -bench=BenchmarkParallelSpeedup -run=^$$ -benchtime=1x .
