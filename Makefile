# NFactor build/test entry points.

GO ?= go

# Packages with shared-state concurrency (worker-pool explorer, solver
# cache, pipeline fan-out, sharded data plane) — the race target always
# covers these.
RACE_PKGS := ./internal/symexec ./internal/solver ./internal/core \
             ./internal/perf ./internal/model ./internal/experiments \
             ./internal/trace ./internal/dataplane ./internal/serve \
             ./internal/verify ./internal/obsrv

.PHONY: all check build test race bench bench-parallel bench-dataplane bench-sharding bench-chain bench-telemetry bench-trace bench-verify bench-obsrv alloc vet lint fuzz trace serve verify-net

all: check

# Default gate: compile, vet, test, the zero-allocation regressions
# (telemetry must never put an allocation on the packet path; a disabled
# tracer must add none to symexec stepping), NFLint over the corpus
# (sources and synthesized models must be clean), and the trace smoke
# gate (every corpus NF yields valid Perfetto-loadable JSON).
check: build vet test alloc lint trace

# Trace smoke gate: every corpus NF synthesizes under tracing, exports
# schema-valid Chrome trace-event JSON with all five Algorithm 1 phase
# spans, and every model entry resolves to source provenance (-why).
trace:
	$(GO) test -run 'TestTraceSmoke' -count=1 .

# NFLint over the embedded corpus: source passes, Table 1 cross-check,
# model passes. Non-zero exit on error-severity findings.
lint:
	$(GO) run ./cmd/nflint

# Network verification smoke: the checked-in branching fixtures must
# verify (protected: all invariants hold, exit 0) and refute (breach:
# NFL401 with a concrete witness, exit 1) — the same pair the CI
# verify-smoke job asserts.
verify-net:
	$(GO) run ./cmd/nfverify -topo internal/verify/testdata/protected.json
	! $(GO) run ./cmd/nfverify -topo internal/verify/testdata/breach.json

# Short parser fuzz (the CI smoke variant; crashers land in
# internal/lang/testdata/fuzz and become regression seeds).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang

# Live serving smoke: 10k synthetic packets through the firewall with
# one gated hot swap under load. Verdicts go to stdout (discarded);
# the summary line on stderr must report the swap applied with no
# blocked swaps and no per-packet consistency violations.
serve:
	$(GO) run ./cmd/nfreplay -corpus firewall -serve -gen 10000 \
	    -swap-after 5000 -swap-allow-change > /dev/null

# The steady-state allocation regressions in isolation: AllocsPerRun
# must report 0 allocs/packet with telemetry attached.
alloc:
	$(GO) test -run 'ZeroAlloc|AllocFree' ./internal/dataplane ./internal/telemetry ./internal/trace ./internal/symexec ./internal/obsrv

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Data-race check for every concurrent code path. CI-grade variant:
#   go test -race ./...
race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The Workers=1 vs Workers=GOMAXPROCS speedup benchmark (unsliced
# snortlite, ~39k paths per run — expect a couple of minutes).
bench-parallel:
	$(GO) test -bench=BenchmarkParallelSpeedup -run=^$$ -benchtime=1x .

# Compiled data plane vs reference interpreter, cross-validated by
# differential fuzzing; refreshes the checked-in BENCH_dataplane.json.
# -workers=1 keeps the per-row timings free of cross-row contention.
bench-dataplane:
	$(GO) run ./cmd/nfbench -exp dataplane -workers 1 -out BENCH_dataplane.json

# Sharded data plane scaling (aggregate pkts/sec per shard count, Zipf
# workload, equivalence-gated); refreshes the checked-in
# BENCH_sharding.json. Speedup above 1x needs a multi-core machine — the
# JSON's machine block records what the run had.
bench-sharding:
	$(GO) run ./cmd/nfbench -exp sharding -workers 1 -out BENCH_sharding.json

# Fused service-chain data plane vs sequential per-NF engines vs
# chained interpreters, equivalence-gated by closed-loop differential
# fuzzing; refreshes the checked-in BENCH_chain.json. The acceptance bar
# is fused < sequential on every corpus chain with 0 mismatches.
bench-chain:
	$(GO) run ./cmd/nfbench -exp chain -workers 1 -out BENCH_chain.json

# Telemetry overhead on the compiled engine (sink on vs off, same warmed
# trace); refreshes the checked-in BENCH_telemetry.json. The acceptance
# bar is <=10% ns/pkt overhead with zero allocations on the packet path.
bench-telemetry:
	$(GO) run ./cmd/nfbench -exp telemetry -workers 1 -out BENCH_telemetry.json

# Synthesis tracing overhead (whole pipeline, tracing on vs off, fresh
# solver cache per run); refreshes the checked-in BENCH_trace.json. The
# acceptance bar is <5% overhead enabled, 0% disabled (nil-tracer fast
# path — see TestDisabledTracerSteppingIsAllocFree).
bench-trace:
	$(GO) run ./cmd/nfbench -exp trace -workers 1 -out BENCH_trace.json

# Symbolic network verification vs topology size (chain / diamond /
# fat-tree-8, workers 1 vs 4, cold solver cache each); refreshes the
# checked-in BENCH_verify.json. The acceptance bar is worker_invariant
# true on every row — byte-identical reports at every worker count.
bench-verify:
	$(GO) run ./cmd/nfbench -exp verify -workers 1 -out BENCH_verify.json

# Serving-loop observability overhead (obsrv collectors off vs on vs on
# with a concurrent HTTP scraper cycling every endpoint); refreshes the
# checked-in BENCH_obsrv.json. The acceptance bar is <=5% overhead with
# the scraper attached and zero allocations on the packet path (see
# TestObserveZeroAlloc).
bench-obsrv:
	$(GO) run ./cmd/nfbench -exp obsrv -workers 1 -out BENCH_obsrv.json
