// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablations of the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics reported alongside ns/op:
//
//	loc_orig / loc_slice / loc_path   — the LoC columns of Table 2
//	ep_orig / ep_slice                — the execution-path columns
//	paths, entries, mismatches, …     — per-benchmark notes
package nfactor

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"nfactor/internal/buzz"
	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/experiments"
	"nfactor/internal/interp"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/slice"
	"nfactor/internal/solver"
	"nfactor/internal/statealyzer"
	"nfactor/internal/symexec"
	"nfactor/internal/value"
	"nfactor/internal/verify"
	"nfactor/internal/workload"
)

// --- Table 1: variable categorization ---------------------------------

func BenchmarkTable1_VariableCategorization(b *testing.B) {
	nf := nfs.MustLoad("lb")
	analyzer, err := slice.NewAnalyzer(nf.Prog, "process")
	if err != nil {
		b.Fatal(err)
	}
	pktSlice, err := analyzer.Backward(core.SendStatements(analyzer.Prog))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *statealyzer.Result
	for i := 0; i < b.N; i++ {
		res = statealyzer.Analyze(analyzer, pktSlice)
	}
	b.ReportMetric(float64(len(res.OISVars())), "ois_vars")
	b.ReportMetric(float64(len(res.LogVars())), "log_vars")
}

// --- Table 2: per-NF slicing and symbolic execution -------------------

func benchTable2Slicing(b *testing.B, name string) {
	nf := nfs.MustLoad(name)
	b.ResetTimer()
	var an *core.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		an, err = core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(an.Metrics.LoCOrig), "loc_orig")
	b.ReportMetric(float64(an.Metrics.LoCSlice), "loc_slice")
	b.ReportMetric(float64(an.Metrics.LoCPath), "loc_path")
	b.ReportMetric(float64(an.Metrics.EPSlice), "ep_slice")
}

func BenchmarkTable2_Pipeline_lb(b *testing.B)        { benchTable2Slicing(b, "lb") }
func BenchmarkTable2_Pipeline_balance(b *testing.B)   { benchTable2Slicing(b, "balance") }
func BenchmarkTable2_Pipeline_snortlite(b *testing.B) { benchTable2Slicing(b, "snortlite") }
func BenchmarkTable2_Pipeline_nat(b *testing.B)       { benchTable2Slicing(b, "nat") }
func BenchmarkTable2_Pipeline_firewall(b *testing.B)  { benchTable2Slicing(b, "firewall") }

// seOn measures raw symbolic execution on a prepared program.
func seOn(b *testing.B, an *core.Analysis, prog programChoice, maxPaths int) (paths int, capped bool) {
	b.Helper()
	seOpts := symexec.Options{MaxPaths: maxPaths, ConfigVars: map[string]bool{}, StateVars: map[string]bool{}}
	for _, v := range an.Vars.CfgVars() {
		seOpts.ConfigVars[v] = true
	}
	for _, v := range an.Vars.OISVars() {
		seOpts.StateVars[v] = true
	}
	for _, v := range an.Vars.LogVars() {
		seOpts.StateVars[v] = true
	}
	target := an.SliceProg
	if prog == origProgram {
		target = an.Analyzer.Prog
	}
	b.ResetTimer()
	var res *symexec.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = symexec.Run(target, "process", seOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return len(res.Paths), res.Exhausted
}

type programChoice int

const (
	origProgram programChoice = iota
	sliceProgram
)

func benchSE(b *testing.B, name string, prog programChoice, maxPaths int) {
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	paths, capped := seOn(b, an, prog, maxPaths)
	b.ReportMetric(float64(paths), "paths")
	if capped {
		b.ReportMetric(1, "budget_exhausted")
	}
}

func BenchmarkTable2_SE_Orig_snortlite(b *testing.B)  { benchSE(b, "snortlite", origProgram, 1024) }
func BenchmarkTable2_SE_Slice_snortlite(b *testing.B) { benchSE(b, "snortlite", sliceProgram, 1024) }
func BenchmarkTable2_SE_Orig_balance(b *testing.B)    { benchSE(b, "balance", origProgram, 1024) }
func BenchmarkTable2_SE_Slice_balance(b *testing.B)   { benchSE(b, "balance", sliceProgram, 1024) }
func BenchmarkTable2_SE_Orig_lb(b *testing.B)         { benchSE(b, "lb", origProgram, 1024) }
func BenchmarkTable2_SE_Slice_lb(b *testing.B)        { benchSE(b, "lb", sliceProgram, 1024) }

// --- Figure 6: model extraction for balance ---------------------------

func BenchmarkFigure6_BalanceModel(b *testing.B) {
	nf := nfs.MustLoad("balance")
	b.ResetTimer()
	var an *core.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		an, err = core.Analyze("balance", nf.Prog, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rendered := model.Render(an.Model)
	if len(rendered) == 0 {
		b.Fatal("empty render")
	}
	b.ReportMetric(float64(len(an.Model.Entries)), "entries")
	b.ReportMetric(float64(len(an.Model.Tables())), "config_tables")
}

// --- Accuracy (§5) -----------------------------------------------------

func benchAccuracyDiff(b *testing.B, name string) {
	nf := nfs.MustLoad(name)
	opts := core.Options{}
	an, err := core.Analyze(name, nf.Prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.New(1).RandomTrace(1000)
	b.ResetTimer()
	var res *core.DiffResult
	for i := 0; i < b.N; i++ {
		res, err = an.DiffTest(trace, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Mismatches != 0 {
		b.Fatalf("differential mismatch: %s", res.FirstDiff)
	}
	b.ReportMetric(float64(res.Trials), "trials")
	b.ReportMetric(float64(res.Mismatches), "mismatches")
}

func BenchmarkAccuracy_DiffTest1000_lb(b *testing.B)        { benchAccuracyDiff(b, "lb") }
func BenchmarkAccuracy_DiffTest1000_balance(b *testing.B)   { benchAccuracyDiff(b, "balance") }
func BenchmarkAccuracy_DiffTest1000_snortlite(b *testing.B) { benchAccuracyDiff(b, "snortlite") }
func BenchmarkAccuracy_DiffTest1000_nat(b *testing.B)       { benchAccuracyDiff(b, "nat") }
func BenchmarkAccuracy_DiffTest1000_firewall(b *testing.B)  { benchAccuracyDiff(b, "firewall") }

func BenchmarkAccuracy_PathEquivalence_lb(b *testing.B) {
	nf := nfs.MustLoad("lb")
	opts := core.Options{}
	an, err := core.Analyze("lb", nf.Prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := an.CheckPathEquivalence(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Equivalent() {
			b.Fatal("path sets differ")
		}
	}
}

// --- §4 verification: SE on model vs original -------------------------

func BenchmarkVerification_ModelVsOrig_snortlite(b *testing.B) {
	// Workers=1 keeps the per-row timings faithful (no core contention).
	rows, err := experiments.Verification([]string{"snortlite"}, 1024, experiments.Opts{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rows[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Verification([]string{"snortlite"}, 1024, experiments.Opts{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.OrigPaths), "orig_paths")
	b.ReportMetric(float64(r.ModelPaths), "model_paths")
	b.ReportMetric(r.OrigTime.Seconds()/r.ModelTime.Seconds(), "orig_over_model_time")
}

// --- Parallel exploration + solver cache -------------------------------

// BenchmarkParallelSpeedup_snortlite explores the UNSLICED snortlite
// program (~39k paths) at Workers=1 and Workers=GOMAXPROCS and reports
// wall(1)/wall(N) as "speedup". On a ≥4-core machine the ratio should
// exceed 2×; on fewer cores the ratio is scheduling noise, so the
// benchmark downgrades to determinism-only: the speedup metric is not
// reported there (a meaningless 0.9× would read as a regression). The
// two runs must produce an identical ordered path set — that IS
// asserted, every iteration, on every machine.
func BenchmarkParallelSpeedup_snortlite(b *testing.B) {
	cores := runtime.NumCPU()
	if cores < 4 {
		b.Logf("only %d cores: determinism-only mode, speedup metric suppressed", cores)
	}
	nf := nfs.MustLoad("snortlite")
	an, err := core.Analyze("snortlite", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(workers int) (*symexec.Result, time.Duration) {
		opts := symexec.Options{
			MaxPaths:   65536,
			Workers:    workers,
			Cache:      solver.NewCache(), // fresh per run: no cross-run skew
			ConfigVars: map[string]bool{},
			StateVars:  map[string]bool{},
		}
		for _, v := range an.Vars.CfgVars() {
			opts.ConfigVars[v] = true
		}
		for _, v := range an.Vars.OISVars() {
			opts.StateVars[v] = true
		}
		for _, v := range an.Vars.LogVars() {
			opts.StateVars[v] = true
		}
		start := time.Now()
		res, err := symexec.Run(an.Analyzer.Prog, "process", opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Exhausted {
			b.Fatal("path budget too small for a full exploration")
		}
		return res, time.Since(start)
	}
	par := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res1, t1 := run(1)
		resN, tN := run(par)
		if len(res1.Paths) != len(resN.Paths) {
			b.Fatalf("path count differs: %d (workers=1) vs %d (workers=%d)",
				len(res1.Paths), len(resN.Paths), par)
		}
		for j := range res1.Paths {
			if pathKey(res1.Paths[j]) != pathKey(resN.Paths[j]) {
				b.Fatalf("path %d differs between worker counts", j)
			}
		}
		speedup = t1.Seconds() / tN.Seconds()
	}
	if cores >= 4 {
		b.ReportMetric(speedup, "speedup")
	}
	b.ReportMetric(float64(par), "workers")
}

// BenchmarkSolverCache_snortlite measures the full synthesize-and-verify
// cycle (pipeline + model path-set equivalence) with the solver cache
// isolated per stage vs shared across stages, and reports the shared
// hit rate. A single symbolic execution never repeats a branch query, so
// the win comes from the model-side re-execution and the implication
// checks revisiting the pipeline's conjunctions.
func BenchmarkSolverCache_snortlite(b *testing.B) {
	nf := nfs.MustLoad("snortlite")
	for _, shared := range []bool{false, true} {
		name := "cache=isolated"
		if shared {
			name = "cache=shared"
		}
		b.Run(name, func(b *testing.B) {
			var cache *solver.Cache
			for i := 0; i < b.N; i++ {
				cache = solver.NewCache()
				an, err := core.Analyze("snortlite", nf.Prog, core.Options{Workers: 1, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				checkOpts := core.Options{Workers: 1, Cache: cache}
				if !shared {
					checkOpts.Cache = solver.NewCache()
				}
				rep, err := an.CheckPathEquivalence(checkOpts)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Equivalent() {
					b.Fatal("model not equivalent")
				}
			}
			if shared {
				b.ReportMetric(100*cache.Stats().SatHitRate(), "sat_hit_%")
			}
		})
	}
}

// pathKey canonicalizes one path for cross-run comparison.
func pathKey(p *symexec.Path) string {
	var sb strings.Builder
	for _, c := range p.Conds {
		sb.WriteString(c.Key())
		sb.WriteByte('&')
	}
	for _, s := range p.Sends {
		sb.WriteString("send[" + s.Iface.Key() + "]")
		for _, f := range s.FieldNames() {
			sb.WriteString(f + "=" + s.Fields[f].Key() + ",")
		}
	}
	for _, u := range p.Updates {
		sb.WriteString(u.Name + ":=" + u.Val.Key() + ";")
	}
	return sb.String()
}

// --- model vs program per-packet forwarding cost -----------------------

func BenchmarkForwarding_OriginalProgram_lb(b *testing.B) {
	nf := nfs.MustLoad("lb")
	in, err := interp.New(nf.Prog, "process", interp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.New(3).ClientServerTrace("3.3.3.3", 80, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Process(trace[i%len(trace)].ToValue()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwarding_SynthesizedModel_lb(b *testing.B) {
	nf := nfs.MustLoad("lb")
	an, err := core.Analyze("lb", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.New(3).ClientServerTrace("3.3.3.3", 80, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Process(trace[i%len(trace)].ToValue()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4 applications ---------------------------------------------------

func BenchmarkApplication_ChainReachability(b *testing.B) {
	ids := nfs.MustLoad("snortlite")
	lb := nfs.MustLoad("lb")
	anIDS, err := core.Analyze("snortlite", ids.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	anLB, err := core.Analyze("lb", lb.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	hops := []verify.Hop{{Name: "ids", Model: anIDS.Model}, {Name: "lb", Model: anLB.Model}}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		ws, err := verify.ChainReachable(hops, nil)
		if err != nil {
			b.Fatal(err)
		}
		n = len(ws)
	}
	b.ReportMetric(float64(n), "witnesses")
}

func BenchmarkApplication_ChainCompose(b *testing.B) {
	var models []chain.NamedModel
	for _, name := range []string{"firewall", "snortlite", "lb"} {
		nf := nfs.MustLoad(name)
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, chain.NamedModel{Name: name, Model: an.Model})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orders := chain.Compose(models)
		if len(orders) != 6 {
			b.Fatal("bad order count")
		}
	}
}

func BenchmarkApplication_BuzzGenerate_firewall(b *testing.B) {
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze("firewall", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var covered, total int
	for i := 0; i < b.N; i++ {
		suite, err := buzz.Generate(an.Model, cloneVals(config), cloneVals(state), buzz.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		covered, total = suite.Coverage()
	}
	b.ReportMetric(float64(covered), "covered_entries")
	b.ReportMetric(float64(total), "total_entries")
}

func cloneVals(m map[string]value.Value) map[string]value.Value {
	out := make(map[string]value.Value, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

// --- Ablations ----------------------------------------------------------

// Solver pruning: without feasibility checks, syntactically possible but
// semantically infeasible forks survive and inflate the path count.
func BenchmarkAblation_SolverPruning_off(b *testing.B) {
	benchAblationPruning(b, true)
}

func BenchmarkAblation_SolverPruning_on(b *testing.B) {
	benchAblationPruning(b, false)
}

func benchAblationPruning(b *testing.B, noPruning bool) {
	// Correlated branches: without solver pruning, the contradictory
	// combinations (ttl<10 on one branch, ttl>=10 on the next) survive
	// and the path count squares.
	src := `
func process(pkt) {
    if pkt.ttl < 10 { a = 1; } else { a = 2; }
    if pkt.ttl < 10 { bb = 10; } else { bb = 20; }
    if pkt.ttl >= 10 { c = 100; } else { c = 200; }
    pkt.x = a + bb + c;
    send(pkt);
}`
	nf, err := nfs.FromSource("correlated", src)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{NoPruning: noPruning, MaxPaths: 8192}
	b.ResetTimer()
	var an *core.Analysis
	for i := 0; i < b.N; i++ {
		an, err = core.Analyze("correlated", nf.Prog, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(an.Metrics.EPSlice), "slice_paths")
}

// Path budget: original-program exploration cost grows with the budget
// until exhaustion — the knob behind the ">1000 paths" cell.
func BenchmarkAblation_PathBudget_128(b *testing.B)  { benchAblationBudget(b, 128) }
func BenchmarkAblation_PathBudget_512(b *testing.B)  { benchAblationBudget(b, 512) }
func BenchmarkAblation_PathBudget_2048(b *testing.B) { benchAblationBudget(b, 2048) }

func benchAblationBudget(b *testing.B, budget int) {
	nf := nfs.MustLoad("snortlite")
	opts := core.Options{MaxPaths: budget, MeasureOriginal: true}
	b.ResetTimer()
	var an *core.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		an, err = core.Analyze("snortlite", nf.Prog, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(an.Metrics.EPOrig), "orig_paths")
}

// Loop bound: symbolic loop unrolling depth vs. path count on an
// input-dependent loop (the §3.2 discussion).
func BenchmarkAblation_LoopBound(b *testing.B) {
	src := `
func process(pkt) {
    i = 0;
    while i < pkt.n {
        i = i + 1;
    }
    pkt.iterations = i;
    send(pkt);
}`
	for _, bound := range []int{4, 8, 16} {
		bound := bound
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			nf, err := nfs.FromSource("loopy", src)
			if err != nil {
				b.Fatal(err)
			}
			var an *core.Analysis
			for i := 0; i < b.N; i++ {
				an, err = core.Analyze("loopy", nf.Prog, core.Options{LoopBound: bound})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(an.Metrics.EPSlice), "paths")
		})
	}
}

// Solver micro-benchmarks: the feasibility check is the inner loop of
// path exploration.
func BenchmarkSolver_SatConj_feasible(b *testing.B) {
	lits := []solver.Term{
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: solver.Const{V: value.Int(80)}},
		solver.In{K: solver.Var{Name: "pkt.sip"}, M: solver.MapVar{Name: "m@0"}},
		solver.Bin{Op: ">", X: solver.Var{Name: "pkt.ttl"}, Y: solver.Const{V: value.Int(0)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !solver.SatConj(lits) {
			b.Fatal("should be sat")
		}
	}
}

func BenchmarkSolver_SatConj_infeasible(b *testing.B) {
	x := solver.Var{Name: "x"}
	lits := []solver.Term{
		solver.Bin{Op: "==", X: x, Y: solver.Const{V: value.Int(1)}},
		solver.Bin{Op: "==", X: x, Y: solver.Const{V: value.Int(2)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if solver.SatConj(lits) {
			b.Fatal("should be unsat")
		}
	}
}

// Concrete interpreter throughput on the LB under realistic traffic.
func BenchmarkInterp_LoadBalancer(b *testing.B) {
	nf := nfs.MustLoad("lb")
	in, err := interp.New(nf.Prog, "process", interp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.New(5).ClientServerTrace("3.3.3.3", 80, 512)
	vals := make([]value.Value, len(trace))
	for i, p := range trace {
		vals[i] = p.ToValue()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Process(vals[i%len(vals)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Model minimization cost and effect (extension): entries before/after.
func BenchmarkModelMinimize_snortlite(b *testing.B) {
	nf := nfs.MustLoad("snortlite")
	an, err := core.Analyze("snortlite", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var min *model.Model
	for i := 0; i < b.N; i++ {
		min = model.Minimize(an.Model)
	}
	b.ReportMetric(float64(len(an.Model.Entries)), "entries_before")
	b.ReportMetric(float64(len(min.Entries)), "entries_after")
}

// Multi-step symbolic reachability (extension): proving the firewall's
// inbound-allow entry needs two packets.
func BenchmarkEntryReachable_firewall(b *testing.B) {
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze("firewall", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	_, state, err := an.ConfigAndState(nil)
	if err != nil {
		b.Fatal(err)
	}
	target := -1
	for i := range an.Model.Entries {
		e := &an.Model.Entries[i]
		if !e.Dropped() && len(e.StateMatch) > 0 {
			target = i
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.EntryReachable(an.Model, target, state, 2)
		if err != nil || !res.Reachable {
			b.Fatal("target should be 2-step reachable")
		}
	}
}
