package nfactor

import (
	"fmt"
	"runtime"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/serve"
)

// ChainResult is a composed service chain of analyzed corpus NFs: each
// stage synthesized independently, then fused (or sharded) into one
// data plane. It satisfies the same Replayer/Explainer facade as a
// single Result, so replay loops, telemetry consumers and the serving
// daemon treat chains and single NFs uniformly.
type ChainResult struct {
	names  []string
	stages []chain.NamedModel
}

// AnalyzeChain synthesizes every named corpus NF and composes them in
// order. See ChainCorpusNames for the validated chain specs.
func AnalyzeChain(names []string, opts Options) (*ChainResult, error) {
	stages, err := core.AnalyzeChain(names, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &ChainResult{names: append([]string(nil), names...), stages: stages}, nil
}

// Names returns the stage NF names in chain order.
func (c *ChainResult) Names() []string { return append([]string(nil), c.names...) }

// Replayer builds the unified replay surface over the chain.
// BackendCompiled fuses the chain into one ChainEngine; BackendSharded
// flow-partitions the fused chain across GOMAXPROCS shards (use
// ShardedReplayer for an explicit count). The program and model
// backends have no chain composition and error.
func (c *ChainResult) Replayer(b Backend) (Replayer, error) {
	switch b {
	case BackendCompiled:
		eng, err := dataplane.CompileChain(c.stages)
		if err != nil {
			return nil, err
		}
		return &chainReplayer{eng: eng}, nil
	case BackendSharded:
		return c.ShardedReplayer(runtime.GOMAXPROCS(0))
	default:
		return nil, fmt.Errorf("nfactor: chain replayer supports BackendCompiled and BackendSharded, got %v", b)
	}
}

// ShardedReplayer is Replayer(BackendSharded) with an explicit shard
// count.
func (c *ChainResult) ShardedReplayer(shards int) (Replayer, error) {
	sh, err := dataplane.NewShardedChain(c.stages, shards)
	if err != nil {
		return nil, err
	}
	return &chainReplayer{eng: sh}, nil
}

// DiffTest replays a stimulus through the fused chain and the
// stage-by-stage reference engines in lockstep (the fused-chain
// equivalence gate). A nil trace generates 1000 random packets.
func (c *ChainResult) DiffTest(trace []Packet) (mismatches int, firstDiff string, err error) {
	if trace == nil {
		trace = RandomTrace(1000, 0)
	}
	res, err := dataplane.DiffTestChain(c.stages, trace)
	if err != nil {
		return 0, "", err
	}
	return res.Mismatches, res.FirstDiff, nil
}

// ServeCandidate describes this chain to the serving daemon (see
// NewServer): the initial generation, or a hot-swap candidate.
func (c *ChainResult) ServeCandidate(shards int) ServeCandidate {
	return ServeCandidate{Stages: c.stages, Shards: shards}
}

// chainLike is the shared surface of the fused and sharded chain
// engines.
type chainLike interface {
	Process(*Packet) (*dataplane.ChainOutput, error)
	ProcessExplain(*Packet) (*dataplane.ChainOutput, *PacketTrace, error)
	ChainTelemetry() Snapshot
}

// chainReplayer adapts a chain engine to the Replayer/Explainer facade.
type chainReplayer struct {
	eng chainLike
}

func (c *chainReplayer) Process(pkt *Packet) (Verdict, error) {
	o, err := c.eng.Process(pkt)
	if err != nil {
		return Verdict{}, err
	}
	return chainVerdict(o), nil
}

func (c *chainReplayer) ProcessExplain(pkt *Packet) (Verdict, *PacketTrace, error) {
	o, tr, err := c.eng.ProcessExplain(pkt)
	if err != nil {
		return Verdict{}, tr, err
	}
	return chainVerdict(o), tr, nil
}

func (c *chainReplayer) Snapshot() Snapshot { return c.eng.ChainTelemetry() }

// chainVerdict copies an engine-owned ChainOutput into a caller-owned
// Verdict.
func chainVerdict(o *dataplane.ChainOutput) Verdict {
	v := Verdict{Dropped: o.Dropped}
	for _, s := range o.Sent {
		v.Sent = append(v.Sent, s.Pkt)
		v.Ifaces = append(v.Ifaces, s.Iface)
	}
	return v
}

// ServeCandidate re-exports serve.Candidate: one engine generation for
// the serving daemon — the initial one or a hot-swap candidate. Build
// them with Result.ServeCandidate / ChainResult.ServeCandidate.
type ServeCandidate = serve.Candidate

// ServeCandidate describes this analysis to the serving daemon.
func (r *Result) ServeCandidate(shards int) ServeCandidate {
	return ServeCandidate{Analysis: r.an, Opts: r.opts, Shards: shards}
}
