package nfactor

import (
	"strings"
	"testing"
)

// TestChainFacade drives a service chain through the same
// Replayer/Explainer surface as a single NF: fused and sharded engines
// agree packet for packet, telemetry reports the chain as one logical
// NF, and provenance traces work through the facade.
func TestChainFacade(t *testing.T) {
	cr, err := AnalyzeChain([]string{"dpi", "snortlite"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if names := cr.Names(); len(names) != 2 || names[0] != "dpi" || names[1] != "snortlite" {
		t.Fatalf("names = %v", names)
	}

	trace := RandomTrace(300, 11)
	fused, err := cr.Replayer(BackendCompiled)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := cr.ShardedReplayer(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		fv, err := fused.Process(&trace[i])
		if err != nil {
			t.Fatalf("fused packet %d: %v", i, err)
		}
		sv, err := sharded.Process(&trace[i])
		if err != nil {
			t.Fatalf("sharded packet %d: %v", i, err)
		}
		if fv.Dropped != sv.Dropped || len(fv.Sent) != len(sv.Sent) {
			t.Fatalf("packet %d: fused %s vs sharded %s", i, fv, sv)
		}
	}

	fs, ss := fused.Snapshot(), sharded.Snapshot()
	if fs.Backend != "chain" || ss.Backend != "sharded-chain" {
		t.Errorf("backends = %q / %q", fs.Backend, ss.Backend)
	}
	if fs.Packets != int64(len(trace)) || ss.Packets != int64(len(trace)) {
		t.Errorf("packets = %d / %d, want %d", fs.Packets, ss.Packets, len(trace))
	}
	if fs.Drops != ss.Drops {
		t.Errorf("drops diverge: fused %d, sharded %d", fs.Drops, ss.Drops)
	}

	// Provenance through the facade: both engines explain.
	for _, rp := range []Replayer{fused, sharded} {
		ex, ok := rp.(Explainer)
		if !ok {
			t.Fatalf("%s replayer does not explain", rp.Snapshot().Backend)
		}
		_, tr, err := ex.ProcessExplain(&trace[0])
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil || !strings.Contains(tr.String(), "why") {
			t.Errorf("chain explain trace: %+v", tr)
		}
	}

	// The chain-level differential gate stays clean on the facade.
	if mism, diff, err := cr.DiffTest(trace); err != nil || mism != 0 {
		t.Errorf("chain difftest: mism=%d diff=%q err=%v", mism, diff, err)
	}

	// Backends without a chain composition are rejected, not silently
	// approximated.
	for _, b := range []Backend{BackendProgram, BackendModel} {
		if _, err := cr.Replayer(b); err == nil {
			t.Errorf("%v accepted for a chain", b)
		}
	}
}
