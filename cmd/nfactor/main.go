// Command nfactor analyzes an NF program and prints its synthesized
// forwarding model, variable categorization, slice and metrics.
//
// Usage:
//
//	nfactor [-corpus name | -file prog.nfl] [-config k=v,...] [-show model|vars|slice|source|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nfactor"
)

func main() {
	corpus := flag.String("corpus", "", "analyze a built-in corpus NF (lb, balance, snortlite, nat, firewall)")
	file := flag.String("file", "", "analyze an NFLang source file")
	configFlag := flag.String("config", "", "pin configuration values, e.g. mode=HASH,LB_PORT=8080")
	show := flag.String("show", "all", "what to print: model | vars | slice | source | metrics | fsm | all")
	maxPaths := flag.Int("maxpaths", 4096, "symbolic execution path budget")
	workers := flag.Int("workers", 0, "symbolic execution workers (0 = GOMAXPROCS; the model is identical at any count)")
	check := flag.Bool("check", false, "verify the model: symbolic path-set equivalence against the program (§5)")
	telemetryN := flag.Int("telemetry", 0, "replay N random packets through the compiled engine and print the hit-annotated model plus telemetry counters")
	explainN := flag.Int("explain", 0, "print provenance traces for the first N packets of the -telemetry replay")
	stats := flag.Bool("stats", false, "print performance counters and solver-cache hit rates (implies -check, so the stats cover the full synthesize-and-verify cycle)")
	jsonOut := flag.Bool("json", false, "with -stats: emit the perf counters and phase timers as JSON instead of text")
	lintFlag := flag.Bool("lint", false, "run NFLint on the program and synthesized model and print the diagnostics (exit 1 on error-severity findings)")
	traceFile := flag.String("trace", "", "record the synthesis as a span tree and write Chrome trace-event JSON (open in https://ui.perfetto.dev) to FILE")
	traceTree := flag.Bool("tracetree", false, "record the synthesis trace and print it as an indented text tree")
	why := flag.String("why", "", "print entry-to-source provenance for one model entry index, or 'all'")
	progress := flag.Bool("progress", false, "print live progress lines during synthesis (frontier depth, paths/sec, solver-cache hit rate)")
	list := flag.Bool("list", false, "list the built-in corpus NFs and exit")
	flag.Parse()

	if *list {
		for _, name := range nfactor.CorpusNames() {
			fmt.Println(name)
		}
		return
	}

	if (*corpus == "") == (*file == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -corpus or -file is required")
		fmt.Fprintf(os.Stderr, "corpus NFs: %v\n", nfactor.CorpusNames())
		os.Exit(2)
	}

	opts := nfactor.Options{
		MaxPaths: *maxPaths,
		Workers:  *workers,
		Config:   parseConfig(*configFlag),
		Lint:     *lintFlag,
		Trace:    *traceFile != "" || *traceTree,
	}
	if *progress {
		opts.Progress = os.Stderr
	}

	var res *nfactor.Result
	var err error
	var name string
	if *corpus != "" {
		name = *corpus
		res, err = nfactor.AnalyzeCorpus(*corpus, opts)
	} else {
		name = *file
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nfactor.AnalyzeSource(*file, string(data), opts)
	}
	if err != nil {
		fatal(err)
	}

	if *lintFlag {
		diags := res.Diagnostics()
		fmt.Println("=== lint (NFLint) ===")
		fmt.Print(nfactor.RenderDiagnostics(diags))
		if nfactor.HasLintErrors(diags) {
			os.Exit(1)
		}
	}

	sections := map[string]bool{}
	for _, s := range strings.Split(*show, ",") {
		sections[strings.TrimSpace(s)] = true
	}
	all := sections["all"]

	if all || sections["source"] {
		if src, err := nfactor.CorpusSource(name); err == nil {
			fmt.Println("=== source ===")
			fmt.Println(src)
		}
	}
	if all || sections["vars"] {
		fmt.Println("=== variable categorization (Table 1) ===")
		fmt.Println(res.VariableTable())
	}
	if all || sections["slice"] {
		fmt.Println("=== packet+state slice ===")
		fmt.Println(res.RenderSlice())
	}
	if all || sections["model"] {
		fmt.Println("=== synthesized model (Figure 2a / Figure 6) ===")
		fmt.Println(res.RenderModel())
	}
	if all || sections["fsm"] {
		printed := false
		for _, sv := range res.Model().OISVars {
			if table, _, err := res.FSM(sv); err == nil {
				if !printed {
					fmt.Println("=== state machines (per map state variable) ===")
					printed = true
				}
				fmt.Println(table)
			}
		}
	}
	if all || sections["metrics"] {
		m := res.Metrics()
		fmt.Println("=== metrics ===")
		fmt.Printf("LoC: orig=%d slice=%d path=%d\n", m.LoCOrig, m.LoCSlice, m.LoCPath)
		fmt.Printf("slicing time: %v\n", m.SliceTime)
		fmt.Printf("execution paths (slice): %d  SE time: %v\n", m.EPSlice, m.SETimeSlice)
	}
	if *check || *stats {
		// With -json the check verdict moves to stderr so stdout stays a
		// clean JSON document (`nfactor -show none -stats -json | jq`).
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out, "=== model check ===")
		if err := res.CheckEquivalence(); err != nil {
			fmt.Fprintln(out, err)
		} else {
			fmt.Fprintln(out, "path sets equivalent: model == program")
		}
	}
	if *explainN > *telemetryN {
		*telemetryN = *explainN
	}
	if *telemetryN > 0 {
		if err := runTelemetry(res, *telemetryN, *explainN); err != nil {
			fatal(err)
		}
	}
	if *stats {
		if *jsonOut {
			if err := res.WritePerfJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println("=== perf ===")
			fmt.Print(res.PerfReport())
			cs := res.SolverCacheStats()
			fmt.Printf("solver cache: sat %d/%d hits (%.1f%%), simplify %d/%d hits\n",
				cs.SatHits, cs.SatHits+cs.SatMisses, 100*cs.SatHitRate(),
				cs.SimpHits, cs.SimpHits+cs.SimpMisses)
		}
	}
	if *why != "" {
		if err := runWhy(res, *why); err != nil {
			fatal(err)
		}
	}
	if *traceTree {
		fmt.Println("=== synthesis trace ===")
		fmt.Print(res.TraceTree(true))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "nfactor: wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", *traceFile)
	}
}

// runWhy prints entry-to-source provenance for one entry index or "all".
func runWhy(res *nfactor.Result, sel string) error {
	n := len(res.Model().Entries)
	from, to := 0, n
	if sel != "all" {
		i, err := strconv.Atoi(sel)
		if err != nil {
			return fmt.Errorf("-why wants an entry index or 'all', got %q", sel)
		}
		from, to = i, i+1
	}
	for i := from; i < to; i++ {
		report, err := res.WhyEntry(i)
		if err != nil {
			return err
		}
		fmt.Print(report)
	}
	return nil
}

// runTelemetry replays n random packets through the compiled engine
// behind the unified Replayer API and prints the explain traces for the
// first explainN of them, the telemetry counters, and the model
// annotated with per-entry hit counts.
func runTelemetry(res *nfactor.Result, n, explainN int) error {
	rp, err := res.Replayer(nfactor.BackendCompiled)
	if err != nil {
		return err
	}
	ex, canExplain := rp.(nfactor.Explainer)
	trace := nfactor.RandomTrace(n, 1)
	for i := range trace {
		if i < explainN && canExplain {
			_, tr, err := ex.ProcessExplain(&trace[i])
			if err != nil {
				return fmt.Errorf("packet %d: %w", i+1, err)
			}
			fmt.Printf("--- packet %d ---\n%s", i+1, tr)
			continue
		}
		if _, err := rp.Process(&trace[i]); err != nil {
			return fmt.Errorf("packet %d: %w", i+1, err)
		}
	}
	snap := rp.Snapshot()
	fmt.Printf("=== telemetry (%d random packets) ===\n", n)
	fmt.Print(snap.Report())
	fmt.Println("=== model with hit counters ===")
	fmt.Print(res.RenderModelWithCounters(snap))
	dead, err := res.DeadEntries(snap, 2)
	if err != nil {
		return err
	}
	for _, d := range dead {
		if d.Reachable {
			fmt.Printf("entry %d never hit: reachable (witness %v) — workload coverage gap\n", d.Entry, d.Witness)
		} else {
			fmt.Printf("entry %d never hit: unreachable within 2 packets — likely dead table mass\n", d.Entry)
		}
	}
	return nil
}

func parseConfig(s string) map[string]nfactor.Value {
	if s == "" {
		return nil
	}
	out := map[string]nfactor.Value{}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -config entry %q", kv))
		}
		k, v := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			out[k] = nfactor.Int(n)
		} else if v == "true" || v == "false" {
			out[k] = nfactor.Bool(v == "true")
		} else {
			out[k] = nfactor.Str(v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfactor:", err)
	os.Exit(1)
}
