// Command nfbench regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	nfbench [-exp table1|table2|figure1|figure6|accuracy|verification|all]
//	        [-nfs lb,balance,...] [-maxpaths 1024] [-trials 1000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfactor/internal/experiments"
	"nfactor/internal/nfs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | table2 | figure1 | figure6 | accuracy | verification | all")
	nfsFlag := flag.String("nfs", "", "comma-separated NF subset (default: whole corpus)")
	maxPaths := flag.Int("maxpaths", 1024, "path budget for original-program symbolic execution (the paper's snort run exceeded it)")
	trials := flag.Int("trials", 1000, "random packets per NF in the accuracy experiment")
	seed := flag.Int64("seed", 1, "trace generator seed")
	flag.Parse()

	names := nfs.Names()
	if *nfsFlag != "" {
		names = strings.Split(*nfsFlag, ",")
	}

	run := func(which string) bool { return *exp == "all" || *exp == which }

	if run("table1") {
		out, err := experiments.Table1()
		check(err)
		fmt.Println(out)
	}
	if run("table2") {
		rows, err := experiments.Table2(names, *maxPaths)
		check(err)
		fmt.Println(experiments.FormatTable2(rows))
	}
	if run("figure1") {
		out, err := experiments.Figure1Slice()
		check(err)
		fmt.Println(out)
	}
	if run("figure6") {
		out, err := experiments.Figure6()
		check(err)
		fmt.Println("Figure 6: NFactor output for balance")
		fmt.Println(out)
	}
	if run("accuracy") {
		rows, err := experiments.Accuracy(names, *trials, *seed)
		check(err)
		fmt.Println(experiments.FormatAccuracy(rows))
	}
	if run("verification") {
		rows, err := experiments.Verification(names, *maxPaths)
		check(err)
		fmt.Println(experiments.FormatVerification(rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfbench:", err)
		os.Exit(1)
	}
}
