// Command nfbench regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	nfbench [-exp table1|table2|figure1|figure6|accuracy|verification|all]
//	        [-nfs lb,balance,...] [-maxpaths 1024] [-trials 1000]
//	        [-workers N] [-stats]
//
// NF rows run concurrently under -workers (default GOMAXPROCS); results
// are identical at every worker count, but use -workers=1 when the
// per-row timing columns matter — concurrent rows contend for cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfactor/internal/experiments"
	"nfactor/internal/nfs"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | table2 | figure1 | figure6 | accuracy | verification | all")
	nfsFlag := flag.String("nfs", "", "comma-separated NF subset (default: whole corpus)")
	maxPaths := flag.Int("maxpaths", 1024, "path budget for original-program symbolic execution (the paper's snort run exceeded it)")
	trials := flag.Int("trials", 1000, "random packets per NF in the accuracy experiment")
	seed := flag.Int64("seed", 1, "trace generator seed")
	workers := flag.Int("workers", 0, "concurrent NF rows and SE workers (0 = GOMAXPROCS; use 1 for faithful per-row timings)")
	stats := flag.Bool("stats", false, "print aggregated performance counters and solver-cache hit rates")
	flag.Parse()

	names := nfs.Names()
	if *nfsFlag != "" {
		names = strings.Split(*nfsFlag, ",")
	}

	perfSet := perf.New()
	opts := experiments.Opts{
		Workers: *workers,
		Cache:   solver.NewCacheWithPerf(perfSet),
		Perf:    perfSet,
	}

	run := func(which string) bool { return *exp == "all" || *exp == which }

	if run("table1") {
		out, err := experiments.Table1()
		check(err)
		fmt.Println(out)
	}
	if run("table2") {
		rows, err := experiments.Table2(names, *maxPaths, opts)
		check(err)
		fmt.Println(experiments.FormatTable2(rows))
	}
	if run("figure1") {
		out, err := experiments.Figure1Slice()
		check(err)
		fmt.Println(out)
	}
	if run("figure6") {
		out, err := experiments.Figure6()
		check(err)
		fmt.Println("Figure 6: NFactor output for balance")
		fmt.Println(out)
	}
	if run("accuracy") {
		rows, err := experiments.Accuracy(names, *trials, *seed, opts)
		check(err)
		fmt.Println(experiments.FormatAccuracy(rows))
	}
	if run("verification") {
		rows, err := experiments.Verification(names, *maxPaths, opts)
		check(err)
		fmt.Println(experiments.FormatVerification(rows))
	}
	if *stats {
		fmt.Println("=== perf (aggregated across rows) ===")
		fmt.Print(opts.Perf.Report())
		cs := opts.Cache.Stats()
		fmt.Printf("solver cache: sat %d/%d hits (%.1f%%), simplify %d/%d hits\n",
			cs.SatHits, cs.SatHits+cs.SatMisses, 100*cs.SatHitRate(),
			cs.SimpHits, cs.SimpHits+cs.SimpMisses)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfbench:", err)
		os.Exit(1)
	}
}
