// Command nfbench regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	nfbench [-exp table1|table2|figure1|figure6|accuracy|verification|dataplane|sharding|chain|telemetry|trace|obsrv|all]
//	        [-nfs lb,balance,...] [-maxpaths 1024] [-trials 1000]
//	        [-shards 1,2,4,8] [-workers N] [-stats] [-out bench.json]
//
// -exp dataplane measures the compiled match-action engine against the
// reference interpreter on every NF (cross-validated by differential
// fuzzing first); -out additionally records the rows as JSON (the
// checked-in BENCH_dataplane.json is produced this way, via
// `make bench-dataplane`).
//
// -exp sharding measures aggregate throughput of the generalized
// sharded engine (every corpus NF, each -shards count) on a Zipf
// workload, after a closed-loop differential gate against the
// sequential engine; `make bench-sharding` records the rows as
// BENCH_sharding.json. Shard scaling only shows on a multi-core host —
// the machine block in the JSON records what the run had.
//
// -exp chain measures every corpus service chain three ways — fused
// ChainEngine vs a chain of standalone compiled engines with
// materialized hand-offs vs chained reference interpreters — after a
// closed-loop differential pass proved the fused engine equivalent;
// `make bench-chain` records the rows as BENCH_chain.json.
//
// -exp telemetry measures the per-packet cost of the always-on
// telemetry sink on the compiled engine (sink attached vs detached on
// the same warmed trace); `make bench-telemetry` records the rows as
// BENCH_telemetry.json.
//
// -exp trace measures the cost of synthesis-pipeline span tracing
// (whole-pipeline wall time, tracing on vs off, fresh solver cache per
// run); `make bench-trace` records the rows as BENCH_trace.json.
//
// -exp obsrv measures the serving loop's live-observability overhead
// (collectors off vs on vs on with a concurrent HTTP scraper hammering
// /metrics, /coverage, /swaps and /state); `make bench-obsrv` records
// the rows as BENCH_obsrv.json. The acceptance bar is <=5% overhead
// with the scraper attached.
//
// -exp verify measures symbolic network verification (reach/isolation/
// waypoint/loopfree invariants over branching topologies of corpus NF
// models) at 1 worker vs a pool, with solver-cache hit rates and a
// worker-invariance cross-check; `make bench-verify` records the rows
// as BENCH_verify.json.
//
// NF rows run concurrently under -workers (default GOMAXPROCS); results
// are identical at every worker count, but use -workers=1 when the
// per-row timing columns matter — concurrent rows contend for cores.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"nfactor/internal/experiments"
	"nfactor/internal/nfs"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | table2 | figure1 | figure6 | accuracy | verification | dataplane | sharding | chain | telemetry | trace | verify | obsrv | all")
	nfsFlag := flag.String("nfs", "", "comma-separated NF subset (default: whole corpus)")
	maxPaths := flag.Int("maxpaths", 1024, "path budget for original-program symbolic execution (the paper's snort run exceeded it)")
	trials := flag.Int("trials", 1000, "random packets per NF in the accuracy experiment")
	seed := flag.Int64("seed", 1, "trace generator seed")
	shards := flag.String("shards", "1,2,4,8", "shard counts for the sharding experiment")
	workers := flag.Int("workers", 0, "concurrent NF rows and SE workers (0 = GOMAXPROCS; use 1 for faithful per-row timings)")
	stats := flag.Bool("stats", false, "print aggregated performance counters and solver-cache hit rates")
	out := flag.String("out", "", "write the dataplane experiment's rows as JSON to this file")
	flag.Parse()

	names := nfs.Names()
	if *nfsFlag != "" {
		names = strings.Split(*nfsFlag, ",")
	}

	perfSet := perf.New()
	opts := experiments.Opts{
		Workers: *workers,
		Cache:   solver.NewCacheWithPerf(perfSet),
		Perf:    perfSet,
	}

	run := func(which string) bool { return *exp == "all" || *exp == which }

	if run("table1") {
		out, err := experiments.Table1()
		check(err)
		fmt.Println(out)
	}
	if run("table2") {
		rows, err := experiments.Table2(names, *maxPaths, opts)
		check(err)
		fmt.Println(experiments.FormatTable2(rows))
	}
	if run("figure1") {
		out, err := experiments.Figure1Slice()
		check(err)
		fmt.Println(out)
	}
	if run("figure6") {
		out, err := experiments.Figure6()
		check(err)
		fmt.Println("Figure 6: NFactor output for balance")
		fmt.Println(out)
	}
	if run("accuracy") {
		rows, err := experiments.Accuracy(names, *trials, *seed, opts)
		check(err)
		fmt.Println(experiments.FormatAccuracy(rows))
	}
	if run("verification") {
		rows, err := experiments.Verification(names, *maxPaths, opts)
		check(err)
		fmt.Println(experiments.FormatVerification(rows))
	}
	if run("dataplane") {
		rows, err := experiments.Dataplane(names, *trials, *seed, opts)
		check(err)
		fmt.Println(experiments.FormatDataplane(rows))
		if *out != "" {
			check(writeDataplaneJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("sharding") {
		counts, err := parseShards(*shards)
		check(err)
		rows, err := experiments.Sharding(names, *trials, *seed, counts, opts)
		check(err)
		fmt.Println(experiments.FormatSharding(rows))
		if *out != "" && *exp == "sharding" {
			check(writeShardingJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("chain") {
		rows, err := experiments.Chain(*trials, *seed, opts)
		check(err)
		fmt.Println(experiments.FormatChain(rows))
		if *out != "" && *exp == "chain" {
			check(writeChainJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("telemetry") {
		rows, err := experiments.Telemetry(names, *trials, *seed, opts)
		check(err)
		fmt.Println(experiments.FormatTelemetry(rows))
		if *out != "" && *exp == "telemetry" {
			check(writeTelemetryJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("trace") {
		rows, err := experiments.TraceOverhead(names, opts)
		check(err)
		fmt.Println(experiments.FormatTrace(rows))
		if *out != "" && *exp == "trace" {
			check(writeTraceJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("obsrv") {
		rows, err := experiments.Obsrv(names, *trials, *seed, 5)
		check(err)
		fmt.Println(experiments.FormatObsrv(rows))
		if *out != "" && *exp == "obsrv" {
			check(writeObsrvJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if run("verify") {
		rows, err := experiments.VerifyNet(opts)
		check(err)
		fmt.Println(experiments.FormatVerifyNet(rows))
		if *out != "" && *exp == "verify" {
			check(writeVerifyNetJSON(*out, rows))
			fmt.Println("wrote", *out)
		}
	}
	if *stats {
		fmt.Println("=== perf (aggregated across rows) ===")
		fmt.Print(opts.Perf.Report())
		cs := opts.Cache.Stats()
		fmt.Printf("solver cache: sat %d/%d hits (%.1f%%), simplify %d/%d hits\n",
			cs.SatHits, cs.SatHits+cs.SatMisses, 100*cs.SatHitRate(),
			cs.SimpHits, cs.SimpHits+cs.SimpMisses)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfbench:", err)
		os.Exit(1)
	}
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeShardingJSON records the scaling rows plus machine context — the
// cores/gomaxprocs fields say whether shard counts above 1 could run in
// parallel at all.
func writeShardingJSON(path string, rows []experiments.ShardingRow) error {
	doc := struct {
		Description string                    `json:"description"`
		Machine     map[string]any            `json:"machine"`
		Rows        []experiments.ShardingRow `json:"rows"`
	}{
		Description: "Generalized sharded data plane (internal/dataplane.Sharded): aggregate " +
			"pkts/sec per shard count on a Zipf-skewed workload, per NF, measured only after a " +
			"closed-loop differential gate proved the sharded engine equivalent to the " +
			"sequential one (exact for flow-partitioned state, modulo allocator renaming and " +
			"per-flow rotor choice otherwise; see dataplane.Equiv). Speedup is relative to the " +
			"1-shard row. Shards are goroutines: scaling beyond 1x requires cores > 1 in the " +
			"machine block. Regenerate with `make bench-sharding`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeDataplaneJSON records the dataplane rows plus enough machine
// context to interpret them later.
func writeDataplaneJSON(path string, rows []experiments.DataplaneRow) error {
	doc := struct {
		Description string                     `json:"description"`
		Machine     map[string]any             `json:"machine"`
		Rows        []experiments.DataplaneRow `json:"rows"`
	}{
		Description: "Compiled data plane (internal/dataplane) vs the reference model.Instance " +
			"interpreter: amortized ns/packet over the same warmed trace, after a differential " +
			"fuzz pass over that trace confirmed identical outputs and end state. " +
			"Engine numbers are steady-state and allocation-free (see TestZeroAllocSteadyState). " +
			"Regenerate with `make bench-dataplane`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeChainJSON records the chain rows plus machine context,
// mirroring writeDataplaneJSON.
func writeChainJSON(path string, rows []experiments.ChainRow) error {
	doc := struct {
		Description string                 `json:"description"`
		Machine     map[string]any         `json:"machine"`
		Rows        []experiments.ChainRow `json:"rows"`
	}{
		Description: "Fused service-chain data plane (dataplane.CompileChain): one engine for a " +
			"whole NF chain — shared state arena, cross-stage short-circuiting and constant " +
			"folding, no intermediate packet materialization — vs a chain of standalone compiled " +
			"engines handing off materialized packets (how separate NF processes would run) vs " +
			"chained reference interpreters. Amortized ns/packet on the same warmed trace, " +
			"measured only after a closed-loop differential pass (dataplane.DiffTestChain) " +
			"proved the fused engine produces identical verdicts, emitted packets, per-stage " +
			"state and per-stage telemetry. Regenerate with `make bench-chain`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTraceJSON records the tracing-overhead rows plus machine context,
// mirroring writeDataplaneJSON.
func writeTraceJSON(path string, rows []experiments.TraceRow) error {
	doc := struct {
		Description string                 `json:"description"`
		Machine     map[string]any         `json:"machine"`
		Rows        []experiments.TraceRow `json:"rows"`
	}{
		Description: "Cost of synthesis-pipeline span tracing (internal/trace): full-pipeline " +
			"wall time per synthesis with tracing on (one span per Algorithm 1 phase, explored " +
			"state and refined entry) vs off, fresh solver cache per run. The disabled path is " +
			"strictly zero-cost — a nil tracer leaves only nil checks in the exploration loop " +
			"(see TestDisabledTracerSteppingIsAllocFree). Target: <5% overhead enabled. " +
			"Regenerate with `make bench-trace`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeVerifyNetJSON records the network-verification scaling rows.
func writeVerifyNetJSON(path string, rows []experiments.VerifyNetRow) error {
	doc := struct {
		Description string                     `json:"description"`
		Machine     map[string]any             `json:"machine"`
		Rows        []experiments.VerifyNetRow `json:"rows"`
	}{
		Description: "Network verification (internal/verify.SymNetwork): wall time to check " +
			"solver-proved invariants (reach, isolation, waypoint, loopfree) over branching " +
			"topologies of corpus NF models, at 1 worker vs a pool, each on a cold solver " +
			"cache. cache_hit_rate is the fraction of satisfiability decisions answered from " +
			"the memoizing cache in the 1-worker run; worker_invariant asserts the two runs " +
			"produced byte-identical reports. Regenerate with `make bench-verify`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTelemetryJSON records the telemetry-overhead rows plus machine
// context, mirroring writeDataplaneJSON.
func writeObsrvJSON(path string, rows []experiments.ObsrvRow) error {
	doc := struct {
		Description string                 `json:"description"`
		Machine     map[string]any         `json:"machine"`
		Rows        []experiments.ObsrvRow `json:"rows"`
	}{
		Description: "Serving-loop observability overhead: amortized ns/packet through a live " +
			"serve.Server with the obsrv collectors off vs on (NFL103 gap-hit matchers, windowed " +
			"verdict-mix/top-K drift, snapshot publishing) vs on with a concurrent HTTP scraper " +
			"cycling /metrics, /coverage, /swaps and /state every 100ms — two orders of magnitude " +
			"hotter than a production Prometheus poll. 5 interleaved reps; ns/pkt columns are " +
			"per-column minima, overhead percentages are minima of per-rep paired ratios " +
			"(back-to-back runs, so machine-load drift divides out). The " +
			"acceptance bar is <=5% overhead with the scraper attached (ScrapePct). The packet " +
			"path stays allocation-free with collectors on (see TestObserveZeroAlloc). " +
			"Regenerate with `make bench-obsrv`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeTelemetryJSON(path string, rows []experiments.TelemetryRow) error {
	doc := struct {
		Description string                     `json:"description"`
		Machine     map[string]any             `json:"machine"`
		Rows        []experiments.TelemetryRow `json:"rows"`
	}{
		Description: "Per-packet cost of the always-on telemetry sink on the compiled engine: " +
			"amortized ns/packet over the same warmed trace with the sink attached (default " +
			"1-in-16 latency sampling) vs detached. The packet path stays allocation-free with " +
			"telemetry on (see TestTelemetryZeroAlloc). Regenerate with `make bench-telemetry`.",
		Machine: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
