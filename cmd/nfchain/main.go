// Command nfchain demonstrates service-chain policy composition (§4):
// it derives each NF's matched/modified header fields from its
// synthesized model and ranks chain orders by ordering hazards, answering
// the paper's question — {FW, IDS, LB} or {FW, LB, IDS}?
//
// Usage:
//
//	nfchain [-nfs firewall,snortlite,lb] [-all] [-fast [-n 4000]]
//
// The NFs are analyzed concurrently (one synthesis pipeline per NF). By
// default the hazard-graph composer emits only hazard-minimal orders;
// -all enumerates every permutation (n ≤ 5). -fast additionally fuses
// the best order into a single chain data plane (dataplane.CompileChain),
// pushes a sample trace through it and prints per-stage entry hit
// counts — the model-to-wire round trip in one command.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/workload"
)

func main() {
	nfsFlag := flag.String("nfs", "firewall,snortlite,lb", "NFs to compose")
	all := flag.Bool("all", false, "enumerate every order (O(n!), n <= 5) instead of hazard-minimal orders")
	fast := flag.Bool("fast", false, "fuse the best order into one data plane and run a sample trace")
	nPkts := flag.Int("n", 4000, "sample trace size for -fast")
	flag.Parse()

	names := strings.Split(*nfsFlag, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	models, err := core.AnalyzeChain(names, core.Options{})
	check(err)
	for _, nm := range models {
		fmt.Printf("%-10s matches on %v, rewrites %v\n",
			nm.Name, chain.MatchedFields(nm.Model), chain.ModifiedFields(nm.Model))
	}

	fmt.Println("\nordering hazards:")
	conflicts := chain.Conflicts(models)
	if len(conflicts) == 0 {
		fmt.Println("  none — all orders equivalent")
	}
	for _, c := range conflicts {
		fmt.Printf("  %s\n", c)
	}

	var orders []chain.Order
	if *all {
		if len(models) > 5 {
			fmt.Fprintf(os.Stderr, "nfchain: -all enumerates %d! orders; use the default hazard-graph composer for chains this long\n", len(models))
			os.Exit(1)
		}
		orders = chain.ComposeAll(models)
		fmt.Println("\nall compositions (best first):")
	} else {
		orders = chain.Compose(models)
		fmt.Printf("\nhazard-minimal compositions (at most %d):\n", chain.MaxOrders)
	}
	for i, o := range orders {
		marker := "  "
		if len(o.Hazards) == 0 {
			marker = "✓ "
		}
		fmt.Printf("%s%d. %-35s hazards: %d\n", marker, i+1, strings.Join(o.Names, " → "), len(o.Hazards))
	}

	if *fast {
		runFast(models, orders[0], *nPkts)
	}
}

// runFast fuses the chain in the given order and pushes a sample trace
// through it, reporting per-stage verdicts and entry hit counts.
func runFast(models []chain.NamedModel, best chain.Order, n int) {
	byName := map[string]chain.NamedModel{}
	for _, nm := range models {
		byName[nm.Name] = nm
	}
	stages := make([]chain.NamedModel, len(best.Names))
	for i, name := range best.Names {
		stages[i] = byName[name]
	}
	eng, err := dataplane.CompileChain(stages)
	check(err)

	fmt.Printf("\nfused data plane: %s (%d entries", strings.Join(best.Names, " → "), eng.NumEntries())
	if f := eng.FoldedEntries(); f > 0 {
		fmt.Printf(", %d pruned by cross-stage constant folding", f)
	}
	fmt.Println(")")

	trace := sampleTrace(n)
	for i := range trace {
		if _, err := eng.Process(&trace[i]); err != nil {
			check(fmt.Errorf("packet %d: %v", i, err))
		}
	}

	fmt.Printf("%d packets through the fused chain:\n", len(trace))
	for si, name := range eng.StageNames() {
		snap := eng.StageTelemetry(si)
		fmt.Printf("  stage %d %-10s pkts=%-6d fwd=%-6d drop=%-6d default-drop=%d\n",
			si, name, snap.Packets, snap.Forwards, snap.Drops, snap.DefaultDrops)
		for ei, hits := range snap.EntryHits {
			if hits > 0 {
				fmt.Printf("      entry %-2d %8d hits\n", ei, hits)
			}
		}
	}
}

// sampleTrace mixes trusted-side client flows at the corpus LB's
// service endpoint with stray and adversarial traffic, so packets die
// at every depth of the chain.
func sampleTrace(n int) []netpkt.Packet {
	g := workload.New(7)
	tr := g.ClientServerTrace("3.3.3.3", 80, n/2)
	for i := range tr {
		if tr[i].DstPort == 80 {
			tr[i].InIface = "lan"
		}
	}
	tr = append(tr, g.RandomTrace(n/4)...)
	tr = append(tr, g.AdversarialTrace(n/4)...)
	return tr
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfchain:", err)
		os.Exit(1)
	}
}
