// Command nfchain demonstrates service-chain policy composition (§4):
// it derives each NF's matched/modified header fields from its
// synthesized model and ranks chain orders by ordering hazards, answering
// the paper's question — {FW, IDS, LB} or {FW, LB, IDS}?
//
// Usage:
//
//	nfchain [-nfs firewall,snortlite,lb]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/nfs"
)

func main() {
	nfsFlag := flag.String("nfs", "firewall,snortlite,lb", "NFs to compose")
	flag.Parse()

	var models []chain.NamedModel
	for _, name := range strings.Split(*nfsFlag, ",") {
		name = strings.TrimSpace(name)
		nf, err := nfs.Load(name)
		check(err)
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		check(err)
		models = append(models, chain.NamedModel{Name: name, Model: an.Model})
		fmt.Printf("%-10s matches on %v, rewrites %v\n",
			name, chain.MatchedFields(an.Model), chain.ModifiedFields(an.Model))
	}

	fmt.Println("\nordering hazards:")
	conflicts := chain.Conflicts(models)
	if len(conflicts) == 0 {
		fmt.Println("  none — all orders equivalent")
	}
	for _, c := range conflicts {
		fmt.Printf("  %s\n", c)
	}

	fmt.Println("\ncompositions (best first):")
	for i, o := range chain.Compose(models) {
		marker := "  "
		if len(o.Hazards) == 0 {
			marker = "✓ "
		}
		fmt.Printf("%s%d. %-35s hazards: %d\n", marker, i+1, strings.Join(o.Names, " → "), len(o.Hazards))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfchain:", err)
		os.Exit(1)
	}
}
