// Command nflint runs NFLint — static analysis and diagnostics over
// NFLang sources and the models synthesized from them.
//
// Usage:
//
//	nflint [-json] [-source] [target ...]
//
// Each target is a built-in corpus NF name or an NFLang source file;
// with no targets the whole corpus is linted. By default nflint runs the
// full pipeline: the source-level passes (NFL0xx), the Table 1
// classification cross-check against StateAlyzer (NFL005), the
// model-level passes (NFL1xx) on the synthesized model with data-plane
// state-slot cross-references, and the data-plane sharding pass
// (NFL2xx: an informational finding naming the state variable that
// keeps the model single-core). -source restricts to the source passes
// (no synthesis — works on programs that cannot be synthesized yet).
//
// Exit status: 0 clean (or warnings/info only), 1 when any
// error-severity diagnostic was found, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/lint"
	"nfactor/internal/nfs"
	"nfactor/internal/value"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	srcOnly := flag.Bool("source", false, "source-level passes only (no model synthesis)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nflint [-json] [-source] [target ...]\n")
		fmt.Fprintf(os.Stderr, "targets: corpus NF names (%s) or .nfl files; default: whole corpus\n",
			strings.Join(nfs.Names(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = nfs.Names()
	}

	var diags []lint.Diagnostic
	for _, target := range targets {
		nf, err := loadTarget(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		diags = append(diags, lintNF(nf, *srcOnly)...)
	}
	lint.Sort(diags)

	if *jsonOut {
		out, err := lint.RenderJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.Render(diags))
	}
	if lint.HasErrors(diags) {
		os.Exit(1)
	}
}

// loadTarget resolves a corpus name or an .nfl file path.
func loadTarget(target string) (*nfs.NF, error) {
	if strings.HasSuffix(target, ".nfl") {
		src, err := os.ReadFile(target)
		if err != nil {
			return nil, err
		}
		return nfs.FromSource(strings.TrimSuffix(target, ".nfl"), string(src))
	}
	return nfs.Load(target)
}

// lintNF runs the requested passes on one NF.
func lintNF(nf *nfs.NF, srcOnly bool) []lint.Diagnostic {
	diags := lint.Source(nf.Prog, nf.Name)
	if srcOnly {
		return diags
	}
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		// Not synthesizable (e.g. no send()): the source findings stand,
		// plus an error about why the model passes could not run.
		return append(diags, lint.Diagnostic{
			Code: lint.CodePipeline, Severity: lint.SevError, NF: nf.Name, Entry: -1,
			Message: fmt.Sprintf("model synthesis failed, model passes skipped: %v", err),
		})
	}
	diags = append(diags, lint.CrossCheck(an.Analyzer, an.Vars, nf.Name)...)
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		config, state = nil, nil
	}
	diags = append(diags, lint.Model(an.Model, lint.ModelOptions{StateSlots: stateSlots(an, config, state)})...)
	if config != nil {
		diags = append(diags, lint.Sharding(an.Model, config, state)...)
	}
	return diags
}

// stateSlots compiles the model to the data plane and returns the state
// variables it allocated slots for (the NFL104 cross-reference).
func stateSlots(an *core.Analysis, config, state map[string]value.Value) map[string]bool {
	if config == nil {
		return nil
	}
	eng, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil
	}
	slots := map[string]bool{}
	for v := range eng.State() {
		slots[v] = true
	}
	return slots
}
