// Command nflint runs NFLint — static analysis and diagnostics over
// NFLang sources and the models synthesized from them.
//
// Usage:
//
//	nflint [-json] [-source] [target ...]
//
// Each target is a built-in corpus NF name or an NFLang source file;
// with no targets the whole corpus is linted. By default nflint runs the
// full pipeline: the source-level passes (NFL0xx), the Table 1
// classification cross-check against StateAlyzer (NFL005), the
// model-level passes (NFL1xx) on the synthesized model with data-plane
// state-slot cross-references, and the data-plane sharding pass
// (NFL2xx: an informational finding naming the state variable that
// keeps the model single-core). -source restricts to the source passes
// (no synthesis — works on programs that cannot be synthesized yet).
//
// -chain a,b,c switches to the chain-level pass (NFL3xx): the named
// corpus NFs are analyzed concurrently, composed in the given order,
// and each model entry is solver-checked for cross-NF deadness
// (NFL301). -class restricts the injected traffic, e.g.
// -class in_iface=lan,dport=80 — without it, NFs whose reverse path
// admits arbitrary replies keep most downstream entries reachable.
//
// -topo net.json switches to the network-level pass (NFL4xx): the
// topology's invariants are checked by symbolic exploration and every
// violation — isolation breach (NFL401), forwarding loop (NFL402),
// waypoint bypass (NFL403), black-hole (NFL404) — is reported with its
// path and concrete witness packet.
//
// Exit status: 0 clean (or warnings/info only), 1 when any
// error-severity diagnostic was found, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	srcOnly := flag.Bool("source", false, "source-level passes only (no model synthesis)")
	chainSpec := flag.String("chain", "", "comma-separated NF order: run the chain-level pass (NFL301) instead of per-NF passes")
	classSpec := flag.String("class", "", "restrict injected traffic for -chain, e.g. in_iface=lan,dport=80")
	topoSpec := flag.String("topo", "", "topology file: run the network-level pass (NFL4xx) instead of per-NF passes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nflint [-json] [-source] [target ...]\n")
		fmt.Fprintf(os.Stderr, "       nflint [-json] -chain a,b,c [-class field=value,...]\n")
		fmt.Fprintf(os.Stderr, "       nflint [-json] -topo net.json\n")
		fmt.Fprintf(os.Stderr, "targets: corpus NF names (%s) or .nfl files; default: whole corpus\n",
			strings.Join(nfs.Names(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	var diags []lint.Diagnostic
	switch {
	case *topoSpec != "":
		if flag.NArg() > 0 || *chainSpec != "" || *classSpec != "" {
			fmt.Fprintln(os.Stderr, "nflint: -topo takes no positional targets and excludes -chain/-class")
			os.Exit(2)
		}
		var err error
		diags, err = lintTopo(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *chainSpec != "":
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "nflint: -chain takes its NFs from the flag, not positional targets")
			os.Exit(2)
		}
		var err error
		diags, err = lintChain(*chainSpec, *classSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		if *classSpec != "" {
			fmt.Fprintln(os.Stderr, "nflint: -class only applies with -chain")
			os.Exit(2)
		}
		targets := flag.Args()
		if len(targets) == 0 {
			targets = nfs.Names()
		}
		for _, target := range targets {
			nf, err := loadTarget(target)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			diags = append(diags, lintNF(nf, *srcOnly)...)
		}
	}
	lint.Sort(diags)

	if *jsonOut {
		out, err := lint.RenderJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.Render(diags))
	}
	if lint.HasErrors(diags) {
		os.Exit(1)
	}
}

// lintTopo runs the network-level pass (NFL4xx) over a topology file.
func lintTopo(path string) ([]lint.Diagnostic, error) {
	topo, err := verify.LoadTopo(path)
	if err != nil {
		return nil, fmt.Errorf("nflint: %v", err)
	}
	invs, err := topo.ParsedInvariants()
	if err != nil {
		return nil, fmt.Errorf("nflint: %v", err)
	}
	if len(invs) == 0 {
		return nil, fmt.Errorf("nflint: topology %s declares no invariants", path)
	}
	net, err := topo.Sym(resolveNF())
	if err != nil {
		return nil, fmt.Errorf("nflint: %v", err)
	}
	diags, err := lint.Network(net, invs, verify.ExploreOpts{Cache: solver.NewCache()})
	if err != nil {
		return nil, fmt.Errorf("nflint: %v", err)
	}
	return diags, nil
}

// resolveNF resolves corpus NF names for topology nodes, analyzing each
// program once.
func resolveNF() verify.NFResolver {
	cache := map[string]*core.Analysis{}
	return func(name string) (*model.Model, map[string]value.Value, map[string]value.Value, error) {
		an, ok := cache[name]
		if !ok {
			nf, err := nfs.Load(name)
			if err != nil {
				return nil, nil, nil, err
			}
			an, err = core.Analyze(name, nf.Prog, core.Options{})
			if err != nil {
				return nil, nil, nil, err
			}
			cache[name] = an
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return an.Model, config, state, nil
	}
}

// lintChain runs the chain-level pass over a comma-separated NF order.
func lintChain(chainSpec, classSpec string) ([]lint.Diagnostic, error) {
	names := strings.Split(chainSpec, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	extra, err := parseClass(classSpec)
	if err != nil {
		return nil, err
	}
	stages, err := core.AnalyzeChain(names, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("nflint: %v", err)
	}
	return lint.Chain(stages, extra), nil
}

// parseClass turns "field=value,field=value" into packet constraints.
// Bare integers become ints; everything else is a string.
func parseClass(spec string) ([]solver.Term, error) {
	if spec == "" {
		return nil, nil
	}
	var out []solver.Term
	for _, pair := range strings.Split(spec, ",") {
		f, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || f == "" || v == "" {
			return nil, fmt.Errorf("nflint: bad -class element %q, want field=value", pair)
		}
		val := value.Str(v)
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			val = value.Int(n)
		}
		out = append(out, solver.Bin{
			Op: "==",
			X:  solver.Var{Name: "pkt." + f},
			Y:  solver.Const{V: val},
		})
	}
	return out, nil
}

// loadTarget resolves a corpus name or an .nfl file path.
func loadTarget(target string) (*nfs.NF, error) {
	if strings.HasSuffix(target, ".nfl") {
		src, err := os.ReadFile(target)
		if err != nil {
			return nil, err
		}
		return nfs.FromSource(strings.TrimSuffix(target, ".nfl"), string(src))
	}
	return nfs.Load(target)
}

// lintNF runs the requested passes on one NF.
func lintNF(nf *nfs.NF, srcOnly bool) []lint.Diagnostic {
	diags := lint.Source(nf.Prog, nf.Name)
	if srcOnly {
		return diags
	}
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		// Not synthesizable (e.g. no send()): the source findings stand,
		// plus an error about why the model passes could not run.
		return append(diags, lint.Diagnostic{
			Code: lint.CodePipeline, Severity: lint.SevError, NF: nf.Name, Entry: -1,
			Message: fmt.Sprintf("model synthesis failed, model passes skipped: %v", err),
		})
	}
	diags = append(diags, lint.CrossCheck(an.Analyzer, an.Vars, nf.Name)...)
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		config, state = nil, nil
	}
	diags = append(diags, lint.Model(an.Model, lint.ModelOptions{StateSlots: stateSlots(an, config, state)})...)
	if config != nil {
		diags = append(diags, lint.Sharding(an.Model, config, state)...)
	}
	return diags
}

// stateSlots compiles the model to the data plane and returns the state
// variables it allocated slots for (the NFL104 cross-reference).
func stateSlots(an *core.Analysis, config, state map[string]value.Value) map[string]bool {
	if config == nil {
		return nil
	}
	eng, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil
	}
	slots := map[string]bool{}
	for v := range eng.State() {
		slots[v] = true
	}
	return slots
}
