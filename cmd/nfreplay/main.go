// Command nfreplay replays a packet trace through an NF — the original
// program, its synthesized model, the compiled data-plane engine, the
// sharded engine, or reference-vs-candidate side by side (-side diff,
// the §5 differential methodology on operator-supplied traffic).
//
// Usage:
//
//	nfreplay -corpus lb -trace flows.txt [-side program|model|compiled|sharded|diff]
//	         [-shards N] [-explain] [-telemetry] [-prom metrics.prom]
//	         [-fast] [-bench] [-cpuprofile cpu.out] [-memprofile mem.out]
//	nfreplay -chain firewall,snortlite,lb -trace flows.txt [-shards N] [-telemetry]
//
// -chain replays the trace through the fused service-chain data plane
// (dataplane.CompileChain): one engine for the whole chain, per-packet
// verdicts showing where each packet died or what the final stage
// emitted. With -shards N the chain runs flow-sharded when every
// stage's flow keys co-hash (falling back loudly otherwise);
// -telemetry prints per-stage counters afterwards.
//
// -shards N picks the shard count for -side sharded (default
// GOMAXPROCS). When the model's state has no sharding lowering, the
// replay reports *why* on stderr — naming the blocking state variable —
// and falls back to the single compiled engine instead of failing.
//
// -explain prints the provenance trace of every packet: which guards
// were evaluated with what outcome, which entry fired, what was sent
// and how the state changed.
// -telemetry prints the always-on counters after the replay — verdict
// and per-entry hit counts, latency quantiles, state sizes — plus the
// model annotated with hit counters and a dead-entry report that
// cross-checks never-hit entries against symbolic reachability.
// -prom FILE additionally writes the snapshot in Prometheus text
// exposition format.
// -fast replays the model side through the compiled engine instead of
// the reference interpreter (identical verdicts, much faster).
// -bench times the trace through BOTH the reference interpreter and the
// compiled engine and reports pkts/sec and ns/pkt for each.
//
// Trace format (one packet per line, # comments allowed):
//
//	tcp 10.0.0.1:1234 > 3.3.3.3:80 [S] ttl=64 len=0 iface=eth0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nfactor"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/telemetry"
)

func main() {
	corpus := flag.String("corpus", "", "corpus NF to replay against")
	file := flag.String("file", "", "NFLang source file to replay against")
	chainSpec := flag.String("chain", "", "comma-separated NF order: replay through the fused chain data plane")
	traceFile := flag.String("trace", "", "trace file (- for stdin)")
	side := flag.String("side", "diff", "program | model | compiled | sharded | diff")
	shards := flag.Int("shards", 0, "shard count for -side sharded (0 = GOMAXPROCS)")
	explain := flag.Bool("explain", false, "print each packet's provenance trace (guards, entry, state changes)")
	telemetry := flag.Bool("telemetry", false, "print counters, latency quantiles, the hit-annotated model and dead entries after the replay")
	promFile := flag.String("prom", "", "write the telemetry snapshot in Prometheus text format to this file")
	fast := flag.Bool("fast", false, "replay the model through the compiled data-plane engine")
	bench := flag.Bool("bench", false, "time the trace through the reference interpreter and the compiled engine")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the replay to this file")
	flag.Parse()

	if *chainSpec != "" {
		if *traceFile == "" || *corpus != "" || *file != "" {
			fmt.Fprintln(os.Stderr, "usage: nfreplay -chain a,b,c -trace file [-shards N] [-telemetry]")
			os.Exit(2)
		}
		if err := runChain(*chainSpec, *traceFile, *shards, *telemetry); err != nil {
			fatal(err)
		}
		return
	}
	if (*corpus == "") == (*file == "") || *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: nfreplay (-corpus NAME | -file prog.nfl) -trace file [-side program|model|compiled|sharded|diff] [-explain] [-telemetry] [-prom file] [-fast] [-bench]")
		os.Exit(2)
	}

	var res *nfactor.Result
	var err error
	name := *corpus
	if *corpus != "" {
		res, err = nfactor.AnalyzeCorpus(*corpus, nfactor.Options{})
	} else {
		name = *file
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nfactor.AnalyzeSource(*file, string(data), nfactor.Options{})
	}
	if err != nil {
		fatal(err)
	}

	in := os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		fatal(err)
	}
	if len(trace) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bench {
		if err := runBench(res, trace); err != nil {
			fatal(err)
		}
	} else {
		if err := runReplay(res, name, trace, *side, *shards, *fast, *explain, *telemetry, *promFile); err != nil {
			fatal(err)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func runReplay(res *nfactor.Result, name string, trace []nfactor.Packet, side string, shards int, fast, explain, telemetry bool, promFile string) error {
	if side == "diff" {
		candidate := nfactor.BackendModel
		if fast {
			candidate = nfactor.BackendCompiled
		}
		rep, err := res.DiffTest(nfactor.DiffOptions{Trace: trace, Backend: candidate})
		if err != nil {
			return err
		}
		fmt.Print(rep.Render())
		if !rep.Matches() {
			os.Exit(1)
		}
		return nil
	}

	var backend nfactor.Backend
	switch {
	case side == "program":
		backend = nfactor.BackendProgram
	case side == "model" && !fast:
		backend = nfactor.BackendModel
	case side == "model" || side == "compiled":
		backend = nfactor.BackendCompiled
	case side == "sharded":
		backend = nfactor.BackendSharded
	default:
		return fmt.Errorf("unknown -side %q", side)
	}

	var rp nfactor.Replayer
	var err error
	if backend == nfactor.BackendSharded {
		n := shards
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		rp, err = res.ShardedReplayer(n)
		if err != nil {
			// Say why this model cannot shard (the error names the state
			// variable with no sharding lowering), then degrade loudly
			// rather than silently.
			fmt.Fprintf(os.Stderr, "nfreplay: %s cannot run sharded: %v\n", name, err)
			fmt.Fprintln(os.Stderr, "nfreplay: falling back to the single compiled engine")
			rp, err = res.Replayer(nfactor.BackendCompiled)
		}
	} else {
		rp, err = res.Replayer(backend)
	}
	if err != nil {
		return err
	}

	if explain {
		ex, ok := rp.(nfactor.Explainer)
		if !ok {
			return fmt.Errorf("-explain is not available for -side %s (no model table to explain against)", side)
		}
		for i := range trace {
			_, tr, err := ex.ProcessExplain(&trace[i])
			if err != nil {
				return fmt.Errorf("packet %d: %w", i+1, err)
			}
			fmt.Printf("--- packet %d ---\n%s", i+1, tr)
		}
	} else {
		for i := range trace {
			v, err := rp.Process(&trace[i])
			if err != nil {
				return fmt.Errorf("packet %d: %w", i+1, err)
			}
			fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], v)
		}
	}

	if telemetry || promFile != "" {
		snap := rp.Snapshot()
		if telemetry {
			fmt.Println("=== telemetry ===")
			fmt.Print(snap.Report())
			if backend != nfactor.BackendProgram {
				fmt.Println("=== model with hit counters ===")
				fmt.Print(res.RenderModelWithCounters(snap))
				dead, err := res.DeadEntries(snap, 2)
				if err != nil {
					return err
				}
				if len(dead) > 0 {
					fmt.Println("=== entries never hit by this trace ===")
					for _, d := range dead {
						if d.Reachable {
							fmt.Printf("entry %d: reachable (witness %v) — workload coverage gap\n", d.Entry, d.Witness)
						} else {
							fmt.Printf("entry %d: unreachable within 2 packets — likely dead table mass\n", d.Entry)
						}
					}
				}
			}
		}
		if promFile != "" {
			f, err := os.Create(promFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := snap.WritePrometheus(f, name); err != nil {
				return err
			}
			// Same endpoint also serves the synthesis pipeline's perf
			// counters (disjoint nfactor_pipeline_* namespace).
			if err := res.WritePerfPrometheus(f, name); err != nil {
				return err
			}
		}
	}
	return nil
}

// runBench cross-validates the engine against the reference on the
// trace, then times both: replays repeat until each side accumulates
// ~300ms of wall time, state warmed by a first pass.
func runBench(res *nfactor.Result, trace []nfactor.Packet) error {
	const minDur = 300 * time.Millisecond

	rep, err := res.DiffTest(nfactor.DiffOptions{Trace: trace, Backend: nfactor.BackendCompiled})
	if err != nil {
		return err
	}
	if !rep.Matches() {
		return fmt.Errorf("engine diverged from the model on %d packets; first: %s", rep.Mismatches, rep.FirstDiff)
	}

	inst, err := res.Instance()
	if err != nil {
		return err
	}
	eng, err := res.CompiledEngine()
	if err != nil {
		return err
	}

	refNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := inst.Process(trace[i].ToValue()); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	engNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := eng.Process(&trace[i]); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}

	fmt.Printf("trace: %d packets, engine cross-validated (0 mismatches)\n", len(trace))
	fmt.Printf("%-22s %12s %14s\n", "", "ns/pkt", "pkts/sec")
	fmt.Printf("%-22s %12.0f %14.0f\n", "reference interpreter", refNs, 1e9/refNs)
	fmt.Printf("%-22s %12.0f %14.0f\n", "compiled engine", engNs, 1e9/engNs)
	fmt.Printf("speedup: %.1fx\n", refNs/engNs)
	return nil
}

// timeReplay warms once, then repeats replay until minDur elapses and
// returns amortized ns/packet.
func timeReplay(minDur time.Duration, pkts int, replay func() error) (float64, error) {
	if err := replay(); err != nil {
		return 0, err
	}
	total := 0
	start := time.Now()
	for {
		if err := replay(); err != nil {
			return 0, err
		}
		total += pkts
		if time.Since(start) >= minDur {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total), nil
}

// chainPlane is the slice of the fused and sharded chain engines that
// the chain replay needs.
type chainPlane interface {
	Process(p *nfactor.Packet) (*dataplane.ChainOutput, error)
	StageTelemetry(i int) telemetry.Snapshot
}

// runChain replays the trace through the fused chain data plane.
func runChain(spec, traceFile string, shards int, tel bool) error {
	names := strings.Split(spec, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	stages, err := core.AnalyzeChain(names, core.Options{})
	if err != nil {
		return err
	}

	var plane chainPlane
	if shards > 1 {
		sh, err := dataplane.NewShardedChain(stages, shards)
		if err != nil {
			// Name the stage and state variable that blocks co-hashing,
			// then degrade loudly rather than silently.
			fmt.Fprintf(os.Stderr, "nfreplay: chain cannot run sharded: %v\n", err)
			fmt.Fprintln(os.Stderr, "nfreplay: falling back to the single fused engine")
		} else {
			plane = sh
		}
	}
	if plane == nil {
		eng, err := dataplane.CompileChain(stages)
		if err != nil {
			return err
		}
		plane = eng
	}

	in := os.Stdin
	if traceFile != "-" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		return err
	}
	if len(trace) == 0 {
		return fmt.Errorf("empty trace")
	}

	for i := range trace {
		out, err := plane.Process(&trace[i])
		if err != nil {
			return fmt.Errorf("packet %d: %w", i+1, err)
		}
		fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], chainVerdict(names, out))
	}

	if tel {
		fmt.Println("=== per-stage telemetry ===")
		for si, name := range names {
			snap := plane.StageTelemetry(si)
			fmt.Printf("--- stage %d: %s ---\n%s", si, name, snap.Report())
		}
	}
	return nil
}

// chainVerdict renders where a packet ended up: the emitted interfaces,
// or the stage whose entry (or implicit drop) killed it.
func chainVerdict(names []string, out *dataplane.ChainOutput) string {
	if !out.Dropped {
		ifaces := make([]string, len(out.Sent))
		for i, sp := range out.Sent {
			ifaces[i] = sp.Iface
		}
		return fmt.Sprintf("sent %s", strings.Join(ifaces, ","))
	}
	for si := len(out.Entries) - 1; si >= 0; si-- {
		switch out.Entries[si] {
		case dataplane.EntryNotReached:
			continue
		case -1:
			return fmt.Sprintf("drop@%s (no entry matched)", names[si])
		default:
			return fmt.Sprintf("drop@%s (entry %d)", names[si], out.Entries[si])
		}
	}
	return "drop"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfreplay:", err)
	os.Exit(1)
}
