// Command nfreplay replays a packet trace through an NF — the original
// program, its synthesized model, the compiled data-plane engine, the
// sharded engine, or reference-vs-candidate side by side (-side diff,
// the §5 differential methodology on operator-supplied traffic).
//
// Usage:
//
//	nfreplay -corpus lb -trace flows.txt [-side program|model|compiled|sharded|diff]
//	         [-shards N] [-explain] [-telemetry] [-prom metrics.prom]
//	         [-fast] [-bench] [-cpuprofile cpu.out] [-memprofile mem.out]
//	nfreplay -chain firewall,snortlite,lb -trace flows.txt [-shards N] [-telemetry]
//	nfreplay (-corpus NAME | -file prog.nfl | -chain a,b) -serve
//	         (-trace flows.txt [-loop] | -gen N [-seed S] | -listen host:port)
//	         [-shards N] [-batch N] [-window N] [-rate PPS]
//	         [-http host:port] [-prom file] [-prom-interval D]
//	         [-swap-after N] [-swap-allow-change] [-telemetry]
//
// -chain replays the trace through the fused service-chain data plane
// (dataplane.CompileChain): one engine for the whole chain, per-packet
// verdicts showing where each packet died or what the final stage
// emitted. With -shards N the chain runs flow-sharded when every
// stage's flow keys co-hash (falling back loudly otherwise);
// -telemetry prints per-stage counters afterwards.
//
// -shards N picks the shard count for -side sharded (default
// GOMAXPROCS). When the model's state has no sharding lowering, the
// replay reports *why* on stderr — naming the blocking state variable —
// and falls back to the single compiled engine instead of failing.
//
// -explain prints the provenance trace of every packet: which guards
// were evaluated with what outcome, which entry fired, what was sent
// and how the state changed.
// -telemetry prints the always-on counters after the replay — verdict
// and per-entry hit counts, latency quantiles, state sizes — plus the
// model annotated with hit counters and a dead-entry report that
// cross-checks never-hit entries against symbolic reachability.
// -prom FILE additionally writes the snapshot in Prometheus text
// exposition format.
// -fast replays the model side through the compiled engine instead of
// the reference interpreter (identical verdicts, much faster).
// -bench times the trace through BOTH the reference interpreter and the
// compiled engine and reports pkts/sec and ns/pkt for each.
//
// -serve runs the live serving daemon instead of a one-shot replay:
// packets come from the trace file (looping with -loop), from -gen N
// synthetic workload packets, or from UDP datagrams (-listen); verdict
// lines go to stdout, diagnostics to stderr. SIGHUP re-synthesizes the
// NF from its current source and hot-swaps the engine generation under
// load — the swap applies only at a batch barrier, carries compatible
// state over, and is refused (loudly, naming the first divergence) if
// the candidate's behavior diverges from the serving generation on the
// live traffic window, unless -swap-allow-change. -swap-after N queues
// one such swap after N packets (a self-test of the swap path).
// SIGINT/SIGTERM drain and print the serving summary.
//
// -http ADDR embeds the observability server on ADDR: /metrics (live
// Prometheus scrape: serve stats, engine telemetry, pipeline perf
// counters, NFL103 gap-hit and drift gauges), /state (per-variable
// flow-state inspector, quiesced at a batch barrier), /coverage
// (entry-hit coverage with staleness candidates and gap hits), /swaps
// (the generation-swap audit trail) and /debug/pprof/. With -serve,
// -prom FILE is rewritten atomically every -prom-interval (default 2s)
// with the same payload /metrics serves, so a file-based scraper works
// alongside — or instead of — the HTTP endpoint. -rate PPS paces the
// source so a bounded trace stands in for live traffic.
//
// Trace format (one packet per line, # comments allowed):
//
//	tcp 10.0.0.1:1234 > 3.3.3.3:80 [S] ttl=64 len=0 iface=eth0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"nfactor"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/telemetry"
)

func main() {
	corpus := flag.String("corpus", "", "corpus NF to replay against")
	file := flag.String("file", "", "NFLang source file to replay against")
	chainSpec := flag.String("chain", "", "comma-separated NF order: replay through the fused chain data plane")
	traceFile := flag.String("trace", "", "trace file (- for stdin)")
	side := flag.String("side", "diff", "program | model | compiled | sharded | diff")
	shards := flag.Int("shards", 0, "shard count for -side sharded (0 = GOMAXPROCS)")
	explain := flag.Bool("explain", false, "print each packet's provenance trace (guards, entry, state changes)")
	telemetry := flag.Bool("telemetry", false, "print counters, latency quantiles, the hit-annotated model and dead entries after the replay")
	promFile := flag.String("prom", "", "write the telemetry snapshot in Prometheus text format to this file")
	fast := flag.Bool("fast", false, "replay the model through the compiled data-plane engine")
	bench := flag.Bool("bench", false, "time the trace through the reference interpreter and the compiled engine")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the replay to this file")
	serveMode := flag.Bool("serve", false, "run the live serving daemon (SIGHUP hot-swaps a re-synthesized engine)")
	loop := flag.Bool("loop", false, "with -serve -trace: loop the trace instead of draining it once")
	genPkts := flag.Int64("gen", 0, "with -serve: serve N synthetic workload packets instead of a trace")
	seed := flag.Int64("seed", 1, "with -serve -gen: workload seed")
	listen := flag.String("listen", "", "with -serve: serve packets from UDP datagrams on this address")
	batch := flag.Int("batch", 0, "with -serve: batch size (swap quiescence granularity; 0 = default)")
	window := flag.Int("window", 0, "with -serve: live-traffic window gating swaps (0 = default)")
	swapAfter := flag.Int64("swap-after", 0, "with -serve: re-synthesize and hot-swap once after N packets")
	swapAllow := flag.Bool("swap-allow-change", false, "with -serve: apply swaps even when behavior diverges on the live window")
	httpAddr := flag.String("http", "", "with -serve: embedded observability server address (/metrics /state /coverage /swaps /debug/pprof/)")
	rate := flag.Float64("rate", 0, "with -serve: pace the source to this many packets per second (0 = unpaced)")
	promEvery := flag.Duration("prom-interval", 2*time.Second, "with -serve -prom: atomic rewrite interval for the metrics file")
	flag.Parse()

	if *serveMode {
		name, rebuild := resynther(*corpus, *file, *chainSpec, *shards)
		if rebuild == nil {
			fmt.Fprintln(os.Stderr, "usage: nfreplay (-corpus NAME | -file prog.nfl | -chain a,b) -serve (-trace file [-loop] | -gen N [-seed S] | -listen addr) [-shards N] [-batch N] [-window N] [-rate PPS] [-http addr] [-prom file] [-prom-interval D] [-swap-after N] [-swap-allow-change] [-telemetry]")
			os.Exit(2)
		}
		err := runServe(serveOpts{
			name: name, rebuild: rebuild,
			traceFile: *traceFile, loop: *loop,
			genPkts: *genPkts, seed: *seed, listen: *listen,
			batch: *batch, window: *window, rate: *rate,
			swapAfter: *swapAfter, swapAllow: *swapAllow,
			telemetry: *telemetry, promFile: *promFile,
			promEvery: *promEvery, httpAddr: *httpAddr,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *chainSpec != "" {
		if *traceFile == "" || *corpus != "" || *file != "" {
			fmt.Fprintln(os.Stderr, "usage: nfreplay -chain a,b,c -trace file [-shards N] [-telemetry]")
			os.Exit(2)
		}
		if err := runChain(*chainSpec, *traceFile, *shards, *telemetry); err != nil {
			fatal(err)
		}
		return
	}
	if (*corpus == "") == (*file == "") || *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: nfreplay (-corpus NAME | -file prog.nfl) -trace file [-side program|model|compiled|sharded|diff] [-explain] [-telemetry] [-prom file] [-fast] [-bench]")
		os.Exit(2)
	}

	var res *nfactor.Result
	var err error
	name := *corpus
	if *corpus != "" {
		res, err = nfactor.AnalyzeCorpus(*corpus, nfactor.Options{})
	} else {
		name = *file
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nfactor.AnalyzeSource(*file, string(data), nfactor.Options{})
	}
	if err != nil {
		fatal(err)
	}

	in := os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		fatal(err)
	}
	if len(trace) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bench {
		if err := runBench(res, trace); err != nil {
			fatal(err)
		}
	} else {
		if err := runReplay(res, name, trace, *side, *shards, *fast, *explain, *telemetry, *promFile); err != nil {
			fatal(err)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// resynther returns the NF's display name and a closure that
// re-synthesizes it from scratch — the serving daemon calls it once for
// the initial generation and again on every swap request, so a SIGHUP
// picks up whatever the source (file, corpus, chain spec) says *now*.
// Alongside the candidate, the closure returns an appender for the
// synthesis pipeline's perf counters (nil for chains), so /metrics and
// the periodic -prom file always report the perf of the *serving*
// generation's synthesis run.
func resynther(corpus, file, chainSpec string, shards int) (string, func() (nfactor.ServeCandidate, promAppender, error)) {
	switch {
	case chainSpec != "" && corpus == "" && file == "":
		names := splitChain(chainSpec)
		name := strings.Join(names, "->")
		return name, func() (nfactor.ServeCandidate, promAppender, error) {
			cr, err := nfactor.AnalyzeChain(names, nfactor.Options{})
			if err != nil {
				return nfactor.ServeCandidate{}, nil, err
			}
			return cr.ServeCandidate(shards), nil, nil
		}
	case corpus != "" && file == "" && chainSpec == "":
		return corpus, func() (nfactor.ServeCandidate, promAppender, error) {
			res, err := nfactor.AnalyzeCorpus(corpus, nfactor.Options{})
			if err != nil {
				return nfactor.ServeCandidate{}, nil, err
			}
			perf := func(w io.Writer) error { return res.WritePerfPrometheus(w, corpus) }
			return res.ServeCandidate(shards), perf, nil
		}
	case file != "" && corpus == "" && chainSpec == "":
		return file, func() (nfactor.ServeCandidate, promAppender, error) {
			data, err := os.ReadFile(file)
			if err != nil {
				return nfactor.ServeCandidate{}, nil, err
			}
			res, err := nfactor.AnalyzeSource(file, string(data), nfactor.Options{})
			if err != nil {
				return nfactor.ServeCandidate{}, nil, err
			}
			perf := func(w io.Writer) error { return res.WritePerfPrometheus(w, file) }
			return res.ServeCandidate(shards), perf, nil
		}
	}
	return "", nil
}

// promAppender appends extra Prometheus series to a scrape payload.
type promAppender = func(w io.Writer) error

type serveOpts struct {
	name      string
	rebuild   func() (nfactor.ServeCandidate, promAppender, error)
	traceFile string
	loop      bool
	genPkts   int64
	seed      int64
	listen    string
	batch     int
	window    int
	rate      float64
	swapAfter int64
	swapAllow bool
	telemetry bool
	promFile  string
	promEvery time.Duration
	httpAddr  string
}

// runServe is the -serve daemon: verdict lines to stdout, everything
// operational (swap reports, the final summary, telemetry) to stderr.
func runServe(o serveOpts) error {
	cand, perf, err := o.rebuild()
	if err != nil {
		return err
	}

	// The perf appender tracks the SERVING generation: a hot-swap's
	// candidate carries its own synthesis perf counters, installed only
	// when the swap actually applies (OnSwap, below).
	var perfMu sync.Mutex
	var pendingPerf promAppender
	extras := []func(w io.Writer) error{func(w io.Writer) error {
		perfMu.Lock()
		p := perf
		perfMu.Unlock()
		if p == nil {
			return nil
		}
		return p(w)
	}}
	stagePerf := func(p promAppender) {
		perfMu.Lock()
		pendingPerf = p
		perfMu.Unlock()
	}

	var source nfactor.Source
	var closeSource func() error
	switch {
	case o.listen != "":
		udp, err := nfactor.NewUDPSource(o.listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "nfreplay: listening on %s (one trace line per UDP datagram)\n", udp.Addr())
		source, closeSource = udp, udp.Close
	case o.genPkts > 0:
		n := o.genPkts
		if n > 2048 {
			n = 2048
		}
		source = nfactor.NewTraceSource(serveWorkload(int(n), o.seed), true, o.genPkts)
	case o.traceFile == "-":
		source = nfactor.NewReaderSource(os.Stdin)
	case o.traceFile != "":
		f, err := os.Open(o.traceFile)
		if err != nil {
			return err
		}
		trace, perr := nfactor.ParseTrace(f)
		f.Close()
		if perr != nil {
			return perr
		}
		if len(trace) == 0 {
			return fmt.Errorf("empty trace")
		}
		source = nfactor.NewTraceSource(trace, o.loop, 0)
	default:
		return fmt.Errorf("-serve needs a packet source: -trace file|-, -gen N, or -listen addr")
	}
	if o.rate > 0 {
		source = nfactor.NewPacedSource(source, o.rate)
		fmt.Fprintf(os.Stderr, "nfreplay: pacing source at %.0f pkts/sec\n", o.rate)
	}

	// The observability collectors (gap-hit, drift, swap audit) back the
	// -http endpoints and the periodic -prom file.
	var obsOpts *nfactor.ObsOptions
	if o.httpAddr != "" || o.promFile != "" {
		obsOpts = &nfactor.ObsOptions{}
	}

	srv, err := nfactor.NewServer(cand, nfactor.ServeConfig{
		Source:     source,
		Sink:       nfactor.NewWriterSink(os.Stdout),
		BatchSize:  o.batch,
		WindowSize: o.window,
		Obs:        obsOpts,
		OnSwap: func(rep *nfactor.SwapReport) {
			fmt.Fprint(os.Stderr, rep.Render())
			perfMu.Lock()
			if !rep.Blocked && pendingPerf != nil {
				perf = pendingPerf
			}
			pendingPerf = nil
			perfMu.Unlock()
		},
	})
	if err != nil {
		return err
	}
	num, genName := srv.Generation()
	fmt.Fprintf(os.Stderr, "nfreplay: serving %q, generation %d (SIGHUP re-synthesizes and hot-swaps)\n", genName, num)

	if o.httpAddr != "" {
		oh, err := nfactor.NewObsHTTP(o.httpAddr, srv, nfactor.ObsHTTPConfig{NF: o.name, ExtraProm: extras})
		if err != nil {
			return err
		}
		defer oh.Close()
		fmt.Fprintf(os.Stderr, "nfreplay: observability on http://%s (/metrics /state /coverage /swaps /debug/pprof/)\n", oh.Addr())
	}

	if o.swapAfter > 0 {
		next, nextPerf, err := o.rebuild()
		if err != nil {
			return fmt.Errorf("re-synthesis for -swap-after: %w", err)
		}
		stagePerf(nextPerf)
		srv.RequestSwap(nfactor.SwapRequest{Candidate: next,
			AllowBehaviorChange: o.swapAllow, AfterPackets: o.swapAfter})
	}

	sigCh := make(chan os.Signal, 4)
	signal.Notify(sigCh, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-done:
				return
			case sig := <-sigCh:
				if sig != syscall.SIGHUP {
					srv.Stop()
					if closeSource != nil {
						closeSource()
					}
					continue
				}
				next, nextPerf, err := o.rebuild()
				if err != nil {
					fmt.Fprintf(os.Stderr, "nfreplay: re-synthesis failed, serving generation stays: %v\n", err)
					continue
				}
				stagePerf(nextPerf)
				// The report lands on stderr via OnSwap; nobody waits here.
				srv.RequestSwap(nfactor.SwapRequest{Candidate: next, AllowBehaviorChange: o.swapAllow})
			}
		}
	}()

	// Periodic atomic rewrite of the -prom file while serving: a
	// file-based scraper sees a complete, never-torn payload (temp file
	// + rename), refreshed from the same renderer /metrics uses.
	writeProm := func() error {
		return nfactor.WriteObsFileAtomic(o.promFile, func(w io.Writer) error {
			return nfactor.WriteServeMetrics(w, srv, o.name, extras)
		})
	}
	if o.promFile != "" {
		every := o.promEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		go func() {
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					if err := writeProm(); err != nil {
						fmt.Fprintf(os.Stderr, "nfreplay: prom rewrite: %v\n", err)
					}
				}
			}
		}()
	}

	runErr := srv.Run()

	stats := srv.Stats()
	fmt.Fprintf(os.Stderr, "serve: %s\n", stats.Report())
	if o.telemetry {
		fmt.Fprintln(os.Stderr, "=== serving engine telemetry ===")
		fmt.Fprint(os.Stderr, srv.Snapshot().Report())
	}
	if o.promFile != "" {
		// Final rewrite so the file reflects the drained totals.
		if err := writeProm(); err != nil {
			return err
		}
	}
	return runErr
}

// serveWorkload generates synthetic serving traffic: the DiffTest
// workload generator's flows with the ingress interface cycled through
// lan/wan/eth0 (so interface-sensitive NFs see traffic on every side
// rather than a single dead interface) and half the destination ports
// drawn from well-known services (so port-policy NFs forward some of it
// instead of dropping uniformly random ports on the floor).
func serveWorkload(n int, seed int64) []nfactor.Packet {
	trace := nfactor.RandomTrace(n, seed)
	ifaces := [...]string{"lan", "wan", "eth0"}
	ports := [...]int{80, 443, 53, 22, 8080}
	for i := range trace {
		trace[i].InIface = ifaces[i%len(ifaces)]
		if i%2 == 0 {
			trace[i].DstPort = ports[(i/2)%len(ports)]
		}
	}
	return trace
}

func runReplay(res *nfactor.Result, name string, trace []nfactor.Packet, side string, shards int, fast, explain, telemetry bool, promFile string) error {
	if side == "diff" {
		candidate := nfactor.BackendModel
		if fast {
			candidate = nfactor.BackendCompiled
		}
		rep, err := res.DiffTest(nfactor.DiffOptions{Trace: trace, Backend: candidate})
		if err != nil {
			return err
		}
		fmt.Print(rep.Render())
		if !rep.Matches() {
			os.Exit(1)
		}
		return nil
	}

	var backend nfactor.Backend
	switch {
	case side == "program":
		backend = nfactor.BackendProgram
	case side == "model" && !fast:
		backend = nfactor.BackendModel
	case side == "model" || side == "compiled":
		backend = nfactor.BackendCompiled
	case side == "sharded":
		backend = nfactor.BackendSharded
	default:
		return fmt.Errorf("unknown -side %q", side)
	}

	var rp nfactor.Replayer
	var err error
	if backend == nfactor.BackendSharded {
		n := shards
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		rp, err = res.ShardedReplayer(n)
		if err != nil {
			// Say why this model cannot shard (the error names the state
			// variable with no sharding lowering), then degrade loudly
			// rather than silently.
			fmt.Fprintf(os.Stderr, "nfreplay: %s cannot run sharded: %v\n", name, err)
			fmt.Fprintln(os.Stderr, "nfreplay: falling back to the single compiled engine")
			rp, err = res.Replayer(nfactor.BackendCompiled)
		}
	} else {
		rp, err = res.Replayer(backend)
	}
	if err != nil {
		return err
	}

	if explain {
		ex, ok := rp.(nfactor.Explainer)
		if !ok {
			return fmt.Errorf("-explain is not available for -side %s (no model table to explain against)", side)
		}
		for i := range trace {
			_, tr, err := ex.ProcessExplain(&trace[i])
			if err != nil {
				return fmt.Errorf("packet %d: %w", i+1, err)
			}
			fmt.Printf("--- packet %d ---\n%s", i+1, tr)
		}
	} else {
		for i := range trace {
			v, err := rp.Process(&trace[i])
			if err != nil {
				return fmt.Errorf("packet %d: %w", i+1, err)
			}
			fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], v)
		}
	}

	if telemetry || promFile != "" {
		snap := rp.Snapshot()
		if telemetry {
			// Diagnostics go to stderr: stdout carries only the verdict
			// stream, so it pipes cleanly into diff/grep.
			fmt.Fprintln(os.Stderr, "=== telemetry ===")
			fmt.Fprint(os.Stderr, snap.Report())
			if backend != nfactor.BackendProgram {
				fmt.Fprintln(os.Stderr, "=== model with hit counters ===")
				fmt.Fprint(os.Stderr, res.RenderModelWithCounters(snap))
				dead, err := res.DeadEntries(snap, 2)
				if err != nil {
					return err
				}
				if len(dead) > 0 {
					fmt.Fprintln(os.Stderr, "=== entries never hit by this trace ===")
					for _, d := range dead {
						if d.Reachable {
							fmt.Fprintf(os.Stderr, "entry %d: reachable (witness %v) — workload coverage gap\n", d.Entry, d.Witness)
						} else {
							fmt.Fprintf(os.Stderr, "entry %d: unreachable within 2 packets — likely dead table mass\n", d.Entry)
						}
					}
				}
			}
		}
		if promFile != "" {
			f, err := os.Create(promFile)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := snap.WritePrometheus(f, name); err != nil {
				return err
			}
			// Same endpoint also serves the synthesis pipeline's perf
			// counters (disjoint nfactor_pipeline_* namespace).
			if err := res.WritePerfPrometheus(f, name); err != nil {
				return err
			}
		}
	}
	return nil
}

// runBench cross-validates the engine against the reference on the
// trace, then times both: replays repeat until each side accumulates
// ~300ms of wall time, state warmed by a first pass.
func runBench(res *nfactor.Result, trace []nfactor.Packet) error {
	const minDur = 300 * time.Millisecond

	rep, err := res.DiffTest(nfactor.DiffOptions{Trace: trace, Backend: nfactor.BackendCompiled})
	if err != nil {
		return err
	}
	if !rep.Matches() {
		return fmt.Errorf("engine diverged from the model on %d packets; first: %s", rep.Mismatches, rep.FirstDiff)
	}

	inst, err := res.Instance()
	if err != nil {
		return err
	}
	eng, err := res.CompiledEngine()
	if err != nil {
		return err
	}

	refNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := inst.Process(trace[i].ToValue()); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	engNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := eng.Process(&trace[i]); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}

	fmt.Printf("trace: %d packets, engine cross-validated (0 mismatches)\n", len(trace))
	fmt.Printf("%-22s %12s %14s\n", "", "ns/pkt", "pkts/sec")
	fmt.Printf("%-22s %12.0f %14.0f\n", "reference interpreter", refNs, 1e9/refNs)
	fmt.Printf("%-22s %12.0f %14.0f\n", "compiled engine", engNs, 1e9/engNs)
	fmt.Printf("speedup: %.1fx\n", refNs/engNs)
	return nil
}

// timeReplay warms once, then repeats replay until minDur elapses and
// returns amortized ns/packet.
func timeReplay(minDur time.Duration, pkts int, replay func() error) (float64, error) {
	if err := replay(); err != nil {
		return 0, err
	}
	total := 0
	start := time.Now()
	for {
		if err := replay(); err != nil {
			return 0, err
		}
		total += pkts
		if time.Since(start) >= minDur {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total), nil
}

// chainPlane is the slice of the fused and sharded chain engines that
// the chain replay needs.
type chainPlane interface {
	Process(p *nfactor.Packet) (*dataplane.ChainOutput, error)
	StageTelemetry(i int) telemetry.Snapshot
}

// splitChain parses the comma-separated -chain spec.
func splitChain(spec string) []string {
	names := strings.Split(spec, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names
}

// runChain replays the trace through the fused chain data plane.
func runChain(spec, traceFile string, shards int, tel bool) error {
	names := splitChain(spec)
	stages, err := core.AnalyzeChain(names, core.Options{})
	if err != nil {
		return err
	}

	var plane chainPlane
	if shards > 1 {
		sh, err := dataplane.NewShardedChain(stages, shards)
		if err != nil {
			// Name the stage and state variable that blocks co-hashing,
			// then degrade loudly rather than silently.
			fmt.Fprintf(os.Stderr, "nfreplay: chain cannot run sharded: %v\n", err)
			fmt.Fprintln(os.Stderr, "nfreplay: falling back to the single fused engine")
		} else {
			plane = sh
		}
	}
	if plane == nil {
		eng, err := dataplane.CompileChain(stages)
		if err != nil {
			return err
		}
		plane = eng
	}

	in := os.Stdin
	if traceFile != "-" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		return err
	}
	if len(trace) == 0 {
		return fmt.Errorf("empty trace")
	}

	for i := range trace {
		out, err := plane.Process(&trace[i])
		if err != nil {
			return fmt.Errorf("packet %d: %w", i+1, err)
		}
		fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], chainVerdict(names, out))
	}

	if tel {
		// Per-stage counters are diagnostics: stderr, like the sharding
		// fallback notices, keeping stdout a pure verdict stream.
		fmt.Fprintln(os.Stderr, "=== per-stage telemetry ===")
		for si, name := range names {
			snap := plane.StageTelemetry(si)
			fmt.Fprintf(os.Stderr, "--- stage %d: %s ---\n%s", si, name, snap.Report())
		}
	}
	return nil
}

// chainVerdict renders where a packet ended up: the emitted interfaces,
// or the stage whose entry (or implicit drop) killed it.
func chainVerdict(names []string, out *dataplane.ChainOutput) string {
	if !out.Dropped {
		ifaces := make([]string, len(out.Sent))
		for i, sp := range out.Sent {
			ifaces[i] = sp.Iface
		}
		return fmt.Sprintf("sent %s", strings.Join(ifaces, ","))
	}
	for si := len(out.Entries) - 1; si >= 0; si-- {
		switch out.Entries[si] {
		case dataplane.EntryNotReached:
			continue
		case -1:
			return fmt.Sprintf("drop@%s (no entry matched)", names[si])
		default:
			return fmt.Sprintf("drop@%s (entry %d)", names[si], out.Entries[si])
		}
	}
	return "drop"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfreplay:", err)
	os.Exit(1)
}
