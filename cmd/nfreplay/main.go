// Command nfreplay replays a packet trace through an NF — the original
// program, its synthesized model, or both side by side (-side diff,
// the §5 differential methodology on operator-supplied traffic).
//
// Usage:
//
//	nfreplay -corpus lb -trace flows.txt [-side program|model|diff]
//
// Trace format (one packet per line, # comments allowed):
//
//	tcp 10.0.0.1:1234 > 3.3.3.3:80 [S] ttl=64 len=0 iface=eth0
package main

import (
	"flag"
	"fmt"
	"os"

	"nfactor"
)

func main() {
	corpus := flag.String("corpus", "", "corpus NF to replay against")
	file := flag.String("file", "", "NFLang source file to replay against")
	traceFile := flag.String("trace", "", "trace file (- for stdin)")
	side := flag.String("side", "diff", "program | model | diff")
	flag.Parse()

	if (*corpus == "") == (*file == "") || *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: nfreplay (-corpus NAME | -file prog.nfl) -trace file [-side program|model|diff]")
		os.Exit(2)
	}

	var res *nfactor.Result
	var err error
	if *corpus != "" {
		res, err = nfactor.AnalyzeCorpus(*corpus, nfactor.Options{})
	} else {
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nfactor.AnalyzeSource(*file, string(data), nfactor.Options{})
	}
	if err != nil {
		fatal(err)
	}

	in := os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		fatal(err)
	}

	switch *side {
	case "diff":
		mism, first, err := res.DiffTestTrace(trace)
		if err != nil {
			fatal(err)
		}
		if mism == 0 {
			fmt.Printf("OK: program and model agreed on all %d packets\n", len(trace))
			return
		}
		fmt.Printf("DIVERGED on %d of %d packets; first: %s\n", mism, len(trace), first)
		os.Exit(1)
	case "program", "model":
		var verdicts []nfactor.Verdict
		if *side == "program" {
			verdicts, err = res.ReplayProgram(trace)
		} else {
			verdicts, err = res.ReplayModel(trace)
		}
		if err != nil {
			fatal(err)
		}
		for i, v := range verdicts {
			fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], v)
		}
	default:
		fatal(fmt.Errorf("unknown -side %q", *side))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfreplay:", err)
	os.Exit(1)
}
