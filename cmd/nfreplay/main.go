// Command nfreplay replays a packet trace through an NF — the original
// program, its synthesized model, the compiled data-plane engine, or
// two of them side by side (-side diff, the §5 differential methodology
// on operator-supplied traffic).
//
// Usage:
//
//	nfreplay -corpus lb -trace flows.txt [-side program|model|diff]
//	         [-fast] [-bench] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -fast replays the model side through the compiled engine instead of
// the reference interpreter (identical verdicts, much faster).
// -bench times the trace through BOTH the reference interpreter and the
// compiled engine and reports pkts/sec and ns/pkt for each.
//
// Trace format (one packet per line, # comments allowed):
//
//	tcp 10.0.0.1:1234 > 3.3.3.3:80 [S] ttl=64 len=0 iface=eth0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nfactor"
)

func main() {
	corpus := flag.String("corpus", "", "corpus NF to replay against")
	file := flag.String("file", "", "NFLang source file to replay against")
	traceFile := flag.String("trace", "", "trace file (- for stdin)")
	side := flag.String("side", "diff", "program | model | diff")
	fast := flag.Bool("fast", false, "replay the model through the compiled data-plane engine")
	bench := flag.Bool("bench", false, "time the trace through the reference interpreter and the compiled engine")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile after the replay to this file")
	flag.Parse()

	if (*corpus == "") == (*file == "") || *traceFile == "" {
		fmt.Fprintln(os.Stderr, "usage: nfreplay (-corpus NAME | -file prog.nfl) -trace file [-side program|model|diff] [-fast] [-bench]")
		os.Exit(2)
	}

	var res *nfactor.Result
	var err error
	if *corpus != "" {
		res, err = nfactor.AnalyzeCorpus(*corpus, nfactor.Options{})
	} else {
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nfactor.AnalyzeSource(*file, string(data), nfactor.Options{})
	}
	if err != nil {
		fatal(err)
	}

	in := os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	trace, err := nfactor.ParseTrace(in)
	if err != nil {
		fatal(err)
	}
	if len(trace) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bench {
		if err := runBench(res, trace); err != nil {
			fatal(err)
		}
	} else {
		if err := runReplay(res, trace, *side, *fast); err != nil {
			fatal(err)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func runReplay(res *nfactor.Result, trace []nfactor.Packet, side string, fast bool) error {
	switch side {
	case "diff":
		mism, first, err := res.DiffTestTrace(trace)
		if err != nil {
			return err
		}
		if mism == 0 {
			fmt.Printf("OK: program and model agreed on all %d packets\n", len(trace))
			return nil
		}
		fmt.Printf("DIVERGED on %d of %d packets; first: %s\n", mism, len(trace), first)
		os.Exit(1)
		return nil
	case "program", "model":
		var verdicts []nfactor.Verdict
		var err error
		switch {
		case side == "program":
			verdicts, err = res.ReplayProgram(trace)
		case fast:
			verdicts, err = res.ReplayCompiled(trace)
		default:
			verdicts, err = res.ReplayModel(trace)
		}
		if err != nil {
			return err
		}
		for i, v := range verdicts {
			fmt.Printf("%4d  %-55s %s\n", i+1, trace[i], v)
		}
		return nil
	default:
		return fmt.Errorf("unknown -side %q", side)
	}
}

// runBench cross-validates the engine against the reference on the
// trace, then times both: replays repeat until each side accumulates
// ~300ms of wall time, state warmed by a first pass.
func runBench(res *nfactor.Result, trace []nfactor.Packet) error {
	const minDur = 300 * time.Millisecond

	mism, first, err := res.DiffTestCompiled(trace)
	if err != nil {
		return err
	}
	if mism != 0 {
		return fmt.Errorf("engine diverged from the model on %d packets; first: %s", mism, first)
	}

	inst, err := res.Instance()
	if err != nil {
		return err
	}
	eng, err := res.CompiledEngine()
	if err != nil {
		return err
	}

	refNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := inst.Process(trace[i].ToValue()); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	engNs, err := timeReplay(minDur, len(trace), func() error {
		for i := range trace {
			if _, err := eng.Process(&trace[i]); err != nil {
				return fmt.Errorf("packet %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}

	fmt.Printf("trace: %d packets, engine cross-validated (0 mismatches)\n", len(trace))
	fmt.Printf("%-22s %12s %14s\n", "", "ns/pkt", "pkts/sec")
	fmt.Printf("%-22s %12.0f %14.0f\n", "reference interpreter", refNs, 1e9/refNs)
	fmt.Printf("%-22s %12.0f %14.0f\n", "compiled engine", engNs, 1e9/engNs)
	fmt.Printf("speedup: %.1fx\n", refNs/engNs)
	return nil
}

// timeReplay warms once, then repeats replay until minDur elapses and
// returns amortized ns/packet.
func timeReplay(minDur time.Duration, pkts int, replay func() error) (float64, error) {
	if err := replay(); err != nil {
		return 0, err
	}
	total := 0
	start := time.Now()
	for {
		if err := replay(); err != nil {
			return 0, err
		}
		total += pkts
		if time.Since(start) >= minDur {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfreplay:", err)
	os.Exit(1)
}
