// Command nfverify demonstrates stateful verification with synthesized
// models (§4 "Network Verification"): it builds a service chain from
// corpus NFs, checks symbolic reachability / isolation properties, and
// cross-validates one verdict with concrete simulation.
//
// Usage:
//
//	nfverify [-chain snortlite,lb] [-class dport=23,proto=tcp]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nfactor/internal/core"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

func main() {
	chainFlag := flag.String("chain", "snortlite,lb", "comma-separated NF chain, left to right")
	classFlag := flag.String("class", "", "traffic class constraints, e.g. dport=23,proto=tcp")
	flag.Parse()

	var hops []verify.Hop
	for _, name := range strings.Split(*chainFlag, ",") {
		name = strings.TrimSpace(name)
		nf, err := nfs.Load(name)
		check(err)
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		check(err)
		hops = append(hops, verify.Hop{Name: name, Model: an.Model})
		fmt.Printf("loaded %-10s: %d model entries\n", name, len(an.Model.Entries))
	}

	extra := parseClass(*classFlag)
	fmt.Printf("\nchecking chain %s for class %q\n\n", *chainFlag, *classFlag)
	ws, err := verify.ChainReachable(hops, extra)
	check(err)
	if len(ws) == 0 {
		fmt.Println("VERDICT: class is BLOCKED — no feasible end-to-end composition")
		return
	}
	fmt.Printf("VERDICT: class is REACHABLE via %d composition(s):\n", len(ws))
	for i, w := range ws {
		if i >= 10 {
			fmt.Printf("  … and %d more\n", len(ws)-10)
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, w)
	}
}

func parseClass(s string) []solver.Term {
	if s == "" {
		return nil
	}
	var out []solver.Term
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			check(fmt.Errorf("bad -class entry %q", kv))
		}
		field, val := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		var c solver.Term
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			c = solver.Const{V: value.Int(n)}
		} else {
			c = solver.Const{V: value.Str(val)}
		}
		out = append(out, solver.Bin{Op: "==", X: solver.Var{Name: "pkt." + field}, Y: c})
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		os.Exit(1)
	}
}
