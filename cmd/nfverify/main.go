// Command nfverify is the §4 "Network Verification" application:
// synthesized NF models plugged into a stateful data-plane verifier.
//
// Topology mode checks solver-proved invariants over a branching network
// of hosts, switches and NF models, with every violation carrying a
// concrete witness packet that is replayed on the concrete simulator:
//
//	nfverify -topo net.json [-invariant 'isolation(h1,h3)'] [-json] [-workers N]
//
// Invariants come from the topology file's "invariants" list plus any
// -invariant flags (repeatable): reach(src,dst), isolation(src,dst),
// waypoint(src,dst,via), loopfree, noblackhole. Exit status: 0 all
// invariants hold, 1 violation found, 2 usage or load errors.
//
// Chain mode (legacy) checks symbolic reachability of a traffic class
// through a linear service chain:
//
//	nfverify -chain snortlite,lb [-class dport=23,proto=tcp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"nfactor/internal/core"
	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// stringList collects repeatable flags.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	topoFlag := flag.String("topo", "", "topology file: check network invariants symbolically")
	var invFlags stringList
	flag.Var(&invFlags, "invariant", "additional invariant to check (repeatable), e.g. 'isolation(h1,h3)'")
	jsonOut := flag.Bool("json", false, "emit the topology report as JSON")
	workers := flag.Int("workers", 0, "parallel explorations (0: GOMAXPROCS); results are identical at any count")
	chainFlag := flag.String("chain", "", "comma-separated NF chain, left to right (legacy chain mode)")
	classFlag := flag.String("class", "", "traffic class constraints, e.g. dport=23,proto=tcp")
	flag.Parse()

	if *topoFlag != "" {
		if *chainFlag != "" {
			fmt.Fprintln(os.Stderr, "nfverify: -topo and -chain are mutually exclusive")
			os.Exit(2)
		}
		os.Exit(runTopo(*topoFlag, invFlags, *jsonOut, *workers))
	}
	chain := *chainFlag
	if chain == "" {
		chain = "snortlite,lb"
	}
	runChain(chain, *classFlag)
}

// resolveNF resolves corpus NF names through the synthesis pipeline,
// analyzing each program once.
func resolveNF() verify.NFResolver {
	cache := map[string]*core.Analysis{}
	return func(name string) (*model.Model, map[string]value.Value, map[string]value.Value, error) {
		an, ok := cache[name]
		if !ok {
			nf, err := nfs.Load(name)
			if err != nil {
				return nil, nil, nil, err
			}
			an, err = core.Analyze(name, nf.Prog, core.Options{})
			if err != nil {
				return nil, nil, nil, err
			}
			cache[name] = an
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return an.Model, config, state, nil
	}
}

// --- topology mode ----------------------------------------------------

func runTopo(path string, extraInvs []string, jsonOut bool, workers int) int {
	topo, err := verify.LoadTopo(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		return 2
	}
	invs, err := topo.ParsedInvariants()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		return 2
	}
	for _, s := range extraInvs {
		inv, err := verify.ParseInvariant(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfverify:", err)
			return 2
		}
		invs = append(invs, inv)
	}
	if len(invs) == 0 {
		fmt.Fprintln(os.Stderr, "nfverify: no invariants (topology file has none; pass -invariant)")
		return 2
	}
	resolve := resolveNF()
	net, err := topo.Sym(resolve)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		return 2
	}
	rep, err := net.Check(invs, verify.ExploreOpts{Workers: workers, Cache: solver.NewCache()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		return 2
	}
	replays := replayAll(topo, resolve, rep.Violations)

	if jsonOut {
		if err := printJSON(path, topo, invs, rep, replays); err != nil {
			fmt.Fprintln(os.Stderr, "nfverify:", err)
			return 2
		}
	} else {
		printText(path, topo, invs, rep, replays, workers)
	}
	if rep.Clean() {
		return 0
	}
	return 1
}

// replayAll validates each concrete witness on a cold concrete network
// (one fresh network per replay: NF state evolves during injection).
// The returned slice is parallel to the violations.
func replayAll(topo *verify.TopoFile, resolve verify.NFResolver, vs []verify.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = replay(topo, resolve, v)
	}
	return out
}

func replay(topo *verify.TopoFile, resolve verify.NFResolver, v verify.Violation) string {
	if v.Packet.Kind != value.KindPacket || len(v.Path) == 0 {
		return ""
	}
	conc, err := topo.Concrete(resolve)
	if err != nil {
		return fmt.Sprintf("replay unavailable: %v", err)
	}
	entry := v.Path[0]
	res, err := conc.InjectReport(entry, v.Packet)
	switch v.Kind {
	case verify.VForwardingLoop:
		if err != nil && strings.Contains(err.Error(), "hop limit") {
			return "replayed concretely: hop limit exceeded, loop confirmed"
		}
		return fmt.Sprintf("replay DISAGREES: expected hop-limit overflow, got %v", err)
	case verify.VIsolationBreach, verify.VWaypointBypass:
		if err != nil {
			return fmt.Sprintf("replay DISAGREES: %v", err)
		}
		for _, d := range res.Delivered {
			if d.Host == v.Invariant.Dst {
				return fmt.Sprintf("replayed concretely: delivered at %s via %s", d.Host, strings.Join(d.Path, " -> "))
			}
		}
		return fmt.Sprintf("replay DISAGREES: witness not delivered at %s (reached %v)", v.Invariant.Dst, res.Hosts())
	case verify.VBlackHole:
		if err != nil {
			return fmt.Sprintf("replay DISAGREES: %v", err)
		}
		for _, b := range res.BlackHoles {
			if b.Node == v.Node {
				return fmt.Sprintf("replayed concretely: black-holed at %s", b.Node)
			}
		}
		return fmt.Sprintf("replay DISAGREES: no black-hole at %s", v.Node)
	}
	return ""
}

func printText(path string, topo *verify.TopoFile, invs []verify.Invariant, rep *verify.Report, replays []string, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("topology %s: %s\n", path, topo.Summary())
	fmt.Printf("checking %d invariant(s) over %d symbolic injection(s), %d worker(s)\n\n", len(invs), rep.Explorations, workers)
	violated := map[string]bool{}
	for _, v := range rep.Violations {
		violated[v.Invariant.Raw] = true
	}
	for _, inv := range invs {
		if violated[inv.Raw] {
			fmt.Printf("FAIL %s\n", inv.Raw)
		} else {
			fmt.Printf("PASS %s\n", inv.Raw)
		}
	}
	if rep.Clean() {
		fmt.Println("\nVERDICT: all invariants hold")
		return
	}
	fmt.Printf("\n%d violation(s):\n", len(rep.Violations))
	for i, v := range rep.Violations {
		code, _ := lint.NetworkCode(v.Kind)
		fmt.Printf("  [%s] %s\n", code, v)
		if replays[i] != "" {
			fmt.Printf("        %s\n", replays[i])
		}
	}
	fmt.Println("\nVERDICT: VIOLATED")
}

type jsonViolation struct {
	Invariant string            `json:"invariant"`
	Kind      string            `json:"kind"`
	Code      string            `json:"code"`
	Node      string            `json:"node,omitempty"`
	Path      []string          `json:"path,omitempty"`
	Detail    string            `json:"detail"`
	Witness   map[string]string `json:"witness,omitempty"`
	Replay    string            `json:"replay,omitempty"`
}

func printJSON(path string, topo *verify.TopoFile, invs []verify.Invariant, rep *verify.Report, replays []string) error {
	type report struct {
		Topology   string          `json:"topology"`
		Summary    string          `json:"summary"`
		Invariants []string        `json:"invariants"`
		Clean      bool            `json:"clean"`
		Violations []jsonViolation `json:"violations"`
	}
	out := report{
		Topology:   path,
		Summary:    topo.Summary(),
		Clean:      rep.Clean(),
		Violations: []jsonViolation{},
	}
	for _, inv := range invs {
		out.Invariants = append(out.Invariants, inv.Raw)
	}
	for i, v := range rep.Violations {
		code, _ := lint.NetworkCode(v.Kind)
		jv := jsonViolation{
			Invariant: v.Invariant.Raw,
			Kind:      v.Kind.String(),
			Code:      string(code),
			Node:      v.Node,
			Path:      v.Path,
			Detail:    v.Detail,
			Replay:    replays[i],
		}
		if v.Packet.Kind == value.KindPacket {
			jv.Witness = map[string]string{}
			for f, fv := range v.Packet.Pkt.Fields {
				jv.Witness[f] = fv.String()
			}
		}
		out.Violations = append(out.Violations, jv)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// --- legacy chain mode ------------------------------------------------

func runChain(chainFlag, classFlag string) {
	var hops []verify.Hop
	for _, name := range strings.Split(chainFlag, ",") {
		name = strings.TrimSpace(name)
		nf, err := nfs.Load(name)
		check(err)
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		check(err)
		hops = append(hops, verify.Hop{Name: name, Model: an.Model})
		fmt.Printf("loaded %-10s: %d model entries\n", name, len(an.Model.Entries))
	}

	extra := parseClass(classFlag)
	fmt.Printf("\nchecking chain %s for class %q\n\n", chainFlag, classFlag)
	ws, err := verify.ChainReachable(hops, extra)
	check(err)
	if len(ws) == 0 {
		fmt.Println("VERDICT: class is BLOCKED — no feasible end-to-end composition")
		return
	}
	fmt.Printf("VERDICT: class is REACHABLE via %d composition(s):\n", len(ws))
	for i, w := range ws {
		if i >= 10 {
			fmt.Printf("  … and %d more\n", len(ws)-10)
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, w)
	}
}

func parseClass(s string) []solver.Term {
	if s == "" {
		return nil
	}
	var out []solver.Term
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			check(fmt.Errorf("bad -class entry %q", kv))
		}
		field, val := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		var c solver.Term
		if n, err := strconv.ParseInt(val, 10, 64); err == nil {
			c = solver.Const{V: value.Int(n)}
		} else {
			c = solver.Const{V: value.Str(val)}
		}
		out = append(out, solver.Bin{Op: "==", X: solver.Var{Name: "pkt." + field}, Y: c})
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfverify:", err)
		os.Exit(1)
	}
}
