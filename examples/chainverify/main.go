// Chain composition and verification: the paper's §4 applications on the
// motivating example — composing {FW, IDS} with {LB}. The synthesized
// models (a) rank the chain orders by header-rewrite hazards (PGA-style
// composition) and (b) prove isolation properties of the chosen chain
// symbolically (stateful-HSA-style verification).
package main

import (
	"fmt"
	"log"
	"strings"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

func analyzed(name string) *core.Analysis {
	nf, err := nfs.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return an
}

func main() {
	fw := analyzed("firewall")
	ids := analyzed("snortlite")
	lb := analyzed("lb")

	// --- composition: what order? ---------------------------------
	nfsList := []chain.NamedModel{
		{Name: "FW", Model: fw.Model},
		{Name: "IDS", Model: ids.Model},
		{Name: "LB", Model: lb.Model},
	}
	for _, nm := range nfsList {
		fmt.Printf("%-4s matches %v, rewrites %v\n",
			nm.Name, chain.MatchedFields(nm.Model), chain.ModifiedFields(nm.Model))
	}
	fmt.Println("\ncompositions, best first:")
	for _, o := range chain.Compose(nfsList) {
		mark := " "
		if len(o.Hazards) == 0 {
			mark = "*"
		}
		fmt.Printf(" %s %-20s hazards=%d\n", mark, strings.Join(o.Names, "->"), len(o.Hazards))
	}

	// --- verification: is telnet isolated through the chain? -------
	hops := []verify.Hop{
		{Name: "ids", Model: ids.Model},
		{Name: "lb", Model: lb.Model},
	}
	telnet := []solver.Term{
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: solver.Const{V: value.Int(23)}},
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.proto"}, Y: solver.Const{V: value.Str("tcp")}},
		solver.Bin{Op: "==", X: solver.Var{Name: "mode"}, Y: solver.Const{V: value.Str("IPS")}},
	}
	blocked, ws, err := verify.Blocked(hops, telnet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntelnet (tcp/23) through IDS(IPS mode) -> LB: blocked=%v (witnesses=%d)\n", blocked, len(ws))

	web := []solver.Term{
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: solver.Const{V: value.Int(80)}},
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.proto"}, Y: solver.Const{V: value.Str("tcp")}},
	}
	blocked, ws, err = verify.Blocked(hops, web)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web (tcp/80)    through IDS -> LB:           blocked=%v (witnesses=%d)\n", blocked, len(ws))
	if len(ws) > 0 {
		fmt.Printf("  e.g. %s\n", ws[0])
	}
}
