// Differential testing: the paper's §5 accuracy methodology end to end.
// For every corpus NF, the synthesized model and the original program
// each process the same random traffic with their own evolving state;
// any divergence in forwarding behaviour is a model bug. The symbolic
// path-set comparison runs first.
package main

import (
	"fmt"
	"log"

	"nfactor"
)

func main() {
	const trials = 1000 // the paper repeats the experiment 1000 times

	for _, name := range nfactor.CorpusNames() {
		res, err := nfactor.AnalyzeCorpus(name, nfactor.Options{})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}

		// Accuracy part 1: symbolic execution on both sides, compare the
		// path sets.
		equiv := "path sets EQUAL"
		if err := res.CheckEquivalence(); err != nil {
			equiv = "path sets DIFFER: " + err.Error()
		}

		// Accuracy part 2: 1000 random packets through program and model.
		rep, err := res.DiffTest(nfactor.DiffOptions{N: trials, Seed: 2026})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		verdict := fmt.Sprintf("%d/%d outputs identical", rep.Trials-rep.Mismatches, rep.Trials)
		if rep.First != nil {
			verdict += " — first divergence: " + rep.FirstDiff
		}
		fmt.Printf("%-10s %-18s %s\n", name, equiv, verdict)
	}
}
