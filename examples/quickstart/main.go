// Quickstart: synthesize the forwarding model of the paper's Figure 1
// load balancer and print every pipeline artifact — the Table 1 variable
// categorization, the program slice, and the Figure 6-style model.
package main

import (
	"fmt"
	"log"

	"nfactor"
)

func main() {
	// The corpus ships the paper's NFs; "lb" is Figure 1. Analyzing your
	// own NF is the same call with your source text:
	// nfactor.AnalyzeSource("mynf", src, opts).
	res, err := nfactor.AnalyzeCorpus("lb", nfactor.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== variable categorization (Table 1) ===")
	fmt.Println(res.VariableTable())

	fmt.Println("=== packet + state slice (Figure 1's highlighted lines) ===")
	fmt.Println(res.RenderSlice())

	fmt.Println("=== synthesized forwarding model ===")
	fmt.Println(res.RenderModel())

	m := res.Metrics()
	fmt.Printf("metrics: %d LoC -> %d LoC slice, %d execution paths, slicing %v, SE %v\n",
		m.LoCOrig, m.LoCSlice, m.EPSlice, m.SliceTime, m.SETimeSlice)

	// The model is executable: run traffic through it.
	inst, err := res.Instance()
	if err != nil {
		log.Fatal(err)
	}
	pkt := nfactor.Packet{
		SrcIP: "9.9.9.9", DstIP: "3.3.3.3", SrcPort: 4242, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "eth0",
	}
	out, err := inst.Process(pkt.ToValue())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel forwards %s -> %s\n", pkt, out.Sent[0].Pkt)
}
