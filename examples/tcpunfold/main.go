// TCP unfolding: the paper's §3.2 "Hidden States" treatment end to end.
// balance 3.5 is written in socket style (Figure 3, nested loops); its
// TCP connection state lives inside the OS. This example shows the
// detected code structure, the Figure 5 single-loop program produced by
// unfolding the socket calls into packet-level operations with an
// explicit TCP state machine, and the Figure 6 model extracted from it.
package main

import (
	"fmt"
	"log"

	"nfactor"
)

func main() {
	src, err := nfactor.CorpusSource("balance")
	if err != nil {
		log.Fatal(err)
	}
	kind, err := nfactor.DetectStructure(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== balance: detected code structure: %q (Figure 4d) ===\n\n", kind)
	fmt.Println(src)

	normalized, err := nfactor.NormalizeSource(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== after TCP unfolding (the Figure 5 form) ===")
	fmt.Println(normalized)

	res, err := nfactor.AnalyzeCorpus("balance", nfactor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== synthesized model (the paper's Figure 6) ===")
	fmt.Println(res.RenderModel())

	// Drive the model with a client handshake + data packet and watch the
	// TCP state machine the unfolding made explicit.
	inst, err := res.Instance()
	if err != nil {
		log.Fatal(err)
	}
	client := nfactor.Packet{
		SrcIP: "7.7.7.7", DstIP: "3.3.3.3", SrcPort: 5555, DstPort: 80,
		Proto: "tcp", TTL: 64, InIface: "eth0",
	}
	for _, step := range []struct{ flags, what string }{
		{"S", "SYN (opens connection, picks backend)"},
		{"A", "ACK (completes handshake)"},
		{"PA", "data (relayed in ESTABLISHED)"},
	} {
		p := client
		p.Flags = step.flags
		out, err := inst.Process(p.ToValue())
		if err != nil {
			log.Fatal(err)
		}
		action := "DROP"
		if len(out.Sent) > 0 {
			action = "forward -> " + out.Sent[0].Pkt.String()
		}
		fmt.Printf("%-45s %s\n", step.what+":", action)
	}
}
