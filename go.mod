module nfactor

go 1.22
