// Package buzz implements the paper's §4 "Testing" application: model-
// guided test packet generation, complementary to BUZZ. Where BUZZ builds
// its NF models manually from domain knowledge, here the NFactor-
// synthesized model drives generation: each table entry is a test target,
// and a packet sequence is synthesized that steers the NF's state until
// every reachable entry has fired.
package buzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// TestStep is one generated test packet and the model entry it exercised.
type TestStep struct {
	Pkt   value.Value
	Entry int // entry index fired (-1: default drop)
}

// Suite is a generated test suite.
type Suite struct {
	Steps []TestStep
	// Covered[i] is true when entry i fired at least once.
	Covered []bool
}

// Coverage returns covered and total entry counts.
func (s *Suite) Coverage() (covered, total int) {
	for _, c := range s.Covered {
		if c {
			covered++
		}
	}
	return covered, len(s.Covered)
}

// Options configure generation.
type Options struct {
	Seed      int64
	MaxRounds int // synthesis rounds (default 8)
	Tries     int // random completions per entry per round (default 64)
}

// Generate synthesizes a packet sequence covering as many model entries
// as possible. config/initState instantiate the model (as in
// model.NewInstance); the generator owns the instance and advances its
// state with every emitted packet, so state-dependent entries (e.g.
// "existing connection") become coverable after the state-creating
// entries fire.
func Generate(m *model.Model, config, initState map[string]value.Value, opts Options) (*Suite, error) {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 8
	}
	if opts.Tries == 0 {
		opts.Tries = 64
	}
	inst, err := model.NewInstance(m, config, initState)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	suite := &Suite{Covered: make([]bool, len(m.Entries))}

	for round := 0; round < opts.MaxRounds; round++ {
		progress := false
		for i := range m.Entries {
			if suite.Covered[i] {
				continue
			}
			pkt := synthesize(m, &m.Entries[i], inst, config, rng, opts.Tries)
			if pkt.Kind != value.KindPacket {
				continue
			}
			_, fired, err := inst.ProcessTraced(pkt)
			if err != nil {
				continue // guard evaluation error on an unrelated entry; skip
			}
			suite.Steps = append(suite.Steps, TestStep{Pkt: pkt, Entry: fired})
			if fired >= 0 && !suite.Covered[fired] {
				suite.Covered[fired] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return suite, nil
}

// synthesize attempts to build a concrete packet satisfying the entry's
// guard under the instance's current state.
func synthesize(m *model.Model, e *model.Entry, inst *model.Instance, config map[string]value.Value, rng *rand.Rand, tries int) value.Value {
	return Synthesize(e.Guard(), inst.State(), config, rng, tries)
}

// Synthesize builds a concrete packet satisfying the conjunction of
// guard literals under the given state and config: constraint-directed
// field seeding plus randomized completion, validated by concrete guard
// evaluation. It returns the zero Value when no satisfying packet is
// found within tries attempts. Exported so other constraint consumers —
// gap-trace workload generation, topology-verification witness replay —
// share one concretization procedure.
func Synthesize(guard []solver.Term, state, config map[string]value.Value, rng *rand.Rand, tries int) value.Value {
	for attempt := 0; attempt < tries; attempt++ {
		fields := map[string]value.Value{
			"sip":      value.Str(randIP(rng)),
			"dip":      value.Str(randIP(rng)),
			"sport":    value.Int(int64(1 + rng.Intn(65535))),
			"dport":    value.Int(int64(1 + rng.Intn(65535))),
			"proto":    value.Str([]string{"tcp", "udp", "icmp"}[rng.Intn(3)]),
			"flags":    value.Str([]string{"", "S", "A", "SA"}[rng.Intn(4)]),
			"ttl":      value.Int(64),
			"length":   value.Int(int64(rng.Intn(1400))),
			"in_iface": value.Str([]string{"eth0", "lan", "wan"}[rng.Intn(3)]),
		}
		env := synthEnv{fields: fields, state: state, config: config}
		for _, g := range guard {
			seedFromAtom(g, fields, env, rng)
		}
		pkt := value.NewPacket(fields)
		ok := true
		for _, g := range guard {
			b, err := solver.EvalBool(g, evalEnv{pkt: pkt, state: state, config: config})
			if err != nil || !b {
				ok = false
				break
			}
		}
		if ok {
			return pkt
		}
	}
	return value.Value{}
}

type synthEnv struct {
	fields map[string]value.Value
	state  map[string]value.Value
	config map[string]value.Value
}

type evalEnv struct {
	pkt    value.Value
	state  map[string]value.Value
	config map[string]value.Value
}

// Lookup implements solver.Env.
func (e evalEnv) Lookup(name string) (value.Value, bool) {
	if f, ok := strings.CutPrefix(name, "pkt."); ok {
		v, ok := e.pkt.Pkt.Fields[f]
		return v, ok
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.state[base]
		return v, ok
	}
	v, ok := e.config[name]
	return v, ok
}

// stateEnv resolves non-packet variables only, for computing the ground
// side of equality atoms.
type stateEnv struct {
	state  map[string]value.Value
	config map[string]value.Value
}

// Lookup implements solver.Env.
func (e stateEnv) Lookup(name string) (value.Value, bool) {
	if strings.HasPrefix(name, "pkt.") {
		return value.Value{}, false
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.state[base]
		return v, ok
	}
	v, ok := e.config[name]
	return v, ok
}

// seedFromAtom plants field values implied by one guard literal.
func seedFromAtom(g solver.Term, fields map[string]value.Value, env synthEnv, rng *rand.Rand) {
	ground := stateEnv{state: env.state, config: env.config}
	switch x := g.(type) {
	case solver.Bin:
		// pkt.f == <ground term> (either side).
		if f, ok := pktFieldOf(x.X); ok {
			if v, err := solver.Eval(x.Y, ground); err == nil {
				seedCmp(fields, f, x.Op, v, rng)
			}
		} else if f, ok := pktFieldOf(x.Y); ok {
			if v, err := solver.Eval(x.X, ground); err == nil {
				seedCmp(fields, f, flipOp(x.Op), v, rng)
			}
		}
	case solver.In:
		// (pkt.a, pkt.b, …) in <ground map>: pick a key from the map and
		// assign its components to the packet fields.
		m, err := solver.Eval(x.M, ground)
		if err != nil || m.Kind != value.KindMap || m.Map.Len() == 0 {
			return
		}
		keys := m.Map.Keys()
		k := keys[rng.Intn(len(keys))]
		assignKey(x.K, k, fields)
	case solver.Un:
		if x.Op == "!" {
			// Negated membership and flags: random defaults usually
			// satisfy them; nothing to seed.
			return
		}
	case solver.Call:
		if x.Fn == "contains" && len(x.Args) == 2 {
			if f, ok := pktFieldOf(x.Args[0]); ok {
				if c, isC := x.Args[1].(solver.Const); isC && c.V.Kind == value.KindStr {
					cur := ""
					if v, ok := fields[f]; ok && v.Kind == value.KindStr {
						cur = v.S
					}
					if !strings.Contains(cur, c.V.S) {
						fields[f] = value.Str(cur + c.V.S)
					}
				}
			}
		}
	}
}

func seedCmp(fields map[string]value.Value, f, op string, v value.Value, rng *rand.Rand) {
	switch op {
	case "==":
		fields[f] = v
	case "!=":
		if cur, ok := fields[f]; ok && value.Equal(cur, v) {
			if v.Kind == value.KindInt {
				fields[f] = value.Int(v.I + 1)
			} else if v.Kind == value.KindStr {
				fields[f] = value.Str(v.S + "x")
			}
		}
	case "<", "<=":
		if v.Kind == value.KindInt {
			d := int64(1)
			if op == "<=" {
				d = 0
			}
			fields[f] = value.Int(v.I - d - int64(rng.Intn(8)))
		}
	case ">", ">=":
		if v.Kind == value.KindInt {
			d := int64(1)
			if op == ">=" {
				d = 0
			}
			fields[f] = value.Int(v.I + d + int64(rng.Intn(8)))
		}
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// pktFieldOf returns the field name when t is a pkt.* variable.
func pktFieldOf(t solver.Term) (string, bool) {
	v, ok := t.(solver.Var)
	if !ok {
		return "", false
	}
	return strings.CutPrefix(v.Name, "pkt.")
}

// assignKey maps a key tuple term (pkt.a, pkt.b, const, …) onto a
// concrete key value, writing the packet fields elementwise.
func assignKey(keyTerm solver.Term, key value.Value, fields map[string]value.Value) {
	if f, ok := pktFieldOf(keyTerm); ok {
		fields[f] = key
		return
	}
	tup, ok := keyTerm.(solver.Tuple)
	if !ok || key.Kind != value.KindTuple || len(tup.Elems) != len(key.Tuple) {
		return
	}
	for i, el := range tup.Elems {
		if f, ok := pktFieldOf(el); ok {
			fields[f] = key.Tuple[i]
		}
	}
}

func randIP(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(223), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

// Render prints the suite as a human-readable test plan.
func Render(m *model.Model, s *Suite) string {
	var sb strings.Builder
	covered, total := s.Coverage()
	fmt.Fprintf(&sb, "BUZZ-style test suite for %s: %d/%d entries covered, %d packets\n",
		m.NFName, covered, total, len(s.Steps))
	for i, st := range s.Steps {
		target := "default-drop"
		if st.Entry >= 0 {
			target = fmt.Sprintf("entry %d", st.Entry)
		}
		fmt.Fprintf(&sb, "  %2d. %s -> %s\n", i+1, st.Pkt, target)
	}
	var missing []int
	for i, c := range s.Covered {
		if !c {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		fmt.Fprintf(&sb, "  uncovered entries: %v\n", missing)
	}
	return sb.String()
}
