package buzz_test

import (
	"strings"
	"testing"

	"nfactor/internal/buzz"
	"nfactor/internal/core"
	"nfactor/internal/interp"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
)

func generate(t *testing.T, name string, opts buzz.Options) (*core.Analysis, *buzz.Suite) {
	t.Helper()
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := buzz.Generate(an.Model, config, state, opts)
	if err != nil {
		t.Fatal(err)
	}
	return an, suite
}

func TestGenerateCoversLB(t *testing.T) {
	an, suite := generate(t, "lb", buzz.Options{Seed: 1})
	covered, total := suite.Coverage()
	if total != len(an.Model.Entries) {
		t.Fatalf("total = %d", total)
	}
	// All but the HASH-mode entry are coverable under the RR
	// configuration (the hash entry needs mode == "HASH").
	if covered < total-1 {
		t.Errorf("coverage %d/%d too low:\n%s", covered, total, buzz.Render(an.Model, suite))
	}
	// The "existing connection" entry requires a prior state-creating
	// packet; its coverage proves multi-step sequencing works.
	var hitStateful bool
	for i, e := range an.Model.Entries {
		if len(e.StateMatch) > 0 && !e.Dropped() && suite.Covered[i] {
			for _, c := range e.StateMatch {
				if strings.Contains(c.String(), "in f2b_nat@0") &&
					!strings.Contains(c.String(), "!") {
					hitStateful = true
				}
			}
		}
	}
	if !hitStateful {
		t.Errorf("existing-connection entry not covered:\n%s", buzz.Render(an.Model, suite))
	}
}

func TestGenerateCoversFirewall(t *testing.T) {
	an, suite := generate(t, "firewall", buzz.Options{Seed: 2})
	covered, total := suite.Coverage()
	if covered != total {
		t.Errorf("firewall coverage %d/%d:\n%s", covered, total, buzz.Render(an.Model, suite))
	}
}

func TestGenerateCoversNAT(t *testing.T) {
	an, suite := generate(t, "nat", buzz.Options{Seed: 3})
	covered, total := suite.Coverage()
	if covered != total {
		t.Errorf("nat coverage %d/%d:\n%s", covered, total, buzz.Render(an.Model, suite))
	}
}

func TestGeneratedPacketsReplayOnOriginalProgram(t *testing.T) {
	// BUZZ's purpose: the generated packets drive the REAL NF. Replaying
	// the suite against the original program must exercise both forward
	// and drop verdicts without runtime errors.
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze("firewall", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := buzz.Generate(an.Model, config, state, buzz.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(nf.Prog, "process", interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sends, drops int
	for _, step := range suite.Steps {
		out, err := in.Process(step.Pkt)
		if err != nil {
			t.Fatalf("original program rejected generated packet %s: %v", step.Pkt, err)
		}
		if out.Dropped {
			drops++
		} else {
			sends++
		}
	}
	if sends == 0 || drops == 0 {
		t.Errorf("suite did not exercise both verdicts: sends=%d drops=%d", sends, drops)
	}
}

func TestRenderSuite(t *testing.T) {
	an, suite := generate(t, "firewall", buzz.Options{Seed: 5})
	out := buzz.Render(an.Model, suite)
	if !strings.Contains(out, "entries covered") {
		t.Errorf("render = %q", out)
	}
}

func TestGenerateRespectsRounds(t *testing.T) {
	_, suite := generate(t, "lb", buzz.Options{Seed: 6, MaxRounds: 1, Tries: 4})
	if len(suite.Steps) == 0 {
		t.Error("single round produced no steps")
	}
}

func TestGenerateCoversSnortlite(t *testing.T) {
	an, suite := generate(t, "snortlite", buzz.Options{Seed: 11, MaxRounds: 12, Tries: 128})
	covered, total := suite.Coverage()
	// Not every entry is coverable under the instantiated configuration:
	// config-gated entries (the IDS-mode variants — mode is pinned to IPS
	// at instance creation) can never fire, and the SYN-flood entries
	// need SYN_LIMIT=100 priming packets. Count the feasible ones.
	config, _, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for i := range an.Model.Entries {
		e := &an.Model.Entries[i]
		ok := true
		for _, c := range e.Config {
			b, err := solver.EvalBool(c, solver.MapEnv(config))
			if err != nil || !b {
				ok = false
				break
			}
		}
		for _, c := range e.StateMatch {
			if strings.Contains(c.String(), "> SYN_LIMIT") {
				ok = false
			}
		}
		if ok {
			feasible++
		}
	}
	if covered < feasible {
		t.Errorf("snortlite coverage %d < feasible %d (total %d):\n%s",
			covered, feasible, total, buzz.Render(an.Model, suite))
	}
}

func TestGenerateCoversDPI(t *testing.T) {
	an, suite := generate(t, "dpi", buzz.Options{Seed: 12, MaxRounds: 10, Tries: 128})
	covered, total := suite.Coverage()
	if covered < total/2 {
		t.Errorf("dpi coverage %d/%d too low:\n%s", covered, total, buzz.Render(an.Model, suite))
	}
	// Content-matching entries require seeded payloads; at least one
	// generated packet must carry a signature.
	foundSig := false
	for _, st := range suite.Steps {
		if p, ok := st.Pkt.Pkt.Fields["payload"]; ok && p.Kind == 2 /* KindStr */ && p.S != "" {
			foundSig = true
		}
	}
	if !foundSig {
		t.Error("no generated packet carries a payload")
	}
}

func TestGenerateMirrorsMultiSendEntry(t *testing.T) {
	an, suite := generate(t, "mirror", buzz.Options{Seed: 13})
	covered, total := suite.Coverage()
	if covered != total {
		t.Errorf("mirror coverage %d/%d:\n%s", covered, total, buzz.Render(an.Model, suite))
	}
}
