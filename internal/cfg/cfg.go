// Package cfg builds statement-level control-flow graphs for NFLang
// functions. The CFG is the substrate for reaching definitions
// (internal/dataflow), control dependence (internal/pdg) and therefore
// program slicing (internal/slice) — the giri-equivalent layer of the
// NFactor pipeline.
package cfg

import (
	"fmt"
	"sort"

	"nfactor/internal/lang"
)

// NodeKind distinguishes synthetic from statement nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota
	KindExit
	KindStmt   // simple statement (assign, expr, return, break, continue)
	KindBranch // condition of an if / while / for header
)

// Node is a CFG node. Statement nodes carry the AST statement; branch
// nodes carry the If/While/For statement whose condition they evaluate.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt lang.Stmt
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	switch n.Kind {
	case KindEntry:
		return "ENTRY"
	case KindExit:
		return "EXIT"
	default:
		return fmt.Sprintf("n%d@%s", n.ID, n.Stmt.NodePos())
	}
}

// Graph is a control-flow graph over one function (with the program's
// global initializers as a prelude, so definitions of persistent
// variables reach their uses inside the packet-processing function).
type Graph struct {
	Nodes []*Node
	Entry *Node
	Exit  *Node

	succs  map[int][]int
	preds  map[int][]int
	byStmt map[int]*Node
}

// Succs returns the successor node IDs of id, in insertion order.
func (g *Graph) Succs(id int) []int { return g.succs[id] }

// Preds returns the predecessor node IDs of id.
func (g *Graph) Preds(id int) []int { return g.preds[id] }

// NodeByStmt returns the CFG node for an AST statement ID, or nil (blocks
// have no node of their own).
func (g *Graph) NodeByStmt(stmtID int) *Node { return g.byStmt[stmtID] }

// Node returns the node with the given CFG node ID.
func (g *Graph) Node(id int) *Node { return g.Nodes[id] }

func (g *Graph) addNode(kind NodeKind, s lang.Stmt) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind, Stmt: s}
	g.Nodes = append(g.Nodes, n)
	if s != nil {
		g.byStmt[s.StmtID()] = n
	}
	return n
}

func (g *Graph) addEdge(from, to int) {
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

type loopCtx struct {
	head  int   // branch node to continue to
	after []int // filled later: break sources jump past the loop
}

type builder struct {
	g     *Graph
	loops []*loopCtx
	// breakEdges records (fromNode, loop) pairs resolved once the loop's
	// after-node is known.
	pendingBreaks map[*loopCtx][]int
}

// Build constructs the CFG of function fname in prog, with the top-level
// global assignments as a prelude between ENTRY and the function body.
func Build(prog *lang.Program, fname string) (*Graph, error) {
	fn := prog.Func(fname)
	if fn == nil {
		return nil, fmt.Errorf("cfg: no function %q", fname)
	}
	g := &Graph{
		succs:  make(map[int][]int),
		preds:  make(map[int][]int),
		byStmt: make(map[int]*Node),
	}
	b := &builder{g: g, pendingBreaks: make(map[*loopCtx][]int)}
	g.Entry = g.addNode(KindEntry, nil)
	g.Exit = g.addNode(KindExit, nil)

	tails := []int{g.Entry.ID}
	for _, gl := range prog.Globals {
		n := g.addNode(KindStmt, gl)
		b.link(tails, n.ID)
		tails = []int{n.ID}
	}
	tails, err := b.buildBlock(fn.Body, tails)
	if err != nil {
		return nil, err
	}
	b.link(tails, g.Exit.ID)
	g.prune()
	return g, nil
}

func (b *builder) link(from []int, to int) {
	for _, f := range from {
		b.g.addEdge(f, to)
	}
}

// buildBlock threads the block's statements, returning the dangling tails
// that should flow to whatever follows the block.
func (b *builder) buildBlock(blk *lang.BlockStmt, tails []int) ([]int, error) {
	cur := tails
	for _, s := range blk.Stmts {
		var err error
		cur, err = b.buildStmt(s, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (b *builder) buildStmt(s lang.Stmt, tails []int) ([]int, error) {
	g := b.g
	switch st := s.(type) {
	case *lang.AssignStmt, *lang.ExprStmt:
		n := g.addNode(KindStmt, s)
		b.link(tails, n.ID)
		return []int{n.ID}, nil

	case *lang.ReturnStmt:
		n := g.addNode(KindStmt, s)
		b.link(tails, n.ID)
		g.addEdge(n.ID, g.Exit.ID)
		return nil, nil

	case *lang.BreakStmt:
		if len(b.loops) == 0 {
			return nil, fmt.Errorf("cfg: break outside loop at %s", st.NodePos())
		}
		n := g.addNode(KindStmt, s)
		b.link(tails, n.ID)
		lc := b.loops[len(b.loops)-1]
		b.pendingBreaks[lc] = append(b.pendingBreaks[lc], n.ID)
		return nil, nil

	case *lang.ContinueStmt:
		if len(b.loops) == 0 {
			return nil, fmt.Errorf("cfg: continue outside loop at %s", st.NodePos())
		}
		n := g.addNode(KindStmt, s)
		b.link(tails, n.ID)
		g.addEdge(n.ID, b.loops[len(b.loops)-1].head)
		return nil, nil

	case *lang.IfStmt:
		cond := g.addNode(KindBranch, s)
		b.link(tails, cond.ID)
		thenTails, err := b.buildBlock(st.Then, []int{cond.ID})
		if err != nil {
			return nil, err
		}
		out := thenTails
		if st.Else != nil {
			elseTails, err := b.buildBlock(st.Else, []int{cond.ID})
			if err != nil {
				return nil, err
			}
			out = append(out, elseTails...)
		} else {
			out = append(out, cond.ID)
		}
		return out, nil

	case *lang.WhileStmt:
		cond := g.addNode(KindBranch, s)
		b.link(tails, cond.ID)
		lc := &loopCtx{head: cond.ID}
		b.loops = append(b.loops, lc)
		bodyTails, err := b.buildBlock(st.Body, []int{cond.ID})
		if err != nil {
			return nil, err
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.link(bodyTails, cond.ID)
		out := []int{cond.ID}
		out = append(out, b.pendingBreaks[lc]...)
		delete(b.pendingBreaks, lc)
		return out, nil

	case *lang.ForStmt:
		head := g.addNode(KindBranch, s)
		b.link(tails, head.ID)
		lc := &loopCtx{head: head.ID}
		b.loops = append(b.loops, lc)
		bodyTails, err := b.buildBlock(st.Body, []int{head.ID})
		if err != nil {
			return nil, err
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.link(bodyTails, head.ID)
		out := []int{head.ID}
		out = append(out, b.pendingBreaks[lc]...)
		delete(b.pendingBreaks, lc)
		return out, nil

	case *lang.BlockStmt:
		return b.buildBlock(st, tails)

	default:
		return nil, fmt.Errorf("cfg: unsupported statement %T", s)
	}
}

// prune removes nodes unreachable from ENTRY (dead code after returns),
// keeping analyses well-defined. Node IDs are reassigned densely.
func (g *Graph) prune() {
	reach := map[int]bool{g.Entry.ID: true}
	work := []int{g.Entry.ID}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.succs[n] {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	reach[g.Exit.ID] = true // always keep EXIT

	remap := make(map[int]int, len(g.Nodes))
	var nodes []*Node
	for _, n := range g.Nodes {
		if reach[n.ID] {
			remap[n.ID] = len(nodes)
			nodes = append(nodes, n)
		}
	}
	succs := make(map[int][]int)
	preds := make(map[int][]int)
	for _, n := range nodes {
		for _, s := range g.succs[n.ID] {
			if !reach[s] {
				continue
			}
			succs[remap[n.ID]] = append(succs[remap[n.ID]], remap[s])
			preds[remap[s]] = append(preds[remap[s]], remap[n.ID])
		}
	}
	byStmt := make(map[int]*Node)
	for _, n := range nodes {
		n.ID = remap[n.ID]
		if n.Stmt != nil {
			byStmt[n.Stmt.StmtID()] = n
		}
	}
	g.Nodes, g.succs, g.preds, g.byStmt = nodes, succs, preds, byStmt
}

// Postdominators returns, for each node ID, the set of node IDs that
// postdominate it (including itself). Nodes that cannot reach EXIT
// (infinite loops) postdominate vacuously; NF per-packet functions always
// reach EXIT.
func (g *Graph) Postdominators() []map[int]bool {
	return g.dominatorsOn(g.Exit.ID, g.preds, g.succs)
}

// Dominators returns, for each node ID, its dominator set.
func (g *Graph) Dominators() []map[int]bool {
	return g.dominatorsOn(g.Entry.ID, g.succs, g.preds)
}

// dominatorsOn runs the classic iterative dominator dataflow with root as
// the start node and "pred" edges given by in.
func (g *Graph) dominatorsOn(root int, _ map[int][]int, in map[int][]int) []map[int]bool {
	n := len(g.Nodes)
	dom := make([]map[int]bool, n)
	all := map[int]bool{}
	for i := 0; i < n; i++ {
		all[i] = true
	}
	for i := 0; i < n; i++ {
		if i == root {
			dom[i] = map[int]bool{i: true}
		} else {
			dom[i] = cloneSet(all)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			var inter map[int]bool
			for _, p := range in[i] {
				if inter == nil {
					inter = cloneSet(dom[p])
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[int]bool{}
			}
			inter[i] = true
			if !sameSet(inter, dom[i]) {
				dom[i] = inter
				changed = true
			}
		}
	}
	return dom
}

// ImmediatePostdominators computes ipdom for every node (the EXIT node
// maps to itself). Nodes that cannot reach exit map to -1.
func (g *Graph) ImmediatePostdominators() []int {
	pdom := g.Postdominators()
	n := len(g.Nodes)
	ipdom := make([]int, n)
	for i := 0; i < n; i++ {
		if i == g.Exit.ID {
			ipdom[i] = i
			continue
		}
		// ipdom is the strict postdominator with the smallest pdom set
		// larger than {exit...} — equivalently the strict postdominator
		// postdominated by all other strict postdominators.
		strict := make([]int, 0, len(pdom[i]))
		for d := range pdom[i] {
			if d != i {
				strict = append(strict, d)
			}
		}
		sort.Slice(strict, func(a, b int) bool { return len(pdom[strict[a]]) > len(pdom[strict[b]]) })
		if len(strict) == 0 {
			ipdom[i] = -1
			continue
		}
		ipdom[i] = strict[0]
	}
	return ipdom
}

func cloneSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
