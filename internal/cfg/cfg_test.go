package cfg

import (
	"testing"

	"nfactor/internal/lang"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog := lang.MustParse(src)
	g, err := Build(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinearChain(t *testing.T) {
	g := build(t, `
x = 1;
func process(pkt) {
    a = x;
    b = a + 1;
}`)
	// ENTRY → x=1 → a=x → b=a+1 → EXIT
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(g.Nodes))
	}
	cur := g.Entry.ID
	for i := 0; i < 3; i++ {
		succs := g.Succs(cur)
		if len(succs) != 1 {
			t.Fatalf("node %d has %d succs", cur, len(succs))
		}
		cur = succs[0]
	}
	if succs := g.Succs(cur); len(succs) != 1 || succs[0] != g.Exit.ID {
		t.Fatalf("last statement does not flow to EXIT: %v", succs)
	}
}

func TestIfDiamond(t *testing.T) {
	g := build(t, `
func process(pkt) {
    if pkt.dport == 80 {
        a = 1;
    } else {
        a = 2;
    }
    b = a;
}`)
	var branch *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
	}
	if branch == nil {
		t.Fatal("no branch node")
	}
	if len(g.Succs(branch.ID)) != 2 {
		t.Fatalf("branch succs = %v", g.Succs(branch.ID))
	}
	// Both arms converge on b = a.
	join := -1
	for _, arm := range g.Succs(branch.ID) {
		s := g.Succs(arm)
		if len(s) != 1 {
			t.Fatalf("arm %d succs = %v", arm, s)
		}
		if join == -1 {
			join = s[0]
		} else if join != s[0] {
			t.Fatalf("arms do not join: %d vs %d", join, s[0])
		}
	}
}

func TestIfWithoutElseFallThrough(t *testing.T) {
	g := build(t, `
func process(pkt) {
    if pkt.dport == 80 { a = 1; }
    b = 2;
}`)
	var branch *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
	}
	if len(g.Succs(branch.ID)) != 2 {
		t.Fatalf("branch without else should still have 2 succs, got %v", g.Succs(branch.ID))
	}
}

func TestWhileLoopBackEdge(t *testing.T) {
	g := build(t, `
func process(pkt) {
    i = 0;
    while i < 3 {
        i = i + 1;
    }
    send(pkt);
}`)
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			head = n
		}
	}
	// body node must loop back to the head
	foundBack := false
	for _, p := range g.Preds(head.ID) {
		if p != g.Entry.ID && g.Node(p).Kind == KindStmt {
			for _, s := range g.Succs(p) {
				if s == head.ID {
					foundBack = true
				}
			}
		}
	}
	if !foundBack {
		t.Error("no back edge to loop head")
	}
}

func TestBreakContinueEdges(t *testing.T) {
	g := build(t, `
func process(pkt) {
    while true {
        if pkt.ttl == 0 { break; }
        if pkt.ttl == 1 { continue; }
        pkt.ttl = pkt.ttl - 1;
    }
    send(pkt);
}`)
	var brk, cont *Node
	for _, n := range g.Nodes {
		switch n.Stmt.(type) {
		case *lang.BreakStmt:
			brk = n
		case *lang.ContinueStmt:
			cont = n
		}
	}
	if brk == nil || cont == nil {
		t.Fatal("missing break/continue nodes")
	}
	// break jumps to the send statement
	bs := g.Succs(brk.ID)
	if len(bs) != 1 {
		t.Fatalf("break succs = %v", bs)
	}
	if es, ok := g.Node(bs[0]).Stmt.(*lang.ExprStmt); !ok || lang.ExprString(es.X) != "send(pkt)" {
		t.Errorf("break target = %v", g.Node(bs[0]))
	}
	// continue jumps to a branch node (the loop head)
	cs := g.Succs(cont.ID)
	if len(cs) != 1 || g.Node(cs[0]).Kind != KindBranch {
		t.Errorf("continue target = %v", cs)
	}
}

func TestReturnEdgesToExitAndPrune(t *testing.T) {
	g := build(t, `
func process(pkt) {
    if pkt.dport == 80 {
        return;
    }
    send(pkt);
}`)
	var ret *Node
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*lang.ReturnStmt); ok {
			ret = n
		}
	}
	if ret == nil {
		t.Fatal("no return node")
	}
	if s := g.Succs(ret.ID); len(s) != 1 || s[0] != g.Exit.ID {
		t.Errorf("return succs = %v", s)
	}
}

func TestDeadCodePruned(t *testing.T) {
	g := build(t, `
func process(pkt) {
    return;
    send(pkt);
}`)
	for _, n := range g.Nodes {
		if es, ok := n.Stmt.(*lang.ExprStmt); ok {
			t.Errorf("dead statement %s survived pruning", lang.ExprString(es.X))
		}
	}
}

func TestBreakOutsideLoopErrors(t *testing.T) {
	prog := lang.MustParse(`func process(pkt) { break; }`)
	if _, err := Build(prog, "process"); err == nil {
		t.Error("break outside loop did not error")
	}
	prog = lang.MustParse(`func process(pkt) { continue; }`)
	if _, err := Build(prog, "process"); err == nil {
		t.Error("continue outside loop did not error")
	}
}

func TestMissingFunctionErrors(t *testing.T) {
	prog := lang.MustParse(`x = 1;`)
	if _, err := Build(prog, "process"); err == nil {
		t.Error("missing function did not error")
	}
}

func TestPostdominators(t *testing.T) {
	g := build(t, `
func process(pkt) {
    if pkt.dport == 80 { a = 1; } else { a = 2; }
    b = a;
}`)
	pdom := g.Postdominators()
	var branch, join *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
		if as, ok := n.Stmt.(*lang.AssignStmt); ok && lang.ExprString(as.LHS[0]) == "b" {
			join = n
		}
	}
	if !pdom[branch.ID][join.ID] {
		t.Error("join does not postdominate branch")
	}
	for _, arm := range g.Succs(branch.ID) {
		if pdom[branch.ID][arm] {
			t.Errorf("arm %d postdominates branch", arm)
		}
	}
	ipdom := g.ImmediatePostdominators()
	if ipdom[branch.ID] != join.ID {
		t.Errorf("ipdom(branch) = %d, want %d (join)", ipdom[branch.ID], join.ID)
	}
}

func TestDominators(t *testing.T) {
	g := build(t, `
func process(pkt) {
    a = 1;
    if a == 1 { b = 2; }
    c = 3;
}`)
	dom := g.Dominators()
	// Every node is dominated by ENTRY.
	for _, n := range g.Nodes {
		if !dom[n.ID][g.Entry.ID] {
			t.Errorf("node %v not dominated by entry", n)
		}
	}
	// The then-arm is dominated by the branch.
	var branch, arm *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			branch = n
		}
		if as, ok := n.Stmt.(*lang.AssignStmt); ok && lang.ExprString(as.LHS[0]) == "b" {
			arm = n
		}
	}
	if !dom[arm.ID][branch.ID] {
		t.Error("then-arm not dominated by branch")
	}
}

func TestForLoopHeader(t *testing.T) {
	g := build(t, `
servers = [1, 2];
func process(pkt) {
    for s in servers {
        send(pkt);
    }
}`)
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			head = n
		}
	}
	if head == nil {
		t.Fatal("for header not a branch node")
	}
	if _, ok := head.Stmt.(*lang.ForStmt); !ok {
		t.Fatalf("branch stmt is %T", head.Stmt)
	}
	if len(g.Succs(head.ID)) != 2 {
		t.Errorf("for header succs = %v", g.Succs(head.ID))
	}
}
