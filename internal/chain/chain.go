// Package chain implements the paper's §4 "Service Policy Composition"
// application: deciding the correct order of NFs in a composed service
// chain from their synthesized models, in the spirit of PGA — but with
// NFactor models (which capture state and header rewrites) instead of
// stateless Pyretic models.
//
// The core observation is the paper's own example: {FW, IDS} + {LB} — is
// the right composition {FW, IDS, LB} or {FW, LB, IDS}? An NF that
// rewrites a header field (the LB rewrites addresses) placed before an NF
// that matches on that field (the FW/IDS match on addresses) changes what
// the downstream NF sees; the model makes both the modified-field set and
// the matched-field set explicit.
package chain

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
)

// NamedModel is a chain element.
type NamedModel struct {
	Name  string
	Model *model.Model
}

// MatchedFields returns the packet header fields the model's entries
// match on (fields appearing in flow-match conditions).
func MatchedFields(m *model.Model) []string {
	set := map[string]bool{}
	for i := range m.Entries {
		e := &m.Entries[i]
		for _, c := range append(append([]solver.Term{}, e.FlowMatch...), e.StateMatch...) {
			for _, v := range solver.Vars(c) {
				if f, ok := strings.CutPrefix(v, "pkt."); ok {
					set[f] = true
				}
			}
		}
	}
	return sorted(set)
}

// ModifiedFields returns the packet header fields the model's actions
// rewrite (non-identity transforms).
func ModifiedFields(m *model.Model) []string {
	set := map[string]bool{}
	for i := range m.Entries {
		for _, a := range m.Entries[i].Sends {
			for _, f := range a.FieldNames() {
				t := a.Fields[f]
				if v, ok := t.(solver.Var); ok && v.Name == "pkt."+f {
					continue // identity
				}
				set[f] = true
			}
		}
	}
	return sorted(set)
}

// Conflict describes an ordering hazard: placing Writer before Reader
// changes what Reader matches on.
type Conflict struct {
	Writer string
	Reader string
	Fields []string
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s rewrites %v which %s matches on", c.Writer, c.Fields, c.Reader)
}

// Conflicts returns, for every ordered pair (A before B), the fields A
// rewrites that B matches on.
func Conflicts(nfs []NamedModel) []Conflict {
	var out []Conflict
	for _, a := range nfs {
		aw := ModifiedFields(a.Model)
		for _, b := range nfs {
			if a.Name == b.Name {
				continue
			}
			br := MatchedFields(b.Model)
			inter := intersect(aw, br)
			if len(inter) > 0 {
				out = append(out, Conflict{Writer: a.Name, Reader: b.Name, Fields: inter})
			}
		}
	}
	return out
}

// Order is a proposed chain order with its hazard count.
type Order struct {
	Names   []string
	Hazards []Conflict // writer placed before reader
}

// Compose enumerates all orders of the given NFs and returns them sorted
// by ascending hazard count (then lexicographically); the first orders
// are the safe compositions. A hazard materializes when a field-rewriting
// NF precedes a field-matching NF.
func Compose(nfs []NamedModel) []Order {
	conf := Conflicts(nfs)
	var perms [][]int
	permute(len(nfs), &perms)
	var out []Order
	for _, p := range perms {
		names := make([]string, len(p))
		pos := map[string]int{}
		for i, idx := range p {
			names[i] = nfs[idx].Name
			pos[nfs[idx].Name] = i
		}
		var hazards []Conflict
		for _, c := range conf {
			if pos[c.Writer] < pos[c.Reader] {
				hazards = append(hazards, c)
			}
		}
		out = append(out, Order{Names: names, Hazards: hazards})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Hazards) != len(out[j].Hazards) {
			return len(out[i].Hazards) < len(out[j].Hazards)
		}
		return strings.Join(out[i].Names, ",") < strings.Join(out[j].Names, ",")
	})
	return out
}

// Safe returns only the orders with no hazards.
func Safe(nfs []NamedModel) []Order {
	var out []Order
	for _, o := range Compose(nfs) {
		if len(o.Hazards) == 0 {
			out = append(out, o)
		}
	}
	return out
}

func permute(n int, out *[][]int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			*out = append(*out, append([]int{}, idx...))
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func intersect(a, b []string) []string {
	bs := map[string]bool{}
	for _, x := range b {
		bs[x] = true
	}
	var out []string
	for _, x := range a {
		if bs[x] {
			out = append(out, x)
		}
	}
	return out
}
