// Package chain implements the paper's §4 "Service Policy Composition"
// application: deciding the correct order of NFs in a composed service
// chain from their synthesized models, in the spirit of PGA — but with
// NFactor models (which capture state and header rewrites) instead of
// stateless Pyretic models.
//
// The core observation is the paper's own example: {FW, IDS} + {LB} — is
// the right composition {FW, IDS, LB} or {FW, LB, IDS}? An NF that
// rewrites a header field (the LB rewrites addresses) placed before an NF
// that matches on that field (the FW/IDS match on addresses) changes what
// the downstream NF sees; the model makes both the modified-field set and
// the matched-field set explicit.
//
// Compose works on the hazard graph rather than by permutation
// enumeration: each conflict (writer W, reader R) is an arc R→W ("R
// should precede W"), the strongly connected components of that graph
// are condensed, the unavoidable hazards inside each component are
// minimized locally, and only topological orders of the condensation —
// exactly the hazard-minimal orders — are emitted. That keeps 8+ NF
// chains tractable; ComposeAll keeps the original full enumeration for
// small chains.
package chain

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// NamedModel is a chain element. Config and State optionally carry the
// concrete configuration and initial state of the NF (as produced by
// core.Analysis.Named) so the element can be compiled into a data plane
// (dataplane.CompileChain); the ordering analysis uses only Name+Model.
type NamedModel struct {
	Name   string
	Model  *model.Model
	Config map[string]value.Value
	State  map[string]value.Value
}

// MatchedFields returns the packet header fields the model's entries
// match on (fields appearing in flow-match conditions).
func MatchedFields(m *model.Model) []string {
	set := map[string]bool{}
	for i := range m.Entries {
		e := &m.Entries[i]
		for _, c := range append(append([]solver.Term{}, e.FlowMatch...), e.StateMatch...) {
			for _, v := range solver.Vars(c) {
				if f, ok := strings.CutPrefix(v, "pkt."); ok {
					set[f] = true
				}
			}
		}
	}
	return sorted(set)
}

// ModifiedFields returns the packet header fields the model's actions
// rewrite (non-identity transforms).
func ModifiedFields(m *model.Model) []string {
	set := map[string]bool{}
	for i := range m.Entries {
		for _, a := range m.Entries[i].Sends {
			for _, f := range a.FieldNames() {
				t := a.Fields[f]
				if v, ok := t.(solver.Var); ok && v.Name == "pkt."+f {
					continue // identity
				}
				set[f] = true
			}
		}
	}
	return sorted(set)
}

// Conflict describes an ordering hazard: placing Writer before Reader
// changes what Reader matches on.
type Conflict struct {
	Writer string
	Reader string
	Fields []string
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s rewrites %v which %s matches on", c.Writer, c.Fields, c.Reader)
}

// Conflicts returns, for every ordered pair (A before B), the fields A
// rewrites that B matches on.
func Conflicts(nfs []NamedModel) []Conflict {
	var out []Conflict
	for _, a := range nfs {
		aw := ModifiedFields(a.Model)
		for _, b := range nfs {
			if a.Name == b.Name {
				continue
			}
			br := MatchedFields(b.Model)
			inter := intersect(aw, br)
			if len(inter) > 0 {
				out = append(out, Conflict{Writer: a.Name, Reader: b.Name, Fields: inter})
			}
		}
	}
	return out
}

// Order is a proposed chain order with its hazard count.
type Order struct {
	Names   []string
	Hazards []Conflict // writer placed before reader
}

// MaxOrders caps how many hazard-minimal orders Compose emits: once the
// constraint graph admits many equivalent topological orders (e.g. a
// conflict-free 8-NF chain has 8! of them, all minimal), only the first
// MaxOrders in deterministic lexicographic-index order are returned.
const MaxOrders = 24

// maxSCCBrute bounds the brute-force hazard minimization inside one
// strongly connected component of the constraint graph; larger
// components fall back to their input order (still a valid order, the
// hazard count just may not be the global minimum).
const maxSCCBrute = 7

// Compose returns hazard-minimal orders of the given NFs, best-first.
//
// It builds the constraint graph (an arc reader→writer per conflict:
// the reader should run before the writer rewrites its fields),
// condenses strongly connected components, minimizes the unavoidable
// hazards inside each component by local search, and emits topological
// orders of the condensation. Cross-component constraints are all
// satisfied by construction, so every emitted order achieves the same
// — minimal — hazard count, without enumerating the n! permutations.
// At most MaxOrders orders are returned, sorted lexicographically.
func Compose(nfs []NamedModel) []Order {
	n := len(nfs)
	if n == 0 {
		return nil
	}
	conf := Conflicts(nfs)
	idx := map[string]int{}
	for i, nf := range nfs {
		idx[nf.Name] = i
	}
	// Constraint arcs: reader → writer.
	adj := make([][]int, n)
	for _, c := range conf {
		adj[idx[c.Reader]] = append(adj[idx[c.Reader]], idx[c.Writer])
	}
	comps := scc(adj)
	// Per-component members, sorted for determinism.
	members := make([][]int, 0)
	compOf := make([]int, n)
	{
		byComp := map[int][]int{}
		for v, c := range comps {
			byComp[c] = append(byComp[c], v)
		}
		ids := make([]int, 0, len(byComp))
		for c := range byComp {
			ids = append(ids, c)
		}
		sort.Ints(ids)
		for newID, c := range ids {
			vs := byComp[c]
			sort.Ints(vs)
			for _, v := range vs {
				compOf[v] = newID
			}
			members = append(members, vs)
		}
	}
	nc := len(members)
	// Condensation DAG + indegrees.
	cadj := make([]map[int]bool, nc)
	indeg := make([]int, nc)
	for i := range cadj {
		cadj[i] = map[int]bool{}
	}
	for u, outs := range adj {
		for _, v := range outs {
			cu, cv := compOf[u], compOf[v]
			if cu != cv && !cadj[cu][cv] {
				cadj[cu][cv] = true
				indeg[cv]++
			}
		}
	}
	// Minimal internal arrangements per component.
	arr := make([][][]int, nc)
	for c, vs := range members {
		arr[c] = minimalArrangements(vs, adj)
	}
	// Enumerate topological orders of the condensation, expanding each
	// component through its minimal arrangements, up to MaxOrders.
	var out []Order
	order := make([]int, 0, n)
	placed := make([]bool, nc)
	var rec func()
	rec = func() {
		if len(out) >= MaxOrders {
			return
		}
		if len(order) == n {
			out = append(out, mkOrder(nfs, conf, order))
			return
		}
		for c := 0; c < nc; c++ {
			if placed[c] || indeg[c] != 0 {
				continue
			}
			placed[c] = true
			for t := range cadj[c] {
				indeg[t]--
			}
			for _, a := range arr[c] {
				order = append(order, a...)
				rec()
				order = order[:len(order)-len(a)]
				if len(out) >= MaxOrders {
					break
				}
			}
			for t := range cadj[c] {
				indeg[t]++
			}
			placed[c] = false
		}
	}
	rec()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Names, ",") < strings.Join(out[j].Names, ",")
	})
	return out
}

// ComposeAll enumerates every order of the given NFs — the original
// O(n!) analysis — sorted by ascending hazard count then
// lexicographically. It is intended for small chains (n ≤ 5, the
// nfchain -all flag); Compose is the scalable entry point.
func ComposeAll(nfs []NamedModel) []Order {
	conf := Conflicts(nfs)
	var perms [][]int
	permute(len(nfs), &perms)
	var out []Order
	for _, p := range perms {
		out = append(out, mkOrder(nfs, conf, p))
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Hazards) != len(out[j].Hazards) {
			return len(out[i].Hazards) < len(out[j].Hazards)
		}
		return strings.Join(out[i].Names, ",") < strings.Join(out[j].Names, ",")
	})
	return out
}

// Safe returns only the orders with no hazards.
func Safe(nfs []NamedModel) []Order {
	var out []Order
	for _, o := range Compose(nfs) {
		if len(o.Hazards) == 0 {
			out = append(out, o)
		}
	}
	return out
}

// mkOrder materializes an Order from a permutation of nf indices.
func mkOrder(nfs []NamedModel, conf []Conflict, perm []int) Order {
	names := make([]string, len(perm))
	pos := map[string]int{}
	for i, v := range perm {
		names[i] = nfs[v].Name
		pos[nfs[v].Name] = i
	}
	var hazards []Conflict
	for _, c := range conf {
		if pos[c.Writer] < pos[c.Reader] {
			hazards = append(hazards, c)
		}
	}
	return Order{Names: names, Hazards: hazards}
}

// minimalArrangements returns the orderings of vs (one strongly
// connected component) that minimize violated internal arcs, in
// deterministic order. A singleton has one arrangement; components
// larger than maxSCCBrute fall back to their sorted input order.
func minimalArrangements(vs []int, adj [][]int) [][]int {
	if len(vs) == 1 || len(vs) > maxSCCBrute {
		return [][]int{append([]int{}, vs...)}
	}
	in := map[int]bool{}
	for _, v := range vs {
		in[v] = true
	}
	// Internal arcs u→v: u should precede v; violated when v precedes u.
	var arcs [][2]int
	for _, u := range vs {
		for _, v := range adj[u] {
			if in[v] {
				arcs = append(arcs, [2]int{u, v})
			}
		}
	}
	var perms [][]int
	permuteOf(vs, &perms)
	best := len(arcs) + 1
	var out [][]int
	for _, p := range perms {
		pos := map[int]int{}
		for i, v := range p {
			pos[v] = i
		}
		viol := 0
		for _, a := range arcs {
			if pos[a[1]] < pos[a[0]] {
				viol++
			}
		}
		if viol < best {
			best = viol
			out = out[:0]
		}
		if viol == best {
			out = append(out, p)
		}
	}
	return out
}

// scc assigns a component id to every vertex (Tarjan).
func scc(adj [][]int) []int {
	n := len(adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	low := make([]int, n)
	num := make([]int, n)
	onStack := make([]bool, n)
	var stack []int
	counter, nComp := 0, 0
	var dfs func(v int)
	dfs = func(v int) {
		counter++
		num[v], low[v] = counter, counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if num[w] == 0 {
				dfs(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && num[w] < low[v] {
				low[v] = num[w]
			}
		}
		if low[v] == num[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if num[v] == 0 {
			dfs(v)
		}
	}
	return comp
}

func permute(n int, out *[][]int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	permuteOf(idx, out)
}

func permuteOf(items []int, out *[][]int) {
	idx := append([]int{}, items...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(idx) {
			*out = append(*out, append([]int{}, idx...))
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func intersect(a, b []string) []string {
	bs := map[string]bool{}
	for _, x := range b {
		bs[x] = true
	}
	var out []string
	for _, x := range a {
		if bs[x] {
			out = append(out, x)
		}
	}
	return out
}
