package chain

import (
	"strings"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/nfs"
)

func loadModel(t *testing.T, name string) NamedModel {
	t.Helper()
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NamedModel{Name: name, Model: an.Model}
}

func TestFieldSets(t *testing.T) {
	lb := loadModel(t, "lb")
	snort := loadModel(t, "snortlite")

	lbMod := ModifiedFields(lb.Model)
	if !contains(lbMod, "dip") || !contains(lbMod, "dport") {
		t.Errorf("lb modified fields = %v, want address rewrites", lbMod)
	}
	snortMatch := MatchedFields(snort.Model)
	if !contains(snortMatch, "dport") || !contains(snortMatch, "proto") {
		t.Errorf("snortlite matched fields = %v", snortMatch)
	}
	snortMod := ModifiedFields(snort.Model)
	if len(snortMod) != 0 {
		t.Errorf("snortlite modifies fields %v, expected none (pass-through)", snortMod)
	}
}

func TestConflictsLBvsIDS(t *testing.T) {
	lb := loadModel(t, "lb")
	snort := loadModel(t, "snortlite")
	conf := Conflicts([]NamedModel{lb, snort})
	// LB rewrites dport which the IDS matches on → a (lb before snortlite)
	// hazard must be reported; the IDS modifies nothing, so no reverse
	// hazard.
	var found bool
	for _, c := range conf {
		if c.Writer == "lb" && c.Reader == "snortlite" && contains(c.Fields, "dport") {
			found = true
		}
		if c.Writer == "snortlite" {
			t.Errorf("spurious conflict: %s", c)
		}
	}
	if !found {
		t.Errorf("missing lb→snortlite dport conflict: %v", conf)
	}
}

func TestComposeOrdersIDSBeforeLB(t *testing.T) {
	// The paper's example: {FW, IDS} + {LB}. The safe compositions place
	// the address-rewriting LB last.
	fw := loadModel(t, "firewall")
	ids := loadModel(t, "snortlite")
	lb := loadModel(t, "lb")
	orders := Compose([]NamedModel{fw, ids, lb})
	if len(orders) != 6 {
		t.Fatalf("orders = %d, want 3! = 6", len(orders))
	}
	best := orders[0]
	if len(best.Hazards) != 0 {
		t.Fatalf("no hazard-free order found; best = %v with %v", best.Names, best.Hazards)
	}
	if best.Names[len(best.Names)-1] != "lb" {
		t.Errorf("best order %v does not place lb last", best.Names)
	}
	// Any order with lb first must carry hazards.
	for _, o := range orders {
		if o.Names[0] == "lb" && len(o.Hazards) == 0 {
			t.Errorf("lb-first order %v reported hazard-free", o.Names)
		}
	}
}

func TestSafeFiltersHazards(t *testing.T) {
	ids := loadModel(t, "snortlite")
	lb := loadModel(t, "lb")
	safe := Safe([]NamedModel{ids, lb})
	if len(safe) == 0 {
		t.Fatal("no safe order for {ids, lb}")
	}
	for _, o := range safe {
		if o.Names[0] == "lb" {
			t.Errorf("safe order starts with lb: %v", o.Names)
		}
	}
}

func TestConflictString(t *testing.T) {
	c := Conflict{Writer: "a", Reader: "b", Fields: []string{"dport"}}
	if !strings.Contains(c.String(), "a rewrites") || !strings.Contains(c.String(), "b matches") {
		t.Errorf("conflict string = %q", c.String())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
