package chain_test

import (
	"strings"
	"testing"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/nfs"
)

func loadModel(t *testing.T, name string) chain.NamedModel {
	t.Helper()
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return chain.NamedModel{Name: name, Model: an.Model}
}

func TestFieldSets(t *testing.T) {
	lb := loadModel(t, "lb")
	snort := loadModel(t, "snortlite")

	lbMod := chain.ModifiedFields(lb.Model)
	if !contains(lbMod, "dip") || !contains(lbMod, "dport") {
		t.Errorf("lb modified fields = %v, want address rewrites", lbMod)
	}
	snortMatch := chain.MatchedFields(snort.Model)
	if !contains(snortMatch, "dport") || !contains(snortMatch, "proto") {
		t.Errorf("snortlite matched fields = %v", snortMatch)
	}
	snortMod := chain.ModifiedFields(snort.Model)
	if len(snortMod) != 0 {
		t.Errorf("snortlite modifies fields %v, expected none (pass-through)", snortMod)
	}
}

func TestConflictsLBvsIDS(t *testing.T) {
	lb := loadModel(t, "lb")
	snort := loadModel(t, "snortlite")
	conf := chain.Conflicts([]chain.NamedModel{lb, snort})
	// LB rewrites dport which the IDS matches on → a (lb before snortlite)
	// hazard must be reported; the IDS modifies nothing, so no reverse
	// hazard.
	var found bool
	for _, c := range conf {
		if c.Writer == "lb" && c.Reader == "snortlite" && contains(c.Fields, "dport") {
			found = true
		}
		if c.Writer == "snortlite" {
			t.Errorf("spurious conflict: %s", c)
		}
	}
	if !found {
		t.Errorf("missing lb→snortlite dport conflict: %v", conf)
	}
}

func TestComposeOrdersIDSBeforeLB(t *testing.T) {
	// The paper's example: {FW, IDS} + {LB}. chain.Compose emits only the
	// hazard-minimal orders — here the hazard-free ones, which all place
	// the address-rewriting LB last.
	fw := loadModel(t, "firewall")
	ids := loadModel(t, "snortlite")
	lb := loadModel(t, "lb")
	orders := chain.Compose([]chain.NamedModel{fw, ids, lb})
	if len(orders) == 0 {
		t.Fatal("chain.Compose returned no orders")
	}
	if len(orders) >= 6 {
		t.Fatalf("orders = %d, expected only hazard-minimal orders, not the full 3! enumeration", len(orders))
	}
	for _, o := range orders {
		if len(o.Hazards) != 0 {
			t.Errorf("hazard-minimal order %v carries hazards %v", o.Names, o.Hazards)
		}
		if o.Names[len(o.Names)-1] != "lb" {
			t.Errorf("minimal order %v does not place lb last", o.Names)
		}
	}
}

func TestComposeAllEnumerates(t *testing.T) {
	fw := loadModel(t, "firewall")
	ids := loadModel(t, "snortlite")
	lb := loadModel(t, "lb")
	orders := chain.ComposeAll([]chain.NamedModel{fw, ids, lb})
	if len(orders) != 6 {
		t.Fatalf("chain.ComposeAll orders = %d, want 3! = 6", len(orders))
	}
	best := orders[0]
	if len(best.Hazards) != 0 {
		t.Fatalf("no hazard-free order found; best = %v with %v", best.Names, best.Hazards)
	}
	if best.Names[len(best.Names)-1] != "lb" {
		t.Errorf("best order %v does not place lb last", best.Names)
	}
	// Any order with lb first must carry hazards.
	for _, o := range orders {
		if o.Names[0] == "lb" && len(o.Hazards) == 0 {
			t.Errorf("lb-first order %v reported hazard-free", o.Names)
		}
	}
	// chain.Compose's minimal orders must agree with the brute-force minimum.
	min := chain.Compose([]chain.NamedModel{fw, ids, lb})
	if len(min[0].Hazards) != len(orders[0].Hazards) {
		t.Errorf("chain.Compose minimum %d hazards, chain.ComposeAll best %d", len(min[0].Hazards), len(orders[0].Hazards))
	}
}

func TestComposeScalesPastEnumeration(t *testing.T) {
	// 9 copies of pass-through NFs would be 9! = 362880 permutations;
	// the hazard-graph path must return promptly with a bounded set of
	// hazard-free orders. Distinct names keep the conflict logic honest.
	ids := loadModel(t, "snortlite")
	rl := loadModel(t, "ratelimit")
	dpi := loadModel(t, "dpi")
	var nfs []chain.NamedModel
	for i := 0; i < 3; i++ {
		for _, base := range []chain.NamedModel{ids, rl, dpi} {
			nfs = append(nfs, chain.NamedModel{Name: base.Name + string(rune('0'+i)), Model: base.Model})
		}
	}
	orders := chain.Compose(nfs)
	if len(orders) == 0 || len(orders) > chain.MaxOrders {
		t.Fatalf("orders = %d, want 1..%d", len(orders), chain.MaxOrders)
	}
	for _, o := range orders {
		if len(o.Names) != 9 {
			t.Fatalf("order %v has %d names, want 9", o.Names, len(o.Names))
		}
		if len(o.Hazards) != 0 {
			t.Errorf("pass-through chain order %v carries hazards %v", o.Names, o.Hazards)
		}
	}
}

func TestSafeFiltersHazards(t *testing.T) {
	ids := loadModel(t, "snortlite")
	lb := loadModel(t, "lb")
	safe := chain.Safe([]chain.NamedModel{ids, lb})
	if len(safe) == 0 {
		t.Fatal("no safe order for {ids, lb}")
	}
	for _, o := range safe {
		if o.Names[0] == "lb" {
			t.Errorf("safe order starts with lb: %v", o.Names)
		}
	}
}

func TestConflictString(t *testing.T) {
	c := chain.Conflict{Writer: "a", Reader: "b", Fields: []string{"dport"}}
	if !strings.Contains(c.String(), "a rewrites") || !strings.Contains(c.String(), "b matches") {
		t.Errorf("conflict string = %q", c.String())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
