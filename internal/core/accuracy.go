package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nfactor/internal/interp"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/symexec"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// EquivReport is the outcome of the symbolic path-set comparison between
// the original program's slice and the compiled model (§5 "we use
// symbolic execution to exercise all possible execution paths on both
// sides ... the two sets of paths are the same").
type EquivReport struct {
	ProgramPaths int
	ModelPaths   int
	// UncoveredProgram lists program paths no model path implies.
	UncoveredProgram []string
	// MismatchedModel lists model paths that imply no program path with
	// identical actions.
	MismatchedModel []string
}

// Equivalent reports whether the path sets matched.
func (r *EquivReport) Equivalent() bool {
	return len(r.UncoveredProgram) == 0 && len(r.MismatchedModel) == 0
}

// CheckPathEquivalence compiles the model back to an NF program,
// symbolically executes it, and checks that (a) every model path's
// condition implies exactly the condition of a program path with the same
// actions, and (b) every program path is covered by at least one model
// path. The model path set refines the program's (an entry's guard
// negation splits into disjoint alternatives), so implication — not
// syntactic equality — is the right comparison.
func (an *Analysis) CheckPathEquivalence(opts Options) (*EquivReport, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	prog, err := model.Compile(an.Model, config, state)
	if err != nil {
		return nil, err
	}
	seOpts := opts.seOpts(an.Vars)
	endSE := opts.Perf.Phase("accuracy.se.model")
	res, err := symexec.Run(prog, "process", seOpts)
	endSE()
	if err != nil {
		return nil, fmt.Errorf("core: symbolic execution of compiled model: %w", err)
	}

	rep := &EquivReport{ProgramPaths: len(an.Paths), ModelPaths: len(res.Paths)}
	defer opts.Perf.Phase("accuracy.equiv")()
	checks := opts.Perf.Counter(perf.CEquivChecks)

	// Each model path's match against the program path set is independent
	// (the search ignores what other model paths matched), so the fan-out
	// is embarrassingly parallel; covered/mismatch bookkeeping then runs
	// sequentially in model-path order, keeping the report deterministic.
	matched := make([]int, len(res.Paths)) // program path index, or -1
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(res.Paths) {
		workers = len(res.Paths)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(res.Paths) {
					return
				}
				mp := res.Paths[j]
				matched[j] = -1
				for i, pp := range an.Paths {
					checks.Inc()
					if !opts.Cache.ImpliesAll(mp.Conds, pp.Conds) {
						continue
					}
					if actionSig(mp, opts.Cache) == actionSig(pp, opts.Cache) {
						matched[j] = i
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	covered := make([]bool, len(an.Paths))
	for j, mp := range res.Paths {
		if matched[j] < 0 {
			rep.MismatchedModel = append(rep.MismatchedModel, pathDesc(mp))
			continue
		}
		covered[matched[j]] = true
	}
	for i, pp := range an.Paths {
		if !covered[i] {
			rep.UncoveredProgram = append(rep.UncoveredProgram, pathDesc(pp))
		}
	}
	return rep, nil
}

// inherit fills opts' Cache and Perf from the Analysis when the caller
// left them nil, so accuracy checks reuse the pipeline's memoized solver
// verdicts and report into the same perf set.
func (an *Analysis) inherit(opts Options) Options {
	if opts.Cache == nil {
		opts.Cache = an.Cache
	}
	if opts.Perf == nil {
		opts.Perf = an.Perf
	}
	return opts
}

// actionSig canonicalizes a path's observable actions: sends (iface +
// non-identity field transforms) and state updates. A nil cache falls
// through to the direct simplifier.
func actionSig(p *symexec.Path, c *solver.Cache) string {
	var parts []string
	for _, s := range p.Sends {
		var fs []string
		for _, name := range s.FieldNames() {
			t := c.Simplify(s.Fields[name])
			// Identity fields (pkt.f := pkt.f) carry no information and
			// differ between sides only by which fields happened to be
			// read.
			if v, ok := t.(solver.Var); ok && v.Name == "pkt."+name {
				continue
			}
			fs = append(fs, name+"="+t.Key())
		}
		sort.Strings(fs)
		parts = append(parts, "send["+c.Simplify(s.Iface).Key()+"]{"+strings.Join(fs, ",")+"}")
	}
	var ups []string
	for _, u := range p.Updates {
		ups = append(ups, u.Name+":="+c.Simplify(u.Val).Key())
	}
	sort.Strings(ups)
	return strings.Join(parts, ";") + "|" + strings.Join(ups, ";")
}

func pathDesc(p *symexec.Path) string {
	conds := make([]string, len(p.Conds))
	for i, c := range p.Conds {
		conds[i] = c.String()
	}
	action := "drop"
	if len(p.Sends) > 0 {
		action = fmt.Sprintf("%d send(s)", len(p.Sends))
	}
	return strings.Join(conds, " && ") + " -> " + action
}

// DiffResult is the outcome of random differential testing (§5: "generate
// random inputs to both NFactor model and the original program, and test
// whether they output the same result ... repeat 1000 times").
type DiffResult struct {
	Trials     int
	Mismatches int
	FirstDiff  string
	// First details the first divergence with provenance traces; nil
	// when every trial matched.
	First *Divergence
}

// Divergence is the structured first-divergence report: which packet
// disagreed, how, and — via explain-mode replays of fresh replicas up
// to that packet — the guard-level provenance of each side's verdict.
type Divergence struct {
	// Packet is the trace index of the diverging packet; -1 when the
	// divergence is in the end state rather than any packet's output.
	Packet int
	Pkt    netpkt.Packet
	// Detail describes what differed (verdict, sends, fired entry, or
	// end state).
	Detail string
	// Reference and Candidate are the two sides' explain traces for the
	// diverging packet. Program-vs-model diffs carry only Candidate
	// (the model side; the original program has no table to trace);
	// instance-vs-engine diffs carry both.
	Reference *telemetry.PacketTrace
	Candidate *telemetry.PacketTrace
	// GuardDiff pinpoints the first guard whose outcome differs between
	// the two traces; empty when both sides matched the same way and
	// the divergence is in actions or state.
	GuardDiff string
}

// Matches reports whether all trials agreed.
func (r *DiffResult) Matches() bool { return r.Mismatches == 0 }

// Render formats the result for humans: the mismatch tally, and for the
// first divergence the guard that disagreed plus each side's why-trace.
func (r *DiffResult) Render() string {
	if r.Matches() {
		return fmt.Sprintf("%d trials, all matched\n", r.Trials)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d trials mismatched\nfirst divergence: %s\n", r.Mismatches, r.Trials, r.FirstDiff)
	if r.First == nil {
		return sb.String()
	}
	if r.First.GuardDiff != "" {
		fmt.Fprintf(&sb, "guard disagreement: %s\n", r.First.GuardDiff)
	}
	if r.First.Reference != nil {
		sb.WriteString(r.First.Reference.String())
	}
	if r.First.Candidate != nil {
		sb.WriteString(r.First.Candidate.String())
	}
	return sb.String()
}

// explainModelAt replays a fresh model instance over trace[:i] and
// returns the explain trace of trace[i] — the divergence-report
// reconstruction. Best-effort: nil when the replica cannot be built.
func (an *Analysis) explainModelAt(trace []netpkt.Packet, i int, opts Options) *telemetry.PacketTrace {
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		return nil
	}
	for j := 0; j < i; j++ {
		if _, err := inst.Process(trace[j].ToValue()); err != nil {
			break // the replica diverged from the recorded run; trace from here anyway
		}
	}
	_, tr, _ := inst.ProcessExplain(trace[i].ToValue())
	return tr
}

// DiffTest runs trace through the original program and the model side by
// side (each keeping its own evolving state) and compares every
// invocation's outputs: drop/forward decision, emitted packets (all
// fields) and interfaces.
//
// Each side's state evolves packet by packet, so packets cannot be
// processed out of order — but the two sides are independent of each
// other, so each runs the whole trace in its own goroutine; the outputs
// are then compared in trace order.
func (an *Analysis) DiffTest(trace []netpkt.Packet, opts Options) (*DiffResult, error) {
	opts = an.inherit(opts)
	origIn, err := interp.New(an.Original, an.Entry, interp.Options{ConfigOverride: opts.ConfigOverride})
	if err != nil {
		return nil, err
	}
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		return nil, err
	}

	defer opts.Perf.Phase("accuracy.diff")()
	trials := opts.Perf.Counter(perf.CDiffTrials)
	oOuts := make([]*interp.Output, len(trace))
	oErrs := make([]error, len(trace))
	mOuts := make([]*interp.Output, len(trace))
	mErrs := make([]error, len(trace))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i, p := range trace {
			oOuts[i], oErrs[i] = origIn.Process(p.ToValue())
		}
	}()
	go func() {
		defer wg.Done()
		for i, p := range trace {
			mOuts[i], mErrs[i] = inst.Process(p.ToValue())
		}
	}()
	wg.Wait()

	res := &DiffResult{}
	record := func(i int, diff string) {
		res.Mismatches++
		if res.First != nil {
			return
		}
		res.FirstDiff = fmt.Sprintf("packet %d (%s): %s", i, trace[i], diff)
		res.First = &Divergence{
			Packet:    i,
			Pkt:       trace[i],
			Detail:    diff,
			Candidate: an.explainModelAt(trace, i, opts),
		}
	}
	for i := range trace {
		res.Trials++
		trials.Inc()
		oOut, oErr := oOuts[i], oErrs[i]
		mOut, mErr := mOuts[i], mErrs[i]
		if (oErr != nil) != (mErr != nil) {
			record(i, fmt.Sprintf("error mismatch: orig=%v model=%v", oErr, mErr))
			continue
		}
		if oErr != nil {
			continue // both errored: the packet hits undefined behaviour on both sides
		}
		if diff := compareOutputs(oOut, mOut); diff != "" {
			record(i, diff)
		}
	}
	return res, nil
}

func compareOutputs(a, b *interp.Output) string {
	if a.Dropped != b.Dropped {
		return fmt.Sprintf("drop mismatch: orig=%v model=%v", a.Dropped, b.Dropped)
	}
	if len(a.Sent) != len(b.Sent) {
		return fmt.Sprintf("send count mismatch: orig=%d model=%d", len(a.Sent), len(b.Sent))
	}
	for i := range a.Sent {
		if a.Sent[i].Iface != b.Sent[i].Iface {
			return fmt.Sprintf("send %d iface mismatch: %q vs %q", i, a.Sent[i].Iface, b.Sent[i].Iface)
		}
		if !value.Equal(a.Sent[i].Pkt, b.Sent[i].Pkt) {
			return fmt.Sprintf("send %d packet mismatch:\n  orig:  %s\n  model: %s",
				i, a.Sent[i].Pkt, b.Sent[i].Pkt)
		}
	}
	return ""
}
