package core

import (
	"fmt"
	"sync"

	"nfactor/internal/chain"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
)

// Named packages the analysis as a chain element: the synthesized model
// plus the concrete configuration and initial state it was analyzed
// under — everything chain composition and dataplane.CompileChain need.
func (an *Analysis) Named() (chain.NamedModel, error) {
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		return chain.NamedModel{}, err
	}
	return chain.NamedModel{Name: an.NFName, Model: an.Model, Config: config, State: state}, nil
}

// ChainSpec names a service chain over corpus NFs.
type ChainSpec struct {
	Name      string
	NFs       []string
	Shardable bool // every stage's flow keys co-hash (ShardedChain accepts it)
}

// ChainCorpus lists the service chains the fused-chain pipeline is
// validated and benchmarked against: the {FW, IDS, LB} reference chain
// in several orders, shorter 2-NF chains (including the shardable
// flow-co-hashing pairs and a multi-send fan-out chain), and a 4-NF
// chain. Shardable marks the chains whose stages all key state on the
// same field multiset, the precondition NewShardedChain enforces.
func ChainCorpus() []ChainSpec {
	return []ChainSpec{
		{Name: "fw-ids", NFs: []string{"firewall", "snortlite"}},
		{Name: "dpi-ids", NFs: []string{"dpi", "snortlite"}, Shardable: true},
		{Name: "fw-mirror", NFs: []string{"firewall", "mirror"}, Shardable: true},
		{Name: "fw-ids-lb", NFs: []string{"firewall", "snortlite", "lb"}},
		{Name: "fw-lb-ids", NFs: []string{"firewall", "lb", "snortlite"}},
		{Name: "ids-fw-lb", NFs: []string{"snortlite", "firewall", "lb"}},
		{Name: "fw-rl-ids-lb", NFs: []string{"firewall", "ratelimit", "snortlite", "lb"}},
	}
}

// AnalyzeChain synthesizes the models of the named corpus NFs
// concurrently — the analyses are independent — and returns them in
// chain order as compile-ready chain elements. A single solver cache is
// shared across the NFs (it is safe for concurrent use), so common
// conjunctions are decided once.
func AnalyzeChain(names []string, opts Options) ([]chain.NamedModel, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: empty chain")
	}
	if opts.Cache == nil {
		opts.Cache = solver.NewCache()
	}
	stages := make([]chain.NamedModel, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nf, err := nfs.Load(name)
			if err != nil {
				errs[i] = err
				return
			}
			an, err := Analyze(name, nf.Prog, opts)
			if err != nil {
				errs[i] = fmt.Errorf("core: analyze %s: %w", name, err)
				return
			}
			stages[i], errs[i] = an.Named()
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return stages, nil
}
