// Package core wires the full NFactor pipeline (the paper's Algorithm 1):
//
//  1. packet slice    — backward slices from every send() statement,
//  2. StateAlyzer     — variable categorization on the packet slice,
//  3. state slice     — backward slices from every oisVar update,
//  4. path exploration — symbolic execution of the union slice,
//  5. refinement      — each path becomes a model table entry.
//
// It also implements the paper's §5 accuracy methodology: symbolic
// path-set comparison between the original program and the (compiled)
// model, and random differential testing.
package core

import (
	"fmt"
	"time"

	"nfactor/internal/interp"
	"nfactor/internal/lang"
	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/perf"
	"nfactor/internal/slice"
	"nfactor/internal/solver"
	"nfactor/internal/statealyzer"
	"nfactor/internal/symexec"
	"nfactor/internal/trace"
	"nfactor/internal/value"
)

// Options configure a pipeline run.
type Options struct {
	// Entry is the per-packet function; defaults to "process".
	Entry string
	// MaxPaths / MaxSteps / LoopBound bound the symbolic executor.
	MaxPaths  int
	MaxSteps  int
	LoopBound int
	// Workers is the symbolic executor's worker count (0 = GOMAXPROCS).
	// The extracted model is identical at every worker count.
	Workers int
	// TimeBudget bounds each symbolic execution's wall clock (0 = none).
	TimeBudget time.Duration
	// ConfigOverride pins configuration globals to concrete values; a
	// pinned scalar no longer forks per-configuration tables.
	ConfigOverride map[string]value.Value
	// MeasureOriginal also symbolically executes the full original
	// program (the "orig" columns of Table 2). Off by default: that run
	// is exactly what the paper shows can be intractably larger.
	MeasureOriginal bool
	// NoPruning disables solver-based feasibility pruning during path
	// exploration (ablation knob).
	NoPruning bool
	// Cache memoizes solver queries across every symbolic execution the
	// pipeline issues (orig + slice + model + accuracy checks, which hit
	// many identical path prefixes). Analyze creates one when nil; pass
	// a shared Cache to also memoize across NFs or repeated runs.
	Cache *solver.Cache
	// Perf receives the pipeline's counters and phase timers. Analyze
	// creates one when nil; the populated Set is on Analysis.Perf.
	Perf *perf.Set
	// Trace, when set, records the synthesis as a span tree: one pipeline
	// root span, one span per Algorithm 1 phase (slice.pkt, statealyzer,
	// slice.state, se.slice, refine, plus lint/se.orig when enabled), one
	// span per explored symbolic-execution state, and one span per refined
	// entry. Phase spans FOLD their duration into Perf's phases — a single
	// measurement feeds both surfaces, so they can never disagree. A nil
	// tracer is strictly zero-cost.
	Trace *trace.Tracer
	// Lint runs NFLint during synthesis — the source passes and the
	// Table 1 classification cross-check on the original program, the
	// model passes on the synthesized model — and puts the findings on
	// Analysis.Diagnostics.
	Lint bool
	// LintStrict (implies Lint) makes Analyze fail with an error when
	// any error-severity diagnostic is found: degenerate inputs and
	// models are diagnosed, not silently synthesized.
	LintStrict bool
}

func (o Options) entry() string {
	if o.Entry == "" {
		return "process"
	}
	return o.Entry
}

func (o Options) seOpts(vars *statealyzer.Result) symexec.Options {
	se := symexec.Options{
		MaxPaths:       o.MaxPaths,
		MaxSteps:       o.MaxSteps,
		LoopBound:      o.LoopBound,
		Workers:        o.Workers,
		TimeBudget:     o.TimeBudget,
		ConfigOverride: o.ConfigOverride,
		NoPruning:      o.NoPruning,
		Cache:          o.Cache,
		Perf:           o.Perf,
		ConfigVars:     map[string]bool{},
		StateVars:      map[string]bool{},
	}
	for _, v := range vars.CfgVars() {
		se.ConfigVars[v] = true
	}
	for _, v := range vars.OISVars() {
		se.StateVars[v] = true
	}
	// Log variables are symbolic state too when executing the *original*
	// program (their updates must not leak constants into path
	// comparison); they are absent from slices.
	for _, v := range vars.LogVars() {
		se.StateVars[v] = true
	}
	return se
}

// Metrics are the Table 2 measurements for one NF.
type Metrics struct {
	LoCOrig  int // lines of the original program
	LoCSlice int // lines of the packet+state slice
	LoCPath  int // statements on the longest single execution path

	SliceTime   time.Duration
	SETimeSlice time.Duration
	EPSlice     int

	// Original-program numbers (only when MeasureOriginal).
	SETimeOrig     time.Duration
	EPOrig         int
	EPOrigCapped   bool // path budget exhausted (the ">1000" cell)
	OrigMeasured   bool
	SliceEPCapped  bool
	SliceTruncated int
}

// Analysis is the full pipeline output for one NF program.
type Analysis struct {
	NFName   string
	Entry    string
	Original *lang.Program
	Analyzer *slice.Analyzer

	PktSlice   map[int]bool
	StateSlice map[int]bool
	UnionSlice map[int]bool
	SliceProg  *lang.Program

	Vars  *statealyzer.Result
	Paths []*symexec.Path
	Model *model.Model

	// Cache and Perf are the solver cache and perf set the pipeline ran
	// with (Options' when provided, freshly created otherwise). Accuracy
	// checks on the Analysis reuse them, so the model-side symbolic
	// execution hits conjunctions the slice execution already decided.
	Cache *solver.Cache
	Perf  *perf.Set
	// Tracer is the span recorder the pipeline ran with (nil unless
	// Options.Trace was set). Export with WriteChrome / Tree.
	Tracer *trace.Tracer

	// Diagnostics are the NFLint findings (when Options.Lint was set).
	Diagnostics []lint.Diagnostic

	Metrics Metrics
}

// SendStatements returns the statement IDs of every packet-output call in
// the analyzed (inlined) program — the PKT_OUTPUT_FUNC criterion of
// Algorithm 1 line 2.
func SendStatements(prog *lang.Program) []int {
	var out []int
	prog.WalkStmts(func(s lang.Stmt) {
		for _, fn := range lang.CallsIn(s) {
			if fn == "send" {
				out = append(out, s.StmtID())
				return
			}
		}
	})
	return out
}

// stateUpdateStatements returns the statements inside the entry function
// that update an output-impacting state variable (Algorithm 1 lines 6-9):
// assignments with an oisVar base on the LHS, and del() calls on oisVars.
func stateUpdateStatements(a *slice.Analyzer, ois map[string]bool) []int {
	var out []int
	fn := a.Prog.Func(a.Entry)
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.AssignStmt:
			for _, l := range st.LHS {
				if ois[lang.BaseVar(l)] {
					out = append(out, s.StmtID())
					break
				}
			}
		case *lang.ExprStmt:
			if c, ok := st.X.(*lang.CallExpr); ok && c.Fun == "del" && len(c.Args) == 2 {
				if id, ok := c.Args[0].(*lang.Ident); ok && ois[id.Name] {
					out = append(out, s.StmtID())
				}
			}
		case *lang.BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			walk(st.Body)
		}
	}
	walk(fn.Body)
	return out
}

// phaseSpan opens an Algorithm 1 phase on both observability surfaces
// with ONE measurement: tracing on, a phase span whose duration is folded
// into ps's phase at End (so trace and perf can never disagree); tracing
// off, a plain perf phase. id is the span id for nesting children (0 when
// tracing is off).
func phaseSpan(tr *trace.Tracer, name string, parent int64, ps *perf.Set) (id int64, end func()) {
	if tr != nil {
		sp := tr.StartPhase(name, parent, ps)
		return sp.ID(), sp.End
	}
	return 0, ps.Phase(name)
}

// Analyze runs the full NFactor pipeline on prog.
func Analyze(nfName string, prog *lang.Program, opts Options) (*Analysis, error) {
	entry := opts.entry()
	if opts.Perf == nil {
		opts.Perf = perf.New()
	}
	if opts.Cache == nil {
		opts.Cache = solver.NewCacheWithPerf(opts.Perf)
	}
	tr := opts.Trace
	if tr != nil {
		opts.Cache.AttachTracer(tr)
	}
	an := &Analysis{NFName: nfName, Entry: entry, Original: prog, Cache: opts.Cache, Perf: opts.Perf, Tracer: tr}
	an.Metrics.LoCOrig = lang.CountLoC(prog)

	// Root span for the whole synthesis of this NF.
	var pipeID int64
	if tr != nil {
		root := tr.Start(trace.CatPipeline, nfName, 0)
		defer root.End()
		pipeID = root.ID()
	}

	sliceStart := time.Now()
	// The umbrella "slice" perf phase covers Algorithm 1 lines 1-10; the
	// finer slice.pkt / statealyzer / slice.state phases nest inside it
	// (and are the phase spans the trace shows).
	endSlice := opts.Perf.Phase("slice")
	analyzer, err := slice.NewAnalyzer(prog, entry)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	an.Analyzer = analyzer

	// 1. Packet slice (Algorithm 1 lines 1-3).
	_, endPkt := phaseSpan(tr, "slice.pkt", pipeID, opts.Perf)
	sends := SendStatements(analyzer.Prog)
	if len(sends) == 0 {
		endPkt()
		return nil, fmt.Errorf("core: %s has no send() statement — not a forwarding NF", nfName)
	}
	pktSlice, err := analyzer.Backward(sends)
	endPkt()
	if err != nil {
		return nil, fmt.Errorf("core: packet slice: %w", err)
	}
	an.PktSlice = pktSlice

	// 2. StateAlyzer on the packet slice (lines 4-5).
	_, endSA := phaseSpan(tr, "statealyzer", pipeID, opts.Perf)
	an.Vars = statealyzer.Analyze(analyzer, pktSlice)
	endSA()
	ois := map[string]bool{}
	for _, v := range an.Vars.OISVars() {
		ois[v] = true
	}

	// 3. State transition slice — iterated to a fixpoint: a persistent
	// updateable variable appearing in the state slice feeds an oisVar
	// update (possibly in a later invocation) and is therefore output-
	// impacting itself; its own updates then need slicing too. (The
	// strike-counter → quarantine-set pattern requires this closure;
	// Algorithm 1 runs lines 6-9 once because its two NFs have no such
	// indirection.)
	var stateSlice map[int]bool
	_, endState := phaseSpan(tr, "slice.state", pipeID, opts.Perf)
	for {
		updates := stateUpdateStatements(analyzer, ois)
		stateSlice, err = analyzer.Backward(updates)
		if err != nil {
			endState()
			return nil, fmt.Errorf("core: state slice: %w", err)
		}
		grew := false
		seen := map[string]bool{}
		for id := range stateSlice {
			s := analyzer.Prog.StmtByID(id)
			if s == nil {
				continue
			}
			for _, v := range append(lang.Uses(s), lang.Defs(s)...) {
				if seen[v] {
					continue
				}
				seen[v] = true
				f, okf := an.Vars.Features[v]
				if okf && f.Persistent && f.TopLevel && f.Updateable && !ois[v] {
					an.Vars.Promote(v)
					ois[v] = true
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	endState()
	an.StateSlice = stateSlice

	// Union slice → reduced program.
	an.UnionSlice = slice.Union(pktSlice, stateSlice)
	an.SliceProg = analyzer.Reconstruct(an.UnionSlice)
	an.Metrics.SliceTime = time.Since(sliceStart)
	an.Metrics.LoCSlice = lang.CountLoC(an.SliceProg)
	endSlice()

	// NFLint on the input: the source passes and the Table 1
	// classification cross-check run before symbolic execution, so a
	// degenerate program is diagnosed (error-severity findings fail the
	// run under LintStrict) instead of surfacing as a raw symexec error
	// or being silently synthesized.
	if opts.Lint || opts.LintStrict {
		endLint := opts.Perf.Phase("lint")
		an.Diagnostics = append(an.Diagnostics, lint.Source(prog, nfName)...)
		an.Diagnostics = append(an.Diagnostics, lint.CrossCheck(analyzer, an.Vars, nfName)...)
		lint.Sort(an.Diagnostics)
		endLint()
		if opts.LintStrict && lint.HasErrors(an.Diagnostics) {
			return an, fmt.Errorf("core: lint errors in %s:\n%s", nfName, lint.Render(an.Diagnostics))
		}
	}

	// 4. Execution paths of the slice.
	seOpts := opts.seOpts(an.Vars)
	seOpts.Trace = tr
	seStart := time.Now()
	seID, endSE := phaseSpan(tr, "se.slice", pipeID, opts.Perf)
	seOpts.TraceParent = seID
	res, err := symexec.Run(an.SliceProg, entry, seOpts)
	endSE()
	if err != nil {
		return nil, fmt.Errorf("core: symbolic execution of slice: %w", err)
	}
	an.Metrics.SETimeSlice = time.Since(seStart)
	an.Metrics.EPSlice = len(res.Paths)
	an.Metrics.SliceEPCapped = res.Exhausted
	an.Paths = res.Paths
	for _, p := range res.Paths {
		if p.Truncated {
			an.Metrics.SliceTruncated++
		}
		if p.Visited > an.Metrics.LoCPath {
			an.Metrics.LoCPath = p.Visited
		}
	}

	// 5. Refine into the model.
	cfg := map[string]bool{}
	for _, v := range an.Vars.CfgVars() {
		cfg[v] = true
	}
	logs := map[string]bool{}
	for _, v := range an.Vars.LogVars() {
		logs[v] = true
	}
	refineID, endRefine := phaseSpan(tr, "refine", pipeID, opts.Perf)
	an.Model = model.Build(an.Paths, model.BuildOptions{
		NFName:      nfName,
		PktVar:      analyzer.Prog.Func(entry).Params[0],
		CfgVars:     cfg,
		OISVars:     ois,
		LogVars:     logs,
		Workers:     opts.Workers,
		Perf:        opts.Perf,
		Trace:       tr,
		TraceParent: refineID,
	})
	endRefine()

	// NFLint on the synthesized model (the input program was linted
	// before symbolic execution).
	if opts.Lint || opts.LintStrict {
		endLint := opts.Perf.Phase("lint")
		an.Diagnostics = append(an.Diagnostics, lint.Model(an.Model, lint.ModelOptions{})...)
		lint.Sort(an.Diagnostics)
		endLint()
		if opts.LintStrict && lint.HasErrors(an.Diagnostics) {
			return an, fmt.Errorf("core: lint errors in %s:\n%s", nfName, lint.Render(an.Diagnostics))
		}
	}

	// Optional: symbolic execution of the original (inlined) program,
	// for the "orig" Table 2 columns.
	if opts.MeasureOriginal {
		origStart := time.Now()
		origID, endOrig := phaseSpan(tr, "se.orig", pipeID, opts.Perf)
		seOpts.TraceParent = origID
		origRes, err := symexec.Run(analyzer.Prog, entry, seOpts)
		endOrig()
		if err != nil {
			return nil, fmt.Errorf("core: symbolic execution of original: %w", err)
		}
		an.Metrics.SETimeOrig = time.Since(origStart)
		an.Metrics.EPOrig = len(origRes.Paths)
		an.Metrics.EPOrigCapped = origRes.Exhausted
		an.Metrics.OrigMeasured = true
	}
	return an, nil
}

// ConfigAndState extracts the concrete configuration and initial-state
// values of the analyzed NF (from its global initializers, with the
// pipeline's overrides applied) — what a model Instance or Compile needs.
func (an *Analysis) ConfigAndState(override map[string]value.Value) (config, state map[string]value.Value, err error) {
	ci, err := interp.New(an.Original, an.Entry, interp.Options{ConfigOverride: override})
	if err != nil {
		return nil, nil, err
	}
	globals := ci.Globals()
	config = map[string]value.Value{}
	state = map[string]value.Value{}
	for _, v := range an.Vars.CfgVars() {
		config[v] = globals[v]
	}
	for _, v := range an.Vars.OISVars() {
		state[v] = globals[v]
	}
	return config, state, nil
}

// DynamicSlice computes the dynamic program slice for a concrete packet
// trace (Agrawal & Horgan — the paper's reference [3], and what Figure 1
// actually highlights: the statements that REALLY lead to the final
// behaviour for one input). Earlier packets in trace evolve the NF's
// state; the returned program is the intersection of the static
// packet+state slice with the statements executed for the LAST packet.
func (an *Analysis) DynamicSlice(trace []value.Value) (*lang.Program, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("core: dynamic slice needs at least one packet")
	}
	in, err := interp.New(an.Analyzer.Prog, an.Entry, interp.Options{})
	if err != nil {
		return nil, err
	}
	for _, p := range trace[:len(trace)-1] {
		if _, err := in.Process(p); err != nil {
			return nil, fmt.Errorf("core: warm-up packet: %w", err)
		}
	}
	_, executed, err := in.ProcessTraced(trace[len(trace)-1])
	if err != nil {
		return nil, fmt.Errorf("core: criterion packet: %w", err)
	}
	dyn := map[int]bool{}
	for id := range an.UnionSlice {
		if executed[id] {
			dyn[id] = true
		}
	}
	// Keep the global initializers of the static slice: they define the
	// variables the executed statements read.
	for _, g := range an.Analyzer.Prog.Globals {
		if an.UnionSlice[g.StmtID()] {
			dyn[g.StmtID()] = true
		}
	}
	return an.Analyzer.Reconstruct(dyn), nil
}
