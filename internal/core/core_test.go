package core

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

// lbSrc is the paper's Figure 1 load balancer.
const lbSrc = `
mode = "RR";
LB_IP = "3.3.3.3";
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
f2b_nat = {};
b2f_nat = {};
rr_idx = 0;
cur_port = 10000;
pass_stat = 0;
drop_stat = 0;

func process(pkt) {
    si, di = pkt.sip, pkt.dip;
    sp, dp = pkt.sport, pkt.dport;
    if dp == LB_PORT {
        cs_ftpl = (si, sp, di, dp);
        sc_ftpl = (di, dp, si, sp);
        if !(cs_ftpl in f2b_nat) {
            if mode == "RR" {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else {
                server = servers[hash(si) % len(servers)];
            }
            n_port = cur_port;
            cur_port = cur_port + 1;
            cs_btpl = (LB_IP, n_port, server[0], server[1]);
            sc_btpl = (server[0], server[1], LB_IP, n_port);
            f2b_nat[cs_ftpl] = cs_btpl;
            b2f_nat[sc_btpl] = sc_ftpl;
            nat_tpl = cs_btpl;
        } else {
            nat_tpl = f2b_nat[cs_ftpl];
        }
    } else {
        sc_btpl = (si, sp, di, dp);
        if sc_btpl in b2f_nat {
            nat_tpl = b2f_nat[sc_btpl];
        } else {
            drop_stat = drop_stat + 1;
            return;
        }
    }
    pass_stat = pass_stat + 1;
    pkt.sip = nat_tpl[0];
    pkt.sport = nat_tpl[1];
    pkt.dip = nat_tpl[2];
    pkt.dport = nat_tpl[3];
    send(pkt);
}
`

func analyzeLB(t *testing.T, opts Options) *Analysis {
	t.Helper()
	an, err := Analyze("lb", lang.MustParse(lbSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestPipelineProducesModel(t *testing.T) {
	an := analyzeLB(t, Options{})
	if len(an.Model.Entries) != 5 {
		t.Fatalf("model entries = %d, want 5", len(an.Model.Entries))
	}
	// Two configuration tables: mode == "RR" and mode != "RR" entries
	// exist plus config-independent entries.
	tables := an.Model.Tables()
	if len(tables) < 2 {
		t.Errorf("config tables = %d, want at least 2 (RR and HASH)", len(tables))
	}
	// Model drops exactly the reverse-miss path.
	drops := 0
	for _, e := range an.Model.Entries {
		if e.Dropped() {
			drops++
		}
	}
	if drops != 1 {
		t.Errorf("drop entries = %d, want 1", drops)
	}
}

func TestPipelineMetricsShape(t *testing.T) {
	an := analyzeLB(t, Options{MeasureOriginal: true})
	m := an.Metrics
	if m.LoCSlice >= m.LoCOrig {
		t.Errorf("slice LoC %d not smaller than original %d", m.LoCSlice, m.LoCOrig)
	}
	if m.LoCPath > m.LoCSlice {
		t.Errorf("path LoC %d exceeds slice LoC %d", m.LoCPath, m.LoCSlice)
	}
	if m.LoCPath == 0 {
		t.Error("path LoC is zero")
	}
	if !m.OrigMeasured || m.EPOrig == 0 || m.EPSlice == 0 {
		t.Errorf("EP counts missing: %+v", m)
	}
	// The LB slice keeps all forwarding logic, so EPs match here; the
	// log-heavy NFs (snortlite) show the reduction.
	if m.EPSlice > m.EPOrig {
		t.Errorf("slice has more paths (%d) than original (%d)", m.EPSlice, m.EPOrig)
	}
}

func TestVariableCategoriesReachModel(t *testing.T) {
	an := analyzeLB(t, Options{})
	if got := strings.Join(an.Model.CfgVars, ","); got != "LB_IP,LB_PORT,mode,servers" {
		t.Errorf("cfg vars = %s", got)
	}
	if got := strings.Join(an.Model.OISVars, ","); got != "b2f_nat,cur_port,f2b_nat,rr_idx" {
		t.Errorf("ois vars = %s", got)
	}
	// Log variables must not appear in any entry's updates.
	for _, e := range an.Model.Entries {
		for _, u := range e.Updates {
			if u.Name == "pass_stat" || u.Name == "drop_stat" {
				t.Errorf("log variable %s leaked into model updates", u.Name)
			}
		}
	}
}

func TestPathEquivalenceLB(t *testing.T) {
	opts := Options{}
	an := analyzeLB(t, opts)
	rep, err := an.CheckPathEquivalence(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent() {
		t.Errorf("path sets differ:\nuncovered program paths: %v\nmismatched model paths: %v",
			rep.UncoveredProgram, rep.MismatchedModel)
	}
	if rep.ModelPaths < rep.ProgramPaths {
		t.Errorf("model paths %d < program paths %d", rep.ModelPaths, rep.ProgramPaths)
	}
}

func TestDiffTestLBRoundRobin(t *testing.T) {
	opts := Options{}
	an := analyzeLB(t, opts)
	trace := workload.New(1).ClientServerTrace("3.3.3.3", 80, 500)
	res, err := an.DiffTest(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Errorf("differential test failed after %d trials: %s", res.Trials, res.FirstDiff)
	}
	if res.Trials != 500 {
		t.Errorf("trials = %d", res.Trials)
	}
}

func TestDiffTestLBHashMode(t *testing.T) {
	opts := Options{ConfigOverride: map[string]value.Value{"mode": value.Str("HASH")}}
	an := analyzeLB(t, opts)
	trace := workload.New(7).ClientServerTrace("3.3.3.3", 80, 300)
	res, err := an.DiffTest(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Errorf("hash-mode differential test failed: %s", res.FirstDiff)
	}
}

func TestDiffTestLBRandomTraffic(t *testing.T) {
	opts := Options{}
	an := analyzeLB(t, opts)
	trace := workload.New(42).RandomTrace(1000)
	res, err := an.DiffTest(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Errorf("random differential test failed: %s", res.FirstDiff)
	}
}

func TestModelRenderFigure6Shape(t *testing.T) {
	an := analyzeLB(t, Options{})
	out := model.Render(an.Model)
	for _, want := range []string{
		`mode == "RR"`,
		"rr_idx := ",
		"send(pkt)",
		"drop",
		"default: drop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNoSendErrors(t *testing.T) {
	prog := lang.MustParse(`x = 1;
func process(pkt) { x = x + 1; }`)
	if _, err := Analyze("nosend", prog, Options{}); err == nil {
		t.Error("NF without send() should error")
	}
}

func TestModelInstanceStateEvolves(t *testing.T) {
	an := analyzeLB(t, Options{})
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sport int) value.Value {
		return netpkt.Packet{
			SrcIP: "9.9.9.9", DstIP: "3.3.3.3", SrcPort: sport, DstPort: 80,
			Proto: "tcp", TTL: 64, InIface: "eth0",
		}.ToValue()
	}
	// Two new flows under RR must go to the two different backends.
	o1, err := inst.Process(mk(1000))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := inst.Process(mk(1001))
	if err != nil {
		t.Fatal(err)
	}
	d1 := o1.Sent[0].Pkt.Pkt.Fields["dip"].S
	d2 := o2.Sent[0].Pkt.Pkt.Fields["dip"].S
	if d1 == d2 {
		t.Errorf("round robin did not alternate: %s then %s", d1, d2)
	}
	// Repeating the first flow hits the stored mapping.
	o3, err := inst.Process(mk(1000))
	if err != nil {
		t.Fatal(err)
	}
	if o3.Sent[0].Pkt.Pkt.Fields["dip"].S != d1 {
		t.Error("existing flow did not reuse its NAT mapping")
	}
	if inst.State()["rr_idx"].I != 0 && inst.State()["rr_idx"].I != 2%2 {
		t.Errorf("rr_idx = %v", inst.State()["rr_idx"])
	}
}

func TestCompiledModelIsRunnable(t *testing.T) {
	an := analyzeLB(t, Options{})
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := model.Compile(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	// The compiled model must itself survive the NFactor pipeline (it is
	// an NF program like any other).
	an2, err := Analyze("lb-model", prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(an2.Model.Entries) == 0 {
		t.Error("re-analyzed compiled model has no entries")
	}
}
