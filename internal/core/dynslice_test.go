package core

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
)

func lbPacket(sport int) value.Value {
	return netpkt.Packet{
		SrcIP: "9.9.9.9", DstIP: "3.3.3.3", SrcPort: sport, DstPort: 80,
		Proto: "tcp", Flags: "S", TTL: 64, InIface: "eth0",
	}.ToValue()
}

// TestDynamicSliceFirstPacket reproduces the paper's Figure 1 highlight:
// "the highlighted lines are a (dynamic) program slice where the load
// balancer relays the first packet of a flow" — the RR backend-selection
// arm is in, the existing-connection arm and the reverse path are out.
func TestDynamicSliceFirstPacket(t *testing.T) {
	an := analyzeLB(t, Options{})
	prog, err := an.DynamicSlice([]value.Value{lbPacket(1000)})
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(prog)
	for _, want := range []string{
		"servers[rr_idx]",     // round-robin selection executed
		"f2b_nat[cs_ftpl] = ", // mapping installed
		"send(pkt",            // relay
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("first-packet dynamic slice missing %q:\n%s", want, printed)
		}
	}
	for _, gone := range []string{
		"hash(",                      // HASH arm not executed under RR
		"nat_tpl = f2b_nat[cs_ftpl]", // existing-connection arm not executed
		"b2f_nat[sc_btpl]",           // reverse path... (store executes! see below)
	} {
		// The b2f_nat STORE does execute on the first packet; only the
		// reverse-path LOOKUP must be absent.
		if gone == "b2f_nat[sc_btpl]" {
			continue
		}
		if strings.Contains(printed, gone) {
			t.Errorf("first-packet dynamic slice wrongly contains %q:\n%s", gone, printed)
		}
	}
	// The dynamic slice is smaller than the static slice.
	if lang.CountLoC(prog) >= an.Metrics.LoCSlice {
		t.Errorf("dynamic slice LoC %d !< static slice LoC %d",
			lang.CountLoC(prog), an.Metrics.LoCSlice)
	}
}

// TestDynamicSliceSecondPacket: after the flow exists, the dynamic slice
// flips to the existing-connection arm.
func TestDynamicSliceSecondPacket(t *testing.T) {
	an := analyzeLB(t, Options{})
	p := lbPacket(2000)
	prog, err := an.DynamicSlice([]value.Value{p, p})
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(prog)
	if !strings.Contains(printed, "nat_tpl = f2b_nat[cs_ftpl]") {
		t.Errorf("second-packet slice missing the lookup arm:\n%s", printed)
	}
	if strings.Contains(printed, "servers[rr_idx]") {
		t.Errorf("second-packet slice still selects a backend:\n%s", printed)
	}
}

// TestDynamicSliceDropPath: stray reverse traffic executes only the
// reverse-miss path.
func TestDynamicSliceDropPath(t *testing.T) {
	an := analyzeLB(t, Options{})
	stray := netpkt.Packet{
		SrcIP: "1.1.1.1", DstIP: "9.9.9.9", SrcPort: 80, DstPort: 50000,
		Proto: "tcp", Flags: "A", TTL: 64, InIface: "eth0",
	}.ToValue()
	prog, err := an.DynamicSlice([]value.Value{stray})
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(prog)
	if !strings.Contains(printed, "return;") {
		t.Errorf("drop path slice missing the early return:\n%s", printed)
	}
	if strings.Contains(printed, "send(") {
		t.Errorf("drop path slice contains a send:\n%s", printed)
	}
}

func TestDynamicSliceEmptyTrace(t *testing.T) {
	an := analyzeLB(t, Options{})
	if _, err := an.DynamicSlice(nil); err == nil {
		t.Error("empty trace did not error")
	}
}

func TestDynamicSliceReparses(t *testing.T) {
	an := analyzeLB(t, Options{})
	prog, err := an.DynamicSlice([]value.Value{lbPacket(3000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Parse(lang.Print(prog)); err != nil {
		t.Fatalf("dynamic slice does not re-parse: %v\n%s", err, lang.Print(prog))
	}
}
