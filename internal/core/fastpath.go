package core

import (
	"fmt"

	"nfactor/internal/dataplane"
	"nfactor/internal/interp"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// CompiledEngine lowers the synthesized model plus its concrete
// configuration into the zero-allocation data-plane engine. An error
// means some term shape has no data-plane lowering; callers should fall
// back to the reference Instance (model.NewInstance).
func (an *Analysis) CompiledEngine(opts Options) (*dataplane.Engine, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	eng, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil, err
	}
	eng.SetPerf(opts.Perf)
	return eng, nil
}

// Instance builds the reference interpreter over the same configuration
// and initial state the compiled engine gets — the baseline the
// data-plane benchmarks compare against.
func (an *Analysis) Instance(opts Options) (*model.Instance, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	return model.NewInstance(an.Model, config, state)
}

// ShardedEngine builds the flow-partitioned concurrent engine with n
// shards. It errors when some state variable has no sharding lowering
// (see dataplane.Classify; dataplane.BlockingVar names the variable).
func (an *Analysis) ShardedEngine(n int, opts Options) (*dataplane.Sharded, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	sh, err := dataplane.NewSharded(an.Model, config, state, n)
	if err != nil {
		return nil, err
	}
	if opts.Perf != nil {
		sh.SetPerf(opts.Perf)
	}
	return sh, nil
}

// DiffTestCompiled replays trace through the reference model.Instance
// and the compiled data-plane engine in lockstep, comparing every
// packet's outcome — drop/forward, emitted packets (through the netpkt
// wire lens, the engine's output domain), interfaces, and which entry
// fired — and, at the end of the trace, the complete state trajectory's
// final point. It is the equivalence methodology backing the compiled
// engine: same trace, same outputs, same end state.
func (an *Analysis) DiffTestCompiled(trace []netpkt.Packet, opts Options) (*DiffResult, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		return nil, err
	}
	eng, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil, err
	}
	eng.SetPerf(opts.Perf)

	defer opts.Perf.Phase("accuracy.diff.compiled")()
	trials := opts.Perf.Counter(perf.CDiffTrials)
	res := &DiffResult{}
	record := func(i int, p netpkt.Packet, diff string) {
		res.Mismatches++
		if res.First != nil {
			return
		}
		res.FirstDiff = fmt.Sprintf("packet %d (%s): %s", i, p, diff)
		// Reconstruct both sides' guard trails at the diverging packet
		// by replaying fresh replicas, then pinpoint the first guard
		// whose outcome differs.
		d := &Divergence{
			Packet:    i,
			Pkt:       p,
			Detail:    diff,
			Reference: an.explainModelAt(trace, i, opts),
			Candidate: an.explainEngineAt(trace, i, opts),
		}
		if d.Reference != nil && d.Candidate != nil {
			d.GuardDiff = telemetry.DiffGuards(d.Reference, d.Candidate)
		}
		res.First = d
	}
	for i := range trace {
		res.Trials++
		trials.Inc()
		rOut, rEntry, rErr := inst.ProcessTraced(trace[i].ToValue())
		eOut, eErr := eng.Process(&trace[i])
		if (rErr != nil) != (eErr != nil) {
			record(i, trace[i], fmt.Sprintf("error mismatch: instance=%v engine=%v", rErr, eErr))
			continue
		}
		if rErr != nil {
			continue // both errored
		}
		if diff := compareEngineOutput(rOut, rEntry, eOut); diff != "" {
			record(i, trace[i], diff)
		}
	}
	if diff := compareStates(inst.State(), eng.State()); diff != "" {
		res.Mismatches++
		if res.FirstDiff == "" {
			res.FirstDiff = "end state: " + diff
			res.First = &Divergence{Packet: -1, Detail: diff}
		}
	}
	eng.Flush()
	return res, nil
}

// explainEngineAt replays a fresh compiled engine over trace[:i] and
// returns the explain trace of trace[i]. Best-effort: nil when the
// replica cannot be built.
func (an *Analysis) explainEngineAt(trace []netpkt.Packet, i int, opts Options) *telemetry.PacketTrace {
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil
	}
	eng, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil
	}
	for j := 0; j < i; j++ {
		if _, err := eng.Process(&trace[j]); err != nil {
			break
		}
	}
	_, tr, _ := eng.ProcessExplain(&trace[i])
	return tr
}

// compareEngineOutput checks one reference output against one engine
// output. Reference packets pass through netpkt.FromValue — the
// engine's native representation — so both sides are compared in the
// wire domain.
func compareEngineOutput(r *interp.Output, rEntry int, e *dataplane.Output) string {
	if r.Dropped != e.Dropped {
		return fmt.Sprintf("drop mismatch: instance=%v engine=%v", r.Dropped, e.Dropped)
	}
	if rEntry != e.Entry {
		return fmt.Sprintf("fired entry mismatch: instance=%d engine=%d", rEntry, e.Entry)
	}
	if len(r.Sent) != len(e.Sent) {
		return fmt.Sprintf("send count mismatch: instance=%d engine=%d", len(r.Sent), len(e.Sent))
	}
	for i := range r.Sent {
		if r.Sent[i].Iface != e.Sent[i].Iface {
			return fmt.Sprintf("send %d iface mismatch: %q vs %q", i, r.Sent[i].Iface, e.Sent[i].Iface)
		}
		rp, err := netpkt.FromValue(r.Sent[i].Pkt)
		if err != nil {
			return fmt.Sprintf("send %d: reference emitted a non-packet: %v", i, err)
		}
		if rp.Canonical() != e.Sent[i].Pkt.Canonical() {
			return fmt.Sprintf("send %d packet mismatch:\n  instance: %s\n  engine:   %s",
				i, rp.Canonical(), e.Sent[i].Pkt.Canonical())
		}
	}
	return ""
}

func compareStates(r, e map[string]value.Value) string {
	if len(r) != len(e) {
		return fmt.Sprintf("state variable count mismatch: instance=%d engine=%d", len(r), len(e))
	}
	for name, rv := range r {
		ev, ok := e[name]
		if !ok {
			return fmt.Sprintf("engine state is missing %q", name)
		}
		if !value.Equal(rv, ev) {
			return fmt.Sprintf("state %q mismatch:\n  instance: %s\n  engine:   %s", name, rv, ev)
		}
	}
	return ""
}
