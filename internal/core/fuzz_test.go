package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nfactor/internal/interp"
	"nfactor/internal/lang"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

// randNF generates a random—but well-defined—NF program: branches on
// packet fields, guarded map state, counters, field rewrites, early
// drops and sends. Every generated program must survive the full
// pipeline and agree with its synthesized model on random traffic: an
// end-to-end property test of the whole stack (slicer, solver, symbolic
// executor, model builder, both interpreters).
func randNF(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("PORT_A = ")
	fmt.Fprintf(&b, "%d;\n", 1+rng.Intn(1024))
	fmt.Fprintf(&b, "HOST_A = \"10.0.0.%d\";\n", 1+rng.Intn(254))
	b.WriteString("m = {};\ncnt = 0;\nstat = 0;\n\nfunc process(pkt) {\n")
	emitBlock(&b, rng, 1, 3)
	b.WriteString("    send(pkt);\n}\n")
	return b.String()
}

func indentOf(depth int) string { return strings.Repeat("    ", depth) }

func emitBlock(b *strings.Builder, rng *rand.Rand, depth, maxDepth int) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		emitStmt(b, rng, depth, maxDepth)
	}
}

func emitStmt(b *strings.Builder, rng *rand.Rand, depth, maxDepth int) {
	ind := indentOf(depth)
	choice := rng.Intn(8)
	if depth >= maxDepth && choice < 2 {
		choice += 2 // no deeper branching
	}
	switch choice {
	case 0: // branch on an integer packet field
		field := []string{"sport", "dport", "ttl", "length"}[rng.Intn(4)]
		op := []string{"==", "!=", "<", ">", "<=", ">="}[rng.Intn(6)]
		rhs := []string{fmt.Sprintf("%d", rng.Intn(2048)), "PORT_A"}[rng.Intn(2)]
		fmt.Fprintf(b, "%sif pkt.%s %s %s {\n", ind, field, op, rhs)
		emitBlock(b, rng, depth+1, maxDepth)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			emitBlock(b, rng, depth+1, maxDepth)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case 1: // branch on a string packet field
		field := []string{"sip", "dip", "proto"}[rng.Intn(3)]
		rhs := []string{`"tcp"`, `"udp"`, "HOST_A"}[rng.Intn(3)]
		op := []string{"==", "!="}[rng.Intn(2)]
		fmt.Fprintf(b, "%sif pkt.%s %s %s {\n", ind, field, op, rhs)
		emitBlock(b, rng, depth+1, maxDepth)
		fmt.Fprintf(b, "%s}\n", ind)
	case 2: // guarded map state: read-or-install
		fmt.Fprintf(b, "%sk%d = (pkt.sip, pkt.sport);\n", ind, depth)
		fmt.Fprintf(b, "%sif k%d in m {\n", ind, depth)
		fmt.Fprintf(b, "%s    v%d = m[k%d];\n", ind, depth, depth)
		fmt.Fprintf(b, "%s    pkt.cached = v%d;\n", ind, depth)
		fmt.Fprintf(b, "%s} else {\n", ind)
		fmt.Fprintf(b, "%s    m[k%d] = pkt.dport;\n", ind, depth)
		fmt.Fprintf(b, "%s}\n", ind)
	case 3: // state counter (output-impacting only if later branched on)
		fmt.Fprintf(b, "%scnt = cnt + 1;\n", ind)
	case 4: // log counter
		fmt.Fprintf(b, "%sstat = stat + %d;\n", ind, 1+rng.Intn(3))
	case 5: // field rewrite
		field := []string{"sport", "dport", "ttl"}[rng.Intn(3)]
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(b, "%spkt.%s = %d;\n", ind, field, rng.Intn(65536))
		case 1:
			fmt.Fprintf(b, "%spkt.%s = pkt.%s + %d;\n", ind, field, field, 1+rng.Intn(9))
		default:
			fmt.Fprintf(b, "%spkt.%s = PORT_A;\n", ind, field)
		}
	case 6: // early drop
		fmt.Fprintf(b, "%sif pkt.ttl < %d {\n%s    return;\n%s}\n", ind, 1+rng.Intn(8), ind, ind)
	default: // extra send on a named interface
		fmt.Fprintf(b, "%ssend(pkt, \"if%d\");\n", ind, rng.Intn(3))
	}
}

func TestRandomNFsAgreeWithTheirModels(t *testing.T) {
	const programs = 40
	rng := rand.New(rand.NewSource(20260704))
	for i := 0; i < programs; i++ {
		src := randNF(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("generated program %d does not parse: %v\n%s", i, err, src)
		}
		opts := Options{MaxPaths: 4096}
		an, err := Analyze(fmt.Sprintf("rand%d", i), prog, opts)
		if err != nil {
			t.Fatalf("program %d failed analysis: %v\n%s", i, err, src)
		}
		trace := workload.New(int64(i)).RandomTrace(120)
		res, err := an.DiffTest(trace, opts)
		if err != nil {
			t.Fatalf("program %d difftest error: %v\n%s", i, err, src)
		}
		if !res.Matches() {
			t.Fatalf("program %d model diverges: %s\n%s", i, res.FirstDiff, src)
		}
	}
}

func TestRandomNFsPathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("path equivalence fuzz is slow")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		src := randNF(rng)
		prog := lang.MustParse(src)
		opts := Options{MaxPaths: 4096}
		an, err := Analyze(fmt.Sprintf("randeq%d", i), prog, opts)
		if err != nil {
			t.Fatalf("program %d failed analysis: %v\n%s", i, err, src)
		}
		rep, err := an.CheckPathEquivalence(opts)
		if err != nil {
			t.Fatalf("program %d equivalence error: %v\n%s", i, err, src)
		}
		if !rep.Equivalent() {
			t.Fatalf("program %d path sets differ:\nuncovered=%v\nmismatched=%v\n%s",
				i, rep.UncoveredProgram, rep.MismatchedModel, src)
		}
	}
}

// TestPathsPartitionInputSpace: the symbolic executor's branch
// decomposition claims the enumerated paths are exhaustive and pairwise
// disjoint. For random NFs and random concrete packets, exactly one
// path's condition must evaluate to true against the initial state.
func TestPathsPartitionInputSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 15; i++ {
		src := randNF(rng)
		prog := lang.MustParse(src)
		an, err := Analyze(fmt.Sprintf("part%d", i), prog, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range workload.New(int64(i)).RandomTrace(40) {
			pv := p.ToValue()
			matches := 0
			for _, path := range an.Paths {
				all := true
				for _, c := range path.Conds {
					ok, err := solver.EvalBool(c, pathEnv{pkt: pv, state: state, config: config})
					if err != nil || !ok {
						all = false
						break
					}
				}
				if all {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("program %d: packet %s matches %d paths, want exactly 1\n%s",
					i, p, matches, src)
			}
		}
	}
}

type pathEnv struct {
	pkt    value.Value
	state  map[string]value.Value
	config map[string]value.Value
}

func (e pathEnv) Lookup(name string) (value.Value, bool) {
	if f, ok := strings.CutPrefix(name, "pkt."); ok {
		v, ok := e.pkt.Pkt.Fields[f]
		return v, ok
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.state[base]
		return v, ok
	}
	v, ok := e.config[name]
	return v, ok
}

// TestSliceSemanticsPreserved: the union slice is itself an executable
// program; Weiser's slicing theorem says it must produce the same
// packet-forwarding behaviour as the original (log output excepted) on
// every input. Checked dynamically for random NFs and random traffic —
// the slicer's soundness property end to end.
func TestSliceSemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 25; i++ {
		src := randNF(rng)
		prog := lang.MustParse(src)
		an, err := Analyze(fmt.Sprintf("slice%d", i), prog, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		origIn, err := interp.New(an.Analyzer.Prog, "process", interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sliceIn, err := interp.New(an.SliceProg, "process", interp.Options{})
		if err != nil {
			t.Fatalf("program %d: slice not runnable: %v\nslice:\n%s", i, err, lang.Print(an.SliceProg))
		}
		for _, p := range workload.New(int64(100 + i)).RandomTrace(60) {
			pv := p.ToValue()
			oo, err1 := origIn.Process(pv)
			so, err2 := sliceIn.Process(pv)
			if (err1 != nil) != (err2 != nil) {
				t.Fatalf("program %d packet %s: error mismatch orig=%v slice=%v\n%s", i, p, err1, err2, src)
			}
			if err1 != nil {
				continue
			}
			if oo.Dropped != so.Dropped || len(oo.Sent) != len(so.Sent) {
				t.Fatalf("program %d packet %s: verdict mismatch (drop %v/%v sends %d/%d)\norig:\n%s\nslice:\n%s",
					i, p, oo.Dropped, so.Dropped, len(oo.Sent), len(so.Sent), src, lang.Print(an.SliceProg))
			}
			for k := range oo.Sent {
				if oo.Sent[k].Iface != so.Sent[k].Iface ||
					!value.Equal(oo.Sent[k].Pkt, so.Sent[k].Pkt) {
					t.Fatalf("program %d packet %s: sent packet %d differs\norig:  %s\nslice: %s",
						i, p, k, oo.Sent[k].Pkt, so.Sent[k].Pkt)
				}
			}
		}
	}
}
