package core_test

import (
	"strings"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/lang"
	"nfactor/internal/lint"
)

// TestLintOptionCollects: Options.Lint attaches NFLint findings to the
// Analysis without failing it.
func TestLintOptionCollects(t *testing.T) {
	src := `
SPARE = 1;

func process(pkt) {
    x = 7;
    x = pkt.sport;
    pkt.dport = x;
    send(pkt, "out");
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze("t", prog, core.Options{Lint: true})
	if err != nil {
		t.Fatalf("warnings must not fail the pipeline: %v", err)
	}
	codes := map[lint.Code]bool{}
	for _, d := range an.Diagnostics {
		codes[d.Code] = true
	}
	if !codes[lint.CodeDeadAssign] || !codes[lint.CodeUnusedVar] {
		t.Fatalf("want NFL002 and NFL004 findings, got:\n%s", lint.Render(an.Diagnostics))
	}
}

// TestLintStrictFails: LintStrict turns an error-severity finding into a
// synthesis failure (diagnose, don't silently synthesize).
func TestLintStrictFails(t *testing.T) {
	src := `
func process(pkt) {
    if pkt.sport > 0 {
        pkt.dport = ghost;
    }
    send(pkt, "out");
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Analyze("t", prog, core.Options{LintStrict: true})
	if err == nil || !strings.Contains(err.Error(), "NFL001") {
		t.Fatalf("want a lint failure naming NFL001, got: %v", err)
	}
}

// TestLintStrictCleanPasses: a clean corpus NF synthesizes under the
// strict gate.
func TestLintStrictCleanPasses(t *testing.T) {
	src := `
func process(pkt) {
    if pkt.sport > 1024 {
        send(pkt, "out");
    }
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze("t", prog, core.Options{LintStrict: true})
	if err != nil {
		t.Fatalf("clean program must pass the strict gate: %v", err)
	}
	if len(an.Diagnostics) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", lint.Render(an.Diagnostics))
	}
}
