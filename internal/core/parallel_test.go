package core

import (
	"fmt"
	"strings"
	"testing"

	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/symexec"
)

func pathCondKeys(paths []*symexec.Path) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		var sb strings.Builder
		for _, c := range p.Conds {
			sb.WriteString(c.Key())
			sb.WriteByte('&')
		}
		out[i] = sb.String()
	}
	return out
}

// TestPipelineDeterministicAcrossWorkers is the end-to-end determinism
// regression: for balance and snortlite, the rendered model and the
// ordered path-condition list are byte-identical at Workers=1 and
// Workers=8.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"balance", "snortlite"} {
		t.Run(name, func(t *testing.T) {
			nf, err := nfs.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			an1, err := Analyze(name, nf.Prog, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			an8, err := Analyze(name, nf.Prog, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			r1, r8 := model.Render(an1.Model), model.Render(an8.Model)
			if r1 != r8 {
				t.Errorf("rendered models differ between Workers=1 and Workers=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", r1, r8)
			}
			k1, k8 := pathCondKeys(an1.Paths), pathCondKeys(an8.Paths)
			if fmt.Sprint(k1) != fmt.Sprint(k8) {
				t.Errorf("path-condition sequences differ:\n 1: %v\n 8: %v", k1, k8)
			}
		})
	}
}

// TestPipelineCacheHitRateNonZero: the pipeline's repeated executions
// (slice SE + compiled-model SE + accuracy implication queries) revisit
// conjunctions, so a balance run must produce solver-cache hits and
// populate the perf set.
func TestPipelineCacheHitRateNonZero(t *testing.T) {
	nf, err := nfs.Load("balance")
	if err != nil {
		t.Fatal(err)
	}
	set := perf.New()
	cache := solver.NewCacheWithPerf(set)
	opts := Options{Workers: 2, Cache: cache, Perf: set}
	an, err := Analyze("balance", nf.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.CheckPathEquivalence(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent() {
		t.Fatalf("balance model not equivalent: %+v", rep)
	}
	st := cache.Stats()
	if st.SatHits == 0 {
		t.Errorf("solver cache recorded no hits: %+v", st)
	}
	if st.SatHitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", st.SatHitRate())
	}
	// The mirrored perf counters agree with the cache's own stats.
	if set.Get(perf.CSatCacheHit) != st.SatHits {
		t.Errorf("perf mirror %d != cache stats %d", set.Get(perf.CSatCacheHit), st.SatHits)
	}
	// Phase timers ran.
	for _, phase := range []string{"slice", "se.slice", "refine", "accuracy.equiv"} {
		if set.PhaseWall(phase) <= 0 {
			t.Errorf("phase %q has no recorded wall time", phase)
		}
	}
	if set.Get(perf.CModelEntries) != int64(len(an.Model.Entries)) {
		t.Errorf("refine.entries = %d, want %d", set.Get(perf.CModelEntries), len(an.Model.Entries))
	}
}

// TestAccuracyInheritsPipelineCache: calling accuracy checks with a
// zero-valued Options still reuses the Analysis' cache, so verdicts from
// the pipeline run answer the model-side queries.
func TestAccuracyInheritsPipelineCache(t *testing.T) {
	nf, err := nfs.Load("lb")
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze("lb", nf.Prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := an.Cache.Stats()
	rep, err := an.CheckPathEquivalence(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent() {
		t.Fatalf("lb model not equivalent: %+v", rep)
	}
	after := an.Cache.Stats()
	if after.SatHits+after.SatMisses <= before.SatHits+before.SatMisses {
		t.Error("CheckPathEquivalence did not route queries through the Analysis cache")
	}
}
