package core

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/lang"
	"nfactor/internal/solver"
	"nfactor/internal/symexec"
)

// StmtSite is one NFLang source location a model entry traces back to.
type StmtSite struct {
	StmtID int
	Pos    lang.Pos
	// Text is the statement's first rendered line (loop/if headers rather
	// than whole bodies).
	Text string
}

// EntryProvenance links one synthesized table entry back to the program
// analysis that produced it: the execution path's id in the exploration
// tree (shared with the trace's state spans), its path conditions with
// the branch statement each literal came from, and the source positions
// of every sliced statement the path executed. This is the data behind
// `nfactor -why`.
type EntryProvenance struct {
	NFName string
	Entry  int // entry index == Entry.Priority == path index
	PathID string
	// Truncated marks an entry refined from a path cut off by the loop
	// bound or step budget (its conditions under-constrain the behaviour).
	Truncated bool
	// Conds are the path-condition literals; CondSites[i] is the branch
	// statement literal i was collected at.
	Conds     []solver.Term
	CondSites []StmtSite
	// Slice are the distinct sliced statements executed along the path,
	// in source order — the dynamic footprint of this entry.
	Slice []StmtSite
}

// site resolves a statement id against the sliced program — the program
// the path-enumerating symbolic execution actually ran, whose statement
// ids Reconstruct renumbered (expression positions still point into the
// original source).
func (an *Analysis) site(id int) StmtSite {
	site := StmtSite{StmtID: id}
	s := an.SliceProg.StmtByID(id)
	if s == nil {
		site.Text = fmt.Sprintf("<statement %d>", id)
		return site
	}
	site.Pos = s.NodePos()
	text := lang.PrintStmt(s)
	if i := strings.IndexByte(text, '\n'); i >= 0 {
		text = text[:i]
	}
	site.Text = strings.TrimSpace(text)
	return site
}

// EntryProvenance returns the provenance record for model entry i.
// Entries and paths are in 1:1 correspondence (refinement preserves path
// order), so the record is derived from Paths[i].
func (an *Analysis) EntryProvenance(i int) (*EntryProvenance, error) {
	if an.Model == nil || an.Paths == nil {
		return nil, fmt.Errorf("core: analysis has no synthesized model")
	}
	if i < 0 || i >= len(an.Model.Entries) {
		return nil, fmt.Errorf("core: entry %d out of range (model has %d entries)", i, len(an.Model.Entries))
	}
	if len(an.Paths) != len(an.Model.Entries) {
		return nil, fmt.Errorf("core: path/entry mismatch (%d paths, %d entries)", len(an.Paths), len(an.Model.Entries))
	}
	p := an.Paths[i]
	pr := &EntryProvenance{
		NFName:    an.NFName,
		Entry:     i,
		PathID:    symexec.PathID(p.Seq),
		Truncated: p.Truncated,
		Conds:     p.Conds,
	}
	for _, id := range p.CondStmts {
		pr.CondSites = append(pr.CondSites, an.site(id))
	}
	for _, id := range p.VisitedIDs {
		pr.Slice = append(pr.Slice, an.site(id))
	}
	sort.SliceStable(pr.Slice, func(a, b int) bool {
		pa, pb := pr.Slice[a].Pos, pr.Slice[b].Pos
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		return pa.Col < pb.Col
	})
	return pr, nil
}

// WhyEntry renders entry i's provenance as a human-readable report: what
// the entry matches and does, which execution path produced it, and the
// source line behind every path-condition literal plus the statements on
// its slice.
func (an *Analysis) WhyEntry(i int) (string, error) {
	pr, err := an.EntryProvenance(i)
	if err != nil {
		return "", err
	}
	e := &an.Model.Entries[i]
	var b strings.Builder
	fmt.Fprintf(&b, "entry %d of %s (path %s", pr.Entry, pr.NFName, pr.PathID)
	if pr.Truncated {
		b.WriteString(", TRUNCATED by loop/step bound")
	}
	b.WriteString(")\n")

	action := "drop"
	if len(e.Sends) > 0 {
		action = fmt.Sprintf("%d send(s)", len(e.Sends))
	}
	fmt.Fprintf(&b, "  action: %s, %d state update(s)\n", action, len(e.Updates))

	if len(pr.Conds) == 0 {
		b.WriteString("  path conditions: (none — unconditional path)\n")
	} else {
		b.WriteString("  path conditions:\n")
		for j, c := range pr.Conds {
			site := pr.CondSites[j]
			fmt.Fprintf(&b, "    %-40s  <- %s %s\n", c.Key(), site.Pos, site.Text)
		}
	}

	b.WriteString("  sliced statements executed:\n")
	for _, s := range pr.Slice {
		fmt.Fprintf(&b, "    %s %s\n", s.Pos, s.Text)
	}
	return b.String(), nil
}
