package core

import (
	"fmt"

	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
)

// DiffTestSharded replays a closed-loop workload through the sequential
// compiled engine and an n-shard Sharded engine in lockstep and demands
// equivalence modulo allocator-value renaming and per-flow rotor choice
// (dataplane.Equiv documents the exact relation; for purely
// flow-partitioned models it degenerates to exact equality).
//
// The loop is closed per engine: whenever a stimulus packet is
// forwarded, the reply it would provoke — endpoints swapped, arriving
// on the interface the engine emitted it to — is materialized from that
// engine's *own* output and fed back to it. This is what exercises the
// renamed half of the state space: a NAT'd reply comes back to whatever
// port that engine allocated, so each side chases its own renaming
// while the comparator checks the two stay bijective.
//
// Stimulus packets should keep their ports outside the model's
// allocator ranges (client ports below 10000 clear the corpus), so an
// allocated value is never confused with workload coincidence.
func (an *Analysis) DiffTestSharded(stimulus []netpkt.Packet, n int, opts Options) (*DiffResult, error) {
	opts = an.inherit(opts)
	config, state, err := an.ConfigAndState(opts.ConfigOverride)
	if err != nil {
		return nil, err
	}
	seq, err := dataplane.Compile(an.Model, config, state)
	if err != nil {
		return nil, err
	}
	sh, err := dataplane.NewSharded(an.Model, config, state, n)
	if err != nil {
		return nil, err
	}
	eq := dataplane.NewEquiv(sh.Class(), config)

	defer opts.Perf.Phase("accuracy.diff.sharded")()
	trials := opts.Perf.Counter(perf.CDiffTrials)
	res := &DiffResult{}
	record := func(i int, p netpkt.Packet, diff string) {
		res.Mismatches++
		if res.First == nil {
			res.FirstDiff = fmt.Sprintf("packet %d (%s): %s", i, p, diff)
			res.First = &Divergence{Packet: i, Pkt: p, Detail: diff}
		}
	}
	// step processes one packet pair and reports whether both sides are
	// healthy enough to keep the closed loop going.
	step := func(i int, key string, pa, pb netpkt.Packet) (*dataplane.Output, *dataplane.Output, bool) {
		res.Trials++
		trials.Inc()
		aOut, aErr := seq.Process(&pa)
		bOut, bErr := sh.Process(&pb)
		if (aErr != nil) != (bErr != nil) {
			record(i, pa, fmt.Sprintf("error mismatch: sequential=%v sharded=%v", aErr, bErr))
			return nil, nil, false
		}
		if aErr != nil {
			return nil, nil, false // both errored identically
		}
		if diff := eq.CompareOutputs(key, aOut, bOut); diff != "" {
			record(i, pa, diff)
			return nil, nil, false
		}
		return aOut, bOut, true
	}
	for i := range stimulus {
		key := dataplane.FlowKey(&stimulus[i])
		aOut, bOut, ok := step(i, key, stimulus[i], stimulus[i])
		if !ok || aOut.Dropped || len(aOut.Sent) == 0 || len(bOut.Sent) == 0 {
			continue
		}
		// One reply round per forwarded stimulus, materialized from each
		// engine's own output.
		ra := replyTo(aOut.Sent[0].Pkt, aOut.Sent[0].Iface)
		rb := replyTo(bOut.Sent[0].Pkt, bOut.Sent[0].Iface)
		step(i, key, ra, rb)
	}
	if diff := eq.CompareStates(seq.State(), sh.State()); diff != "" {
		res.Mismatches++
		if res.First == nil {
			res.FirstDiff = "end state: " + diff
			res.First = &Divergence{Packet: -1, Detail: diff}
		}
	}
	return res, nil
}

// replyTo builds the answer an emitted packet would provoke: endpoints
// swapped, arriving back on the interface it left through.
func replyTo(p netpkt.Packet, iface string) netpkt.Packet {
	p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
	p.SrcPort, p.DstPort = p.DstPort, p.SrcPort
	p.Flags = "A"
	p.InIface = iface
	return p
}
