// Package dataflow implements the classic dataflow analyses NFactor's
// slicer is built on: reaching definitions (→ data dependence edges of the
// PDG) and liveness. Both run at CFG-node granularity.
package dataflow

import (
	"sort"

	"nfactor/internal/cfg"
	"nfactor/internal/lang"
)

// Def identifies a definition site: variable v is assigned at CFG node
// Node. The function's parameters and every global are given a synthetic
// definition at ENTRY so first uses have a def to depend on.
type Def struct {
	Node int
	Var  string
}

// ReachDefs is the result of reaching-definitions analysis.
type ReachDefs struct {
	g *cfg.Graph
	// In[n] is the set of definitions reaching the start of node n.
	In []map[Def]bool
	// Out[n] is the set of definitions live after node n.
	Out []map[Def]bool
}

// nodeDefs returns the definitions generated at node n and whether each is
// strong (kills earlier defs of the same variable) or weak (a container
// element store: m[k] = v updates m in place, so earlier defs still flow).
func nodeDefs(n *cfg.Node) (strong, weak []string) {
	if n.Stmt == nil {
		return nil, nil
	}
	switch st := n.Stmt.(type) {
	case *lang.AssignStmt:
		for _, l := range st.LHS {
			base := lang.BaseVar(l)
			if base == "" {
				continue
			}
			if _, ok := l.(*lang.Ident); ok {
				strong = append(strong, base)
			} else {
				weak = append(weak, base)
			}
		}
	case *lang.ForStmt:
		strong = append(strong, st.Var)
	}
	return strong, weak
}

// Reaching computes reaching definitions over g. params are the entry
// function's parameters; they and globalNames receive synthetic ENTRY
// definitions.
func Reaching(g *cfg.Graph, params []string) *ReachDefs {
	n := len(g.Nodes)
	gen := make([]map[Def]bool, n)
	killVars := make([]map[string]bool, n)
	for i, node := range g.Nodes {
		gen[i] = map[Def]bool{}
		killVars[i] = map[string]bool{}
		strong, weak := nodeDefs(node)
		for _, v := range strong {
			gen[i][Def{Node: i, Var: v}] = true
			killVars[i][v] = true
		}
		for _, v := range weak {
			gen[i][Def{Node: i, Var: v}] = true
		}
	}
	// Synthetic parameter defs at ENTRY.
	for _, p := range params {
		gen[g.Entry.ID][Def{Node: g.Entry.ID, Var: p}] = true
	}

	r := &ReachDefs{g: g}
	r.In = make([]map[Def]bool, n)
	r.Out = make([]map[Def]bool, n)
	for i := 0; i < n; i++ {
		r.In[i] = map[Def]bool{}
		r.Out[i] = map[Def]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			in := map[Def]bool{}
			for _, p := range g.Preds(i) {
				for d := range r.Out[p] {
					in[d] = true
				}
			}
			out := map[Def]bool{}
			for d := range in {
				if !killVars[i][d.Var] {
					out[d] = true
				}
			}
			for d := range gen[i] {
				out[d] = true
			}
			if !sameDefSet(in, r.In[i]) || !sameDefSet(out, r.Out[i]) {
				r.In[i], r.Out[i] = in, out
				changed = true
			}
		}
	}
	return r
}

// UseDefs returns the CFG nodes whose definition of v reaches the use of v
// at node, sorted ascending.
func (r *ReachDefs) UseDefs(node int, v string) []int {
	var out []int
	for d := range r.In[node] {
		if d.Var == v {
			out = append(out, d.Node)
		}
	}
	sort.Ints(out)
	return out
}

// NodeUses returns the variables used by the statement at CFG node id.
func NodeUses(g *cfg.Graph, id int) []string {
	n := g.Node(id)
	if n.Stmt == nil {
		return nil
	}
	return lang.Uses(n.Stmt)
}

// NodeDefVars returns all variables (strong or weak) defined at node id.
func NodeDefVars(g *cfg.Graph, id int) []string {
	n := g.Node(id)
	strong, weak := nodeDefs(n)
	out := append(append([]string{}, strong...), weak...)
	sort.Strings(out)
	return out
}

func sameDefSet(a, b map[Def]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Liveness computes, for each CFG node, the set of variables live on entry
// to that node (used on some path before being strongly redefined).
type Liveness struct {
	In  []map[string]bool
	Out []map[string]bool
}

// Live runs backward liveness analysis over g.
func Live(g *cfg.Graph) *Liveness {
	n := len(g.Nodes)
	use := make([]map[string]bool, n)
	def := make([]map[string]bool, n)
	for i, node := range g.Nodes {
		use[i] = map[string]bool{}
		def[i] = map[string]bool{}
		if node.Stmt != nil {
			for _, v := range lang.Uses(node.Stmt) {
				use[i][v] = true
			}
			strong, _ := nodeDefs(node)
			for _, v := range strong {
				def[i][v] = true
			}
		}
	}
	lv := &Liveness{
		In:  make([]map[string]bool, n),
		Out: make([]map[string]bool, n),
	}
	for i := 0; i < n; i++ {
		lv.In[i] = map[string]bool{}
		lv.Out[i] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[string]bool{}
			for _, s := range g.Succs(i) {
				for v := range lv.In[s] {
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range use[i] {
				in[v] = true
			}
			for v := range out {
				if !def[i][v] {
					in[v] = true
				}
			}
			if !sameStrSet(in, lv.In[i]) || !sameStrSet(out, lv.Out[i]) {
				lv.In[i], lv.Out[i] = in, out
				changed = true
			}
		}
	}
	return lv
}

func sameStrSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
