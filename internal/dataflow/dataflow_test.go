package dataflow

import (
	"testing"

	"nfactor/internal/cfg"
	"nfactor/internal/lang"
)

func setup(t *testing.T, src string) (*cfg.Graph, *lang.Program) {
	t.Helper()
	prog := lang.MustParse(src)
	g, err := cfg.Build(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	return g, prog
}

func nodeOf(t *testing.T, g *cfg.Graph, match func(lang.Stmt) bool) *cfg.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Stmt != nil && match(n.Stmt) {
			return n
		}
	}
	t.Fatal("node not found")
	return nil
}

func assignsTo(name string) func(lang.Stmt) bool {
	return func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && len(as.LHS) > 0 && lang.ExprString(as.LHS[0]) == name
	}
}

func TestReachingLinear(t *testing.T) {
	g, _ := setup(t, `
func process(pkt) {
    a = 1;
    a = 2;
    b = a;
}`)
	rd := Reaching(g, []string{"pkt"})
	bNode := nodeOf(t, g, assignsTo("b"))
	defs := rd.UseDefs(bNode.ID, "a")
	if len(defs) != 1 {
		t.Fatalf("defs of a at b = %v, want only the redefinition", defs)
	}
	a2 := nodeOf(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "a" && lang.ExprString(as.RHS[0]) == "2"
	})
	if defs[0] != a2.ID {
		t.Errorf("def of a at b = node %d, want %d (a=2)", defs[0], a2.ID)
	}
}

func TestReachingBothBranches(t *testing.T) {
	g, _ := setup(t, `
func process(pkt) {
    if pkt.dport == 80 { a = 1; } else { a = 2; }
    b = a;
}`)
	rd := Reaching(g, []string{"pkt"})
	bNode := nodeOf(t, g, assignsTo("b"))
	defs := rd.UseDefs(bNode.ID, "a")
	if len(defs) != 2 {
		t.Errorf("defs of a after diamond = %v, want 2", defs)
	}
}

func TestWeakUpdateDoesNotKill(t *testing.T) {
	g, _ := setup(t, `
m = {};
func process(pkt) {
    m[pkt.sport] = 1;
    x = m;
}`)
	rd := Reaching(g, []string{"pkt"})
	xNode := nodeOf(t, g, assignsTo("x"))
	defs := rd.UseDefs(xNode.ID, "m")
	// Both the global initializer and the element store reach the use:
	// the store is a weak update of the container.
	if len(defs) != 2 {
		t.Errorf("defs of m = %v, want 2 (init + weak store)", defs)
	}
}

func TestStrongUpdateKills(t *testing.T) {
	g, _ := setup(t, `
m = {};
func process(pkt) {
    m = {};
    x = m;
}`)
	rd := Reaching(g, []string{"pkt"})
	xNode := nodeOf(t, g, assignsTo("x"))
	defs := rd.UseDefs(xNode.ID, "m")
	if len(defs) != 1 {
		t.Errorf("defs of m = %v, want 1 (reassignment kills init)", defs)
	}
}

func TestParamDefAtEntry(t *testing.T) {
	g, _ := setup(t, `
func process(pkt) {
    a = pkt.sip;
}`)
	rd := Reaching(g, []string{"pkt"})
	aNode := nodeOf(t, g, assignsTo("a"))
	defs := rd.UseDefs(aNode.ID, "pkt")
	if len(defs) != 1 || defs[0] != g.Entry.ID {
		t.Errorf("defs of pkt = %v, want [entry]", defs)
	}
}

func TestLoopCarriedDef(t *testing.T) {
	g, _ := setup(t, `
func process(pkt) {
    i = 0;
    while i < 3 {
        i = i + 1;
    }
    send(i);
}`)
	rd := Reaching(g, []string{"pkt"})
	inc := nodeOf(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "i" && lang.ExprString(as.RHS[0]) != "0"
	})
	defs := rd.UseDefs(inc.ID, "i")
	// Inside the loop both i=0 and i=i+1 reach.
	if len(defs) != 2 {
		t.Errorf("defs of i inside loop = %v, want 2", defs)
	}
}

func TestLiveness(t *testing.T) {
	g, _ := setup(t, `
func process(pkt) {
    a = 1;
    b = 2;
    send(a);
}`)
	lv := Live(g)
	aAssign := nodeOf(t, g, assignsTo("a"))
	bAssign := nodeOf(t, g, assignsTo("b"))
	if !lv.Out[aAssign.ID]["a"] {
		t.Error("a not live after its assignment")
	}
	if lv.Out[bAssign.ID]["b"] {
		t.Error("b live after its assignment despite no use")
	}
}

func TestNodeDefVars(t *testing.T) {
	g, _ := setup(t, `
m = {};
func process(pkt) {
    m[1] = 2;
}`)
	store := nodeOf(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "m[1]"
	})
	vars := NodeDefVars(g, store.ID)
	if len(vars) != 1 || vars[0] != "m" {
		t.Errorf("NodeDefVars = %v", vars)
	}
}
