package dataplane_test

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/netpkt"
	"nfactor/internal/workload"
)

// steadyTrace returns a trace that, once warmed, revisits only existing
// flow state: replaying it a second time inserts no new map entries.
func steadyTrace(name string) []netpkt.Packet {
	g := workload.New(11)
	switch name {
	case "lb", "balance", "nat", "mirror":
		return g.ClientServerTrace("3.3.3.3", 80, 64)
	default:
		return g.FlowTrace(8, 8)
	}
}

// TestZeroAllocSteadyState is the perf contract the engine is built
// around: after state is warmed, processing a packet performs zero heap
// allocations — no value boxing, no map-key boxing, no output
// reallocation. testing.AllocsPerRun makes the contract a regression
// test rather than a claim.
func TestZeroAllocSteadyState(t *testing.T) {
	for _, name := range []string{"lb", "firewall"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			eng, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			trace := steadyTrace(name)
			for i := range trace {
				if _, err := eng.Process(&trace[i]); err != nil {
					t.Fatalf("warmup packet %d: %v", i, err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(500, func() {
				if _, err := eng.Process(&trace[i%len(trace)]); err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s: %.1f allocs per packet in steady state, want 0", name, allocs)
			}
		})
	}
}
