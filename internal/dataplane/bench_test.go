package dataplane_test

import (
	"runtime"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
)

// benchTrace is the shared workload for the engine-vs-reference pairs:
// flow traffic plus randoms, warmed so measurement is steady-state.
func benchTrace(name string) []netpkt.Packet {
	return steadyTrace(name)
}

func benchEngine(b *testing.B, name string) {
	an := analyze(b, name)
	eng, err := an.CompiledEngine(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := benchTrace(name)
	for i := range trace {
		if _, err := eng.Process(&trace[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(&trace[i%len(trace)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReference(b *testing.B, name string) {
	an := analyze(b, name)
	inst, err := an.Instance(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := benchTrace(name)
	vals := make([]value.Value, len(trace))
	for i := range trace {
		vals[i] = trace[i].ToValue()
	}
	for _, v := range vals {
		if _, err := inst.Process(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Process(vals[i%len(vals)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_lb(b *testing.B)           { benchEngine(b, "lb") }
func BenchmarkReference_lb(b *testing.B)        { benchReference(b, "lb") }
func BenchmarkEngine_balance(b *testing.B)      { benchEngine(b, "balance") }
func BenchmarkReference_balance(b *testing.B)   { benchReference(b, "balance") }
func BenchmarkEngine_snortlite(b *testing.B)    { benchEngine(b, "snortlite") }
func BenchmarkReference_snortlite(b *testing.B) { benchReference(b, "snortlite") }
func BenchmarkEngine_firewall(b *testing.B)     { benchEngine(b, "firewall") }
func BenchmarkReference_firewall(b *testing.B)  { benchReference(b, "firewall") }
func BenchmarkEngine_nat(b *testing.B)          { benchEngine(b, "nat") }
func BenchmarkReference_nat(b *testing.B)       { benchReference(b, "nat") }

// BenchmarkEngineBatch_snortlite measures the amortized batched path.
func BenchmarkEngineBatch_snortlite(b *testing.B) {
	an := analyze(b, "snortlite")
	eng, err := an.CompiledEngine(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := benchTrace("snortlite")
	outs := make([]dataplane.Output, len(trace))
	if err := eng.ProcessBatch(trace, outs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ProcessBatch(trace, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(trace)), "pkts/batch")
}

// BenchmarkShardedBatch_snortlite measures the flow-partitioned
// concurrent engine. On a single-core machine the goroutine fan-out is
// pure overhead; the number documents it either way.
func BenchmarkShardedBatch_snortlite(b *testing.B) {
	an := analyze(b, "snortlite")
	sh, err := an.ShardedEngine(runtime.GOMAXPROCS(0), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	trace := benchTrace("snortlite")
	outs := make([]dataplane.Output, len(trace))
	if err := sh.ProcessBatch(trace, outs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sh.ProcessBatch(trace, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(trace)), "pkts/batch")
}
