package dataplane

import (
	"fmt"
	"sort"

	"nfactor/internal/value"
)

// CarryDecision records, for one state variable of a new generation,
// whether the old generation's value carries over across a hot swap and
// why.
type CarryDecision struct {
	Var     string
	Carried bool
	Reason  string
}

// CarryOver computes the state a freshly synthesized generation should
// start from when it replaces a running one: for each variable of the
// new model (its pristine init state `init`), either the old
// generation's live value (`old`) carries over, or the variable resets
// to its new init. Classification (against each generation's own
// pristine init — NOT live state, so allocator Init/Step compare the
// models, not their progress) decides compatibility:
//
//   - flow-maps and owned-maps carry: they hold per-flow session state
//     whose meaning survives an entry-table change;
//   - allocators carry iff Init and Step agree — a reseeded or
//     restrided allocator would hand out ranges the carried owned-maps
//     don't decode to, so it resets (and renames downstream state only
//     bijectively, which Equiv tolerates);
//   - rotors carry iff Mod and Init agree;
//   - frozen scalars and replica-maps re-initialize: they are derived
//     from the new model's own init/config;
//   - class or value-kind mismatches reset, naming both sides.
//
// Either classification may be nil (e.g. an NF the classifier cannot
// shard); then a variable carries iff it exists on both sides with the
// same value kind. Decisions come back sorted by variable name.
func CarryOver(oldCls, newCls *Classification, old, init map[string]value.Value) (map[string]value.Value, []CarryDecision) {
	names := make([]string, 0, len(init))
	for n := range init {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make(map[string]value.Value, len(init))
	decs := make([]CarryDecision, 0, len(names))
	for _, n := range names {
		iv := init[n]
		ov, ok := old[n]
		d := CarryDecision{Var: n}
		switch {
		case !ok:
			d.Reason = "new variable, no old value"
		case ov.Kind != iv.Kind:
			d.Reason = fmt.Sprintf("value kind changed (%s -> %s)", ov.Kind, iv.Kind)
		case oldCls == nil || newCls == nil:
			d.Carried, d.Reason = true, "carried by name and kind (unclassified state)"
		default:
			d.Carried, d.Reason = carryClassified(oldCls.Vars[n], newCls.Vars[n])
		}
		if d.Carried {
			out[n] = ov
		} else {
			out[n] = iv
		}
		decs = append(decs, d)
	}
	if newCls != nil {
		resetOrphanedOwnedMaps(newCls, out, init, decs)
		bumpAllocators(newCls, out, decs)
	}
	return out, decs
}

// resetOrphanedOwnedMaps resets any carried owned map whose allocator
// did not carry: the map's keys are points on the old allocator's
// lattice, which the reseeded or restrided allocator no longer decodes
// (and could re-allocate, colliding with the carried entries).
func resetOrphanedOwnedMaps(cls *Classification, out, init map[string]value.Value, decs []CarryDecision) {
	carried := make(map[string]bool, len(decs))
	for i := range decs {
		carried[decs[i].Var] = decs[i].Carried
	}
	for i := range decs {
		d := &decs[i]
		if !d.Carried {
			continue
		}
		vc := cls.Vars[d.Var]
		if vc == nil || vc.Class != ClassOwnedMap || carried[vc.Alloc] {
			continue
		}
		d.Carried = false
		d.Reason = fmt.Sprintf("owned-map reset: its allocator %s did not carry", vc.Alloc)
		out[d.Var] = init[d.Var]
	}
}

// bumpAllocators advances each carried allocator past the high-water
// mark of the owned maps it keys. A sharded generation's merged
// allocator position counts allocations (the sequential-equivalence
// semantics), but unbalanced shards can have handed out values beyond
// that count; re-seeding shards from the count would re-allocate keys
// that are still live in the carried owned maps. The bumped seed is the
// smallest lattice point strictly past every carried key, so the new
// generation can never collide with retired state.
func bumpAllocators(cls *Classification, out map[string]value.Value, decs []CarryDecision) {
	for _, vc := range cls.Vars {
		if vc.Class != ClassOwnedMap {
			continue
		}
		m, ok := out[vc.Name]
		if !ok || m.Kind != value.KindMap || m.Map.Len() == 0 {
			continue
		}
		av := cls.Vars[vc.Alloc]
		cur, ok := out[vc.Alloc]
		if av == nil || av.Step == 0 || !ok || cur.Kind != value.KindInt {
			continue
		}
		seed := cur.I
		for _, k := range m.Map.Keys() {
			comp := k
			if vc.KeyPos >= 0 {
				if k.Kind != value.KindTuple || vc.KeyPos >= len(k.Tuple) {
					continue
				}
				comp = k.Tuple[vc.KeyPos]
			}
			if comp.Kind != value.KindInt {
				continue
			}
			if past := comp.I + av.Step; (past-seed)/av.Step > 0 {
				seed = past
			}
		}
		if seed != cur.I {
			out[vc.Alloc] = value.Int(seed)
			for i := range decs {
				if decs[i].Var == vc.Alloc {
					decs[i].Reason += fmt.Sprintf("; bumped %d -> %d past %s's high-water mark", cur.I, seed, vc.Name)
				}
			}
		}
	}
}

// carryClassified decides carry-over for a variable present (with the
// same value kind) in both generations, from its two classifications.
func carryClassified(ovc, nvc *VarClass) (bool, string) {
	if ovc == nil || nvc == nil {
		return true, "carried by name and kind (unclassified state)"
	}
	if ovc.Class != nvc.Class {
		return false, fmt.Sprintf("state class changed (%s -> %s)", ovc.Class, nvc.Class)
	}
	switch nvc.Class {
	case ClassFlowMap:
		return true, "flow-map session state"
	case ClassOwnedMap:
		return true, fmt.Sprintf("owned-map session state (keys from %s)", nvc.Alloc)
	case ClassAllocator:
		if ovc.Init != nvc.Init || ovc.Step != nvc.Step {
			return false, fmt.Sprintf("allocator reseeded (init %d step %d -> init %d step %d)",
				ovc.Init, ovc.Step, nvc.Init, nvc.Step)
		}
		return true, "allocator position (same init/step)"
	case ClassRotor:
		if ovc.Init != nvc.Init || ovc.Mod != nvc.Mod {
			return false, fmt.Sprintf("rotor changed (init %d mod %d -> init %d mod %d)",
				ovc.Init, ovc.Mod, nvc.Init, nvc.Mod)
		}
		return true, "rotor position (same init/mod)"
	case ClassFrozen:
		return false, "frozen scalar, re-initialized"
	case ClassReplicaMap:
		return false, "replica-map, re-initialized"
	}
	return false, "unknown state class"
}
