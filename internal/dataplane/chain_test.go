package dataplane_test

import (
	"strings"
	"testing"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

// chainStages analyzes the named corpus NFs (cached) into compile-ready
// chain elements.
func chainStages(t testing.TB, names []string) []chain.NamedModel {
	t.Helper()
	stages := make([]chain.NamedModel, len(names))
	for i, name := range names {
		nm, err := analyze(t, name).Named()
		if err != nil {
			t.Fatalf("named %s: %v", name, err)
		}
		stages[i] = nm
	}
	return stages
}

// chainTrace builds chain stimulus: trusted-side client flows at the
// LB's service endpoint (they clear the firewall's egress policy and
// exercise the LB's NAT install path), stray traffic on other ports and
// interfaces (dropped at various depths, exercising the short-circuit),
// and random fuzz.
func chainTrace(seed int64, n int) []netpkt.Packet {
	g := workload.New(seed)
	tr := g.ClientServerTrace("3.3.3.3", 80, n)
	for i := range tr {
		if tr[i].DstPort == 80 {
			tr[i].InIface = "lan"
		}
	}
	tr = append(tr, g.SkewedTrace(n/2, workload.ZipfOpts{Flows: 32, Churn: 0.05, VIP: "3.3.3.3", Port: 80})...)
	for i := n; i < len(tr); i++ {
		tr[i].InIface = "lan"
	}
	tr = append(tr, g.RandomTrace(n)...)
	tr = append(tr, g.AdversarialTrace(n/4)...)
	return tr
}

// fwIdsLbOrders enumerates every order of the ISSUE's reference chain.
func fwIdsLbOrders() [][]string {
	nfset := []string{"firewall", "snortlite", "lb"}
	var out [][]string
	for i := range nfset {
		for j := range nfset {
			for k := range nfset {
				if i != j && j != k && i != k {
					out = append(out, []string{nfset[i], nfset[j], nfset[k]})
				}
			}
		}
	}
	return out
}

// TestChainDifferentialFuzz is the fused data plane's equivalence gate:
// for every corpus chain — all six {FW, IDS, LB} orders plus the 2- and
// 4-NF chains — a closed-loop workload runs through the fused engine
// and the sequential per-NF reference in lockstep and must agree on
// every verdict, per-stage fired entry, emitted packet, final per-stage
// state, and per-stage telemetry counter.
func TestChainDifferentialFuzz(t *testing.T) {
	type tc struct {
		name string
		nfs  []string
	}
	var cases []tc
	for _, spec := range core.ChainCorpus() {
		cases = append(cases, tc{spec.Name, spec.NFs})
	}
	for _, order := range fwIdsLbOrders() {
		cases = append(cases, tc{strings.Join(order, ">"), order})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stages := chainStages(t, c.nfs)
			stim := chainTrace(17, 300)
			res, err := dataplane.DiffTestChain(stages, stim)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trials < len(stim) {
				t.Fatalf("only %d trials for %d stimulus packets", res.Trials, len(stim))
			}
			if res.Mismatches != 0 {
				t.Fatalf("%d/%d mismatches; first: %s", res.Mismatches, res.Trials, res.FirstDiff)
			}
		})
	}
}

// TestChainShardedDiff runs every shardable corpus chain at 1, 2 and 4
// shards against the fused single-copy engine: verdicts, emitted
// packets, merged per-stage state and merged per-stage telemetry must
// agree at every shard count.
func TestChainShardedDiff(t *testing.T) {
	for _, spec := range core.ChainCorpus() {
		if !spec.Shardable {
			continue
		}
		t.Run(spec.Name, func(t *testing.T) {
			stages := chainStages(t, spec.NFs)
			for _, shards := range []int{1, 2, 4} {
				stim := chainTrace(23+int64(shards), 250)
				res, err := dataplane.DiffTestChainSharded(stages, stim, shards)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if res.Mismatches != 0 {
					t.Fatalf("%d shards: %d/%d mismatches; first: %s",
						shards, res.Mismatches, res.Trials, res.FirstDiff)
				}
			}
		})
	}
}

// TestChainShardRejects pins the fail-loudly contract: a chain whose
// stages do not co-hash is rejected with an error naming the offending
// stage and state variable, never silently mis-sharded.
func TestChainShardRejects(t *testing.T) {
	cases := []struct {
		nfs      []string
		wantSubs []string
	}{
		// lb's b2f_nat is owner-routed via the cur_port allocator — a
		// fused chain cannot route by flow hash to reach it.
		{[]string{"lb"}, []string{"lb", "b2f_nat"}},
		// snortlite keys {sip}; firewall keys the 4-tuple — no co-hash.
		{[]string{"firewall", "snortlite", "lb"}, []string{"snortlite", "syn_count"}},
	}
	for _, c := range cases {
		t.Run(strings.Join(c.nfs, ">"), func(t *testing.T) {
			stages := chainStages(t, c.nfs)
			_, err := dataplane.NewShardedChain(stages, 2)
			if err == nil {
				t.Fatalf("NewShardedChain(%v) succeeded, want co-hash rejection", c.nfs)
			}
			for _, sub := range c.wantSubs {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q does not name %q", err, sub)
				}
			}
		})
	}
}

// TestChainSingleNFBitwise pins ChainEngine([nf]) to the standalone
// Engine bit for bit on every corpus NF: a one-stage chain must be the
// identity wrapper — same verdicts, same packets, same entry
// attribution, same end state, same telemetry counters.
func TestChainSingleNFBitwise(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			nm, err := an.Named()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ch, err := dataplane.CompileChain([]chain.NamedModel{nm})
			if err != nil {
				t.Fatal(err)
			}
			trace := fuzzTrace(name, 1234)
			for i := range trace {
				p := trace[i]
				eOut, eErr := eng.Process(&p)
				cOut, cErr := ch.Process(&trace[i])
				if (eErr != nil) != (cErr != nil) {
					t.Fatalf("packet %d (%s): error mismatch: engine=%v chain=%v", i, trace[i], eErr, cErr)
				}
				if eErr != nil {
					continue
				}
				if eOut.Dropped != cOut.Dropped {
					t.Fatalf("packet %d: dropped %v vs %v", i, eOut.Dropped, cOut.Dropped)
				}
				if eOut.Entry != cOut.Entries[0] {
					t.Fatalf("packet %d: entry %d vs %d", i, eOut.Entry, cOut.Entries[0])
				}
				if len(eOut.Sent) != len(cOut.Sent) {
					t.Fatalf("packet %d: sent %d vs %d", i, len(eOut.Sent), len(cOut.Sent))
				}
				for s := range eOut.Sent {
					if eOut.Sent[s].Iface != cOut.Sent[s].Iface || !netpkt.Equal(eOut.Sent[s].Pkt, cOut.Sent[s].Pkt) {
						t.Fatalf("packet %d sent[%d]: %s/%s vs %s/%s", i, s,
							eOut.Sent[s].Pkt, eOut.Sent[s].Iface, cOut.Sent[s].Pkt, cOut.Sent[s].Iface)
					}
				}
			}
			if diff := stateDiff(eng.State(), ch.StageState(0)); diff != "" {
				t.Fatalf("end state differs: %s", diff)
			}
			if !eng.Telemetry().CountersEqual(ch.StageTelemetry(0)) {
				t.Fatalf("telemetry counters diverge:\nengine: %+v\nchain:  %+v", eng.Telemetry(), ch.StageTelemetry(0))
			}
		})
	}
}

// TestChainBatchMatchesProcess pins the stage-major batch path to the
// packet-major path: identical outputs and identical end state on an
// error-free trace.
func TestChainBatchMatchesProcess(t *testing.T) {
	for _, spec := range core.ChainCorpus() {
		t.Run(spec.Name, func(t *testing.T) {
			stages := chainStages(t, spec.NFs)
			one, err := dataplane.CompileChain(stages)
			if err != nil {
				t.Fatal(err)
			}
			trace := chainTrace(5, 200)
			// Keep only the error-free prefix: ProcessBatch documents a
			// different error placement, so the comparison needs clean
			// packets (the corpus produces none, but fuzz may).
			var want []dataplane.ChainOutput
			for i := range trace {
				p := trace[i]
				out, err := one.Process(&p)
				if err != nil {
					trace = trace[:i]
					break
				}
				var cp dataplane.ChainOutput
				cp.Sent = append(cp.Sent, out.Sent...)
				cp.Entries = append(cp.Entries, out.Entries...)
				cp.Dropped = out.Dropped
				want = append(want, cp)
			}
			batch, err := dataplane.CompileChain(stages)
			if err != nil {
				t.Fatal(err)
			}
			outs := make([]dataplane.ChainOutput, len(trace))
			if err := batch.ProcessBatch(trace, outs); err != nil {
				t.Fatal(err)
			}
			for i := range trace {
				if outs[i].Dropped != want[i].Dropped || len(outs[i].Sent) != len(want[i].Sent) {
					t.Fatalf("packet %d: batch %+v vs process %+v", i, outs[i], want[i])
				}
				for s := range want[i].Sent {
					if outs[i].Sent[s] != want[i].Sent[s] {
						t.Fatalf("packet %d sent[%d]: %+v vs %+v", i, s, outs[i].Sent[s], want[i].Sent[s])
					}
				}
				for si := range want[i].Entries {
					if outs[i].Entries[si] != want[i].Entries[si] {
						t.Fatalf("packet %d stage %d: entry %d vs %d", i, si, outs[i].Entries[si], want[i].Entries[si])
					}
				}
			}
			if diff := stateDiff(one.State(), batch.State()); diff != "" {
				t.Fatalf("end state differs: %s", diff)
			}
		})
	}
}

// TestChainZeroAllocSteadyState extends the engine's perf contract to
// the fused chain: once flow state is warmed, a packet traverses the
// whole {FW, IDS, LB} chain with zero heap allocations.
func TestChainZeroAllocSteadyState(t *testing.T) {
	stages := chainStages(t, []string{"firewall", "snortlite", "lb"})
	eng, err := dataplane.CompileChain(stages)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(11)
	trace := g.ClientServerTrace("3.3.3.3", 80, 64)
	for i := range trace {
		if trace[i].DstPort == 80 {
			trace[i].InIface = "lan"
		}
	}
	for i := range trace {
		if _, err := eng.Process(&trace[i]); err != nil {
			t.Fatalf("warmup packet %d: %v", i, err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := eng.Process(&trace[i%len(trace)]); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per packet in chain steady state, want 0", allocs)
	}
}

// TestChainConstFold pins the cross-stage constant-folding contract: a
// stage that pins a header field to one constant lets the compiler
// prune downstream entries that contradict it, without changing
// behavior.
func TestChainConstFold(t *testing.T) {
	const normSrc = `
OUT = "mid";
rewritten_stat = 0;
func process(pkt) {
    pkt.dport = 80;
    rewritten_stat = rewritten_stat + 1;
    send(pkt, OUT);
}
`
	const routeSrc = `
WEB_IFACE = "web";
OTHER_IFACE = "other";
web_stat = 0;
other_stat = 0;
func process(pkt) {
    if pkt.dport == 80 {
        web_stat = web_stat + 1;
        send(pkt, WEB_IFACE);
    } else {
        other_stat = other_stat + 1;
        send(pkt, OTHER_IFACE);
    }
}
`
	load := func(name, src string) chain.NamedModel {
		nf, err := nfs.FromSource(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			t.Fatalf("analyze %s: %v", name, err)
		}
		nm, err := an.Named()
		if err != nil {
			t.Fatal(err)
		}
		return nm
	}
	stages := []chain.NamedModel{load("norm", normSrc), load("route", routeSrc)}
	fused, err := dataplane.CompileChain(stages)
	if err != nil {
		t.Fatal(err)
	}
	if fused.FoldedEntries() == 0 {
		t.Fatalf("no entries folded: the dport!=80 route entry should be pruned by the upstream pkt.dport=80 rewrite")
	}
	// Folding must not change behavior.
	res, err := dataplane.DiffTestChain(stages, workload.New(3).RandomTrace(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches after folding; first: %s", res.Mismatches, res.FirstDiff)
	}
}
