package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nfactor/internal/chain"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// CompileChain fuses a service chain into one ChainEngine. Every stage
// must carry its concrete configuration and initial state
// (core.Analysis.Named fills them). The stages share one flat state
// arena — each stage's scalars and maps occupy a contiguous slot/map
// range — one tuple arena and one lookup-memo table, so the whole
// chain evaluates in a single context.
//
// Cross-stage constant folding: when every packet stage i can emit has
// some header field pinned to one compile-time constant (every send of
// every live entry writes that field to the same constant), that
// constant is substituted into stage i+1's entries before they are
// compiled — predicates decided by it disappear from the dispatch
// tree, and entries whose guards become unsatisfiable are pruned
// (FoldedEntries counts them). This is sound because in a linear chain
// stage i is the only producer of stage i+1's input.
func CompileChain(stages []chain.NamedModel) (*ChainEngine, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("dataplane: empty chain")
	}
	e := &ChainEngine{}
	lutIdx := map[string]int{}
	var constTups [][maxTuple]scalar
	maxSlotUpd, maxMops, maxFields := 0, 0, 0
	prodSends := 1 // worst-case fan-out across the chain (Sent capacity)
	var constWrites map[string]value.Value

	for si := range stages {
		nm := &stages[si]
		if nm.Model == nil {
			return nil, fmt.Errorf("dataplane: chain stage %d (%s): nil model", si, nm.Name)
		}
		if nm.Config == nil || nm.State == nil {
			return nil, fmt.Errorf("dataplane: chain stage %d (%s): missing config/state (use core.Analysis.Named)", si, nm.Name)
		}
		m := nm.Model
		for _, v := range m.CfgVars {
			if _, ok := nm.Config[v]; !ok {
				return nil, fmt.Errorf("dataplane: chain stage %d (%s): missing configuration value for %q", si, nm.Name, v)
			}
		}
		st := &chainStage{
			name: nm.Name, m: m,
			slotLo: len(e.slotNames), mapLo: len(e.mapNames), lutLo: len(lutIdx),
		}
		cp := &compiler{
			config:    nm.Config,
			slotIdx:   map[string]int{},
			mapIdx:    map[string]int{},
			lutIdx:    lutIdx,
			lutNS:     fmt.Sprintf("%d|", si),
			constTups: constTups,
		}
		// Stage state layout: stage-local names, global indices.
		for _, name := range m.OISVars {
			iv, ok := nm.State[name]
			if !ok {
				return nil, fmt.Errorf("dataplane: chain stage %d (%s): missing initial state for %q", si, nm.Name, name)
			}
			if iv.Kind == value.KindMap {
				cp.mapIdx[name] = len(e.mapNames)
				e.mapNames = append(e.mapNames, name)
				rm, err := rmapOf(iv)
				if err != nil {
					return nil, fmt.Errorf("dataplane: chain stage %d (%s): initial %q: %w", si, nm.Name, name, err)
				}
				e.initMaps = append(e.initMaps, rm)
				continue
			}
			v, err := mvalOf(iv)
			if err != nil {
				return nil, fmt.Errorf("dataplane: chain stage %d (%s): initial %q: %w", si, nm.Name, name, err)
			}
			cp.slotIdx[name] = len(e.slotNames)
			e.slotNames = append(e.slotNames, name)
			e.initSlots = append(e.initSlots, v)
		}

		maxSends := 0
		for i := range m.Entries {
			src := &m.Entries[i]
			folded := src
			if len(constWrites) > 0 {
				folded = foldEntry(src, constWrites)
			}
			ce, pruned, err := cp.compileEntry(folded, i)
			if err != nil {
				return nil, fmt.Errorf("dataplane: chain stage %d (%s): %w", si, nm.Name, err)
			}
			if pruned {
				if len(constWrites) > 0 {
					// Only count prunes the fold itself caused (not
					// config prunes the single-model compile would do).
					if _, p0, err0 := cp.compileEntry(src, i); err0 == nil && !p0 {
						st.folded++
					}
				}
				continue
			}
			st.entries = append(st.entries, ce)
			if len(ce.sends) > maxSends {
				maxSends = len(ce.sends)
			}
			if len(ce.supd) > maxSlotUpd {
				maxSlotUpd = len(ce.supd)
			}
			if ce.nMops > maxMops {
				maxMops = ce.nMops
			}
			for sdi := range ce.sends {
				if len(ce.sends[sdi].fields) > maxFields {
					maxFields = len(ce.sends[sdi].fields)
				}
			}
		}
		st.root = buildTree(st.entries)
		st.slotHi, st.mapHi, st.lutHi = len(e.slotNames), len(e.mapNames), len(lutIdx)
		st.tel = telemetry.NewSink(len(m.Entries))
		if maxSends > 0 {
			st.sendBuf = make([]SentPacket, 0, maxSends)
			prodSends *= maxSends
		} else {
			prodSends = 0
		}
		e.stages = append(e.stages, st)

		constTups = cp.constTups
		constWrites = stageConstWrites(st, cp, m)
	}

	e.out.Sent = make([]SentPacket, 0, prodSends)
	e.out.Entries = make([]int, len(e.stages))
	e.scratchSlots = make([]rv, maxSlotUpd)
	e.scratchKeys = make([]mkey, maxMops)
	e.scratchVals = make([]rv, maxMops)
	e.scratchFields = make([]rv, maxFields)
	e.ctx.tups = make([][maxTuple]scalar, len(constTups), len(constTups)+16)
	copy(e.ctx.tups, constTups)
	e.ctx.nconst = len(constTups)
	e.ctx.luts = make([]lut, len(lutIdx))
	e.Reset()
	return e, nil
}

// stageConstWrites computes the header fields every packet the stage
// can emit has pinned to one compile-time constant: the intersection,
// over every send of every live forwarding entry, of the fields written
// to the same constant. Returns nil when the stage forwards nothing
// (downstream stages are unreachable; folding would be vacuous).
func stageConstWrites(st *chainStage, cp *compiler, m *model.Model) map[string]value.Value {
	var cw map[string]value.Value
	for _, ce := range st.entries {
		if len(ce.sends) == 0 {
			continue // drop entry: emits nothing
		}
		src := &m.Entries[ce.idx]
		for i := range src.Sends {
			sw := sendConstWrites(cp, &src.Sends[i])
			if cw == nil {
				cw = sw
				continue
			}
			for f, v := range cw {
				ov, ok := sw[f]
				if !ok || !value.Equal(ov, v) {
					delete(cw, f)
				}
			}
		}
	}
	if len(cw) == 0 {
		return nil
	}
	return cw
}

// sendConstWrites returns the fields one send action writes to
// compile-time constants (under the stage's configuration).
func sendConstWrites(cp *compiler, a *model.Action) map[string]value.Value {
	out := map[string]value.Value{}
	for f, t := range a.Fields {
		ex, err := cp.compile(t)
		if err != nil || !ex.isConst() || ex.c.k == kTuple {
			continue
		}
		out[f] = mval{scalar: ex.c.scalar}.toValue()
	}
	return out
}

// foldEntry substitutes the upstream constant writes into one entry's
// guards and actions: every pkt.<f> with f pinned upstream becomes the
// constant. compileEntry then discharges decided predicates and prunes
// entries whose guards become constant-false.
func foldEntry(e *model.Entry, cw map[string]value.Value) *model.Entry {
	sub := func(t solver.Term) solver.Term { return substPktConsts(t, cw) }
	subList := func(ts []solver.Term) []solver.Term {
		out := make([]solver.Term, len(ts))
		for i, t := range ts {
			out[i] = sub(t)
		}
		return out
	}
	ne := &model.Entry{
		Config:     subList(e.Config),
		FlowMatch:  subList(e.FlowMatch),
		StateMatch: subList(e.StateMatch),
		Priority:   e.Priority,
		PathID:     e.PathID,
	}
	for i := range e.Sends {
		a := e.Sends[i]
		nf := make(map[string]solver.Term, len(a.Fields))
		for f, t := range a.Fields {
			nf[f] = sub(t)
		}
		ne.Sends = append(ne.Sends, model.Action{Fields: nf, Iface: sub(a.Iface)})
	}
	for i := range e.Updates {
		ne.Updates = append(ne.Updates, model.Assign{Name: e.Updates[i].Name, Val: sub(e.Updates[i].Val)})
	}
	return ne
}

// substPktConsts replaces pkt.<f> variables whose field is pinned to an
// upstream constant by that constant (the full-AST walk of
// verify.substituteFields, specialized to constants).
func substPktConsts(t solver.Term, cw map[string]value.Value) solver.Term {
	switch x := t.(type) {
	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			if v, ok := cw[f]; ok {
				return solver.Const{V: v}
			}
		}
		return t
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: substPktConsts(x.X, cw), Y: substPktConsts(x.Y, cw)}
	case solver.Un:
		return solver.Un{Op: x.Op, X: substPktConsts(x.X, cw)}
	case solver.Call:
		args := make([]solver.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = substPktConsts(a, cw)
		}
		return solver.Call{Fn: x.Fn, Args: args}
	case solver.Tuple:
		elems := make([]solver.Term, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = substPktConsts(el, cw)
		}
		return solver.Tuple{Elems: elems}
	case solver.Index:
		return solver.Index{X: substPktConsts(x.X, cw), I: substPktConsts(x.I, cw)}
	case solver.Select:
		return solver.Select{M: substPktConsts(x.M, cw), K: substPktConsts(x.K, cw)}
	case solver.Store:
		return solver.Store{M: substPktConsts(x.M, cw), K: substPktConsts(x.K, cw), V: substPktConsts(x.V, cw)}
	case solver.Del:
		return solver.Del{M: substPktConsts(x.M, cw), K: substPktConsts(x.K, cw)}
	case solver.In:
		return solver.In{K: substPktConsts(x.K, cw), M: substPktConsts(x.M, cw)}
	default:
		return t
	}
}

// --- sharded chain ----------------------------------------------------

// ShardedChain runs n specialized copies of a fused chain, one per
// shard, routed by a single chain-wide flow hash. A chain shards iff
// every stage's state demands are flow demands over the same field-name
// multiset (so all stages co-hash under the value-sorted flow hash) and
// no stage rewrites a field a downstream stage's hash depends on;
// otherwise NewShardedChain fails loudly naming the stage and variable,
// like NewSharded does for a single NF.
type ShardedChain struct {
	stages  []chain.NamedModel
	clss    []*Classification
	engines []*ChainEngine

	fields  []string
	getters []func(*netpkt.Packet) scalar

	shardOf []int32
	idxs    [][]int

	out  ChainOutput
	perf *perf.Set
}

// NewShardedChain builds an n-shard fused chain.
func NewShardedChain(stages []chain.NamedModel, n int) (*ShardedChain, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataplane: shard count %d", n)
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("dataplane: empty chain")
	}
	s := &ShardedChain{stages: stages, idxs: make([][]int, n)}

	// Classify every stage and check chain-wide co-hashing.
	for si := range stages {
		nm := &stages[si]
		cls, err := Classify(nm.Model, nm.Config, nm.State)
		if err != nil {
			return nil, fmt.Errorf("dataplane: chain stage %d (%s): %w", si, nm.Name, err)
		}
		if cls.Ambiguous > 0 {
			return nil, fmt.Errorf("dataplane: chain stage %d (%s): %d entries need the serial hand-off path; a fused chain cannot hand off mid-traversal", si, nm.Name, cls.Ambiguous)
		}
		for _, pl := range cls.plans {
			d := pl.d
			switch d.kind {
			case demandNone:
				continue
			case demandOwner:
				return nil, fmt.Errorf("dataplane: chain stage %d (%s): %w", si, nm.Name,
					blockVar(d.src, "map %q is owner-routed via allocator %q; chain routing needs flow keys", d.src, d.alloc))
			case demandFlow:
				if s.fields == nil {
					s.fields = d.fields
				} else if !sameFields(s.fields, d.fields) {
					return nil, fmt.Errorf("dataplane: chain stage %d (%s): %w", si, nm.Name,
						blockVar(d.src, "map %q is keyed by %v which does not co-hash with the chain's flow key %v", d.src, d.fields, s.fields))
				}
			}
		}
		s.clss = append(s.clss, cls)
	}
	// A stage must not rewrite a field any downstream stage hashes on:
	// the router hashes the ingress packet, downstream stages key on
	// the rewritten one.
	if len(s.fields) > 0 {
		keyed := map[string]bool{}
		for _, f := range s.fields {
			keyed[f] = true
		}
		for si := 0; si < len(stages)-1; si++ {
			downstreamKeyed := false
			for sj := si + 1; sj < len(stages); sj++ {
				for _, pl := range s.clss[sj].plans {
					if pl.d.kind == demandFlow {
						downstreamKeyed = true
					}
				}
			}
			if !downstreamKeyed {
				break
			}
			for _, f := range ModifiedFieldsOf(stages[si].Model) {
				if keyed[f] {
					return nil, fmt.Errorf("dataplane: chain stage %d (%s): rewrites %q which downstream stages hash on; the chain cannot shard", si, stages[si].Name, f)
				}
			}
		}
	}
	for _, f := range s.fields {
		g, ok := rawGetter(f)
		if !ok {
			return nil, fmt.Errorf("dataplane: unknown chain flow field %q", f)
		}
		s.getters = append(s.getters, g)
	}
	if len(s.fields) > 8 {
		return nil, fmt.Errorf("dataplane: %d chain flow fields exceed the shard hash width", len(s.fields))
	}

	// Per shard: specialize each stage (sub-allocators, rotors) and
	// fuse the specialized chain.
	for sh := 0; sh < n; sh++ {
		spec := make([]chain.NamedModel, len(stages))
		for si := range stages {
			nm := stages[si]
			ms, mst := specialize(nm.Model, s.clss[si], sh, n, nm.State)
			spec[si] = chain.NamedModel{Name: nm.Name, Model: ms, Config: nm.Config, State: mst}
		}
		eng, err := CompileChain(spec)
		if err != nil {
			return nil, fmt.Errorf("dataplane: shard %d: %w", sh, err)
		}
		s.engines = append(s.engines, eng)
	}
	return s, nil
}

// sameFields reports whether two sorted field-name lists are identical
// (the co-hash condition: the value-sorted flow hash makes any
// permutation of the same name set agree, but different sets diverge).
func sameFields(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ModifiedFieldsOf mirrors chain.ModifiedFields without importing the
// chain analysis into the hot compile path: the packet fields the
// model's sends rewrite (non-identity).
func ModifiedFieldsOf(m *model.Model) []string {
	set := map[string]bool{}
	for i := range m.Entries {
		for _, a := range m.Entries[i].Sends {
			for f, t := range a.Fields {
				if v, ok := t.(solver.Var); ok && v.Name == "pkt."+f {
					continue
				}
				set[f] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// route hashes the chain flow key (value-sorted, like the single-NF
// router, so forward and reverse flows co-shard).
func (s *ShardedChain) route(p *netpkt.Packet) int {
	if len(s.getters) == 0 {
		return 0
	}
	var vals [8]scalar
	n := len(s.getters)
	for i, g := range s.getters {
		vals[i] = g(p)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && scalarLess(vals[j], vals[j-1]); j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	h := fnv64(fnvOffset64)
	for i := 0; i < n; i++ {
		_ = h.wscalar(vals[i])
	}
	return int(uint64(h) % uint64(len(s.engines)))
}

// NumShards returns the shard count.
func (s *ShardedChain) NumShards() int { return len(s.engines) }

// NumStages returns the chain length.
func (s *ShardedChain) NumStages() int { return len(s.stages) }

// SetEpoch tags every shard's fused chain with a generation number (see
// Engine.SetEpoch). Call only between batches.
func (s *ShardedChain) SetEpoch(v uint64) {
	for _, e := range s.engines {
		e.SetEpoch(v)
	}
}

// ProcessExplain routes one packet to its owning shard and explains it
// there (see ChainEngine.ProcessExplain).
func (s *ShardedChain) ProcessExplain(p *netpkt.Packet) (*ChainOutput, *telemetry.PacketTrace, error) {
	return s.engines[s.route(p)].ProcessExplain(p)
}

// FlowFields returns the chain-wide flow key field names (sorted).
func (s *ShardedChain) FlowFields() []string { return s.fields }

// Process routes one packet to its owning shard.
func (s *ShardedChain) Process(p *netpkt.Packet) (*ChainOutput, error) {
	return s.engines[s.route(p)].Process(p)
}

// ProcessBatch partitions pkts by the flow hash and runs the shards
// concurrently (each shard stage-major over its sub-batch), preserving
// per-shard packet order; outs[i] receives pkts[i]'s output. On an
// evaluation error the error with the smallest packet index is
// returned.
func (s *ShardedChain) ProcessBatch(pkts []netpkt.Packet, outs []ChainOutput) error {
	if len(outs) < len(pkts) {
		return fmt.Errorf("dataplane: %d outputs for %d packets", len(outs), len(pkts))
	}
	if len(s.engines) == 1 {
		return s.engines[0].ProcessBatch(pkts, outs)
	}
	if cap(s.shardOf) < len(pkts) {
		s.shardOf = make([]int32, len(pkts))
	}
	s.shardOf = s.shardOf[:len(pkts)]
	for i := range s.idxs {
		s.idxs[i] = s.idxs[i][:0]
	}
	for i := range pkts {
		sh := s.route(&pkts[i])
		s.shardOf[i] = int32(sh)
		s.idxs[sh] = append(s.idxs[sh], i)
	}
	var wg sync.WaitGroup
	errIdx := make([]int, len(s.engines))
	errs := make([]error, len(s.engines))
	for sh := range s.engines {
		if len(s.idxs[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			eng := s.engines[sh]
			for _, i := range s.idxs[sh] {
				out, err := eng.Process(&pkts[i])
				if err != nil {
					errIdx[sh], errs[sh] = i, err
					return
				}
				copyChainOutput(&outs[i], out)
			}
		}(sh)
	}
	wg.Wait()
	first, firstIdx := error(nil), -1
	for sh, err := range errs {
		if err != nil && (firstIdx == -1 || errIdx[sh] < firstIdx) {
			first, firstIdx = err, errIdx[sh]
		}
	}
	if first != nil {
		return fmt.Errorf("dataplane: packet %d: %w", firstIdx, first)
	}
	if s.perf != nil {
		s.perf.Counter(perf.CDataplaneBatches).Inc()
	}
	return nil
}

// copyChainOutput copies an engine-owned output into a caller-owned
// one, reusing backing arrays.
func copyChainOutput(dst *ChainOutput, src *ChainOutput) {
	dst.Sent = append(dst.Sent[:0], src.Sent...)
	dst.Entries = append(dst.Entries[:0], src.Entries...)
	dst.Dropped = src.Dropped
	dst.Epoch = src.Epoch
}

// SetPerf attaches a perf set to every shard.
func (s *ShardedChain) SetPerf(p *perf.Set) {
	s.perf = p
	for _, e := range s.engines {
		e.SetPerf(p)
	}
	p.Counter(perf.CDataplaneShards).Add(int64(len(s.engines)))
}

// StageState merges stage i's state across the shards, inverting each
// classification lowering (shared logic with Sharded.State).
func (s *ShardedChain) StageState(i int) map[string]value.Value {
	states := make([]map[string]value.Value, len(s.engines))
	for sh := range s.engines {
		states[sh] = s.engines[sh].StageState(i)
	}
	return mergeShardStates(s.clss[i], states)
}

// StageTelemetry merges stage i's telemetry across the shards: counters
// sum (entry hits stay attributed to stage i's own model entries),
// partitioned map sizes sum, per-shard scalar/replica gauges report
// shard 0's value.
func (s *ShardedChain) StageTelemetry(i int) telemetry.Snapshot {
	first := s.engines[0].StageTelemetry(i)
	snap := first
	for _, e := range s.engines[1:] {
		snap = snap.Merge(e.StageTelemetry(i))
	}
	for name, vc := range s.clss[i].Vars {
		switch vc.Class {
		case ClassAllocator, ClassRotor, ClassFrozen, ClassReplicaMap:
			snap.StateSizes[name] = first.StateSizes[name]
		}
	}
	snap.Backend = "sharded-chain"
	return snap
}

// Telemetry snapshots every stage, in chain order.
func (s *ShardedChain) Telemetry() []telemetry.Snapshot {
	out := make([]telemetry.Snapshot, len(s.stages))
	for i := range s.stages {
		out[i] = s.StageTelemetry(i)
	}
	return out
}

// ChainTelemetry merges the whole-chain snapshots across shards (see
// ChainEngine.ChainTelemetry).
func (s *ShardedChain) ChainTelemetry() telemetry.Snapshot {
	snap := s.engines[0].ChainTelemetry()
	for _, e := range s.engines[1:] {
		snap = snap.Merge(e.ChainTelemetry())
	}
	snap.Backend = "sharded-chain"
	return snap
}

// Stats sums the shard counters.
func (s *ShardedChain) Stats() Stats {
	var t Stats
	for _, e := range s.engines {
		st := e.Stats()
		t.Packets += st.Packets
		t.Drops += st.Drops
		t.Errors += st.Errors
	}
	return t
}

// Reset restores every shard to the initial state.
func (s *ShardedChain) Reset() {
	for _, e := range s.engines {
		e.Reset()
	}
}
