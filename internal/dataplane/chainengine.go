package dataplane

import (
	"fmt"

	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// EntryNotReached marks a chain stage no packet reached during one
// traversal (upstream drop) in ChainOutput.Entries.
const EntryNotReached = -2

// ChainOutput is the result of running one packet through a fused
// service chain. Process returns an engine-owned ChainOutput that is
// overwritten by the next call; ProcessBatch fills caller-owned ones,
// reusing their backing arrays across batches.
type ChainOutput struct {
	// Sent holds the packets that exited the final stage, each with the
	// interface the last stage emitted it on, in traversal order.
	Sent []SentPacket
	// Dropped is true when no packet survived the whole chain.
	Dropped bool
	// Entries[i] is the entry that fired at stage i for the first packet
	// reaching that stage (-1: the stage's implicit drop;
	// EntryNotReached: no packet got that far). For a single-stage chain
	// Entries[0] equals Engine Output.Entry.
	Entries []int
	// Epoch is the engine generation that processed this packet (see
	// SetEpoch), the serving loop's per-packet consistency stamp.
	Epoch uint64
}

// chainStage is one fused NF: its compiled entries and dispatch tree,
// indexing the ChainEngine's shared state arena, plus its own telemetry
// sink so entry hits stay attributed to the originating NF's model.
type chainStage struct {
	name    string
	m       *model.Model
	entries []*centry
	root    *dnode

	// Ranges into the engine-wide arrays.
	slotLo, slotHi int // e.slots / slotNames
	mapLo, mapHi   int // e.maps / mapNames
	lutLo, lutHi   int // e.ctx.luts

	folded int // entries pruned by cross-stage constant folding

	tel *telemetry.Sink

	// Per-stage action buffers. sendBuf materializes multi-send
	// fan-out; single-send entries rewrite the in-flight packet in
	// place instead (the zero-copy path) and record the interface here.
	sendBuf []SentPacket
	iface   string
}

// ChainEngine is a whole service chain compiled into one data plane: the
// per-NF dispatch trees execute back to back over a single flat state
// arena and a single evaluation context, so a packet traverses the
// entire chain in one call with no per-hop Output materialization and —
// on the common single-send path — no per-hop packet copy. A stage
// whose entry drops terminates the traversal immediately; constant
// header rewrites of stage i are folded into stage i+1's entries at
// compile time (see CompileChain). Like Engine, a ChainEngine is
// single-threaded; ShardedChain gives each shard its own.
type ChainEngine struct {
	stages []*chainStage

	slotNames []string // per-stage ranges; names are stage-local
	mapNames  []string
	slots     []mval
	maps      []rmap

	initSlots []mval
	initMaps  []rmap

	ctx ctx
	out ChainOutput

	pktBuf netpkt.Packet // ingress copy; the chain rewrites it in place

	scratchSlots  []rv
	scratchKeys   []mkey
	scratchVals   []rv
	scratchFields []rv // single-send in-place rewrite staging

	// BFS rings for chain-level batch processing.
	ringA, ringB []flight

	stats Stats
	perf  *perf.Set
	epoch uint64
}

// flight is one in-flight packet during stage-major batch processing.
type flight struct {
	pkt   netpkt.Packet
	iface string
	src   int32 // index of the originating ingress packet
}

// NumStages returns the chain length.
func (e *ChainEngine) NumStages() int { return len(e.stages) }

// StageNames returns the NF names in chain order.
func (e *ChainEngine) StageNames() []string {
	names := make([]string, len(e.stages))
	for i, st := range e.stages {
		names[i] = st.name
	}
	return names
}

// NumEntries returns the total live compiled entries across all stages.
func (e *ChainEngine) NumEntries() int {
	n := 0
	for _, st := range e.stages {
		n += len(st.entries)
	}
	return n
}

// FoldedEntries returns how many entries cross-stage constant folding
// removed (entries whose guards are unsatisfiable for any packet an
// upstream stage can emit).
func (e *ChainEngine) FoldedEntries() int {
	n := 0
	for _, st := range e.stages {
		n += st.folded
	}
	return n
}

// Stats returns the chain-level traffic counters (ingress packets).
func (e *ChainEngine) Stats() Stats { return e.stats }

// SetPerf attaches a perf set (batch-level counter aggregation).
func (e *ChainEngine) SetPerf(p *perf.Set) { e.perf = p }

// SetEpoch tags the fused chain with a generation number; every
// ChainOutput it produces from now on carries it (see Engine.SetEpoch).
// Call only between batches.
func (e *ChainEngine) SetEpoch(v uint64) { e.epoch = v }

// StageSink returns stage i's telemetry sink.
func (e *ChainEngine) StageSink(i int) *telemetry.Sink { return e.stages[i].tel }

// StageTelemetry snapshots stage i's counters; entry hits are indexed
// by that stage's original model entries, exactly like a standalone
// Engine's — fusion does not lose attribution.
func (e *ChainEngine) StageTelemetry(i int) telemetry.Snapshot {
	st := e.stages[i]
	sizes := make(map[string]int, (st.slotHi-st.slotLo)+(st.mapHi-st.mapLo))
	for s := st.slotLo; s < st.slotHi; s++ {
		sizes[e.slotNames[s]] = 1
	}
	for m := st.mapLo; m < st.mapHi; m++ {
		sizes[e.mapNames[m]] = len(e.maps[m])
	}
	return st.tel.Snapshot("chain", sizes)
}

// Telemetry snapshots every stage, in chain order.
func (e *ChainEngine) Telemetry() []telemetry.Snapshot {
	out := make([]telemetry.Snapshot, len(e.stages))
	for i := range e.stages {
		out[i] = e.StageTelemetry(i)
	}
	return out
}

// StageState exports stage i's current state under its model's own
// variable names, shaped like Engine.State() for differential
// comparison against a standalone engine of the same NF.
func (e *ChainEngine) StageState(i int) map[string]value.Value {
	st := e.stages[i]
	out := make(map[string]value.Value, (st.slotHi-st.slotLo)+(st.mapHi-st.mapLo))
	for s := st.slotLo; s < st.slotHi; s++ {
		out[e.slotNames[s]] = e.slots[s].toValue()
	}
	for m := st.mapLo; m < st.mapHi; m++ {
		out[e.mapNames[m]] = e.maps[m].toValue()
	}
	return out
}

// State exports the whole arena, namespacing each stage's variables as
// "name#i:var" (the internal/verify hop namespace convention).
func (e *ChainEngine) State() map[string]value.Value {
	out := make(map[string]value.Value, len(e.slotNames)+len(e.mapNames))
	for i, st := range e.stages {
		for name, v := range e.StageState(i) {
			out[fmt.Sprintf("%s#%d:%s", st.name, i, name)] = v
		}
	}
	return out
}

// Reset restores every stage's initial state and zeroes all counters.
func (e *ChainEngine) Reset() {
	e.slots = append(e.slots[:0], e.initSlots...)
	e.maps = e.maps[:0]
	for _, m := range e.initMaps {
		e.maps = append(e.maps, m.clone())
	}
	e.ctx.slots = e.slots
	e.ctx.maps = e.maps
	e.stats = Stats{}
	for _, st := range e.stages {
		st.tel.Reset()
	}
}

// Flush adds the traffic counters to the attached perf set and zeroes
// them.
func (e *ChainEngine) Flush() {
	if e.perf != nil {
		e.perf.Counter(perf.CDataplanePkts).Add(e.stats.Packets)
		e.perf.Counter(perf.CDataplaneDrops).Add(e.stats.Drops)
	}
	e.stats = Stats{}
}

// Process runs one packet through the whole chain (depth-first: each
// emitted copy traverses the remaining stages before its sibling
// enters, like a cut-through wire). The input packet is not modified;
// the returned ChainOutput is engine-owned and reused by the next call.
func (e *ChainEngine) Process(p *netpkt.Packet) (*ChainOutput, error) {
	if err := e.process(p, &e.out); err != nil {
		return nil, err
	}
	return &e.out, nil
}

// ProcessBatch runs pkts through the chain stage-major: stage 0 over
// the whole batch, then stage 1 over the survivors, and so on — each
// stage's dispatch tree and state stay hot for the full batch. Per-
// packet outputs, final states and telemetry are identical to a
// Process loop (sibling order is preserved end to end). The one
// difference is error placement: on an evaluation error, all packets
// have committed every stage before the failing one, rather than the
// prefix of packets having committed every stage. len(outs) must be at
// least len(pkts).
func (e *ChainEngine) ProcessBatch(pkts []netpkt.Packet, outs []ChainOutput) error {
	if len(outs) < len(pkts) {
		return fmt.Errorf("dataplane: %d outputs for %d packets", len(outs), len(pkts))
	}
	cur, next := e.ringA[:0], e.ringB[:0]
	for i := range pkts {
		e.stats.Packets++
		out := &outs[i]
		out.Sent = out.Sent[:0]
		out.Entries = resetEntries(out.Entries, len(e.stages))
		out.Epoch = e.epoch
		cur = append(cur, flight{pkt: pkts[i], src: int32(i)})
	}
	for si := range e.stages {
		st := e.stages[si]
		next = next[:0]
		for fi := range cur {
			fl := &cur[fi]
			ce, n, err := e.stageRun(st, &fl.pkt)
			if err != nil {
				e.stats.Errors++
				e.ringA, e.ringB = cur[:0], next[:0]
				return fmt.Errorf("dataplane: packet %d: chain stage %d (%s): %w", fl.src, si, st.name, err)
			}
			out := &outs[fl.src]
			if out.Entries[si] == EntryNotReached {
				out.Entries[si] = firedIdx(ce)
			}
			switch {
			case n == 0:
			case n == 1:
				fl.iface = st.iface
				next = append(next, *fl)
			default:
				for k := 0; k < n; k++ {
					next = append(next, flight{pkt: st.sendBuf[k].Pkt, iface: st.sendBuf[k].Iface, src: fl.src})
				}
			}
		}
		cur, next = next, cur
	}
	for fi := range cur {
		fl := &cur[fi]
		outs[fl.src].Sent = append(outs[fl.src].Sent, SentPacket{Pkt: fl.pkt, Iface: fl.iface})
	}
	for i := range pkts {
		outs[i].Dropped = len(outs[i].Sent) == 0
		if outs[i].Dropped {
			e.stats.Drops++
		}
	}
	e.ringA, e.ringB = cur[:0], next[:0]
	if e.perf != nil {
		e.perf.Counter(perf.CDataplaneBatches).Inc()
	}
	return nil
}

func (e *ChainEngine) process(p *netpkt.Packet, out *ChainOutput) error {
	e.stats.Packets++
	out.Sent = out.Sent[:0]
	out.Entries = resetEntries(out.Entries, len(e.stages))
	out.Epoch = e.epoch
	e.pktBuf = *p // the chain rewrites in place; never touch the caller's packet
	if err := e.run(0, &e.pktBuf, "", out); err != nil {
		e.stats.Errors++
		return err
	}
	out.Dropped = len(out.Sent) == 0
	if out.Dropped {
		e.stats.Drops++
	}
	return nil
}

// run advances one packet from stage si to the end of the chain,
// rewriting it in place on the single-send path. iface carries the
// interface the previous stage emitted it on; the value reported for a
// surviving packet is the final stage's.
func (e *ChainEngine) run(si int, p *netpkt.Packet, iface string, out *ChainOutput) error {
	for si < len(e.stages) {
		st := e.stages[si]
		ce, n, err := e.stageRun(st, p)
		if err != nil {
			return fmt.Errorf("dataplane: chain stage %d (%s): %w", si, st.name, err)
		}
		if out.Entries[si] == EntryNotReached {
			out.Entries[si] = firedIdx(ce)
		}
		if n == 0 {
			return nil // stage drop: the whole branch terminates here
		}
		if n > 1 {
			// Fan-out: each copy traverses the rest of the chain in
			// order. The stage's sendBuf is safe to walk across the
			// recursion — deeper calls only touch later stages, and a
			// re-entry of this stage happens only after this walk
			// finished.
			for k := 0; k < n; k++ {
				sp := &st.sendBuf[k]
				if err := e.run(si+1, &sp.Pkt, sp.Iface, out); err != nil {
					return err
				}
			}
			return nil
		}
		iface = st.iface
		si++
	}
	out.Sent = append(out.Sent, SentPacket{Pkt: *p, Iface: iface})
	return nil
}

// stageRun evaluates one stage on p: dispatch-tree lookup, residual
// guard scan, and the matched entry's actions. Single-send entries
// rewrite p in place and set st.iface (n=1); multi-send entries
// materialize copies in st.sendBuf; drops return n=0. ce is the fired
// entry (nil for the implicit drop).
func (e *ChainEngine) stageRun(st *chainStage, p *netpkt.Packet) (ce *centry, n int, err error) {
	t0 := st.tel.Start()
	c := &e.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := st.lutLo; i < st.lutHi; i++ {
		c.luts[i].valid = false
	}
	leaf := st.root.lookup(c)
	for i := range leaf.entries {
		le := &leaf.entries[i]
		matched := true
		for j := range le.preds {
			v := le.preds[j].ex.eval(c)
			if c.err != nil {
				st.tel.Count(t0, le.e.idx, false, true)
				return nil, 0, fmt.Errorf("entry %d guard: %w", le.e.idx, c.err)
			}
			if v.k != kBool {
				st.tel.Count(t0, le.e.idx, false, true)
				return nil, 0, fmt.Errorf("entry %d guard: condition is %s, want bool", le.e.idx, v.k)
			}
			if v.i == 0 {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		n, err = e.fireStage(st, le.e, p)
		if err != nil {
			st.tel.Count(t0, le.e.idx, false, true)
			return le.e, 0, err
		}
		st.tel.Count(t0, le.e.idx, n == 0, false)
		return le.e, n, nil
	}
	st.tel.Count(t0, -1, true, false)
	return nil, 0, nil
}

// fireStage executes one entry's actions with the engine's
// evaluate-all-then-commit discipline. The single-send fast path
// evaluates every send field, the interface and every update against
// the pre-state and pre-rewrite packet, commits the state, then
// rewrites p in place — no packet copy. Zero- and multi-send entries
// take the materializing path (st.sendBuf).
func (e *ChainEngine) fireStage(st *chainStage, ce *centry, p *netpkt.Packet) (int, error) {
	c := &e.ctx
	if len(ce.sends) == 1 {
		s := &ce.sends[0]
		for fi := range s.fields {
			e.scratchFields[fi] = s.fields[fi].ex.eval(c)
			if c.err != nil {
				return 0, fmt.Errorf("entry %d send: %w", ce.idx, c.err)
			}
		}
		iv := s.iface.eval(c)
		if c.err != nil {
			return 0, fmt.Errorf("entry %d iface: %w", ce.idx, c.err)
		}
		if err := e.evalUpdates(ce); err != nil {
			return 0, err
		}
		e.commitUpdates(ce)
		for fi := range s.fields {
			s.fields[fi].set(p, e.scratchFields[fi])
		}
		if iv.k == kStr {
			st.iface = iv.s
		} else {
			st.iface = ""
		}
		return 1, nil
	}

	st.sendBuf = st.sendBuf[:0]
	for si := range ce.sends {
		s := &ce.sends[si]
		st.sendBuf = append(st.sendBuf, SentPacket{Pkt: *p})
		sp := &st.sendBuf[len(st.sendBuf)-1]
		for fi := range s.fields {
			f := &s.fields[fi]
			v := f.ex.eval(c)
			if c.err != nil {
				return 0, fmt.Errorf("entry %d send: %w", ce.idx, c.err)
			}
			f.set(&sp.Pkt, v)
		}
		iv := s.iface.eval(c)
		if c.err != nil {
			return 0, fmt.Errorf("entry %d iface: %w", ce.idx, c.err)
		}
		if iv.k == kStr {
			sp.Iface = iv.s
		} else {
			sp.Iface = ""
		}
	}
	if err := e.evalUpdates(ce); err != nil {
		return 0, err
	}
	e.commitUpdates(ce)
	return len(ce.sends), nil
}

// evalUpdates stages an entry's slot and map updates in the scratch
// buffers, evaluating against the pre-state.
func (e *ChainEngine) evalUpdates(ce *centry) error {
	c := &e.ctx
	for i := range ce.supd {
		e.scratchSlots[i] = ce.supd[i].ex.eval(c)
		if c.err != nil {
			return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
		}
	}
	si := 0
	for mi := range ce.mupd {
		mu := &ce.mupd[mi]
		for oi := range mu.ops {
			op := &mu.ops[oi]
			kv := op.key.eval(c)
			if c.err != nil {
				return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
			}
			k, err := keyOf(kv, c)
			if err != nil {
				return fmt.Errorf("entry %d update: %w", ce.idx, err)
			}
			e.scratchKeys[si] = k
			if !op.del {
				e.scratchVals[si] = op.val.eval(c)
				if c.err != nil {
					return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
				}
			}
			si++
		}
	}
	return nil
}

// commitUpdates applies the staged updates to the shared arena.
func (e *ChainEngine) commitUpdates(ce *centry) {
	c := &e.ctx
	for i := range ce.supd {
		e.slots[ce.supd[i].slot] = c.own(e.scratchSlots[i])
	}
	si := 0
	for mi := range ce.mupd {
		mu := &ce.mupd[mi]
		m := e.maps[mu.mi]
		for oi := range mu.ops {
			if mu.ops[oi].del {
				delete(m, e.scratchKeys[si])
			} else {
				m[e.scratchKeys[si]] = c.own(e.scratchVals[si])
			}
			si++
		}
	}
}

// firedIdx maps a stageRun result to the ChainOutput.Entries encoding.
func firedIdx(ce *centry) int {
	if ce == nil {
		return -1
	}
	return ce.idx
}

// resetEntries sizes an Entries slice for n stages and marks all stages
// unreached, reusing the backing array.
func resetEntries(ents []int, n int) []int {
	if cap(ents) < n {
		ents = make([]int, n)
	}
	ents = ents[:n]
	for i := range ents {
		ents[i] = EntryNotReached
	}
	return ents
}
