package dataplane

import (
	"fmt"
	"sort"

	"nfactor/internal/chain"
	"nfactor/internal/netpkt"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// SeqChain is the per-NF reference data plane a fused chain is checked
// against: one standalone compiled Engine per stage, packets handed off
// between them by materialized copies, exactly as a deployment of
// separate engines would run. Its traversal order is the same DFS the
// fused engine uses, so outputs, per-stage state trajectories and
// per-stage telemetry must agree packet for packet.
type SeqChain struct {
	engines []*Engine
	names   []string
	hand    [][]SentPacket // per-stage hand-off buffers (fan-out safe: DFS never re-enters a stage)
	out     ChainOutput
}

// NewSeqChain compiles each stage standalone.
func NewSeqChain(stages []chain.NamedModel) (*SeqChain, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("dataplane: empty chain")
	}
	s := &SeqChain{hand: make([][]SentPacket, len(stages))}
	for si := range stages {
		nm := &stages[si]
		eng, err := Compile(nm.Model, nm.Config, nm.State)
		if err != nil {
			return nil, fmt.Errorf("dataplane: chain stage %d (%s): %w", si, nm.Name, err)
		}
		s.engines = append(s.engines, eng)
		s.names = append(s.names, nm.Name)
	}
	s.out.Entries = make([]int, len(stages))
	return s, nil
}

// Process runs one packet through every stage, materializing each
// stage's output and copying survivors into the next stage.
func (s *SeqChain) Process(p *netpkt.Packet) (*ChainOutput, error) {
	out := &s.out
	out.Sent = out.Sent[:0]
	out.Entries = resetEntries(out.Entries, len(s.engines))
	if err := s.run(0, *p, "", out); err != nil {
		return nil, err
	}
	out.Dropped = len(out.Sent) == 0
	return out, nil
}

func (s *SeqChain) run(si int, p netpkt.Packet, iface string, out *ChainOutput) error {
	if si == len(s.engines) {
		out.Sent = append(out.Sent, SentPacket{Pkt: p, Iface: iface})
		return nil
	}
	o, err := s.engines[si].Process(&p)
	if err != nil {
		return fmt.Errorf("dataplane: chain stage %d (%s): %w", si, s.names[si], err)
	}
	if out.Entries[si] == EntryNotReached {
		out.Entries[si] = o.Entry
	}
	// Materialize the hand-off: the engine owns o.Sent and will reuse it.
	s.hand[si] = append(s.hand[si][:0], o.Sent...)
	for i := range s.hand[si] {
		if err := s.run(si+1, s.hand[si][i].Pkt, s.hand[si][i].Iface, out); err != nil {
			return err
		}
	}
	return nil
}

// StageState returns stage i's state (plain variable names).
func (s *SeqChain) StageState(i int) map[string]value.Value { return s.engines[i].State() }

// StageTelemetry snapshots stage i's sink.
func (s *SeqChain) StageTelemetry(i int) telemetry.Snapshot { return s.engines[i].Telemetry() }

// Reset restores every stage to its initial state.
func (s *SeqChain) Reset() {
	for _, e := range s.engines {
		e.Reset()
	}
}

// ChainDiffResult summarizes a fused-vs-reference differential run.
type ChainDiffResult struct {
	Trials     int
	Mismatches int
	FirstDiff  string
}

func (r *ChainDiffResult) record(i int, p netpkt.Packet, diff string) {
	r.Mismatches++
	if r.FirstDiff == "" {
		if i >= 0 {
			r.FirstDiff = fmt.Sprintf("packet %d (%s): %s", i, p, diff)
		} else {
			r.FirstDiff = diff
		}
	}
}

// DiffTestChain replays a closed-loop workload through the fused chain
// engine and the sequential per-NF reference in lockstep, demanding
// exact equivalence: same verdicts (per-stage fired entries, drop
// bits), same emitted packets, same final per-stage state, same
// per-stage telemetry counters — so merged sinks provably attribute
// every hit to the originating NF's own entries.
//
// The loop is closed per side: whenever a stimulus is forwarded, the
// reply it would provoke (endpoints swapped, arriving on the emit
// interface) is materialized from that side's own output and fed back,
// exercising reply-path state (NAT translations, established-flow
// entries) end to end.
func DiffTestChain(stages []chain.NamedModel, stimulus []netpkt.Packet) (*ChainDiffResult, error) {
	fused, err := CompileChain(stages)
	if err != nil {
		return nil, err
	}
	seq, err := NewSeqChain(stages)
	if err != nil {
		return nil, err
	}
	res := &ChainDiffResult{}
	step := func(i int, pa, pb netpkt.Packet) (*ChainOutput, *ChainOutput, bool) {
		res.Trials++
		aOut, aErr := fused.Process(&pa)
		bOut, bErr := seq.Process(&pb)
		if (aErr != nil) != (bErr != nil) {
			res.record(i, pa, fmt.Sprintf("error mismatch: fused=%v sequential=%v", aErr, bErr))
			return nil, nil, false
		}
		if aErr != nil {
			return nil, nil, false // both errored identically
		}
		if diff := compareChainOutputs(aOut, bOut); diff != "" {
			res.record(i, pa, diff)
			return nil, nil, false
		}
		return aOut, bOut, true
	}
	for i := range stimulus {
		aOut, bOut, ok := step(i, stimulus[i], stimulus[i])
		if !ok || aOut.Dropped || len(aOut.Sent) == 0 || len(bOut.Sent) == 0 {
			continue
		}
		ra := chainReply(aOut.Sent[0].Pkt, aOut.Sent[0].Iface)
		rb := chainReply(bOut.Sent[0].Pkt, bOut.Sent[0].Iface)
		step(i, ra, rb)
	}
	for si := range stages {
		if diff := equalStates(fused.StageState(si), seq.StageState(si)); diff != "" {
			res.record(-1, netpkt.Packet{}, fmt.Sprintf("stage %d (%s) end state: %s", si, stages[si].Name, diff))
		}
		ft, st := fused.StageTelemetry(si), seq.StageTelemetry(si)
		if !ft.CountersEqual(st) {
			res.record(-1, netpkt.Packet{}, fmt.Sprintf("stage %d (%s) telemetry counters diverge:\nfused:      %+v\nsequential: %+v",
				si, stages[si].Name, ft, st))
		}
	}
	return res, nil
}

// DiffTestChainSharded replays the workload through the fused chain and
// an n-shard ShardedChain in lockstep. Shardable chains are flow-
// partitioned by construction (NewShardedChain rejects allocator-owned
// state), so outputs compare exactly; per-stage end states compare
// modulo each stage's classification (merged maps, summed partitioned
// gauges) via that stage's Equiv relation.
func DiffTestChainSharded(stages []chain.NamedModel, stimulus []netpkt.Packet, n int) (*ChainDiffResult, error) {
	fused, err := CompileChain(stages)
	if err != nil {
		return nil, err
	}
	sh, err := NewShardedChain(stages, n)
	if err != nil {
		return nil, err
	}
	eqs := make([]*Equiv, len(stages))
	for si := range stages {
		eqs[si] = NewEquiv(sh.clss[si], stages[si].Config)
	}
	res := &ChainDiffResult{}
	step := func(i int, pa, pb netpkt.Packet) (*ChainOutput, *ChainOutput, bool) {
		res.Trials++
		aOut, aErr := fused.Process(&pa)
		bOut, bErr := sh.Process(&pb)
		if (aErr != nil) != (bErr != nil) {
			res.record(i, pa, fmt.Sprintf("error mismatch: fused=%v sharded=%v", aErr, bErr))
			return nil, nil, false
		}
		if aErr != nil {
			return nil, nil, false
		}
		if diff := compareChainOutputs(aOut, bOut); diff != "" {
			res.record(i, pa, diff)
			return nil, nil, false
		}
		return aOut, bOut, true
	}
	for i := range stimulus {
		aOut, bOut, ok := step(i, stimulus[i], stimulus[i])
		if !ok || aOut.Dropped || len(aOut.Sent) == 0 || len(bOut.Sent) == 0 {
			continue
		}
		ra := chainReply(aOut.Sent[0].Pkt, aOut.Sent[0].Iface)
		rb := chainReply(bOut.Sent[0].Pkt, bOut.Sent[0].Iface)
		step(i, ra, rb)
	}
	for si := range stages {
		if diff := eqs[si].CompareStates(fused.StageState(si), sh.StageState(si)); diff != "" {
			res.record(-1, netpkt.Packet{}, fmt.Sprintf("stage %d (%s) end state: %s", si, stages[si].Name, diff))
		}
		ft, st := fused.StageTelemetry(si), sh.StageTelemetry(si)
		if !ft.CountersEqual(st) {
			res.record(-1, netpkt.Packet{}, fmt.Sprintf("stage %d (%s) telemetry counters diverge:\nfused:   %+v\nsharded: %+v",
				si, stages[si].Name, ft, st))
		}
	}
	return res, nil
}

// chainReply builds the answer an emitted packet would provoke:
// endpoints swapped, arriving back on the interface it left through
// (the same closed-loop convention core.DiffTestSharded uses).
func chainReply(p netpkt.Packet, iface string) netpkt.Packet {
	p.SrcIP, p.DstIP = p.DstIP, p.SrcIP
	p.SrcPort, p.DstPort = p.DstPort, p.SrcPort
	p.Flags = "A"
	p.InIface = iface
	return p
}

// compareChainOutputs demands exact agreement: per-stage fired entries,
// drop verdict, and the emitted packet sequence.
func compareChainOutputs(a, b *ChainOutput) string {
	if a.Dropped != b.Dropped {
		return fmt.Sprintf("verdict: dropped=%v vs %v", a.Dropped, b.Dropped)
	}
	if len(a.Entries) != len(b.Entries) {
		return fmt.Sprintf("stage count: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for si := range a.Entries {
		if a.Entries[si] != b.Entries[si] {
			return fmt.Sprintf("stage %d fired entry %d vs %d", si, a.Entries[si], b.Entries[si])
		}
	}
	if len(a.Sent) != len(b.Sent) {
		return fmt.Sprintf("sent %d packets vs %d", len(a.Sent), len(b.Sent))
	}
	for i := range a.Sent {
		if a.Sent[i].Iface != b.Sent[i].Iface {
			return fmt.Sprintf("sent[%d] iface %q vs %q", i, a.Sent[i].Iface, b.Sent[i].Iface)
		}
		if !netpkt.Equal(a.Sent[i].Pkt, b.Sent[i].Pkt) {
			return fmt.Sprintf("sent[%d]: %s vs %s", i, a.Sent[i].Pkt, b.Sent[i].Pkt)
		}
	}
	return ""
}

// equalStates compares two state maps for exact value equality.
func equalStates(a, b map[string]value.Value) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d variables vs %d", len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for k := range a {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		bv, ok := b[k]
		if !ok {
			return fmt.Sprintf("variable %q missing on one side", k)
		}
		if !value.Equal(a[k], bv) {
			return fmt.Sprintf("%s: %s vs %s", k, a[k], bv)
		}
	}
	return ""
}
