package dataplane

import (
	"fmt"

	"nfactor/internal/netpkt"
	"nfactor/internal/telemetry"
)

// ProcessExplain is ChainEngine.Process in provenance mode: it records
// every guard evaluated at every stage a packet (or one of its fan-out
// copies) reaches, plus the state transitions each fired entry
// committed, with variables namespaced "name#i:var" so multi-stage
// trails stay attributable. Each stage scans its compiled entries
// linearly in priority order instead of through the dispatch tree —
// semantically identical, with the full guard list observable. Like
// Engine.ProcessExplain this is a debugging surface, not a fast path;
// the returned ChainOutput is engine-owned and reused by the next call.
// PacketTrace.Entry reports the entry fired at the deepest stage any
// packet reached.
func (e *ChainEngine) ProcessExplain(p *netpkt.Packet) (*ChainOutput, *telemetry.PacketTrace, error) {
	tr := &telemetry.PacketTrace{Packet: p.String(), Backend: "chain", Entry: -1}
	out := &e.out
	e.stats.Packets++
	out.Sent = out.Sent[:0]
	out.Entries = resetEntries(out.Entries, len(e.stages))
	out.Epoch = e.epoch
	e.pktBuf = *p
	if err := e.explainRun(0, &e.pktBuf, "", out, tr); err != nil {
		e.stats.Errors++
		tr.Err = err.Error()
		return nil, tr, err
	}
	out.Dropped = len(out.Sent) == 0
	if out.Dropped {
		e.stats.Drops++
	}
	for i := len(out.Entries) - 1; i >= 0; i-- {
		if out.Entries[i] != EntryNotReached {
			tr.Entry = out.Entries[i]
			break
		}
	}
	tr.Dropped = out.Dropped
	for i := range out.Sent {
		s := out.Sent[i].Pkt.String()
		if out.Sent[i].Iface != "" {
			s += " via " + out.Sent[i].Iface
		}
		tr.Sent = append(tr.Sent, s)
	}
	return out, tr, nil
}

// explainRun is run's provenance twin: same depth-first traversal,
// delegating each stage to stageExplain.
func (e *ChainEngine) explainRun(si int, p *netpkt.Packet, iface string, out *ChainOutput, tr *telemetry.PacketTrace) error {
	for si < len(e.stages) {
		st := e.stages[si]
		ce, n, err := e.stageExplain(st, si, p, tr)
		if err != nil {
			return fmt.Errorf("dataplane: chain stage %d (%s): %w", si, st.name, err)
		}
		if out.Entries[si] == EntryNotReached {
			out.Entries[si] = firedIdx(ce)
		}
		if n == 0 {
			return nil
		}
		if n > 1 {
			for k := 0; k < n; k++ {
				sp := &st.sendBuf[k]
				if err := e.explainRun(si+1, &sp.Pkt, sp.Iface, out, tr); err != nil {
					return err
				}
			}
			return nil
		}
		iface = st.iface
		si++
	}
	out.Sent = append(out.Sent, SentPacket{Pkt: *p, Iface: iface})
	return nil
}

// stageExplain is stageRun's linear-scan twin, recording the guard
// trail. Compiled entries hold their full residual predicate lists, so
// scanning st.entries in order evaluates exactly the predicates the
// dispatch tree would decide plus the ones it discharged.
func (e *ChainEngine) stageExplain(st *chainStage, si int, p *netpkt.Packet, tr *telemetry.PacketTrace) (fired *centry, n int, err error) {
	t0 := st.tel.Start()
	c := &e.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := st.lutLo; i < st.lutHi; i++ {
		c.luts[i].valid = false
	}
	label := fmt.Sprintf("%s#%d: ", st.name, si)
	for _, ce := range st.entries {
		matched := true
		for j := range ce.preds {
			v := ce.preds[j].ex.eval(c)
			if c.err != nil {
				tr.Guards = append(tr.Guards, telemetry.GuardEval{
					Entry: ce.idx, Guard: label + ce.gtext[j], Outcome: "error: " + c.err.Error()})
				st.tel.Count(t0, ce.idx, false, true)
				return nil, 0, fmt.Errorf("entry %d guard: %w", ce.idx, c.err)
			}
			if v.k != kBool {
				tr.Guards = append(tr.Guards, telemetry.GuardEval{
					Entry: ce.idx, Guard: label + ce.gtext[j], Outcome: "error: non-bool"})
				st.tel.Count(t0, ce.idx, false, true)
				return nil, 0, fmt.Errorf("entry %d guard: condition is %s, want bool", ce.idx, v.k)
			}
			outcome := "true"
			if v.i == 0 {
				outcome = "false"
				matched = false
			}
			tr.Guards = append(tr.Guards, telemetry.GuardEval{
				Entry: ce.idx, Guard: label + ce.gtext[j], Outcome: outcome})
			if !matched {
				break
			}
		}
		if !matched {
			continue
		}
		n, err = e.fireStageExplain(st, ce, p, label, tr)
		if err != nil {
			st.tel.Count(t0, ce.idx, false, true)
			return ce, 0, err
		}
		st.tel.Count(t0, ce.idx, n == 0, false)
		return ce, n, nil
	}
	st.tel.Count(t0, -1, true, false)
	return nil, 0, nil
}

// fireStageExplain fires the entry through the normal fast path, then
// reads the committed transitions back out of the staging buffers —
// fireStage leaves scratchKeys/scratchVals intact until the next fire,
// so the trail records exactly what was committed.
func (e *ChainEngine) fireStageExplain(st *chainStage, ce *centry, p *netpkt.Packet, label string, tr *telemetry.PacketTrace) (int, error) {
	n, err := e.fireStage(st, ce, p)
	if err != nil {
		return n, err
	}
	for i := range ce.supd {
		tr.Changes = append(tr.Changes, telemetry.StateChange{
			Var: label + e.slotNames[ce.supd[i].slot], Op: "assign",
			Val: e.slots[ce.supd[i].slot].toValue().String()})
	}
	si := 0
	for mi := range ce.mupd {
		mu := &ce.mupd[mi]
		for oi := range mu.ops {
			if mu.ops[oi].del {
				tr.Changes = append(tr.Changes, telemetry.StateChange{
					Var: label + e.mapNames[mu.mi], Op: "del",
					Key: e.scratchKeys[si].toValue().String()})
			} else {
				tr.Changes = append(tr.Changes, telemetry.StateChange{
					Var: label + e.mapNames[mu.mi], Op: "set",
					Key: e.scratchKeys[si].toValue().String(),
					Val: e.maps[mu.mi][e.scratchKeys[si]].toValue().String()})
			}
			si++
		}
	}
	return n, nil
}

// ChainTelemetry snapshots the chain as one logical NF: ingress-level
// traffic counters (a packet forwarded by the final stage counts one
// Forward regardless of how many hops it took) and the full namespaced
// state gauge. Per-stage entry hits stay on StageTelemetry — a fused
// chain has no single entry-index space.
func (e *ChainEngine) ChainTelemetry() telemetry.Snapshot {
	sizes := make(map[string]int, len(e.slotNames)+len(e.mapNames))
	for i, st := range e.stages {
		for s := st.slotLo; s < st.slotHi; s++ {
			sizes[fmt.Sprintf("%s#%d:%s", st.name, i, e.slotNames[s])] = 1
		}
		for m := st.mapLo; m < st.mapHi; m++ {
			sizes[fmt.Sprintf("%s#%d:%s", st.name, i, e.mapNames[m])] = len(e.maps[m])
		}
	}
	st := e.stats
	return telemetry.Snapshot{
		Backend:    "chain",
		Packets:    st.Packets,
		Forwards:   st.Packets - st.Drops - st.Errors,
		Drops:      st.Drops,
		Errors:     st.Errors,
		StateSizes: sizes,
		Shards:     1,
	}
}
