package dataplane

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Per-variable state classification: the analysis that generalizes flow
// sharding from "every state map is keyed by packet fields" to the whole
// corpus. Each OIS variable gets a sharding lowering of its own, derived
// from how the synthesized model's entries touch it:
//
//   - FlowMap: a map whose every key (read and write) is built from
//     packet fields alone. Keys partition by the flow hash over the key
//     field *values* (sorted, so a flow and its reverse co-shard), and
//     the map lives shard-local.
//   - ReplicaMap: a map no entry ever writes. Each shard gets a full
//     copy; reads are shard-agnostic.
//   - OwnedMap: a map written under keys that carry an allocator value
//     (nat's reverse table keyed by the allocated port, lb's
//     backend-to-front table). Because each shard allocates from a
//     disjoint interleaved range, the allocator value itself encodes
//     which shard owns the entry, and reads keyed by a packet field
//     route to owner(field value).
//   - Allocator: a scalar bumped by a constant step (nat's next_port,
//     lb's cur_port). Shard s of n runs a sub-allocator over the
//     interleaved range {init + s*step + k*n*step}: same values, no two
//     shards ever hand out the same one, and no cross-shard
//     coordination. The sequential value is recoverable exactly (the
//     per-shard positions encode the total allocation count), which is
//     how Sharded.State() reports it.
//   - Rotor: a scalar advanced modulo a constant (round-robin indices).
//     Each shard runs its own rotor; the sequential position is again
//     recoverable from the per-shard positions.
//   - Frozen: a scalar no entry writes; replicated.
//
// On top of the per-variable classes, each entry gets a routing demand —
// which shard must process a packet for that entry's state accesses to
// be local — and a static coherence check marks entries whose demand
// cannot be decided before the state guards run (none in the corpus;
// such packets take the serial hand-off path).

// StateClass is one variable's sharding lowering.
type StateClass int

const (
	ClassFlowMap StateClass = iota
	ClassReplicaMap
	ClassOwnedMap
	ClassAllocator
	ClassRotor
	ClassFrozen
)

func (c StateClass) String() string {
	switch c {
	case ClassFlowMap:
		return "flow-map"
	case ClassReplicaMap:
		return "replica-map"
	case ClassOwnedMap:
		return "owned-map"
	case ClassAllocator:
		return "allocator"
	case ClassRotor:
		return "rotor"
	case ClassFrozen:
		return "frozen"
	}
	return "?"
}

// VarClass is the classification of one OIS variable.
type VarClass struct {
	Name  string
	Class StateClass

	// Allocator and Rotor.
	Init int64 // initial scalar value
	Step int64 // Allocator: increment per allocation
	Mod  int64 // Rotor: cycle modulus

	// OwnedMap.
	Alloc  string // the allocator whose values key the map
	KeyPos int    // allocator component position in tuple write keys (-1: whole scalar key)
}

func (v *VarClass) describe() string {
	switch v.Class {
	case ClassFlowMap:
		return fmt.Sprintf("%s: flow-map (shard-local, keys hash by packet-field values)", v.Name)
	case ClassReplicaMap:
		return fmt.Sprintf("%s: replica-map (read-only after init, copied per shard)", v.Name)
	case ClassOwnedMap:
		return fmt.Sprintf("%s: owned-map (keys carry %s values; owner shard decoded from the key)", v.Name, v.Alloc)
	case ClassAllocator:
		return fmt.Sprintf("%s: allocator (init %d, step %d; interleaved per-shard sub-ranges)", v.Name, v.Init, v.Step)
	case ClassRotor:
		return fmt.Sprintf("%s: rotor (mod %d; independent per-shard rotors)", v.Name, v.Mod)
	case ClassFrozen:
		return fmt.Sprintf("%s: frozen scalar (never written, replicated)", v.Name)
	}
	return v.Name
}

// demandKind says how an entry's shard is decided.
type demandKind int

const (
	demandNone  demandKind = iota // any shard works
	demandFlow                    // hash of the sorted key-field values
	demandOwner                   // owner shard decoded from an allocator-valued field
)

// demand is one entry's routing requirement.
type demand struct {
	kind   demandKind
	fields []string // demandFlow: key field names, sorted
	owner  string   // demandOwner: packet field carrying the allocator value
	alloc  string   // demandOwner: the allocator variable
	src    string   // the state variable the demand comes from (diagnostics only; not part of equal)
}

func (d demand) equal(o demand) bool {
	if d.kind != o.kind {
		return false
	}
	switch d.kind {
	case demandFlow:
		if len(d.fields) != len(o.fields) {
			return false
		}
		for i := range d.fields {
			if d.fields[i] != o.fields[i] {
				return false
			}
		}
		return true
	case demandOwner:
		return d.owner == o.owner && d.alloc == o.alloc
	}
	return true
}

func (d demand) String() string {
	switch d.kind {
	case demandFlow:
		return "flow(" + strings.Join(d.fields, ",") + ")"
	case demandOwner:
		return fmt.Sprintf("owner(%s:%s)", d.alloc, d.owner)
	}
	return "any"
}

// entryPlan is the routing plan for one live (non-config-pruned) entry.
type entryPlan struct {
	idx       int // original model entry index
	d         demand
	ambiguous bool // demand conflicts with a statelessly co-satisfiable entry
}

// statelessSig holds the dispatch material of one entry's stateless
// guards, for the syntactic-contradiction test: eqPred (field == const)
// shapes and polarity-normalized test forms.
type statelessSig struct {
	eq    map[string]scalar // field -> required constant
	tests map[string]bool   // testForm base key -> polarity (true = negated)
}

// contradicts reports whether two entries' stateless guards can be seen,
// syntactically, to never both hold: the same field required equal to two
// different constants, or the same base test required with opposite
// polarity. Conservative — false only means "could not prove disjoint".
func (a *statelessSig) contradicts(b *statelessSig) bool {
	for f, av := range a.eq {
		if bv, ok := b.eq[f]; ok && !scalarEqual(av, bv) {
			return true
		}
	}
	for k, aneg := range a.tests {
		if bneg, ok := b.tests[k]; ok && aneg != bneg {
			return true
		}
	}
	return false
}

// Classification is the sharding plan for one model under one concrete
// configuration and initial state.
type Classification struct {
	Vars map[string]*VarClass

	plans []entryPlan

	// Ambiguous counts live entries whose shard cannot be decided from
	// stateless guards alone (they take the serial hand-off path).
	Ambiguous int
}

// Plan returns (demand string, ambiguous) for the given original entry
// index, for diagnostics. ok is false for pruned/unknown entries.
func (c *Classification) Plan(idx int) (string, bool, bool) {
	for i := range c.plans {
		if c.plans[i].idx == idx {
			return c.plans[i].d.String(), c.plans[i].ambiguous, true
		}
	}
	return "", false, false
}

// VarReport lists the per-variable lowerings, sorted by name.
func (c *Classification) VarReport() []string {
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = c.Vars[n].describe()
	}
	return out
}

// PurelyFlowPartitioned reports whether every variable is a FlowMap —
// the shape the original all-or-nothing PartitionFields check accepted.
func (c *Classification) PurelyFlowPartitioned() bool {
	for _, v := range c.Vars {
		if v.Class != ClassFlowMap {
			return false
		}
	}
	return true
}

// access is one state-map access site.
type access struct {
	entry int
	key   solver.Term
	write bool
	del   bool
}

// scalarWrite is one scalar state update site.
type scalarWrite struct {
	entry int
	val   solver.Term
}

// classifyErr marks a variable that blocks sharding; the variable name
// travels with the error so diagnostics (nflint NFL2xx, nfreplay
// fallback reports) can point at it.
type classifyErr struct {
	Var string
	err error
}

func (e *classifyErr) Error() string { return e.err.Error() }

// BlockingVar extracts the state variable named by a classification
// error, if any ("" when the error is not a classification error).
func BlockingVar(err error) string {
	for ; err != nil; err = unwrap(err) {
		if ce, ok := err.(*classifyErr); ok {
			return ce.Var
		}
	}
	return ""
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

func blockVar(name, format string, args ...any) error {
	return &classifyErr{Var: name, err: fmt.Errorf("dataplane: "+format, args...)}
}

// Classify derives the sharding plan for a model under its concrete
// configuration and initial state. An error means some variable has no
// sharding lowering; the model still runs on a single Engine.
func Classify(m *model.Model, config, initState map[string]value.Value) (*Classification, error) {
	cp := &compiler{config: config, slotIdx: map[string]int{}, mapIdx: map[string]int{}, lutIdx: map[string]int{}}
	scalars := map[string]value.Value{}
	mapsInit := map[string]value.Value{}
	for _, name := range m.OISVars {
		iv, ok := initState[name]
		if !ok {
			return nil, fmt.Errorf("dataplane: missing initial state for %q", name)
		}
		if iv.Kind == value.KindMap {
			cp.mapIdx[name] = len(cp.mapIdx)
			mapsInit[name] = iv
		} else {
			cp.slotIdx[name] = len(cp.slotIdx)
			scalars[name] = iv
		}
	}

	// constInt folds a term under the concrete configuration.
	constInt := func(t solver.Term) (int64, bool) {
		ex, err := cp.compile(t)
		if err != nil || !ex.isConst() || ex.c.k != kInt {
			return 0, false
		}
		return ex.c.i, true
	}

	// Collect live entries (config-pruned entries never fire under this
	// configuration, exactly as Compile prunes them) and their stateless
	// signatures.
	type liveEntry struct {
		idx int
		sig statelessSig
	}
	var live []liveEntry
	for i := range m.Entries {
		e := &m.Entries[i]
		pruned := false
		sig := statelessSig{eq: map[string]scalar{}, tests: map[string]bool{}}
		for _, g := range e.Guard() {
			ex, err := cp.compile(g)
			if err != nil {
				return nil, fmt.Errorf("dataplane: entry %d guard: %w", i, err)
			}
			if ex.isConst() && ex.c.k == kBool && ex.c.i == 0 {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		for _, g := range e.FlowMatch {
			if f, v, ok := cp.eqPred(g); ok {
				sig.eq[f] = v
			}
			if base, neg := testForm(g); base != nil {
				if onlyPktConfig(base) {
					sig.tests[base.Key()] = neg
				}
			}
		}
		live = append(live, liveEntry{idx: i, sig: sig})
	}

	// Collect accesses over the live entries.
	mapAcc := map[string][]access{}
	scalarGuardRead := map[string][]int{}
	scalarWrites := map[string][]scalarWrite{}
	for _, le := range live {
		e := &m.Entries[le.idx]
		collect := func(t solver.Term, guard bool) {
			walkAccesses(t, cp, le.idx, mapAcc)
			for _, v := range solver.Vars(t) {
				if base, ok := strings.CutSuffix(v, "@0"); ok {
					if _, isScalar := scalars[base]; isScalar && guard {
						scalarGuardRead[base] = append(scalarGuardRead[base], le.idx)
					}
				}
			}
		}
		for _, g := range e.Guard() {
			collect(g, true)
		}
		for _, a := range e.Sends {
			for _, f := range a.FieldNames() {
				collect(a.Fields[f], false)
			}
			collect(a.Iface, false)
		}
		for _, u := range e.Updates {
			if _, isScalar := scalars[u.Name]; isScalar {
				scalarWrites[u.Name] = append(scalarWrites[u.Name], scalarWrite{entry: le.idx, val: u.Val})
				// The update value may itself read maps/scalars.
				collect(u.Val, false)
				continue
			}
			// Map update: record the Store/Del chain's keys as writes and
			// walk embedded reads.
			if err := walkMapUpdate(u.Name, u.Val, cp, le.idx, mapAcc); err != nil {
				return nil, err
			}
		}
	}

	cls := &Classification{Vars: map[string]*VarClass{}}

	// Scalars first: allocators and rotors anchor the owned-map class.
	for name, iv := range scalars {
		vc := &VarClass{Name: name, KeyPos: -1}
		writes := scalarWrites[name]
		if len(writes) == 0 {
			vc.Class = ClassFrozen
			cls.Vars[name] = vc
			continue
		}
		if iv.Kind != value.KindInt {
			return nil, blockVar(name, "state scalar %q: only integer counters shard (have %s)", name, iv.Kind)
		}
		vc.Init = iv.I
		kind, step, mod, err := classifyScalarWrites(name, writes, constInt)
		if err != nil {
			return nil, err
		}
		vc.Class, vc.Step, vc.Mod = kind, step, mod
		if len(scalarGuardRead[name]) > 0 {
			return nil, blockVar(name, "state scalar %q is read by a guard: per-shard %ss would change match outcomes", name, kind)
		}
		cls.Vars[name] = vc
	}

	// Maps.
	for name, iv := range mapsInit {
		accs := mapAcc[name]
		vc := &VarClass{Name: name, KeyPos: -1}
		hasWrite := false
		for _, a := range accs {
			if a.write {
				hasWrite = true
				break
			}
		}
		if !hasWrite {
			vc.Class = ClassReplicaMap
			cls.Vars[name] = vc
			continue
		}
		pure := true
		for _, a := range accs {
			if _, ok := pureKeyFields(a.key); !ok {
				pure = false
				break
			}
		}
		if pure {
			if iv.Map.Len() != 0 {
				for _, a := range accs {
					if a.del {
						return nil, blockVar(name, "map %q is pre-populated and deleted from: a shard-local delete would leave stale replicas", name)
					}
				}
			}
			vc.Class = ClassFlowMap
			cls.Vars[name] = vc
			continue
		}
		// Owned-map: every write key carries exactly one allocator
		// component at a fixed position; every read key is packet-pure.
		alloc, pos, err := ownedMapShape(name, accs, cls.Vars)
		if err != nil {
			return nil, err
		}
		if iv.Map.Len() != 0 {
			// A pre-populated owned map is accepted only when every
			// existing key is a *retired* allocation: on the allocator's
			// step lattice, strictly before its current seed. That is what
			// carried-over state looks like after a generation swap — the
			// allocator can never hand those values out again, so the
			// entries are frozen and replicate safely to every shard
			// (reads of a retired key are correct wherever they route).
			for _, a := range accs {
				if a.del {
					return nil, blockVar(name, "owned map %q is pre-populated and deleted from: a shard-local delete would leave stale replicas", name)
				}
			}
			av := cls.Vars[alloc]
			for _, k := range iv.Map.Keys() {
				comp := k
				if pos >= 0 {
					if k.Kind != value.KindTuple || pos >= len(k.Tuple) {
						return nil, blockVar(name, "owned map %q is pre-populated with a key of the wrong shape: %s", name, k)
					}
					comp = k.Tuple[pos]
				}
				if comp.Kind != value.KindInt {
					return nil, blockVar(name, "owned map %q is pre-populated with a non-integer %s component: %s", name, alloc, k)
				}
				delta := av.Init - comp.I
				if delta == 0 || delta%av.Step != 0 || delta/av.Step < 0 {
					return nil, blockVar(name, "owned map %q is pre-populated with key %s outside the retired %s lattice (seed %d, step %d)", name, k, alloc, av.Init, av.Step)
				}
			}
		}
		vc.Class, vc.Alloc, vc.KeyPos = ClassOwnedMap, alloc, pos
		cls.Vars[name] = vc
	}

	// Per-entry demands.
	planOf := map[int]*entryPlan{}
	for _, le := range live {
		cls.plans = append(cls.plans, entryPlan{idx: le.idx})
		planOf[le.idx] = &cls.plans[len(cls.plans)-1]
	}
	for name, accs := range mapAcc {
		vc := cls.Vars[name]
		for _, a := range accs {
			d, err := accessDemand(name, vc, a)
			if err != nil {
				return nil, err
			}
			if d.kind == demandNone {
				continue
			}
			pl := planOf[a.entry]
			if pl.d.kind == demandNone {
				pl.d = d
				continue
			}
			if !pl.d.equal(d) {
				return nil, blockVar(name, "entry %d needs both %s and %s: no single shard holds its state", a.entry, pl.d, d)
			}
		}
	}

	// Coherence: two statelessly co-satisfiable entries with different
	// non-none demands cannot be routed before the state guards run.
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			pi, pj := planOf[live[i].idx], planOf[live[j].idx]
			if pi.d.kind == demandNone || pj.d.kind == demandNone || pi.d.equal(pj.d) {
				continue
			}
			if !live[i].sig.contradicts(&live[j].sig) {
				pi.ambiguous = true
				pj.ambiguous = true
			}
		}
	}
	for i := range cls.plans {
		if cls.plans[i].ambiguous {
			cls.Ambiguous++
		}
	}
	return cls, nil
}

// classifyScalarWrites recognizes the two shardable scalar update shapes:
// allocator (v@0 + c, one uniform constant step) and rotor
// ((v@0 + c) % K, one uniform modulus).
func classifyScalarWrites(name string, writes []scalarWrite, constInt func(solver.Term) (int64, bool)) (StateClass, int64, int64, error) {
	var kind StateClass
	var step, mod int64
	first := true
	for _, w := range writes {
		k, s, m, ok := scalarWriteShape(name, w.val, constInt)
		if !ok {
			return 0, 0, 0, blockVar(name, "state scalar %q: entry %d update is neither an allocator (%s@0 + c) nor a rotor ((%s@0 + c) %% K)", name, w.entry, name, name)
		}
		if first {
			kind, step, mod = k, s, m
			first = false
			continue
		}
		if k != kind || s != step || m != mod {
			return 0, 0, 0, blockVar(name, "state scalar %q: entries disagree on the update shape", name)
		}
	}
	if kind == ClassAllocator && step <= 0 {
		return 0, 0, 0, blockVar(name, "state scalar %q: allocator step %d is not positive", name, step)
	}
	if kind == ClassRotor && mod <= 0 {
		return 0, 0, 0, blockVar(name, "state scalar %q: rotor modulus %d is not positive", name, mod)
	}
	return kind, step, mod, nil
}

// scalarWriteShape matches one update value against the allocator and
// rotor shapes.
func scalarWriteShape(name string, t solver.Term, constInt func(solver.Term) (int64, bool)) (StateClass, int64, int64, bool) {
	if b, ok := t.(solver.Bin); ok && b.Op == "%" {
		if k, ok := constInt(b.Y); ok {
			if _, step, _, okIn := scalarWriteShape(name, b.X, constInt); okIn {
				return ClassRotor, step, k, true
			}
		}
		return 0, 0, 0, false
	}
	b, ok := t.(solver.Bin)
	if !ok || b.Op != "+" {
		return 0, 0, 0, false
	}
	isSelf := func(x solver.Term) bool {
		v, ok := x.(solver.Var)
		return ok && v.Name == name+"@0"
	}
	if isSelf(b.X) {
		if c, ok := constInt(b.Y); ok {
			return ClassAllocator, c, 0, true
		}
	}
	if isSelf(b.Y) {
		if c, ok := constInt(b.X); ok {
			return ClassAllocator, c, 0, true
		}
	}
	return 0, 0, 0, false
}

// ownedMapShape checks the owned-map key discipline and returns the
// owning allocator and its component position.
func ownedMapShape(name string, accs []access, vars map[string]*VarClass) (string, int, error) {
	alloc, pos := "", -2
	for _, a := range accs {
		if !a.write {
			continue
		}
		wAlloc, wPos, err := writeKeyAllocator(name, a, vars)
		if err != nil {
			return "", 0, err
		}
		if pos == -2 {
			alloc, pos = wAlloc, wPos
			continue
		}
		if wAlloc != alloc || wPos != pos {
			return "", 0, blockVar(name, "map %q: write keys disagree on the allocator component (%s@%d vs %s@%d)", name, alloc, pos, wAlloc, wPos)
		}
	}
	if pos == -2 {
		return "", 0, blockVar(name, "map %q has no shardable key discipline", name)
	}
	// Read keys must expose the allocator component as a packet field so
	// the router can decode the owner before touching state.
	for _, a := range accs {
		if a.write {
			continue
		}
		if _, err := readOwnerField(name, a.key, pos); err != nil {
			return "", 0, err
		}
	}
	return alloc, pos, nil
}

// writeKeyAllocator finds the single allocator-valued component of an
// owned-map write key.
func writeKeyAllocator(name string, a access, vars map[string]*VarClass) (string, int, error) {
	isAllocRead := func(t solver.Term) (string, bool) {
		v, ok := t.(solver.Var)
		if !ok {
			return "", false
		}
		base, ok := strings.CutSuffix(v.Name, "@0")
		if !ok {
			return "", false
		}
		vc, ok := vars[base]
		if !ok || vc.Class != ClassAllocator {
			return "", false
		}
		return base, true
	}
	if al, ok := isAllocRead(a.key); ok {
		return al, -1, nil
	}
	if tp, ok := a.key.(solver.Tuple); ok {
		alloc, pos := "", -2
		for i, el := range tp.Elems {
			if al, ok := isAllocRead(el); ok {
				if pos != -2 {
					return "", 0, blockVar(name, "map %q: write key carries two allocator components", name)
				}
				alloc, pos = al, i
			}
		}
		if pos != -2 {
			return alloc, pos, nil
		}
	}
	return "", 0, blockVar(name, "map %q: entry %d writes a key that is neither packet-pure nor allocator-carrying", name, a.entry)
}

// readOwnerField returns the packet field at the allocator position of an
// owned-map read key.
func readOwnerField(name string, key solver.Term, pos int) (string, error) {
	fieldOf := func(t solver.Term) (string, bool) {
		v, ok := t.(solver.Var)
		if !ok {
			return "", false
		}
		f, ok := strings.CutPrefix(v.Name, "pkt.")
		if !ok {
			return "", false
		}
		_, known := rawGetter(f)
		return f, known
	}
	if pos == -1 {
		if f, ok := fieldOf(key); ok {
			return f, nil
		}
		return "", blockVar(name, "map %q: read key %s does not expose the allocator value as a packet field", name, key)
	}
	tp, ok := key.(solver.Tuple)
	if !ok || pos >= len(tp.Elems) {
		return "", blockVar(name, "map %q: read key %s does not match the write-key shape", name, key)
	}
	f, ok := fieldOf(tp.Elems[pos])
	if !ok {
		return "", blockVar(name, "map %q: read key component %d is not a packet field", name, pos)
	}
	return f, nil
}

// accessDemand converts one classified access into a routing demand.
func accessDemand(name string, vc *VarClass, a access) (demand, error) {
	switch vc.Class {
	case ClassReplicaMap:
		return demand{}, nil
	case ClassFlowMap:
		fields, ok := pureKeyFields(a.key)
		if !ok {
			return demand{}, blockVar(name, "map %q: entry %d key is not packet-pure", name, a.entry)
		}
		return demand{kind: demandFlow, fields: fields, src: name}, nil
	case ClassOwnedMap:
		if a.write {
			// The written key carries the shard's own allocator value:
			// always local.
			return demand{}, nil
		}
		f, err := readOwnerField(name, a.key, vc.KeyPos)
		if err != nil {
			return demand{}, err
		}
		return demand{kind: demandOwner, owner: f, alloc: vc.Alloc, src: name}, nil
	}
	return demand{}, nil
}

// pureKeyFields returns the sorted packet fields a key is built from, or
// ok=false when the key reads anything else (state, config, constants).
func pureKeyFields(key solver.Term) ([]string, bool) {
	vars := solver.Vars(key)
	if len(vars) == 0 {
		return nil, false
	}
	fields := make([]string, 0, len(vars))
	for _, v := range vars {
		f, ok := strings.CutPrefix(v, "pkt.")
		if !ok {
			return nil, false
		}
		if _, known := rawGetter(f); !known {
			return nil, false
		}
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields, true
}

// onlyPktConfig reports whether a term reads no pre-state (so its value
// is decidable before routing).
func onlyPktConfig(t solver.Term) bool {
	for _, v := range solver.Vars(t) {
		if strings.HasSuffix(v, "@0") {
			return false
		}
	}
	return true
}

// walkAccesses records every state-map read (Select/In) keyed under t.
func walkAccesses(t solver.Term, cp *compiler, entry int, acc map[string][]access) {
	var walk func(t solver.Term)
	record := func(m solver.Term, k solver.Term) bool {
		mv, ok := m.(solver.MapVar)
		if !ok {
			return false
		}
		base := strings.TrimSuffix(mv.Name, "@0")
		if _, ok := cp.mapIdx[base]; !ok {
			return false
		}
		acc[base] = append(acc[base], access{entry: entry, key: k})
		return true
	}
	walk = func(t solver.Term) {
		switch x := t.(type) {
		case solver.Bin:
			walk(x.X)
			walk(x.Y)
		case solver.Un:
			walk(x.X)
		case solver.Call:
			for _, a := range x.Args {
				walk(a)
			}
		case solver.Tuple:
			for _, e := range x.Elems {
				walk(e)
			}
		case solver.Index:
			walk(x.X)
			walk(x.I)
		case solver.Select:
			if !record(x.M, x.K) {
				walk(x.M)
			}
			walk(x.K)
		case solver.In:
			if !record(x.M, x.K) {
				walk(x.M)
			}
			walk(x.K)
		case solver.Store:
			walk(x.M)
			walk(x.K)
			walk(x.V)
		case solver.Del:
			walk(x.M)
			walk(x.K)
		}
	}
	walk(t)
}

// walkMapUpdate records the write keys of a map update's Store/Del chain
// (and walks embedded reads).
func walkMapUpdate(name string, t solver.Term, cp *compiler, entry int, acc map[string][]access) error {
	var walk func(t solver.Term) error
	walk = func(t solver.Term) error {
		switch x := t.(type) {
		case solver.MapVar:
			return nil
		case solver.Store:
			if err := walk(x.M); err != nil {
				return err
			}
			acc[name] = append(acc[name], access{entry: entry, key: x.K, write: true})
			walkAccesses(x.K, cp, entry, acc)
			walkAccesses(x.V, cp, entry, acc)
			return nil
		case solver.Del:
			if err := walk(x.M); err != nil {
				return err
			}
			acc[name] = append(acc[name], access{entry: entry, key: x.K, write: true, del: true})
			walkAccesses(x.K, cp, entry, acc)
			return nil
		default:
			return errCompile("update of %q is not a store/del chain (%T)", name, t)
		}
	}
	return walk(t)
}
