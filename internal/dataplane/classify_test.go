package dataplane_test

import (
	"testing"

	"nfactor/internal/dataplane"
	"nfactor/internal/nfs"
)

// TestClassifyCorpus pins the per-variable sharding lowerings the
// classifier derives for the stateful corpus NFs: nat's port pool is an
// allocator with its reverse table keyed by allocated ports, lb combines
// an allocator, a round-robin rotor and both map disciplines, balance is
// flow-keyed maps plus a rotor.
func TestClassifyCorpus(t *testing.T) {
	want := map[string]map[string]dataplane.StateClass{
		"nat": {
			"fwd":       dataplane.ClassFlowMap,
			"next_port": dataplane.ClassAllocator,
			"rev":       dataplane.ClassOwnedMap,
		},
		"lb": {
			"b2f_nat":  dataplane.ClassOwnedMap,
			"cur_port": dataplane.ClassAllocator,
			"f2b_nat":  dataplane.ClassFlowMap,
			"rr_idx":   dataplane.ClassRotor,
		},
		"balance": {
			"backend":   dataplane.ClassFlowMap,
			"rr_idx":    dataplane.ClassRotor,
			"tcp_state": dataplane.ClassFlowMap,
		},
	}
	for name, vars := range want {
		t.Run(name, func(t *testing.T) {
			cls := classify(t, name)
			if len(cls.Vars) != len(vars) {
				t.Fatalf("classified %d variables, want %d (%v)", len(cls.Vars), len(vars), cls.VarReport())
			}
			for v, wc := range vars {
				vc, ok := cls.Vars[v]
				if !ok {
					t.Fatalf("variable %q not classified", v)
				}
				if vc.Class != wc {
					t.Errorf("%s: classified %s, want %s", v, vc.Class, wc)
				}
			}
			if cls.PurelyFlowPartitioned() {
				t.Errorf("%s should not be purely flow-partitioned", name)
			}
		})
	}
}

// TestClassifyWholeCorpus demands every corpus NF classifies with zero
// ambiguous entries: each packet's shard is decidable from stateless
// guards alone, so the serial hand-off path never runs on the corpus.
func TestClassifyWholeCorpus(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			cls := classify(t, name)
			if cls.Ambiguous != 0 {
				t.Errorf("%d ambiguous entries, want 0", cls.Ambiguous)
			}
			for _, line := range cls.VarReport() {
				t.Log(line)
			}
		})
	}
}

func classify(t *testing.T, name string) *dataplane.Classification {
	t.Helper()
	an := analyze(t, name)
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := dataplane.Classify(an.Model, config, state)
	if err != nil {
		t.Fatalf("classify %s: %v", name, err)
	}
	return cls
}
