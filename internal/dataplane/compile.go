package dataplane

import (
	"fmt"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// ctx is the per-packet evaluation context shared by every compiled
// closure of one engine: the packet being processed, the flat scalar
// state array, the unboxed state maps, and the first evaluation error.
// Closures report errors by setting err (first error wins, matching the
// reference interpreter's eager propagation) and returning the zero rv.
type ctx struct {
	pkt   *netpkt.Packet
	slots []mval
	maps  []rmap
	// tups is the tuple arena rv offsets point into: [0,nconst) holds
	// compile-time constant tuples and persists; the rest is recycled
	// at the start of every packet (offsets survive growth, so arena
	// reallocation is safe mid-evaluation).
	tups   [][maxTuple]scalar
	nconst int
	// luts memoizes state-map lookups for the current packet. Every
	// guard, send and update evaluates against the pre-state snapshot
	// (commits happen after all evaluation), so one (map, key-term)
	// lookup is valid for the whole packet no matter how many entries
	// repeat it. The compiler assigns one slot per syntactically
	// distinct lookup; process() invalidates them between packets.
	luts []lut
	err  error
}

type lut struct {
	valid   bool
	present bool
	val     mval
}

func (c *ctx) fail(format string, args ...any) rv {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
	return rv{}
}

// newTuple claims one arena slot for an n-ary tuple. Steady state never
// allocates: the arena keeps its high-water capacity across packets.
func (c *ctx) newTuple(n int) rv {
	i := len(c.tups)
	if i < cap(c.tups) {
		c.tups = c.tups[:i+1]
	} else {
		c.tups = append(c.tups, [maxTuple]scalar{})
	}
	return rv{scalar: scalar{k: kTuple}, n: uint8(n), toff: uint32(i)}
}

// load brings an owned value into the evaluation domain (tuples get a
// fresh arena slot; scalars copy for free).
func (c *ctx) load(v mval) rv {
	if v.k != kTuple {
		return rv{scalar: v.scalar}
	}
	out := c.newTuple(int(v.n))
	c.tups[out.toff] = v.e
	return out
}

// own detaches a value from the arena for cross-packet storage.
func (c *ctx) own(v rv) mval {
	if v.k != kTuple {
		return mval{scalar: v.scalar}
	}
	return mval{scalar: v.scalar, n: v.n, e: c.tups[v.toff]}
}

// lookup fills one memo slot: evaluate the key, probe the map. Returns
// false when the key evaluation failed (c.err is set; the slot stays
// invalid so a later fallback scan re-raises identically).
func (c *ctx) lookup(lc *lut, kx *cexpr, lk func(*ctx) rmap) bool {
	kv := kx.eval(c)
	if c.err != nil {
		return false
	}
	k, err := keyOf(kv, c)
	if err != nil {
		c.fail("%v", err)
		return false
	}
	lc.val, lc.present = lk(c)[k]
	lc.valid = true
	return true
}

// cexpr is a compiled expression: either a constant folded at compile
// time (fn == nil) or a closure over the evaluation context. Closures
// return rv by value, so evaluation never allocates.
type cexpr struct {
	c  rv
	fn func(*ctx) rv
}

func constExpr(v rv) cexpr { return cexpr{c: v} }

func (x *cexpr) isConst() bool { return x.fn == nil }

func (x *cexpr) eval(c *ctx) rv {
	if x.fn == nil {
		return x.c
	}
	return x.fn(c)
}

// errCompile marks a term the data plane cannot lower; Compile surfaces
// it so callers fall back to the reference model.Instance.
func errCompile(format string, args ...any) error {
	return fmt.Errorf("dataplane: %s", fmt.Sprintf(format, args...))
}

// compiler resolves variable names against the model's concrete
// configuration and its state layout: scalar state to slot indices, map
// state to map indices, config to compile-time constants.
type compiler struct {
	config  map[string]value.Value
	slotIdx map[string]int // scalar OIS var -> slots index
	mapIdx  map[string]int // map OIS var -> maps index
	// constTups collects compile-time constant tuples; Compile installs
	// them as the engine arena's persistent prefix.
	constTups [][maxTuple]scalar
	// lutIdx assigns one per-packet memo slot to each distinct
	// state-map lookup, keyed by the canonical map|key term encoding.
	lutIdx map[string]int
	// lutNS namespaces the lut signatures when several per-stage
	// compilers share one lutIdx (CompileChain): two stages' identical
	// lookup terms refer to different state and must not share a memo
	// slot. Empty for single-model compiles.
	lutNS string
}

// lutSlot returns the memo slot for a map/key term pair (one slot per
// distinct pair, shared by In and Select).
func (cp *compiler) lutSlot(m, k solver.Term) int {
	sig := cp.lutNS + m.Key() + "|" + k.Key()
	if s, ok := cp.lutIdx[sig]; ok {
		return s
	}
	s := len(cp.lutIdx)
	cp.lutIdx[sig] = s
	return s
}

// constRv converts a boxed constant to its rv form, registering tuple
// payloads in the constant arena prefix.
func (cp *compiler) constRv(v value.Value) (rv, error) {
	mv, err := mvalOf(v)
	if err != nil {
		return rv{}, err
	}
	if mv.k != kTuple {
		return rv{scalar: mv.scalar}, nil
	}
	toff := len(cp.constTups)
	cp.constTups = append(cp.constTups, mv.e)
	return rv{scalar: scalar{k: kTuple}, n: mv.n, toff: uint32(toff)}, nil
}

// fctx is a throwaway context for constant folding: it exposes the
// constant arena collected so far, which is all a constant can refer to.
func (cp *compiler) fctx() *ctx {
	return &ctx{tups: cp.constTups, nconst: len(cp.constTups)}
}

// compile lowers a term to an unboxed closure, folding configuration
// reads (always concrete at compile time) and constant subterms.
func (cp *compiler) compile(t solver.Term) (cexpr, error) {
	switch x := t.(type) {
	case solver.Const:
		v, err := cp.constRv(x.V)
		if err != nil {
			return cexpr{}, err
		}
		return constExpr(v), nil

	case solver.NamedConst:
		// Composite configuration in scalar position (lists/maps are
		// consumed structurally by Index/Select/In below).
		v, err := cp.constRv(x.V)
		if err != nil {
			return cexpr{}, errCompile("config %q used as a scalar: %v", x.Name, err)
		}
		return constExpr(v), nil

	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			get, ok := fieldGetter(f)
			if !ok {
				return cexpr{}, errCompile("unknown packet field %q", f)
			}
			return cexpr{fn: get}, nil
		}
		if base, ok := strings.CutSuffix(x.Name, "@0"); ok {
			slot, ok := cp.slotIdx[base]
			if !ok {
				return cexpr{}, errCompile("state scalar %q has no slot", base)
			}
			return cexpr{fn: func(c *ctx) rv { return c.load(c.slots[slot]) }}, nil
		}
		cv, ok := cp.config[x.Name]
		if !ok {
			return cexpr{}, errCompile("unbound variable %q", x.Name)
		}
		v, err := cp.constRv(cv)
		if err != nil {
			return cexpr{}, errCompile("config %q: %v", x.Name, err)
		}
		return constExpr(v), nil

	case solver.MapVar:
		return cexpr{}, errCompile("map %q used as a value", x.Name)

	case solver.Bin:
		return cp.compileBin(x)

	case solver.Un:
		ex, err := cp.compile(x.X)
		if err != nil {
			return cexpr{}, err
		}
		op := x.Op
		if ex.isConst() {
			v, err := unop(op, ex.c)
			if err != nil {
				return errValExpr(err), nil
			}
			return constExpr(v), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			v := ex.fn(c)
			if c.err != nil {
				return rv{}
			}
			out, err := unop(op, v)
			if err != nil {
				return c.fail("%v", err)
			}
			return out
		}}, nil

	case solver.Call:
		return cp.compileCall(x)

	case solver.Tuple:
		if len(x.Elems) > maxTuple {
			return cexpr{}, errCompile("tuple arity %d exceeds %d", len(x.Elems), maxTuple)
		}
		elems := make([]cexpr, len(x.Elems))
		allConst := true
		for i, e := range x.Elems {
			ex, err := cp.compile(e)
			if err != nil {
				return cexpr{}, err
			}
			elems[i] = ex
			allConst = allConst && ex.isConst()
		}
		n := len(elems)
		if allConst {
			var e4 [maxTuple]scalar
			for i := range elems {
				if elems[i].c.k == kTuple {
					return cexpr{}, errCompile("nested tuple")
				}
				e4[i] = elems[i].c.scalar
			}
			toff := len(cp.constTups)
			cp.constTups = append(cp.constTups, e4)
			return constExpr(rv{scalar: scalar{k: kTuple}, n: uint8(n), toff: uint32(toff)}), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			out := c.newTuple(n)
			for i := range elems {
				v := elems[i].eval(c)
				if c.err != nil {
					return rv{}
				}
				if v.k == kTuple {
					return c.fail("dataplane: nested tuple")
				}
				// Index the arena fresh each write: an inner eval may
				// have grown it.
				c.tups[out.toff][i] = v.scalar
			}
			return out
		}}, nil

	case solver.Index:
		return cp.compileIndex(x)

	case solver.Select:
		lk, err := cp.mapRef(x.M)
		if err != nil {
			return cexpr{}, err
		}
		kx, err := cp.compile(x.K)
		if err != nil {
			return cexpr{}, err
		}
		slot := cp.lutSlot(x.M, x.K)
		return cexpr{fn: func(c *ctx) rv {
			lc := &c.luts[slot]
			if !lc.valid {
				if !c.lookup(lc, &kx, lk) {
					return rv{}
				}
			}
			if !lc.present {
				// Pure re-evaluation of the key, for the message only.
				kv := kx.eval(c)
				return c.fail("map key %s not present", toValue(kv, c))
			}
			return c.load(lc.val)
		}}, nil

	case solver.In:
		lk, err := cp.mapRef(x.M)
		if err != nil {
			return cexpr{}, err
		}
		kx, err := cp.compile(x.K)
		if err != nil {
			return cexpr{}, err
		}
		slot := cp.lutSlot(x.M, x.K)
		return cexpr{fn: func(c *ctx) rv {
			lc := &c.luts[slot]
			if !lc.valid {
				if !c.lookup(lc, &kx, lk) {
					return rv{}
				}
			}
			return rvBool(lc.present)
		}}, nil

	case solver.Store, solver.Del:
		return cexpr{}, errCompile("map update term in expression position")

	default:
		return cexpr{}, errCompile("cannot compile %T", t)
	}
}

// errValExpr defers a constant-folding error to run time: the reference
// interpreter would raise it on every evaluation, so the compiled form
// must too (rather than failing the whole compilation).
func errValExpr(err error) cexpr {
	return cexpr{fn: func(c *ctx) rv { return c.fail("%v", err) }}
}

func (cp *compiler) compileBin(x solver.Bin) (cexpr, error) {
	lx, err := cp.compile(x.X)
	if err != nil {
		return cexpr{}, err
	}
	rx, err := cp.compile(x.Y)
	if err != nil {
		return cexpr{}, err
	}
	op := x.Op
	if op == "&&" || op == "||" {
		// Short-circuit with the reference's IsTruthy error semantics.
		and := op == "&&"
		if lx.isConst() && lx.c.k == kBool {
			lb := lx.c.i != 0
			if (and && !lb) || (!and && lb) {
				return constExpr(rvBool(lb)), nil
			}
			// Left is neutral: result is truthiness of right.
			return cp.truthyExpr(rx)
		}
		return cexpr{fn: func(c *ctx) rv {
			l := lx.eval(c)
			if c.err != nil {
				return rv{}
			}
			if l.k != kBool {
				return c.fail("condition is %s, want bool", l.k)
			}
			lb := l.i != 0
			if (and && !lb) || (!and && lb) {
				return rvBool(lb)
			}
			r := rx.eval(c)
			if c.err != nil {
				return rv{}
			}
			if r.k != kBool {
				return c.fail("condition is %s, want bool", r.k)
			}
			return rvBool(r.i != 0)
		}}, nil
	}
	if lx.isConst() && rx.isConst() {
		v, err := binop(op, lx.c, rx.c, cp.fctx())
		if err != nil {
			return errValExpr(err), nil
		}
		return constExpr(v), nil
	}
	return cexpr{fn: func(c *ctx) rv {
		l := lx.eval(c)
		if c.err != nil {
			return rv{}
		}
		r := rx.eval(c)
		if c.err != nil {
			return rv{}
		}
		out, err := binop(op, l, r, c)
		if err != nil {
			return c.fail("%v", err)
		}
		return out
	}}, nil
}

// truthyExpr wraps ex with the IsTruthy check (bool or error).
func (cp *compiler) truthyExpr(ex cexpr) (cexpr, error) {
	if ex.isConst() {
		if ex.c.k != kBool {
			return errValExpr(fmt.Errorf("condition is %s, want bool", ex.c.k)), nil
		}
		return constExpr(rvBool(ex.c.i != 0)), nil
	}
	return cexpr{fn: func(c *ctx) rv {
		v := ex.fn(c)
		if c.err != nil {
			return rv{}
		}
		if v.k != kBool {
			return c.fail("condition is %s, want bool", v.k)
		}
		return rvBool(v.i != 0)
	}}, nil
}

func (cp *compiler) compileCall(x solver.Call) (cexpr, error) {
	switch x.Fn {
	case "hash":
		if len(x.Args) != 1 {
			return cexpr{}, errCompile("hash arity %d", len(x.Args))
		}
		ax, err := cp.compile(x.Args[0])
		if err != nil {
			return cexpr{}, err
		}
		if ax.isConst() {
			h, err := rvHash(ax.c, cp.fctx())
			if err != nil {
				return errValExpr(err), nil
			}
			return constExpr(rvScalar(mkInt(h))), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			v := ax.fn(c)
			if c.err != nil {
				return rv{}
			}
			h, err := rvHash(v, c)
			if err != nil {
				return c.fail("%v", err)
			}
			return rvScalar(mkInt(h))
		}}, nil

	case "len":
		if len(x.Args) != 1 {
			return cexpr{}, errCompile("len arity %d", len(x.Args))
		}
		// Composite configuration folds by its boxed length.
		if cv, ok := constContainer(x.Args[0]); ok {
			n, err := cv.Len()
			if err != nil {
				return errValExpr(err), nil
			}
			return constExpr(rvScalar(mkInt(int64(n)))), nil
		}
		// State-map length is dynamic: resolve the map index.
		if mv, ok := x.Args[0].(solver.MapVar); ok {
			lk, err := cp.mapRef(mv)
			if err != nil {
				return cexpr{}, err
			}
			return cexpr{fn: func(c *ctx) rv {
				return rvScalar(mkInt(int64(len(lk(c)))))
			}}, nil
		}
		ax, err := cp.compile(x.Args[0])
		if err != nil {
			return cexpr{}, err
		}
		lenOf := func(v rv) (int64, error) {
			switch v.k {
			case kStr:
				return int64(len(v.s)), nil
			case kTuple:
				return int64(v.n), nil
			default:
				return 0, fmt.Errorf("len of %s", v.k)
			}
		}
		if ax.isConst() {
			n, err := lenOf(ax.c)
			if err != nil {
				return errValExpr(err), nil
			}
			return constExpr(rvScalar(mkInt(n))), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			v := ax.fn(c)
			if c.err != nil {
				return rv{}
			}
			n, err := lenOf(v)
			if err != nil {
				return c.fail("%v", err)
			}
			return rvScalar(mkInt(n))
		}}, nil

	case "contains":
		if len(x.Args) != 2 {
			return cexpr{}, errCompile("contains arity %d", len(x.Args))
		}
		sx, err := cp.compile(x.Args[0])
		if err != nil {
			return cexpr{}, err
		}
		ux, err := cp.compile(x.Args[1])
		if err != nil {
			return cexpr{}, err
		}
		if sx.isConst() && ux.isConst() {
			if sx.c.k != kStr || ux.c.k != kStr {
				return errValExpr(fmt.Errorf("contains wants two strings")), nil
			}
			return constExpr(rvBool(strings.Contains(sx.c.s, ux.c.s))), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			s := sx.eval(c)
			if c.err != nil {
				return rv{}
			}
			u := ux.eval(c)
			if c.err != nil {
				return rv{}
			}
			if s.k != kStr || u.k != kStr {
				return c.fail("contains wants two strings")
			}
			return rvBool(strings.Contains(s.s, u.s))
		}}, nil

	default:
		return cexpr{}, errCompile("uninterpreted call %q", x.Fn)
	}
}

// constContainer unwraps a term that denotes a concrete composite value
// at compile time (NamedConst configuration or a literal Const).
func constContainer(t solver.Term) (value.Value, bool) {
	switch x := t.(type) {
	case solver.NamedConst:
		return x.V, true
	case solver.Const:
		switch x.V.Kind {
		case value.KindList, value.KindMap, value.KindTuple, value.KindStr:
			return x.V, true
		}
	}
	return value.Value{}, false
}

func (cp *compiler) compileIndex(x solver.Index) (cexpr, error) {
	ix, err := cp.compile(x.I)
	if err != nil {
		return cexpr{}, err
	}
	// Concrete list/tuple configuration: precompile the elements so the
	// per-packet path is a bounds check and an array load.
	if cv, ok := constContainer(x.X); ok && (cv.Kind == value.KindList || cv.Kind == value.KindTuple) {
		var boxed []value.Value
		if cv.Kind == value.KindList {
			boxed = cv.List.Elems
		} else {
			boxed = cv.Tuple
		}
		elems := make([]rv, len(boxed))
		for i, e := range boxed {
			ev, err := cp.constRv(e)
			if err != nil {
				return cexpr{}, errCompile("config element %d: %v", i, err)
			}
			elems[i] = ev
		}
		if ix.isConst() {
			i, err := sliceIdx(ix.c, len(elems))
			if err != nil {
				return errValExpr(err), nil
			}
			return constExpr(elems[i]), nil
		}
		return cexpr{fn: func(c *ctx) rv {
			iv := ix.fn(c)
			if c.err != nil {
				return rv{}
			}
			i, err := sliceIdx(iv, len(elems))
			if err != nil {
				return c.fail("%v", err)
			}
			return elems[i]
		}}, nil
	}
	// General case: the container expression yields an unboxed tuple.
	xx, err := cp.compile(x.X)
	if err != nil {
		return cexpr{}, err
	}
	return cexpr{fn: func(c *ctx) rv {
		v := xx.eval(c)
		if c.err != nil {
			return rv{}
		}
		if v.k != kTuple {
			return c.fail("cannot index %s", v.k)
		}
		iv := ix.eval(c)
		if c.err != nil {
			return rv{}
		}
		i, err := sliceIdx(iv, int(v.n))
		if err != nil {
			return c.fail("%v", err)
		}
		return rvScalar(c.tups[v.toff][i])
	}}, nil
}

func sliceIdx(idx rv, n int) (int, error) {
	if idx.k != kInt {
		return 0, fmt.Errorf("index must be int, got %s", idx.k)
	}
	i := int(idx.i)
	if i < 0 || i >= n {
		return 0, fmt.Errorf("index %d out of range [0,%d)", i, n)
	}
	return i, nil
}

// mapRef resolves a term in map position to a runtime map accessor:
// state maps load from the context by index, composite configuration
// maps are converted once at compile time.
func (cp *compiler) mapRef(t solver.Term) (func(*ctx) rmap, error) {
	switch x := t.(type) {
	case solver.MapVar:
		base := strings.TrimSuffix(x.Name, "@0")
		mi, ok := cp.mapIdx[base]
		if !ok {
			return nil, errCompile("state map %q has no index", base)
		}
		return func(c *ctx) rmap { return c.maps[mi] }, nil
	case solver.NamedConst:
		m, err := rmapOf(x.V)
		if err != nil {
			return nil, errCompile("config map %q: %v", x.Name, err)
		}
		return func(*ctx) rmap { return m }, nil
	case solver.Const:
		m, err := rmapOf(x.V)
		if err != nil {
			return nil, errCompile("const map: %v", err)
		}
		return func(*ctx) rmap { return m }, nil
	default:
		return nil, errCompile("unsupported map expression %T", t)
	}
}

// --- packet field access ----------------------------------------------

func fieldGetter(name string) (func(*ctx) rv, bool) {
	switch name {
	case netpkt.FieldSrcIP:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.SrcIP)) }, true
	case netpkt.FieldDstIP:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.DstIP)) }, true
	case netpkt.FieldSrcPort:
		return func(c *ctx) rv { return rvScalar(mkInt(int64(c.pkt.SrcPort))) }, true
	case netpkt.FieldDstPort:
		return func(c *ctx) rv { return rvScalar(mkInt(int64(c.pkt.DstPort))) }, true
	case netpkt.FieldProto:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.Proto)) }, true
	case netpkt.FieldFlags:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.Flags)) }, true
	case netpkt.FieldTTL:
		return func(c *ctx) rv { return rvScalar(mkInt(int64(c.pkt.TTL))) }, true
	case netpkt.FieldLength:
		return func(c *ctx) rv { return rvScalar(mkInt(int64(c.pkt.Length))) }, true
	case netpkt.FieldPayload:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.Payload)) }, true
	case netpkt.FieldInIface:
		return func(c *ctx) rv { return rvScalar(mkStr(c.pkt.InIface)) }, true
	}
	return nil, false
}

// rawGetter reads a field directly off a packet (used by the dispatch
// tree and the shard hash, outside any evaluation context).
func rawGetter(name string) (func(*netpkt.Packet) scalar, bool) {
	switch name {
	case netpkt.FieldSrcIP:
		return func(p *netpkt.Packet) scalar { return mkStr(p.SrcIP) }, true
	case netpkt.FieldDstIP:
		return func(p *netpkt.Packet) scalar { return mkStr(p.DstIP) }, true
	case netpkt.FieldSrcPort:
		return func(p *netpkt.Packet) scalar { return mkInt(int64(p.SrcPort)) }, true
	case netpkt.FieldDstPort:
		return func(p *netpkt.Packet) scalar { return mkInt(int64(p.DstPort)) }, true
	case netpkt.FieldProto:
		return func(p *netpkt.Packet) scalar { return mkStr(p.Proto) }, true
	case netpkt.FieldFlags:
		return func(p *netpkt.Packet) scalar { return mkStr(p.Flags) }, true
	case netpkt.FieldTTL:
		return func(p *netpkt.Packet) scalar { return mkInt(int64(p.TTL)) }, true
	case netpkt.FieldLength:
		return func(p *netpkt.Packet) scalar { return mkInt(int64(p.Length)) }, true
	case netpkt.FieldPayload:
		return func(p *netpkt.Packet) scalar { return mkStr(p.Payload) }, true
	case netpkt.FieldInIface:
		return func(p *netpkt.Packet) scalar { return mkStr(p.InIface) }, true
	}
	return nil, false
}

// fieldSetter writes an unboxed value into a packet field, mirroring
// netpkt.FromValue: a wrong-kind value zero-defaults the field.
func fieldSetter(name string) (func(*netpkt.Packet, rv), bool) {
	setStr := func(dst func(*netpkt.Packet) *string) func(*netpkt.Packet, rv) {
		return func(p *netpkt.Packet, v rv) {
			if v.k == kStr {
				*dst(p) = v.s
			} else {
				*dst(p) = ""
			}
		}
	}
	setInt := func(dst func(*netpkt.Packet) *int) func(*netpkt.Packet, rv) {
		return func(p *netpkt.Packet, v rv) {
			if v.k == kInt {
				*dst(p) = int(v.i)
			} else {
				*dst(p) = 0
			}
		}
	}
	switch name {
	case netpkt.FieldSrcIP:
		return setStr(func(p *netpkt.Packet) *string { return &p.SrcIP }), true
	case netpkt.FieldDstIP:
		return setStr(func(p *netpkt.Packet) *string { return &p.DstIP }), true
	case netpkt.FieldSrcPort:
		return setInt(func(p *netpkt.Packet) *int { return &p.SrcPort }), true
	case netpkt.FieldDstPort:
		return setInt(func(p *netpkt.Packet) *int { return &p.DstPort }), true
	case netpkt.FieldProto:
		return setStr(func(p *netpkt.Packet) *string { return &p.Proto }), true
	case netpkt.FieldFlags:
		return setStr(func(p *netpkt.Packet) *string { return &p.Flags }), true
	case netpkt.FieldTTL:
		return setInt(func(p *netpkt.Packet) *int { return &p.TTL }), true
	case netpkt.FieldLength:
		return setInt(func(p *netpkt.Packet) *int { return &p.Length }), true
	case netpkt.FieldPayload:
		return setStr(func(p *netpkt.Packet) *string { return &p.Payload }), true
	case netpkt.FieldInIface:
		return setStr(func(p *netpkt.Packet) *string { return &p.InIface }), true
	}
	return nil, false
}

// --- entry lowering ---------------------------------------------------

// cpred is one residual guard predicate, annotated with the dispatch
// material the decision tree can act on: its exact-match shape
// (pkt.field == constant scalar) for k-way value dispatch, and its
// polarity-normalized base form for boolean-test dispatch (so that
// `x in blocked` and `!(x in blocked)`, or `proto == ""` and
// `proto != ""`, discharge at the same node).
type cpred struct {
	ex    cexpr
	field string // non-empty: predicate is pkt.field == val
	val   scalar

	baseKey string // canonical Key() of the positive form
	neg     bool   // predicate is the negation of the base form
	base    cexpr  // compiled positive form
}

type fieldAssign struct {
	set func(*netpkt.Packet, rv)
	ex  cexpr
}

type csend struct {
	fields []fieldAssign // in sorted field-name order (reference order)
	iface  cexpr
}

type slotUpdate struct {
	slot int
	ex   cexpr
}

type mop struct {
	del bool
	key cexpr
	val cexpr
}

type mapUpdate struct {
	mi  int
	ops []mop // application order (innermost Store/Del first)
}

// centry is one compiled table entry: residual guard predicates (config
// conditions folded away) plus fully lowered actions.
type centry struct {
	idx   int // original entry index (reported like ProcessTraced)
	preds []cpred
	// gtext holds the source term text of each predicate (gtext[j] is
	// preds[j]'s), kept for explain-mode guard trails; the hot path
	// never touches it.
	gtext []string
	sends []csend
	supd  []slotUpdate
	mupd  []mapUpdate
	nMops int
}

// compileEntry lowers one entry. pruned is true when a constant-false
// guard condition (typically a config condition under the concrete
// configuration) makes the entry unmatchable.
func (cp *compiler) compileEntry(e *model.Entry, idx int) (ce *centry, pruned bool, err error) {
	ce = &centry{idx: idx}
	for _, g := range e.Guard() {
		ex, err := cp.compile(g)
		if err != nil {
			return nil, false, err
		}
		if ex.isConst() {
			if ex.c.k == kBool {
				if ex.c.i == 0 {
					return nil, true, nil // never matches
				}
				continue // always true: drop the predicate
			}
			// Wrong-kind constant guard: errors on every evaluation.
			ee, _ := cp.truthyExpr(ex)
			ce.preds = append(ce.preds, cpred{ex: ee})
			ce.gtext = append(ce.gtext, g.String())
			continue
		}
		p := cpred{ex: ex}
		if f, v, ok := cp.eqPred(g); ok {
			p.field, p.val = f, v
		}
		if base, neg := testForm(g); base != nil {
			if bx, err := cp.compile(base); err == nil {
				p.baseKey, p.neg, p.base = base.Key(), neg, bx
			}
		}
		ce.preds = append(ce.preds, p)
		ce.gtext = append(ce.gtext, g.String())
	}
	for _, a := range e.Sends {
		s := csend{}
		for _, f := range a.FieldNames() {
			set, ok := fieldSetter(f)
			if !ok {
				return nil, false, errCompile("send writes unknown field %q", f)
			}
			ex, err := cp.compile(a.Fields[f])
			if err != nil {
				return nil, false, err
			}
			s.fields = append(s.fields, fieldAssign{set: set, ex: ex})
		}
		ifx, err := cp.compile(a.Iface)
		if err != nil {
			return nil, false, err
		}
		s.iface = ifx
		ce.sends = append(ce.sends, s)
	}
	seen := map[string]bool{}
	for _, u := range e.Updates {
		if seen[u.Name] {
			return nil, false, errCompile("duplicate update of %q", u.Name)
		}
		seen[u.Name] = true
		if slot, ok := cp.slotIdx[u.Name]; ok {
			ex, err := cp.compile(u.Val)
			if err != nil {
				return nil, false, err
			}
			ce.supd = append(ce.supd, slotUpdate{slot: slot, ex: ex})
			continue
		}
		mi, ok := cp.mapIdx[u.Name]
		if !ok {
			return nil, false, errCompile("update of unknown state %q", u.Name)
		}
		ops, err := cp.compileMapChain(u.Name, u.Val)
		if err != nil {
			return nil, false, err
		}
		ce.mupd = append(ce.mupd, mapUpdate{mi: mi, ops: ops})
		ce.nMops += len(ops)
	}
	return ce, false, nil
}

// compileMapChain lowers a Store/Del chain rooted at the updated map's
// own pre-state snapshot (name@0) into an in-place op list. The rooting
// requirement is what makes in-place application equivalent to the
// reference's clone-then-assign: every read anywhere in the entry sees
// the @0 snapshot, all ops evaluate before any commit, and the chain
// rebuilds the map it replaces.
func (cp *compiler) compileMapChain(name string, t solver.Term) ([]mop, error) {
	var ops []mop
	var walk func(t solver.Term) error
	walk = func(t solver.Term) error {
		switch x := t.(type) {
		case solver.MapVar:
			if strings.TrimSuffix(x.Name, "@0") != name {
				return errCompile("update of %q rooted at %q", name, x.Name)
			}
			return nil
		case solver.Store:
			if err := walk(x.M); err != nil {
				return err
			}
			kx, err := cp.compile(x.K)
			if err != nil {
				return err
			}
			vx, err := cp.compile(x.V)
			if err != nil {
				return err
			}
			ops = append(ops, mop{key: kx, val: vx})
			return nil
		case solver.Del:
			if err := walk(x.M); err != nil {
				return err
			}
			kx, err := cp.compile(x.K)
			if err != nil {
				return err
			}
			ops = append(ops, mop{del: true, key: kx})
			return nil
		default:
			return errCompile("update of %q is not a store/del chain (%T)", name, t)
		}
	}
	if err := walk(t); err != nil {
		return nil, err
	}
	return ops, nil
}

// testForm normalizes a guard predicate to (positive base, polarity):
// `!X` pairs with `X`, and a negated comparison pairs with its
// complement (!= with ==, >= with <, <= with >), so complementary
// guards of sibling entries meet at one boolean-test dispatch node.
func testForm(t solver.Term) (solver.Term, bool) {
	switch x := t.(type) {
	case solver.Un:
		if x.Op == "!" {
			return x.X, true
		}
	case solver.Bin:
		switch x.Op {
		case "!=":
			return solver.Bin{Op: "==", X: x.X, Y: x.Y}, true
		case ">=":
			return solver.Bin{Op: "<", X: x.X, Y: x.Y}, true
		case "<=":
			return solver.Bin{Op: ">", X: x.X, Y: x.Y}, true
		case "==", "<", ">":
			return t, false
		case "&&", "||":
			return nil, false // compound: not worth a shared test
		}
	case solver.Call, solver.In:
		return t, false
	}
	return nil, false
}

// eqPred recognizes `pkt.field == <constant scalar>` (either operand
// order) after configuration folding — the decision tree's dispatch
// material. Only exact equality qualifies: a false equality can neither
// error nor update state, so skipping the entry via dispatch is
// observationally identical to evaluating and failing the predicate.
func (cp *compiler) eqPred(t solver.Term) (string, scalar, bool) {
	b, ok := t.(solver.Bin)
	if !ok || b.Op != "==" {
		return "", scalar{}, false
	}
	try := func(x, y solver.Term) (string, scalar, bool) {
		v, ok := x.(solver.Var)
		if !ok {
			return "", scalar{}, false
		}
		f, ok := strings.CutPrefix(v.Name, "pkt.")
		if !ok {
			return "", scalar{}, false
		}
		if _, known := rawGetter(f); !known {
			return "", scalar{}, false
		}
		cx, err := cp.compile(y)
		if err != nil || !cx.isConst() || cx.c.k == kTuple || cx.c.k == kNil {
			return "", scalar{}, false
		}
		return f, cx.c.scalar, true
	}
	if f, v, ok := try(b.X, b.Y); ok {
		return f, v, ok
	}
	return try(b.Y, b.X)
}
