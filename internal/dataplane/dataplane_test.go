package dataplane_test

import (
	"sync"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

var (
	anMu    sync.Mutex
	anCache = map[string]*core.Analysis{}
)

// analyze synthesizes (and caches) the model of one corpus NF.
func analyze(t testing.TB, name string) *core.Analysis {
	t.Helper()
	anMu.Lock()
	defer anMu.Unlock()
	if an, ok := anCache[name]; ok {
		return an
	}
	nf, err := nfs.Load(name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	an, err := core.Analyze(name, nf.Prog, core.Options{MaxPaths: 4096})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	anCache[name] = an
	return an
}

// fuzzTrace builds a trace that hits both the random packet space and
// the NF's stateful paths (established flows, reverse traffic): 1000+
// random packets per the issue spec, plus structured flow traffic.
func fuzzTrace(name string, seed int64) []netpkt.Packet {
	g := workload.New(seed)
	trace := g.RandomTrace(1000)
	switch name {
	case "lb", "balance", "nat", "mirror":
		trace = append(trace, g.ClientServerTrace("3.3.3.3", 80, 500)...)
	default:
		trace = append(trace, g.FlowTrace(20, 20)...)
	}
	trace = append(trace, g.AdversarialTrace(200)...)
	return trace
}

// TestDifferentialFuzz is the compiled data plane's equivalence gate:
// for every corpus NF, the reference model.Instance and the compiled
// engine process the same trace and must agree on every packet's
// outputs (drop/forward, all packet fields, interfaces, which entry
// fired) and on the end state.
func TestDifferentialFuzz(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			trace := fuzzTrace(name, 42)
			res, err := an.DiffTestCompiled(trace, core.Options{})
			if err != nil {
				t.Fatalf("DiffTestCompiled: %v", err)
			}
			if res.Trials < 1000 {
				t.Fatalf("only %d trials", res.Trials)
			}
			if res.Mismatches != 0 {
				t.Fatalf("%d/%d mismatches; first: %s", res.Mismatches, res.Trials, res.FirstDiff)
			}
		})
	}
}

// TestDifferentialFuzzSeeds re-runs the corpus sweep under extra seeds
// (cheap once the models are cached) to widen the random coverage.
func TestDifferentialFuzzSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{7, 1234} {
		for _, name := range nfs.Names() {
			an := analyze(t, name)
			res, err := an.DiffTestCompiled(fuzzTrace(name, seed), core.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if res.Mismatches != 0 {
				t.Fatalf("%s seed %d: %d mismatches; first: %s", name, seed, res.Mismatches, res.FirstDiff)
			}
		}
	}
}

// TestProcessBatchMatchesProcess checks the batched path is the
// sequential path.
func TestProcessBatchMatchesProcess(t *testing.T) {
	an := analyze(t, "firewall")
	trace := workload.New(9).FlowTrace(10, 10)

	e1, err := an.CompiledEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := an.CompiledEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]dataplane.Output, len(trace))
	if err := e2.ProcessBatch(trace, outs); err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		o, err := e1.Process(&trace[i])
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if diff := diffOutputs(o, &outs[i]); diff != "" {
			t.Fatalf("packet %d: %s", i, diff)
		}
	}
	if s := e2.Stats(); s.Packets != int64(len(trace)) {
		t.Fatalf("batch stats counted %d packets, want %d", s.Packets, len(trace))
	}
}

func diffOutputs(a, b *dataplane.Output) string {
	if a.Dropped != b.Dropped || a.Entry != b.Entry || len(a.Sent) != len(b.Sent) {
		return "outcome mismatch"
	}
	for i := range a.Sent {
		if a.Sent[i].Iface != b.Sent[i].Iface || a.Sent[i].Pkt != b.Sent[i].Pkt {
			return "sent packet mismatch"
		}
	}
	return ""
}

// TestDispatchTree checks the compiler actually lowers exact-match
// predicates into dispatch rather than leaving one flat scan list.
func TestDispatchTree(t *testing.T) {
	an := analyze(t, "snortlite")
	eng, err := an.CompiledEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.TreeDepth() == 0 {
		t.Fatalf("snortlite compiled to a single flat leaf (%d entries)", eng.NumEntries())
	}
	if eng.MaxLeafEntries() >= eng.NumEntries() {
		t.Fatalf("dispatch discharged nothing: max leaf %d of %d entries",
			eng.MaxLeafEntries(), eng.NumEntries())
	}
}

// TestEngineReset checks Reset restores the initial state exactly.
func TestEngineReset(t *testing.T) {
	an := analyze(t, "firewall")
	eng, err := an.CompiledEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.State()
	trace := workload.New(3).FlowTrace(5, 5)
	for i := range trace {
		if _, err := eng.Process(&trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Reset()
	if diff := stateDiff(before, eng.State()); diff != "" {
		t.Fatalf("state after Reset differs: %s", diff)
	}
}
