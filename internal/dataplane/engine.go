package dataplane

import (
	"fmt"

	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// SentPacket is one emitted packet.
type SentPacket struct {
	Pkt   netpkt.Packet
	Iface string
}

// Output is the result of processing one packet. Process returns an
// engine-owned Output that is overwritten by the next call; callers
// that need to retain it must copy. ProcessBatch fills caller-owned
// Outputs, reusing their Sent backing arrays across batches.
type Output struct {
	Sent    []SentPacket
	Dropped bool
	// Entry is the index of the model entry that fired (-1 for the
	// implicit lowest-priority drop), comparable to ProcessTraced.
	Entry int
	// Epoch is the engine generation that processed this packet (see
	// SetEpoch). The serving loop's hot-swap protocol asserts on it:
	// every packet must observe exactly one generation.
	Epoch uint64
}

// Stats counts an engine's traffic. Counters are plain (non-atomic):
// an Engine is single-threaded by design — the sharded engine gives
// each shard its own Engine.
type Stats struct {
	Packets int64
	Drops   int64
	Errors  int64
}

// Engine is a compiled data plane for one synthesized model plus a
// concrete configuration: a decision tree over discriminating packet
// fields whose leaves hold residual predicate lists and fully lowered
// actions. All state lives in a flat scalar slot array and unboxed
// maps; the steady-state per-packet path performs zero allocations.
type Engine struct {
	m *model.Model

	slotNames []string // scalar OIS vars, sorted (slot i = slots[i])
	mapNames  []string // map OIS vars, sorted
	slots     []mval
	maps      []rmap

	initSlots []mval // for Reset
	initMaps  []rmap // for Reset (cloned on use)

	root    *dnode
	entries []*centry // compiled entries, pruned, priority order

	ctx ctx
	out Output

	scratchSlots []rv // evaluate-then-commit staging for scalar updates
	scratchKeys  []mkey
	scratchVals  []rv

	stats Stats
	perf  *perf.Set
	tel   *telemetry.Sink
	epoch uint64
}

// Compile lowers a model and its concrete configuration/initial state
// into an Engine. Configuration values fold into the compiled code (a
// different config needs a recompile — the same trade OpenFlow switches
// make when they install flow tables). An error means some term shape
// has no data-plane lowering; callers should fall back to the
// reference model.Instance.
func Compile(m *model.Model, config, initState map[string]value.Value) (*Engine, error) {
	for _, v := range m.CfgVars {
		if _, ok := config[v]; !ok {
			return nil, fmt.Errorf("dataplane: missing configuration value for %q", v)
		}
	}
	e := &Engine{m: m}

	// State layout: scalars get slots, maps get map indices, both in
	// sorted-name order so the layout is deterministic.
	cp := &compiler{config: config, slotIdx: map[string]int{}, mapIdx: map[string]int{}, lutIdx: map[string]int{}}
	for _, name := range m.OISVars {
		iv, ok := initState[name]
		if !ok {
			return nil, fmt.Errorf("dataplane: missing initial state for %q", name)
		}
		if iv.Kind == value.KindMap {
			cp.mapIdx[name] = len(e.mapNames)
			e.mapNames = append(e.mapNames, name)
			rm, err := rmapOf(iv)
			if err != nil {
				return nil, fmt.Errorf("dataplane: initial %q: %w", name, err)
			}
			e.initMaps = append(e.initMaps, rm)
			continue
		}
		v, err := mvalOf(iv)
		if err != nil {
			return nil, fmt.Errorf("dataplane: initial %q: %w", name, err)
		}
		cp.slotIdx[name] = len(e.slotNames)
		e.slotNames = append(e.slotNames, name)
		e.initSlots = append(e.initSlots, v)
	}

	maxSends, maxSlotUpd, maxMops := 0, 0, 0
	for i := range m.Entries {
		ce, pruned, err := cp.compileEntry(&m.Entries[i], i)
		if err != nil {
			return nil, err
		}
		if pruned {
			continue
		}
		e.entries = append(e.entries, ce)
		if len(ce.sends) > maxSends {
			maxSends = len(ce.sends)
		}
		if len(ce.supd) > maxSlotUpd {
			maxSlotUpd = len(ce.supd)
		}
		if ce.nMops > maxMops {
			maxMops = ce.nMops
		}
	}
	e.root = buildTree(e.entries)

	e.out.Sent = make([]SentPacket, 0, maxSends)
	e.scratchSlots = make([]rv, maxSlotUpd)
	e.scratchKeys = make([]mkey, maxMops)
	e.scratchVals = make([]rv, maxMops)
	// Constant tuples form the arena's persistent prefix; per-packet
	// tuples recycle the tail (extra headroom avoids first-packet
	// growth in the common case).
	e.ctx.tups = make([][maxTuple]scalar, len(cp.constTups), len(cp.constTups)+16)
	copy(e.ctx.tups, cp.constTups)
	e.ctx.nconst = len(cp.constTups)
	e.ctx.luts = make([]lut, len(cp.lutIdx))
	// Telemetry counters are indexed by *original* model entry (pruned
	// entries just never count), matching ProcessTraced coordinates.
	e.tel = telemetry.NewSink(len(m.Entries))
	e.Reset()
	return e, nil
}

// SetPerf attaches a perf set; ProcessBatch and Flush aggregate the
// engine's plain counters into it (one atomic add per batch, keeping
// atomics off the per-packet path).
func (e *Engine) SetPerf(p *perf.Set) { e.perf = p }

// Sink returns the engine's telemetry sink (e.g. to change the latency
// sampling period). Single-writer: see the telemetry package rules.
func (e *Engine) Sink() *telemetry.Sink { return e.tel }

// SetSink replaces the telemetry sink. A nil sink disables telemetry
// entirely (every accounting call becomes a no-op) — meant only for
// measuring the counters' own overhead; production engines keep the
// always-on default.
func (e *Engine) SetSink(s *telemetry.Sink) { e.tel = s }

// Telemetry snapshots the engine's counters, gauging every state
// variable's current size (map entry counts; scalars gauge as 1).
func (e *Engine) Telemetry() telemetry.Snapshot {
	sizes := make(map[string]int, len(e.slotNames)+len(e.mapNames))
	for _, name := range e.slotNames {
		sizes[name] = 1
	}
	for i, name := range e.mapNames {
		sizes[name] = len(e.maps[i])
	}
	return e.tel.Snapshot("compiled", sizes)
}

// Reset restores the initial state (and zeroes the traffic counters and
// telemetry).
func (e *Engine) Reset() {
	e.slots = append(e.slots[:0], e.initSlots...)
	e.maps = e.maps[:0]
	for _, m := range e.initMaps {
		e.maps = append(e.maps, m.clone())
	}
	e.ctx.slots = e.slots
	e.ctx.maps = e.maps
	e.stats = Stats{}
	e.tel.Reset()
}

// SetEpoch tags the engine with a generation number; every Output it
// produces from now on carries it (Output.Epoch). The serving loop's
// swap protocol bumps the epoch at a quiesced batch barrier, so the
// stamp proves per-packet generation consistency. Call only between
// batches — the engine is single-threaded.
func (e *Engine) SetEpoch(v uint64) { e.epoch = v }

// Model returns the compiled model.
func (e *Engine) Model() *model.Model { return e.m }

// NumEntries returns the number of live (non-pruned) compiled entries.
func (e *Engine) NumEntries() int { return len(e.entries) }

// TreeDepth returns the dispatch tree's depth (0 = single leaf).
func (e *Engine) TreeDepth() int { return e.root.depth() }

// MaxLeafEntries returns the longest residual scan list of any leaf.
func (e *Engine) MaxLeafEntries() int { return e.root.maxLeaf() }

// Stats returns the engine's traffic counters.
func (e *Engine) Stats() Stats { return e.stats }

// Flush adds the traffic counters to the attached perf set and zeroes
// them.
func (e *Engine) Flush() {
	if e.perf != nil {
		e.perf.Counter(perf.CDataplanePkts).Add(e.stats.Packets)
		e.perf.Counter(perf.CDataplaneDrops).Add(e.stats.Drops)
	}
	e.stats = Stats{}
}

// Process runs one packet. The returned Output is engine-owned and
// reused by the next call.
func (e *Engine) Process(p *netpkt.Packet) (*Output, error) {
	if err := e.process(p, &e.out); err != nil {
		return nil, err
	}
	return &e.out, nil
}

// ProcessBatch runs pkts in order, writing outs[i] for pkts[i]. It
// stops at the first evaluation error (state up to that packet is
// committed, like a sequential Process loop). len(outs) must be at
// least len(pkts).
func (e *Engine) ProcessBatch(pkts []netpkt.Packet, outs []Output) error {
	if len(outs) < len(pkts) {
		return fmt.Errorf("dataplane: %d outputs for %d packets", len(outs), len(pkts))
	}
	for i := range pkts {
		if err := e.process(&pkts[i], &outs[i]); err != nil {
			return fmt.Errorf("dataplane: packet %d: %w", i, err)
		}
	}
	if e.perf != nil {
		e.perf.Counter(perf.CDataplaneBatches).Inc()
	}
	return nil
}

func (e *Engine) process(p *netpkt.Packet, out *Output) error {
	t0 := e.tel.Start()
	err := e.match(p, out)
	e.tel.Count(t0, out.Entry, out.Dropped, err != nil)
	return err
}

func (e *Engine) match(p *netpkt.Packet, out *Output) error {
	e.stats.Packets++
	out.Epoch = e.epoch
	c := &e.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := range c.luts {
		c.luts[i].valid = false
	}
	out.Sent = out.Sent[:0]

	leaf := e.root.lookup(c)
	for i := range leaf.entries {
		le := &leaf.entries[i]
		matched := true
		for j := range le.preds {
			v := le.preds[j].ex.eval(c)
			if c.err != nil {
				e.stats.Errors++
				return fmt.Errorf("entry %d guard: %w", le.e.idx, c.err)
			}
			if v.k != kBool {
				e.stats.Errors++
				return fmt.Errorf("entry %d guard: condition is %s, want bool", le.e.idx, v.k)
			}
			if v.i == 0 {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		if err := e.fire(le.e, p, out, nil); err != nil {
			e.stats.Errors++
			return err
		}
		if out.Dropped {
			e.stats.Drops++
		}
		return nil
	}
	out.Dropped = true
	out.Entry = -1
	e.stats.Drops++
	return nil
}

// entryAt returns the compiled entry with original model index idx, or
// nil when that entry was pruned under the engine's configuration. Used
// by the sharded engine's hand-off path; cold.
func (e *Engine) entryAt(idx int) *centry {
	for _, ce := range e.entries {
		if ce.idx == idx {
			return ce
		}
	}
	return nil
}

// processEntry evaluates exactly one entry's full guard list and, on a
// match, fires it — the sharded engine's hand-off primitive, where each
// entry is probed on the shard that owns its state. Non-matching probes
// leave stats and telemetry untouched (the packet is counted once, on
// the shard where an entry fires or the implicit drop lands).
func (e *Engine) processEntry(p *netpkt.Packet, ce *centry, out *Output) (bool, error) {
	t0 := e.tel.Start()
	c := &e.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := range c.luts {
		c.luts[i].valid = false
	}
	for j := range ce.preds {
		v := ce.preds[j].ex.eval(c)
		if c.err != nil {
			e.stats.Packets++
			e.stats.Errors++
			e.tel.Count(t0, ce.idx, false, true)
			return false, fmt.Errorf("entry %d guard: %w", ce.idx, c.err)
		}
		if v.k != kBool {
			e.stats.Packets++
			e.stats.Errors++
			e.tel.Count(t0, ce.idx, false, true)
			return false, fmt.Errorf("entry %d guard: condition is %s, want bool", ce.idx, v.k)
		}
		if v.i == 0 {
			return false, nil
		}
	}
	e.stats.Packets++
	out.Epoch = e.epoch
	out.Sent = out.Sent[:0]
	if err := e.fire(ce, p, out, nil); err != nil {
		e.stats.Errors++
		e.tel.Count(t0, ce.idx, false, true)
		return true, err
	}
	if out.Dropped {
		e.stats.Drops++
	}
	e.tel.Count(t0, out.Entry, out.Dropped, false)
	return true, nil
}

// dropNoMatch commits the implicit lowest-priority drop for a hand-off
// packet no entry matched, with the same accounting process would do.
func (e *Engine) dropNoMatch(p *netpkt.Packet, out *Output) {
	t0 := e.tel.Start()
	e.stats.Packets++
	out.Epoch = e.epoch
	out.Sent = out.Sent[:0]
	out.Dropped = true
	out.Entry = -1
	e.stats.Drops++
	e.tel.Count(t0, -1, true, false)
}

// ProcessExplain is Process in provenance mode: it additionally records
// every guard evaluated (with its outcome), the entry that fired, the
// packets sent and the state transitions committed. It scans the
// compiled entries linearly in priority order instead of through the
// dispatch tree — semantically identical (the tree only discharges
// predicates it has already decided) but with the full guard list
// observable. Explain mode allocates freely; it is a debugging surface,
// not a fast path. The returned Output is engine-owned like Process's.
func (e *Engine) ProcessExplain(p *netpkt.Packet) (*Output, *telemetry.PacketTrace, error) {
	tr := &telemetry.PacketTrace{Packet: p.String(), Backend: "compiled", Entry: -1}
	t0 := e.tel.Start()
	out := &e.out
	err := e.explain(p, out, tr)
	e.tel.Count(t0, out.Entry, out.Dropped, err != nil)
	if err != nil {
		tr.Err = err.Error()
		return nil, tr, err
	}
	tr.Entry = out.Entry
	tr.Dropped = out.Dropped
	for i := range out.Sent {
		s := out.Sent[i].Pkt.String()
		if out.Sent[i].Iface != "" {
			s += " via " + out.Sent[i].Iface
		}
		tr.Sent = append(tr.Sent, s)
	}
	return out, tr, nil
}

// explain is the linear-scan twin of match, recording the guard trail.
// Compiled entries hold their full residual predicate lists (only the
// tree's leaves hold discharged ones), so scanning e.entries in order
// evaluates exactly the predicates the reference interpreter would —
// minus the configuration guards folded away at compile time, which are
// constant under the engine's pinned configuration.
func (e *Engine) explain(p *netpkt.Packet, out *Output, tr *telemetry.PacketTrace) error {
	e.stats.Packets++
	out.Epoch = e.epoch
	c := &e.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := range c.luts {
		c.luts[i].valid = false
	}
	out.Sent = out.Sent[:0]

	for _, ce := range e.entries {
		matched := true
		for j := range ce.preds {
			v := ce.preds[j].ex.eval(c)
			if c.err != nil {
				tr.Guards = append(tr.Guards, telemetry.GuardEval{
					Entry: ce.idx, Guard: ce.gtext[j], Outcome: "error: " + c.err.Error()})
				e.stats.Errors++
				return fmt.Errorf("entry %d guard: %w", ce.idx, c.err)
			}
			if v.k != kBool {
				tr.Guards = append(tr.Guards, telemetry.GuardEval{
					Entry: ce.idx, Guard: ce.gtext[j], Outcome: "error: non-bool"})
				e.stats.Errors++
				return fmt.Errorf("entry %d guard: condition is %s, want bool", ce.idx, v.k)
			}
			outcome := "true"
			if v.i == 0 {
				outcome = "false"
				matched = false
			}
			tr.Guards = append(tr.Guards, telemetry.GuardEval{
				Entry: ce.idx, Guard: ce.gtext[j], Outcome: outcome})
			if !matched {
				break
			}
		}
		if !matched {
			continue
		}
		if err := e.fire(ce, p, out, tr); err != nil {
			e.stats.Errors++
			return err
		}
		if out.Dropped {
			e.stats.Drops++
		}
		return nil
	}
	out.Dropped = true
	out.Entry = -1
	e.stats.Drops++
	return nil
}

// fire executes one entry's actions: every send field, interface, and
// update value evaluates against the PRE-state into output/scratch
// buffers; only then do slot and map commits apply — exactly the
// reference interpreter's evaluate-all-then-commit discipline, so an
// error mid-entry leaves the state untouched. tr, when non-nil (explain
// mode only — it allocates), records the committed state transitions.
func (e *Engine) fire(ce *centry, p *netpkt.Packet, out *Output, tr *telemetry.PacketTrace) error {
	c := &e.ctx
	for si := range ce.sends {
		s := &ce.sends[si]
		out.Sent = append(out.Sent, SentPacket{Pkt: *p})
		sp := &out.Sent[len(out.Sent)-1]
		for fi := range s.fields {
			f := &s.fields[fi]
			v := f.ex.eval(c)
			if c.err != nil {
				return fmt.Errorf("entry %d send: %w", ce.idx, c.err)
			}
			f.set(&sp.Pkt, v)
		}
		iv := s.iface.eval(c)
		if c.err != nil {
			return fmt.Errorf("entry %d iface: %w", ce.idx, c.err)
		}
		if iv.k == kStr {
			sp.Iface = iv.s
		} else {
			sp.Iface = ""
		}
	}

	for i := range ce.supd {
		e.scratchSlots[i] = ce.supd[i].ex.eval(c)
		if c.err != nil {
			return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
		}
	}
	si := 0
	for mi := range ce.mupd {
		mu := &ce.mupd[mi]
		for oi := range mu.ops {
			op := &mu.ops[oi]
			kv := op.key.eval(c)
			if c.err != nil {
				return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
			}
			k, err := keyOf(kv, c)
			if err != nil {
				return fmt.Errorf("entry %d update: %w", ce.idx, err)
			}
			e.scratchKeys[si] = k
			if !op.del {
				e.scratchVals[si] = op.val.eval(c)
				if c.err != nil {
					return fmt.Errorf("entry %d update: %w", ce.idx, c.err)
				}
			}
			si++
		}
	}

	// Commit.
	for i := range ce.supd {
		e.slots[ce.supd[i].slot] = c.own(e.scratchSlots[i])
		if tr != nil {
			tr.Changes = append(tr.Changes, telemetry.StateChange{
				Var: e.slotNames[ce.supd[i].slot], Op: "assign",
				Val: e.slots[ce.supd[i].slot].toValue().String()})
		}
	}
	si = 0
	for mi := range ce.mupd {
		mu := &ce.mupd[mi]
		m := e.maps[mu.mi]
		for oi := range mu.ops {
			if mu.ops[oi].del {
				delete(m, e.scratchKeys[si])
				if tr != nil {
					tr.Changes = append(tr.Changes, telemetry.StateChange{
						Var: e.mapNames[mu.mi], Op: "del",
						Key: e.scratchKeys[si].toValue().String()})
				}
			} else {
				m[e.scratchKeys[si]] = c.own(e.scratchVals[si])
				if tr != nil {
					tr.Changes = append(tr.Changes, telemetry.StateChange{
						Var: e.mapNames[mu.mi], Op: "set",
						Key: e.scratchKeys[si].toValue().String(),
						Val: m[e.scratchKeys[si]].toValue().String()})
				}
			}
			si++
		}
	}

	out.Dropped = len(out.Sent) == 0
	out.Entry = ce.idx
	return nil
}

// State exports the engine's current state as boxed values, shaped
// exactly like model.Instance.State() for differential comparison.
func (e *Engine) State() map[string]value.Value {
	out := make(map[string]value.Value, len(e.slotNames)+len(e.mapNames))
	for i, name := range e.slotNames {
		out[name] = e.slots[i].toValue()
	}
	for i, name := range e.mapNames {
		out[name] = e.maps[i].toValue()
	}
	return out
}
