package dataplane

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/netpkt"
	"nfactor/internal/value"
)

// Equiv compares sequential-Engine and Sharded executions of one model.
//
// For purely flow-partitioned models the comparison is exact. Allocators
// break exactness by design: shard s of n hands out init+s*step,
// init+(s+n)*step, ... — the same *set* of values as the sequential
// allocator, assigned to flows in a different order. Rotors likewise
// advance per shard, so a round-robin choice may pick a different (but
// equally valid) config constant. Equivalence is therefore checked
// modulo two renamings, each constrained to stay a renaming:
//
//   - allocator values must be related by a bijection, built up as
//     differing values are observed: once sequential value a is paired
//     with sharded value b, a may never pair with b' nor b with a'.
//     Both must lie in the allocator's arithmetic range
//     (v >= init, (v-init) % step == 0) — a differing pair with only
//     one side in range is a real divergence.
//   - rotor-derived values must both be configuration constants, and —
//     for per-packet outputs — stay consistent per flow: the flow that
//     saw sequential backend a answered by sharded backend b keeps that
//     pairing for the rest of the trace.
//
// Everything else — verdicts, fired entries, interface choices, send
// counts, untainted fields, flow-map key sets — must match exactly.
type Equiv struct {
	cls    *Classification
	allocs []*VarClass
	pool   map[string]bool // canonical forms of config scalar constants

	// allocator bijections, per allocator variable, both directions
	bij map[string]map[int64]int64
	jib map[string]map[int64]int64

	// per-flow rotor pairings, both directions: flowKey+canon(val)
	pairs map[string]string
	sriap map[string]string
}

// NewEquiv builds a comparator from the sharding classification and the
// concrete configuration the engines were compiled with.
func NewEquiv(cls *Classification, config map[string]value.Value) *Equiv {
	e := &Equiv{
		cls:   cls,
		pool:  map[string]bool{},
		bij:   map[string]map[int64]int64{},
		jib:   map[string]map[int64]int64{},
		pairs: map[string]string{},
		sriap: map[string]string{},
	}
	for _, vc := range cls.Vars {
		if vc.Class == ClassAllocator {
			e.allocs = append(e.allocs, vc)
			e.bij[vc.Name] = map[int64]int64{}
			e.jib[vc.Name] = map[int64]int64{}
		}
	}
	for _, v := range config {
		e.addPool(v)
	}
	return e
}

func (e *Equiv) addPool(v value.Value) {
	switch v.Kind {
	case value.KindTuple:
		for _, el := range v.Tuple {
			e.addPool(el)
		}
	case value.KindList:
		for _, el := range v.List.Elems {
			e.addPool(el)
		}
	case value.KindMap:
		for _, k := range v.Map.Keys() {
			e.addPool(k)
			if mv, ok, _ := v.Map.Get(k); ok {
				e.addPool(mv)
			}
		}
	default:
		e.pool[canon(v)] = true
	}
}

func canon(v value.Value) string { return v.String() }

// FlowKey canonicalizes a packet to its undirected flow identity: the
// sorted multiset of its addresses and ports. Forward and reverse
// packets of one connection share a key, which is what pins a rotor
// choice to a connection.
func FlowKey(p *netpkt.Packet) string {
	vals := []string{
		"s" + p.SrcIP, "s" + p.DstIP,
		fmt.Sprintf("i%d", p.SrcPort), fmt.Sprintf("i%d", p.DstPort),
	}
	sort.Strings(vals)
	return strings.Join(vals, "|")
}

// findAlloc returns the allocator whose arithmetic range contains v —
// the tightest (largest init) when ranges nest.
func (e *Equiv) findAlloc(v int64) *VarClass {
	var best *VarClass
	for _, a := range e.allocs {
		if v >= a.Init && (v-a.Init)%a.Step == 0 {
			if best == nil || a.Init > best.Init {
				best = a
			}
		}
	}
	return best
}

// equalMod relates one sequential value to one sharded value. flowKey
// scopes rotor pairings; pass "" for end-state comparison, where
// per-flow consistency was already enforced packet by packet.
func (e *Equiv) equalMod(flowKey string, a, b value.Value) string {
	if value.Equal(a, b) {
		return ""
	}
	if a.Kind == value.KindTuple && b.Kind == value.KindTuple && len(a.Tuple) == len(b.Tuple) {
		for i := range a.Tuple {
			if diff := e.equalMod(flowKey, a.Tuple[i], b.Tuple[i]); diff != "" {
				return fmt.Sprintf("component %d: %s", i, diff)
			}
		}
		return ""
	}
	if a.Kind == value.KindInt && b.Kind == value.KindInt {
		fa, fb := e.findAlloc(a.I), e.findAlloc(b.I)
		if fa != nil && fa == fb {
			if prev, ok := e.bij[fa.Name][a.I]; ok && prev != b.I {
				return fmt.Sprintf("allocator %s renaming is not a function: sequential %d was paired with sharded %d, now %d", fa.Name, a.I, prev, b.I)
			}
			if prev, ok := e.jib[fa.Name][b.I]; ok && prev != a.I {
				return fmt.Sprintf("allocator %s renaming is not injective: sharded %d was paired with sequential %d, now %d", fa.Name, b.I, prev, a.I)
			}
			e.bij[fa.Name][a.I] = b.I
			e.jib[fa.Name][b.I] = a.I
			return ""
		}
		if fa != nil || fb != nil {
			return fmt.Sprintf("%s vs %s: only one side is an allocated value", a, b)
		}
	}
	ca, cb := canon(a), canon(b)
	if e.pool[ca] && e.pool[cb] {
		if flowKey == "" {
			return ""
		}
		ka, kb := flowKey+"\x00"+ca, flowKey+"\x00"+cb
		if prev, ok := e.pairs[ka]; ok && prev != cb {
			return fmt.Sprintf("rotor choice flapped: this flow saw sequential %s answered by sharded %s, now %s", ca, prev, cb)
		}
		if prev, ok := e.sriap[kb]; ok && prev != ca {
			return fmt.Sprintf("rotor choice flapped: sharded %s answered sequential %s for this flow, now %s", cb, prev, ca)
		}
		e.pairs[ka] = cb
		e.sriap[kb] = ca
		return ""
	}
	return fmt.Sprintf("%s vs %s", a, b)
}

// CompareOutputs relates one packet's sequential output to its sharded
// output. flowKey must identify the logical connection the packet
// belongs to (FlowKey of the stimulus that opened it); "" disables the
// per-flow rotor consistency check.
func (e *Equiv) CompareOutputs(flowKey string, a, b *Output) string {
	if a.Dropped != b.Dropped {
		return fmt.Sprintf("drop mismatch: sequential=%v sharded=%v", a.Dropped, b.Dropped)
	}
	if a.Entry != b.Entry {
		return fmt.Sprintf("fired entry mismatch: sequential=%d sharded=%d", a.Entry, b.Entry)
	}
	if len(a.Sent) != len(b.Sent) {
		return fmt.Sprintf("send count mismatch: sequential=%d sharded=%d", len(a.Sent), len(b.Sent))
	}
	for i := range a.Sent {
		if a.Sent[i].Iface != b.Sent[i].Iface {
			return fmt.Sprintf("send %d iface mismatch: %q vs %q", i, a.Sent[i].Iface, b.Sent[i].Iface)
		}
		if diff := e.comparePkts(flowKey, &a.Sent[i].Pkt, &b.Sent[i].Pkt); diff != "" {
			return fmt.Sprintf("send %d: %s", i, diff)
		}
	}
	return ""
}

func (e *Equiv) comparePkts(flowKey string, a, b *netpkt.Packet) string {
	fields := []struct {
		name string
		av   value.Value
		bv   value.Value
	}{
		{netpkt.FieldSrcIP, value.Str(a.SrcIP), value.Str(b.SrcIP)},
		{netpkt.FieldDstIP, value.Str(a.DstIP), value.Str(b.DstIP)},
		{netpkt.FieldSrcPort, value.Int(int64(a.SrcPort)), value.Int(int64(b.SrcPort))},
		{netpkt.FieldDstPort, value.Int(int64(a.DstPort)), value.Int(int64(b.DstPort))},
		{netpkt.FieldProto, value.Str(a.Proto), value.Str(b.Proto)},
		{netpkt.FieldFlags, value.Str(a.Flags), value.Str(b.Flags)},
		{netpkt.FieldTTL, value.Int(int64(a.TTL)), value.Int(int64(b.TTL))},
		{netpkt.FieldLength, value.Int(int64(a.Length)), value.Int(int64(b.Length))},
		{netpkt.FieldPayload, value.Str(a.Payload), value.Str(b.Payload)},
		{netpkt.FieldInIface, value.Str(a.InIface), value.Str(b.InIface)},
	}
	for _, f := range fields {
		if diff := e.equalMod(flowKey, f.av, f.bv); diff != "" {
			return fmt.Sprintf("field %s: %s", f.name, diff)
		}
	}
	return ""
}

// CompareStates relates the sequential end state to the *merged*
// sharded end state (Sharded.State). Scalars must match exactly — the
// merge reconstructs the sequential allocator and rotor positions.
// Flow-map key sets match exactly with values compared modulo the
// renamings; owned-map entries are matched by their (untainted) values,
// then their allocator-valued keys must respect the bijection.
func (e *Equiv) CompareStates(a, b map[string]value.Value) string {
	if len(a) != len(b) {
		return fmt.Sprintf("state variable count mismatch: sequential=%d sharded=%d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Sprintf("sharded state is missing %q", name)
		}
		vc := e.cls.Vars[name]
		if vc == nil || vc.Class == ClassFrozen || vc.Class == ClassReplicaMap ||
			vc.Class == ClassAllocator || vc.Class == ClassRotor {
			if !value.Equal(av, bv) {
				return fmt.Sprintf("state %q mismatch:\n  sequential: %s\n  sharded:    %s", name, av, bv)
			}
			continue
		}
		var diff string
		switch vc.Class {
		case ClassFlowMap:
			diff = e.compareFlowMap(av, bv)
		case ClassOwnedMap:
			diff = e.compareOwnedMap(av, bv)
		}
		if diff != "" {
			return fmt.Sprintf("state %q: %s", name, diff)
		}
	}
	return ""
}

func (e *Equiv) compareFlowMap(a, b value.Value) string {
	ak, bk := a.Map.Keys(), b.Map.Keys()
	if len(ak) != len(bk) {
		return fmt.Sprintf("size mismatch: sequential=%d sharded=%d", len(ak), len(bk))
	}
	for _, k := range ak {
		av, _, _ := a.Map.Get(k)
		bv, ok, _ := b.Map.Get(k)
		if !ok {
			return fmt.Sprintf("sharded side is missing key %s", k)
		}
		if diff := e.equalMod("", av, bv); diff != "" {
			return fmt.Sprintf("key %s: %s", k, diff)
		}
	}
	return ""
}

func (e *Equiv) compareOwnedMap(a, b value.Value) string {
	ak, bk := a.Map.Keys(), b.Map.Keys()
	if len(ak) != len(bk) {
		return fmt.Sprintf("size mismatch: sequential=%d sharded=%d", len(ak), len(bk))
	}
	// Keys are allocator-renamed, values are not: match entries by
	// value, then hold the keys to the bijection.
	byVal := map[string][]value.Value{}
	for _, k := range bk {
		bv, _, _ := b.Map.Get(k)
		byVal[canon(bv)] = append(byVal[canon(bv)], k)
	}
	for _, k := range ak {
		av, _, _ := a.Map.Get(k)
		cands := byVal[canon(av)]
		if len(cands) == 0 {
			return fmt.Sprintf("no sharded entry has value %s (sequential key %s)", av, k)
		}
		if len(cands) > 1 {
			return fmt.Sprintf("%d sharded entries share value %s; cannot match keys", len(cands), av)
		}
		if diff := e.equalMod("", k, cands[0]); diff != "" {
			return fmt.Sprintf("keys for value %s: %s", av, diff)
		}
	}
	return ""
}
