package dataplane

import (
	"fmt"
	"sync"

	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// Generalized flow-partitioned concurrency. Classify (classify.go)
// assigns every OIS variable a sharding lowering; NewSharded then builds
// one single-threaded Engine per shard over a per-shard *specialized*
// model:
//
//   - Flow maps stay shard-local. The shard function hashes the *sorted
//     values* of each packet's demanded key fields, so a flow and its
//     reverse land on the same shard no matter which field names an
//     entry reads them through.
//   - Replica maps and frozen scalars are copied into every shard.
//   - Allocators are specialized: shard s of n starts at init + s*step
//     and bumps by n*step, so the shards allocate from disjoint
//     interleaved ranges whose union is exactly the sequential
//     allocator's output sequence — no locks, no reconciliation, and
//     the allocated value itself encodes its owner shard:
//     owner(v) = ((v - init) / step) mod n.
//   - Owned maps (keyed by allocator values) stay shard-local too:
//     writes key by the shard's own allocator, and reads — return
//     traffic keyed by an allocated port — route to owner(field).
//     Retired entries (pre-populated keys before the allocator's seed,
//     e.g. state carried over a generation swap) are frozen: they
//     replicate to every shard and answer reads wherever they route.
//
// The router decides each packet's shard from the entries' *stateless*
// guards alone, before any state is touched: the first statelessly
// satisfied entry with a routing demand names the shard. Classify's
// coherence check proves this sound per model — any two entries that
// could both be stateless-satisfied by one packet agree on the demand —
// and marks the (corpus-absent) exceptions ambiguous; ambiguous packets
// act as batch barriers and execute serially through the hand-off path,
// probing each entry on the shard that owns its state.
//
// Equivalence with the sequential Engine is exact for purely
// flow-partitioned models, and exact modulo allocator-value renaming and
// rotor choice otherwise (see equiv.go and core.DiffTestSharded); the
// merged end state in State() reconstructs the sequential scalar values
// exactly from the per-shard positions.

// demandProg is a compiled routing demand.
type demandProg struct {
	kind     demandKind
	fields   []string                      // demandFlow: sorted key-field names
	getters  []func(*netpkt.Packet) scalar // demandFlow: key-field readers
	ownerGet func(*netpkt.Packet) scalar   // demandOwner: allocator-valued field
	owner    string                        // demandOwner: field name
	init     int64
	step     int64
}

// routeStep is one router decision: an entry's compiled stateless guards
// plus its demand.
type routeStep struct {
	preds []cexpr
	d     demandProg
	amb   bool
}

// router routes packets to shards by evaluating stateless guards in
// priority order.
type router struct {
	n       int
	uniform *demandProg // every demanding entry agrees: skip the guard scan
	steps   []routeStep
	dfl     demandProg // full-tuple hash for packets no demanding entry claims
	ctx     ctx
}

// Sharded runs one specialized Engine per shard. ProcessBatch fans each
// batch out across the shards and is the only concurrent entry point;
// Process routes sequentially (useful for equivalence checks).
type Sharded struct {
	cls     *Classification
	engines []*Engine
	route   router
	// planProgs[i] is the demand program of cls.plans[i], for the
	// hand-off path.
	planProgs []demandProg

	// per-batch scratch, reused
	shardOf  []int32
	idxs     [][]int
	errs     []shardErr
	out      Output
	perf     *perf.Set
	handoffs int64
}

type shardErr struct {
	at  int
	err error
}

// NewSharded classifies the model's state and compiles n shard engines
// (n <= 1 is pinned to 1), each over the shard's specialized model. An
// error means some state variable has no sharding lowering
// (BlockingVar names it); the model still runs on a single Engine.
func NewSharded(m *model.Model, config, initState map[string]value.Value, n int) (*Sharded, error) {
	cls, err := Classify(m, config, initState)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	s := &Sharded{cls: cls}
	for i := 0; i < n; i++ {
		ms, st := specialize(m, cls, i, n, initState)
		e, err := Compile(ms, config, st)
		if err != nil {
			return nil, err
		}
		s.engines = append(s.engines, e)
	}
	if err := s.buildRouter(m, config, n); err != nil {
		return nil, err
	}
	s.idxs = make([][]int, n)
	s.errs = make([]shardErr, n)
	return s, nil
}

// specialize rewrites the model and initial state for shard s of n:
// every allocator starts at init + s*step and bumps by n*step. With no
// allocators (or a single shard) the model is shared untouched.
func specialize(m *model.Model, cls *Classification, s, n int, initState map[string]value.Value) (*model.Model, map[string]value.Value) {
	hasAlloc := false
	for _, vc := range cls.Vars {
		if vc.Class == ClassAllocator {
			hasAlloc = true
			break
		}
	}
	if !hasAlloc || n == 1 {
		return m, initState
	}
	ms := *m
	ms.Entries = append([]model.Entry{}, m.Entries...)
	for i := range ms.Entries {
		e := &ms.Entries[i]
		var ups []model.Assign
		changed := false
		for _, u := range e.Updates {
			if vc := cls.Vars[u.Name]; vc != nil && vc.Class == ClassAllocator {
				u.Val = solver.Bin{
					Op: "+",
					X:  solver.Var{Name: u.Name + "@0"},
					Y:  solver.Const{V: value.Int(vc.Step * int64(n))},
				}
				changed = true
			}
			ups = append(ups, u)
		}
		if changed {
			e.Updates = ups
		}
	}
	st := make(map[string]value.Value, len(initState))
	for k, v := range initState {
		st[k] = v
	}
	for name, vc := range cls.Vars {
		if vc.Class == ClassAllocator {
			st[name] = value.Int(vc.Init + int64(s)*vc.Step)
		}
	}
	return &ms, st
}

// buildRouter compiles the stateless guard programs and demand programs.
func (s *Sharded) buildRouter(m *model.Model, config map[string]value.Value, n int) error {
	r := &s.route
	r.n = n
	cp := &compiler{config: config, slotIdx: map[string]int{}, mapIdx: map[string]int{}, lutIdx: map[string]int{}}

	var err error
	r.dfl, err = s.flowProg([]string{netpkt.FieldSrcIP, netpkt.FieldDstIP, netpkt.FieldSrcPort, netpkt.FieldDstPort})
	if err != nil {
		return err
	}

	s.planProgs = make([]demandProg, len(s.cls.plans))
	for i := range s.cls.plans {
		pl := &s.cls.plans[i]
		s.planProgs[i], err = s.demandProgOf(pl.d)
		if err != nil {
			return err
		}
		if pl.d.kind == demandNone && !pl.ambiguous {
			continue
		}
		st := routeStep{d: s.planProgs[i], amb: pl.ambiguous}
		for _, g := range m.Entries[pl.idx].FlowMatch {
			ex, err := cp.compile(g)
			if err != nil {
				return err
			}
			if ex.isConst() {
				continue // const-true under this config (false would have pruned)
			}
			st.preds = append(st.preds, ex)
		}
		r.steps = append(r.steps, st)
	}

	// Uniform fast path: every demanding entry routes identically, so
	// the guard scan is unnecessary — the original single-hash behavior
	// for purely flow-keyed models.
	uniform := true
	for i := 1; i < len(r.steps); i++ {
		if r.steps[i].amb || r.steps[0].amb || !sameProg(&r.steps[i].d, &r.steps[0].d) {
			uniform = false
			break
		}
	}
	if uniform {
		if len(r.steps) == 0 {
			r.uniform = &r.dfl
		} else {
			r.uniform = &r.steps[0].d
		}
	}

	r.ctx.tups = make([][maxTuple]scalar, len(cp.constTups), len(cp.constTups)+16)
	copy(r.ctx.tups, cp.constTups)
	r.ctx.nconst = len(cp.constTups)
	r.ctx.luts = make([]lut, len(cp.lutIdx))
	return nil
}

func sameProg(a, b *demandProg) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case demandOwner:
		return a.owner == b.owner && a.init == b.init && a.step == b.step
	case demandFlow:
		if len(a.fields) != len(b.fields) {
			return false
		}
		for i := range a.fields {
			if a.fields[i] != b.fields[i] {
				return false
			}
		}
	}
	return true
}

func (s *Sharded) flowProg(fields []string) (demandProg, error) {
	d := demandProg{kind: demandFlow, fields: fields}
	if len(fields) > 8 {
		return d, fmt.Errorf("dataplane: %d partition fields exceed the shard hash width", len(fields))
	}
	for _, f := range fields {
		g, ok := rawGetter(f)
		if !ok {
			return d, fmt.Errorf("dataplane: unknown partition field %q", f)
		}
		d.getters = append(d.getters, g)
	}
	return d, nil
}

func (s *Sharded) demandProgOf(d demand) (demandProg, error) {
	switch d.kind {
	case demandFlow:
		return s.flowProg(d.fields)
	case demandOwner:
		g, ok := rawGetter(d.owner)
		if !ok {
			return demandProg{}, fmt.Errorf("dataplane: unknown owner field %q", d.owner)
		}
		vc := s.cls.Vars[d.alloc]
		return demandProg{kind: demandOwner, ownerGet: g, owner: d.owner, init: vc.Init, step: vc.Step}, nil
	}
	return demandProg{kind: demandNone}, nil
}

// route returns the packet's shard, or ambiguous=true when the shard
// cannot be decided statelessly (hand-off path).
func (r *router) route(p *netpkt.Packet) (int, bool) {
	if r.uniform != nil {
		return r.evalDemand(r.uniform, p), false
	}
	c := &r.ctx
	c.pkt = p
	c.err = nil
	c.tups = c.tups[:c.nconst]
	for i := range c.luts {
		c.luts[i].valid = false
	}
	for i := range r.steps {
		st := &r.steps[i]
		sat := true
		for j := range st.preds {
			v := st.preds[j].eval(c)
			if c.err != nil || v.k != kBool {
				// A stateless guard that errors at runtime errors
				// identically on every shard; route by the default hash
				// and let the owning engine surface it.
				c.err = nil
				sat = false
				break
			}
			if v.i == 0 {
				sat = false
				break
			}
		}
		if sat {
			if st.amb {
				return 0, true
			}
			return r.evalDemand(&st.d, p), false
		}
	}
	return r.evalFlow(&r.dfl, p), false
}

func (r *router) evalDemand(d *demandProg, p *netpkt.Packet) int {
	if d.kind == demandOwner {
		v := d.ownerGet(p)
		if v.k == kInt {
			delta := v.i - d.init
			if delta >= 0 && delta%d.step == 0 {
				return int((delta / d.step) % int64(r.n))
			}
		}
		// Not a value any shard's allocator will hand out: either the
		// lookup misses wherever it runs, or it hits a retired
		// (pre-populated) entry, which is frozen and replicated to every
		// shard. Both are correct anywhere; spread by the default hash.
		return r.evalFlow(&r.dfl, p)
	}
	if d.kind == demandNone {
		return r.evalFlow(&r.dfl, p)
	}
	return r.evalFlow(d, p)
}

// evalFlow hashes the sorted values of the demanded fields, so every
// permutation of the same value multiset — forward and reverse flow
// keys, whichever field names carry them — maps to the same shard.
func (r *router) evalFlow(d *demandProg, p *netpkt.Packet) int {
	var vals [8]scalar
	n := len(d.getters)
	for i, g := range d.getters {
		vals[i] = g(p)
	}
	for i := 1; i < n; i++ { // insertion sort, n <= 8
		for j := i; j > 0 && scalarLess(vals[j], vals[j-1]); j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	h := fnv64(fnvOffset64)
	for i := 0; i < n; i++ {
		_ = h.wscalar(vals[i])
	}
	return int(uint64(h) % uint64(r.n))
}

// SetPerf attaches a perf set to every shard.
func (s *Sharded) SetPerf(p *perf.Set) {
	s.perf = p
	for _, e := range s.engines {
		e.SetPerf(p)
	}
	p.Counter(perf.CDataplaneShards).Add(int64(len(s.engines)))
}

// SetEpoch tags every shard engine with a generation number (see
// Engine.SetEpoch). Call only between batches — ProcessBatch must have
// returned, so all shard goroutines are quiesced at the barrier.
func (s *Sharded) SetEpoch(v uint64) {
	for _, e := range s.engines {
		e.SetEpoch(v)
	}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.engines) }

// Class returns the state classification the sharding was derived from.
func (s *Sharded) Class() *Classification { return s.cls }

// Handoffs counts the packets that took the serial hand-off path (zero
// for every corpus NF: their shard is always statelessly decidable).
func (s *Sharded) Handoffs() int64 { return s.handoffs }

// Process routes one packet to its owning shard (sequential mode).
func (s *Sharded) Process(p *netpkt.Packet) (*Output, error) {
	sh, amb := s.route.route(p)
	if amb {
		s.handoffs++
		if err := s.resolveHandoff(p, &s.out); err != nil {
			return nil, err
		}
		return &s.out, nil
	}
	return s.engines[sh].Process(p)
}

// ProcessBatch partitions pkts by the router and runs the shards
// concurrently, preserving per-shard packet order; outs[i] receives
// pkts[i]'s output. Ambiguous packets are barriers: the batch runs in
// segments around them, and they execute serially in between. On an
// evaluation error the owning shard stops (its earlier packets stay
// committed, like a sequential loop) and the error with the smallest
// packet index is returned.
func (s *Sharded) ProcessBatch(pkts []netpkt.Packet, outs []Output) error {
	if len(outs) < len(pkts) {
		return fmt.Errorf("dataplane: %d outputs for %d packets", len(outs), len(pkts))
	}
	if cap(s.shardOf) < len(pkts) {
		s.shardOf = make([]int32, len(pkts))
	}
	s.shardOf = s.shardOf[:len(pkts)]
	amb := false
	for i := range pkts {
		sh, a := s.route.route(&pkts[i])
		if a {
			s.shardOf[i] = -1
			amb = true
		} else {
			s.shardOf[i] = int32(sh)
		}
	}
	if !amb {
		if err := s.runSegment(pkts, outs, 0, len(pkts)); err != nil {
			return err
		}
	} else {
		lo := 0
		for i := 0; i <= len(pkts); i++ {
			if i < len(pkts) && s.shardOf[i] >= 0 {
				continue
			}
			if err := s.runSegment(pkts, outs, lo, i); err != nil {
				return err
			}
			if i < len(pkts) {
				s.handoffs++
				if err := s.resolveHandoff(&pkts[i], &outs[i]); err != nil {
					return fmt.Errorf("dataplane: packet %d: %w", i, err)
				}
			}
			lo = i + 1
		}
	}
	if s.perf != nil {
		s.perf.Counter(perf.CDataplaneBatches).Inc()
	}
	return nil
}

// runSegment fans pkts[lo:hi) out to their shards concurrently.
func (s *Sharded) runSegment(pkts []netpkt.Packet, outs []Output, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	for i := range s.idxs {
		s.idxs[i] = s.idxs[i][:0]
	}
	for i := lo; i < hi; i++ {
		sh := s.shardOf[i]
		s.idxs[sh] = append(s.idxs[sh], i)
	}
	var wg sync.WaitGroup
	for sh := range s.engines {
		if len(s.idxs[sh]) == 0 {
			s.errs[sh] = shardErr{at: -1}
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			e := s.engines[sh]
			s.errs[sh] = shardErr{at: -1}
			for _, i := range s.idxs[sh] {
				if err := e.process(&pkts[i], &outs[i]); err != nil {
					s.errs[sh] = shardErr{at: i, err: err}
					return
				}
			}
		}(sh)
	}
	wg.Wait()

	first := shardErr{at: -1}
	for sh := range s.errs {
		se := s.errs[sh]
		if se.err != nil && (first.err == nil || se.at < first.at) {
			first = se
		}
	}
	if first.err != nil {
		return fmt.Errorf("dataplane: packet %d: %w", first.at, first.err)
	}
	return nil
}

// resolveHandoff executes one routing-ambiguous packet serially: probe
// the live entries in priority order, each on the shard whose state it
// would read, and fire the first match there. The shards are idle
// between segments, so this is race-free. It is the completeness story:
// every model that classifies constructs a Sharded engine, with
// ambiguous packets paying serialization instead of failing
// construction.
func (s *Sharded) resolveHandoff(p *netpkt.Packet, out *Output) error {
	for i := range s.cls.plans {
		pl := &s.cls.plans[i]
		eng := s.engines[s.route.evalDemand(&s.planProgs[i], p)]
		ce := eng.entryAt(pl.idx)
		if ce == nil {
			continue
		}
		matched, err := eng.processEntry(p, ce, out)
		if err != nil {
			return err
		}
		if matched {
			return nil
		}
	}
	s.engines[s.route.evalFlow(&s.route.dfl, p)].dropNoMatch(p, out)
	return nil
}

// State merges the shard states back into the sequential view:
//   - flow and owned maps union (their key spaces are disjoint across
//     shards; for pre-populated flow maps the key's owner shard wins),
//   - allocators reconstruct the sequential position exactly — each
//     shard's offset into its interleaved range counts its allocations,
//     and the sequential allocator advanced once per allocation,
//   - rotors reconstruct the sequential position exactly the same way,
//     mod the cycle length,
//   - replicas report shard 0's (identical everywhere).
func (s *Sharded) State() map[string]value.Value {
	states := make([]map[string]value.Value, len(s.engines))
	for i := range s.engines {
		states[i] = s.engines[i].State()
	}
	return mergeShardStates(s.cls, states)
}

// mergeShardStates reconstructs the sequential-engine state from the
// per-shard states, inverting each classification's lowering. states[0]
// is reused as the output. Shared with ShardedChain (per stage).
func mergeShardStates(cls *Classification, states []map[string]value.Value) map[string]value.Value {
	out := states[0]
	if len(states) == 1 {
		return out
	}
	for name, vc := range cls.Vars {
		switch vc.Class {
		case ClassAllocator, ClassRotor:
			vals := make([]int64, len(states))
			for i := range states {
				vals[i] = states[i][name].I
			}
			if vc.Class == ClassAllocator {
				out[name] = value.Int(mergeAllocatorVals(vc, vals))
			} else {
				out[name] = value.Int(mergeRotorVals(vc, vals))
			}
		case ClassFrozen, ClassReplicaMap:
			// shard 0's copy, already in out.
		default: // flow and owned maps
			dst := out[name]
			for i := 1; i < len(states); i++ {
				v := states[i][name]
				for _, k := range v.Map.Keys() {
					val, _, _ := v.Map.Get(k)
					if _, present, _ := dst.Map.Get(k); present && ownerOfKey(k, len(states)) != i {
						continue
					}
					_ = dst.Map.Set(k, val)
				}
			}
		}
	}
	return out
}

// ownerOfKey replays the flow hash on a boxed map key's components: the
// shard whose traffic can reach this key. Only consulted for keys
// present on several shards (pre-populated flow maps).
func ownerOfKey(k value.Value, n int) int {
	var vals []scalar
	if k.Kind == value.KindTuple {
		for _, e := range k.Tuple {
			sv, err := scalarOf(e)
			if err != nil {
				return 0
			}
			vals = append(vals, sv)
		}
	} else {
		sv, err := scalarOf(k)
		if err != nil {
			return 0
		}
		vals = append(vals, sv)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && scalarLess(vals[j], vals[j-1]); j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	h := fnv64(fnvOffset64)
	for i := range vals {
		_ = h.wscalar(vals[i])
	}
	return int(uint64(h) % uint64(n))
}

// ProcessExplain routes one packet to its owning shard in provenance
// mode (see Engine.ProcessExplain). Ambiguous packets report their
// hand-off resolution without a guard trail.
func (s *Sharded) ProcessExplain(p *netpkt.Packet) (*Output, *telemetry.PacketTrace, error) {
	sh, amb := s.route.route(p)
	if amb {
		s.handoffs++
		tr := &telemetry.PacketTrace{Packet: p.String(), Backend: "sharded", Entry: -1}
		if err := s.resolveHandoff(p, &s.out); err != nil {
			tr.Err = err.Error()
			return nil, tr, err
		}
		tr.Entry = s.out.Entry
		tr.Dropped = s.out.Dropped
		return &s.out, tr, nil
	}
	out, tr, err := s.engines[sh].ProcessExplain(p)
	if tr != nil {
		tr.Backend = "sharded"
	}
	return out, tr, err
}

// Telemetry merges the per-shard telemetry sinks on read: verdict and
// entry counters sum, latency histograms add, and flow/owned map sizes
// sum (their shard key spaces are disjoint). Scalar and replica gauges
// are per-shard copies, not partitions, so they report shard 0's value
// instead of a meaningless sum. Each shard's sink is written lock-free
// by its own goroutine; like State(), call this between batches, not
// mid-flight.
func (s *Sharded) Telemetry() telemetry.Snapshot {
	first := s.engines[0].Telemetry()
	snap := first
	for _, e := range s.engines[1:] {
		snap = snap.Merge(e.Telemetry())
	}
	for name, vc := range s.cls.Vars {
		switch vc.Class {
		case ClassAllocator, ClassRotor, ClassFrozen, ClassReplicaMap:
			snap.StateSizes[name] = first.StateSizes[name]
		}
	}
	snap.Backend = "sharded"
	return snap
}

// Stats sums the shard counters.
func (s *Sharded) Stats() Stats {
	var t Stats
	for _, e := range s.engines {
		st := e.Stats()
		t.Packets += st.Packets
		t.Drops += st.Drops
		t.Errors += st.Errors
	}
	return t
}

// Reset restores every shard to the initial state.
func (s *Sharded) Reset() {
	for _, e := range s.engines {
		e.Reset()
	}
	s.handoffs = 0
}
