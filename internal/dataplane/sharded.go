package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// Flow-partitioned concurrency. A model qualifies when its entire
// mutable state is map-shaped and every state-map access is keyed by
// packet fields alone; then the key space partitions cleanly and each
// partition can run on its own single-threaded Engine. The shard
// function hashes the *sorted* values of the key fields, so a flow and
// its reverse (the NF reading `(dip, dport, sip, sport)` for return
// traffic) land on the same shard: equal keys imply equal value
// multisets imply equal shards, which is exactly the property that
// makes per-shard sequential execution equivalent to a global
// sequential run.

// PartitionFields reports the packet fields every state-map key is
// built from, or an error describing why the model's state cannot be
// flow-partitioned (scalar state, state-derived keys, differing key
// shapes, or pre-populated initial maps).
func PartitionFields(m *model.Model, initState map[string]value.Value) ([]string, error) {
	stateMaps := map[string]bool{}
	for _, name := range m.OISVars {
		iv, ok := initState[name]
		if !ok {
			return nil, fmt.Errorf("dataplane: missing initial state for %q", name)
		}
		if iv.Kind != value.KindMap {
			return nil, fmt.Errorf("dataplane: scalar state %q is not flow-partitionable", name)
		}
		if iv.Map.Len() != 0 {
			return nil, fmt.Errorf("dataplane: pre-populated map %q defeats shard-local state", name)
		}
		stateMaps[name] = true
	}

	var shape []string
	check := func(k solver.Term) error {
		var fields []string
		for _, v := range solver.Vars(k) {
			f, ok := strings.CutPrefix(v, "pkt.")
			if !ok {
				return fmt.Errorf("dataplane: state-map key reads %q (not a packet field)", v)
			}
			fields = append(fields, f)
		}
		if len(fields) == 0 {
			return fmt.Errorf("dataplane: constant state-map key")
		}
		sort.Strings(fields)
		if shape == nil {
			shape = fields
			return nil
		}
		if len(fields) != len(shape) {
			return fmt.Errorf("dataplane: key shapes differ: %v vs %v", shape, fields)
		}
		for i := range fields {
			if fields[i] != shape[i] {
				return fmt.Errorf("dataplane: key shapes differ: %v vs %v", shape, fields)
			}
		}
		return nil
	}

	var walk func(t solver.Term) error
	walk = func(t solver.Term) error {
		switch x := t.(type) {
		case solver.Bin:
			if err := walk(x.X); err != nil {
				return err
			}
			return walk(x.Y)
		case solver.Un:
			return walk(x.X)
		case solver.Call:
			for _, a := range x.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		case solver.Tuple:
			for _, e := range x.Elems {
				if err := walk(e); err != nil {
					return err
				}
			}
			return nil
		case solver.Index:
			if err := walk(x.X); err != nil {
				return err
			}
			return walk(x.I)
		case solver.Select:
			if mv, ok := x.M.(solver.MapVar); ok && stateMaps[strings.TrimSuffix(mv.Name, "@0")] {
				if err := check(x.K); err != nil {
					return err
				}
			} else if err := walk(x.M); err != nil {
				return err
			}
			return walk(x.K)
		case solver.In:
			if mv, ok := x.M.(solver.MapVar); ok && stateMaps[strings.TrimSuffix(mv.Name, "@0")] {
				if err := check(x.K); err != nil {
					return err
				}
			} else if err := walk(x.M); err != nil {
				return err
			}
			return walk(x.K)
		case solver.Store:
			if _, ok := x.M.(solver.MapVar); !ok {
				if err := walk(x.M); err != nil {
					return err
				}
			}
			if err := check(x.K); err != nil {
				return err
			}
			if err := walk(x.K); err != nil {
				return err
			}
			return walk(x.V)
		case solver.Del:
			if _, ok := x.M.(solver.MapVar); !ok {
				if err := walk(x.M); err != nil {
					return err
				}
			}
			if err := check(x.K); err != nil {
				return err
			}
			return walk(x.K)
		default:
			return nil
		}
	}

	for i := range m.Entries {
		e := &m.Entries[i]
		for _, g := range e.Guard() {
			if err := walk(g); err != nil {
				return nil, err
			}
		}
		for _, a := range e.Sends {
			for _, f := range a.FieldNames() {
				if err := walk(a.Fields[f]); err != nil {
					return nil, err
				}
			}
			if err := walk(a.Iface); err != nil {
				return nil, err
			}
		}
		for _, u := range e.Updates {
			if err := walk(u.Val); err != nil {
				return nil, err
			}
		}
	}
	if shape == nil {
		return nil, fmt.Errorf("dataplane: model has no state-map accesses to partition on")
	}
	return shape, nil
}

// Sharded runs one compiled Engine per flow partition. ProcessBatch
// fans each batch out across the shards and is the only concurrent
// entry point; Process routes sequentially (useful for equivalence
// checks). Outputs and final state are identical to a single Engine
// run — enforced by TestShardedEquivalence.
type Sharded struct {
	engines []*Engine
	getters []func(*netpkt.Packet) scalar
	fields  []string

	// per-batch scratch, reused
	shardOf []int
	idxs    [][]int
	errs    []shardErr
	perf    *perf.Set
}

type shardErr struct {
	at  int
	err error
}

// NewSharded compiles n independent shard engines (n <= 1 is pinned to
// 1). The model must be flow-partitionable per PartitionFields.
func NewSharded(m *model.Model, config, initState map[string]value.Value, n int) (*Sharded, error) {
	fields, err := PartitionFields(m, initState)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	if len(fields) > 8 {
		return nil, fmt.Errorf("dataplane: %d partition fields exceed the shard hash width", len(fields))
	}
	s := &Sharded{fields: fields}
	for _, f := range fields {
		g, ok := rawGetter(f)
		if !ok {
			return nil, fmt.Errorf("dataplane: unknown partition field %q", f)
		}
		s.getters = append(s.getters, g)
	}
	for i := 0; i < n; i++ {
		e, err := Compile(m, config, initState)
		if err != nil {
			return nil, err
		}
		s.engines = append(s.engines, e)
	}
	s.idxs = make([][]int, n)
	s.errs = make([]shardErr, n)
	return s, nil
}

// SetPerf attaches a perf set to every shard.
func (s *Sharded) SetPerf(p *perf.Set) {
	s.perf = p
	for _, e := range s.engines {
		e.SetPerf(p)
	}
	p.Counter(perf.CDataplaneShards).Add(int64(len(s.engines)))
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.engines) }

// Fields returns the partition fields (sorted multiset).
func (s *Sharded) Fields() []string { return s.fields }

// shard hashes the sorted values of the partition fields, so every
// permutation of the same value multiset — forward and reverse flow
// keys — maps to the same shard.
func (s *Sharded) shard(p *netpkt.Packet) int {
	var vals [8]scalar
	n := len(s.getters)
	for i, g := range s.getters {
		vals[i] = g(p)
	}
	for i := 1; i < n; i++ { // insertion sort, n <= maxTuple in practice
		for j := i; j > 0 && scalarLess(vals[j], vals[j-1]); j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	h := fnv64(fnvOffset64)
	for i := 0; i < n; i++ {
		_ = h.wscalar(vals[i])
	}
	return int(uint64(h) % uint64(len(s.engines)))
}

// Process routes one packet to its owning shard (sequential mode).
func (s *Sharded) Process(p *netpkt.Packet) (*Output, error) {
	return s.engines[s.shard(p)].Process(p)
}

// ProcessBatch partitions pkts by flow and runs the shards
// concurrently, preserving per-shard packet order; outs[i] receives
// pkts[i]'s output. On an evaluation error the owning shard stops (its
// earlier packets stay committed, like a sequential loop) and the error
// with the smallest packet index is returned.
func (s *Sharded) ProcessBatch(pkts []netpkt.Packet, outs []Output) error {
	if len(outs) < len(pkts) {
		return fmt.Errorf("dataplane: %d outputs for %d packets", len(outs), len(pkts))
	}
	if cap(s.shardOf) < len(pkts) {
		s.shardOf = make([]int, len(pkts))
	}
	s.shardOf = s.shardOf[:len(pkts)]
	for i := range s.idxs {
		s.idxs[i] = s.idxs[i][:0]
	}
	for i := range pkts {
		sh := s.shard(&pkts[i])
		s.shardOf[i] = sh
		s.idxs[sh] = append(s.idxs[sh], i)
	}

	var wg sync.WaitGroup
	for sh := range s.engines {
		if len(s.idxs[sh]) == 0 {
			s.errs[sh] = shardErr{}
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			e := s.engines[sh]
			s.errs[sh] = shardErr{at: -1}
			for _, i := range s.idxs[sh] {
				if err := e.process(&pkts[i], &outs[i]); err != nil {
					s.errs[sh] = shardErr{at: i, err: err}
					return
				}
			}
		}(sh)
	}
	wg.Wait()

	first := shardErr{at: -1}
	for sh := range s.errs {
		se := s.errs[sh]
		if se.err != nil && (first.err == nil || se.at < first.at) {
			first = se
		}
	}
	if first.err != nil {
		return fmt.Errorf("dataplane: packet %d: %w", first.at, first.err)
	}
	if s.perf != nil {
		s.perf.Counter(perf.CDataplaneBatches).Inc()
	}
	return nil
}

// State merges the shard states. Shard key spaces are disjoint (equal
// keys land on the same shard), so the merge is a plain union.
func (s *Sharded) State() map[string]value.Value {
	out := s.engines[0].State()
	for _, e := range s.engines[1:] {
		st := e.State()
		for name, v := range st {
			if v.Kind != value.KindMap {
				continue
			}
			dst := out[name]
			for _, k := range v.Map.Keys() {
				val, _, _ := v.Map.Get(k)
				_ = dst.Map.Set(k, val)
			}
		}
	}
	return out
}

// ProcessExplain routes one packet to its owning shard in provenance
// mode (see Engine.ProcessExplain).
func (s *Sharded) ProcessExplain(p *netpkt.Packet) (*Output, *telemetry.PacketTrace, error) {
	out, tr, err := s.engines[s.shard(p)].ProcessExplain(p)
	if tr != nil {
		tr.Backend = "sharded"
	}
	return out, tr, err
}

// Telemetry merges the per-shard telemetry sinks on read: verdict and
// entry counters sum, latency histograms add, and state sizes union
// (shard key spaces are disjoint, so per-map sums equal the global map
// size). Each shard's sink is written lock-free by its own goroutine;
// like State(), call this between batches, not mid-flight.
func (s *Sharded) Telemetry() telemetry.Snapshot {
	snap := s.engines[0].Telemetry()
	for _, e := range s.engines[1:] {
		snap = snap.Merge(e.Telemetry())
	}
	snap.Backend = "sharded"
	return snap
}

// Stats sums the shard counters.
func (s *Sharded) Stats() Stats {
	var t Stats
	for _, e := range s.engines {
		st := e.Stats()
		t.Packets += st.Packets
		t.Drops += st.Drops
		t.Errors += st.Errors
	}
	return t
}

// Reset restores every shard to the initial state.
func (s *Sharded) Reset() {
	for _, e := range s.engines {
		e.Reset()
	}
}
