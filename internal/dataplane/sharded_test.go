package dataplane_test

import (
	"fmt"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

func stateDiff(a, b map[string]value.Value) string {
	if len(a) != len(b) {
		return fmt.Sprintf("variable count %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Sprintf("missing %q", name)
		}
		if !value.Equal(av, bv) {
			return fmt.Sprintf("%q: %s vs %s", name, av, bv)
		}
	}
	return ""
}

// TestPartitionability pins down which corpus NFs qualify for flow
// sharding: map-only state keyed purely by packet fields shards; NFs
// with scalar round-robin counters or state-derived keys (nat's reverse
// table is keyed by an allocated port) must not.
func TestPartitionability(t *testing.T) {
	want := map[string]bool{
		"firewall":  true,
		"snortlite": true,
		"dpi":       true,
		"ratelimit": true,
		"mirror":    true,
		"lb":        false, // rr_idx scalar state
		"balance":   false, // rr_idx scalar state
		"nat":       false, // scalar port allocator + state-derived reverse keys
	}
	for name, wantOK := range want {
		an := analyze(t, name)
		_, err := an.ShardedEngine(2, core.Options{})
		if gotOK := err == nil; gotOK != wantOK {
			t.Errorf("%s: partitionable=%v, want %v (err=%v)", name, gotOK, wantOK, err)
		}
	}
}

// TestShardedEquivalence replays the same trace through a single
// engine and a 4-shard engine: identical per-packet outputs and an
// identical merged end state, at any shard count.
func TestShardedEquivalence(t *testing.T) {
	for _, name := range []string{"firewall", "snortlite", "dpi", "ratelimit", "mirror"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			g := workload.New(17)
			trace := append(g.FlowTrace(16, 12), g.RandomTrace(400)...)

			single, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := an.ShardedEngine(4, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			sOuts := make([]dataplane.Output, len(trace))
			if err := single.ProcessBatch(trace, sOuts); err != nil {
				t.Fatal(err)
			}
			pOuts := make([]dataplane.Output, len(trace))
			if err := sharded.ProcessBatch(trace, pOuts); err != nil {
				t.Fatal(err)
			}
			for i := range trace {
				if diff := diffOutputs(&sOuts[i], &pOuts[i]); diff != "" {
					t.Fatalf("packet %d (%s): %s", i, trace[i], diff)
				}
			}
			if diff := stateDiff(single.State(), sharded.State()); diff != "" {
				t.Fatalf("end state differs: %s", diff)
			}
			if got, want := sharded.Stats().Packets, int64(len(trace)); got != want {
				t.Fatalf("sharded stats counted %d packets, want %d", got, want)
			}
		})
	}
}

// TestShardedDeterminism runs the sharded batch twice from a fresh
// state and demands identical outputs — shard scheduling must not leak
// into results.
func TestShardedDeterminism(t *testing.T) {
	an := analyze(t, "snortlite")
	trace := append(workload.New(23).FlowTrace(8, 10), workload.New(24).RandomTrace(300)...)
	sh, err := an.ShardedEngine(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]dataplane.Output, len(trace))
	if err := sh.ProcessBatch(trace, a); err != nil {
		t.Fatal(err)
	}
	stA := sh.State()
	sh.Reset()
	b := make([]dataplane.Output, len(trace))
	if err := sh.ProcessBatch(trace, b); err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		if diff := diffOutputs(&a[i], &b[i]); diff != "" {
			t.Fatalf("packet %d: %s", i, diff)
		}
	}
	if diff := stateDiff(stA, sh.State()); diff != "" {
		t.Fatalf("end state differs between runs: %s", diff)
	}
}
