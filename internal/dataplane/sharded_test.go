package dataplane_test

import (
	"fmt"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/nfs"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

func stateDiff(a, b map[string]value.Value) string {
	if len(a) != len(b) {
		return fmt.Sprintf("variable count %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			return fmt.Sprintf("missing %q", name)
		}
		if !value.Equal(av, bv) {
			return fmt.Sprintf("%q: %s vs %s", name, av, bv)
		}
	}
	return ""
}

// TestPartitionability demands every corpus NF constructs a multi-shard
// engine: the classifier lowers scalar round-robin counters to rotors,
// port allocators to interleaved per-shard sub-allocators, and
// state-derived reverse tables (nat's rev, lb's b2f_nat) to owned maps
// routed by decoding the allocated value, so nothing falls back.
func TestPartitionability(t *testing.T) {
	for _, name := range nfs.Names() {
		an := analyze(t, name)
		sh, err := an.ShardedEngine(2, core.Options{})
		if err != nil {
			t.Errorf("%s: no sharded engine: %v", name, err)
			continue
		}
		if got := sh.NumShards(); got != 2 {
			t.Errorf("%s: %d shards, want 2", name, got)
		}
	}
}

// TestShardedEquivalence replays the same trace through a single
// engine and a 4-shard engine: identical per-packet outputs and an
// identical merged end state, at any shard count.
func TestShardedEquivalence(t *testing.T) {
	for _, name := range []string{"firewall", "snortlite", "dpi", "ratelimit", "mirror"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			g := workload.New(17)
			trace := append(g.FlowTrace(16, 12), g.RandomTrace(400)...)

			single, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := an.ShardedEngine(4, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			sOuts := make([]dataplane.Output, len(trace))
			if err := single.ProcessBatch(trace, sOuts); err != nil {
				t.Fatal(err)
			}
			pOuts := make([]dataplane.Output, len(trace))
			if err := sharded.ProcessBatch(trace, pOuts); err != nil {
				t.Fatal(err)
			}
			for i := range trace {
				if diff := diffOutputs(&sOuts[i], &pOuts[i]); diff != "" {
					t.Fatalf("packet %d (%s): %s", i, trace[i], diff)
				}
			}
			if diff := stateDiff(single.State(), sharded.State()); diff != "" {
				t.Fatalf("end state differs: %s", diff)
			}
			if got, want := sharded.Stats().Packets, int64(len(trace)); got != want {
				t.Fatalf("sharded stats counted %d packets, want %d", got, want)
			}
		})
	}
}

// TestShardedDeterminism runs the sharded batch twice from a fresh
// state and demands identical outputs — shard scheduling must not leak
// into results.
func TestShardedDeterminism(t *testing.T) {
	an := analyze(t, "snortlite")
	trace := append(workload.New(23).FlowTrace(8, 10), workload.New(24).RandomTrace(300)...)
	sh, err := an.ShardedEngine(4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]dataplane.Output, len(trace))
	if err := sh.ProcessBatch(trace, a); err != nil {
		t.Fatal(err)
	}
	stA := sh.State()
	sh.Reset()
	b := make([]dataplane.Output, len(trace))
	if err := sh.ProcessBatch(trace, b); err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		if diff := diffOutputs(&a[i], &b[i]); diff != "" {
			t.Fatalf("packet %d: %s", i, diff)
		}
	}
	if diff := stateDiff(stA, sh.State()); diff != "" {
		t.Fatalf("end state differs between runs: %s", diff)
	}
}
