package dataplane_test

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

// shardStimulus builds closed-loop-safe stimulus for DiffTestSharded:
// Zipf-skewed flows aimed at the NF's service endpoint, plus strays
// that must drop. Client ports stay below 10000 — under every corpus
// allocator base — so a port in an allocator's arithmetic range is
// necessarily one the engine allocated.
func shardStimulus(name string, seed int64, n int) []netpkt.Packet {
	g := workload.New(seed)
	switch name {
	case "nat":
		tr := g.SkewedTrace(n, workload.ZipfOpts{Flows: 48, Churn: 0.02, VIP: "7.7.7.7", Port: 80})
		for i := range tr {
			tr[i].InIface = "lan"
		}
		// WAN strays with no mapping: dropped under every shard layout.
		for _, p := range g.SkewedTrace(n/8, workload.ZipfOpts{Flows: 8, VIP: "5.5.5.5", Port: 9999}) {
			p.InIface = "wan"
			tr = append(tr, p)
		}
		return tr
	case "lb", "balance":
		tr := g.SkewedTrace(n, workload.ZipfOpts{Flows: 48, Churn: 0.02, VIP: "3.3.3.3", Port: 80})
		// Traffic off the service port probes the reverse path's misses.
		return append(tr, g.SkewedTrace(n/8, workload.ZipfOpts{Flows: 8, VIP: "3.3.3.3", Port: 443})...)
	default:
		tr := g.FlowTrace(16, 10)
		return append(tr, g.SkewedTrace(n, workload.ZipfOpts{Flows: 64, Churn: 0.05})...)
	}
}

// TestDiffShardedCorpus is the sharding equivalence gate: every corpus
// NF, at several shard counts, replays a closed-loop workload through
// the sequential engine and the sharded engine in lockstep and must
// agree on every verdict, fired entry, and emitted field — exactly for
// flow-partitioned state, modulo the allocator bijection and per-flow
// rotor pairing for nat/lb/balance — and on the merged end state.
func TestDiffShardedCorpus(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			for _, shards := range []int{2, 3, 4} {
				stim := shardStimulus(name, 42+int64(shards), 400)
				res, err := an.DiffTestSharded(stim, shards, core.Options{})
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if res.Trials < len(stim) {
					t.Fatalf("%d shards: only %d trials", shards, res.Trials)
				}
				if res.Mismatches != 0 {
					t.Fatalf("%d shards: %d/%d mismatches; first: %s",
						shards, res.Mismatches, res.Trials, res.FirstDiff)
				}
			}
		})
	}
}

// TestShardedSingleShardBitwise pins Sharded(1) to the sequential
// engine bit for bit on every NF: with one shard the allocator
// specialization is the identity, so no renaming slack is tolerated.
func TestShardedSingleShardBitwise(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			trace := fuzzTrace(name, 99)
			single, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sh, err := an.ShardedEngine(1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sOuts := make([]dataplane.Output, len(trace))
			if err := single.ProcessBatch(trace, sOuts); err != nil {
				t.Fatal(err)
			}
			pOuts := make([]dataplane.Output, len(trace))
			if err := sh.ProcessBatch(trace, pOuts); err != nil {
				t.Fatal(err)
			}
			for i := range trace {
				if diff := diffOutputs(&sOuts[i], &pOuts[i]); diff != "" {
					t.Fatalf("packet %d (%s): %s", i, trace[i], diff)
				}
			}
			if diff := stateDiff(single.State(), sh.State()); diff != "" {
				t.Fatalf("end state differs: %s", diff)
			}
		})
	}
}

// TestShardInvarianceStateful covers the ISSUE's newly shardable NFs at
// shard counts 1/2/4/8: verdicts and end state stay equivalent to the
// sequential engine at every count, and no corpus packet ever needs the
// serial hand-off path — the shard is always statelessly decidable.
func TestShardInvarianceStateful(t *testing.T) {
	for _, name := range []string{"balance", "lb", "nat"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			stim := shardStimulus(name, 7, 300)
			for _, shards := range []int{1, 2, 4, 8} {
				res, err := an.DiffTestSharded(stim, shards, core.Options{})
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if res.Mismatches != 0 {
					t.Fatalf("%d shards: %d mismatches; first: %s", shards, res.Mismatches, res.FirstDiff)
				}

				sh, err := an.ShardedEngine(shards, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				outs := make([]dataplane.Output, len(stim))
				if err := sh.ProcessBatch(stim, outs); err != nil {
					t.Fatal(err)
				}
				if h := sh.Handoffs(); h != 0 {
					t.Fatalf("%d shards: %d packets took the hand-off path, want 0", shards, h)
				}
			}
		})
	}
}
