package dataplane

import "nfactor/internal/value"

// StateView is the bounded live-state export behind the /state
// inspector: every scalar boxed in full, every map as its true entry
// count plus at most a handful of boxed sample entries. Unlike State()
// — a full deep copy for differential comparison — the cost is
// O(vars + max), never O(table), so the serving loop can answer an
// inspection ticket at a batch barrier without stalling behind a
// table-sized copy-and-sort.
type StateView struct {
	// Vars holds scalars as their value and maps as a sampled map of at
	// most max entries (whichever entries Go's map iteration yields — a
	// sample, not a canonical prefix).
	Vars map[string]value.Value
	// Sizes holds the true entry count per map variable (scalars: 1).
	// For sharded flow/owned maps this sums the per-shard counts:
	// live-learned keys exist only on their owner shard so the sum is
	// exact for them; keys pre-populated at init are replicated and may
	// be counted once per shard still holding them.
	Sizes map[string]int
}

func newStateView(n int) StateView {
	return StateView{
		Vars:  make(map[string]value.Value, n),
		Sizes: make(map[string]int, n),
	}
}

// StateView exports a bounded view of the engine's live state.
func (e *Engine) StateView(max int) StateView {
	v := newStateView(len(e.slotNames) + len(e.mapNames))
	for i, name := range e.slotNames {
		v.Vars[name] = e.slots[i].toValue()
		v.Sizes[name] = 1
	}
	for i, name := range e.mapNames {
		v.Vars[name] = e.maps[i].sampleValue(max)
		v.Sizes[name] = len(e.maps[i])
	}
	return v
}

// StageStateView exports a bounded view of stage i's live state, under
// the stage model's own variable names like StageState.
func (e *ChainEngine) StageStateView(i, max int) StateView {
	st := e.stages[i]
	v := newStateView((st.slotHi - st.slotLo) + (st.mapHi - st.mapLo))
	for s := st.slotLo; s < st.slotHi; s++ {
		v.Vars[e.slotNames[s]] = e.slots[s].toValue()
		v.Sizes[e.slotNames[s]] = 1
	}
	for m := st.mapLo; m < st.mapHi; m++ {
		v.Vars[e.mapNames[m]] = e.maps[m].sampleValue(max)
		v.Sizes[e.mapNames[m]] = len(e.maps[m])
	}
	return v
}

// StateView merges the shards' bounded views (see mergeShardViews).
func (s *Sharded) StateView(max int) StateView {
	views := make([]StateView, len(s.engines))
	for i := range s.engines {
		views[i] = s.engines[i].StateView(max)
	}
	return mergeShardViews(s.cls, views, max)
}

// StageStateView merges stage i's bounded views across the shards.
func (s *ShardedChain) StageStateView(i, max int) StateView {
	views := make([]StateView, len(s.engines))
	for sh := range s.engines {
		views[sh] = s.engines[sh].StageStateView(i, max)
	}
	return mergeShardViews(s.clss[i], views, max)
}

// mergeShardViews inverts the classification lowerings on bounded
// views: allocators and rotors reconstruct the exact sequential scalar
// (the same arithmetic mergeShardStates uses), replicas report shard
// 0's copy, and partitioned maps sum their sizes and top the sample up
// from later shards. views[0] is reused as the output.
func mergeShardViews(cls *Classification, views []StateView, max int) StateView {
	out := views[0]
	if len(views) == 1 {
		return out
	}
	for name, vc := range cls.Vars {
		switch vc.Class {
		case ClassAllocator:
			out.Vars[name] = value.Int(mergeAllocatorVals(vc, shardVals(views, name)))
		case ClassRotor:
			out.Vars[name] = value.Int(mergeRotorVals(vc, shardVals(views, name)))
		case ClassFrozen, ClassReplicaMap:
			// shard 0's copy, already in out.
		default: // flow and owned maps
			size := 0
			for i := range views {
				size += views[i].Sizes[name]
			}
			out.Sizes[name] = size
			dst := out.Vars[name]
			for i := 1; i < len(views) && dst.Map.Len() < max; i++ {
				src := views[i].Vars[name]
				for _, k := range src.Map.Keys() {
					if dst.Map.Len() >= max {
						break
					}
					if _, present, _ := dst.Map.Get(k); present {
						continue
					}
					val, _, _ := src.Map.Get(k)
					_ = dst.Map.Set(k, val)
				}
			}
		}
	}
	return out
}

// shardVals collects one scalar variable's per-shard values.
func shardVals(views []StateView, name string) []int64 {
	vals := make([]int64, len(views))
	for i := range views {
		vals[i] = views[i].Vars[name].I
	}
	return vals
}

// mergeAllocatorVals reconstructs the sequential allocator position
// from the per-shard positions: each shard's offset into its
// interleaved range counts its allocations, and the sequential
// allocator advanced once per allocation.
func mergeAllocatorVals(vc *VarClass, vals []int64) int64 {
	n := int64(len(vals))
	var total int64
	for i, v := range vals {
		total += (v - (vc.Init + int64(i)*vc.Step)) / (vc.Step * n)
	}
	return vc.Init + vc.Step*total
}

// mergeRotorVals reconstructs the sequential rotor position from the
// per-shard advances, mod the cycle length.
func mergeRotorVals(vc *VarClass, vals []int64) int64 {
	var adv int64
	for _, v := range vals {
		d := (v - vc.Init) % vc.Mod
		if d < 0 {
			d += vc.Mod
		}
		adv += d
	}
	v := (vc.Init + adv) % vc.Mod
	if v < 0 {
		v += vc.Mod
	}
	return v
}
