package dataplane_test

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/nfs"
	"nfactor/internal/value"
)

// TestStateViewBounded pins the /state inspector's export contract on
// the sequential engine, for every corpus NF after a stateful trace:
// scalars come back in full, map samples never exceed the bound, Sizes
// reports the true table size, and every sampled entry matches the full
// deep copy.
func TestStateViewBounded(t *testing.T) {
	const max = 4
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			eng, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			trace := fuzzTrace(name, 7)
			outs := make([]dataplane.Output, len(trace))
			if err := eng.ProcessBatch(trace, outs); err != nil {
				t.Fatal(err)
			}
			checkViewAgainst(t, eng.StateView(max), eng.State(), max, true)
		})
	}
}

// TestShardedStateViewMerge pins the sharded export: allocator and
// rotor scalars reconstruct the exact sequential value (the same one
// Sharded.State() merges to), flow-map sizes cover the union of the
// shards' live keys, and every sampled entry agrees with the merged
// full state.
func TestShardedStateViewMerge(t *testing.T) {
	const max = 6
	for _, name := range []string{"nat", "lb", "firewall"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			for _, shards := range []int{2, 4} {
				sh, err := an.ShardedEngine(shards, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				trace := shardStimulus(name, 11, 400)
				outs := make([]dataplane.Output, len(trace))
				if err := sh.ProcessBatch(trace, outs); err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				checkViewAgainst(t, sh.StateView(max), sh.State(), max, false)
			}
		})
	}
}

// checkViewAgainst validates one StateView against the full deep-copied
// state. exactSizes is true for the sequential engine; sharded views
// may overcount init-replicated keys, so there Sizes is only required
// to cover the merged table.
func checkViewAgainst(t *testing.T, view dataplane.StateView, full map[string]value.Value, max int, exactSizes bool) {
	t.Helper()
	if len(view.Vars) != len(full) {
		t.Fatalf("view has %d vars, full state %d", len(view.Vars), len(full))
	}
	for name, fv := range full {
		vv, ok := view.Vars[name]
		if !ok {
			t.Fatalf("%s missing from view", name)
		}
		if fv.Kind != value.KindMap {
			if vv.String() != fv.String() {
				t.Fatalf("%s: view %s, full state %s", name, vv, fv)
			}
			if view.Sizes[name] != 1 {
				t.Fatalf("%s: scalar size %d", name, view.Sizes[name])
			}
			continue
		}
		if vv.Map.Len() > max {
			t.Fatalf("%s: sample holds %d entries, bound %d", name, vv.Map.Len(), max)
		}
		if want := fv.Map.Len(); want > max && vv.Map.Len() != max {
			t.Fatalf("%s: sample holds %d entries, want full bound %d of %d", name, vv.Map.Len(), max, want)
		}
		if exactSizes {
			if view.Sizes[name] != fv.Map.Len() {
				t.Fatalf("%s: size %d, table holds %d", name, view.Sizes[name], fv.Map.Len())
			}
		} else if view.Sizes[name] < fv.Map.Len() {
			t.Fatalf("%s: size %d under merged table %d", name, view.Sizes[name], fv.Map.Len())
		}
		for _, k := range vv.Map.Keys() {
			got, _, err := vv.Map.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, present, err := fv.Map.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if !present {
				t.Fatalf("%s: sampled key %s not in full state", name, k)
			}
			if got.String() != want.String() {
				t.Fatalf("%s[%s]: view %s, full state %s", name, k, got, want)
			}
		}
	}
}
