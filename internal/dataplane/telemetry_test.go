package dataplane_test

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/lang"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/telemetry"
)

// replayAll pushes a trace through an engine-like Process function,
// tolerating per-packet errors (they are themselves counted).
func replayAll(t *testing.T, trace []netpkt.Packet, process func(*netpkt.Packet) error) {
	t.Helper()
	for i := range trace {
		if err := process(&trace[i]); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
}

// TestTelemetryCountSanity pins the counter algebra on every corpus NF:
// every packet lands in exactly one verdict bucket, and every
// non-errored packet is attributed to exactly one table entry or to the
// implicit default drop.
func TestTelemetryCountSanity(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			eng, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			trace := fuzzTrace(name, 3)
			replayAll(t, trace, func(p *netpkt.Packet) error {
				_, err := eng.Process(p)
				return err
			})
			snap := eng.Telemetry()
			if snap.Packets != int64(len(trace)) {
				t.Fatalf("packets = %d, want %d", snap.Packets, len(trace))
			}
			if snap.Packets != snap.Forwards+snap.Drops+snap.Errors {
				t.Fatalf("verdicts don't partition packets: %d != %d+%d+%d",
					snap.Packets, snap.Forwards, snap.Drops, snap.Errors)
			}
			var hits int64
			for _, h := range snap.EntryHits {
				hits += h
			}
			if hits+snap.DefaultDrops != snap.Forwards+snap.Drops {
				t.Fatalf("entry attribution broken: hits %d + default %d != forwards %d + drops %d",
					hits, snap.DefaultDrops, snap.Forwards, snap.Drops)
			}
			if snap.DefaultDrops > snap.Drops {
				t.Fatalf("default drops %d exceed drops %d", snap.DefaultDrops, snap.Drops)
			}
		})
	}
}

// TestTelemetryShardInvariance demands bitwise-equal counters from the
// single engine and the sharded engine at every shard count: telemetry
// must describe the traffic, not the execution strategy. The stateful
// NFs (allocators, rotors, owned maps) are held to the same bar — the
// values those variables take differ per shard layout, but every
// counter and state-size gauge must not.
func TestTelemetryShardInvariance(t *testing.T) {
	for _, name := range []string{"firewall", "ratelimit", "balance", "lb", "nat"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			trace := shardStimulus(name, 23, 500)

			single, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			outs := make([]dataplane.Output, len(trace))
			if err := single.ProcessBatch(trace, outs); err != nil {
				t.Fatal(err)
			}
			want := single.Telemetry()

			for _, shards := range []int{1, 2, 4, 8} {
				sh, err := an.ShardedEngine(shards, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := sh.ProcessBatch(trace, outs); err != nil {
					t.Fatal(err)
				}
				got := sh.Telemetry()
				if !got.CountersEqual(want) {
					t.Fatalf("%d shards: counters diverge\nsingle:\n%ssharded:\n%s",
						shards, want.Report(), got.Report())
				}
				if got.Shards != shards {
					t.Fatalf("snapshot reports %d shards, want %d", got.Shards, shards)
				}
			}
		})
	}
}

// TestTelemetryWorkerInvariance re-analyzes the same NF under different
// symbolic-execution worker counts and replays the same trace: the
// synthesized table — and therefore every per-entry counter — must be
// identical.
func TestTelemetryWorkerInvariance(t *testing.T) {
	nf, err := nfs.Load("firewall")
	if err != nil {
		t.Fatal(err)
	}
	trace := fuzzTrace("firewall", 5)
	want := replayCompiled(t, analyzeWorkers(t, nf.Prog, 1), trace)
	for _, workers := range []int{2, 4} {
		got := replayCompiled(t, analyzeWorkers(t, nf.Prog, workers), trace)
		if !got.CountersEqual(want) {
			t.Fatalf("workers=%d: counters diverge from workers=1\nw1:\n%swN:\n%s",
				workers, want.Report(), got.Report())
		}
	}
}

func analyzeWorkers(t *testing.T, prog *lang.Program, workers int) *core.Analysis {
	t.Helper()
	an, err := core.Analyze("firewall", prog, core.Options{MaxPaths: 4096, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func replayCompiled(t *testing.T, an *core.Analysis, trace []netpkt.Packet) telemetry.Snapshot {
	t.Helper()
	eng, err := an.CompiledEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]dataplane.Output, len(trace))
	if err := eng.ProcessBatch(trace, outs); err != nil {
		t.Fatal(err)
	}
	return eng.Telemetry()
}

// TestExplainMatchesProcess runs the provenance path (linear scan with
// guard recording) against the production path (decision-tree dispatch)
// on every corpus NF: identical verdicts, fired entries and sent
// packets, and every trace carries the guard evaluations that justify
// its verdict.
func TestExplainMatchesProcess(t *testing.T) {
	for _, name := range nfs.Names() {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			fast, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			trace := fuzzTrace(name, 8)
			for i := range trace {
				fOut, fErr := fast.Process(&trace[i])
				sOut, tr, sErr := slow.ProcessExplain(&trace[i])
				if (fErr != nil) != (sErr != nil) {
					t.Fatalf("packet %d: error mismatch: process=%v explain=%v", i, fErr, sErr)
				}
				if fErr != nil {
					continue
				}
				if fOut.Dropped != sOut.Dropped || fOut.Entry != sOut.Entry || len(fOut.Sent) != len(sOut.Sent) {
					t.Fatalf("packet %d: explain diverged: process(entry=%d drop=%v sent=%d) explain(entry=%d drop=%v sent=%d)",
						i, fOut.Entry, fOut.Dropped, len(fOut.Sent), sOut.Entry, sOut.Dropped, len(sOut.Sent))
				}
				if tr == nil {
					t.Fatalf("packet %d: no trace", i)
				}
				if tr.Entry != sOut.Entry || tr.Dropped != sOut.Dropped {
					t.Fatalf("packet %d: trace disagrees with output: trace(entry=%d drop=%v) out(entry=%d drop=%v)",
						i, tr.Entry, tr.Dropped, sOut.Entry, sOut.Dropped)
				}
				if sOut.Entry >= 0 && len(tr.FiredGuards()) == 0 && len(tr.Guards) > 0 {
					t.Fatalf("packet %d: entry %d fired but no guards attributed to it", i, sOut.Entry)
				}
			}
			// The explain path must feed the same counters.
			if !fast.Telemetry().CountersEqual(slow.Telemetry()) {
				t.Fatalf("explain path counters diverge:\nprocess:\n%sexplain:\n%s",
					fast.Telemetry().Report(), slow.Telemetry().Report())
			}
		})
	}
}

// TestTelemetryZeroAlloc tightens TestZeroAllocSteadyState: even with
// the latency sampler firing on EVERY packet (sample period 1 instead
// of the default 16), the packet path performs zero heap allocations.
func TestTelemetryZeroAlloc(t *testing.T) {
	for _, name := range []string{"lb", "firewall"} {
		t.Run(name, func(t *testing.T) {
			an := analyze(t, name)
			eng, err := an.CompiledEngine(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng.Sink().SetSampleEvery(1)
			trace := steadyTrace(name)
			for i := range trace {
				if _, err := eng.Process(&trace[i]); err != nil {
					t.Fatalf("warmup packet %d: %v", i, err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(500, func() {
				if _, err := eng.Process(&trace[i%len(trace)]); err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s: %.1f allocs per packet with telemetry sampling every packet, want 0", name, allocs)
			}
			if snap := eng.Telemetry(); snap.Latency.Samples == 0 {
				t.Fatalf("%s: sampler never fired", name)
			}
		})
	}
}
