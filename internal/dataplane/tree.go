package dataplane

import (
	"sort"

	"nfactor/internal/netpkt"
)

// The decision tree lowers first-match-wins entry lists into dispatch
// over discriminating conditions, leaving ordered residual predicate
// lists only at the leaves. Two node kinds:
//
//   - Value nodes hash one packet field (`pkt.f == const` guards): an
//     entry carrying such a guard lives only under its value's case —
//     with the predicate removed, the dispatch proved it — while
//     entries generic in the field live under every case and under the
//     default. Scalar equality can neither error nor side-effect, so
//     skipping an entry whose equality would be false is
//     observationally identical to evaluating and failing it.
//
//   - Test nodes evaluate one shared pure predicate once (`x in
//     blocked` vs `!(x in blocked)`, `proto == ""` vs `proto != ""`)
//     and branch: positive-polarity entries continue (discharged) under
//     true, negative ones under false, generics under both. Guard
//     evaluation is read-only, so hoisting it is behavior-preserving —
//     except for errors, which the reference raises at a specific entry
//     or not at all. A test node therefore keeps an error child: if the
//     hoisted evaluation errors (or yields a non-bool), the error is
//     discarded and the pre-split entry list is scanned with its full
//     predicates, reproducing the reference's error placement exactly.
//
// Leaves keep surviving entries in original priority order, so
// first-match semantics and the state trajectory match the reference
// interpreter's.

// maxTreeDepth bounds recursion; the corpus needs at most 4 levels.
const maxTreeDepth = 6

// leafEntry pairs an entry with the predicates still to check on the
// path that reached this leaf.
type leafEntry struct {
	e     *centry
	preds []cpred
}

type dnode struct {
	// Value node: dispatch on get(pkt).
	field string
	get   func(*netpkt.Packet) scalar
	cases map[scalar]*dnode
	def   *dnode
	// Test node: branch on test(ctx).
	test     *cexpr
	tchild   *dnode
	fchild   *dnode
	errchild *dnode
	// Leaf: ordered residual entries.
	leaf    bool
	entries []leafEntry
}

// buildTree lowers entries (already pruned and config-folded, in
// priority order) into a dispatch tree.
func buildTree(entries []*centry) *dnode {
	list := make([]leafEntry, len(entries))
	for i, e := range entries {
		list[i] = leafEntry{e: e, preds: e.preds}
	}
	return build(list, maxTreeDepth)
}

func build(list []leafEntry, depth int) *dnode {
	if depth > 0 && len(list) > 1 {
		if field, ok := pickField(list); ok {
			return splitValue(list, field, depth)
		}
		if key, ok := pickTest(list); ok {
			return splitTest(list, key, depth)
		}
	}
	return &dnode{leaf: true, entries: list}
}

// child recurses only into strictly smaller lists (a discriminator
// shared by every entry could otherwise loop); non-shrinking children
// still benefit from the parent's discharge but stay leaves.
func child(sub []leafEntry, parentLen, depth int) *dnode {
	if len(sub) < parentLen {
		return build(sub, depth-1)
	}
	return &dnode{leaf: true, entries: sub}
}

// pickField chooses the packet field with the most entries carrying an
// equality predicate on it — at least 2, or dispatch buys nothing.
// Lexicographic tie-break keeps compilation deterministic.
func pickField(list []leafEntry) (string, bool) {
	count := map[string]int{}
	for _, le := range list {
		seen := map[string]bool{}
		for _, p := range le.preds {
			if p.field != "" && !seen[p.field] {
				seen[p.field] = true
				count[p.field]++
			}
		}
	}
	return argmax(count)
}

// pickTest chooses the polarity-normalized predicate shared (in either
// polarity) by the most entries — at least 2.
func pickTest(list []leafEntry) (string, bool) {
	count := map[string]int{}
	for _, le := range list {
		seen := map[string]bool{}
		for _, p := range le.preds {
			if p.baseKey != "" && !seen[p.baseKey] {
				seen[p.baseKey] = true
				count[p.baseKey]++
			}
		}
	}
	return argmax(count)
}

func argmax(count map[string]int) (string, bool) {
	keys := make([]string, 0, len(count))
	for k := range count {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestN := "", 1
	for _, k := range keys {
		if count[k] > bestN {
			best, bestN = k, count[k]
		}
	}
	return best, best != ""
}

// splitValue partitions list on a packet field. Entries with an
// equality predicate on the field drop into their value's bucket
// (predicate discharged); all other entries go to the default subtree
// AND every bucket, predicates intact. Bucket member order follows
// list order, preserving priority.
func splitValue(list []leafEntry, field string, depth int) *dnode {
	get, _ := rawGetter(field)
	n := &dnode{field: field, get: get, cases: map[scalar]*dnode{}}

	var vals []scalar // first-appearance order
	buckets := map[scalar][]leafEntry{}
	var def []leafEntry
	for _, le := range list {
		pi := -1
		for i, p := range le.preds {
			if p.field == field {
				pi = i
				break
			}
		}
		if pi < 0 {
			// Generic on this field: reachable under every value.
			def = append(def, le)
			for _, v := range vals {
				buckets[v] = append(buckets[v], le)
			}
			continue
		}
		v := le.preds[pi].val
		if _, ok := buckets[v]; !ok {
			vals = append(vals, v)
			// Seed with the generics already collected (they precede this
			// entry in priority order).
			buckets[v] = append([]leafEntry(nil), def...)
		}
		buckets[v] = append(buckets[v], leafEntry{e: le.e, preds: without(le.preds, pi)})
	}

	for _, v := range vals {
		n.cases[v] = child(buckets[v], len(list), depth)
	}
	n.def = child(def, len(list), depth)
	return n
}

// splitTest branches on one shared predicate: positive entries continue
// discharged under true, negative under false, generics under both;
// the error child holds the untouched pre-split list.
func splitTest(list []leafEntry, key string, depth int) *dnode {
	n := &dnode{}
	var tb, fb []leafEntry
	for _, le := range list {
		pi := -1
		for i, p := range le.preds {
			if p.baseKey == key {
				pi = i
				break
			}
		}
		if pi < 0 {
			tb = append(tb, le)
			fb = append(fb, le)
			continue
		}
		p := le.preds[pi]
		if n.test == nil {
			base := p.base
			n.test = &base
		}
		rest := leafEntry{e: le.e, preds: without(le.preds, pi)}
		if p.neg {
			fb = append(fb, rest)
		} else {
			tb = append(tb, rest)
		}
	}
	n.tchild = child(tb, len(list), depth)
	n.fchild = child(fb, len(list), depth)
	n.errchild = &dnode{leaf: true, entries: list}
	return n
}

func without(preds []cpred, i int) []cpred {
	out := make([]cpred, 0, len(preds)-1)
	out = append(out, preds[:i]...)
	return append(out, preds[i+1:]...)
}

// lookup walks the tree for one packet.
func (n *dnode) lookup(c *ctx) *dnode {
	for !n.leaf {
		if n.test != nil {
			v := n.test.eval(c)
			switch {
			case c.err != nil:
				// The hoisted evaluation failed; the fallback scan
				// re-evaluates every guard in reference order, raising
				// the error at exactly the entry the reference would.
				c.err = nil
				n = n.errchild
			case v.k != kBool:
				n = n.errchild
			case v.i != 0:
				n = n.tchild
			default:
				n = n.fchild
			}
			continue
		}
		if sub, ok := n.cases[n.get(c.pkt)]; ok {
			n = sub
		} else {
			n = n.def
		}
	}
	return n
}

// depth reports the tree's height (0 = single leaf); the error
// children don't count — they are fallbacks, not dispatch.
func (n *dnode) depth() int {
	if n.leaf {
		return 0
	}
	var d int
	if n.test != nil {
		d = max(n.tchild.depth(), n.fchild.depth())
	} else {
		d = n.def.depth()
		for _, c := range n.cases {
			if cd := c.depth(); cd > d {
				d = cd
			}
		}
	}
	return d + 1
}

// maxLeaf reports the longest residual scan list on the non-error
// paths.
func (n *dnode) maxLeaf() int {
	if n.leaf {
		return len(n.entries)
	}
	var m int
	if n.test != nil {
		m = max(n.tchild.maxLeaf(), n.fchild.maxLeaf())
	} else {
		m = n.def.maxLeaf()
		for _, c := range n.cases {
			if cm := c.maxLeaf(); cm > m {
				m = cm
			}
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
