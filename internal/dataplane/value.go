// Package dataplane compiles a synthesized model.Model into a fast
// match-action engine: the serving-side counterpart of the synthesis
// pipeline. Where model.Instance re-evaluates every table entry's boxed
// terms per packet, the compiled Engine dispatches through a decision
// tree over discriminating packet fields and executes unboxed closures
// over raw netpkt fields and a flat state array — no value.Value
// boxing, no map-by-name lookups and (steady state) no allocations on
// the per-packet path.
//
// The engine is behaviorally identical to model.Instance: same outputs,
// same state trajectory, same first-match priority semantics including
// the implicit low-priority drop. Differential fuzzing over the whole
// corpus (dataplane_test.go, core.DiffTestCompiled) enforces this.
package dataplane

import (
	"fmt"

	"nfactor/internal/value"
)

// maxTuple bounds the arity of unboxed tuples. The corpus keys its
// dictionaries with at most 4-tuples (flow tuples); larger tuples fall
// back to the reference interpreter via a compile error.
const maxTuple = 4

// vkind enumerates the unboxed value kinds.
type vkind uint8

const (
	kNil vkind = iota
	kInt
	kStr
	kBool
	kTuple
)

func (k vkind) String() string {
	switch k {
	case kNil:
		return "nil"
	case kInt:
		return "int"
	case kStr:
		return "string"
	case kBool:
		return "bool"
	case kTuple:
		return "tuple"
	}
	return "?"
}

// scalar is one unboxed scalar: nil, int, string or bool (bool stored in
// i as 0/1). scalar is comparable, so it keys dispatch-tree case maps.
type scalar struct {
	k vkind
	i int64
	s string
}

func mkInt(i int64) scalar  { return scalar{k: kInt, i: i} }
func mkStr(s string) scalar { return scalar{k: kStr, s: s} }
func mkBool(b bool) scalar {
	if b {
		return scalar{k: kBool, i: 1}
	}
	return scalar{k: kBool}
}

func (s scalar) toValue() value.Value {
	switch s.k {
	case kInt:
		return value.Int(s.i)
	case kStr:
		return value.Str(s.s)
	case kBool:
		return value.Bool(s.i != 0)
	default:
		return value.Nil()
	}
}

func scalarOf(v value.Value) (scalar, error) {
	switch v.Kind {
	case value.KindNil:
		return scalar{}, nil
	case value.KindInt:
		return mkInt(v.I), nil
	case value.KindStr:
		return mkStr(v.S), nil
	case value.KindBool:
		return mkBool(v.B), nil
	default:
		return scalar{}, fmt.Errorf("dataplane: no unboxed form for %s", v.Kind)
	}
}

// rv is an unboxed runtime value: a scalar, or (k == kTuple) a tuple of
// n scalars stored in the evaluation context's arena at offset toff.
// Keeping the tuple payload out of line makes rv 40 bytes, so the
// closure-return convention every compiled expression uses is a cheap
// register-sized copy rather than a 170-byte duffcopy. Arena offsets
// stay valid when the arena grows; per-packet slots are recycled at the
// start of each packet, while offsets below ctx.nconst hold compile-time
// constant tuples and persist for the engine's lifetime.
type rv struct {
	scalar
	n    uint8
	toff uint32
}

func rvScalar(s scalar) rv { return rv{scalar: s} }

var rvTrue = rvScalar(mkBool(true))
var rvFalse = rvScalar(mkBool(false))

func rvBool(b bool) rv {
	if b {
		return rvTrue
	}
	return rvFalse
}

func toValue(x rv, c *ctx) value.Value {
	if x.k == kTuple {
		elems := make([]value.Value, x.n)
		el := &c.tups[x.toff]
		for i := 0; i < int(x.n); i++ {
			elems[i] = el[i].toValue()
		}
		return value.TupleOf(elems...)
	}
	return x.scalar.toValue()
}

// mval is the owned (arena-free) form of a value: what state slots and
// map values store, so their tuples survive across packets.
type mval struct {
	scalar
	n uint8
	e [maxTuple]scalar
}

// mvalOf converts a boxed value to its owned unboxed form. Lists, maps
// and packets have no unboxed representation (they are handled
// structurally by the compiler) and report an error.
func mvalOf(v value.Value) (mval, error) {
	if v.Kind == value.KindTuple {
		if len(v.Tuple) > maxTuple {
			return mval{}, fmt.Errorf("dataplane: tuple arity %d exceeds %d", len(v.Tuple), maxTuple)
		}
		out := mval{scalar: scalar{k: kTuple}, n: uint8(len(v.Tuple))}
		for i, e := range v.Tuple {
			ev, err := scalarOf(e)
			if err != nil {
				return mval{}, fmt.Errorf("dataplane: nested tuple")
			}
			out.e[i] = ev
		}
		return out, nil
	}
	s, err := scalarOf(v)
	if err != nil {
		return mval{}, err
	}
	return mval{scalar: s}, nil
}

func (v mval) toValue() value.Value {
	if v.k == kTuple {
		elems := make([]value.Value, v.n)
		for i := 0; i < int(v.n); i++ {
			elems[i] = v.e[i].toValue()
		}
		return value.TupleOf(elems...)
	}
	return v.scalar.toValue()
}

// mkey is the comparable map-key form of a value: n == 0 encodes a
// scalar key (e[0]), n >= 1 a tuple key. Struct equality coincides with
// value.Value key-encoding equality, so rmap lookups agree with
// value.MapVal lookups — without ever building an encoding string.
type mkey struct {
	n uint8
	e [maxTuple]scalar
}

func keyOf(x rv, c *ctx) (mkey, error) {
	if x.k == kTuple {
		if x.n == 0 {
			return mkey{}, fmt.Errorf("dataplane: empty tuple key")
		}
		k := mkey{n: x.n}
		el := &c.tups[x.toff]
		copy(k.e[:], el[:x.n])
		return k, nil
	}
	if x.k == kNil {
		// value.Value permits nil keys ("n;"); keep parity.
		return mkey{n: 0, e: [maxTuple]scalar{{k: kNil}}}, nil
	}
	return mkey{n: 0, e: [maxTuple]scalar{x.scalar}}, nil
}

func mkeyOf(v value.Value) (mkey, error) {
	mv, err := mvalOf(v)
	if err != nil {
		return mkey{}, err
	}
	if mv.k == kTuple {
		if mv.n == 0 {
			return mkey{}, fmt.Errorf("dataplane: empty tuple key")
		}
		return mkey{n: mv.n, e: mv.e}, nil
	}
	if mv.k == kNil {
		return mkey{n: 0, e: [maxTuple]scalar{{k: kNil}}}, nil
	}
	return mkey{n: 0, e: [maxTuple]scalar{mv.scalar}}, nil
}

func (k mkey) toValue() value.Value {
	if k.n == 0 {
		return k.e[0].toValue()
	}
	elems := make([]value.Value, k.n)
	for i := 0; i < int(k.n); i++ {
		elems[i] = k.e[i].toValue()
	}
	return value.TupleOf(elems...)
}

// rmap is an unboxed state map. Lookups with an mkey never allocate;
// overwriting an existing key never allocates; only inserting a brand
// new key (flow setup) pays the map-growth cost.
type rmap map[mkey]mval

func rmapOf(v value.Value) (rmap, error) {
	if v.Kind != value.KindMap {
		return nil, fmt.Errorf("dataplane: %s is not a map", v.Kind)
	}
	out := make(rmap, v.Map.Len())
	for _, kv := range v.Map.Keys() {
		val, _, err := v.Map.Get(kv)
		if err != nil {
			return nil, err
		}
		k, err := mkeyOf(kv)
		if err != nil {
			return nil, err
		}
		vr, err := mvalOf(val)
		if err != nil {
			return nil, err
		}
		out[k] = vr
	}
	return out, nil
}

func (m rmap) toValue() value.Value {
	out := value.NewMap()
	for k, v := range m {
		_ = out.Map.Set(k.toValue(), v.toValue())
	}
	return out
}

// sampleValue boxes at most max entries — whichever Go's map iteration
// yields, a sample rather than a canonical prefix. O(max) regardless of
// table size; inspectors sort the handful they receive.
func (m rmap) sampleValue(max int) value.Value {
	out := value.NewMap()
	for k, v := range m {
		if out.Map.Len() >= max {
			break
		}
		_ = out.Map.Set(k.toValue(), v.toValue())
	}
	return out
}

func (m rmap) clone() rmap {
	out := make(rmap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// rvEqual mirrors value.Equal: mixed kinds are unequal (not an error).
func rvEqual(a, b rv, c *ctx) bool {
	if a.k != b.k {
		return false
	}
	switch a.k {
	case kNil:
		return true
	case kInt:
		return a.i == b.i
	case kStr:
		return a.s == b.s
	case kBool:
		return (a.i != 0) == (b.i != 0)
	case kTuple:
		if a.n != b.n {
			return false
		}
		ae, be := &c.tups[a.toff], &c.tups[b.toff]
		for i := 0; i < int(a.n); i++ {
			if !scalarEqual(ae[i], be[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func scalarEqual(a, b scalar) bool {
	if a.k != b.k {
		return false
	}
	switch a.k {
	case kInt:
		return a.i == b.i
	case kStr:
		return a.s == b.s
	case kBool:
		return (a.i != 0) == (b.i != 0)
	default:
		return true
	}
}

// scalarLess orders scalars for the deterministic shard hash: by kind,
// then payload.
func scalarLess(a, b scalar) bool {
	if a.k != b.k {
		return a.k < b.k
	}
	switch a.k {
	case kInt, kBool:
		return a.i < b.i
	case kStr:
		return a.s < b.s
	default:
		return false
	}
}

// binop mirrors value.BinOp bit for bit on unboxed operands (&&/|| are
// short-circuited by the compiler and never reach here).
func binop(op string, a, b rv, c *ctx) (rv, error) {
	switch op {
	case "+":
		if a.k == kInt && b.k == kInt {
			return rvScalar(mkInt(a.i + b.i)), nil
		}
		if a.k == kStr && b.k == kStr {
			return rvScalar(mkStr(a.s + b.s)), nil
		}
		return rv{}, typeErr(op, a, b)
	case "-", "*", "/", "%":
		if a.k != kInt || b.k != kInt {
			return rv{}, typeErr(op, a, b)
		}
		switch op {
		case "-":
			return rvScalar(mkInt(a.i - b.i)), nil
		case "*":
			return rvScalar(mkInt(a.i * b.i)), nil
		case "/":
			if b.i == 0 {
				return rv{}, fmt.Errorf("division by zero")
			}
			return rvScalar(mkInt(a.i / b.i)), nil
		default:
			if b.i == 0 {
				return rv{}, fmt.Errorf("modulo by zero")
			}
			m := a.i % b.i
			if m < 0 {
				if b.i < 0 {
					m += -b.i
				} else {
					m += b.i
				}
			}
			return rvScalar(mkInt(m)), nil
		}
	case "==":
		return rvBool(rvEqual(a, b, c)), nil
	case "!=":
		return rvBool(!rvEqual(a, b, c)), nil
	case "<", "<=", ">", ">=":
		cmp, err := rvCompare(a, b)
		if err != nil {
			return rv{}, fmt.Errorf("%s: %w", op, err)
		}
		switch op {
		case "<":
			return rvBool(cmp < 0), nil
		case "<=":
			return rvBool(cmp <= 0), nil
		case ">":
			return rvBool(cmp > 0), nil
		default:
			return rvBool(cmp >= 0), nil
		}
	case "&&", "||":
		if a.k != kBool || b.k != kBool {
			return rv{}, typeErr(op, a, b)
		}
		if op == "&&" {
			return rvBool(a.i != 0 && b.i != 0), nil
		}
		return rvBool(a.i != 0 || b.i != 0), nil
	default:
		return rv{}, fmt.Errorf("unknown binary operator %q", op)
	}
}

func rvCompare(a, b rv) (int, error) {
	if a.k == kInt && b.k == kInt {
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.k == kStr && b.k == kStr {
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("cannot order %s and %s", a.k, b.k)
}

func unop(op string, a rv) (rv, error) {
	switch op {
	case "-":
		if a.k != kInt {
			return rv{}, fmt.Errorf("unary - on %s", a.k)
		}
		return rvScalar(mkInt(-a.i)), nil
	case "!":
		if a.k != kBool {
			return rv{}, fmt.Errorf("unary ! on %s", a.k)
		}
		return rvBool(a.i == 0), nil
	default:
		return rv{}, fmt.Errorf("unknown unary operator %q", op)
	}
}

func typeErr(op string, a, b rv) error {
	return fmt.Errorf("operator %s on %s and %s", op, a.k, b.k)
}

// --- allocation-free canonical hashing --------------------------------
//
// value.Hash is FNV-1a over the value's canonical key encoding. The
// reference builds the encoding string (allocating); here the same bytes
// stream through an incremental hasher, so hash-mode load balancing
// agrees with the interpreter at zero allocation cost.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) wbyte(b byte) { *h = (*h ^ fnv64(b)) * fnvPrime64 }

func (h *fnv64) wstring(s string) {
	for i := 0; i < len(s); i++ {
		h.wbyte(s[i])
	}
}

// wdecimal streams the decimal rendering of v (matching fmt's %d).
func (h *fnv64) wdecimal(v int64) {
	var buf [20]byte
	neg := v < 0
	u := uint64(v)
	if neg {
		h.wbyte('-')
		u = -u
	}
	pos := len(buf)
	for {
		pos--
		buf[pos] = '0' + byte(u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	for ; pos < len(buf); pos++ {
		h.wbyte(buf[pos])
	}
}

// wscalar streams value.encodeKey's bytes for one scalar.
func (h *fnv64) wscalar(s scalar) error {
	switch s.k {
	case kInt:
		h.wbyte('i')
		h.wdecimal(s.i)
		h.wbyte(';')
	case kStr:
		h.wbyte('s')
		h.wdecimal(int64(len(s.s)))
		h.wbyte(':')
		h.wstring(s.s)
		h.wbyte(';')
	case kBool:
		h.wbyte('b')
		if s.i != 0 {
			h.wstring("true")
		} else {
			h.wstring("false")
		}
		h.wbyte(';')
	case kNil:
		h.wstring("n;")
	default:
		return fmt.Errorf("unhashable kind %s", s.k)
	}
	return nil
}

// rvHash returns value.Hash of the corresponding boxed value.
func rvHash(x rv, c *ctx) (int64, error) {
	h := fnv64(fnvOffset64)
	if x.k == kTuple {
		h.wbyte('t')
		h.wdecimal(int64(x.n))
		h.wbyte('(')
		el := &c.tups[x.toff]
		for i := 0; i < int(x.n); i++ {
			if err := h.wscalar(el[i]); err != nil {
				return 0, fmt.Errorf("hash: %w", err)
			}
		}
		h.wbyte(')')
	} else if err := h.wscalar(x.scalar); err != nil {
		return 0, fmt.Errorf("hash: %w", err)
	}
	return int64(uint64(h) & 0x7fffffffffffffff), nil
}
