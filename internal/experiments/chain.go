package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

// ChainRow is one service chain's fused-data-plane measurement: the
// fused ChainEngine vs a chain of standalone compiled Engines with
// materialized hand-offs vs a chain of reference interpreters, on the
// same warmed trace — after a closed-loop differential pass proved the
// fused engine equivalent to the sequential reference.
type ChainRow struct {
	Chain     string   `json:"chain"`
	NFs       []string `json:"nfs"`
	Stages    int      `json:"stages"`
	Entries   int      `json:"entries"` // live compiled entries across all stages
	Folded    int      `json:"folded"`  // entries pruned by cross-stage constant folding
	Shardable bool     `json:"shardable"`
	TracePkts int      `json:"trace_pkts"`

	InterpNsPkt float64 `json:"interp_ns_pkt"` // chained model.Instance interpreters
	SeqNsPkt    float64 `json:"seq_ns_pkt"`    // chained compiled Engines, materialized hand-off
	FusedNsPkt  float64 `json:"fused_ns_pkt"`  // one fused ChainEngine

	SpeedupVsSeq    float64 `json:"speedup_vs_seq"`
	SpeedupVsInterp float64 `json:"speedup_vs_interp"`

	DiffTrials int `json:"diff_trials"`
	Mismatches int `json:"mismatches"`
}

// chainStimulus mixes trusted-side client flows at the corpus LB's
// service endpoint (they clear the firewall's egress policy and install
// NAT state), skewed flows, and random/adversarial fuzz — so packets
// die at every depth of the chain and the flow tables fill.
func chainStimulus(npkts int, seed int64) []netpkt.Packet {
	g := workload.New(seed)
	tr := g.ClientServerTrace("3.3.3.3", 80, npkts/2)
	for i := range tr {
		if tr[i].DstPort == 80 {
			tr[i].InIface = "lan"
		}
	}
	off := len(tr)
	tr = append(tr, g.SkewedTrace(npkts/4, workload.ZipfOpts{Flows: 32, Churn: 0.05, VIP: "3.3.3.3", Port: 80})...)
	for i := off; i < len(tr); i++ {
		tr[i].InIface = "lan"
	}
	tr = append(tr, g.RandomTrace(npkts/4)...)
	return tr
}

// Chain measures every corpus service chain three ways. Rows run
// sequentially so the timings are faithful.
func Chain(npkts int, seed int64, opts Opts) ([]ChainRow, error) {
	const minDur = 300 * time.Millisecond
	specs := core.ChainCorpus()
	rows := make([]ChainRow, 0, len(specs))
	for _, spec := range specs {
		stages, err := core.AnalyzeChain(spec.NFs, core.Options{
			Workers: opts.Workers,
			Cache:   opts.Cache,
			Perf:    opts.Perf,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		trace := chainStimulus(npkts, seed)

		// Equivalence first: a fused chain that disagrees with the
		// sequential per-NF deployment is not an optimization.
		diff, err := dataplane.DiffTestChain(stages, trace)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}

		fused, err := dataplane.CompileChain(stages)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		seq, err := dataplane.NewSeqChain(stages)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		insts := make([]*model.Instance, len(stages))
		for si, nm := range stages {
			if insts[si], err = model.NewInstance(nm.Model, nm.Config, nm.State); err != nil {
				return nil, fmt.Errorf("%s stage %s: %w", spec.Name, nm.Name, err)
			}
		}

		runInterp := func() error {
			return interpReplay(insts, trace)
		}
		runSeq := func() error {
			for i := range trace {
				if _, err := seq.Process(&trace[i]); err != nil {
					return err
				}
			}
			return nil
		}
		outs := make([]dataplane.ChainOutput, len(trace))
		runFused := func() error {
			return fused.ProcessBatch(trace, outs)
		}

		// Warm all three sides: flow state populated, steady allocation.
		if err := runInterp(); err != nil {
			return nil, fmt.Errorf("%s interpreter: %w", spec.Name, err)
		}
		if err := runSeq(); err != nil {
			return nil, fmt.Errorf("%s sequential: %w", spec.Name, err)
		}
		if err := runFused(); err != nil {
			return nil, fmt.Errorf("%s fused: %w", spec.Name, err)
		}

		interpNs, err := timeLoop(runInterp, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s interpreter: %w", spec.Name, err)
		}
		seqNs, err := timeLoop(runSeq, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", spec.Name, err)
		}
		fusedNs, err := timeLoop(runFused, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s fused: %w", spec.Name, err)
		}

		_, shardErr := dataplane.NewShardedChain(stages, 2)
		rows = append(rows, ChainRow{
			Chain:           spec.Name,
			NFs:             spec.NFs,
			Stages:          len(stages),
			Entries:         fused.NumEntries(),
			Folded:          fused.FoldedEntries(),
			Shardable:       shardErr == nil,
			TracePkts:       len(trace),
			InterpNsPkt:     interpNs,
			SeqNsPkt:        seqNs,
			FusedNsPkt:      fusedNs,
			SpeedupVsSeq:    seqNs / fusedNs,
			SpeedupVsInterp: interpNs / fusedNs,
			DiffTrials:      diff.Trials,
			Mismatches:      diff.Mismatches,
		})
	}
	return rows, nil
}

// interpReplay runs the trace through chained reference interpreters,
// the pre-compilation baseline: the same DFS the data planes use, each
// sent packet value feeding the next stage.
func interpReplay(insts []*model.Instance, trace []netpkt.Packet) error {
	for i := range trace {
		if err := interpStep(insts, 0, trace[i].ToValue()); err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
	}
	return nil
}

func interpStep(insts []*model.Instance, si int, pkt value.Value) error {
	if si == len(insts) {
		return nil
	}
	out, err := insts[si].Process(pkt)
	if err != nil {
		return err
	}
	for _, sp := range out.Sent {
		if err := interpStep(insts, si+1, sp.Pkt); err != nil {
			return err
		}
	}
	return nil
}

// FormatChain renders the rows as a table.
func FormatChain(rows []ChainRow) string {
	var sb strings.Builder
	sb.WriteString("Fused chain data plane vs sequential per-NF engines vs chained interpreters\n")
	sb.WriteString(fmt.Sprintf("%-14s %6s %7s %6s | %13s %12s %12s | %9s %9s | %5s %10s\n",
		"chain", "stages", "entries", "folded", "interp ns/pkt", "seq ns/pkt", "fused ns/pkt", "vs seq", "vs interp", "shard", "fuzz"))
	sb.WriteString(strings.Repeat("-", 126) + "\n")
	for _, r := range rows {
		fuzz := fmt.Sprintf("%d/%d ok", r.DiffTrials-r.Mismatches, r.DiffTrials)
		if r.Mismatches > 0 {
			fuzz = fmt.Sprintf("%d MISMATCH", r.Mismatches)
		}
		shard := "no"
		if r.Shardable {
			shard = "yes"
		}
		sb.WriteString(fmt.Sprintf("%-14s %6d %7d %6d | %13.0f %12.0f %12.0f | %8.1fx %8.1fx | %5s %10s\n",
			r.Chain, r.Stages, r.Entries, r.Folded,
			r.InterpNsPkt, r.SeqNsPkt, r.FusedNsPkt, r.SpeedupVsSeq, r.SpeedupVsInterp, shard, fuzz))
	}
	return sb.String()
}
