package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

// DataplaneRow is one NF's compiled-data-plane measurement: reference
// model.Instance vs compiled Engine on the same warmed trace, plus the
// differential cross-check that makes the speedup claim meaningful.
type DataplaneRow struct {
	NF            string
	Entries       int // live (non-pruned) compiled entries
	TreeDepth     int
	MaxLeaf       int // longest residual scan list
	TracePkts     int
	RefNsPkt      float64
	EngNsPkt      float64
	Speedup       float64
	Partitionable bool
	DiffTrials    int
	Mismatches    int
}

// dataplaneTrace mixes random packets with the NF's stateful traffic
// shape, so the measurement exercises flow-table hits, not just drops.
func dataplaneTrace(name string, npkts int, seed int64) []netpkt.Packet {
	g := workload.New(seed)
	trace := g.RandomTrace(npkts)
	switch name {
	case "lb", "balance", "nat", "mirror":
		trace = append(trace, g.ClientServerTrace("3.3.3.3", 80, npkts/2)...)
	default:
		trace = append(trace, g.FlowTrace(20, npkts/40)...)
	}
	return trace
}

// timeLoop replays the trace until minDur has elapsed and returns the
// amortized ns/packet. The caller warms state first, so the measurement
// is steady-state.
func timeLoop(replay func() error, pkts int, minDur time.Duration) (float64, error) {
	total := 0
	start := time.Now()
	for {
		if err := replay(); err != nil {
			return 0, err
		}
		total += pkts
		if time.Since(start) >= minDur {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total), nil
}

// Dataplane measures, for each NF, the reference interpreter and the
// compiled engine on the same trace — after a differential fuzz pass
// over that trace proves the two agree packet for packet. Rows run
// sequentially (never concurrently) so the timings are faithful.
func Dataplane(names []string, npkts int, seed int64, opts Opts) ([]DataplaneRow, error) {
	const minDur = 300 * time.Millisecond
	rows := make([]DataplaneRow, 0, len(names))
	for _, name := range names {
		nf, err := nfs.Load(name)
		if err != nil {
			return nil, err
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{
			Workers: opts.Workers,
			Cache:   opts.Cache,
			Perf:    opts.Perf,
		})
		if err != nil {
			return nil, err
		}
		trace := dataplaneTrace(name, npkts, seed)

		// Equivalence first: a fast engine that disagrees with the
		// model is not an optimization.
		diff, err := an.DiffTestCompiled(trace, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}

		eng, err := an.CompiledEngine(core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		inst, err := an.Instance(core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		vals := make([]value.Value, len(trace))
		for i := range trace {
			vals[i] = trace[i].ToValue()
		}
		outs := make([]dataplane.Output, len(trace))

		// Warm both sides: flow state populated, steady allocation.
		for _, v := range vals {
			if _, err := inst.Process(v); err != nil {
				return nil, fmt.Errorf("%s reference: %w", name, err)
			}
		}
		if err := eng.ProcessBatch(trace, outs); err != nil {
			return nil, fmt.Errorf("%s engine: %w", name, err)
		}

		refNs, err := timeLoop(func() error {
			for _, v := range vals {
				if _, err := inst.Process(v); err != nil {
					return err
				}
			}
			return nil
		}, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s reference: %w", name, err)
		}
		engNs, err := timeLoop(func() error {
			return eng.ProcessBatch(trace, outs)
		}, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s engine: %w", name, err)
		}

		_, shardErr := an.ShardedEngine(2, core.Options{})
		rows = append(rows, DataplaneRow{
			NF:            name,
			Entries:       eng.NumEntries(),
			TreeDepth:     eng.TreeDepth(),
			MaxLeaf:       eng.MaxLeafEntries(),
			TracePkts:     len(trace),
			RefNsPkt:      refNs,
			EngNsPkt:      engNs,
			Speedup:       refNs / engNs,
			Partitionable: shardErr == nil,
			DiffTrials:    diff.Trials,
			Mismatches:    diff.Mismatches,
		})
	}
	return rows, nil
}

// FormatDataplane renders the rows as a table; pkts/sec columns are the
// reciprocal view operators ask for.
func FormatDataplane(rows []DataplaneRow) string {
	var sb strings.Builder
	sb.WriteString("Compiled data plane vs reference interpreter (same trace, cross-validated)\n")
	sb.WriteString(fmt.Sprintf("%-10s %7s %5s %7s | %10s %10s | %12s %12s | %7s | %5s %10s\n",
		"NF", "entries", "depth", "maxleaf", "ref ns/pkt", "eng ns/pkt", "ref pkts/s", "eng pkts/s", "speedup", "shard", "fuzz"))
	sb.WriteString(strings.Repeat("-", 128) + "\n")
	for _, r := range rows {
		fuzz := fmt.Sprintf("%d/%d ok", r.DiffTrials-r.Mismatches, r.DiffTrials)
		if r.Mismatches > 0 {
			fuzz = fmt.Sprintf("%d MISMATCH", r.Mismatches)
		}
		shard := "no"
		if r.Partitionable {
			shard = "yes"
		}
		sb.WriteString(fmt.Sprintf("%-10s %7d %5d %7d | %10.0f %10.0f | %12.0f %12.0f | %6.1fx | %5s %10s\n",
			r.NF, r.Entries, r.TreeDepth, r.MaxLeaf,
			r.RefNsPkt, r.EngNsPkt, 1e9/r.RefNsPkt, 1e9/r.EngNsPkt, r.Speedup, shard, fuzz))
	}
	return sb.String()
}
