// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (variable categorization), Table 2 (slicing /
// path-count / symbolic-execution metrics), Figure 6 (the synthesized
// balance model) and the accuracy experiments (symbolic path-set
// equivalence + random differential testing). cmd/nfbench prints them;
// bench_test.go measures them.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/lang"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/workload"
)

// Opts configure an experiment run.
type Opts struct {
	// Workers bounds the concurrently processed NF rows AND each
	// pipeline's symbolic-execution worker count (0 = GOMAXPROCS).
	// Results are identical at every worker count; the per-row *timing*
	// columns are only faithful at Workers=1, since concurrent rows
	// contend for cores.
	Workers int
	// Cache, when set, is shared across every per-NF pipeline call —
	// solver verdicts are properties of the literal terms alone, so
	// they transfer between NFs.
	Cache *solver.Cache
	// Perf, when set, aggregates counters/timers across all rows.
	Perf *perf.Set
}

func (o Opts) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// forEachNF runs fn(i, name) for every name with up to workers
// goroutines. Each fn writes its row at index i, so output order matches
// input order regardless of scheduling. The first error (by index) wins.
func forEachNF(names []string, workers int, fn func(i int, name string) error) error {
	if workers > len(names) {
		workers = len(names)
	}
	errs := make([]error, len(names))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				errs[i] = fn(i, names[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table2Row is one NF's row of Table 2.
type Table2Row struct {
	NF          string
	LoCOrig     int // lines of the original source (pre-normalization)
	LoCSlice    int // lines of the packet+state slice
	LoCPath     int // statements on the longest execution path
	SliceTime   time.Duration
	EPOrig      int
	EPOrigCap   bool // true: path budget exhausted (the ">N" cell)
	EPSlice     int
	SETimeOrig  time.Duration
	SETimeSlice time.Duration
	Budget      int
}

// Table2 computes the Table 2 row for each named corpus NF. Rows are
// processed concurrently under opts.Workers.
func Table2(names []string, maxPaths int, opts Opts) ([]Table2Row, error) {
	rows := make([]Table2Row, len(names))
	err := forEachNF(names, opts.workers(), func(i int, name string) error {
		nf, err := nfs.Load(name)
		if err != nil {
			return err
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{
			MaxPaths:        maxPaths,
			MeasureOriginal: true,
			Workers:         opts.Workers,
			Cache:           opts.Cache,
			Perf:            opts.Perf,
		})
		if err != nil {
			return err
		}
		m := an.Metrics
		rows[i] = Table2Row{
			NF:          name,
			LoCOrig:     lang.CountLoC(nf.Raw),
			LoCSlice:    m.LoCSlice,
			LoCPath:     m.LoCPath,
			SliceTime:   m.SliceTime,
			EPOrig:      m.EPOrig,
			EPOrigCap:   m.EPOrigCapped,
			EPSlice:     m.EPSlice,
			SETimeOrig:  m.SETimeOrig,
			SETimeSlice: m.SETimeSlice,
			Budget:      maxPaths,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: NFactor on the NF corpus\n")
	sb.WriteString(fmt.Sprintf("%-10s %7s %7s %6s | %10s | %7s %7s | %10s %10s\n",
		"", "LoC", "", "", "Slicing", "# of EP", "", "SE time", ""))
	sb.WriteString(fmt.Sprintf("%-10s %7s %7s %6s | %10s | %7s %7s | %10s %10s\n",
		"NF", "orig", "slice", "path", "time", "orig", "slice", "orig", "slice"))
	sb.WriteString(strings.Repeat("-", 96) + "\n")
	for _, r := range rows {
		ep := fmt.Sprintf("%d", r.EPOrig)
		seOrig := fmtDur(r.SETimeOrig)
		if r.EPOrigCap {
			ep = fmt.Sprintf(">%d", r.Budget-1)
			seOrig = ">" + seOrig // budget hit: a lower bound, like the paper's >1hr
		}
		sb.WriteString(fmt.Sprintf("%-10s %7d %7d %6d | %10s | %7s %7d | %10s %10s\n",
			r.NF, r.LoCOrig, r.LoCSlice, r.LoCPath,
			fmtDur(r.SliceTime), ep, r.EPSlice, seOrig, fmtDur(r.SETimeSlice)))
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Table1 renders the Figure 1 load balancer's variable categorization.
func Table1() (string, error) {
	nf, err := nfs.Load("lb")
	if err != nil {
		return "", err
	}
	an, err := core.Analyze("lb", nf.Prog, core.Options{})
	if err != nil {
		return "", err
	}
	v := an.Vars
	var sb strings.Builder
	sb.WriteString("Table 1: NFactor variable categorization (lb, Figure 1)\n")
	sb.WriteString(fmt.Sprintf("%-8s | %-55s | %s\n", "category", "features", "variables"))
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	rows := []struct {
		cat      string
		features string
		vars     []string
	}{
		{"pktVar", "packet I/O function parameter/return value", v.PktVars()},
		{"cfgVar", "persistent, top-level, not updateable", v.CfgVars()},
		{"oisVar", "persistent, top-level, updateable, output-impacting", v.OISVars()},
		{"logVar", "persistent, top-level, updateable, not output-impacting", v.LogVars()},
	}
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s | %-55s | %s\n", r.cat, r.features, strings.Join(r.vars, ", ")))
	}
	return sb.String(), nil
}

// Figure6 renders the synthesized model of balance (both configurations),
// the paper's Figure 6.
func Figure6() (string, error) {
	nf, err := nfs.Load("balance")
	if err != nil {
		return "", err
	}
	an, err := core.Analyze("balance", nf.Prog, core.Options{})
	if err != nil {
		return "", err
	}
	return model.Render(an.Model), nil
}

// Figure1Slice renders the lb program next to its packet+state slice (the
// highlighted lines of Figure 1).
func Figure1Slice() (string, error) {
	nf, err := nfs.Load("lb")
	if err != nil {
		return "", err
	}
	an, err := core.Analyze("lb", nf.Prog, core.Options{})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 1: load balancer — packet+state slice (the paper's highlighted lines)\n")
	sb.WriteString(strings.Repeat("=", 72) + "\n")
	sb.WriteString(lang.Print(an.SliceProg))
	sb.WriteString(strings.Repeat("=", 72) + "\n")
	sb.WriteString(fmt.Sprintf("original: %d LoC, slice: %d LoC\n",
		an.Metrics.LoCOrig, an.Metrics.LoCSlice))
	return sb.String(), nil
}

// AccuracyRow is one NF's accuracy verdict (§5).
type AccuracyRow struct {
	NF          string
	PathsEqual  bool
	ProgPaths   int
	ModelPaths  int
	Trials      int
	Mismatches  int
	FirstDiff   string
	EquivDetail string
}

// Accuracy runs both accuracy experiments for each NF: symbolic path-set
// comparison and `trials` random-packet differential tests. NFs are
// processed concurrently under opts.Workers.
func Accuracy(names []string, trials int, seed int64, opts Opts) ([]AccuracyRow, error) {
	rows := make([]AccuracyRow, len(names))
	err := forEachNF(names, opts.workers(), func(i int, name string) error {
		nf, err := nfs.Load(name)
		if err != nil {
			return err
		}
		copts := core.Options{
			MaxPaths: 4096,
			Workers:  opts.Workers,
			Cache:    opts.Cache,
			Perf:     opts.Perf,
		}
		an, err := core.Analyze(name, nf.Prog, copts)
		if err != nil {
			return err
		}
		rep, err := an.CheckPathEquivalence(copts)
		if err != nil {
			return err
		}
		trace := workload.New(seed).RandomTrace(trials)
		diff, err := an.DiffTest(trace, copts)
		if err != nil {
			return err
		}
		row := AccuracyRow{
			NF:         name,
			PathsEqual: rep.Equivalent(),
			ProgPaths:  rep.ProgramPaths,
			ModelPaths: rep.ModelPaths,
			Trials:     diff.Trials,
			Mismatches: diff.Mismatches,
			FirstDiff:  diff.FirstDiff,
		}
		if !rep.Equivalent() {
			row.EquivDetail = fmt.Sprintf("%d uncovered / %d mismatched",
				len(rep.UncoveredProgram), len(rep.MismatchedModel))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAccuracy renders the accuracy rows.
func FormatAccuracy(rows []AccuracyRow) string {
	var sb strings.Builder
	sb.WriteString("Accuracy (§5): path-set equivalence and random differential testing\n")
	sb.WriteString(fmt.Sprintf("%-10s | %-11s %9s %10s | %8s %10s\n",
		"NF", "paths equal", "prog", "model", "trials", "mismatches"))
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, r := range rows {
		eq := "yes"
		if !r.PathsEqual {
			eq = "NO(" + r.EquivDetail + ")"
		}
		sb.WriteString(fmt.Sprintf("%-10s | %-11s %9d %10d | %8d %10d\n",
			r.NF, eq, r.ProgPaths, r.ModelPaths, r.Trials, r.Mismatches))
	}
	return sb.String()
}

// VerificationRow compares symbolic-execution cost of the original
// program against the compiled model — the §4 claim that model checking
// on the model is far cheaper than on the original code.
type VerificationRow struct {
	NF         string
	OrigTime   time.Duration
	OrigPaths  int
	OrigCapped bool
	ModelTime  time.Duration
	ModelPaths int
}

// Verification measures SE time on the original vs. the compiled model.
// NFs are processed concurrently under opts.Workers.
func Verification(names []string, maxPaths int, opts Opts) ([]VerificationRow, error) {
	rows := make([]VerificationRow, len(names))
	err := forEachNF(names, opts.workers(), func(i int, name string) error {
		nf, err := nfs.Load(name)
		if err != nil {
			return err
		}
		copts := core.Options{
			MaxPaths:        maxPaths,
			MeasureOriginal: true,
			Workers:         opts.Workers,
			Cache:           opts.Cache,
			Perf:            opts.Perf,
		}
		an, err := core.Analyze(name, nf.Prog, copts)
		if err != nil {
			return err
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			return err
		}
		prog, err := model.Compile(an.Model, config, state)
		if err != nil {
			return err
		}
		start := time.Now()
		an2, err := core.Analyze(name+"-model", prog, core.Options{
			MaxPaths: maxPaths,
			Workers:  opts.Workers,
			Cache:    opts.Cache,
			Perf:     opts.Perf,
		})
		if err != nil {
			return err
		}
		rows[i] = VerificationRow{
			NF:         name,
			OrigTime:   an.Metrics.SETimeOrig,
			OrigPaths:  an.Metrics.EPOrig,
			OrigCapped: an.Metrics.EPOrigCapped,
			ModelTime:  time.Since(start),
			ModelPaths: an2.Metrics.EPSlice,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatVerification renders the verification rows.
func FormatVerification(rows []VerificationRow) string {
	var sb strings.Builder
	sb.WriteString("§4 verification: symbolic execution on original code vs. on the model\n")
	sb.WriteString(fmt.Sprintf("%-10s | %10s %8s | %10s %8s\n",
		"NF", "orig time", "paths", "model time", "paths"))
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	for _, r := range rows {
		op := fmt.Sprintf("%d", r.OrigPaths)
		ot := fmtDur(r.OrigTime)
		if r.OrigCapped {
			op = ">" + op
			ot = ">" + ot
		}
		sb.WriteString(fmt.Sprintf("%-10s | %10s %8s | %10s %8d\n",
			r.NF, ot, op, fmtDur(r.ModelTime), r.ModelPaths))
	}
	return sb.String()
}
