package experiments

import (
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pktVar", "cfgVar", "oisVar", "logVar",
		"f2b_nat", "rr_idx", "pass_stat", "drop_stat", "mode",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows, err := Table2([]string{"snortlite", "balance"}, 256, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.NF] = r
	}

	snort := byName["snortlite"]
	// The paper's snort claims: slice ≪ orig in LoC, orig paths exceed
	// any budget, slice paths small, SE time collapses.
	if snort.LoCSlice*3 > snort.LoCOrig {
		t.Errorf("snortlite LoC reduction too small: %d -> %d", snort.LoCOrig, snort.LoCSlice)
	}
	if !snort.EPOrigCap {
		t.Error("snortlite original SE did not exhaust the budget")
	}
	if snort.EPSlice > 50 {
		t.Errorf("snortlite slice paths = %d", snort.EPSlice)
	}
	if snort.SETimeSlice*10 > snort.SETimeOrig {
		t.Errorf("snortlite SE time did not collapse: orig %v vs slice %v",
			snort.SETimeOrig, snort.SETimeSlice)
	}

	bal := byName["balance"]
	// Balance: moderate path reduction (paper: 20 → 10).
	if bal.EPSlice >= bal.EPOrig {
		t.Errorf("balance slice paths %d !< orig %d", bal.EPSlice, bal.EPOrig)
	}
	if bal.EPOrigCap {
		t.Error("balance should not exhaust the budget")
	}

	text := FormatTable2(rows)
	if !strings.Contains(text, ">255") {
		t.Errorf("budget-capped cell not rendered as a bound:\n%s", text)
	}
	if !strings.Contains(text, "balance") || !strings.Contains(text, "snortlite") {
		t.Errorf("missing rows:\n%s", text)
	}
}

func TestFigure6ShowsBothConfigs(t *testing.T) {
	out, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`config: (mode == "RR")`,
		`config: (mode != "RR")`,
		"rr_idx := ((rr_idx@0 + 1) % 2)",
		"servers[rr_idx@0]",
		"hash(pkt.sip)",
		"default: drop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 missing %q:\n%s", want, out)
		}
	}
	// The HASH table must not touch the round-robin index (the paper's
	// "there is no index state" cell).
	hashSection := out[strings.Index(out, `config: (mode != "RR")`):]
	hashSection = hashSection[:strings.Index(hashSection, "config: *")]
	if strings.Contains(hashSection, "rr_idx :=") {
		t.Errorf("HASH table updates rr_idx:\n%s", hashSection)
	}
}

func TestFigure1Slice(t *testing.T) {
	out, err := Figure1Slice()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "pass_stat") {
		t.Errorf("slice retains log statistics:\n%s", out)
	}
	if !strings.Contains(out, "f2b_nat") || !strings.Contains(out, "send(pkt") {
		t.Errorf("slice missing forwarding logic:\n%s", out)
	}
}

func TestAccuracyAllGreen(t *testing.T) {
	rows, err := Accuracy([]string{"lb", "nat"}, 200, 7, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.PathsEqual {
			t.Errorf("%s: path sets differ (%s)", r.NF, r.EquivDetail)
		}
		if r.Mismatches != 0 {
			t.Errorf("%s: %d mismatches (%s)", r.NF, r.Mismatches, r.FirstDiff)
		}
		if r.Trials != 200 {
			t.Errorf("%s: trials = %d", r.NF, r.Trials)
		}
	}
	text := FormatAccuracy(rows)
	if !strings.Contains(text, "yes") {
		t.Errorf("accuracy table:\n%s", text)
	}
}

func TestVerificationSnortliteWinsOnModel(t *testing.T) {
	rows, err := Verification([]string{"snortlite"}, 256, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.OrigCapped {
		t.Error("snortlite original should cap the budget")
	}
	if r.ModelPaths >= 256 {
		t.Errorf("model paths = %d, should be far below the budget", r.ModelPaths)
	}
	text := FormatVerification(rows)
	if !strings.Contains(text, "snortlite") {
		t.Errorf("verification table:\n%s", text)
	}
}

func TestTable2UnknownNF(t *testing.T) {
	if _, err := Table2([]string{"doesnotexist"}, 64, Opts{}); err == nil {
		t.Error("unknown NF did not error")
	}
}
