package experiments

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/obsrv"
	"nfactor/internal/serve"
)

// ObsrvRow is one NF's observability-overhead measurement: the serving
// loop's per-packet cost with the obsrv collectors off (the seed
// configuration), on (gap-hit detection + drift windows + snapshot
// publishing), and on with a concurrent HTTP scraper cycling through
// /metrics, /coverage, /swaps and /state while traffic flows. The
// acceptance bar is <=5% overhead with the scraper attached.
type ObsrvRow struct {
	NF           string
	TracePkts    int
	ServedPkts   int64
	OffNsPkt     float64 // Config.Obs nil (min over reps)
	OnNsPkt      float64 // collectors enabled, nobody scraping (min over reps)
	ScrapeNsPkt  float64 // collectors enabled + concurrent scraper (min over reps)
	OnPct        float64 // min over reps of the paired per-rep on/off ratio, as % overhead
	ScrapePct    float64 // min over reps of the paired per-rep scrape/off ratio, as % overhead
	GapMatchers  int     // stages with a compiled gap matcher (0: covered)
	DriftWindows int64   // completed drift windows during the "on" run
}

// obsrvScrapeEvery paces the bench scraper. Real Prometheus polls every
// 10-15s; every 100ms is still two orders of magnitude hotter, so the
// measured overhead upper-bounds any production scrape cadence. /state
// is hit every 4th round — it quiesces at a batch barrier and walks
// live tables, the most intrusive endpoint. (On a single-core box every
// cycle of the scraper's own HTTP+render CPU is stolen directly from
// the serving loop, so the cadence IS the experiment's aggressiveness
// knob; 100ms keeps it far beyond production while measuring the data
// path rather than raw core contention.)
const obsrvScrapeEvery = 100 * time.Millisecond

// Obsrv measures the serving loop's observability overhead for each NF.
// Rows run sequentially and each configuration repeats reps times; the
// overhead percentages come from per-rep paired ratios (see the loop
// comment below) so that machine-load drift between runs does not get
// blamed on — or credited to — observability.
func Obsrv(names []string, npkts int, seed int64, reps int) ([]ObsrvRow, error) {
	// Each timed run must serve for at least minDur: short runs put a
	// single scheduler preemption at percent scale, and the scraped
	// column needs several scrape cycles per run to be representative.
	const minDur = 600 * time.Millisecond
	if reps <= 0 {
		reps = 3
	}
	rows := make([]ObsrvRow, 0, len(names))
	for _, name := range names {
		nf, err := nfs.Load(name)
		if err != nil {
			return nil, err
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			return nil, err
		}
		trace := dataplaneTrace(name, npkts, seed)

		row := ObsrvRow{NF: name, TracePkts: len(trace)}
		// Calibrate the served-packet budget on the cheapest
		// configuration, then reuse it for every run so all three
		// columns serve identical traffic.
		limit := int64(1 << 17)
		for {
			ns, served, _, err := obsrvRun(an, name, trace, limit, nil, false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			if time.Duration(ns*float64(served)) >= minDur || limit >= 1<<24 {
				break
			}
			limit *= 2
		}
		row.ServedPkts = limit

		// Interleave configurations within each rep so slow drift of
		// machine load hits all three alike, then score overhead from
		// per-rep PAIRED ratios: on/off and scrape/off within one rep run
		// back to back, so a load phase that inflates one inflates the
		// others and divides out. Over reps, take the MINIMUM ratio — the
		// standard noisy-host estimator (same philosophy as the per-column
		// ns/pkt minima, and as Go benchmarking practice): the systematic
		// observability cost is present in every rep, while host-level
		// steal is positive-biased noise, so the cleanest rep is the one
		// that measures overhead rather than contention. The median is not
		// robust here — on this class of shared single-core host a steal
		// phase routinely contaminates 3 of 5 reps, producing ~8% phantom
		// "overhead" on rows whose paired minima agree to a fraction of a
		// percent. Negative results (noise landing in the off run of the
		// cleanest rep) are reported as-is: they show the noise floor.
		off, on, scrape := -1.0, -1.0, -1.0
		onRatio := make([]float64, 0, reps)
		scrRatio := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			offNs, _, _, err := obsrvRun(an, name, trace, limit, nil, false)
			if err != nil {
				return nil, fmt.Errorf("%s off: %w", name, err)
			}
			onNs, _, snap, err := obsrvRun(an, name, trace, limit, &obsrv.Options{}, false)
			if err != nil {
				return nil, fmt.Errorf("%s on: %w", name, err)
			}
			scrNs, _, _, err := obsrvRun(an, name, trace, limit, &obsrv.Options{}, true)
			if err != nil {
				return nil, fmt.Errorf("%s scrape: %w", name, err)
			}
			off = minPos(off, offNs)
			on = minPos(on, onNs)
			scrape = minPos(scrape, scrNs)
			onRatio = append(onRatio, onNs/offNs)
			scrRatio = append(scrRatio, scrNs/offNs)
			if snap != nil {
				row.DriftWindows = snap.Drift.Windows
				for i := range snap.Stages {
					if snap.Stages[i].Witness != "" {
						row.GapMatchers++
					}
				}
			}
		}
		row.OffNsPkt, row.OnNsPkt, row.ScrapeNsPkt = off, on, scrape
		row.OnPct = 100 * (minRatio(onRatio) - 1)
		row.ScrapePct = 100 * (minRatio(scrRatio) - 1)
		rows = append(rows, row)
	}
	return rows, nil
}

// obsrvRun serves `limit` packets of the looping trace through a fresh
// server and returns the amortized ns/packet, plus the final collector
// snapshot when observability was on.
func obsrvRun(an *core.Analysis, name string, trace []netpkt.Packet, limit int64, obsOpts *obsrv.Options, scrape bool) (nsPkt float64, served int64, snap *obsrv.Snapshot, err error) {
	src := serve.NewTraceSource(trace, true, limit)
	srv, err := serve.New(serve.Candidate{Analysis: an, Name: name}, serve.Config{
		Source: src,
		Obs:    obsOpts,
	})
	if err != nil {
		return 0, 0, nil, err
	}

	var h *obsrv.HTTP
	stop := make(chan struct{})
	scraped := make(chan struct{})
	if scrape {
		h, err = obsrv.NewHTTP("127.0.0.1:0", srv, obsrv.HTTPConfig{NF: name})
		if err != nil {
			return 0, 0, nil, err
		}
		defer h.Close()
		base := "http://" + h.Addr()
		go func() {
			defer close(scraped)
			paths := []string{"/metrics", "/coverage", "/swaps", "/state"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(obsrvScrapeEvery):
				}
				resp, err := http.Get(base + paths[i%len(paths)])
				if err != nil {
					continue // server drained mid-request
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	start := time.Now()
	runErr := srv.Run()
	elapsed := time.Since(start)
	close(stop)
	if scrape {
		<-scraped
	}
	if runErr != nil {
		return 0, 0, nil, runErr
	}
	st := srv.Stats()
	if st.Packets == 0 {
		return 0, 0, nil, fmt.Errorf("served no packets")
	}
	if st.EpochViolations != 0 {
		return 0, 0, nil, fmt.Errorf("epoch violations: %d", st.EpochViolations)
	}
	return float64(elapsed.Nanoseconds()) / float64(st.Packets), st.Packets, srv.Observed(), nil
}

func minPos(cur, v float64) float64 {
	if cur < 0 || v < cur {
		return v
	}
	return cur
}

// minRatio is the smallest paired ratio over reps (1 when empty).
func minRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// FormatObsrv renders the rows as a table.
func FormatObsrv(rows []ObsrvRow) string {
	var sb strings.Builder
	sb.WriteString("Serving-loop observability overhead (collectors off / on / on + concurrent scraper)\n")
	sb.WriteString(fmt.Sprintf("%-10s %9s | %11s %11s %11s | %8s %8s | %4s %7s\n",
		"NF", "pkts", "off ns/pkt", "on ns/pkt", "scr ns/pkt", "on ovh", "scr ovh", "gaps", "windows"))
	sb.WriteString(strings.Repeat("-", 104) + "\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %9d | %11.1f %11.1f %11.1f | %7.1f%% %7.1f%% | %4d %7d\n",
			r.NF, r.ServedPkts, r.OffNsPkt, r.OnNsPkt, r.ScrapeNsPkt, r.OnPct, r.ScrapePct, r.GapMatchers, r.DriftWindows))
	}
	return sb.String()
}
