package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

// ShardingRow is one (NF, shard count) cell of the multi-core scaling
// experiment: aggregate throughput of the sharded engine on a
// Zipf-skewed workload, after a differential equivalence gate against
// the sequential engine.
type ShardingRow struct {
	NF        string
	Shards    int
	TracePkts int
	NsPkt     float64
	PktsSec   float64
	// Speedup is aggregate pkts/sec relative to the same NF's 1-shard
	// row. On a single-core host every shard contends for the one CPU,
	// so values hover near (or below) 1.0 — the machine block in the
	// recorded JSON says which situation a run measured.
	Speedup float64
	// Handoffs counts packets that needed the serial hand-off path
	// (zero across the corpus: shards are statelessly decidable).
	Handoffs int64
	// DiffTrials/Mismatches report the equivalence gate that ran before
	// timing: sequential vs sharded in closed-loop lockstep.
	DiffTrials int
	Mismatches int
}

// shardingTrace builds the Zipf-skewed, closed-loop-safe stimulus for
// one NF: hot flows concentrate on their owner shard, the tail spreads,
// and client ports stay below every corpus allocator base.
func shardingTrace(name string, npkts int, seed int64) []netpkt.Packet {
	g := workload.New(seed)
	switch name {
	case "nat":
		tr := g.SkewedTrace(npkts, workload.ZipfOpts{Flows: 128, Churn: 0.01, VIP: "7.7.7.7", Port: 80})
		for i := range tr {
			tr[i].InIface = "lan"
		}
		return tr
	case "lb", "balance":
		return g.SkewedTrace(npkts, workload.ZipfOpts{Flows: 128, Churn: 0.01, VIP: "3.3.3.3", Port: 80})
	default:
		return g.SkewedTrace(npkts, workload.ZipfOpts{Flows: 128, Churn: 0.01})
	}
}

// Sharding measures aggregate throughput of the generalized sharded
// engine at each shard count, per NF. Before any timing, the sharded
// engine must pass the closed-loop differential gate against the
// sequential engine at the largest shard count — a fast engine that
// disagrees with the model is not an optimization. Rows run
// sequentially so the timings are faithful.
func Sharding(names []string, npkts int, seed int64, shardCounts []int, opts Opts) ([]ShardingRow, error) {
	const minDur = 300 * time.Millisecond
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	rows := make([]ShardingRow, 0, len(names)*len(shardCounts))
	for _, name := range names {
		nf, err := nfs.Load(name)
		if err != nil {
			return nil, err
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{
			Workers: opts.Workers,
			Cache:   opts.Cache,
			Perf:    opts.Perf,
		})
		if err != nil {
			return nil, err
		}
		trace := shardingTrace(name, npkts, seed)

		maxShards := shardCounts[0]
		for _, n := range shardCounts {
			if n > maxShards {
				maxShards = n
			}
		}
		diff, err := an.DiffTestSharded(trace, maxShards, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if diff.Mismatches > 0 {
			return nil, fmt.Errorf("%s: sharded engine diverges from sequential: %s", name, diff.FirstDiff)
		}

		var base float64
		for _, n := range shardCounts {
			sh, err := an.ShardedEngine(n, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			outs := make([]dataplane.Output, len(trace))
			// Warm: flow tables populated, allocators past their churn.
			if err := sh.ProcessBatch(trace, outs); err != nil {
				return nil, fmt.Errorf("%s engine: %w", name, err)
			}
			nsPkt, err := timeLoop(func() error {
				return sh.ProcessBatch(trace, outs)
			}, len(trace), minDur)
			if err != nil {
				return nil, fmt.Errorf("%s engine: %w", name, err)
			}
			if n == shardCounts[0] {
				base = nsPkt
			}
			rows = append(rows, ShardingRow{
				NF:         name,
				Shards:     n,
				TracePkts:  len(trace),
				NsPkt:      nsPkt,
				PktsSec:    1e9 / nsPkt,
				Speedup:    base / nsPkt,
				Handoffs:   sh.Handoffs(),
				DiffTrials: diff.Trials,
				Mismatches: diff.Mismatches,
			})
		}
	}
	return rows, nil
}

// FormatSharding renders the scaling rows grouped per NF.
func FormatSharding(rows []ShardingRow) string {
	var sb strings.Builder
	sb.WriteString("Sharded data plane scaling (Zipf workload, equivalence-gated)\n")
	sb.WriteString(fmt.Sprintf("%-10s %6s %7s | %10s %12s %8s | %8s %10s\n",
		"NF", "shards", "pkts", "ns/pkt", "pkts/s", "speedup", "handoff", "fuzz"))
	sb.WriteString(strings.Repeat("-", 92) + "\n")
	last := ""
	for _, r := range rows {
		if last != "" && r.NF != last {
			sb.WriteString("\n")
		}
		last = r.NF
		fuzz := fmt.Sprintf("%d/%d ok", r.DiffTrials-r.Mismatches, r.DiffTrials)
		if r.Mismatches > 0 {
			fuzz = fmt.Sprintf("%d MISMATCH", r.Mismatches)
		}
		sb.WriteString(fmt.Sprintf("%-10s %6d %7d | %10.0f %12.0f %7.2fx | %8d %10s\n",
			r.NF, r.Shards, r.TracePkts, r.NsPkt, r.PktsSec, r.Speedup, r.Handoffs, fuzz))
	}
	return sb.String()
}
