package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/nfs"
	"nfactor/internal/telemetry"
)

// TelemetryRow is one NF's telemetry-overhead measurement: the compiled
// engine on the same warmed trace with the always-on telemetry sink
// attached (the shipping configuration) and with it detached (the only
// configuration in which the counters are off). The overhead column is
// the price of observability; the acceptance bar is <=10%.
type TelemetryRow struct {
	NF          string
	TracePkts   int
	BaseNsPkt   float64 // sink detached
	TelNsPkt    float64 // sink attached, default 1-in-16 latency sampling
	OverheadPct float64
}

// Telemetry measures the per-packet cost of the telemetry sink on the
// compiled engine for each NF. Rows run sequentially so the timings are
// faithful.
func Telemetry(names []string, npkts int, seed int64, opts Opts) ([]TelemetryRow, error) {
	const minDur = 300 * time.Millisecond
	rows := make([]TelemetryRow, 0, len(names))
	for _, name := range names {
		nf, err := nfs.Load(name)
		if err != nil {
			return nil, err
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{
			Workers: opts.Workers,
			Cache:   opts.Cache,
			Perf:    opts.Perf,
		})
		if err != nil {
			return nil, err
		}
		trace := dataplaneTrace(name, npkts, seed)
		eng, err := an.CompiledEngine(core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		outs := make([]dataplane.Output, len(trace))

		// Warm: flow state populated, steady allocation.
		if err := eng.ProcessBatch(trace, outs); err != nil {
			return nil, fmt.Errorf("%s engine: %w", name, err)
		}

		replay := func() error { return eng.ProcessBatch(trace, outs) }

		// Telemetry on — the default, as Compile ships it.
		telNs, err := timeLoop(replay, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s telemetry on: %w", name, err)
		}
		// Telemetry off — detach the sink (bench-only configuration).
		eng.SetSink(nil)
		baseNs, err := timeLoop(replay, len(trace), minDur)
		if err != nil {
			return nil, fmt.Errorf("%s telemetry off: %w", name, err)
		}
		eng.SetSink(telemetry.NewSink(len(an.Model.Entries)))

		rows = append(rows, TelemetryRow{
			NF:          name,
			TracePkts:   len(trace),
			BaseNsPkt:   baseNs,
			TelNsPkt:    telNs,
			OverheadPct: 100 * (telNs - baseNs) / baseNs,
		})
	}
	return rows, nil
}

// FormatTelemetry renders the rows as a table.
func FormatTelemetry(rows []TelemetryRow) string {
	var sb strings.Builder
	sb.WriteString("Telemetry overhead on the compiled engine (same warmed trace, sink on vs off)\n")
	sb.WriteString(fmt.Sprintf("%-10s %7s | %11s %11s | %9s\n",
		"NF", "pkts", "off ns/pkt", "on ns/pkt", "overhead"))
	sb.WriteString(strings.Repeat("-", 58) + "\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %7d | %11.1f %11.1f | %8.1f%%\n",
			r.NF, r.TracePkts, r.BaseNsPkt, r.TelNsPkt, r.OverheadPct))
	}
	return sb.String()
}
