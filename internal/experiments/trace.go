package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/nfs"
	"nfactor/internal/trace"
)

// TraceRow is one NF's tracing-overhead measurement: the full synthesis
// pipeline timed with span tracing off (the shipping default — strictly
// zero-cost: the hot paths carry only nil checks) and on (one span per
// phase, explored state and refined entry). The acceptance bar is <5%
// overhead enabled and 0% disabled (the off column IS the baseline — a
// nil tracer leaves no code on the stepping path to pay for).
type TraceRow struct {
	NF         string
	Spans      int     // spans recorded by one traced synthesis
	BaseNsRun  float64 // tracing off
	TraceNsRun float64 // tracing on
	// OverheadPct is (on-off)/off; small negatives are timing noise.
	OverheadPct float64
}

// TraceOverhead measures the cost of synthesis tracing for each NF. Every
// timed run gets a FRESH solver cache and perf set: a shared cache would
// hand the second configuration pre-decided conjunctions and fake the
// comparison. Rows run sequentially so the timings are faithful.
func TraceOverhead(names []string, opts Opts) ([]TraceRow, error) {
	const minDur = 300 * time.Millisecond
	rows := make([]TraceRow, 0, len(names))
	for _, name := range names {
		nf, err := nfs.Load(name)
		if err != nil {
			return nil, err
		}
		run := func(traced bool) func() error {
			return func() error {
				copts := core.Options{Workers: opts.Workers}
				if traced {
					copts.Trace = trace.New()
				}
				_, err := core.Analyze(name, nf.Prog, copts)
				return err
			}
		}

		// Warm once (lazy parse/index state), then count spans from a
		// single traced synthesis.
		if err := run(false)(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		tr := trace.New()
		if _, err := core.Analyze(name, nf.Prog, core.Options{Workers: opts.Workers, Trace: tr}); err != nil {
			return nil, fmt.Errorf("%s traced: %w", name, err)
		}

		// Interleave repeated windows and keep each configuration's
		// minimum: for sub-millisecond pipelines the run-to-run variance
		// between two single 300ms windows (frequency scaling, GC) dwarfs
		// the effect being measured; minima of alternating windows cancel
		// the machine noise both configurations share.
		baseNs, traceNs := 0.0, 0.0
		for rep := 0; rep < 3; rep++ {
			b, err := timeLoop(run(false), 1, minDur)
			if err != nil {
				return nil, fmt.Errorf("%s tracing off: %w", name, err)
			}
			tn, err := timeLoop(run(true), 1, minDur)
			if err != nil {
				return nil, fmt.Errorf("%s tracing on: %w", name, err)
			}
			if rep == 0 || b < baseNs {
				baseNs = b
			}
			if rep == 0 || tn < traceNs {
				traceNs = tn
			}
		}

		rows = append(rows, TraceRow{
			NF:          name,
			Spans:       tr.SpanCount(),
			BaseNsRun:   baseNs,
			TraceNsRun:  traceNs,
			OverheadPct: 100 * (traceNs - baseNs) / baseNs,
		})
	}
	return rows, nil
}

// FormatTrace renders the rows as a table.
func FormatTrace(rows []TraceRow) string {
	var sb strings.Builder
	sb.WriteString("Synthesis tracing overhead (full pipeline, fresh solver cache per run, tracing on vs off)\n")
	sb.WriteString(fmt.Sprintf("%-10s %6s | %12s %12s | %9s\n",
		"NF", "spans", "off ns/run", "on ns/run", "overhead"))
	sb.WriteString(strings.Repeat("-", 60) + "\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %6d | %12.0f %12.0f | %8.1f%%\n",
			r.NF, r.Spans, r.BaseNsRun, r.TraceNsRun, r.OverheadPct))
	}
	return sb.String()
}
