// verifynet.go measures the §4 network-verification application at
// scale: symbolic invariant checking (internal/verify.SymNetwork) over
// topologies of increasing size built from corpus NF models — a linear
// service chain, a diamond DAG with two inspection paths joining at a
// shared load balancer, and an 8-host two-level fat-tree with an inline
// IPS on one pod's uplink. Each row records exploration wall time at 1
// worker vs a small pool on a cold solver cache, the cache hit rate
// (per-node config grounding makes verdicts transfer between nodes
// running the same NF), and whether the two worker counts produced
// byte-identical results — the explorer's determinism contract.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/model"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// VerifyNetRow is one topology's verification measurement.
type VerifyNetRow struct {
	Topology     string `json:"topology"`
	Nodes        int    `json:"nodes"`
	Links        int    `json:"links"`
	NFNodes      int    `json:"nf_nodes"`
	Invariants   int    `json:"invariants"`
	Explorations int    `json:"explorations"` // symbolic injections per check
	Violations   int    `json:"violations"`

	MsWorkers1 float64 `json:"ms_workers_1"` // cold-cache Check wall time, 1 worker
	MsWorkersN float64 `json:"ms_workers_n"` // cold-cache Check wall time, N workers
	WorkersN   int     `json:"workers_n"`
	Speedup    float64 `json:"speedup"`

	SatQueries   int64   `json:"sat_queries"`    // solver decisions in the 1-worker run
	CacheHitRate float64 `json:"cache_hit_rate"` // fraction answered from the cache

	// WorkerInvariant is true when the 1-worker and N-worker reports
	// render byte-identically (it must always be).
	WorkerInvariant bool `json:"worker_invariant"`
}

// verifyNetWorkers is the pool size for the parallel column.
const verifyNetWorkers = 4

// chainTopo is the linear service chain: every packet from the client
// traverses firewall → IPS → load balancer before reaching a backend.
func chainTopo() *verify.TopoFile {
	return &verify.TopoFile{
		Hosts: []verify.TopoHost{
			{Name: "h1", IP: "10.0.0.5"},
			{Name: "web1", IP: "1.1.1.1"},
			{Name: "web2", IP: "2.2.2.2"},
		},
		Switches: []verify.TopoSwitch{
			{Name: "lansw", Routes: map[string]string{"3.3.3.3": "lan"}},
			{Name: "wansw", Routes: map[string]string{"3.3.3.3": "eth0"}},
			{Name: "fabric", Routes: map[string]string{"1.1.1.1": "b1", "2.2.2.2": "b2"}},
		},
		NFs: []verify.TopoNF{
			{Name: "fw", NF: "firewall"},
			{Name: "ids", NF: "snortlite"},
			{Name: "lb", NF: "lb"},
		},
		Links: []verify.TopoLink{
			{From: "h1", Iface: "eth0", To: "lansw"},
			{From: "lansw", Iface: "lan", To: "fw"},
			{From: "fw", Iface: "wan", To: "wansw"},
			{From: "wansw", Iface: "eth0", To: "ids"},
			{From: "ids", Iface: "eth1", To: "lb"},
			{From: "lb", Iface: "eth0", To: "fabric"},
			{From: "fabric", Iface: "b1", To: "web1"},
			{From: "fabric", Iface: "b2", To: "web2"},
		},
		Invariants: []string{
			"reach(h1,web1)",
			"waypoint(h1,web1,ids)",
			"loopfree",
		},
	}
}

// diamondTopo is a DAG: two clients each behind their own IPS, the two
// inspection paths joining at one shared load balancer.
func diamondTopo() *verify.TopoFile {
	return &verify.TopoFile{
		Hosts: []verify.TopoHost{
			{Name: "h1", IP: "10.0.0.5"},
			{Name: "h2", IP: "10.0.0.6"},
			{Name: "web1", IP: "1.1.1.1"},
			{Name: "web2", IP: "2.2.2.2"},
		},
		Switches: []verify.TopoSwitch{
			{Name: "s1", Routes: map[string]string{"3.3.3.3": "up"}},
			{Name: "s2", Routes: map[string]string{"3.3.3.3": "up"}},
			{Name: "smid", Routes: map[string]string{"3.3.3.3": "svc"}},
			{Name: "fabric", Routes: map[string]string{"1.1.1.1": "b1", "2.2.2.2": "b2"}},
		},
		NFs: []verify.TopoNF{
			{Name: "ids1", NF: "snortlite"},
			{Name: "ids2", NF: "snortlite"},
			{Name: "lb", NF: "lb"},
		},
		Links: []verify.TopoLink{
			{From: "h1", Iface: "eth0", To: "s1"},
			{From: "s1", Iface: "up", To: "ids1"},
			{From: "ids1", Iface: "eth1", To: "smid"},
			{From: "h2", Iface: "eth0", To: "s2"},
			{From: "s2", Iface: "up", To: "ids2"},
			{From: "ids2", Iface: "eth1", To: "smid"},
			{From: "smid", Iface: "svc", To: "lb"},
			{From: "lb", Iface: "eth0", To: "fabric"},
			{From: "fabric", Iface: "b1", To: "web1"},
			{From: "fabric", Iface: "b2", To: "web2"},
		},
		Invariants: []string{
			"reach(h1,web1)",
			"reach(h2,web1)",
			"waypoint(h1,web1,ids1)",
			"waypoint(h2,web1,ids2)",
			"loopfree",
		},
	}
}

// fatTreeTopo is an 8-host two-level fat-tree: four edge switches with
// two hosts each, two cores, destination-routed with remote pods split
// across the cores by parity — except pod 0, whose entire uplink passes
// an inline IPS (so waypoint(h0,h7,ids) must hold while the reverse
// path legitimately bypasses it).
func fatTreeTopo() *verify.TopoFile {
	ip := func(i int) string { return fmt.Sprintf("10.0.%d.%d", i/2, i%2+1) }
	topo := &verify.TopoFile{
		NFs: []verify.TopoNF{{Name: "ids", NF: "snortlite"}},
		Invariants: []string{
			"reach(h0,h7)",
			"reach(h7,h0)",
			"waypoint(h0,h7,ids)",
			"loopfree",
		},
	}
	for i := 0; i < 8; i++ {
		topo.Hosts = append(topo.Hosts, verify.TopoHost{Name: fmt.Sprintf("h%d", i), IP: ip(i)})
	}
	for e := 0; e < 4; e++ {
		routes := map[string]string{}
		for j := 0; j < 8; j++ {
			switch {
			case j/2 == e:
				routes[ip(j)] = fmt.Sprintf("p%d", j%2)
			case e == 0:
				routes[ip(j)] = "up" // pod 0 egress is inspected
			case j/2%2 == 0:
				routes[ip(j)] = "u0"
			default:
				routes[ip(j)] = "u1"
			}
		}
		topo.Switches = append(topo.Switches, verify.TopoSwitch{Name: fmt.Sprintf("e%d", e), Routes: routes})
	}
	for c := 0; c < 2; c++ {
		routes := map[string]string{}
		for j := 0; j < 8; j++ {
			routes[ip(j)] = fmt.Sprintf("d%d", j/2)
		}
		topo.Switches = append(topo.Switches, verify.TopoSwitch{Name: fmt.Sprintf("c%d", c), Routes: routes})
	}
	for i := 0; i < 8; i++ {
		topo.Links = append(topo.Links,
			verify.TopoLink{From: fmt.Sprintf("h%d", i), Iface: "eth0", To: fmt.Sprintf("e%d", i/2)},
			verify.TopoLink{From: fmt.Sprintf("e%d", i/2), Iface: fmt.Sprintf("p%d", i%2), To: fmt.Sprintf("h%d", i)})
	}
	topo.Links = append(topo.Links,
		verify.TopoLink{From: "e0", Iface: "up", To: "ids"},
		verify.TopoLink{From: "ids", Iface: "eth1", To: "c0"})
	for e := 1; e < 4; e++ {
		topo.Links = append(topo.Links,
			verify.TopoLink{From: fmt.Sprintf("e%d", e), Iface: "u0", To: "c0"},
			verify.TopoLink{From: fmt.Sprintf("e%d", e), Iface: "u1", To: "c1"})
	}
	for c := 0; c < 2; c++ {
		for e := 0; e < 4; e++ {
			topo.Links = append(topo.Links,
				verify.TopoLink{From: fmt.Sprintf("c%d", c), Iface: fmt.Sprintf("d%d", e), To: fmt.Sprintf("e%d", e)})
		}
	}
	return topo
}

// verifyNetResolver analyzes each corpus NF once and hands out fresh
// config/state per node, like the CLI resolvers.
func verifyNetResolver(opts Opts) verify.NFResolver {
	cache := map[string]*core.Analysis{}
	return func(name string) (*model.Model, map[string]value.Value, map[string]value.Value, error) {
		an, ok := cache[name]
		if !ok {
			nf, err := nfs.Load(name)
			if err != nil {
				return nil, nil, nil, err
			}
			an, err = core.Analyze(name, nf.Prog, core.Options{Workers: opts.Workers, Cache: opts.Cache, Perf: opts.Perf})
			if err != nil {
				return nil, nil, nil, err
			}
			cache[name] = an
		}
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return an.Model, config, state, nil
	}
}

// VerifyNet checks each benchmark topology's invariants twice — 1
// worker and verifyNetWorkers workers, each on a cold solver cache — and
// reports wall times, cache effectiveness, and result consistency.
// Model synthesis happens before the clock starts; the rows time
// exploration only.
func VerifyNet(opts Opts) ([]VerifyNetRow, error) {
	specs := []struct {
		name string
		topo *verify.TopoFile
	}{
		{"chain", chainTopo()},
		{"diamond", diamondTopo()},
		{"fat-tree-8", fatTreeTopo()},
	}
	resolve := verifyNetResolver(opts)
	rows := make([]VerifyNetRow, 0, len(specs))
	for _, spec := range specs {
		invs, err := spec.topo.ParsedInvariants()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		net, err := spec.topo.Sym(resolve)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}

		cache1 := solver.NewCache()
		start := time.Now()
		rep1, err := net.Check(invs, verify.ExploreOpts{Workers: 1, Cache: cache1})
		ms1 := float64(time.Since(start).Microseconds()) / 1e3
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}

		start = time.Now()
		repN, err := net.Check(invs, verify.ExploreOpts{Workers: verifyNetWorkers, Cache: solver.NewCache()})
		msN := float64(time.Since(start).Microseconds()) / 1e3
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}

		cs := cache1.Stats()
		rows = append(rows, VerifyNetRow{
			Topology:        spec.name,
			Nodes:           len(spec.topo.Hosts) + len(spec.topo.Switches) + len(spec.topo.NFs),
			Links:           len(spec.topo.Links),
			NFNodes:         len(spec.topo.NFs),
			Invariants:      len(invs),
			Explorations:    rep1.Explorations,
			Violations:      len(rep1.Violations),
			MsWorkers1:      ms1,
			MsWorkersN:      msN,
			WorkersN:        verifyNetWorkers,
			Speedup:         ms1 / msN,
			SatQueries:      cs.SatHits + cs.SatMisses,
			CacheHitRate:    cs.SatHitRate(),
			WorkerInvariant: renderReport(rep1) == renderReport(repN),
		})
	}
	return rows, nil
}

// renderReport flattens a report for the worker-invariance comparison.
func renderReport(rep *verify.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explorations=%d\n", rep.Explorations)
	for _, v := range rep.Violations {
		sb.WriteString(v.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatVerifyNet renders the rows as a table.
func FormatVerifyNet(rows []VerifyNetRow) string {
	var sb strings.Builder
	sb.WriteString("Network verification: symbolic invariant checking vs topology size\n")
	sb.WriteString(fmt.Sprintf("%-11s %5s %5s %4s %4s %5s %5s | %9s %9s %7s | %7s %8s | %s\n",
		"topology", "nodes", "links", "nfs", "invs", "injs", "viols", "1w ms", fmt.Sprintf("%dw ms", verifyNetWorkers), "speedup", "sat q", "cache", "consistent"))
	sb.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range rows {
		consistent := "yes"
		if !r.WorkerInvariant {
			consistent = "NO (BUG)"
		}
		sb.WriteString(fmt.Sprintf("%-11s %5d %5d %4d %4d %5d %5d | %9.1f %9.1f %6.2fx | %7d %7.1f%% | %s\n",
			r.Topology, r.Nodes, r.Links, r.NFNodes, r.Invariants, r.Explorations, r.Violations,
			r.MsWorkers1, r.MsWorkersN, r.Speedup, r.SatQueries, 100*r.CacheHitRate, consistent))
	}
	return sb.String()
}
