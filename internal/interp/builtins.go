package interp

import (
	"fmt"
	"strings"

	"nfactor/internal/lang"
	"nfactor/internal/value"
)

// Builtins recognized by the interpreter (and, symbolically, by the
// executor). Per the paper's assumption (§3.1), packet I/O goes through
// standard library functions — send() here — which is how NFactor locates
// the packet output statements.
var builtinNames = map[string]bool{
	"send": true, "drop": true, "log": true,
	"hash": true, "len": true, "del": true, "keys": true,
	"tcp_flag": true, "str_contains": true,
}

// IsBuiltin reports whether name is an interpreter builtin.
func IsBuiltin(name string) bool { return builtinNames[name] }

const maxCallDepth = 64

func (in *Interp) evalCall(ex *lang.CallExpr, e *env) (value.Value, error) {
	if fn := in.prog.Func(ex.Fun); fn != nil {
		return in.callUser(fn, ex, e)
	}
	args := make([]value.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := in.eval(a, e)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	switch ex.Fun {
	case "send":
		if len(args) < 1 || len(args) > 2 {
			return value.Value{}, fmt.Errorf("%s: send takes (pkt) or (pkt, iface)", ex.Pos)
		}
		if args[0].Kind != value.KindPacket {
			return value.Value{}, fmt.Errorf("%s: send of %s", ex.Pos, args[0].Kind)
		}
		iface := ""
		if len(args) == 2 {
			if args[1].Kind != value.KindStr {
				return value.Value{}, fmt.Errorf("%s: send iface must be string", ex.Pos)
			}
			iface = args[1].S
		}
		in.out.Sent = append(in.out.Sent, SentPacket{Pkt: args[0].Clone(), Iface: iface})
		return value.Nil(), nil
	case "drop":
		if len(args) != 0 {
			return value.Value{}, fmt.Errorf("%s: drop takes no arguments", ex.Pos)
		}
		return value.Nil(), nil
	case "log":
		parts := make([]string, len(args))
		for i, a := range args {
			if a.Kind == value.KindStr {
				parts[i] = a.S
			} else {
				parts[i] = a.String()
			}
		}
		in.out.Logs = append(in.out.Logs, strings.Join(parts, " "))
		return value.Nil(), nil
	case "hash":
		if len(args) != 1 {
			return value.Value{}, fmt.Errorf("%s: hash takes 1 argument", ex.Pos)
		}
		h, err := value.Hash(args[0])
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return value.Int(h), nil
	case "len":
		if len(args) != 1 {
			return value.Value{}, fmt.Errorf("%s: len takes 1 argument", ex.Pos)
		}
		n, err := args[0].Len()
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return value.Int(int64(n)), nil
	case "del":
		if len(args) != 2 || args[0].Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("%s: del takes (map, key)", ex.Pos)
		}
		if err := args[0].Map.Delete(args[1]); err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return value.Nil(), nil
	case "keys":
		if len(args) != 1 || args[0].Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("%s: keys takes a map", ex.Pos)
		}
		return value.NewList(args[0].Map.Keys()...), nil
	case "str_contains":
		if len(args) != 2 || args[0].Kind != value.KindStr || args[1].Kind != value.KindStr {
			return value.Value{}, fmt.Errorf("%s: str_contains takes two strings", ex.Pos)
		}
		return value.Bool(strings.Contains(args[0].S, args[1].S)), nil
	case "tcp_flag":
		// tcp_flag(pkt, "SYN") — tests a flag letter in the packet's
		// flags field (a string like "SA").
		if len(args) != 2 || args[0].Kind != value.KindPacket || args[1].Kind != value.KindStr {
			return value.Value{}, fmt.Errorf("%s: tcp_flag takes (pkt, flag)", ex.Pos)
		}
		flags, ok := args[0].Pkt.Fields["flags"]
		if !ok || flags.Kind != value.KindStr {
			return value.Bool(false), nil
		}
		return value.Bool(strings.Contains(flags.S, args[1].S)), nil
	default:
		return value.Value{}, fmt.Errorf("%s: unknown function %q", ex.Pos, ex.Fun)
	}
}

func (in *Interp) callUser(fn *lang.FuncDecl, ex *lang.CallExpr, e *env) (value.Value, error) {
	if len(ex.Args) != len(fn.Params) {
		return value.Value{}, fmt.Errorf("%s: %s expects %d args, got %d", ex.Pos, fn.Name, len(fn.Params), len(ex.Args))
	}
	if in.depth >= maxCallDepth {
		return value.Value{}, fmt.Errorf("%s: call depth exceeded calling %s", ex.Pos, fn.Name)
	}
	callEnv := newEnv(nil)
	for i, p := range fn.Params {
		v, err := in.eval(ex.Args[i], e)
		if err != nil {
			return value.Value{}, err
		}
		callEnv.vars[p] = v
	}
	in.depth++
	c, err := in.execBlock(fn.Body, callEnv)
	in.depth--
	if err != nil {
		return value.Value{}, err
	}
	if c.sig == sigReturn {
		return c.val, nil
	}
	return value.Nil(), nil
}
