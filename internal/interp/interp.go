// Package interp is the concrete NFLang interpreter: it runs an NF
// program (the "original program" side of the paper's §5 accuracy
// experiment) packet by packet, maintaining its persistent state and
// capturing the forwarding output.
package interp

import (
	"fmt"
	"sort"

	"nfactor/internal/lang"
	"nfactor/internal/value"
)

// SentPacket is one packet emitted by send().
type SentPacket struct {
	Pkt   value.Value // a packet value (snapshot at send time)
	Iface string      // output interface ("" when unspecified)
}

// Output is the observable result of processing one packet.
type Output struct {
	Sent    []SentPacket
	Logs    []string
	Dropped bool // true when the invocation sent nothing (implicit drop)
}

// Options configure the interpreter.
type Options struct {
	// MaxSteps bounds the number of statements executed per invocation
	// (guards against unbounded loops). 0 means the default (100000).
	MaxSteps int
	// ConfigOverride replaces the initial values of the named globals
	// before the program's globals run (how an operator "configures" the
	// NF, e.g. mode = "HASH").
	ConfigOverride map[string]value.Value
}

// Interp holds a running NF instance: the program plus its persistent
// global state.
type Interp struct {
	prog     *lang.Program
	entry    string
	globals  map[string]value.Value
	maxSteps int
	steps    int
	out      *Output
	depth    int
	trace    map[int]bool // statement IDs executed (when tracing)
}

// New instantiates the NF program, executing its top-level global
// initializers. entry is the per-packet function (usually "process").
func New(prog *lang.Program, entry string, opts Options) (*Interp, error) {
	if prog.Func(entry) == nil {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100000
	}
	in := &Interp{
		prog:     prog,
		entry:    entry,
		globals:  make(map[string]value.Value),
		maxSteps: maxSteps,
	}
	env := newEnv(nil)
	for _, g := range prog.Globals {
		in.steps = 0
		in.out = &Output{}
		if _, err := in.execStmt(g, env); err != nil {
			return nil, fmt.Errorf("interp: initializing globals: %w", err)
		}
	}
	// Locals assigned at top level are globals by definition.
	for k, v := range env.vars {
		in.globals[k] = v
	}
	for k, v := range opts.ConfigOverride {
		if _, ok := in.globals[k]; !ok {
			return nil, fmt.Errorf("interp: config override for unknown global %q", k)
		}
		in.globals[k] = v
	}
	return in, nil
}

// Globals returns a snapshot of the NF's current persistent state, sorted
// by name.
func (in *Interp) Globals() map[string]value.Value {
	out := make(map[string]value.Value, len(in.globals))
	for k, v := range in.globals {
		out[k] = v
	}
	return out
}

// GlobalNames returns the persistent variable names, sorted.
func (in *Interp) GlobalNames() []string {
	out := make([]string, 0, len(in.globals))
	for k := range in.globals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Process runs the entry function on pkt (which is deep-copied first, so
// callers can reuse packet values) and returns the captured output.
func (in *Interp) Process(pkt value.Value) (*Output, error) {
	out, _, err := in.processInner(pkt, false)
	return out, err
}

// ProcessTraced is Process, additionally recording the set of statement
// IDs executed — the execution trace that dynamic slicing (Agrawal &
// Horgan, the paper's reference [3]) intersects with the static slice.
func (in *Interp) ProcessTraced(pkt value.Value) (*Output, map[int]bool, error) {
	return in.processInner(pkt, true)
}

func (in *Interp) processInner(pkt value.Value, traced bool) (*Output, map[int]bool, error) {
	if pkt.Kind != value.KindPacket {
		return nil, nil, fmt.Errorf("interp: Process wants a packet, got %s", pkt.Kind)
	}
	fn := in.prog.Func(in.entry)
	if len(fn.Params) != 1 {
		return nil, nil, fmt.Errorf("interp: %s must take exactly the packet parameter", in.entry)
	}
	in.steps = 0
	in.out = &Output{}
	in.trace = nil
	if traced {
		in.trace = map[int]bool{}
	}
	env := newEnv(nil)
	env.vars[fn.Params[0]] = pkt.Clone()
	if _, err := in.execBlock(fn.Body, env); err != nil {
		return nil, nil, err
	}
	out := in.out
	out.Dropped = len(out.Sent) == 0
	trace := in.trace
	in.trace = nil
	return out, trace, nil
}

// environment

type env struct {
	vars   map[string]value.Value
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: map[string]value.Value{}, parent: parent}
}

func (in *Interp) lookup(e *env, name string) (value.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	v, ok := in.globals[name]
	return v, ok
}

// assign writes name: an existing local is updated in its scope, an
// existing global is updated globally, otherwise a new local is created
// (Python-like, with implicit `global` for existing globals — matching
// how the static analyses treat names).
func (in *Interp) assign(e *env, name string, v value.Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	if _, ok := in.globals[name]; ok {
		in.globals[name] = v
		return
	}
	e.vars[name] = v
}

// control-flow signals

type signal int

const (
	sigNone signal = iota
	sigReturn
	sigBreak
	sigContinue
)

type ctrl struct {
	sig signal
	val value.Value
}

func (in *Interp) step(pos lang.Pos) error {
	in.steps++
	if in.steps > in.maxSteps {
		return fmt.Errorf("interp: step budget exceeded at %s (unbounded loop?)", pos)
	}
	return nil
}

func (in *Interp) execBlock(b *lang.BlockStmt, e *env) (ctrl, error) {
	for _, s := range b.Stmts {
		c, err := in.execStmt(s, e)
		if err != nil {
			return ctrl{}, err
		}
		if c.sig != sigNone {
			return c, nil
		}
	}
	return ctrl{}, nil
}

func (in *Interp) execStmt(s lang.Stmt, e *env) (ctrl, error) {
	if err := in.step(s.NodePos()); err != nil {
		return ctrl{}, err
	}
	if in.trace != nil {
		in.trace[s.StmtID()] = true
	}
	switch st := s.(type) {
	case *lang.AssignStmt:
		return ctrl{}, in.execAssign(st, e)
	case *lang.ExprStmt:
		_, err := in.eval(st.X, e)
		return ctrl{}, err
	case *lang.IfStmt:
		cond, err := in.eval(st.Cond, e)
		if err != nil {
			return ctrl{}, err
		}
		b, err := cond.IsTruthy()
		if err != nil {
			return ctrl{}, fmt.Errorf("%s: %w", st.NodePos(), err)
		}
		if b {
			return in.execBlock(st.Then, e)
		}
		if st.Else != nil {
			return in.execBlock(st.Else, e)
		}
		return ctrl{}, nil
	case *lang.WhileStmt:
		for {
			if err := in.step(st.NodePos()); err != nil {
				return ctrl{}, err
			}
			cond, err := in.eval(st.Cond, e)
			if err != nil {
				return ctrl{}, err
			}
			b, err := cond.IsTruthy()
			if err != nil {
				return ctrl{}, fmt.Errorf("%s: %w", st.NodePos(), err)
			}
			if !b {
				return ctrl{}, nil
			}
			c, err := in.execBlock(st.Body, e)
			if err != nil {
				return ctrl{}, err
			}
			switch c.sig {
			case sigReturn:
				return c, nil
			case sigBreak:
				return ctrl{}, nil
			}
		}
	case *lang.ForStmt:
		iter, err := in.eval(st.Iter, e)
		if err != nil {
			return ctrl{}, err
		}
		elems, err := iterElems(iter)
		if err != nil {
			return ctrl{}, fmt.Errorf("%s: %w", st.NodePos(), err)
		}
		for _, el := range elems {
			if err := in.step(st.NodePos()); err != nil {
				return ctrl{}, err
			}
			in.assign(e, st.Var, el)
			c, err := in.execBlock(st.Body, e)
			if err != nil {
				return ctrl{}, err
			}
			if c.sig == sigReturn {
				return c, nil
			}
			if c.sig == sigBreak {
				break
			}
		}
		return ctrl{}, nil
	case *lang.ReturnStmt:
		c := ctrl{sig: sigReturn}
		if st.Value != nil {
			v, err := in.eval(st.Value, e)
			if err != nil {
				return ctrl{}, err
			}
			c.val = v
		}
		return c, nil
	case *lang.BreakStmt:
		return ctrl{sig: sigBreak}, nil
	case *lang.ContinueStmt:
		return ctrl{sig: sigContinue}, nil
	case *lang.BlockStmt:
		return in.execBlock(st, e)
	default:
		return ctrl{}, fmt.Errorf("interp: unsupported statement %T", s)
	}
}

func iterElems(v value.Value) ([]value.Value, error) {
	switch v.Kind {
	case value.KindList:
		return append([]value.Value(nil), v.List.Elems...), nil
	case value.KindTuple:
		return append([]value.Value(nil), v.Tuple...), nil
	case value.KindMap:
		return v.Map.Keys(), nil
	default:
		return nil, fmt.Errorf("cannot iterate %s", v.Kind)
	}
}

func (in *Interp) execAssign(st *lang.AssignStmt, e *env) error {
	// Evaluate all RHS first (parallel assignment semantics).
	var vals []value.Value
	if len(st.RHS) == 1 && len(st.LHS) > 1 {
		v, err := in.eval(st.RHS[0], e)
		if err != nil {
			return err
		}
		if v.Kind != value.KindTuple || len(v.Tuple) != len(st.LHS) {
			return fmt.Errorf("%s: cannot unpack %s into %d targets", st.NodePos(), v.Kind, len(st.LHS))
		}
		vals = v.Tuple
	} else {
		for _, r := range st.RHS {
			v, err := in.eval(r, e)
			if err != nil {
				return err
			}
			vals = append(vals, v)
		}
	}
	for i, l := range st.LHS {
		if err := in.assignTo(l, vals[i], e); err != nil {
			return fmt.Errorf("%s: %w", st.NodePos(), err)
		}
	}
	return nil
}

func (in *Interp) assignTo(l lang.Expr, v value.Value, e *env) error {
	switch lv := l.(type) {
	case *lang.Ident:
		in.assign(e, lv.Name, v)
		return nil
	case *lang.IndexExpr:
		container, err := in.eval(lv.X, e)
		if err != nil {
			return err
		}
		idx, err := in.eval(lv.Index, e)
		if err != nil {
			return err
		}
		return value.SetIndex(container, idx, v)
	case *lang.FieldExpr:
		container, err := in.eval(lv.X, e)
		if err != nil {
			return err
		}
		if container.Kind != value.KindPacket {
			return fmt.Errorf("field assignment on %s", container.Kind)
		}
		container.Pkt.Fields[lv.Name] = v
		return nil
	default:
		return fmt.Errorf("invalid assignment target %T", l)
	}
}

func (in *Interp) eval(x lang.Expr, e *env) (value.Value, error) {
	switch ex := x.(type) {
	case *lang.Ident:
		v, ok := in.lookup(e, ex.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("%s: undefined variable %q", ex.Pos, ex.Name)
		}
		return v, nil
	case *lang.IntLit:
		return value.Int(ex.Val), nil
	case *lang.StrLit:
		return value.Str(ex.Val), nil
	case *lang.BoolLit:
		return value.Bool(ex.Val), nil
	case *lang.NilLit:
		return value.Nil(), nil
	case *lang.TupleLit:
		elems := make([]value.Value, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := in.eval(el, e)
			if err != nil {
				return value.Value{}, err
			}
			elems[i] = v
		}
		return value.TupleOf(elems...), nil
	case *lang.ListLit:
		elems := make([]value.Value, len(ex.Elems))
		for i, el := range ex.Elems {
			v, err := in.eval(el, e)
			if err != nil {
				return value.Value{}, err
			}
			elems[i] = v
		}
		return value.NewList(elems...), nil
	case *lang.MapLit:
		m := value.NewMap()
		for i := range ex.Keys {
			k, err := in.eval(ex.Keys[i], e)
			if err != nil {
				return value.Value{}, err
			}
			v, err := in.eval(ex.Vals[i], e)
			if err != nil {
				return value.Value{}, err
			}
			if err := m.Map.Set(k, v); err != nil {
				return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
			}
		}
		return m, nil
	case *lang.UnaryExpr:
		v, err := in.eval(ex.X, e)
		if err != nil {
			return value.Value{}, err
		}
		r, err := value.UnOp(ex.Op, v)
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return r, nil
	case *lang.BinaryExpr:
		return in.evalBinary(ex, e)
	case *lang.IndexExpr:
		c, err := in.eval(ex.X, e)
		if err != nil {
			return value.Value{}, err
		}
		idx, err := in.eval(ex.Index, e)
		if err != nil {
			return value.Value{}, err
		}
		r, err := value.Index(c, idx)
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return r, nil
	case *lang.FieldExpr:
		c, err := in.eval(ex.X, e)
		if err != nil {
			return value.Value{}, err
		}
		if c.Kind != value.KindPacket {
			return value.Value{}, fmt.Errorf("%s: field access on %s", ex.Pos, c.Kind)
		}
		f, ok := c.Pkt.Fields[ex.Name]
		if !ok {
			return value.Value{}, fmt.Errorf("%s: packet has no field %q", ex.Pos, ex.Name)
		}
		return f, nil
	case *lang.CallExpr:
		return in.evalCall(ex, e)
	default:
		return value.Value{}, fmt.Errorf("interp: unsupported expression %T", x)
	}
}

func (in *Interp) evalBinary(ex *lang.BinaryExpr, e *env) (value.Value, error) {
	// Short-circuit boolean operators.
	if ex.Op == "&&" || ex.Op == "||" {
		l, err := in.eval(ex.X, e)
		if err != nil {
			return value.Value{}, err
		}
		lb, err := l.IsTruthy()
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		if (ex.Op == "&&" && !lb) || (ex.Op == "||" && lb) {
			return value.Bool(lb), nil
		}
		r, err := in.eval(ex.Y, e)
		if err != nil {
			return value.Value{}, err
		}
		rb, err := r.IsTruthy()
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return value.Bool(rb), nil
	}
	l, err := in.eval(ex.X, e)
	if err != nil {
		return value.Value{}, err
	}
	r, err := in.eval(ex.Y, e)
	if err != nil {
		return value.Value{}, err
	}
	if ex.Op == "in" {
		if r.Kind != value.KindMap {
			return value.Value{}, fmt.Errorf("%s: `in` on %s", ex.Pos, r.Kind)
		}
		_, ok, err := r.Map.Get(l)
		if err != nil {
			return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
		}
		return value.Bool(ok), nil
	}
	v, err := value.BinOp(ex.Op, l, r)
	if err != nil {
		return value.Value{}, fmt.Errorf("%s: %w", ex.Pos, err)
	}
	return v, nil
}
