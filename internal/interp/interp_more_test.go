package interp

import (
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/value"
)

func TestIsBuiltin(t *testing.T) {
	for _, b := range []string{"send", "drop", "log", "hash", "len", "del", "keys", "tcp_flag"} {
		if !IsBuiltin(b) {
			t.Errorf("%q not recognized as builtin", b)
		}
	}
	if IsBuiltin("process") || IsBuiltin("sniff") {
		t.Error("non-builtin recognized")
	}
}

func TestGlobalNames(t *testing.T) {
	in := mustNew(t, `
b = 2;
a = 1;
func process(pkt) { send(pkt); }`, Options{})
	names := in.GlobalNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("GlobalNames = %v", names)
	}
}

func TestIterateTupleAndMap(t *testing.T) {
	in := mustNew(t, `
m = {"x": 1, "y": 2};
func process(pkt) {
    total = 0;
    t = (10, 20, 30);
    for v in t {
        total = total + v;
    }
    nkeys = 0;
    for k in m {
        nkeys = nkeys + 1;
    }
    pkt.total = total;
    pkt.nkeys = nkeys;
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Sent[0].Pkt.Pkt.Fields
	if f["total"].I != 60 || f["nkeys"].I != 2 {
		t.Errorf("total=%v nkeys=%v", f["total"], f["nkeys"])
	}
	// iterating an int errors
	in2 := mustNew(t, `func process(pkt) { for v in 5 { send(pkt); } }`, Options{})
	if _, err := in2.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("iterating int did not error")
	}
}

func TestNestedIndexAssignment(t *testing.T) {
	in := mustNew(t, `
m = {};
func process(pkt) {
    m[1] = [0, 0];
    inner = m[1];
    inner[0] = 42;
    pkt.v = m[1][0];
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	// Lists are reference values: mutating `inner` mutates m[1].
	if out.Sent[0].Pkt.Pkt.Fields["v"].I != 42 {
		t.Errorf("v = %v", out.Sent[0].Pkt.Pkt.Fields["v"])
	}
}

func TestShortCircuitGuardsMapRead(t *testing.T) {
	in := mustNew(t, `
m = {};
func process(pkt) {
    if pkt.sport in m && m[pkt.sport] == 1 {
        pkt.hit = true;
    } else {
        pkt.hit = false;
    }
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 7, "2.2.2.2", 80))
	if err != nil {
		t.Fatalf("short-circuit failed to guard the map read: %v", err)
	}
	if out.Sent[0].Pkt.Pkt.Fields["hit"].B {
		t.Error("empty map reported a hit")
	}
}

func TestVoidUserFunctionReturnsNil(t *testing.T) {
	in := mustNew(t, `
seen = {};
func note(k) {
    seen[k] = 1;
}
func process(pkt) {
    note(pkt.sport);
    pkt.n = len(seen);
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 9, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent[0].Pkt.Pkt.Fields["n"].I != 1 {
		t.Error("void helper side effect lost")
	}
}

func TestSendWithBadIface(t *testing.T) {
	in := mustNew(t, `func process(pkt) { send(pkt, 42); }`, Options{})
	if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("non-string iface did not error")
	}
	in2 := mustNew(t, `func process(pkt) { send(pkt, "a", "b"); }`, Options{})
	if _, err := in2.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("3-arg send did not error")
	}
}

func TestBuiltinArityErrors(t *testing.T) {
	for _, src := range []string{
		`func process(pkt) { x = hash(); }`,
		`func process(pkt) { x = len(1, 2); }`,
		`func process(pkt) { del(1); }`,
		`m = {}; func process(pkt) { del(1, 2); }`,
		`func process(pkt) { x = keys(1); }`,
		`func process(pkt) { x = tcp_flag(pkt); }`,
		`func process(pkt) { drop(1); }`,
	} {
		in := mustNew(t, src, Options{})
		if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
			t.Errorf("no arity error for %q", src)
		}
	}
}

func TestUserFuncWrongArity(t *testing.T) {
	in := mustNew(t, `
func f(a, b) { return a; }
func process(pkt) { x = f(1); }`, Options{})
	if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("wrong user-func arity did not error")
	}
}

func TestProcessRejectsNonPacketAndWrongEntry(t *testing.T) {
	in := mustNew(t, `func process(pkt) { send(pkt); }`, Options{})
	if _, err := in.Process(value.Int(5)); err == nil {
		t.Error("Process(int) did not error")
	}
	prog := lang.MustParse(`func process(a, b) { send(a); }`)
	in2, err := New(prog, "process", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in2.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("two-parameter entry did not error")
	}
}

func TestTupleUnpackErrors(t *testing.T) {
	in := mustNew(t, `func process(pkt) { a, b = (1, 2, 3); }`, Options{})
	if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("arity-mismatched unpack did not error")
	}
	in2 := mustNew(t, `func process(pkt) { a, b = 5; }`, Options{})
	if _, err := in2.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("unpack of scalar did not error")
	}
}
