package interp

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/value"
)

func pkt(fields map[string]value.Value) value.Value { return value.NewPacket(fields) }

func tcpPkt(sip string, sport int64, dip string, dport int64) value.Value {
	return pkt(map[string]value.Value{
		"sip": value.Str(sip), "sport": value.Int(sport),
		"dip": value.Str(dip), "dport": value.Int(dport),
		"proto": value.Str("tcp"), "flags": value.Str(""),
	})
}

func mustNew(t *testing.T, src string, opts Options) *Interp {
	t.Helper()
	in, err := New(lang.MustParse(src), "process", opts)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSendAndDrop(t *testing.T) {
	in := mustNew(t, `
func process(pkt) {
    if pkt.dport == 80 {
        send(pkt, "eth0");
    }
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1234, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped || len(out.Sent) != 1 || out.Sent[0].Iface != "eth0" {
		t.Errorf("out = %+v", out)
	}
	out, err = in.Process(tcpPkt("1.1.1.1", 1234, "2.2.2.2", 22))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped || len(out.Sent) != 0 {
		t.Errorf("non-matching packet not dropped: %+v", out)
	}
}

func TestStatePersistsAcrossPackets(t *testing.T) {
	in := mustNew(t, `
count = 0;
func process(pkt) {
    count = count + 1;
    pkt.seq = count;
    send(pkt);
}`, Options{})
	for i := int64(1); i <= 3; i++ {
		out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Sent[0].Pkt.Pkt.Fields["seq"].I; got != i {
			t.Errorf("packet %d seq = %d", i, got)
		}
	}
	if in.Globals()["count"].I != 3 {
		t.Errorf("count = %v", in.Globals()["count"])
	}
}

func TestConfigOverride(t *testing.T) {
	src := `
mode = "RR";
func process(pkt) {
    if mode == "RR" { pkt.tag = 1; } else { pkt.tag = 2; }
    send(pkt);
}`
	in := mustNew(t, src, Options{ConfigOverride: map[string]value.Value{"mode": value.Str("HASH")}})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent[0].Pkt.Pkt.Fields["tag"].I != 2 {
		t.Error("config override did not take effect")
	}
	if _, err := New(lang.MustParse(src), "process", Options{ConfigOverride: map[string]value.Value{"nope": value.Int(1)}}); err == nil {
		t.Error("override of unknown global did not error")
	}
}

func TestMapStateAndMembership(t *testing.T) {
	in := mustNew(t, `
seen = {};
func process(pkt) {
    k = (pkt.sip, pkt.sport);
    if k in seen {
        pkt.dup = true;
    } else {
        seen[k] = true;
        pkt.dup = false;
    }
    send(pkt);
}`, Options{})
	p := tcpPkt("1.1.1.1", 5, "2.2.2.2", 80)
	out, _ := in.Process(p)
	if out.Sent[0].Pkt.Pkt.Fields["dup"].B {
		t.Error("first packet marked dup")
	}
	out, _ = in.Process(p)
	if !out.Sent[0].Pkt.Pkt.Fields["dup"].B {
		t.Error("second packet not marked dup")
	}
}

func TestParallelAssignmentAndUnpack(t *testing.T) {
	in := mustNew(t, `
func process(pkt) {
    a, b = pkt.sport, pkt.dport;
    pkt.sport, pkt.dport = b, a;
    t = (1, 2);
    x, y = t;
    pkt.sum = x + y;
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 10, "2.2.2.2", 20))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Sent[0].Pkt.Pkt.Fields
	if f["sport"].I != 20 || f["dport"].I != 10 || f["sum"].I != 3 {
		t.Errorf("fields = %v", f)
	}
}

func TestWhileAndBreakContinue(t *testing.T) {
	in := mustNew(t, `
func process(pkt) {
    i = 0;
    total = 0;
    while i < 10 {
        i = i + 1;
        if i == 3 { continue; }
        if i == 6 { break; }
        total = total + i;
    }
    pkt.total = total;
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	// 1+2+4+5 = 12
	if out.Sent[0].Pkt.Pkt.Fields["total"].I != 12 {
		t.Errorf("total = %v", out.Sent[0].Pkt.Pkt.Fields["total"])
	}
}

func TestForInList(t *testing.T) {
	in := mustNew(t, `
servers = [("1.1.1.1", 80), ("2.2.2.2", 81)];
func process(pkt) {
    n = 0;
    for s in servers {
        n = n + s[1];
    }
    pkt.n = n;
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent[0].Pkt.Pkt.Fields["n"].I != 161 {
		t.Errorf("n = %v", out.Sent[0].Pkt.Pkt.Fields["n"])
	}
}

func TestUserFunctionCall(t *testing.T) {
	in := mustNew(t, `
func double(x) { return x * 2; }
func process(pkt) {
    pkt.sport = double(pkt.sport);
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 21, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent[0].Pkt.Pkt.Fields["sport"].I != 42 {
		t.Error("user function call failed")
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	in := mustNew(t, `
func f(x) { return f(x); }
func process(pkt) { y = f(1); }`, Options{})
	if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("infinite recursion did not error")
	}
}

func TestStepBudget(t *testing.T) {
	in := mustNew(t, `
func process(pkt) { while true { x = 1; } }`, Options{MaxSteps: 100})
	if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
		t.Error("unbounded loop did not hit step budget")
	}
}

func TestLogBuiltin(t *testing.T) {
	in := mustNew(t, `
func process(pkt) {
    log("saw port", pkt.dport);
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Logs) != 1 || !strings.Contains(out.Logs[0], "80") {
		t.Errorf("logs = %v", out.Logs)
	}
}

func TestBuiltinsHashLenDelKeys(t *testing.T) {
	in := mustNew(t, `
m = {};
func process(pkt) {
    m[1] = "a";
    m[2] = "b";
    del(m, 1);
    pkt.n = len(m);
    pkt.h = hash(pkt.sip) % 97;
    ks = keys(m);
    pkt.k0 = ks[0];
    send(pkt);
}`, Options{})
	out, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Sent[0].Pkt.Pkt.Fields
	if f["n"].I != 1 || f["k0"].I != 2 {
		t.Errorf("fields = %v", f)
	}
	if f["h"].I < 0 || f["h"].I >= 97 {
		t.Errorf("hash out of range: %v", f["h"])
	}
}

func TestTCPFlagBuiltin(t *testing.T) {
	in := mustNew(t, `
func process(pkt) {
    if tcp_flag(pkt, "S") && !tcp_flag(pkt, "A") {
        pkt.kind = "syn";
    } else {
        pkt.kind = "other";
    }
    send(pkt);
}`, Options{})
	p := tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)
	p.Pkt.Fields["flags"] = value.Str("S")
	out, _ := in.Process(p)
	if out.Sent[0].Pkt.Pkt.Fields["kind"].S != "syn" {
		t.Error("SYN not detected")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`func process(pkt) { x = undefinedvar; }`,
		`func process(pkt) { x = pkt.nosuchfield; }`,
		`func process(pkt) { x = 1 / 0; }`,
		`func process(pkt) { if pkt.sport { } }`, // non-bool condition
		`m = {}; func process(pkt) { x = m["absent"]; }`,
		`func process(pkt) { send(1); }`,
		`func process(pkt) { x = unknownfn(1); }`,
		`lst = [1]; func process(pkt) { x = lst[5]; }`,
	}
	for _, src := range cases {
		in := mustNew(t, src, Options{})
		if _, err := in.Process(tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestProcessDoesNotMutateCallerPacket(t *testing.T) {
	in := mustNew(t, `
func process(pkt) { pkt.sport = 9999; send(pkt); }`, Options{})
	p := tcpPkt("1.1.1.1", 1, "2.2.2.2", 80)
	if _, err := in.Process(p); err != nil {
		t.Fatal(err)
	}
	if p.Pkt.Fields["sport"].I != 1 {
		t.Error("caller's packet mutated")
	}
}

func TestGlobalsInitializerError(t *testing.T) {
	if _, err := New(lang.MustParse(`x = 1 / 0;
func process(pkt) { send(pkt); }`), "process", Options{}); err == nil {
		t.Error("bad global initializer did not error")
	}
}

func TestMissingEntry(t *testing.T) {
	if _, err := New(lang.MustParse(`x = 1;`), "process", Options{}); err == nil {
		t.Error("missing entry did not error")
	}
}
