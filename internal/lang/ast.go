package lang

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Stmt is implemented by statement nodes. Every statement carries a unique
// ID (assigned by IndexProgram) that the CFG, dependence and slicing
// layers use as their node identity.
type Stmt interface {
	Node
	StmtID() int
	setID(int)
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Program is a parsed NFLang compilation unit: top-level global
// assignments (the NF's configuration and state initialization — the
// "persistent" variables of StateAlyzer) followed by function
// declarations. By convention the per-packet entry point is process(pkt).
type Program struct {
	Globals []*AssignStmt
	Funcs   []*FuncDecl

	// Filled by IndexProgram.
	stmtByID map[int]Stmt
	parents  map[int]Stmt
	nextID   int
}

// FuncDecl is a function declaration.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Pos    Pos
}

// NodePos implements Node.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// Func returns the declaration of name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

type stmtBase struct {
	id  int
	pos Pos
}

func (s *stmtBase) NodePos() Pos { return s.pos }

// SetNodePos sets the statement's source position — for passes that
// rebuild statements (slicing, normalization) and must keep provenance
// pointing at the original source.
func (s *stmtBase) SetNodePos(p Pos) { s.pos = p }

// StmtID returns the statement's unique ID (0 before IndexProgram).
func (s *stmtBase) StmtID() int { return s.id }
func (s *stmtBase) setID(i int) { s.id = i }
func (s *stmtBase) stmtNode()   {}

// AssignStmt is a (possibly parallel) assignment `lhs, ... = rhs, ...`.
type AssignStmt struct {
	stmtBase
	LHS []Expr
	RHS []Expr
}

// ExprStmt is an expression evaluated for effect (a call such as send()).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil when absent; else-if is an else block with one IfStmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *BlockStmt
}

// ForStmt is `for x in iterable { ... }`.
type ForStmt struct {
	stmtBase
	Var  string
	Iter Expr
	Body *BlockStmt
}

// ReturnStmt returns from the current function; Value may be nil.
type ReturnStmt struct {
	stmtBase
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ stmtBase }

// BlockStmt is a braced statement sequence.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	Pos Pos
}

// StrLit is a string literal.
type StrLit struct {
	Val string
	Pos Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Val bool
	Pos Pos
}

// NilLit is the nil literal.
type NilLit struct{ Pos Pos }

// TupleLit is a parenthesized comma list `(a, b, ...)`.
type TupleLit struct {
	Elems []Expr
	Pos   Pos
}

// ListLit is `[a, b, ...]`.
type ListLit struct {
	Elems []Expr
	Pos   Pos
}

// MapLit is `{k: v, ...}` (usually the empty `{}`).
type MapLit struct {
	Keys []Expr
	Vals []Expr
	Pos  Pos
}

// BinaryExpr is a binary operation; Op includes "in" for map membership.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Pos  Pos
}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	Op  string
	X   Expr
	Pos Pos
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	X, Index Expr
	Pos      Pos
}

// FieldExpr is `x.name` (packet field access).
type FieldExpr struct {
	X    Expr
	Name string
	Pos  Pos
}

// CallExpr is `fun(args...)`; Fun is an identifier (builtin or user func).
type CallExpr struct {
	Fun  string
	Args []Expr
	Pos  Pos
}

// NodePos implementations for expressions.
func (e *Ident) NodePos() Pos      { return e.Pos }
func (e *IntLit) NodePos() Pos     { return e.Pos }
func (e *StrLit) NodePos() Pos     { return e.Pos }
func (e *BoolLit) NodePos() Pos    { return e.Pos }
func (e *NilLit) NodePos() Pos     { return e.Pos }
func (e *TupleLit) NodePos() Pos   { return e.Pos }
func (e *ListLit) NodePos() Pos    { return e.Pos }
func (e *MapLit) NodePos() Pos     { return e.Pos }
func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *UnaryExpr) NodePos() Pos  { return e.Pos }
func (e *IndexExpr) NodePos() Pos  { return e.Pos }
func (e *FieldExpr) NodePos() Pos  { return e.Pos }
func (e *CallExpr) NodePos() Pos   { return e.Pos }

func (e *Ident) exprNode()      {}
func (e *IntLit) exprNode()     {}
func (e *StrLit) exprNode()     {}
func (e *BoolLit) exprNode()    {}
func (e *NilLit) exprNode()     {}
func (e *TupleLit) exprNode()   {}
func (e *ListLit) exprNode()    {}
func (e *MapLit) exprNode()     {}
func (e *BinaryExpr) exprNode() {}
func (e *UnaryExpr) exprNode()  {}
func (e *IndexExpr) exprNode()  {}
func (e *FieldExpr) exprNode()  {}
func (e *CallExpr) exprNode()   {}

// IndexProgram assigns a unique positive ID to every statement and records
// parent links. It must be called (and is called by Parse) before the
// program is handed to any analysis.
func (p *Program) IndexProgram() {
	p.stmtByID = make(map[int]Stmt)
	p.parents = make(map[int]Stmt)
	p.nextID = 0
	for _, g := range p.Globals {
		p.indexStmt(g, nil)
	}
	for _, f := range p.Funcs {
		p.indexStmt(f.Body, nil)
	}
}

func (p *Program) indexStmt(s Stmt, parent Stmt) {
	p.nextID++
	s.setID(p.nextID)
	p.stmtByID[p.nextID] = s
	if parent != nil {
		p.parents[p.nextID] = parent
	}
	switch st := s.(type) {
	case *BlockStmt:
		for _, c := range st.Stmts {
			p.indexStmt(c, st)
		}
	case *IfStmt:
		p.indexStmt(st.Then, st)
		if st.Else != nil {
			p.indexStmt(st.Else, st)
		}
	case *WhileStmt:
		p.indexStmt(st.Body, st)
	case *ForStmt:
		p.indexStmt(st.Body, st)
	}
}

// StmtByID returns the statement with the given ID, or nil.
func (p *Program) StmtByID(id int) Stmt { return p.stmtByID[id] }

// Parent returns the enclosing statement of the statement with the given
// ID (the BlockStmt containing it, or the If/While/For owning the block).
func (p *Program) Parent(id int) Stmt { return p.parents[id] }

// MaxStmtID returns the largest assigned statement ID.
func (p *Program) MaxStmtID() int { return p.nextID }

// WalkStmts visits every statement in the program (globals then function
// bodies), in source order, including blocks.
func (p *Program) WalkStmts(fn func(Stmt)) {
	var walk func(Stmt)
	walk = func(s Stmt) {
		fn(s)
		switch st := s.(type) {
		case *BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		}
	}
	for _, g := range p.Globals {
		walk(g)
	}
	for _, f := range p.Funcs {
		walk(f.Body)
	}
}

// WalkExprs visits every sub-expression of e in pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *TupleLit:
		for _, el := range x.Elems {
			WalkExprs(el, fn)
		}
	case *ListLit:
		for _, el := range x.Elems {
			WalkExprs(el, fn)
		}
	case *MapLit:
		for i := range x.Keys {
			WalkExprs(x.Keys[i], fn)
			WalkExprs(x.Vals[i], fn)
		}
	case *BinaryExpr:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *UnaryExpr:
		WalkExprs(x.X, fn)
	case *IndexExpr:
		WalkExprs(x.X, fn)
		WalkExprs(x.Index, fn)
	case *FieldExpr:
		WalkExprs(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}
