package lang

// Deep cloning of AST nodes with optional identifier renaming. Used by the
// inliner (capture-free expansion) and the slicer/normalizer (program
// reconstruction must not alias the original tree).

// CloneProgram returns a deep copy of p, re-indexed.
func CloneProgram(p *Program) *Program {
	out := &Program{Globals: cloneGlobals(p.Globals)}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, &FuncDecl{
			Name:   f.Name,
			Params: append([]string(nil), f.Params...),
			Body:   cloneBlock(f.Body, nil),
			Pos:    f.Pos,
		})
	}
	out.IndexProgram()
	return out
}

func cloneGlobals(gs []*AssignStmt) []*AssignStmt {
	out := make([]*AssignStmt, len(gs))
	for i, g := range gs {
		out[i] = cloneStmt(g, nil).(*AssignStmt)
	}
	return out
}

func cloneBlock(b *BlockStmt, rename map[string]string) *BlockStmt {
	out := &BlockStmt{}
	out.pos = b.pos
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, cloneStmt(s, rename))
	}
	return out
}

func cloneStmt(s Stmt, rename map[string]string) Stmt {
	switch st := s.(type) {
	case *AssignStmt:
		ns := &AssignStmt{}
		ns.pos = st.pos
		for _, l := range st.LHS {
			ns.LHS = append(ns.LHS, cloneExpr(l, rename))
		}
		for _, r := range st.RHS {
			ns.RHS = append(ns.RHS, cloneExpr(r, rename))
		}
		return ns
	case *ExprStmt:
		ns := &ExprStmt{X: cloneExpr(st.X, rename)}
		ns.pos = st.pos
		return ns
	case *IfStmt:
		ns := &IfStmt{Cond: cloneExpr(st.Cond, rename), Then: cloneBlock(st.Then, rename)}
		if st.Else != nil {
			ns.Else = cloneBlock(st.Else, rename)
		}
		ns.pos = st.pos
		return ns
	case *WhileStmt:
		ns := &WhileStmt{Cond: cloneExpr(st.Cond, rename), Body: cloneBlock(st.Body, rename)}
		ns.pos = st.pos
		return ns
	case *ForStmt:
		v := st.Var
		if rename != nil {
			if nv, ok := rename[v]; ok {
				v = nv
			}
		}
		ns := &ForStmt{Var: v, Iter: cloneExpr(st.Iter, rename), Body: cloneBlock(st.Body, rename)}
		ns.pos = st.pos
		return ns
	case *ReturnStmt:
		ns := &ReturnStmt{}
		if st.Value != nil {
			ns.Value = cloneExpr(st.Value, rename)
		}
		ns.pos = st.pos
		return ns
	case *BreakStmt:
		ns := &BreakStmt{}
		ns.pos = st.pos
		return ns
	case *ContinueStmt:
		ns := &ContinueStmt{}
		ns.pos = st.pos
		return ns
	case *BlockStmt:
		return cloneBlock(st, rename)
	default:
		return s
	}
}

func cloneExpr(e Expr, rename map[string]string) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ident:
		name := x.Name
		if rename != nil {
			if n, ok := rename[name]; ok {
				name = n
			}
		}
		return &Ident{Name: name, Pos: x.Pos}
	case *IntLit:
		return &IntLit{Val: x.Val, Pos: x.Pos}
	case *StrLit:
		return &StrLit{Val: x.Val, Pos: x.Pos}
	case *BoolLit:
		return &BoolLit{Val: x.Val, Pos: x.Pos}
	case *NilLit:
		return &NilLit{Pos: x.Pos}
	case *TupleLit:
		elems := make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = cloneExpr(el, rename)
		}
		return &TupleLit{Elems: elems, Pos: x.Pos}
	case *ListLit:
		elems := make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = cloneExpr(el, rename)
		}
		return &ListLit{Elems: elems, Pos: x.Pos}
	case *MapLit:
		keys := make([]Expr, len(x.Keys))
		vals := make([]Expr, len(x.Vals))
		for i := range x.Keys {
			keys[i] = cloneExpr(x.Keys[i], rename)
			vals[i] = cloneExpr(x.Vals[i], rename)
		}
		return &MapLit{Keys: keys, Vals: vals, Pos: x.Pos}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, X: cloneExpr(x.X, rename), Y: cloneExpr(x.Y, rename), Pos: x.Pos}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: cloneExpr(x.X, rename), Pos: x.Pos}
	case *IndexExpr:
		return &IndexExpr{X: cloneExpr(x.X, rename), Index: cloneExpr(x.Index, rename), Pos: x.Pos}
	case *FieldExpr:
		return &FieldExpr{X: cloneExpr(x.X, rename), Name: x.Name, Pos: x.Pos}
	case *CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = cloneExpr(a, rename)
		}
		return &CallExpr{Fun: x.Fun, Args: args, Pos: x.Pos}
	default:
		return e
	}
}
