package lang

// Def/use extraction at statement granularity. These sets drive reaching
// definitions (internal/dataflow), data dependence (internal/pdg) and the
// StateAlyzer variable features.
//
// Conventions, matching the paper's LHS/RHS dependency analysis (§2.1):
//   - `x = e`            defs {x},      uses vars(e)
//   - `m[k] = v`         defs {m},      uses {m} ∪ vars(k) ∪ vars(v)
//     (a container store is an update of the container, so the old
//     container value flows in — this is what makes f2b_nat updateable
//     AND self-dependent)
//   - `pkt.f = e`        defs {pkt},    uses {pkt} ∪ vars(e)
//   - branch conditions  defs {},       uses vars(cond)
//   - calls              defs {},       uses vars(args)  (builtins have no
//     variable side effects except send/log output, handled downstream)

// Defs returns the variable names defined (assigned) by s. Only simple
// statements and loop headers define variables; blocks and branches do
// not.
func Defs(s Stmt) []string {
	set := map[string]bool{}
	switch st := s.(type) {
	case *AssignStmt:
		for _, l := range st.LHS {
			if v := baseVar(l); v != "" {
				set[v] = true
			}
		}
	case *ForStmt:
		set[st.Var] = true
	}
	return sortedKeys(set)
}

// Uses returns the variable names read by s (not descending into nested
// blocks: a branch statement's uses are just its condition's variables).
func Uses(s Stmt) []string {
	set := map[string]bool{}
	switch st := s.(type) {
	case *AssignStmt:
		for _, r := range st.RHS {
			exprVars(r, set)
		}
		// Container-element stores read the container (and key).
		for _, l := range st.LHS {
			switch lv := l.(type) {
			case *IndexExpr:
				exprVars(lv.X, set)
				exprVars(lv.Index, set)
			case *FieldExpr:
				exprVars(lv.X, set)
			}
		}
	case *ExprStmt:
		exprVars(st.X, set)
	case *IfStmt:
		exprVars(st.Cond, set)
	case *WhileStmt:
		exprVars(st.Cond, set)
	case *ForStmt:
		exprVars(st.Iter, set)
	case *ReturnStmt:
		if st.Value != nil {
			exprVars(st.Value, set)
		}
	}
	return sortedKeys(set)
}

// ExprVars returns the variable names referenced by e.
func ExprVars(e Expr) []string {
	set := map[string]bool{}
	exprVars(e, set)
	return sortedKeys(set)
}

func exprVars(e Expr, set map[string]bool) {
	WalkExprs(e, func(x Expr) {
		if id, ok := x.(*Ident); ok {
			set[id.Name] = true
		}
	})
}

// baseVar returns the root variable of an assignment target: x for `x`,
// m for `m[k]`, pkt for `pkt.f`.
func baseVar(l Expr) string {
	for {
		switch x := l.(type) {
		case *Ident:
			return x.Name
		case *IndexExpr:
			l = x.X
		case *FieldExpr:
			l = x.X
		default:
			return ""
		}
	}
}

// BaseVar is the exported form of baseVar, used by the slicer and
// StateAlyzer to find assignments to a given variable.
func BaseVar(l Expr) string { return baseVar(l) }

// CallsIn returns the names of all functions called anywhere in s
// (conditions and right-hand sides), without descending into nested
// blocks.
func CallsIn(s Stmt) []string {
	set := map[string]bool{}
	collect := func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if c, ok := x.(*CallExpr); ok {
				set[c.Fun] = true
			}
		})
	}
	switch st := s.(type) {
	case *AssignStmt:
		for _, r := range st.RHS {
			collect(r)
		}
		for _, l := range st.LHS {
			collect(l)
		}
	case *ExprStmt:
		collect(st.X)
	case *IfStmt:
		collect(st.Cond)
	case *WhileStmt:
		collect(st.Cond)
	case *ForStmt:
		collect(st.Iter)
	case *ReturnStmt:
		if st.Value != nil {
			collect(st.Value)
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// insertion sort; sets are tiny
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
