package lang_test

import (
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/nfs"
)

// FuzzParse drives the NFLang lexer and parser with arbitrary input,
// seeded with the whole embedded corpus plus small syntax-edge seeds.
// Three properties:
//
//  1. no panic on any input (errors must be returned, not thrown),
//  2. an accepted program survives the printer round-trip
//     (Parse(Print(p)) succeeds — the printer emits valid NFLang),
//  3. def-use extraction over the parsed AST does not panic either.
//
// Run with: go test -fuzz=FuzzParse ./internal/lang
func FuzzParse(f *testing.F) {
	for _, name := range nfs.Names() {
		nf, err := nfs.Load(name)
		if err != nil {
			f.Fatalf("corpus seed %s: %v", name, err)
		}
		f.Add(nf.Source)
	}
	for _, seed := range []string{
		"",
		"func process(pkt) {}",
		"x = 1;",
		"func f(a, b) { return a + b; }",
		"m = {1: \"a\"};\nfunc process(pkt) { if pkt.x in m { send(pkt, m[pkt.x]); } }",
		"func process(pkt) { while true { break; } for x in m { continue; } }",
		"t = (1, 2, 3);",
		"# comment only",
		"func process(pkt) { x = -(!(pkt.a) + 1); }",
		"\"unterminated",
		"func process(pkt) { send(pkt, ",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		out := lang.Print(prog)
		reparsed, err := lang.Parse(out)
		if err != nil {
			t.Fatalf("printer round-trip rejected:\n%s\nerror: %v", out, err)
		}
		// Def-use extraction must be total on parsed programs.
		for _, p := range []*lang.Program{prog, reparsed} {
			p.WalkStmts(func(s lang.Stmt) {
				lang.Uses(s)
				lang.Defs(s)
				lang.CallsIn(s)
			})
		}
	})
}
