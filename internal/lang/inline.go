package lang

import "fmt"

// Inline returns a copy of prog in which the body of entry has every call
// to a user-defined function expanded in place. This gives the downstream
// analyses inter-procedural precision (the paper cites inter-procedure
// slicing / system dependence graphs [13,11]) without building an SDG:
// NFLang NF programs are non-recursive, so bounded inlining is exact.
//
// Callee locals are renamed `name$k` to avoid capture. A callee may use
// `return` only as its final statement (checked); NF helper functions in
// the corpus follow this shape.
func Inline(prog *Program, entry string) (*Program, error) {
	f := prog.Func(entry)
	if f == nil {
		return nil, fmt.Errorf("inline: no function %q", entry)
	}
	inl := &inliner{prog: prog}
	body, err := inl.inlineBlock(f.Body, 0)
	if err != nil {
		return nil, err
	}
	out := &Program{
		Globals: cloneGlobals(prog.Globals),
		Funcs: []*FuncDecl{{
			Name:   f.Name,
			Params: append([]string(nil), f.Params...),
			Body:   body,
			Pos:    f.Pos,
		}},
	}
	out.IndexProgram()
	return out, nil
}

const maxInlineDepth = 16

type inliner struct {
	prog *Program
	tmp  int
}

func (in *inliner) fresh(base string) string {
	in.tmp++
	return fmt.Sprintf("%s$%d", base, in.tmp)
}

func (in *inliner) inlineBlock(b *BlockStmt, depth int) (*BlockStmt, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("inline: call depth exceeds %d (recursion?)", maxInlineDepth)
	}
	out := &BlockStmt{}
	out.pos = b.pos
	for _, s := range b.Stmts {
		expanded, err := in.inlineStmt(s, depth)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, expanded...)
	}
	return out, nil
}

func (in *inliner) inlineStmt(s Stmt, depth int) ([]Stmt, error) {
	switch st := s.(type) {
	case *AssignStmt:
		// Special form: single target, RHS is a direct user-func call.
		if len(st.LHS) == 1 && len(st.RHS) == 1 {
			if call, ok := st.RHS[0].(*CallExpr); ok && in.prog.Func(call.Fun) != nil {
				return in.expandCall(call, st.LHS[0], st.pos, depth)
			}
		}
		pre, lhs, rhs, err := in.hoistCallsAssign(st, depth)
		if err != nil {
			return nil, err
		}
		ns := &AssignStmt{LHS: lhs, RHS: rhs}
		ns.pos = st.pos
		return append(pre, ns), nil
	case *ExprStmt:
		if call, ok := st.X.(*CallExpr); ok && in.prog.Func(call.Fun) != nil {
			return in.expandCall(call, nil, st.pos, depth)
		}
		pre, x, err := in.hoistCallsExpr(st.X, depth)
		if err != nil {
			return nil, err
		}
		ns := &ExprStmt{X: x}
		ns.pos = st.pos
		return append(pre, ns), nil
	case *IfStmt:
		pre, cond, err := in.hoistCallsExpr(st.Cond, depth)
		if err != nil {
			return nil, err
		}
		then, err := in.inlineBlock(st.Then, depth)
		if err != nil {
			return nil, err
		}
		var els *BlockStmt
		if st.Else != nil {
			els, err = in.inlineBlock(st.Else, depth)
			if err != nil {
				return nil, err
			}
		}
		ns := &IfStmt{Cond: cond, Then: then, Else: els}
		ns.pos = st.pos
		return append(pre, ns), nil
	case *WhileStmt:
		if hasUserCall(st.Cond, in.prog) {
			return nil, fmt.Errorf("%s: user-function call in loop condition cannot be inlined", st.pos)
		}
		body, err := in.inlineBlock(st.Body, depth)
		if err != nil {
			return nil, err
		}
		ns := &WhileStmt{Cond: st.Cond, Body: body}
		ns.pos = st.pos
		return []Stmt{ns}, nil
	case *ForStmt:
		pre, iter, err := in.hoistCallsExpr(st.Iter, depth)
		if err != nil {
			return nil, err
		}
		body, err := in.inlineBlock(st.Body, depth)
		if err != nil {
			return nil, err
		}
		ns := &ForStmt{Var: st.Var, Iter: iter, Body: body}
		ns.pos = st.pos
		return append(pre, ns), nil
	case *ReturnStmt:
		if st.Value != nil && hasUserCall(st.Value, in.prog) {
			pre, v, err := in.hoistCallsExpr(st.Value, depth)
			if err != nil {
				return nil, err
			}
			ns := &ReturnStmt{Value: v}
			ns.pos = st.pos
			return append(pre, ns), nil
		}
		return []Stmt{cloneStmt(s, nil)}, nil
	default:
		return []Stmt{cloneStmt(s, nil)}, nil
	}
}

// expandCall inlines a call to a user function, assigning its return value
// to target (when non-nil).
func (in *inliner) expandCall(call *CallExpr, target Expr, pos Pos, depth int) ([]Stmt, error) {
	callee := in.prog.Func(call.Fun)
	if len(call.Args) != len(callee.Params) {
		return nil, fmt.Errorf("%s: %s expects %d args, got %d", pos, call.Fun, len(callee.Params), len(call.Args))
	}
	// Rename every callee local (params + assigned non-globals).
	rename := map[string]string{}
	globals := map[string]bool{}
	for _, g := range in.prog.Globals {
		for _, l := range g.LHS {
			globals[l.(*Ident).Name] = true
		}
	}
	for _, p := range callee.Params {
		rename[p] = in.fresh(p)
	}
	collectLocals(callee.Body, globals, rename, in)

	var out []Stmt
	// Bind arguments (arguments may themselves contain user calls).
	for i, p := range callee.Params {
		pre, arg, err := in.hoistCallsExpr(call.Args[i], depth)
		if err != nil {
			return nil, err
		}
		out = append(out, pre...)
		bind := &AssignStmt{
			LHS: []Expr{&Ident{Name: rename[p], Pos: pos}},
			RHS: []Expr{arg},
		}
		bind.pos = pos
		out = append(out, bind)
	}

	body := cloneBlock(callee.Body, rename)
	// The callee may end with `return expr;`.
	var retVal Expr
	if n := len(body.Stmts); n > 0 {
		if r, ok := body.Stmts[n-1].(*ReturnStmt); ok {
			retVal = r.Value
			body.Stmts = body.Stmts[:n-1]
		}
	}
	if err := checkNoReturns(body); err != nil {
		return nil, fmt.Errorf("%s: inlining %s: %w", pos, call.Fun, err)
	}
	inlined, err := in.inlineBlock(body, depth+1)
	if err != nil {
		return nil, err
	}
	out = append(out, inlined.Stmts...)
	if target != nil {
		if retVal == nil {
			return nil, fmt.Errorf("%s: %s returns no value", pos, call.Fun)
		}
		as := &AssignStmt{LHS: []Expr{cloneExpr(target, nil)}, RHS: []Expr{retVal}}
		as.pos = pos
		out = append(out, as)
	}
	return out, nil
}

// hoistCallsExpr replaces user-function calls nested inside e with fresh
// temporaries, returning the prelude statements that compute them.
func (in *inliner) hoistCallsExpr(e Expr, depth int) ([]Stmt, Expr, error) {
	var pre []Stmt
	var replace func(Expr) (Expr, error)
	replace = func(x Expr) (Expr, error) {
		switch v := x.(type) {
		case *CallExpr:
			args := make([]Expr, len(v.Args))
			for i, a := range v.Args {
				na, err := replace(a)
				if err != nil {
					return nil, err
				}
				args[i] = na
			}
			nc := &CallExpr{Fun: v.Fun, Args: args, Pos: v.Pos}
			if in.prog.Func(v.Fun) == nil {
				return nc, nil
			}
			tmp := in.fresh("t")
			stmts, err := in.expandCall(nc, &Ident{Name: tmp, Pos: v.Pos}, v.Pos, depth)
			if err != nil {
				return nil, err
			}
			pre = append(pre, stmts...)
			return &Ident{Name: tmp, Pos: v.Pos}, nil
		case *BinaryExpr:
			nx, err := replace(v.X)
			if err != nil {
				return nil, err
			}
			ny, err := replace(v.Y)
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: v.Op, X: nx, Y: ny, Pos: v.Pos}, nil
		case *UnaryExpr:
			nx, err := replace(v.X)
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: v.Op, X: nx, Pos: v.Pos}, nil
		case *IndexExpr:
			nx, err := replace(v.X)
			if err != nil {
				return nil, err
			}
			ni, err := replace(v.Index)
			if err != nil {
				return nil, err
			}
			return &IndexExpr{X: nx, Index: ni, Pos: v.Pos}, nil
		case *FieldExpr:
			nx, err := replace(v.X)
			if err != nil {
				return nil, err
			}
			return &FieldExpr{X: nx, Name: v.Name, Pos: v.Pos}, nil
		case *TupleLit:
			elems := make([]Expr, len(v.Elems))
			for i, el := range v.Elems {
				ne, err := replace(el)
				if err != nil {
					return nil, err
				}
				elems[i] = ne
			}
			return &TupleLit{Elems: elems, Pos: v.Pos}, nil
		case *ListLit:
			elems := make([]Expr, len(v.Elems))
			for i, el := range v.Elems {
				ne, err := replace(el)
				if err != nil {
					return nil, err
				}
				elems[i] = ne
			}
			return &ListLit{Elems: elems, Pos: v.Pos}, nil
		default:
			return cloneExpr(x, nil), nil
		}
	}
	ne, err := replace(e)
	if err != nil {
		return nil, nil, err
	}
	return pre, ne, nil
}

func (in *inliner) hoistCallsAssign(st *AssignStmt, depth int) ([]Stmt, []Expr, []Expr, error) {
	var pre []Stmt
	lhs := make([]Expr, len(st.LHS))
	for i, l := range st.LHS {
		p, nl, err := in.hoistCallsExpr(l, depth)
		if err != nil {
			return nil, nil, nil, err
		}
		pre = append(pre, p...)
		lhs[i] = nl
	}
	rhs := make([]Expr, len(st.RHS))
	for i, r := range st.RHS {
		p, nr, err := in.hoistCallsExpr(r, depth)
		if err != nil {
			return nil, nil, nil, err
		}
		pre = append(pre, p...)
		rhs[i] = nr
	}
	return pre, lhs, rhs, nil
}

func hasUserCall(e Expr, prog *Program) bool {
	found := false
	WalkExprs(e, func(x Expr) {
		if c, ok := x.(*CallExpr); ok && prog.Func(c.Fun) != nil {
			found = true
		}
	})
	return found
}

func collectLocals(b *BlockStmt, globals map[string]bool, rename map[string]string, in *inliner) {
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *AssignStmt:
			for _, l := range st.LHS {
				if id, ok := l.(*Ident); ok && !globals[id.Name] {
					if _, done := rename[id.Name]; !done {
						rename[id.Name] = in.fresh(id.Name)
					}
				}
			}
		case *ForStmt:
			if !globals[st.Var] {
				if _, done := rename[st.Var]; !done {
					rename[st.Var] = in.fresh(st.Var)
				}
			}
			for _, c := range st.Body.Stmts {
				walk(c)
			}
		case *BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			for _, c := range st.Then.Stmts {
				walk(c)
			}
			if st.Else != nil {
				for _, c := range st.Else.Stmts {
					walk(c)
				}
			}
		case *WhileStmt:
			for _, c := range st.Body.Stmts {
				walk(c)
			}
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
}

func checkNoReturns(b *BlockStmt) error {
	var err error
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *ReturnStmt:
			err = fmt.Errorf("callee has a non-tail return at %s", st.pos)
		case *BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
	return err
}
