package lang

import (
	"strings"
	"testing"
)

func TestInlineSimpleCall(t *testing.T) {
	prog := MustParse(`
N = 2;
func pick(i) {
    s = i % N;
    return s;
}
func process(pkt) {
    idx = pick(pkt.sport);
    send(pkt);
}`)
	out, err := Inline(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Funcs) != 1 || out.Funcs[0].Name != "process" {
		t.Fatalf("funcs after inline: %v", out.Funcs)
	}
	printed := Print(out)
	if strings.Contains(printed, "pick(") {
		t.Errorf("call not inlined:\n%s", printed)
	}
	if !strings.Contains(printed, "% N") {
		t.Errorf("callee body missing:\n%s", printed)
	}
	// Callee locals renamed, globals not.
	if !strings.Contains(printed, "$") {
		t.Errorf("no renamed locals:\n%s", printed)
	}
}

func TestInlineNestedExprCall(t *testing.T) {
	prog := MustParse(`
func inc(x) { y = x + 1; return y; }
func process(pkt) {
    z = inc(inc(pkt.ttl)) * 2;
    send(pkt);
}`)
	out, err := Inline(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(out)
	if strings.Contains(printed, "inc(") {
		t.Errorf("nested call not inlined:\n%s", printed)
	}
	if !strings.Contains(printed, "* 2") {
		t.Errorf("surrounding expression lost:\n%s", printed)
	}
}

func TestInlineVoidCall(t *testing.T) {
	prog := MustParse(`
stats = {};
func bump(k) { stats[k] = 1; }
func process(pkt) { bump("seen"); send(pkt); }`)
	out, err := Inline(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(out)
	if strings.Contains(printed, "bump(") {
		t.Errorf("void call not inlined:\n%s", printed)
	}
	if !strings.Contains(printed, `stats[`) {
		t.Errorf("callee effect missing:\n%s", printed)
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	prog := MustParse(`
func loop(x) { y = loop(x); return y; }
func process(pkt) { z = loop(1); }`)
	if _, err := Inline(prog, "process"); err == nil {
		t.Error("recursive inline did not error")
	}
}

func TestInlineRejectsNonTailReturn(t *testing.T) {
	prog := MustParse(`
func f(x) {
    if x == 0 { return 1; }
    return 2;
}
func process(pkt) { z = f(pkt.ttl); }`)
	if _, err := Inline(prog, "process"); err == nil {
		t.Error("non-tail return inline did not error")
	}
}

func TestInlineMissingEntry(t *testing.T) {
	prog := MustParse(`x = 1;`)
	if _, err := Inline(prog, "process"); err == nil {
		t.Error("missing entry function did not error")
	}
}

func TestInlinePreservesSemanticsShape(t *testing.T) {
	// inline of a call inside an if condition's block; condition itself
	// has no user calls.
	prog := MustParse(`
func double(x) { d = x * 2; return d; }
func process(pkt) {
    if pkt.dport == 80 {
        v = double(pkt.sport);
        pkt.sport = v;
    }
    send(pkt);
}`)
	out, err := Inline(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	// The if structure must survive.
	var ifCount int
	out.WalkStmts(func(s Stmt) {
		if _, ok := s.(*IfStmt); ok {
			ifCount++
		}
	})
	if ifCount != 1 {
		t.Errorf("if statements after inline = %d, want 1", ifCount)
	}
	// Re-indexed IDs must be unique.
	seen := map[int]bool{}
	out.WalkStmts(func(s Stmt) {
		if seen[s.StmtID()] {
			t.Errorf("duplicate ID %d after inline", s.StmtID())
		}
		seen[s.StmtID()] = true
	})
}

func TestInlineCallInLoopConditionRejected(t *testing.T) {
	prog := MustParse(`
func f(x) { return x; }
func process(pkt) { while f(1) == 1 { break; } }`)
	if _, err := Inline(prog, "process"); err == nil {
		t.Error("user call in loop condition did not error")
	}
}

func TestCloneProgramIsolation(t *testing.T) {
	prog := MustParse(`x = 1;
func process(pkt) { y = x; }`)
	cl := CloneProgram(prog)
	// Mutating the clone must not affect the original.
	cl.Globals[0].RHS[0] = &IntLit{Val: 99}
	if prog.Globals[0].RHS[0].(*IntLit).Val != 1 {
		t.Error("clone aliased original globals")
	}
	if Print(cl) == Print(prog) {
		t.Error("mutation did not change clone print")
	}
}
