package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes NFLang source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex returns the full token stream for src, ending with a TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// twoCharOps are the multi-byte operators, checked before single bytes.
var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

const singleOps = "=<>!+-*/%(),;.[]{}:"

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()

	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		var sb strings.Builder
		for lx.off < len(lx.src) {
			c := lx.peek()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				sb.WriteByte(lx.advance())
			} else {
				break
			}
		}
		text := sb.String()
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil

	case unicode.IsDigit(rune(c)):
		var sb strings.Builder
		for lx.off < len(lx.src) && unicode.IsDigit(rune(lx.peek())) {
			sb.WriteByte(lx.advance())
		}
		return Token{Kind: TokInt, Text: sb.String(), Pos: start}, nil

	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, fmt.Errorf("%s: unterminated string literal", start)
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, fmt.Errorf("%s: unterminated escape", start)
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return Token{}, fmt.Errorf("%s: unknown escape \\%c", start, esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, fmt.Errorf("%s: newline in string literal", start)
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	}

	for _, op := range twoCharOps {
		if strings.HasPrefix(lx.src[lx.off:], op) {
			lx.advance()
			lx.advance()
			return Token{Kind: TokOp, Text: op, Pos: start}, nil
		}
	}
	if strings.IndexByte(singleOps, c) >= 0 {
		lx.advance()
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", start, c)
}
