package lang

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks, err := Lex(`x = 42; # comment
if x >= 10 { send(pkt); }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "=", "42", ";", "if", "x", ">=", "10", "{", "send", "(", "pkt", ")", ";", "}", ""}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`s = "a\n\"b\\";`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "a\n\"b\\" {
		t.Errorf("string literal = %q", toks[2].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad\qescape"`, "@", "\"newline\nin string\""} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) did not error", src)
		}
	}
}

func TestLexTwoCharOps(t *testing.T) {
	toks, err := Lex("a == b != c <= d >= e && f || g")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tok := range toks {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a; // line comment\nb; # hash comment\nc;")
	if err != nil {
		t.Fatal(err)
	}
	idents := 0
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			idents++
		}
	}
	if idents != 3 {
		t.Errorf("idents = %d, want 3", idents)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("if iffy for forx in inner")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokKeyword, TokIdent, TokKeyword, TokIdent, TokKeyword, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, got[i], wantKinds[i])
		}
	}
}
