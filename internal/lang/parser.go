package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for NFLang.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses src, returning an indexed Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	prog.IndexProgram()
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded corpus
// programs that are validated at init time.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *Parser) atOp(op string) bool      { return p.at(TokOp, op) }
func (p *Parser) atKeyword(kw string) bool { return p.at(TokKeyword, kw) }

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, fmt.Errorf("%s: expected %q, found %s", p.cur().Pos, text, p.cur())
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		if p.atKeyword("func") {
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if prog.Func(f.Name) != nil {
				return nil, fmt.Errorf("%s: duplicate function %q", f.Pos, f.Name)
			}
			prog.Funcs = append(prog.Funcs, f)
			continue
		}
		// Top-level statements must be global assignments.
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		as, ok := s.(*AssignStmt)
		if !ok {
			return nil, fmt.Errorf("%s: top-level statement must be a global assignment", s.NodePos())
		}
		for _, l := range as.LHS {
			if _, ok := l.(*Ident); !ok {
				return nil, fmt.Errorf("%s: global assignment target must be an identifier", l.NodePos())
			}
		}
		prog.Globals = append(prog.Globals, as)
	}
	return prog, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw := p.next() // func
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return nil, fmt.Errorf("%s: expected function name, found %s", nameTok.Pos, nameTok)
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atOp(")") {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, fmt.Errorf("%s: expected parameter name, found %s", t.Pos, t)
		}
		params = append(params, t.Text)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: nameTok.Text, Params: params, Body: body, Pos: kw.Pos}, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect(TokOp, "{")
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	blk.pos = open.Pos
	for !p.atOp("}") {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("%s: unclosed block", open.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("return"):
		kw := p.next()
		s := &ReturnStmt{}
		s.pos = kw.Pos
		if !p.atOp(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.atKeyword("break"):
		kw := p.next()
		s := &BreakStmt{}
		s.pos = kw.Pos
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.atKeyword("continue"):
		kw := p.next()
		s := &ContinueStmt{}
		s.pos = kw.Pos
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		return s, nil
	default:
		return p.parseSimpleStmt()
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	s.pos = kw.Pos
	if p.accept(TokKeyword, "else") {
		if p.atKeyword("if") {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			blk := &BlockStmt{Stmts: []Stmt{elif}}
			blk.pos = elif.NodePos()
			s.Else = blk
		} else {
			blk, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = blk
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next() // while
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &WhileStmt{Cond: cond, Body: body}
	s.pos = kw.Pos
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next() // for
	v := p.next()
	if v.Kind != TokIdent {
		return nil, fmt.Errorf("%s: expected loop variable, found %s", v.Pos, v)
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	iter, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &ForStmt{Var: v.Text, Iter: iter, Body: body}
	s.pos = kw.Pos
	return s, nil
}

// parseSimpleStmt parses `exprlist [= exprlist] ;` — an assignment or an
// expression statement.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	if p.accept(TokOp, "=") {
		rhs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if len(rhs) != len(lhs) && len(rhs) != 1 {
			return nil, fmt.Errorf("%s: assignment of %d values to %d targets", start, len(rhs), len(lhs))
		}
		for _, l := range lhs {
			switch l.(type) {
			case *Ident, *IndexExpr, *FieldExpr:
			default:
				return nil, fmt.Errorf("%s: invalid assignment target", l.NodePos())
			}
		}
		if _, err := p.expect(TokOp, ";"); err != nil {
			return nil, err
		}
		s := &AssignStmt{LHS: lhs, RHS: rhs}
		s.pos = start
		return s, nil
	}
	if len(lhs) != 1 {
		return nil, fmt.Errorf("%s: expression statement cannot be a list", start)
	}
	if _, err := p.expect(TokOp, ";"); err != nil {
		return nil, err
	}
	s := &ExprStmt{X: lhs[0]}
	s.pos = start
	return s, nil
}

func (p *Parser) parseExprList() ([]Expr, error) {
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(TokOp, ",") {
			return out, nil
		}
	}
}

// Expression grammar, loosest to tightest:
//
//	expr   := and { "||" and }
//	and    := cmp { "&&" cmp }
//	cmp    := sum [ ("=="|"!="|"<"|"<="|">"|">="|"in") sum ]
//	sum    := term { ("+"|"-") term }
//	term   := unary { ("*"|"/"|"%") unary }
//	unary  := ("!"|"-") unary | postfix
//	postfix := primary { "[" expr "]" | "." IDENT | "(" args ")" }
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atOp("||") {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "||", X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atOp("&&") {
		op := p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "&&", X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokOp && cmpOps[p.cur().Text] {
		op := p.next()
		y, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op.Text, X: x, Y: y, Pos: op.Pos}, nil
	}
	if p.atKeyword("in") {
		op := p.next()
		y, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "in", X: x, Y: y, Pos: op.Pos}, nil
	}
	return x, nil
}

func (p *Parser) parseSum() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next()
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op.Text, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseTerm() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") {
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op.Text, X: x, Y: y, Pos: op.Pos}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atOp("!") || p.atOp("-") {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Text, X: x, Pos: op.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("["):
			open := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Pos: open.Pos}
		case p.atOp("."):
			dot := p.next()
			name := p.next()
			if name.Kind != TokIdent {
				return nil, fmt.Errorf("%s: expected field name, found %s", name.Pos, name)
			}
			x = &FieldExpr{X: x, Name: name.Text, Pos: dot.Pos}
		case p.atOp("("):
			id, ok := x.(*Ident)
			if !ok {
				return nil, fmt.Errorf("%s: only named functions can be called", p.cur().Pos)
			}
			p.next() // (
			var args []Expr
			for !p.atOp(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			x = &CallExpr{Fun: id.Name, Args: args, Pos: id.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokIdent:
		p.next()
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer literal %q", t.Pos, t.Text)
		}
		return &IntLit{Val: v, Pos: t.Pos}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{Val: t.Text, Pos: t.Pos}, nil
	case t.Kind == TokKeyword && (t.Text == "true" || t.Text == "false"):
		p.next()
		return &BoolLit{Val: t.Text == "true", Pos: t.Pos}, nil
	case t.Kind == TokKeyword && t.Text == "nil":
		p.next()
		return &NilLit{Pos: t.Pos}, nil
	case p.atOp("("):
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokOp, ",") {
			elems := []Expr{first}
			for !p.atOp(")") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &TupleLit{Elems: elems, Pos: open.Pos}, nil
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return first, nil
	case p.atOp("["):
		open := p.next()
		var elems []Expr
		for !p.atOp("]") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, "]"); err != nil {
			return nil, err
		}
		return &ListLit{Elems: elems, Pos: open.Pos}, nil
	case p.atOp("{"):
		open := p.next()
		lit := &MapLit{Pos: open.Pos}
		for !p.atOp("}") {
			k, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ":"); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lit.Keys = append(lit.Keys, k)
			lit.Vals = append(lit.Vals, v)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, "}"); err != nil {
			return nil, err
		}
		return lit, nil
	default:
		return nil, fmt.Errorf("%s: unexpected token %s", t.Pos, t)
	}
}
