package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

const lbSnippet = `
# Figure 1 style load balancer fragment
mode = "RR";
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
f2b_nat = {};
rr_idx = 0;

func process(pkt) {
    si, di = pkt.sip, pkt.dip;
    sp, dp = pkt.sport, pkt.dport;
    if dp == LB_PORT {
        cs = (si, sp, di, dp);
        if !(cs in f2b_nat) {
            if mode == "RR" {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else {
                server = servers[hash(si) % len(servers)];
            }
            f2b_nat[cs] = server;
        }
        nat = f2b_nat[cs];
        pkt.dip = nat[0];
        send(pkt);
    } else {
        drop();
    }
}
`

func TestParseLoadBalancerSnippet(t *testing.T) {
	prog, err := Parse(lbSnippet)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 5 {
		t.Errorf("globals = %d, want 5", len(prog.Globals))
	}
	if prog.Func("process") == nil {
		t.Fatal("no process function")
	}
	if got := len(prog.Func("process").Params); got != 1 {
		t.Errorf("process params = %d", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	prog, err := Parse(lbSnippet)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of printed program failed: %v\n%s", err, printed)
	}
	printed2 := Print(prog2)
	if printed != printed2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`func f(a, b, c) { x = a + b * c; y = a == b && c in m || !d; }`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("f").Body.Stmts
	x := body[0].(*AssignStmt).RHS[0].(*BinaryExpr)
	if x.Op != "+" {
		t.Errorf("top op = %q, want +", x.Op)
	}
	if mul, ok := x.Y.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Errorf("rhs of + is %T, want * expr", x.Y)
	}
	y := body[1].(*AssignStmt).RHS[0].(*BinaryExpr)
	if y.Op != "||" {
		t.Errorf("top op = %q, want ||", y.Op)
	}
}

func TestParseTupleVsParen(t *testing.T) {
	prog, err := Parse(`func f(a, b) { t = (a, b); p = (a); }`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Func("f").Body.Stmts
	if _, ok := body[0].(*AssignStmt).RHS[0].(*TupleLit); !ok {
		t.Error("(a, b) did not parse as tuple")
	}
	if _, ok := body[1].(*AssignStmt).RHS[0].(*Ident); !ok {
		t.Error("(a) did not parse as parenthesized ident")
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog, err := Parse(`func f(a) { if a == 1 { x = 1; } else if a == 2 { x = 2; } else { x = 3; } }`)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Func("f").Body.Stmts[0].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else-if did not nest")
	}
	inner, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok || inner.Else == nil {
		t.Fatal("inner else missing")
	}
}

func TestParseControlStatements(t *testing.T) {
	prog, err := Parse(`func f(xs) {
        for x in xs { if x == 0 { continue; } if x == 9 { break; } }
        while true { return 1; }
        return;
    }`)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Func("f").Body.Stmts
	if _, ok := stmts[0].(*ForStmt); !ok {
		t.Error("missing for")
	}
	if _, ok := stmts[1].(*WhileStmt); !ok {
		t.Error("missing while")
	}
	ret := stmts[2].(*ReturnStmt)
	if ret.Value != nil {
		t.Error("bare return has value")
	}
}

func TestParseMapLiteral(t *testing.T) {
	prog, err := Parse(`m = {"a": 1, "b": 2};
empty = {};`)
	if err != nil {
		t.Fatal(err)
	}
	ml := prog.Globals[0].RHS[0].(*MapLit)
	if len(ml.Keys) != 2 {
		t.Errorf("map keys = %d", len(ml.Keys))
	}
	if len(prog.Globals[1].RHS[0].(*MapLit).Keys) != 0 {
		t.Error("empty map literal not empty")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`func f( { }`,                             // bad params
		`x = ;`,                                   // missing rhs
		`func f(a) { if a { x = 1; }`,             // unclosed block
		`func f(a) { 1 = a; }`,                    // bad assignment target
		`func f(a) { a, b; }`,                     // list expr stmt
		`send(pkt);`,                              // top-level non-assignment
		`m[0] = 1;`,                               // top-level non-ident target
		`func f(a) { x = a(1)(2); }`,              // call of call
		`func f(a) { x = (1,2)(3); }`,             // call of tuple
		`func f() { } func f() { }`,               // duplicate function
		`func f(a) { x = 99999999999999999999; }`, // int overflow
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) did not error", src)
		}
	}
}

func TestIndexProgramAssignsUniqueIDs(t *testing.T) {
	prog := MustParse(lbSnippet)
	seen := map[int]bool{}
	count := 0
	prog.WalkStmts(func(s Stmt) {
		count++
		if s.StmtID() == 0 {
			t.Errorf("statement %s has no ID", PrintStmt(s))
		}
		if seen[s.StmtID()] {
			t.Errorf("duplicate statement ID %d", s.StmtID())
		}
		seen[s.StmtID()] = true
	})
	if count < 15 {
		t.Errorf("walked only %d statements", count)
	}
	if prog.MaxStmtID() != count {
		t.Errorf("MaxStmtID = %d, walked %d", prog.MaxStmtID(), count)
	}
}

func TestParentLinks(t *testing.T) {
	prog := MustParse(`func f(a) { if a == 1 { x = 2; } }`)
	var inner Stmt
	prog.WalkStmts(func(s Stmt) {
		if as, ok := s.(*AssignStmt); ok {
			inner = as
		}
	})
	blk, ok := prog.Parent(inner.StmtID()).(*BlockStmt)
	if !ok {
		t.Fatalf("parent of inner assign is %T", prog.Parent(inner.StmtID()))
	}
	if _, ok := prog.Parent(blk.StmtID()).(*IfStmt); !ok {
		t.Fatal("grandparent is not the if statement")
	}
}

func TestDefsUses(t *testing.T) {
	prog := MustParse(`
m = {};
func process(pkt) {
    k = (pkt.sip, pkt.sport);
    m[k] = pkt.dip;
    pkt.ttl = pkt.ttl - 1;
}`)
	body := prog.Func("process").Body.Stmts
	if d := Defs(body[0]); len(d) != 1 || d[0] != "k" {
		t.Errorf("defs(k=..) = %v", d)
	}
	if u := Uses(body[0]); strings.Join(u, ",") != "pkt" {
		t.Errorf("uses(k=..) = %v", u)
	}
	if d := Defs(body[1]); len(d) != 1 || d[0] != "m" {
		t.Errorf("defs(m[k]=..) = %v", d)
	}
	u := Uses(body[1])
	if strings.Join(u, ",") != "k,m,pkt" {
		t.Errorf("uses(m[k]=..) = %v", u)
	}
	if d := Defs(body[2]); len(d) != 1 || d[0] != "pkt" {
		t.Errorf("defs(pkt.ttl=..) = %v", d)
	}
}

func TestCallsIn(t *testing.T) {
	prog := MustParse(`func f(a) { x = g(h(a)) + len(a); send(x); }`)
	body := prog.Func("f").Body.Stmts
	c0 := CallsIn(body[0])
	if strings.Join(c0, ",") != "g,h,len" {
		t.Errorf("CallsIn(assign) = %v", c0)
	}
	c1 := CallsIn(body[1])
	if strings.Join(c1, ",") != "send" {
		t.Errorf("CallsIn(send) = %v", c1)
	}
}

// Property: any program built from a random chain of simple assignments
// round-trips through Print/Parse.
func TestPrintParseProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		vars := []string{"a", "b", "c", "d"}
		var sb strings.Builder
		sb.WriteString("func f(a) {\n")
		x := seed
		for i := 0; i < int(n%12)+1; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v := vars[(x>>3)&3]
			w := vars[(x>>5)&3]
			switch (x >> 7) & 3 {
			case 0:
				sb.WriteString(v + " = " + w + " + 1;\n")
			case 1:
				sb.WriteString("if " + v + " == " + w + " { " + v + " = 0; }\n")
			case 2:
				sb.WriteString(v + " = (" + v + ", " + w + ");\n")
			default:
				sb.WriteString(v + " = [" + w + "];\n")
			}
		}
		sb.WriteString("}\n")
		p1, err := Parse(sb.String())
		if err != nil {
			return false
		}
		s1 := Print(p1)
		p2, err := Parse(s1)
		if err != nil {
			return false
		}
		return Print(p2) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
