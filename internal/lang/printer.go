package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// quoteString renders a string literal using exactly the escapes the
// lexer understands (\n, \t, \", \\); all other bytes are written raw,
// which the lexer accepts for anything but a newline. strconv.Quote
// would emit \xNN and \uNNNN escapes that do not re-parse.
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// Print renders the program as canonical NFLang source. The output
// re-parses to an equivalent program; it is also how sliced programs are
// rendered and how slice LoC (Table 2) is counted.
func Print(p *Program) string {
	var sb strings.Builder
	for _, g := range p.Globals {
		printStmt(&sb, g, 0)
	}
	for _, f := range p.Funcs {
		if len(p.Globals) > 0 || f != p.Funcs[0] {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		for _, s := range f.Body.Stmts {
			printStmt(&sb, s, 1)
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// PrintStmt renders a single statement (one line for simple statements).
func PrintStmt(s Stmt) string {
	var sb strings.Builder
	printStmt(&sb, s, 0)
	return strings.TrimRight(sb.String(), "\n")
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("    ")
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *AssignStmt:
		indent(sb, depth)
		sb.WriteString(exprList(st.LHS))
		sb.WriteString(" = ")
		sb.WriteString(exprList(st.RHS))
		sb.WriteString(";\n")
	case *ExprStmt:
		indent(sb, depth)
		sb.WriteString(ExprString(st.X))
		sb.WriteString(";\n")
	case *IfStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "if %s {\n", ExprString(st.Cond))
		for _, c := range st.Then.Stmts {
			printStmt(sb, c, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}")
		if st.Else != nil {
			sb.WriteString(" else {\n")
			for _, c := range st.Else.Stmts {
				printStmt(sb, c, depth+1)
			}
			indent(sb, depth)
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	case *WhileStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "while %s {\n", ExprString(st.Cond))
		for _, c := range st.Body.Stmts {
			printStmt(sb, c, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *ForStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "for %s in %s {\n", st.Var, ExprString(st.Iter))
		for _, c := range st.Body.Stmts {
			printStmt(sb, c, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *ReturnStmt:
		indent(sb, depth)
		if st.Value != nil {
			fmt.Fprintf(sb, "return %s;\n", ExprString(st.Value))
		} else {
			sb.WriteString("return;\n")
		}
	case *BreakStmt:
		indent(sb, depth)
		sb.WriteString("break;\n")
	case *ContinueStmt:
		indent(sb, depth)
		sb.WriteString("continue;\n")
	case *BlockStmt:
		for _, c := range st.Stmts {
			printStmt(sb, c, depth)
		}
	}
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression as NFLang source.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return strconv.FormatInt(x.Val, 10)
	case *StrLit:
		return quoteString(x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *NilLit:
		return "nil"
	case *TupleLit:
		return "(" + exprList(x.Elems) + ")"
	case *ListLit:
		return "[" + exprList(x.Elems) + "]"
	case *MapLit:
		parts := make([]string, len(x.Keys))
		for i := range x.Keys {
			parts[i] = ExprString(x.Keys[i]) + ": " + ExprString(x.Vals[i])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *BinaryExpr:
		op := x.Op
		if op == "in" {
			return fmt.Sprintf("%s in %s", paren(x.X), paren(x.Y))
		}
		return fmt.Sprintf("%s %s %s", paren(x.X), op, paren(x.Y))
	case *UnaryExpr:
		return x.Op + paren(x.X)
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", paren(x.X), ExprString(x.Index))
	case *FieldExpr:
		return fmt.Sprintf("%s.%s", paren(x.X), x.Name)
	case *CallExpr:
		return fmt.Sprintf("%s(%s)", x.Fun, exprList(x.Args))
	default:
		return "?"
	}
}

// paren wraps compound sub-expressions in parentheses. This is
// conservative (it may add parens where precedence would not require
// them) but guarantees the printed form re-parses with the same tree.
func paren(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr:
		return "(" + ExprString(e) + ")"
	default:
		return ExprString(e)
	}
}

// CountLoC counts the number of source lines of the printed program,
// excluding blank lines — the LoC metric used in Table 2.
func CountLoC(p *Program) int {
	n := 0
	for _, line := range strings.Split(Print(p), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
