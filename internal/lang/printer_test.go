package lang

import (
	"strings"
	"testing"
)

const kitchenSink = `
m = {"a": 1};
lst = [1, 2, 3];
func helper(x) {
    y = x * 2;
    return y;
}
func process(pkt) {
    t = (pkt.sip, pkt.sport);
    n = -pkt.ttl;
    b = !(t in m) || pkt.dport >= 80 && pkt.dport <= 90;
    for x in lst {
        if x == 2 {
            continue;
        }
        while x < 10 {
            x = x + 1;
            if x == 7 {
                break;
            }
        }
    }
    if b {
        send(pkt, "out");
    } else {
        drop();
        return;
    }
    z = helper(n);
    log("z", z);
}
`

func TestPrintKitchenSinkRoundTrips(t *testing.T) {
	p1 := MustParse(kitchenSink)
	s1 := Print(p1)
	p2, err := Parse(s1)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s1)
	}
	if s2 := Print(p2); s2 != s1 {
		t.Errorf("print not idempotent:\n%s\nvs\n%s", s1, s2)
	}
	for _, want := range []string{"break;", "continue;", "while", "for x in lst", "return;", `{"a": 1}`} {
		if !strings.Contains(s1, want) {
			t.Errorf("printed source missing %q", want)
		}
	}
}

func TestPrintStmtSingleLine(t *testing.T) {
	p := MustParse(`func f(a) { x = a + 1; }`)
	got := PrintStmt(p.Func("f").Body.Stmts[0])
	if got != "x = a + 1;" {
		t.Errorf("PrintStmt = %q", got)
	}
}

func TestCountLoCIgnoresBlanks(t *testing.T) {
	p := MustParse("x = 1;\n\n\nfunc process(pkt) { send(pkt); }")
	// printed: x = 1; + blank + func line + send line + closing brace
	if got := CountLoC(p); got != 4 {
		t.Errorf("CountLoC = %d, want 4:\n%s", got, Print(p))
	}
}

func TestExprVarsAndBaseVar(t *testing.T) {
	p := MustParse(`func f(a, b) { x = a[b.c] + len(d); }`)
	rhs := p.Func("f").Body.Stmts[0].(*AssignStmt).RHS[0]
	vars := ExprVars(rhs)
	if strings.Join(vars, ",") != "a,b,d" {
		t.Errorf("ExprVars = %v", vars)
	}
	lhs := p.Func("f").Body.Stmts[0].(*AssignStmt).LHS[0]
	if BaseVar(lhs) != "x" {
		t.Errorf("BaseVar = %q", BaseVar(lhs))
	}
	// nested index target
	p2 := MustParse(`m = {}; func f(k) { m[k][0] = 1; }`)
	l2 := p2.Func("f").Body.Stmts[0].(*AssignStmt).LHS[0]
	if BaseVar(l2) != "m" {
		t.Errorf("BaseVar(m[k][0]) = %q", BaseVar(l2))
	}
	// call target has no base
	if BaseVar(&CallExpr{Fun: "f"}) != "" {
		t.Error("BaseVar(call) should be empty")
	}
}

func TestStmtByID(t *testing.T) {
	p := MustParse(`func f(a) { x = 1; }`)
	var id int
	p.WalkStmts(func(s Stmt) {
		if _, ok := s.(*AssignStmt); ok {
			id = s.StmtID()
		}
	})
	if p.StmtByID(id) == nil {
		t.Error("StmtByID lookup failed")
	}
	if p.StmtByID(99999) != nil {
		t.Error("bogus ID resolved")
	}
}

func TestNodePosPropagation(t *testing.T) {
	p := MustParse("\n\nx = (1, 2);\nlst = [3];\nem = {};\nfunc f(a) {\n    y = !a;\n    z = a.field;\n    w = nil;\n    v = true;\n}")
	// Every statement and expression carries a position with a line > 0.
	p.WalkStmts(func(s Stmt) {
		if s.NodePos().Line == 0 {
			t.Errorf("statement %T has zero position", s)
		}
	})
	check := func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if x.NodePos().Line == 0 {
				t.Errorf("expression %T has zero position", x)
			}
		})
	}
	for _, g := range p.Globals {
		for _, r := range g.RHS {
			check(r)
		}
	}
	for _, s := range p.Func("f").Body.Stmts {
		if as, ok := s.(*AssignStmt); ok {
			for _, r := range as.RHS {
				check(r)
			}
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, err := Lex(`x "hi"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() != "x" {
		t.Errorf("ident token string = %q", toks[0])
	}
	if toks[1].String() != `"hi"` {
		t.Errorf("string token string = %q", toks[1])
	}
	if toks[2].String() != "end of input" {
		t.Errorf("eof token string = %q", toks[2])
	}
}

func TestCloneKitchenSink(t *testing.T) {
	p := MustParse(kitchenSink)
	c := CloneProgram(p)
	if Print(c) != Print(p) {
		t.Error("clone prints differently")
	}
	// Deep independence: mutate a nested statement in the clone.
	c.Func("process").Body.Stmts = c.Func("process").Body.Stmts[:1]
	if Print(c) == Print(p) {
		t.Error("clone shares structure with original")
	}
}

func TestInlineHoistsCallInCondition(t *testing.T) {
	p := MustParse(`
func pick(x) {
    v = x + 1;
    return v;
}
func process(pkt) {
    if pick(pkt.sport) == 81 {
        send(pkt);
    }
}`)
	out, err := Inline(p, "process")
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(out)
	if strings.Contains(printed, "pick(") {
		t.Errorf("call in condition not hoisted:\n%s", printed)
	}
	// The hoisted temp must appear before the if.
	idxIf := strings.Index(printed, "if ")
	idxAdd := strings.Index(printed, "+ 1")
	if idxAdd > idxIf {
		t.Errorf("hoisted computation after the branch:\n%s", printed)
	}
}

func TestInlineInForIterAndReturnValue(t *testing.T) {
	p := MustParse(`
func mklist(n) {
    l = [1, 2];
    return l;
}
func process(pkt) {
    for x in mklist(2) {
        pkt.sum = x;
    }
    send(pkt);
}`)
	out, err := Inline(p, "process")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Print(out), "mklist(") {
		t.Errorf("iter call not inlined:\n%s", Print(out))
	}
}

func TestUsesOfReturnAndFieldTargets(t *testing.T) {
	p := MustParse(`func f(a, b) {
    a.x = b;
    return a.x + b;
}`)
	stmts := p.Func("f").Body.Stmts
	u0 := Uses(stmts[0])
	if strings.Join(u0, ",") != "a,b" {
		t.Errorf("uses(a.x = b) = %v", u0)
	}
	u1 := Uses(stmts[1])
	if strings.Join(u1, ",") != "a,b" {
		t.Errorf("uses(return) = %v", u1)
	}
}
