// Package lang implements NFLang, the small imperative network-function
// language that NFactor analyzes.
//
// NFLang substitutes for the C sources the paper runs LLVM giri and KLEE
// on: it keeps exactly the constructs of the paper's code examples
// (Figures 1, 3, 4, 5) — top-level globals, a per-packet processing
// function, assignments, branches, bounded loops, tuples, dicts, packet
// field access, and packet/socket I/O builtins — so the downstream
// analyses (slicing, dependence, symbolic execution) exercise the same
// structure as the paper's pipeline.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokOp      // operators and punctuation
	TokKeyword // func if else while for in return break continue true false nil
)

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"func": true, "if": true, "else": true, "while": true, "for": true,
	"in": true, "return": true, "break": true, "continue": true,
	"true": true, "false": true, "nil": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }
