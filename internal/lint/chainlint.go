package lint

import (
	"fmt"
	"strings"

	"nfactor/internal/chain"
	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/verify"
)

// Chain runs the chain-level pass (NFL3xx) over an ordered service
// chain: which model entries are cross-NF dead — unreachable by any
// injected traffic once the upstream NFs' forwarding entries and header
// rewrites are composed in front of them? Each dead entry yields an
// NFL301 warning; the pass is solver-checked both ways, so entries it
// stays silent about have a concrete feasibility witness (the upstream
// entry choice plus the constraint on the injected packet).
//
// Deadness is relative to the chain order: the same entry can be live
// standalone (NFL101 finds truly shadowed entries) and dead behind a
// firewall that only forwards a handful of ports. Config maps and
// scalars are concrete in the models, so the composition decides
// membership tests against them exactly; NF state stays symbolic —
// entries needing particular upstream state are treated as reachable
// (conservative: no false dead reports).
func Chain(stages []chain.NamedModel, extra []solver.Term) []Diagnostic {
	hops := make([]verify.Hop, len(stages))
	for i, nm := range stages {
		hops[i] = verify.Hop{Name: nm.Name, Model: nm.Model, Config: nm.Config}
	}
	reach, err := verify.ChainEntryReach(hops, extra)
	if err != nil {
		return []Diagnostic{{
			Code: CodePipeline, Severity: SevError, Entry: -1,
			Message: fmt.Sprintf("chain composition failed: %v", err),
		}}
	}
	names := make([]string, len(hops))
	for i, h := range hops {
		names[i] = h.Name
	}
	order := strings.Join(names, " > ")
	var out []Diagnostic
	for hi, h := range hops {
		for ei := range h.Model.Entries {
			if reach[hi][ei] != nil {
				continue
			}
			e := &h.Model.Entries[ei]
			d := Diagnostic{
				Code: CodeChainDead, Severity: SevWarning, NF: h.Name, Entry: ei,
				Message: fmt.Sprintf("entry %d (%s) can never fire in chain %s: no injected traffic reaches hop %d with this guard satisfiable",
					ei, entryVerdict(e), order, hi),
			}
			if hi == 0 {
				if len(extra) == 0 {
					// Dead at the first hop means dead standalone — point
					// at the single-model pass.
					d.Related = append(d.Related, Related{Message: "dead at hop 0: the guard is unsatisfiable on its own (see NFL101)"})
				} else {
					d.Related = append(d.Related, Related{Message: "dead at hop 0 under the injected traffic-class restriction"})
				}
			} else {
				d.Related = append(d.Related, Related{
					Message: fmt.Sprintf("upstream %s forwards only packet classes this guard excludes; reorder the chain or widen the upstream policy if the entry should be live",
						strings.Join(names[:hi], " > ")),
				})
			}
			out = append(out, d)
		}
	}
	return out
}

// entryVerdict summarizes what an entry does, for the diagnostic text.
func entryVerdict(e *model.Entry) string {
	if e.Dropped() {
		return "drop"
	}
	if len(e.Sends) > 1 {
		return fmt.Sprintf("%d sends", len(e.Sends))
	}
	return "forward"
}
