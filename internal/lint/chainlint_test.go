package lint_test

import (
	"strings"
	"testing"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/lint"
	"nfactor/internal/nfs"
	"nfactor/internal/solver"
	"nfactor/internal/value"
	"nfactor/internal/verify"
)

func chainStages(t *testing.T, names ...string) []chain.NamedModel {
	t.Helper()
	stages := make([]chain.NamedModel, len(names))
	for i, name := range names {
		nm, err := analyzeCorpus(t, name).Named()
		if err != nil {
			t.Fatalf("named %s: %v", name, err)
		}
		stages[i] = nm
	}
	return stages
}

// lanOnly restricts the injected traffic class to the firewall's
// trusted side. Without it the firewall's reverse path (established
// connections arriving from the WAN, any port) keeps every downstream
// entry reachable — which is the conservatively correct answer, just
// not the interesting one.
func lanOnly() []solver.Term {
	return []solver.Term{solver.Bin{
		Op: "==",
		X:  solver.Var{Name: "pkt.in_iface"},
		Y:  solver.Const{V: value.Str("lan")},
	}}
}

// TestChainDeadBehindFirewall is NFL301's flagship case: for LAN-side
// traffic the firewall forwards only its egress policy ports
// (80/443/53/22), so snortlite's rule-table alerts — telnet, SMB, RDP,
// all on other ports — can never fire behind it. Standalone, those
// entries are live (NFL101 stays silent); the deadness exists only in
// the composition.
func TestChainDeadBehindFirewall(t *testing.T) {
	diags := lint.Chain(chainStages(t, "firewall", "snortlite"), lanOnly())
	if len(diags) == 0 {
		t.Fatalf("no NFL301 diagnostics: snortlite's rule alerts are unreachable behind the firewall's egress policy")
	}
	var sawIDS bool
	for _, d := range diags {
		if d.Code != lint.CodeChainDead {
			t.Fatalf("unexpected code %s: %s", d.Code, d.Message)
		}
		switch d.NF {
		case "snortlite":
			sawIDS = true
		case "firewall":
			// The firewall's reverse-path entries are dead at hop 0 under
			// the LAN-only restriction; that must be attributed to the
			// restriction, not to the upstream prefix.
			if len(d.Related) == 0 || !strings.Contains(d.Related[0].Message, "restriction") {
				t.Fatalf("hop-0 dead entry not attributed to the traffic-class restriction: %+v", d)
			}
		default:
			t.Fatalf("diagnostic for unexpected NF %q: %s", d.NF, d.Message)
		}
	}
	if !sawIDS {
		t.Fatalf("no dead snortlite entry reported; got %d diagnostics for other NFs", len(diags))
	}
}

// TestChainDeadUnrestricted pins the conservative default: with no
// traffic-class restriction the firewall's reverse path admits any
// port, so the only snortlite entries reported dead are the ones that
// are config-dead standalone (mode="IPS" grounds out the alert-only
// branches; SYN_LIMIT kills the impossible first-SYN flood) — nothing
// becomes dead through the composition itself.
func TestChainDeadUnrestricted(t *testing.T) {
	configDead := map[int]bool{}
	for _, d := range lint.Chain(chainStages(t, "snortlite"), nil) {
		configDead[d.Entry] = true
	}
	for _, d := range lint.Chain(chainStages(t, "firewall", "snortlite"), nil) {
		if d.NF == "snortlite" && !configDead[d.Entry] {
			t.Fatalf("snortlite entry %d reported dead without a traffic-class restriction; the reverse path keeps it reachable: %s", d.Entry, d.Message)
		}
	}
}

// TestChainDeadWitnessSide checks the feasible side is solver-witnessed:
// entries NOT reported dead have a concrete reachability witness whose
// hop-0 entry is a real forwarding entry of the first NF.
func TestChainDeadWitnessSide(t *testing.T) {
	stages := chainStages(t, "firewall", "snortlite")
	hops := make([]verify.Hop, len(stages))
	for i, nm := range stages {
		hops[i] = verify.Hop{Name: nm.Name, Model: nm.Model, Config: nm.Config}
	}
	extra := lanOnly()
	reach, err := verify.ChainEntryReach(hops, extra)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{}
	for _, d := range lint.Chain(stages, extra) {
		if d.NF == "snortlite" {
			dead[d.Entry] = true
		}
	}
	anyLive := false
	for ei, w := range reach[1] {
		if dead[ei] {
			if w != nil {
				t.Fatalf("entry %d reported dead but has witness %s", ei, w)
			}
			continue
		}
		if w == nil {
			t.Fatalf("entry %d not reported dead but has no witness", ei)
		}
		anyLive = true
		if len(w.Entries) != 2 {
			t.Fatalf("entry %d witness spans %d hops, want 2: %s", ei, len(w.Entries), w)
		}
		fw := hops[0].Model
		if e := &fw.Entries[w.Entries[0]]; len(e.Sends) == 0 {
			t.Fatalf("entry %d witness routes through firewall drop entry %d", ei, w.Entries[0])
		}
	}
	if !anyLive {
		t.Fatalf("every snortlite entry reported dead; the pass-through path must stay live")
	}
}

// TestChainDeadOrderSensitivity pins deadness to the order: with
// snortlite in front of the firewall it sees the raw LAN traffic, so
// the rule alerts that were dead behind the firewall come back to life.
func TestChainDeadOrderSensitivity(t *testing.T) {
	extra := lanOnly()
	behind := map[int]bool{}
	for _, d := range lint.Chain(chainStages(t, "firewall", "snortlite"), extra) {
		if d.NF == "snortlite" {
			behind[d.Entry] = true
		}
	}
	if len(behind) == 0 {
		t.Fatalf("no snortlite entries dead behind the firewall; nothing to compare")
	}
	front := map[int]bool{}
	for _, d := range lint.Chain(chainStages(t, "snortlite", "firewall"), extra) {
		if d.NF == "snortlite" {
			front[d.Entry] = true
		}
	}
	revived := 0
	for ei := range behind {
		if !front[ei] {
			revived++
		}
	}
	if revived == 0 {
		t.Fatalf("reordering did not revive any snortlite entry: behind=%v front=%v", behind, front)
	}
	// Entries dead even at hop 0 are dead standalone (or excluded by the
	// restriction), never an artifact of the composition.
	for ei := range front {
		if !behind[ei] {
			t.Fatalf("entry %d dead only when snortlite is FIRST — order sensitivity inverted", ei)
		}
	}
}

// TestChainDeadNoRestriction exercises the composition-only case with
// no extra constraint: a normalizer that pins dport to 80 makes the
// router's non-web branch dead, purely through the constant-rewrite
// composition.
func TestChainDeadNoRestriction(t *testing.T) {
	const normSrc = `
OUT = "mid";
rewritten_stat = 0;
func process(pkt) {
    pkt.dport = 80;
    rewritten_stat = rewritten_stat + 1;
    send(pkt, OUT);
}
`
	const routeSrc = `
WEB_IFACE = "web";
OTHER_IFACE = "other";
web_stat = 0;
other_stat = 0;
func process(pkt) {
    if pkt.dport == 80 {
        web_stat = web_stat + 1;
        send(pkt, WEB_IFACE);
    } else {
        other_stat = other_stat + 1;
        send(pkt, OTHER_IFACE);
    }
}
`
	load := func(name, src string) chain.NamedModel {
		nf, err := nfs.FromSource(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		an, err := core.Analyze(name, nf.Prog, core.Options{})
		if err != nil {
			t.Fatalf("analyze %s: %v", name, err)
		}
		nm, err := an.Named()
		if err != nil {
			t.Fatal(err)
		}
		return nm
	}
	diags := lint.Chain([]chain.NamedModel{load("norm", normSrc), load("route", routeSrc)}, nil)
	var sawOther bool
	for _, d := range diags {
		if d.Code != lint.CodeChainDead {
			t.Fatalf("unexpected code %s: %s", d.Code, d.Message)
		}
		if d.NF == "norm" {
			t.Fatalf("norm is the first hop and unconditional; entry %d cannot be dead: %s", d.Entry, d.Message)
		}
		if d.NF == "route" {
			sawOther = true
		}
	}
	if !sawOther {
		t.Fatalf("route's non-web branch not reported dead behind the dport-80 normalizer")
	}
}

// TestChainDiagnosticShape checks the rendering contract: NFL301
// warnings name the chain order and the upstream prefix.
func TestChainDiagnosticShape(t *testing.T) {
	diags := lint.Chain(chainStages(t, "firewall", "snortlite"), lanOnly())
	if len(diags) == 0 {
		t.Skip("no diagnostics to check")
	}
	var d lint.Diagnostic
	var found bool
	for _, cand := range diags {
		if cand.NF == "snortlite" {
			d, found = cand, true
			break
		}
	}
	if !found {
		t.Fatalf("no snortlite diagnostic to check")
	}
	if d.Severity != lint.SevWarning {
		t.Fatalf("severity %s, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, "firewall > snortlite") {
		t.Fatalf("message does not name the chain order: %s", d.Message)
	}
	if len(d.Related) == 0 || !strings.Contains(d.Related[0].Message, "firewall") {
		t.Fatalf("related note does not name the upstream prefix: %+v", d.Related)
	}
}
