package lint_test

import (
	"sync"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/lint"
	"nfactor/internal/nfs"
)

// corpusAnalysis memoizes full pipeline runs so the lint tests pay for
// each corpus NF's synthesis once.
var (
	corpusMu   sync.Mutex
	corpusRuns = map[string]*core.Analysis{}
)

func analyzeCorpus(t *testing.T, name string) *core.Analysis {
	t.Helper()
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if an, ok := corpusRuns[name]; ok {
		return an
	}
	nf, err := nfs.Load(name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	corpusRuns[name] = an
	return an
}

func corpusNames(t *testing.T) []string {
	t.Helper()
	names := nfs.Names()
	if len(names) == 0 {
		t.Fatal("empty corpus")
	}
	return names
}

// byCode filters diagnostics to one code.
func byCode(diags []lint.Diagnostic, code lint.Code) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// wantCode asserts at least one diagnostic with the code and severity.
func wantCode(t *testing.T, diags []lint.Diagnostic, code lint.Code, sev lint.Severity) lint.Diagnostic {
	t.Helper()
	for _, d := range diags {
		if d.Code == code && d.Severity == sev {
			return d
		}
	}
	t.Fatalf("no %s at severity %s in:\n%s", code, sev, lint.Render(diags))
	return lint.Diagnostic{}
}

// wantNone asserts no diagnostic with the code.
func wantNone(t *testing.T, diags []lint.Diagnostic, code lint.Code) {
	t.Helper()
	if got := byCode(diags, code); len(got) != 0 {
		t.Fatalf("unexpected %s diagnostics:\n%s", code, lint.Render(got))
	}
}
