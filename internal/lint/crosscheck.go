package lint

import (
	"fmt"
	"sort"

	"nfactor/internal/cfg"
	"nfactor/internal/dataflow"
	"nfactor/internal/lang"
	"nfactor/internal/slice"
	"nfactor/internal/statealyzer"
)

// CrossCheck re-derives the Table 1 variable classification from first
// principles — reaching definitions plus postdominator-set control
// dependence, with the same output-impacting closure and oisVar
// promotion fixpoint the pipeline applies — and compares it against the
// StateAlyzer result the pipeline actually used. Any disagreement is an
// NFL005 error: one of the two derivations has a bug, so this pass is a
// regression tripwire for the paper's core algorithm (Algorithm 1
// line 5 and the §3.1 slice-based output-impacting decision).
//
// The re-derivation deliberately shares only the cfg/dataflow substrate
// with the pipeline: control dependence is computed from postdominator
// sets directly (not the PDG's ipdom-tree walk), and the closure,
// feature extraction and promotion loop are independent code.
func CrossCheck(a *slice.Analyzer, vars *statealyzer.Result, nfName string) []Diagnostic {
	derived, ok := deriveCategories(a)
	if !ok {
		return nil // no packet output: nothing to cross-check against
	}

	names := map[string]bool{}
	for v := range vars.Category {
		names[v] = true
	}
	for v := range derived {
		names[v] = true
	}
	sorted := make([]string, 0, len(names))
	for v := range names {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)

	var diags []Diagnostic
	for _, v := range sorted {
		want, inPipe := vars.Category[v]
		got, inDerived := derived[v]
		switch {
		case !inPipe:
			diags = append(diags, Diagnostic{
				Code: CodeClassMismatch, Severity: SevError, NF: nfName, Entry: -1,
				Message: fmt.Sprintf("classification cross-check: %q derived as %s but absent from StateAlyzer result", v, got),
			})
		case !inDerived:
			diags = append(diags, Diagnostic{
				Code: CodeClassMismatch, Severity: SevError, NF: nfName, Entry: -1,
				Message: fmt.Sprintf("classification cross-check: StateAlyzer classifies %q as %s but the independent derivation does not see it", v, want),
			})
		case got != want:
			diags = append(diags, Diagnostic{
				Code: CodeClassMismatch, Severity: SevError, NF: nfName, Entry: -1,
				Message: fmt.Sprintf("classification cross-check: %q is %s per StateAlyzer but %s per independent dataflow derivation", v, want, got),
			})
		}
	}
	return diags
}

// deriveCategories computes the Table 1 category of every variable of
// the analyzer's (inlined) program without consulting the PDG, the
// slicer or StateAlyzer. Reports ok=false when the program has no
// packet-output statement.
func deriveCategories(a *slice.Analyzer) (map[string]statealyzer.Category, bool) {
	prog, entry := a.Prog, a.Entry
	fn := prog.Func(entry)
	g := a.G

	rd := dataflow.Reaching(g, fn.Params)
	ctrl := ctrlDepsFromPostdoms(g)

	// Criterion 1: packet-output statements (Algorithm 1 line 2).
	var sendNodes []int
	prog.WalkStmts(func(s lang.Stmt) {
		for _, f := range lang.CallsIn(s) {
			if f == "send" {
				if n := g.NodeByStmt(s.StmtID()); n != nil {
					sendNodes = append(sendNodes, n.ID)
				}
				return
			}
		}
	})
	if len(sendNodes) == 0 {
		return nil, false
	}
	pktStmts := closure(g, rd, ctrl, sendNodes)

	// Features (§2.1), collected by an AST walk of the entry body.
	persistent := map[string]bool{}
	for _, gl := range prog.Globals {
		for _, l := range gl.LHS {
			if id, isID := l.(*lang.Ident); isID {
				persistent[id.Name] = true
			}
		}
	}
	topLevel, updateable := map[string]bool{}, map[string]bool{}
	walkStmtTree(fn.Body, func(s lang.Stmt) {
		for _, v := range lang.Uses(s) {
			topLevel[v] = true
		}
		for _, v := range lang.Defs(s) {
			topLevel[v] = true
			updateable[v] = true
		}
	})
	outputImpacting := map[string]bool{}
	markVarsOf(prog, pktStmts, outputImpacting)

	params := map[string]bool{}
	for _, p := range fn.Params {
		params[p] = true
	}
	all := map[string]bool{}
	for v := range persistent {
		all[v] = true
	}
	for v := range topLevel {
		all[v] = true
	}
	for v := range params {
		all[v] = true
	}

	classify := func(v string) statealyzer.Category {
		switch {
		case params[v]:
			return statealyzer.CatPkt
		case persistent[v] && topLevel[v] && !updateable[v]:
			return statealyzer.CatCfg
		case persistent[v] && topLevel[v] && updateable[v] && outputImpacting[v]:
			return statealyzer.CatOIS
		case persistent[v] && topLevel[v] && updateable[v]:
			return statealyzer.CatLog
		default:
			return statealyzer.CatLocal
		}
	}
	cats := map[string]statealyzer.Category{}
	for v := range all {
		cats[v] = classify(v)
	}

	// Promotion fixpoint (the strike-counter → quarantine-set pattern):
	// a persistent updateable variable whose statements appear in the
	// backward closure from oisVar updates feeds a later invocation's
	// output and is output-impacting itself.
	ois := map[string]bool{}
	for v, c := range cats {
		if c == statealyzer.CatOIS {
			ois[v] = true
		}
	}
	for {
		var updNodes []int
		walkStmtTree(fn.Body, func(s lang.Stmt) {
			if !updatesOIS(s, ois) {
				return
			}
			if n := g.NodeByStmt(s.StmtID()); n != nil {
				updNodes = append(updNodes, n.ID)
			}
		})
		stateStmts := closure(g, rd, ctrl, updNodes)
		touched := map[string]bool{}
		markVarsOf(prog, stateStmts, touched)
		grew := false
		for v := range touched {
			if persistent[v] && topLevel[v] && updateable[v] && !ois[v] {
				ois[v] = true
				cats[v] = statealyzer.CatOIS
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return cats, true
}

// ctrlDepsFromPostdoms computes control dependence straight from the
// postdominator sets (Ferrante's definition: w depends on branch u when
// some successor of u is postdominated by w but u itself is not) —
// independent of the PDG's ipdom-tree formulation.
func ctrlDepsFromPostdoms(g *cfg.Graph) map[int][]int {
	pdoms := g.Postdominators()
	out := map[int][]int{}
	for _, u := range g.Nodes {
		succs := g.Succs(u.ID)
		if len(succs) < 2 {
			continue
		}
		for _, w := range g.Nodes {
			if pdoms[u.ID][w.ID] {
				continue // w postdominates the branch: executes regardless
			}
			for _, v := range succs {
				if pdoms[v][w.ID] {
					out[w.ID] = append(out[w.ID], u.ID)
					break
				}
			}
		}
	}
	return out
}

// closure runs the backward dependence closure from the given CFG nodes
// (data edges from reaching definitions, control edges from
// postdominator sets) and returns the statement IDs it reaches,
// including the pipeline's jump handling: an early exit whose guarding
// branches are all in the closure shapes reachability and is kept.
func closure(g *cfg.Graph, rd *dataflow.ReachDefs, ctrl map[int][]int, roots []int) map[int]bool {
	inC := map[int]bool{}
	var work []int
	push := func(n int) {
		if !inC[n] {
			inC[n] = true
			work = append(work, n)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range dataflow.NodeUses(g, n) {
			for _, d := range rd.UseDefs(n, v) {
				if d != n {
					push(d)
				}
			}
		}
		for _, u := range ctrl[n] {
			push(u)
		}
	}
	for _, n := range g.Nodes {
		if n.Stmt == nil || inC[n.ID] {
			continue
		}
		switch n.Stmt.(type) {
		case *lang.ReturnStmt, *lang.BreakStmt, *lang.ContinueStmt:
			guarded := true
			for _, u := range ctrl[n.ID] {
				if !inC[u] {
					guarded = false
					break
				}
			}
			if guarded {
				inC[n.ID] = true
			}
		}
	}
	stmts := map[int]bool{}
	for id := range inC {
		if s := g.Node(id).Stmt; s != nil {
			stmts[s.StmtID()] = true
		}
	}
	return stmts
}

// markVarsOf adds every variable used or defined by the given statement
// IDs to set.
func markVarsOf(prog *lang.Program, stmtIDs map[int]bool, set map[string]bool) {
	prog.WalkStmts(func(s lang.Stmt) {
		if !stmtIDs[s.StmtID()] {
			return
		}
		for _, v := range lang.Uses(s) {
			set[v] = true
		}
		for _, v := range lang.Defs(s) {
			set[v] = true
		}
	})
}

// updatesOIS reports whether s updates an output-impacting state
// variable: an assignment with an oisVar base target, or a del() on an
// oisVar map (Algorithm 1 lines 6-9's criterion).
func updatesOIS(s lang.Stmt, ois map[string]bool) bool {
	switch st := s.(type) {
	case *lang.AssignStmt:
		for _, l := range st.LHS {
			if ois[lang.BaseVar(l)] {
				return true
			}
		}
	case *lang.ExprStmt:
		if c, isCall := st.X.(*lang.CallExpr); isCall && c.Fun == "del" && len(c.Args) == 2 {
			if id, isID := c.Args[0].(*lang.Ident); isID && ois[id.Name] {
				return true
			}
		}
	}
	return false
}

// walkStmtTree visits s and every nested statement.
func walkStmtTree(s lang.Stmt, fn func(lang.Stmt)) {
	fn(s)
	switch st := s.(type) {
	case *lang.BlockStmt:
		for _, c := range st.Stmts {
			walkStmtTree(c, fn)
		}
	case *lang.IfStmt:
		walkStmtTree(st.Then, fn)
		if st.Else != nil {
			walkStmtTree(st.Else, fn)
		}
	case *lang.WhileStmt:
		walkStmtTree(st.Body, fn)
	case *lang.ForStmt:
		walkStmtTree(st.Body, fn)
	}
}
