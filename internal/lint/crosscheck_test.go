package lint_test

import (
	"strings"
	"testing"

	"nfactor/internal/lint"
	"nfactor/internal/statealyzer"
)

// TestCrossCheckCorpusClean is the NFL005 negative test and the
// regression tripwire itself: the independent dataflow re-derivation of
// the Table 1 classification must agree with StateAlyzer on every corpus
// NF. A failure here means one of the two derivations regressed.
func TestCrossCheckCorpusClean(t *testing.T) {
	for _, name := range corpusNames(t) {
		an := analyzeCorpus(t, name)
		if diags := lint.CrossCheck(an.Analyzer, an.Vars, name); len(diags) != 0 {
			t.Errorf("%s: classification cross-check mismatch:\n%s", name, lint.Render(diags))
		}
	}
}

// cloneVars shallow-copies a StateAlyzer result so a test can corrupt
// the classification without poisoning the shared corpus cache.
func cloneVars(r *statealyzer.Result) *statealyzer.Result {
	out := &statealyzer.Result{
		Features: make(map[string]statealyzer.Features, len(r.Features)),
		Category: make(map[string]statealyzer.Category, len(r.Category)),
	}
	for k, v := range r.Features {
		out.Features[k] = v
	}
	for k, v := range r.Category {
		out.Category[k] = v
	}
	return out
}

// TestCrossCheckMismatch is the NFL005 positive test: corrupting the
// pipeline's classification in each possible way (wrong category,
// phantom variable, missing variable) must produce an error diagnostic
// naming the variable.
func TestCrossCheckMismatch(t *testing.T) {
	an := analyzeCorpus(t, "firewall")

	t.Run("wrong-category", func(t *testing.T) {
		vars := cloneVars(an.Vars)
		var victim string
		for v, c := range vars.Category {
			if c == statealyzer.CatOIS {
				victim = v
				break
			}
		}
		if victim == "" {
			t.Fatal("firewall has no oisVar?")
		}
		vars.Category[victim] = statealyzer.CatLog
		d := wantCode(t, lint.CrossCheck(an.Analyzer, vars, "firewall"), lint.CodeClassMismatch, lint.SevError)
		if !strings.Contains(d.Message, victim) {
			t.Fatalf("diagnostic does not name %q: %s", victim, d.Message)
		}
	})

	t.Run("phantom-variable", func(t *testing.T) {
		vars := cloneVars(an.Vars)
		vars.Category["phantom"] = statealyzer.CatCfg
		d := wantCode(t, lint.CrossCheck(an.Analyzer, vars, "firewall"), lint.CodeClassMismatch, lint.SevError)
		if !strings.Contains(d.Message, "phantom") {
			t.Fatalf("diagnostic does not name the phantom: %s", d.Message)
		}
	})

	t.Run("missing-variable", func(t *testing.T) {
		vars := cloneVars(an.Vars)
		for v, c := range vars.Category {
			if c == statealyzer.CatCfg {
				delete(vars.Category, v)
				break
			}
		}
		wantCode(t, lint.CrossCheck(an.Analyzer, vars, "firewall"), lint.CodeClassMismatch, lint.SevError)
	})
}
