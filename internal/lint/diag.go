// Package lint is NFLint: static analysis and diagnostics over NFLang
// sources and synthesized NF models. It closes the loop the pipeline
// otherwise leaves open — the repo *uses* program analysis (slicing,
// StateAlyzer, symbolic execution) but never checks its own inputs or
// outputs. NFLint does both:
//
//   - Source-level passes run on the cfg/dataflow substrate over NFLang
//     ASTs: uninitialized reads, dead assignments, unreachable
//     statements, unused persistent variables, and an independent
//     re-derivation of the Table 1 variable classification that
//     cross-checks StateAlyzer (a mismatch is a regression tripwire for
//     the paper's core algorithm).
//   - Model-level passes run on synthesized tables with internal/solver:
//     shadowed entries, overlapping entries with conflicting actions,
//     match-space gaps that fall through to the §3.2 implicit drop
//     (reported with a witness packet class), and state variables that
//     are written but never read back.
//
// Diagnostics are structured (code, severity, position, related notes)
// and render as text or JSON; cmd/nflint is the CLI and the pipeline can
// gate synthesis on error-class diagnostics (core.Options.Lint).
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/lang"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, in ascending order.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Code identifies one lint check. NFL0xx codes are source-level, NFL1xx
// are model-level, NFL2xx are data-plane-level (properties of the
// lowered model, not the model itself); DESIGN.md maps each to the
// paper concept it guards.
type Code string

// The NFLint diagnostic codes.
const (
	// CodePipeline: the synthesis pipeline rejected the program (e.g. no
	// packet-output statement), so the model-level passes could not run.
	CodePipeline Code = "NFL000"
	// CodeUninitRead: a variable is read before any assignment reaches
	// the read (error: no definition at all on any path; warning: a path
	// exists on which the variable is still unassigned).
	CodeUninitRead Code = "NFL001"
	// CodeDeadAssign: the assigned value is never used afterwards.
	CodeDeadAssign Code = "NFL002"
	// CodeUnreachable: the statement can never execute (no CFG path from
	// function entry reaches it — e.g. code after an unconditional
	// return).
	CodeUnreachable Code = "NFL003"
	// CodeUnusedVar: a persistent (global) variable is never used by any
	// function — configuration or state that cannot matter.
	CodeUnusedVar Code = "NFL004"
	// CodeClassMismatch: NFLint's independent dataflow re-derivation of
	// the Table 1 variable classification disagrees with StateAlyzer —
	// one of the two analyses has a bug (regression tripwire).
	CodeClassMismatch Code = "NFL005"
	// CodeShadowedEntry: a table entry can never fire — its guard is
	// unsatisfiable, or a higher-priority entry's match subsumes it.
	CodeShadowedEntry Code = "NFL101"
	// CodeOverlapConflict: two entries' matches overlap but their
	// actions differ — only priority makes the model deterministic.
	CodeOverlapConflict Code = "NFL102"
	// CodeMatchGap: the entries do not cover the match space; the
	// witness packet class falls through to the implicit drop (§3.2).
	CodeMatchGap Code = "NFL103"
	// CodeUnmatchedState: a state variable is written by entry actions
	// but never read back by any match or action term — a logVar
	// misclassified as output-impacting, or dead state mass.
	CodeUnmatchedState Code = "NFL104"
	// CodeShardBlocked: a state variable admits none of the data
	// plane's sharding lowerings, so the model can only run
	// single-core; the message names the blocking variable and why
	// (informational — the sequential engine is still correct).
	CodeShardBlocked Code = "NFL201"
	// CodeChainDead: given a service-chain order (nflint -chain a,b,c),
	// a model entry can never fire — no injected traffic survives the
	// upstream NFs' forwarding entries and their header rewrites with
	// this entry's guard still satisfiable. Solver-checked over the
	// symbolic chain composition; reachable entries carry a witness on
	// the feasible side. NFL3xx codes are chain-level: properties of an
	// NF composition, not of any single model.
	CodeChainDead Code = "NFL301"
	// NFL4xx codes are network-level: properties of a full topology of
	// hosts, switches and NF models (nflint -topo), decided by symbolic
	// exploration in internal/verify and carrying concrete witness
	// packets that replay on the concrete simulator.
	//
	// CodeIsolationBreach: an isolation(src,dst) invariant is violated —
	// some packet class from src is delivered at dst.
	CodeIsolationBreach Code = "NFL401"
	// CodeForwardingLoop: a packet class revisits a node with an
	// identical header state, so the deterministic per-node transfer
	// functions forward it forever.
	CodeForwardingLoop Code = "NFL402"
	// CodeWaypointBypass: a waypoint(src,dst,via) invariant is violated
	// — some delivery from src to dst takes a path avoiding via.
	CodeWaypointBypass Code = "NFL403"
	// CodeBlackHole: traffic vanishes without any node deciding to drop
	// it — a switch with no route for a feasible destination class, a
	// send on an unconnected interface, or (error severity) a reach
	// invariant whose traffic never arrives at all.
	CodeBlackHole Code = "NFL404"
)

// Related is a secondary note attached to a diagnostic (a second
// position involved, or a cross-reference into another subsystem).
type Related struct {
	Pos     lang.Pos `json:"pos,omitempty"`
	Message string   `json:"message"`
}

// Diagnostic is one structured finding.
type Diagnostic struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	// NF names the program or model the finding is about.
	NF string `json:"nf,omitempty"`
	// Func is the enclosing function (source-level passes).
	Func string `json:"func,omitempty"`
	// Pos is the source position (source-level passes; zero otherwise).
	Pos lang.Pos `json:"pos,omitempty"`
	// Entry is the model entry index (model-level passes; -1 otherwise).
	Entry   int       `json:"entry,omitempty"`
	Message string    `json:"message"`
	Related []Related `json:"related,omitempty"`
}

// String renders the diagnostic as a single grep-able line (plus
// indented related notes).
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.NF != "" {
		sb.WriteString(d.NF)
		sb.WriteString(":")
	}
	if d.Pos != (lang.Pos{}) {
		fmt.Fprintf(&sb, "%s:", d.Pos)
	}
	if d.Entry >= 0 && d.Pos == (lang.Pos{}) {
		fmt.Fprintf(&sb, "entry %d:", d.Entry)
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	fmt.Fprintf(&sb, "%s[%s]: %s", d.Severity, d.Code, d.Message)
	for _, r := range d.Related {
		sb.WriteString("\n    note: ")
		if r.Pos != (lang.Pos{}) {
			fmt.Fprintf(&sb, "%s: ", r.Pos)
		}
		sb.WriteString(r.Message)
	}
	return sb.String()
}

// Sort orders diagnostics deterministically: source diagnostics by
// position, model diagnostics by entry, then by code and message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Entry != b.Entry {
			return a.Entry < b.Entry
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Max returns the highest severity present (SevInfo when empty).
func Max(diags []Diagnostic) Severity {
	out := SevInfo
	for _, d := range diags {
		if d.Severity > out {
			out = d.Severity
		}
	}
	return out
}

// Render formats diagnostics as human-readable text, one finding per
// line (related notes indented), ending with a summary line.
func Render(diags []Diagnostic) string {
	var sb strings.Builder
	var errs, warns, infos int
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
		switch d.Severity {
		case SevError:
			errs++
		case SevWarning:
			warns++
		default:
			infos++
		}
	}
	fmt.Fprintf(&sb, "%d error(s), %d warning(s), %d info\n", errs, warns, infos)
	return sb.String()
}

// RenderJSON formats diagnostics as an indented JSON array (stable
// given Sort), the machine surface of cmd/nflint -json.
func RenderJSON(diags []Diagnostic) (string, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	b, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
