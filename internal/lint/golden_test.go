package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfactor/internal/lint"
	"nfactor/internal/nfs"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("output drifted from %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

// TestGoldenCorpus locks the full-corpus nflint output — every pass over
// every NF, text and JSON. The corpus is expected to lint clean, so the
// golden also certifies that expectation.
func TestGoldenCorpus(t *testing.T) {
	var diags []lint.Diagnostic
	for _, name := range corpusNames(t) {
		an := analyzeCorpus(t, name)
		diags = append(diags, lint.Source(an.Original, name)...)
		diags = append(diags, lint.CrossCheck(an.Analyzer, an.Vars, name)...)
		diags = append(diags, lint.Model(an.Model, lint.ModelOptions{})...)
	}
	lint.Sort(diags)

	checkGolden(t, "corpus.txt", lint.Render(diags))
	js, err := lint.RenderJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "corpus.json", js)
}

// TestGoldenDemo locks the diagnostic wording and JSON shape on a
// deliberately broken program exercising the source-level codes.
func TestGoldenDemo(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "demo.nfl"))
	if err != nil {
		t.Fatal(err)
	}
	nf, err := nfs.FromSource("demo", string(src))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Source(nf.Prog, "demo")

	codes := map[lint.Code]bool{}
	for _, d := range diags {
		codes[d.Code] = true
	}
	for _, want := range []lint.Code{lint.CodeUninitRead, lint.CodeDeadAssign, lint.CodeUnreachable, lint.CodeUnusedVar} {
		if !codes[want] {
			t.Errorf("demo program should trigger %s; got:\n%s", want, lint.Render(diags))
		}
	}

	checkGolden(t, "demo.txt", lint.Render(diags))
	js, err := lint.RenderJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "demo.json", js)

	if !strings.Contains(lint.Render(diags), "error[NFL001]") {
		t.Error("demo rendering should include an NFL001 error")
	}
}
