package lint

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/model"
	"nfactor/internal/solver"
)

// ModelOptions configure the model-level passes.
type ModelOptions struct {
	// StateSlots, when set, names the state variables the compiled data
	// plane allocated storage for (dataplane Engine.State() keys); an
	// NFL104 finding about one of them gets a cross-reference note.
	StateSlots map[string]bool
	// EntryHits, when set, are live per-entry hit counters from a
	// telemetry Snapshot; a shadowed entry that also never fired in the
	// replay gets a concordance note (the telemetry.DeadEntries view of
	// the same fact).
	EntryHits []int64
	// MaxGapWork bounds the solver calls the match-space gap search may
	// spend (default 4096).
	MaxGapWork int
}

// Model runs the model-level lint passes on a synthesized model:
// shadowed entries (NFL101), overlapping entries with conflicting
// actions (NFL102), match-space gaps falling through to the implicit
// drop (NFL103) and state written but never read back (NFL104). Every
// verdict that condemns an entry is solver-proved (unsat is a proof;
// the solver's conservative side only costs missed findings, never
// false ones).
func Model(m *model.Model, opts ModelOptions) []Diagnostic {
	var diags []Diagnostic

	guards := make([][]solver.Term, len(m.Entries))
	sat := make([]bool, len(m.Entries))
	for i := range m.Entries {
		guards[i] = m.Entries[i].Guard()
		sat[i] = solver.SatConj(guards[i])
	}

	diags = append(diags, shadowedEntries(m, guards, sat, opts)...)
	diags = append(diags, overlapConflicts(m, guards, sat)...)
	diags = append(diags, matchGap(m, guards, sat, opts)...)
	diags = append(diags, unmatchedState(m, opts)...)
	Sort(diags)
	return diags
}

// shadowedEntries reports entries that can never fire (NFL101): an
// unsatisfiable guard, or a higher-priority entry whose match subsumes
// this one (every packet/state satisfying the lower entry's guard also
// satisfies the higher one's, proved by SAT on guard ∧ ¬literal).
func shadowedEntries(m *model.Model, guards [][]solver.Term, sat []bool, opts ModelOptions) []Diagnostic {
	var diags []Diagnostic
	for j := range m.Entries {
		var d *Diagnostic
		if !sat[j] {
			d = &Diagnostic{
				Code: CodeShadowedEntry, Severity: SevError, NF: m.NFName, Entry: j,
				Message: fmt.Sprintf("entry %d can never fire: its match conjunction is unsatisfiable", j),
			}
		} else {
			for i := 0; i < j; i++ {
				if !sat[i] {
					continue
				}
				if solver.ImpliesAll(guards[j], guards[i]) {
					d = &Diagnostic{
						Code: CodeShadowedEntry, Severity: SevError, NF: m.NFName, Entry: j,
						Message: fmt.Sprintf("entry %d can never fire: higher-priority entry %d matches everything it matches", j, i),
						Related: []Related{{Message: fmt.Sprintf("entry %d guard: %s", i, renderGuard(guards[i]))}},
					}
					break
				}
			}
		}
		if d == nil {
			continue
		}
		if j < len(opts.EntryHits) && opts.EntryHits[j] == 0 {
			d.Related = append(d.Related, Related{Message: "telemetry concurs: 0 hits for this entry in the replayed workload"})
		}
		diags = append(diags, *d)
	}
	return diags
}

// overlapConflicts reports entry pairs whose matches can both be
// satisfied by the same packet/state while prescribing different
// actions (NFL102) — the model is deterministic only by priority.
func overlapConflicts(m *model.Model, guards [][]solver.Term, sat []bool) []Diagnostic {
	var diags []Diagnostic
	for i := range m.Entries {
		if !sat[i] {
			continue
		}
		for j := i + 1; j < len(m.Entries); j++ {
			if !sat[j] {
				continue
			}
			if solver.ImpliesAll(guards[j], guards[i]) {
				continue // full shadow: reported by NFL101
			}
			both := append(append([]solver.Term{}, guards[i]...), guards[j]...)
			if !solver.SatConj(both) {
				continue // provably disjoint (the symexec-refined normal case)
			}
			if sameActions(&m.Entries[i], &m.Entries[j]) {
				continue // overlap with identical behaviour: harmless split
			}
			diags = append(diags, Diagnostic{
				Code: CodeOverlapConflict, Severity: SevWarning, NF: m.NFName, Entry: j,
				Message: fmt.Sprintf("entries %d and %d may match the same packet but act differently; priority makes entry %d win on the overlap", i, j, i),
				Related: []Related{{Message: fmt.Sprintf("entry %d guard: %s", i, renderGuard(guards[i]))}},
			})
		}
	}
	return diags
}

// matchGap searches for a packet/state class no entry matches (NFL103).
// The complement of the guard union is ∧ over entries of (∨ over the
// entry's literals of the literal's negation); the search picks one
// negated literal per entry, pruning by SAT, so a found class is
// disjoint from every entry by construction (it contradicts one literal
// of each). That class falls through to the §3.2 implicit drop; the
// finding is informational — implicit drop is usually intended — but
// the witness tells the operator exactly what traffic dies.
func matchGap(m *model.Model, guards [][]solver.Term, sat []bool, opts ModelOptions) []Diagnostic {
	witness := gapWitness(guards, sat, opts.MaxGapWork)
	if witness == nil {
		return nil
	}
	return []Diagnostic{{
		Code: CodeMatchGap, Severity: SevInfo, NF: m.NFName, Entry: -1,
		Message: fmt.Sprintf("match space not covered: the class %s matches no entry and falls through to the implicit drop (§3.2)", renderGuard(witness)),
	}}
}

// GapWitness returns a satisfiable packet/state class no entry of m
// matches, or nil when the entries cover the space (or the work budget
// runs out before a gap is found). The witness contains one negated
// literal of every satisfiable entry's guard, so witness ∧ guard is
// unsatisfiable for each entry — disjointness is provable by
// construction, which is what the ground-truth tests check. maxWork
// bounds the solver calls (<= 0: the 4096 default).
func GapWitness(m *model.Model, maxWork int) []solver.Term {
	guards := make([][]solver.Term, len(m.Entries))
	sat := make([]bool, len(m.Entries))
	for i := range m.Entries {
		guards[i] = m.Entries[i].Guard()
		sat[i] = solver.SatConj(guards[i])
	}
	return gapWitness(guards, sat, maxWork)
}

func gapWitness(guards [][]solver.Term, sat []bool, maxWork int) []solver.Term {
	budget := maxWork
	if budget <= 0 {
		budget = 4096
	}
	order := make([]int, 0, len(guards))
	for i, g := range guards {
		if !sat[i] {
			continue // an unfireable entry constrains nothing
		}
		if len(g) == 0 {
			return nil // a match-all entry: the space is covered
		}
		order = append(order, i)
	}
	// Negating short guards first keeps the search tree narrow.
	sort.SliceStable(order, func(a, b int) bool { return len(guards[order[a]]) < len(guards[order[b]]) })
	return gapSearch(guards, order, nil, map[string]bool{}, &budget)
}

// gapSearch extends the accumulated class with one negated literal of
// each remaining entry. chosen de-duplicates literals by key so an
// already-contradicted entry costs nothing.
func gapSearch(guards [][]solver.Term, remaining []int, acc []solver.Term, chosen map[string]bool, budget *int) []solver.Term {
	if len(remaining) == 0 {
		return acc
	}
	e := remaining[0]
	for _, lit := range guards[e] {
		if chosen[solver.Not(lit).Key()] {
			return gapSearch(guards, remaining[1:], acc, chosen, budget)
		}
	}
	for _, lit := range guards[e] {
		if *budget <= 0 {
			return nil
		}
		neg := solver.Not(lit)
		next := append(acc[:len(acc):len(acc)], neg)
		*budget--
		if !solver.SatConj(next) {
			continue
		}
		chosen[neg.Key()] = true
		if w := gapSearch(guards, remaining[1:], next, chosen, budget); w != nil {
			return w
		}
		delete(chosen, neg.Key())
	}
	return nil
}

// unmatchedState reports output-impacting state variables whose value
// the model never reads back (NFL104): written by actions but absent
// from every match and every action term, or absent from the model
// entirely. Either way the variable cannot influence forwarding — the
// oisVar classification (or the synthesis) is suspect, and the data
// plane is carrying dead state.
func unmatchedState(m *model.Model, opts ModelOptions) []Diagnostic {
	written := map[string]bool{}
	read := map[string]bool{}
	note := func(t solver.Term) {
		for _, v := range solver.Vars(t) {
			if base, ok := strings.CutSuffix(v, "@0"); ok {
				read[base] = true
			}
		}
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		for _, c := range e.Guard() {
			note(c)
		}
		for _, s := range e.Sends {
			for _, f := range s.Fields {
				note(f)
			}
			if s.Iface != nil {
				note(s.Iface)
			}
		}
		for _, u := range e.Updates {
			written[u.Name] = true
			note(u.Val)
		}
	}

	var diags []Diagnostic
	for _, v := range m.OISVars {
		if read[v] {
			continue
		}
		var msg string
		switch {
		case written[v]:
			msg = fmt.Sprintf("state variable %q is written by entry actions but never read by any match or action — oisVar misclassification or dead state", v)
		default:
			msg = fmt.Sprintf("state variable %q is declared output-impacting but appears in no entry — dead state", v)
		}
		d := Diagnostic{Code: CodeUnmatchedState, Severity: SevWarning, NF: m.NFName, Entry: -1, Message: msg}
		if opts.StateSlots[v] {
			d.Related = append(d.Related, Related{Message: "the compiled data plane allocates a state slot for this variable"})
		}
		diags = append(diags, d)
	}
	return diags
}

// sameActions reports whether two entries prescribe structurally
// identical packet actions and state transitions.
func sameActions(a, b *model.Entry) bool {
	if len(a.Sends) != len(b.Sends) || len(a.Updates) != len(b.Updates) {
		return false
	}
	for i := range a.Sends {
		if !sameSend(a.Sends[i], b.Sends[i]) {
			return false
		}
	}
	au, bu := sortedUpdates(a.Updates), sortedUpdates(b.Updates)
	for i := range au {
		if au[i].Name != bu[i].Name || au[i].Val.Key() != bu[i].Val.Key() {
			return false
		}
	}
	return true
}

func sameSend(a, b model.Action) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for k, v := range a.Fields {
		w, ok := b.Fields[k]
		if !ok || v.Key() != w.Key() {
			return false
		}
	}
	switch {
	case a.Iface == nil && b.Iface == nil:
		return true
	case a.Iface == nil || b.Iface == nil:
		return false
	default:
		return a.Iface.Key() == b.Iface.Key()
	}
}

func sortedUpdates(u []model.Assign) []model.Assign {
	out := append([]model.Assign(nil), u...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderGuard renders a guard (or gap-witness) conjunction the way
// lint findings do — "lit && lit && ..." ("true" when empty). Exported
// so the observability plane labels gap predicates and entry guards
// identically to the NFL103 findings they came from.
func RenderGuard(conds []solver.Term) string { return renderGuard(conds) }

// renderGuard renders a conjunction compactly for messages.
func renderGuard(conds []solver.Term) string {
	if len(conds) == 0 {
		return "true"
	}
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}
