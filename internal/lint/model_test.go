package lint_test

import (
	"strings"
	"testing"

	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

var sport = solver.Var{Name: "pkt.sport"}

func sportIs(op string, n int64) solver.Term {
	return solver.Bin{Op: op, X: sport, Y: solver.Const{V: value.Int(n)}}
}

func sendOut() model.Action {
	return model.Action{Fields: map[string]solver.Term{"sport": sport}, Iface: solver.Const{V: value.Str("out")}}
}

func sendLan() model.Action {
	return model.Action{Fields: map[string]solver.Term{"sport": sport}, Iface: solver.Const{V: value.Str("lan")}}
}

func TestShadowedEntrySubsumed(t *testing.T) {
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs(">", 100)}, Sends: []model.Action{sendLan()}},
	}}
	d := wantCode(t, lint.Model(m, lint.ModelOptions{}), lint.CodeShadowedEntry, lint.SevError)
	if d.Entry != 1 {
		t.Fatalf("want entry 1 shadowed, got entry %d", d.Entry)
	}
}

func TestShadowedEntryUnsat(t *testing.T) {
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10), sportIs("<", 5)}, Sends: []model.Action{sendOut()}},
	}}
	d := wantCode(t, lint.Model(m, lint.ModelOptions{}), lint.CodeShadowedEntry, lint.SevError)
	if !strings.Contains(d.Message, "unsatisfiable") {
		t.Fatalf("want the unsat variant, got: %s", d.Message)
	}
}

func TestShadowedEntryTelemetryNote(t *testing.T) {
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs(">", 100)}, Sends: []model.Action{sendLan()}},
	}}
	d := wantCode(t, lint.Model(m, lint.ModelOptions{EntryHits: []int64{42, 0}}), lint.CodeShadowedEntry, lint.SevError)
	found := false
	for _, r := range d.Related {
		if strings.Contains(r.Message, "telemetry concurs") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want telemetry concordance note, got %+v", d.Related)
	}
}

func TestShadowedEntryNegative(t *testing.T) {
	// Disjoint entries: nothing shadowed.
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs("<=", 10)}, Sends: []model.Action{sendLan()}},
	}}
	wantNone(t, lint.Model(m, lint.ModelOptions{}), lint.CodeShadowedEntry)
}

func TestOverlapConflict(t *testing.T) {
	// Partial overlap (10 < sport < 50) with different output interfaces.
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs("<", 50)}, Sends: []model.Action{sendLan()}},
	}}
	d := wantCode(t, lint.Model(m, lint.ModelOptions{}), lint.CodeOverlapConflict, lint.SevWarning)
	if d.Entry != 1 {
		t.Fatalf("want the lower-priority entry flagged, got entry %d", d.Entry)
	}
}

func TestOverlapConflictNegative(t *testing.T) {
	// Overlapping entries with identical actions are a harmless split.
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs("<", 50)}, Sends: []model.Action{sendOut()}},
	}}
	wantNone(t, lint.Model(m, lint.ModelOptions{}), lint.CodeOverlapConflict)
}

func TestUnmatchedState(t *testing.T) {
	m := &model.Model{NFName: "t", OISVars: []string{"wr", "ghost"},
		Entries: []model.Entry{
			{FlowMatch: []solver.Term{sportIs(">", 10)},
				Updates: []model.Assign{{Name: "wr", Val: sport}},
				Sends:   []model.Action{sendOut()}},
		}}
	diags := lint.Model(m, lint.ModelOptions{StateSlots: map[string]bool{"wr": true}})
	var wrote, dead lint.Diagnostic
	for _, d := range byCode(diags, lint.CodeUnmatchedState) {
		if strings.Contains(d.Message, `"wr"`) {
			wrote = d
		}
		if strings.Contains(d.Message, `"ghost"`) {
			dead = d
		}
	}
	if !strings.Contains(wrote.Message, "never read") {
		t.Fatalf("want write-only finding for wr, got %q", wrote.Message)
	}
	if len(wrote.Related) == 0 || !strings.Contains(wrote.Related[0].Message, "state slot") {
		t.Fatalf("want data-plane state-slot cross-reference, got %+v", wrote.Related)
	}
	if !strings.Contains(dead.Message, "appears in no entry") {
		t.Fatalf("want dead-state finding for ghost, got %q", dead.Message)
	}
}

func TestUnmatchedStateNegative(t *testing.T) {
	// State read back by a match (conns@0-style) is genuinely
	// output-impacting.
	stateRead := solver.Bin{Op: ">", X: solver.Var{Name: "wr@0"}, Y: solver.Const{V: value.Int(0)}}
	m := &model.Model{NFName: "t", OISVars: []string{"wr"},
		Entries: []model.Entry{
			{StateMatch: []solver.Term{stateRead},
				Updates: []model.Assign{{Name: "wr", Val: sport}},
				Sends:   []model.Action{sendOut()}},
		}}
	wantNone(t, lint.Model(m, lint.ModelOptions{}), lint.CodeUnmatchedState)
}

func TestMatchGapWitness(t *testing.T) {
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
	}}
	d := wantCode(t, lint.Model(m, lint.ModelOptions{}), lint.CodeMatchGap, lint.SevInfo)
	if !strings.Contains(d.Message, "implicit drop") {
		t.Fatalf("want implicit-drop wording, got: %s", d.Message)
	}
}

func TestMatchGapNegative(t *testing.T) {
	// sport > 10 and sport <= 10 cover the space.
	m := &model.Model{NFName: "t", Entries: []model.Entry{
		{FlowMatch: []solver.Term{sportIs(">", 10)}, Sends: []model.Action{sendOut()}},
		{FlowMatch: []solver.Term{sportIs("<=", 10)}},
	}}
	wantNone(t, lint.Model(m, lint.ModelOptions{}), lint.CodeMatchGap)
}

// modelGroundTruthNFs are the corpus NFs the solver-ground-truth tests
// run on (the acceptance criterion asks for at least two).
var modelGroundTruthNFs = []string{"nat", "firewall", "lb"}

// TestModelCorpusClean: synthesized corpus models must lint clean — the
// refinement partitions the match space (no gaps), entries are pairwise
// disjoint (no shadows, no conflicting overlaps) and every oisVar is
// read back.
func TestModelCorpusClean(t *testing.T) {
	for _, name := range corpusNames(t) {
		an := analyzeCorpus(t, name)
		if diags := lint.Model(an.Model, lint.ModelOptions{}); len(diags) != 0 {
			t.Errorf("%s: unexpected model diagnostics:\n%s", name, lint.Render(diags))
		}
	}
}

// TestShadowGroundTruth validates shadow detection against the solver on
// real corpus models: duplicating an entry at lower priority must yield
// an NFL101 whose subsumption the solver independently proves.
func TestShadowGroundTruth(t *testing.T) {
	for _, name := range modelGroundTruthNFs {
		an := analyzeCorpus(t, name)
		orig := an.Model
		dup := *orig
		dup.Entries = append(append([]model.Entry{}, orig.Entries...), orig.Entries[0])
		dupIdx := len(dup.Entries) - 1

		diags := byCode(lint.Model(&dup, lint.ModelOptions{}), lint.CodeShadowedEntry)
		found := false
		for _, d := range diags {
			if d.Entry == dupIdx {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: duplicated entry %d not reported shadowed:\n%s", name, dupIdx, lint.Render(diags))
			continue
		}
		// Ground truth: the duplicate's guard implies the original's.
		g := orig.Entries[0].Guard()
		if !solver.ImpliesAll(g, g) {
			t.Errorf("%s: solver does not prove self-subsumption of entry 0", name)
		}
	}
}

// TestGapGroundTruth validates gap detection against the solver on real
// corpus models: the synthesized model covers the match space (no
// witness), and removing one entry opens a gap whose witness is (a)
// satisfiable and (b) provably disjoint from every remaining entry.
func TestGapGroundTruth(t *testing.T) {
	for _, name := range modelGroundTruthNFs {
		an := analyzeCorpus(t, name)
		orig := an.Model
		if w := lint.GapWitness(orig, 0); w != nil {
			t.Errorf("%s: full model should cover the match space, got witness %v", name, w)
			continue
		}

		// Remove the first entry with a non-trivial satisfiable guard.
		victim := -1
		for i := range orig.Entries {
			g := orig.Entries[i].Guard()
			if len(g) > 0 && solver.SatConj(g) {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Errorf("%s: no removable entry", name)
			continue
		}
		reduced := *orig
		reduced.Entries = append(append([]model.Entry{}, orig.Entries[:victim]...), orig.Entries[victim+1:]...)

		w := lint.GapWitness(&reduced, 0)
		if w == nil {
			t.Errorf("%s: removing entry %d must open a gap", name, victim)
			continue
		}
		if !solver.SatConj(w) {
			t.Errorf("%s: witness %v is unsatisfiable", name, w)
		}
		for i := range reduced.Entries {
			g := reduced.Entries[i].Guard()
			if !solver.SatConj(g) {
				continue
			}
			if solver.SatConj(append(append([]solver.Term{}, w...), g...)) {
				t.Errorf("%s: witness %v intersects remaining entry %d", name, w, i)
			}
		}
		// And the lint pass reports it as the §3.2 implicit-drop info.
		wantCode(t, lint.Model(&reduced, lint.ModelOptions{}), lint.CodeMatchGap, lint.SevInfo)
	}
}
