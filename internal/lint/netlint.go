// netlint.go is the network-level lint pass (NFL4xx): invariants over a
// topology of hosts, switches and synthesized NF models, decided by the
// symbolic explorer in internal/verify and reported as structured
// diagnostics. Where the chain pass (NFL301) judges one linear NF
// composition, this pass judges a branching deployment: isolation
// breaches, forwarding loops, waypoint bypasses and black-holes, each
// with a constraint witness and (when synthesis succeeds) a concrete
// packet that replays the violation on the concrete simulator.
package lint

import (
	"fmt"
	"strings"

	"nfactor/internal/value"
	"nfactor/internal/verify"
)

// Network checks the invariants against the topology and renders every
// violation as an NFL4xx diagnostic. Diagnostics are deterministic and
// independent of opts.Workers.
func Network(net *verify.SymNetwork, invs []verify.Invariant, opts verify.ExploreOpts) ([]Diagnostic, error) {
	rep, err := net.Check(invs, opts)
	if err != nil {
		return nil, err
	}
	diags := make([]Diagnostic, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		diags = append(diags, violationDiag(v))
	}
	return diags, nil
}

// NetworkCode maps a violation kind onto its diagnostic code and
// severity (shared with cmd/nfverify's report).
func NetworkCode(k verify.ViolationKind) (Code, Severity) {
	switch k {
	case verify.VIsolationBreach:
		return CodeIsolationBreach, SevError
	case verify.VForwardingLoop:
		return CodeForwardingLoop, SevError
	case verify.VWaypointBypass:
		return CodeWaypointBypass, SevError
	case verify.VUnreachable:
		// A failed reach() invariant is error-severity: the operator
		// asserted the traffic must arrive.
		return CodeBlackHole, SevError
	default:
		return CodeBlackHole, SevWarning
	}
}

// violationDiag maps one verify.Violation onto its diagnostic code.
func violationDiag(v verify.Violation) Diagnostic {
	d := Diagnostic{
		NF:      v.Node,
		Entry:   -1,
		Message: fmt.Sprintf("%s: %s", v.Invariant.Raw, v.Detail),
	}
	d.Code, d.Severity = NetworkCode(v.Kind)
	if len(v.Path) > 0 {
		d.Related = append(d.Related, Related{Message: "path: " + strings.Join(v.Path, " -> ")})
	}
	if v.Packet.Kind == value.KindPacket {
		d.Related = append(d.Related, Related{Message: fmt.Sprintf("witness packet: %s", v.Packet)})
	}
	return d
}
