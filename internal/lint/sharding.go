package lint

import (
	"fmt"
	"strings"

	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/value"
)

// Sharding runs the data-plane-level pass (NFL2xx): can the synthesized
// model scale across cores? dataplane.Classify must find a sharding
// lowering for every state variable — flow-partitioned map, replicable
// read-only map, owner-routed map, per-shard sub-allocator, rotor or
// frozen scalar. The one shape with no lowering is a scalar that is
// both written and read by a guard: per-shard copies would change match
// outcomes, so every packet has to see the same copy. The finding is
// informational, not an error — the sequential engine is still correct;
// the model just cannot use more than one core (nfreplay -side sharded
// falls back and reports the same variable).
func Sharding(m *model.Model, config, initState map[string]value.Value) []Diagnostic {
	_, err := dataplane.Classify(m, config, initState)
	if err == nil {
		return nil
	}
	d := Diagnostic{
		Code: CodeShardBlocked, Severity: SevInfo, NF: m.NFName, Entry: -1,
		Message: fmt.Sprintf("model cannot shard: %s", strings.TrimPrefix(err.Error(), "dataplane: ")),
		Related: []Related{{Message: "the sharded engine is unavailable; nfreplay -side sharded falls back to the single compiled engine"}},
	}
	if v := dataplane.BlockingVar(err); v != "" {
		d.Related = append(d.Related, Related{
			Message: fmt.Sprintf("to shard, restructure %q so it is keyed by packet fields or advanced by a constant stride", v),
		})
	}
	return []Diagnostic{d}
}
