package lint_test

import (
	"strings"
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/lint"
	"nfactor/internal/nfs"
)

// TestShardingCorpusClean asserts the tentpole invariant from the lint
// side: every corpus NF's state admits a sharding lowering, so the
// NFL201 pass is silent on all of them.
func TestShardingCorpusClean(t *testing.T) {
	for _, name := range corpusNames(t) {
		an := analyzeCorpus(t, name)
		config, state, err := an.ConfigAndState(nil)
		if err != nil {
			t.Fatalf("%s: ConfigAndState: %v", name, err)
		}
		if diags := lint.Sharding(an.Model, config, state); len(diags) != 0 {
			t.Errorf("%s: unexpected sharding diagnostics: %v", name, diags)
		}
	}
}

// TestShardingBlockedScalar locks the NFL201 shape on the canonical
// non-shardable program: a global scalar both read by a guard and
// written, which no per-shard lowering preserves.
func TestShardingBlockedScalar(t *testing.T) {
	const src = `
LIMIT = 3;
count = 0;

func process(pkt) {
    if count < LIMIT {
        count = count + 1;
        send(pkt, "out");
    }
}
`
	nf, err := nfs.FromSource("admit", src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Sharding(an.Model, config, state)
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Code != lint.CodeShardBlocked {
		t.Errorf("code = %s, want %s", d.Code, lint.CodeShardBlocked)
	}
	if d.Severity != lint.SevInfo {
		t.Errorf("severity = %s, want info (sharding is an opportunity, not a defect)", d.Severity)
	}
	if !strings.Contains(d.Message, `"count"`) {
		t.Errorf("message must name the blocking state variable: %q", d.Message)
	}
	if len(d.Related) == 0 {
		t.Errorf("want related notes explaining the fallback, got none")
	}
	if lint.HasErrors(diags) {
		t.Errorf("informational finding must not fail the lint gate")
	}
}
