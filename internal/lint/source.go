package lint

import (
	"fmt"

	"nfactor/internal/cfg"
	"nfactor/internal/dataflow"
	"nfactor/internal/lang"
)

// Source runs the source-level lint passes over every function of an
// NFLang program: uninitialized reads (NFL001), dead assignments
// (NFL002), unreachable statements (NFL003) and unused persistent
// variables (NFL004). nfName labels the diagnostics.
//
// The passes run on the same cfg/dataflow substrate the synthesis
// pipeline slices with, so anything they flag is also what the pipeline
// would silently analyze. The Table 1 classification cross-check
// (NFL005) needs pipeline results and lives in CrossCheck.
func Source(prog *lang.Program, nfName string) []Diagnostic {
	var diags []Diagnostic

	persistent := map[string]bool{}
	globalStmts := map[int]bool{}
	for _, g := range prog.Globals {
		globalStmts[g.StmtID()] = true
		for _, l := range g.LHS {
			if id, ok := l.(*lang.Ident); ok {
				persistent[id.Name] = true
			}
		}
	}

	for _, fn := range prog.Funcs {
		diags = append(diags, lintFunc(prog, fn, nfName, persistent, globalStmts)...)
	}
	diags = append(diags, unusedPersistent(prog, nfName)...)
	Sort(diags)
	return diags
}

// lintFunc runs the CFG-based passes on one function (with the globals
// prelude, as the pipeline's analyses see it).
func lintFunc(prog *lang.Program, fn *lang.FuncDecl, nfName string, persistent map[string]bool, globalStmts map[int]bool) []Diagnostic {
	var diags []Diagnostic
	g, err := cfg.Build(prog, fn.Name)
	if err != nil {
		return []Diagnostic{{
			Code:     CodeUnreachable,
			Severity: SevError,
			NF:       nfName,
			Func:     fn.Name,
			Pos:      fn.Pos,
			Entry:    -1,
			Message:  fmt.Sprintf("control-flow graph construction failed: %v", err),
		}}
	}

	diags = append(diags, unreachableStmts(g, fn, nfName)...)

	rd := dataflow.Reaching(g, fn.Params)
	must := mustAssigned(g, fn.Params)
	lv := dataflow.Live(g)

	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		inGlobals := globalStmts[n.Stmt.StmtID()]

		// NFL001 — uninitialized reads.
		for _, v := range dataflow.NodeUses(g, n.ID) {
			if must[n.ID][v] {
				continue
			}
			d := Diagnostic{
				Code: CodeUninitRead, NF: nfName, Func: fn.Name,
				Pos: n.Stmt.NodePos(), Entry: -1,
			}
			if defs := usableDefs(rd, g, n.ID, v); len(defs) == 0 {
				d.Severity = SevError
				d.Message = fmt.Sprintf("%q is read but never assigned", v)
			} else {
				d.Severity = SevWarning
				d.Message = fmt.Sprintf("%q may be read before assignment on some path", v)
				if s := g.Node(defs[0]).Stmt; s != nil {
					d.Related = []Related{{Pos: s.NodePos(), Message: fmt.Sprintf("%q assigned here, but not on every path", v)}}
				}
			}
			diags = append(diags, d)
		}

		// NFL002 — dead assignments. Only strong (whole-variable) defs of
		// non-persistent variables: container-element stores mutate state
		// observable through the container, and persistent variables
		// outlive the invocation (their last write is read next packet).
		if inGlobals {
			continue
		}
		for _, v := range strongDefs(n.Stmt) {
			if persistent[v] || lv.Out[n.ID][v] {
				continue
			}
			kind := "value assigned to"
			if _, isFor := n.Stmt.(*lang.ForStmt); isFor {
				kind = "loop variable"
			}
			diags = append(diags, Diagnostic{
				Code: CodeDeadAssign, Severity: SevWarning, NF: nfName, Func: fn.Name,
				Pos: n.Stmt.NodePos(), Entry: -1,
				Message: fmt.Sprintf("%s %q is never used", kind, v),
			})
		}
	}
	return diags
}

// unreachableStmts reports the topmost statements of fn's body that the
// CFG pruned as unreachable from entry (NFL003). Children of a reported
// statement are skipped — one finding per dead region.
func unreachableStmts(g *cfg.Graph, fn *lang.FuncDecl, nfName string) []Diagnostic {
	var diags []Diagnostic
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		if blk, ok := s.(*lang.BlockStmt); ok {
			for _, c := range blk.Stmts {
				walk(c)
			}
			return
		}
		if g.NodeByStmt(s.StmtID()) == nil {
			diags = append(diags, Diagnostic{
				Code: CodeUnreachable, Severity: SevWarning, NF: nfName, Func: fn.Name,
				Pos: s.NodePos(), Entry: -1,
				Message: "statement is unreachable",
			})
			return // do not cascade into the dead region
		}
		switch st := s.(type) {
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			walk(st.Body)
		}
	}
	walk(fn.Body)
	return diags
}

// unusedPersistent reports globals no function ever reads or updates
// (NFL004): configuration or state that cannot influence anything.
func unusedPersistent(prog *lang.Program, nfName string) []Diagnostic {
	used := map[string]bool{}
	for _, fn := range prog.Funcs {
		var walk func(s lang.Stmt)
		walk = func(s lang.Stmt) {
			for _, v := range lang.Uses(s) {
				used[v] = true
			}
			for _, v := range lang.Defs(s) {
				used[v] = true
			}
			switch st := s.(type) {
			case *lang.BlockStmt:
				for _, c := range st.Stmts {
					walk(c)
				}
			case *lang.IfStmt:
				walk(st.Then)
				if st.Else != nil {
					walk(st.Else)
				}
			case *lang.WhileStmt:
				walk(st.Body)
			case *lang.ForStmt:
				walk(st.Body)
			}
		}
		walk(fn.Body)
	}
	// A global referenced by another global's initializer counts as used.
	for _, g := range prog.Globals {
		for _, v := range lang.Uses(g) {
			used[v] = true
		}
	}

	var diags []Diagnostic
	for _, g := range prog.Globals {
		for _, l := range g.LHS {
			id, ok := l.(*lang.Ident)
			if !ok || used[id.Name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Code: CodeUnusedVar, Severity: SevWarning, NF: nfName,
				Pos: g.NodePos(), Entry: -1,
				Message: fmt.Sprintf("persistent variable %q is never used by any function", id.Name),
			})
		}
	}
	return diags
}

// strongDefs returns the variables a statement assigns as a whole
// (killing earlier values) — assignment targets that are bare
// identifiers, and for-loop variables.
func strongDefs(s lang.Stmt) []string {
	var out []string
	switch st := s.(type) {
	case *lang.AssignStmt:
		for _, l := range st.LHS {
			if id, ok := l.(*lang.Ident); ok {
				out = append(out, id.Name)
			}
		}
	case *lang.ForStmt:
		out = append(out, st.Var)
	}
	return out
}

// usableDefs returns the reaching definitions of v at node that are real
// statements (the synthetic ENTRY definitions of parameters do not
// count: a parameter is always assigned).
func usableDefs(rd *dataflow.ReachDefs, g *cfg.Graph, node int, v string) []int {
	var out []int
	for _, d := range rd.UseDefs(node, v) {
		if g.Node(d).Stmt != nil {
			out = append(out, d)
		}
	}
	return out
}

// mustAssigned computes, per CFG node, the set of variables definitely
// assigned on every path from ENTRY to that node's evaluation (a
// forward must-analysis — the dual of the may-style reaching
// definitions). Parameters are assigned at entry; weak container-store
// defs do not count (storing into m requires m to already exist).
func mustAssigned(g *cfg.Graph, params []string) []map[string]bool {
	n := len(g.Nodes)
	universe := map[string]bool{}
	for _, p := range params {
		universe[p] = true
	}
	defs := make([][]string, n)
	for i, node := range g.Nodes {
		if node.Stmt != nil {
			defs[i] = strongDefs(node.Stmt)
			for _, v := range defs[i] {
				universe[v] = true
			}
			for _, v := range dataflow.NodeUses(g, i) {
				universe[v] = true
			}
		}
	}

	in := make([]map[string]bool, n)
	out := make([]map[string]bool, n)
	full := func() map[string]bool {
		m := make(map[string]bool, len(universe))
		for v := range universe {
			m[v] = true
		}
		return m
	}
	for i := 0; i < n; i++ {
		in[i], out[i] = full(), full()
	}
	entryIn := map[string]bool{}
	for _, p := range params {
		entryIn[p] = true
	}
	in[g.Entry.ID] = entryIn

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			cur := in[i]
			if i != g.Entry.ID {
				var inter map[string]bool
				for _, p := range g.Preds(i) {
					if inter == nil {
						inter = cloneStrSet(out[p])
						continue
					}
					for v := range inter {
						if !out[p][v] {
							delete(inter, v)
						}
					}
				}
				if inter == nil {
					inter = map[string]bool{}
				}
				cur = inter
			}
			next := cloneStrSet(cur)
			for _, v := range defs[i] {
				next[v] = true
			}
			if !sameStrSet(cur, in[i]) || !sameStrSet(next, out[i]) {
				in[i], out[i] = cur, next
				changed = true
			}
		}
	}
	return in
}

func cloneStrSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func sameStrSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
