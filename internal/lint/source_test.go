package lint_test

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
	"nfactor/internal/lint"
)

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func lintSrc(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	return lint.Source(mustParse(t, src), "t")
}

func TestUninitReadNeverAssigned(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    pkt.sport = ghost;
    send(pkt, "out");
}
`)
	d := wantCode(t, diags, lint.CodeUninitRead, lint.SevError)
	if !strings.Contains(d.Message, `"ghost"`) {
		t.Fatalf("wrong variable: %s", d.Message)
	}
	if d.Pos.Line != 3 {
		t.Fatalf("want line 3, got %v", d.Pos)
	}
}

func TestUninitReadSomePath(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    if pkt.sport > 1024 {
        x = 1;
    }
    pkt.dport = x;
    send(pkt, "out");
}
`)
	d := wantCode(t, diags, lint.CodeUninitRead, lint.SevWarning)
	if !strings.Contains(d.Message, `"x"`) || !strings.Contains(d.Message, "some path") {
		t.Fatalf("wrong message: %s", d.Message)
	}
	if len(d.Related) == 0 || d.Related[0].Pos.Line != 4 {
		t.Fatalf("want related note at the line-4 assignment, got %+v", d.Related)
	}
}

func TestUninitReadNegative(t *testing.T) {
	// Assigned on every path (including via the parameter) — no NFL001.
	diags := lintSrc(t, `
func process(pkt) {
    if pkt.sport > 1024 {
        x = 1;
    } else {
        x = 2;
    }
    pkt.dport = x;
    send(pkt, "out");
}
`)
	wantNone(t, diags, lint.CodeUninitRead)
}

func TestDeadAssign(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    x = pkt.sport;
    x = 7;
    pkt.dport = x;
    send(pkt, "out");
}
`)
	d := wantCode(t, diags, lint.CodeDeadAssign, lint.SevWarning)
	if d.Pos.Line != 3 {
		t.Fatalf("want the overwritten line-3 assignment flagged, got %v", d.Pos)
	}
	if len(byCode(diags, lint.CodeDeadAssign)) != 1 {
		t.Fatalf("only the dead store should be flagged:\n%s", lint.Render(diags))
	}
}

func TestDeadAssignNegative(t *testing.T) {
	// Persistent variables outlive the invocation; container-element
	// stores are observable through the container — neither is dead.
	diags := lintSrc(t, `
seen = {};
count = 0;

func process(pkt) {
    seen[pkt.sip] = 1;
    count = count + 1;
    send(pkt, "out");
}
`)
	wantNone(t, diags, lint.CodeDeadAssign)
}

func TestUnreachable(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    send(pkt, "out");
    return;
    send(pkt, "never");
}
`)
	d := wantCode(t, diags, lint.CodeUnreachable, lint.SevWarning)
	if d.Pos.Line != 5 {
		t.Fatalf("want line 5, got %v", d.Pos)
	}
}

func TestUnreachableNegative(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    if pkt.sport > 1024 {
        return;
    }
    send(pkt, "out");
}
`)
	wantNone(t, diags, lint.CodeUnreachable)
}

func TestUnusedVar(t *testing.T) {
	diags := lintSrc(t, `
LIMIT = 100;

func process(pkt) {
    send(pkt, "out");
}
`)
	d := wantCode(t, diags, lint.CodeUnusedVar, lint.SevWarning)
	if !strings.Contains(d.Message, `"LIMIT"`) {
		t.Fatalf("wrong variable: %s", d.Message)
	}
}

func TestUnusedVarNegative(t *testing.T) {
	// Used by a function, or by another global's initializer — not unused.
	diags := lintSrc(t, `
BASE = 100;
LIMIT = BASE + 1;

func process(pkt) {
    if pkt.sport > LIMIT {
        send(pkt, "out");
    }
}
`)
	wantNone(t, diags, lint.CodeUnusedVar)
}

// TestSourceCorpus runs the source passes over the whole corpus: after
// the satellite fixes the corpus lints clean (the golden tests lock the
// exact output).
func TestSourceCorpus(t *testing.T) {
	for _, name := range corpusNames(t) {
		an := analyzeCorpus(t, name)
		diags := lint.Source(an.Original, name)
		if len(diags) != 0 {
			t.Errorf("%s: unexpected source diagnostics:\n%s", name, lint.Render(diags))
		}
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	diags := lintSrc(t, `
func process(pkt) {
    pkt.sport = ghost;
    send(pkt, "out");
}
`)
	out, err := lint.RenderJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"code": "NFL001"`, `"severity": "error"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON output missing %s:\n%s", want, out)
		}
	}
}
