package model

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/solver"
)

// Compare semantically matches the entries of two models: entries pair up
// when their guards are mutually implying conjunctions (solver-verified,
// not syntactic) and their actions canonicalize identically. This is the
// paper's proposed future-work comparison between synthesized models and
// models written manually from domain knowledge — a hand-written model in
// the same term vocabulary can be checked against NFactor's output.
type CompareReport struct {
	// Matched pairs entry indices (a, b).
	Matched [][2]int
	// OnlyA / OnlyB list unmatched entry indices.
	OnlyA []int
	OnlyB []int
}

// Equivalent reports whether the comparison found a perfect matching.
func (r *CompareReport) Equivalent() bool {
	return len(r.OnlyA) == 0 && len(r.OnlyB) == 0
}

// String summarizes the report.
func (r *CompareReport) String() string {
	return fmt.Sprintf("matched=%d onlyA=%v onlyB=%v", len(r.Matched), r.OnlyA, r.OnlyB)
}

// Compare matches a's entries against b's.
func Compare(a, b *Model) *CompareReport {
	rep := &CompareReport{}
	usedB := map[int]bool{}
	for i := range a.Entries {
		ea := &a.Entries[i]
		found := -1
		for j := range b.Entries {
			if usedB[j] {
				continue
			}
			eb := &b.Entries[j]
			if entriesEquivalent(ea, eb) {
				found = j
				break
			}
		}
		if found >= 0 {
			usedB[found] = true
			rep.Matched = append(rep.Matched, [2]int{i, found})
		} else {
			rep.OnlyA = append(rep.OnlyA, i)
		}
	}
	for j := range b.Entries {
		if !usedB[j] {
			rep.OnlyB = append(rep.OnlyB, j)
		}
	}
	return rep
}

func entriesEquivalent(a, b *Entry) bool {
	if !solver.EquivConj(a.Guard(), b.Guard()) {
		return false
	}
	return EntryActionSig(a) == EntryActionSig(b)
}

// EntryActionSig canonicalizes an entry's observable actions: sends
// (interface + non-identity field transforms, simplified) and state
// updates. Identity field writes (pkt.f := pkt.f) are dropped — they
// carry no information and differ between models only by which fields
// happened to be read.
func EntryActionSig(e *Entry) string {
	var parts []string
	for _, a := range e.Sends {
		var fs []string
		for _, name := range a.FieldNames() {
			t := solver.Simplify(a.Fields[name])
			if v, ok := t.(solver.Var); ok && v.Name == "pkt."+name {
				continue
			}
			fs = append(fs, name+"="+t.Key())
		}
		sort.Strings(fs)
		parts = append(parts, "send["+solver.Simplify(a.Iface).Key()+"]{"+strings.Join(fs, ",")+"}")
	}
	var ups []string
	for _, u := range e.Updates {
		ups = append(ups, u.Name+":="+solver.Simplify(u.Val).Key())
	}
	sort.Strings(ups)
	return strings.Join(parts, ";") + "|" + strings.Join(ups, ";")
}

// Covers reports whether model b subsumes model a: every entry of a is
// implied by some entry of b with identical actions (b may be coarser —
// one b entry covering several a entries). Returns the uncovered entries
// of a.
func Covers(a, b *Model) (bool, []int) {
	var uncovered []int
	for i := range a.Entries {
		ea := &a.Entries[i]
		ok := false
		for j := range b.Entries {
			eb := &b.Entries[j]
			if solver.ImpliesAll(ea.Guard(), eb.Guard()) && EntryActionSig(ea) == EntryActionSig(eb) {
				ok = true
				break
			}
		}
		if !ok {
			uncovered = append(uncovered, i)
		}
	}
	return len(uncovered) == 0, uncovered
}
