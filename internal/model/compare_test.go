package model

import (
	"strings"
	"testing"

	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// handModel builds the toy model by hand with reordered-but-equivalent
// guards.
func handModel() *Model {
	eq80 := solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: iv(80)}
	rrMode := solver.Bin{Op: "==", X: solver.Var{Name: "mode"}, Y: sv("RR")}
	inc := solver.Bin{Op: "+", X: solver.Var{Name: "count@0"}, Y: iv(1)}
	return &Model{
		NFName: "toy-by-hand", PktVar: "pkt",
		CfgVars: []string{"mode"}, OISVars: []string{"count"},
		Entries: []Entry{
			{
				// Same semantics, different literal order and an extra
				// tautological identity field.
				FlowMatch: []solver.Term{eq80},
				Config:    []solver.Term{rrMode},
				Sends: []Action{{
					Fields: map[string]solver.Term{
						"ttl":   solver.Bin{Op: "-", X: solver.Var{Name: "pkt.ttl"}, Y: iv(1)},
						"sport": solver.Var{Name: "pkt.sport"}, // identity: ignored
					},
					Iface: sv("eth1"),
				}},
				Updates: []Assign{{Name: "count", Val: inc}},
			},
			{
				Config:    []solver.Term{rrMode},
				FlowMatch: []solver.Term{solver.Not(eq80)},
			},
		},
	}
}

func TestCompareEquivalentModels(t *testing.T) {
	synth := toyModel()
	hand := handModel()
	rep := Compare(synth, hand)
	if !rep.Equivalent() {
		t.Errorf("models should match: %s", rep)
	}
	if len(rep.Matched) != 2 {
		t.Errorf("matched = %v", rep.Matched)
	}
}

func TestCompareDetectsActionDifference(t *testing.T) {
	synth := toyModel()
	hand := handModel()
	// Corrupt the hand model's ttl decrement: -2 instead of -1.
	hand.Entries[0].Sends[0].Fields["ttl"] =
		solver.Bin{Op: "-", X: solver.Var{Name: "pkt.ttl"}, Y: iv(2)}
	rep := Compare(synth, hand)
	if rep.Equivalent() {
		t.Error("corrupted action not detected")
	}
	if len(rep.OnlyA) != 1 || len(rep.OnlyB) != 1 {
		t.Errorf("report = %s", rep)
	}
}

func TestCompareDetectsGuardDifference(t *testing.T) {
	synth := toyModel()
	hand := handModel()
	// Hand model matches port 81 instead of 80.
	hand.Entries[0].FlowMatch = []solver.Term{
		solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: iv(81)},
	}
	rep := Compare(synth, hand)
	if rep.Equivalent() {
		t.Error("guard difference not detected")
	}
}

func TestCompareDetectsMissingStateUpdate(t *testing.T) {
	synth := toyModel()
	hand := handModel()
	hand.Entries[0].Updates = nil // hand model forgot the counter
	rep := Compare(synth, hand)
	if rep.Equivalent() {
		t.Error("missing state transition not detected")
	}
}

func TestCoversCoarserModel(t *testing.T) {
	// A fine model with two disjoint drop entries is covered by a coarse
	// model with one weaker drop entry.
	lt := solver.Bin{Op: "<", X: solver.Var{Name: "pkt.ttl"}, Y: iv(2)}
	eq0 := solver.Bin{Op: "==", X: solver.Var{Name: "pkt.ttl"}, Y: iv(0)}
	eq1 := solver.Bin{Op: "==", X: solver.Var{Name: "pkt.ttl"}, Y: iv(1)}
	fine := &Model{Entries: []Entry{
		{FlowMatch: []solver.Term{eq0}},
		{FlowMatch: []solver.Term{eq1}},
	}}
	coarse := &Model{Entries: []Entry{
		{FlowMatch: []solver.Term{lt}},
	}}
	ok, uncovered := Covers(fine, coarse)
	if !ok {
		t.Errorf("coarse model should cover fine model; uncovered = %v", uncovered)
	}
	// The reverse cannot hold: lt is weaker than eq0.
	ok, _ = Covers(coarse, fine)
	if ok {
		t.Error("fine model should not cover the coarse entry")
	}
}

func TestEntryActionSigIgnoresIdentity(t *testing.T) {
	e1 := Entry{Sends: []Action{{
		Fields: map[string]solver.Term{"sport": solver.Var{Name: "pkt.sport"}},
		Iface:  solver.Const{V: value.Str("")},
	}}}
	e2 := Entry{Sends: []Action{{
		Fields: map[string]solver.Term{},
		Iface:  solver.Const{V: value.Str("")},
	}}}
	if EntryActionSig(&e1) != EntryActionSig(&e2) {
		t.Error("identity field changed the action signature")
	}
	if !strings.Contains(EntryActionSig(&e1), "send") {
		t.Error("signature missing send marker")
	}
}
