package model

import (
	"fmt"
	"strings"

	"nfactor/internal/lang"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Compile lowers the model back to an NFLang program: a chain of guarded
// entries, each evaluating its match conjunction against the packet and
// the pre-state, emitting its sends and committing its state transitions.
// The compiled program is behaviourally equivalent to the model by
// construction, which lets the paper's accuracy methodology re-run
// symbolic execution "on both sides" (§5) and also gives the SE-time
// numbers for model checking on the model instead of the original code.
//
// Guard and action terms only reference the pre-state (name@0), so the
// compiled entry evaluates everything into temporaries before committing
// any state write.
func Compile(m *Model, config, initState map[string]value.Value) (*lang.Program, error) {
	c := &compiler{}
	var sb strings.Builder

	// Global initializers: configuration and state variables.
	for _, name := range m.CfgVars {
		v, ok := config[name]
		if !ok {
			return nil, fmt.Errorf("model compile: missing config %q", name)
		}
		lit, err := valueLiteral(v)
		if err != nil {
			return nil, fmt.Errorf("model compile: config %s: %w", name, err)
		}
		fmt.Fprintf(&sb, "%s = %s;\n", name, lit)
	}
	for _, name := range m.OISVars {
		v, ok := initState[name]
		if !ok {
			return nil, fmt.Errorf("model compile: missing state %q", name)
		}
		lit, err := valueLiteral(v)
		if err != nil {
			return nil, fmt.Errorf("model compile: state %s: %w", name, err)
		}
		fmt.Fprintf(&sb, "%s = %s;\n", name, lit)
	}

	fmt.Fprintf(&sb, "\nfunc process(%s) {\n", m.PktVar)
	for i := range m.Entries {
		body, err := c.entryBody(m, &m.Entries[i])
		if err != nil {
			return nil, fmt.Errorf("model compile: entry %d: %w", i, err)
		}
		sb.WriteString(body)
	}
	sb.WriteString("}\n")

	prog, err := lang.Parse(sb.String())
	if err != nil {
		return nil, fmt.Errorf("model compile: generated program does not parse: %w\n%s", err, sb.String())
	}
	return prog, nil
}

type compiler struct{ tmp int }

func (c *compiler) fresh() string {
	c.tmp++
	return fmt.Sprintf("t%d", c.tmp)
}

func (c *compiler) entryBody(m *Model, e *Entry) (string, error) {
	guard := e.Guard()
	var cond string
	if len(guard) == 0 {
		cond = "true"
	} else {
		parts := make([]string, len(guard))
		for i, g := range guard {
			s, err := c.termExpr(g)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		cond = strings.Join(parts, " && ")
	}

	var body strings.Builder
	// Evaluate all action and update expressions into temporaries first.
	type fieldTmp struct{ field, tmp string }
	type sendTmp struct {
		fields []fieldTmp
		iface  string
	}
	var sends []sendTmp
	for _, a := range e.Sends {
		var st sendTmp
		for _, f := range a.FieldNames() {
			expr, err := c.termExpr(a.Fields[f])
			if err != nil {
				return "", err
			}
			tmp := c.fresh()
			fmt.Fprintf(&body, "        %s = %s;\n", tmp, expr)
			st.fields = append(st.fields, fieldTmp{field: f, tmp: tmp})
		}
		ifaceExpr, err := c.termExpr(a.Iface)
		if err != nil {
			return "", err
		}
		st.iface = ifaceExpr
		sends = append(sends, st)
	}

	type commit struct{ stmts []string }
	var commits commit
	for _, u := range e.Updates {
		stmts, err := c.updateStmts(u)
		if err != nil {
			return "", err
		}
		// Each update's key/value expressions go into temps now; the
		// commits run after every read of the pre-state.
		for _, s := range stmts.pre {
			fmt.Fprintf(&body, "        %s\n", s)
		}
		commits.stmts = append(commits.stmts, stmts.post...)
	}

	for _, s := range sends {
		for _, ft := range s.fields {
			fmt.Fprintf(&body, "        %s.%s = %s;\n", m.PktVar, ft.field, ft.tmp)
		}
		if s.iface == `""` {
			fmt.Fprintf(&body, "        send(%s);\n", m.PktVar)
		} else {
			fmt.Fprintf(&body, "        send(%s, %s);\n", m.PktVar, s.iface)
		}
	}
	for _, s := range commits.stmts {
		fmt.Fprintf(&body, "        %s\n", s)
	}
	body.WriteString("        return;\n")

	return fmt.Sprintf("    if %s {\n%s    }\n", cond, body.String()), nil
}

type updateCode struct {
	pre  []string // temporary computations (read pre-state)
	post []string // commits (write state)
}

// updateStmts lowers one state transition. Scalar updates become a temp +
// assignment; map store/del chains are unwound from the base outward.
func (c *compiler) updateStmts(u Assign) (updateCode, error) {
	base := u.Name
	// Unwind the store/del chain down to the base MapVar.
	var ops []solver.Term
	t := u.Val
	for {
		switch x := t.(type) {
		case solver.Store:
			ops = append(ops, x)
			t = x.M
			continue
		case solver.Del:
			ops = append(ops, x)
			t = x.M
			continue
		}
		break
	}
	if mv, ok := t.(solver.MapVar); ok && strings.TrimSuffix(mv.Name, "@0") == base && len(ops) > 0 {
		var out updateCode
		// ops are outermost-first; apply innermost-first.
		for i := len(ops) - 1; i >= 0; i-- {
			switch op := ops[i].(type) {
			case solver.Store:
				kExpr, err := c.termExpr(op.K)
				if err != nil {
					return updateCode{}, err
				}
				vExpr, err := c.termExpr(op.V)
				if err != nil {
					return updateCode{}, err
				}
				kt, vt := c.fresh(), c.fresh()
				out.pre = append(out.pre,
					fmt.Sprintf("%s = %s;", kt, kExpr),
					fmt.Sprintf("%s = %s;", vt, vExpr))
				out.post = append(out.post, fmt.Sprintf("%s[%s] = %s;", base, kt, vt))
			case solver.Del:
				kExpr, err := c.termExpr(op.K)
				if err != nil {
					return updateCode{}, err
				}
				kt := c.fresh()
				out.pre = append(out.pre, fmt.Sprintf("%s = %s;", kt, kExpr))
				out.post = append(out.post, fmt.Sprintf("del(%s, %s);", base, kt))
			}
		}
		return out, nil
	}
	// Scalar (or whole-map) update.
	expr, err := c.termExpr(u.Val)
	if err != nil {
		return updateCode{}, err
	}
	tmp := c.fresh()
	return updateCode{
		pre:  []string{fmt.Sprintf("%s = %s;", tmp, expr)},
		post: []string{fmt.Sprintf("%s = %s;", base, tmp)},
	}, nil
}

// termExpr lowers a term to NFLang source.
func (c *compiler) termExpr(t solver.Term) (string, error) {
	switch x := t.(type) {
	case solver.Const:
		return valueLiteral(x.V)
	case solver.Var:
		if f, ok := strings.CutPrefix(x.Name, "pkt."); ok {
			return "pkt." + f, nil
		}
		return strings.TrimSuffix(x.Name, "@0"), nil
	case solver.NamedConst:
		return x.Name, nil
	case solver.MapVar:
		return strings.TrimSuffix(x.Name, "@0"), nil
	case solver.Bin:
		l, err := c.termExpr(x.X)
		if err != nil {
			return "", err
		}
		r, err := c.termExpr(x.Y)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op, r), nil
	case solver.Un:
		s, err := c.termExpr(x.X)
		if err != nil {
			return "", err
		}
		return x.Op + "(" + s + ")", nil
	case solver.Call:
		switch x.Fn {
		case "hash", "len":
			a, err := c.termExpr(x.Args[0])
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s(%s)", x.Fn, a), nil
		case "contains":
			// contains(pkt.flags, F) lowers back to tcp_flag(pkt, F);
			// every other string-containment term becomes str_contains.
			if v, ok := x.Args[0].(solver.Var); ok && v.Name == "pkt.flags" {
				fl, err := c.termExpr(x.Args[1])
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("tcp_flag(pkt, %s)", fl), nil
			}
			a, err := c.termExpr(x.Args[0])
			if err != nil {
				return "", err
			}
			b, err := c.termExpr(x.Args[1])
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("str_contains(%s, %s)", a, b), nil
		default:
			return "", fmt.Errorf("cannot lower call %q", x.Fn)
		}
	case solver.Tuple:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			s, err := c.termExpr(e)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "(" + strings.Join(parts, ", ") + ")", nil
	case solver.Index:
		b, err := c.termExpr(x.X)
		if err != nil {
			return "", err
		}
		i, err := c.termExpr(x.I)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", maybeParen(b), i), nil
	case solver.Select:
		m, err := c.termExpr(x.M)
		if err != nil {
			return "", err
		}
		k, err := c.termExpr(x.K)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", maybeParen(m), k), nil
	case solver.In:
		k, err := c.termExpr(x.K)
		if err != nil {
			return "", err
		}
		m, err := c.termExpr(x.M)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s in %s)", k, m), nil
	case solver.Store, solver.Del:
		return "", fmt.Errorf("store/del term in expression position")
	default:
		return "", fmt.Errorf("cannot lower term %T", t)
	}
}

func maybeParen(s string) string {
	if strings.ContainsAny(s, " ") && !strings.HasPrefix(s, "(") {
		return "(" + s + ")"
	}
	return s
}

// valueLiteral renders a concrete value as NFLang literal source.
func valueLiteral(v value.Value) (string, error) {
	switch v.Kind {
	case value.KindInt, value.KindStr, value.KindBool, value.KindTuple:
		return v.String(), nil
	case value.KindList:
		parts := make([]string, len(v.List.Elems))
		for i, e := range v.List.Elems {
			s, err := valueLiteral(e)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return "[" + strings.Join(parts, ", ") + "]", nil
	case value.KindMap:
		keys := v.Map.Keys()
		parts := make([]string, len(keys))
		for i, k := range keys {
			kv, _, _ := v.Map.Get(k)
			ks, err := valueLiteral(k)
			if err != nil {
				return "", err
			}
			vs, err := valueLiteral(kv)
			if err != nil {
				return "", err
			}
			parts[i] = ks + ": " + vs
		}
		return "{" + strings.Join(parts, ", ") + "}", nil
	case value.KindNil:
		return "nil", nil
	default:
		return "", fmt.Errorf("no literal syntax for %s", v.Kind)
	}
}
