package model

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// FSM is the per-connection finite state machine induced by a model's
// transitions over one map-valued state variable — the paper's §2.4
// observation that "the state transition logic can be used to build a
// finite state machine, which is proposed and used in network testing
// solutions [BUZZ]".
//
// States are the concrete values the model stores into the map (plus the
// implicit initial "absent" state); a transition exists for every entry
// that moves a key from one state to another, labeled by the entry's
// packet-match condition.
type FSM struct {
	Var    string // the state map variable, e.g. "tcp_state"
	States []string
	Trans  []Transition
}

// Transition is one edge of the FSM.
type Transition struct {
	From  string // state name; "∅" is the initial absent state
	To    string
	Entry int // index of the model entry inducing the edge
	Label string
}

// StateAbsent names the implicit initial state (key not in the map).
const StateAbsent = "∅"

// ExtractFSM builds the FSM of the given map state variable. Entries
// whose guards/updates do not involve the variable are ignored.
func ExtractFSM(m *Model, stateVar string) (*FSM, error) {
	isVar := func(name string) bool { return strings.TrimSuffix(name, "@0") == stateVar }
	fsm := &FSM{Var: stateVar}
	states := map[string]bool{StateAbsent: true}

	for i := range m.Entries {
		e := &m.Entries[i]

		// Determine the from-state this entry requires.
		from := ""
		for _, c := range e.StateMatch {
			if f, ok := fromState(c, isVar); ok {
				if from != "" && from != f {
					from = "" // contradictory info; treat as unknown
					break
				}
				from = f
			}
		}

		// Determine the to-state this entry stores.
		to := ""
		for _, u := range e.Updates {
			if !isVar(u.Name) {
				continue
			}
			if s, ok := storedState(u.Val); ok {
				to = s
			}
		}
		if from == "" && to == "" {
			continue
		}
		if from == "" {
			from = "*" // any state
		}
		if to == "" {
			to = from // self-loop: state observed but unchanged
		}
		states[from] = true
		states[to] = true
		label := joinConds(e.FlowMatch)
		if label == "" {
			label = "*"
		}
		fsm.Trans = append(fsm.Trans, Transition{From: from, To: to, Entry: i, Label: label})
	}
	if len(fsm.Trans) == 0 {
		return nil, fmt.Errorf("model: no transitions over %q", stateVar)
	}
	for s := range states {
		fsm.States = append(fsm.States, s)
	}
	sort.Strings(fsm.States)
	return fsm, nil
}

// fromState recognizes the two state-observation shapes the executor
// produces: `!(k in M@0)` (the absent state) and `M@0[k] == "NAME"`.
func fromState(c solver.Term, isVar func(string) bool) (string, bool) {
	switch x := c.(type) {
	case solver.Un:
		if x.Op == "!" {
			if in, ok := x.X.(solver.In); ok && mapIs(in.M, isVar) {
				return StateAbsent, true
			}
		}
	case solver.Bin:
		if x.Op == "==" {
			if sel, ok := x.X.(solver.Select); ok && mapIs(sel.M, isVar) {
				if c, ok := x.Y.(solver.Const); ok && c.V.Kind == value.KindStr {
					return c.V.S, true
				}
			}
		}
	}
	return "", false
}

// storedState recognizes Store(..., k, Const "NAME") chains.
func storedState(t solver.Term) (string, bool) {
	for {
		st, ok := t.(solver.Store)
		if !ok {
			return "", false
		}
		if c, ok := st.V.(solver.Const); ok && c.V.Kind == value.KindStr {
			return c.V.S, true
		}
		t = st.M
	}
}

func mapIs(t solver.Term, isVar func(string) bool) bool {
	mv, ok := t.(solver.MapVar)
	return ok && isVar(mv.Name)
}

// RenderFSM prints the FSM as a transition table.
func RenderFSM(f *FSM) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FSM over %s — states: %s\n", f.Var, strings.Join(f.States, ", "))
	for _, t := range f.Trans {
		fmt.Fprintf(&sb, "  %-12s --[%s]--> %s (entry %d)\n", t.From, t.Label, t.To, t.Entry)
	}
	return sb.String()
}

// Dot renders the FSM in Graphviz dot syntax.
func (f *FSM) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph fsm {\n  rankdir=LR;\n")
	for _, s := range f.States {
		fmt.Fprintf(&sb, "  %q;\n", s)
	}
	for _, t := range f.Trans {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", t.From, t.To, t.Label)
	}
	sb.WriteString("}\n")
	return sb.String()
}
