package model

import (
	"strings"
	"testing"

	"nfactor/internal/solver"
	"nfactor/internal/symexec"
	"nfactor/internal/value"
)

// fsmModel hand-builds a 3-state connection tracker model.
func fsmModel() *Model {
	tcp := solver.MapVar{Name: "conn@0"}
	key := solver.Tuple{Elems: []solver.Term{solver.Var{Name: "pkt.sip"}, solver.Var{Name: "pkt.sport"}}}
	inConn := solver.In{K: key, M: tcp}
	sel := solver.Select{M: tcp, K: key}
	isSyn := solver.Call{Fn: "contains", Args: []solver.Term{solver.Var{Name: "pkt.flags"}, solver.Const{V: value.Str("S")}}}

	mk := func(v string) solver.Term { return solver.Const{V: value.Str(v)} }
	return &Model{
		NFName: "tracker", PktVar: "pkt", OISVars: []string{"conn"},
		Entries: []Entry{
			{ // new connection on SYN
				FlowMatch:  []solver.Term{isSyn},
				StateMatch: []solver.Term{solver.Not(inConn)},
				Updates: []Assign{{Name: "conn",
					Val: solver.Store{M: tcp, K: key, V: mk("HALF")}}},
			},
			{ // handshake completes
				StateMatch: []solver.Term{inConn, solver.Bin{Op: "==", X: sel, Y: mk("HALF")}},
				Updates: []Assign{{Name: "conn",
					Val: solver.Store{M: tcp, K: key, V: mk("OPEN")}}},
			},
			{ // established traffic observed, state unchanged
				StateMatch: []solver.Term{inConn, solver.Bin{Op: "==", X: sel, Y: mk("OPEN")}},
				Sends:      []Action{{Fields: map[string]solver.Term{}, Iface: mk("")}},
			},
		},
	}
}

func TestExtractFSMStatesAndEdges(t *testing.T) {
	fsm, err := ExtractFSM(fsmModel(), "conn")
	if err != nil {
		t.Fatal(err)
	}
	wantStates := map[string]bool{StateAbsent: true, "HALF": true, "OPEN": true}
	for _, s := range fsm.States {
		if !wantStates[s] {
			t.Errorf("unexpected state %q", s)
		}
		delete(wantStates, s)
	}
	if len(wantStates) != 0 {
		t.Errorf("missing states: %v", wantStates)
	}
	type edge struct{ from, to string }
	want := map[edge]bool{
		{StateAbsent, "HALF"}: true,
		{"HALF", "OPEN"}:      true,
		{"OPEN", "OPEN"}:      true, // self-loop: observed, unchanged
	}
	for _, tr := range fsm.Trans {
		delete(want, edge{tr.From, tr.To})
	}
	if len(want) != 0 {
		t.Errorf("missing edges %v:\n%s", want, RenderFSM(fsm))
	}
}

func TestExtractFSMLabels(t *testing.T) {
	fsm, err := ExtractFSM(fsmModel(), "conn")
	if err != nil {
		t.Fatal(err)
	}
	var synEdge *Transition
	for i := range fsm.Trans {
		if fsm.Trans[i].From == StateAbsent {
			synEdge = &fsm.Trans[i]
		}
	}
	if synEdge == nil || !strings.Contains(synEdge.Label, "contains") {
		t.Errorf("SYN edge label = %+v", synEdge)
	}
}

func TestExtractFSMNoTransitions(t *testing.T) {
	m := &Model{Entries: []Entry{{}}}
	if _, err := ExtractFSM(m, "whatever"); err == nil {
		t.Error("no-transition FSM did not error")
	}
}

func TestFSMDotWellFormed(t *testing.T) {
	fsm, err := ExtractFSM(fsmModel(), "conn")
	if err != nil {
		t.Fatal(err)
	}
	dot := fsm.Dot()
	if !strings.HasPrefix(dot, "digraph fsm {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("dot not well formed:\n%s", dot)
	}
	if strings.Count(dot, "->") != len(fsm.Trans) {
		t.Errorf("dot edge count mismatch:\n%s", dot)
	}
}

func TestCompareReportString(t *testing.T) {
	r := &CompareReport{Matched: [][2]int{{0, 0}}, OnlyA: []int{1}}
	s := r.String()
	if !strings.Contains(s, "matched=1") || !strings.Contains(s, "[1]") {
		t.Errorf("report string = %q", s)
	}
}

func TestCompileAllCorpusShapes(t *testing.T) {
	// Compile a model exercising every term lowering: named config,
	// arithmetic, hash, tuples, select, store chains, del, tcp_flag.
	m0 := solver.MapVar{Name: "m@0"}
	key := solver.Var{Name: "pkt.sport"}
	entry := Entry{
		FlowMatch: []solver.Term{
			solver.Call{Fn: "contains", Args: []solver.Term{solver.Var{Name: "pkt.flags"}, solver.Const{V: value.Str("S")}}},
			solver.Bin{Op: ">", X: solver.Var{Name: "pkt.ttl"}, Y: solver.Const{V: value.Int(0)}},
		},
		StateMatch: []solver.Term{solver.In{K: key, M: m0}},
		Sends: []Action{{
			Fields: map[string]solver.Term{
				"dport": solver.Bin{Op: "%", X: solver.Call{Fn: "hash", Args: []solver.Term{solver.Var{Name: "pkt.sip"}}}, Y: solver.Const{V: value.Int(4)}},
				"dip":   solver.Index{X: solver.NamedConst{Name: "servers", V: value.NewList(value.TupleOf(value.Str("1.1.1.1"), value.Int(80)))}, I: solver.Const{V: value.Int(0)}},
			},
			Iface: solver.Const{V: value.Str("out")},
		}},
		Updates: []Assign{{
			Name: "m",
			Val:  solver.Del{M: solver.Store{M: m0, K: key, V: solver.Const{V: value.Int(1)}}, K: solver.Var{Name: "pkt.dport"}},
		}},
	}
	m := &Model{
		NFName: "shapes", PktVar: "pkt",
		CfgVars: []string{"servers"}, OISVars: []string{"m"},
		Entries: []Entry{entry},
	}
	servers := value.NewList(value.TupleOf(value.Str("1.1.1.1"), value.Int(80)))
	prog, err := Compile(m,
		map[string]value.Value{"servers": servers},
		map[string]value.Value{"m": value.NewMap()})
	if err != nil {
		t.Fatal(err)
	}
	src := lang_Print(prog)
	for _, want := range []string{"tcp_flag(pkt", "hash(pkt.sip)", "del(m", "m[", "servers"} {
		if !strings.Contains(src, want) {
			t.Errorf("compiled source missing %q:\n%s", want, src)
		}
	}
}

func TestCompileRejectsUnloweralbleTerms(t *testing.T) {
	m := &Model{
		PktVar: "pkt",
		Entries: []Entry{{
			FlowMatch: []solver.Term{solver.Call{Fn: "mystery", Args: nil}},
		}},
	}
	if _, err := Compile(m, nil, nil); err == nil {
		t.Error("unlowerable call did not error")
	}
	// contains() over something other than pkt.flags lowers to the
	// generic str_contains builtin.
	m2 := &Model{
		PktVar: "pkt",
		Entries: []Entry{{
			FlowMatch: []solver.Term{solver.Call{Fn: "contains", Args: []solver.Term{solver.Var{Name: "pkt.payload"}, solver.Const{V: value.Str("S")}}}},
			Sends:     []Action{{Fields: map[string]solver.Term{}, Iface: solver.Const{V: value.Str("")}}},
		}},
	}
	prog2, err := Compile(m2, nil, nil)
	if err != nil {
		t.Fatalf("generic contains did not lower: %v", err)
	}
	if !strings.Contains(lang_Print(prog2), "str_contains(pkt.payload") {
		t.Errorf("lowered source missing str_contains:\n%s", lang_Print(prog2))
	}
}

func TestBuildFromSymexecPathPreservesOrder(t *testing.T) {
	paths := []*symexec.Path{
		{Conds: []solver.Term{solver.Var{Name: "a"}}},
		{Conds: []solver.Term{solver.Un{Op: "!", X: solver.Var{Name: "a"}}}},
	}
	m := Build(paths, BuildOptions{})
	if m.Entries[0].Priority != 0 || m.Entries[1].Priority != 1 {
		t.Errorf("priorities = %d, %d", m.Entries[0].Priority, m.Entries[1].Priority)
	}
}

func TestElideImpliedLiterals(t *testing.T) {
	x := solver.Var{Name: "pkt.dport"}
	g := []solver.Term{
		solver.Bin{Op: "==", X: x, Y: solver.Const{V: value.Int(80)}},
		solver.Bin{Op: "!=", X: x, Y: solver.Const{V: value.Int(23)}}, // implied by == 80
	}
	m := &Model{Entries: []Entry{{FlowMatch: g}}}
	min := Minimize(m)
	guard := min.Entries[0].Guard()
	if len(guard) != 1 {
		t.Fatalf("guard = %v, want the implied literal elided", guard)
	}
	if guard[0].String() != "(pkt.dport == 80)" {
		t.Errorf("kept literal = %s", guard[0])
	}
}

func TestMinimizeKeepsDistinctActions(t *testing.T) {
	cond := solver.Bin{Op: ">", X: solver.Var{Name: "pkt.ttl"}, Y: solver.Const{V: value.Int(5)}}
	send := []Action{{Fields: map[string]solver.Term{}, Iface: solver.Const{V: value.Str("a")}}}
	m := &Model{Entries: []Entry{
		{FlowMatch: []solver.Term{cond}, Sends: send},
		{FlowMatch: []solver.Term{solver.Not(cond)}}, // drop: different action
	}}
	min := Minimize(m)
	if len(min.Entries) != 2 {
		t.Errorf("entries with distinct actions merged: %d", len(min.Entries))
	}
}

func TestMinimizeDedupsRepeatedLiterals(t *testing.T) {
	cond := solver.Bin{Op: "==", X: solver.Var{Name: "pkt.proto"}, Y: solver.Const{V: value.Str("tcp")}}
	m := &Model{Entries: []Entry{{FlowMatch: []solver.Term{cond, cond, cond}}}}
	min := Minimize(m)
	if got := len(min.Entries[0].Guard()); got != 1 {
		t.Errorf("deduped guard has %d literals", got)
	}
}
