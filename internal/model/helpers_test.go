package model

import (
	"nfactor/internal/interp"
	"nfactor/internal/lang"
)

// test helpers bridging to sibling packages without polluting the main
// files' import graph.

func lang_Print(p *lang.Program) string { return lang.Print(p) }

func newInterp(p *lang.Program) (*interp.Interp, error) {
	return interp.New(p, "process", interp.Options{})
}
