package model

import (
	"fmt"
	"strings"

	"nfactor/internal/interp"
	"nfactor/internal/netpkt"
	"nfactor/internal/solver"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// Instance is a running model: the synthesized tables plus concrete
// configuration and mutable state. It processes packets with the same
// observable behaviour as the original NF program — the property the §5
// accuracy experiment checks.
type Instance struct {
	m      *Model
	config map[string]value.Value
	state  map[string]value.Value
	tel    *telemetry.Sink
}

// NewInstance creates a model instance. config provides concrete values
// for the model's configuration variables; initState the initial values
// of its state variables (both typically taken from the original
// program's global initializers).
func NewInstance(m *Model, config, initState map[string]value.Value) (*Instance, error) {
	for _, v := range m.CfgVars {
		if _, ok := config[v]; !ok {
			return nil, fmt.Errorf("model: missing configuration value for %q", v)
		}
	}
	for _, v := range m.OISVars {
		if _, ok := initState[v]; !ok {
			return nil, fmt.Errorf("model: missing initial state for %q", v)
		}
	}
	st := make(map[string]value.Value, len(initState))
	for k, v := range initState {
		st[k] = v.Clone()
	}
	cf := make(map[string]value.Value, len(config))
	for k, v := range config {
		cf[k] = v.Clone()
	}
	return &Instance{m: m, config: cf, state: st, tel: telemetry.NewSink(len(m.Entries))}, nil
}

// State returns the instance's current state variable values.
func (ins *Instance) State() map[string]value.Value { return ins.state }

// Sink returns the instance's telemetry sink.
func (ins *Instance) Sink() *telemetry.Sink { return ins.tel }

// Telemetry snapshots the instance's counters, gauging every state
// variable's current size (map entry counts; scalars gauge as 1).
func (ins *Instance) Telemetry() telemetry.Snapshot {
	sizes := make(map[string]int, len(ins.state))
	for name, v := range ins.state {
		if v.Kind == value.KindMap {
			sizes[name] = v.Map.Len()
		} else {
			sizes[name] = 1
		}
	}
	return ins.tel.Snapshot("model", sizes)
}

// env resolves term variables for one packet: pkt.* from the packet
// fields, name@0 from the current state, bare names from configuration.
type env struct {
	ins *Instance
	pkt value.Value
}

// Lookup implements solver.Env.
func (e env) Lookup(name string) (value.Value, bool) {
	if f, ok := strings.CutPrefix(name, "pkt."); ok {
		v, ok := e.pkt.Pkt.Fields[f]
		return v, ok
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.ins.state[base]
		return v, ok
	}
	v, ok := e.ins.config[name]
	return v, ok
}

// Process runs one packet through the model: the first entry whose guard
// holds fires; its sends are emitted and its state transitions committed.
// No matching entry means the implicit drop (§3.2 "Drop Action").
func (ins *Instance) Process(pkt value.Value) (*interp.Output, error) {
	out, _, err := ins.ProcessTraced(pkt)
	return out, err
}

// ProcessTraced is Process, additionally reporting the index of the entry
// that fired (-1 for the implicit default drop). Model-guided test
// generation (internal/buzz) uses it to measure entry coverage.
func (ins *Instance) ProcessTraced(pkt value.Value) (*interp.Output, int, error) {
	return ins.process(pkt, nil)
}

// ProcessExplain is Process in provenance mode: the returned PacketTrace
// records every guard evaluated with its outcome, the entry that fired,
// the packets sent and the state transitions applied.
func (ins *Instance) ProcessExplain(pkt value.Value) (*interp.Output, *telemetry.PacketTrace, error) {
	tr := &telemetry.PacketTrace{Packet: pktString(pkt), Backend: "model", Entry: -1}
	out, entry, err := ins.process(pkt, tr)
	if err != nil {
		tr.Err = err.Error()
		return nil, tr, err
	}
	tr.Entry = entry
	tr.Dropped = out.Dropped
	for _, s := range out.Sent {
		str := pktString(s.Pkt)
		if s.Iface != "" {
			str += " via " + s.Iface
		}
		tr.Sent = append(tr.Sent, str)
	}
	return out, tr, nil
}

// pktString renders a packet value through the wire lens when it
// converts (matching the compiled engine's trace rendering), falling
// back to the boxed form.
func pktString(pkt value.Value) string {
	if p, err := netpkt.FromValue(pkt); err == nil {
		return p.String()
	}
	return pkt.String()
}

func (ins *Instance) process(pkt value.Value, tr *telemetry.PacketTrace) (*interp.Output, int, error) {
	if pkt.Kind != value.KindPacket {
		return nil, -1, fmt.Errorf("model: Process wants a packet, got %s", pkt.Kind)
	}
	t0 := ins.tel.Start()
	out, entry, err := ins.match(pkt, tr)
	dropped := err == nil && out.Dropped
	ins.tel.Count(t0, entry, dropped, err != nil)
	return out, entry, err
}

func (ins *Instance) match(pkt value.Value, tr *telemetry.PacketTrace) (*interp.Output, int, error) {
	ev := env{ins: ins, pkt: pkt}
	out := &interp.Output{}
	for i := range ins.m.Entries {
		e := &ins.m.Entries[i]
		ok, err := ins.matches(i, e, ev, tr)
		if err != nil {
			return nil, -1, fmt.Errorf("model: entry %d guard: %w", i, err)
		}
		if !ok {
			continue
		}
		// Evaluate every action term against the PRE-state, then commit.
		var sent []interp.SentPacket
		for _, a := range e.Sends {
			p := pkt.Clone()
			for _, f := range a.FieldNames() {
				v, err := solver.Eval(a.Fields[f], ev)
				if err != nil {
					return nil, -1, fmt.Errorf("model: entry %d field %s: %w", i, f, err)
				}
				p.Pkt.Fields[f] = v
			}
			ifaceV, err := solver.Eval(a.Iface, ev)
			if err != nil {
				return nil, -1, fmt.Errorf("model: entry %d iface: %w", i, err)
			}
			iface := ""
			if ifaceV.Kind == value.KindStr {
				iface = ifaceV.S
			}
			sent = append(sent, interp.SentPacket{Pkt: p, Iface: iface})
		}
		newState := map[string]value.Value{}
		for _, u := range e.Updates {
			v, err := solver.Eval(u.Val, ev)
			if err != nil {
				return nil, -1, fmt.Errorf("model: entry %d update %s: %w", i, u.Name, err)
			}
			newState[u.Name] = v
		}
		for k, v := range newState {
			ins.state[k] = v
			if tr != nil {
				tr.Changes = append(tr.Changes, stateChange(k, e, v))
			}
		}
		out.Sent = sent
		out.Dropped = len(sent) == 0
		return out, i, nil
	}
	out.Dropped = true
	return out, -1, nil
}

// stateChange renders one committed update for the explain trace.
// Scalars show the concrete new value; maps show the update *term* (the
// store/del chain) — the concrete map can hold thousands of entries
// while the term shows exactly the keys this packet touched.
func stateChange(name string, e *Entry, v value.Value) telemetry.StateChange {
	if v.Kind != value.KindMap {
		return telemetry.StateChange{Var: name, Op: "assign", Val: v.String()}
	}
	for _, u := range e.Updates {
		if u.Name == name {
			return telemetry.StateChange{Var: name, Op: "assign", Val: u.Val.String()}
		}
	}
	return telemetry.StateChange{Var: name, Op: "assign", Val: fmt.Sprintf("map(%d entries)", v.Map.Len())}
}

func (ins *Instance) matches(idx int, e *Entry, ev env, tr *telemetry.PacketTrace) (bool, error) {
	for _, c := range e.Guard() {
		ok, err := solver.EvalBool(c, ev)
		if tr != nil {
			outcome := "true"
			switch {
			case err != nil:
				outcome = "error: " + err.Error()
			case !ok:
				outcome = "false"
			}
			tr.Guards = append(tr.Guards, telemetry.GuardEval{Entry: idx, Guard: c.String(), Outcome: outcome})
		}
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
