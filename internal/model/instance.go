package model

import (
	"fmt"
	"strings"

	"nfactor/internal/interp"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// Instance is a running model: the synthesized tables plus concrete
// configuration and mutable state. It processes packets with the same
// observable behaviour as the original NF program — the property the §5
// accuracy experiment checks.
type Instance struct {
	m      *Model
	config map[string]value.Value
	state  map[string]value.Value
}

// NewInstance creates a model instance. config provides concrete values
// for the model's configuration variables; initState the initial values
// of its state variables (both typically taken from the original
// program's global initializers).
func NewInstance(m *Model, config, initState map[string]value.Value) (*Instance, error) {
	for _, v := range m.CfgVars {
		if _, ok := config[v]; !ok {
			return nil, fmt.Errorf("model: missing configuration value for %q", v)
		}
	}
	for _, v := range m.OISVars {
		if _, ok := initState[v]; !ok {
			return nil, fmt.Errorf("model: missing initial state for %q", v)
		}
	}
	st := make(map[string]value.Value, len(initState))
	for k, v := range initState {
		st[k] = v.Clone()
	}
	cf := make(map[string]value.Value, len(config))
	for k, v := range config {
		cf[k] = v.Clone()
	}
	return &Instance{m: m, config: cf, state: st}, nil
}

// State returns the instance's current state variable values.
func (ins *Instance) State() map[string]value.Value { return ins.state }

// env resolves term variables for one packet: pkt.* from the packet
// fields, name@0 from the current state, bare names from configuration.
type env struct {
	ins *Instance
	pkt value.Value
}

// Lookup implements solver.Env.
func (e env) Lookup(name string) (value.Value, bool) {
	if f, ok := strings.CutPrefix(name, "pkt."); ok {
		v, ok := e.pkt.Pkt.Fields[f]
		return v, ok
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.ins.state[base]
		return v, ok
	}
	v, ok := e.ins.config[name]
	return v, ok
}

// Process runs one packet through the model: the first entry whose guard
// holds fires; its sends are emitted and its state transitions committed.
// No matching entry means the implicit drop (§3.2 "Drop Action").
func (ins *Instance) Process(pkt value.Value) (*interp.Output, error) {
	out, _, err := ins.ProcessTraced(pkt)
	return out, err
}

// ProcessTraced is Process, additionally reporting the index of the entry
// that fired (-1 for the implicit default drop). Model-guided test
// generation (internal/buzz) uses it to measure entry coverage.
func (ins *Instance) ProcessTraced(pkt value.Value) (*interp.Output, int, error) {
	if pkt.Kind != value.KindPacket {
		return nil, -1, fmt.Errorf("model: Process wants a packet, got %s", pkt.Kind)
	}
	ev := env{ins: ins, pkt: pkt}
	out := &interp.Output{}
	for i := range ins.m.Entries {
		e := &ins.m.Entries[i]
		ok, err := ins.matches(e, ev)
		if err != nil {
			return nil, -1, fmt.Errorf("model: entry %d guard: %w", i, err)
		}
		if !ok {
			continue
		}
		// Evaluate every action term against the PRE-state, then commit.
		var sent []interp.SentPacket
		for _, a := range e.Sends {
			p := pkt.Clone()
			for _, f := range a.FieldNames() {
				v, err := solver.Eval(a.Fields[f], ev)
				if err != nil {
					return nil, -1, fmt.Errorf("model: entry %d field %s: %w", i, f, err)
				}
				p.Pkt.Fields[f] = v
			}
			ifaceV, err := solver.Eval(a.Iface, ev)
			if err != nil {
				return nil, -1, fmt.Errorf("model: entry %d iface: %w", i, err)
			}
			iface := ""
			if ifaceV.Kind == value.KindStr {
				iface = ifaceV.S
			}
			sent = append(sent, interp.SentPacket{Pkt: p, Iface: iface})
		}
		newState := map[string]value.Value{}
		for _, u := range e.Updates {
			v, err := solver.Eval(u.Val, ev)
			if err != nil {
				return nil, -1, fmt.Errorf("model: entry %d update %s: %w", i, u.Name, err)
			}
			newState[u.Name] = v
		}
		for k, v := range newState {
			ins.state[k] = v
		}
		out.Sent = sent
		out.Dropped = len(sent) == 0
		return out, i, nil
	}
	out.Dropped = true
	return out, -1, nil
}

func (ins *Instance) matches(e *Entry, ev env) (bool, error) {
	for _, c := range e.Guard() {
		ok, err := solver.EvalBool(c, ev)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
