package model

import (
	"sort"

	"nfactor/internal/solver"
)

// Minimize compresses the model's tables without changing behaviour:
//
//   - duplicate literals inside a guard are dropped,
//   - two entries with identical actions whose guards differ in exactly
//     one complementary literal pair (a vs ¬a) merge into one entry
//     without that literal (the Quine-McCluskey adjacency step),
//   - literals implied by the remaining guard are elided.
//
// Path enumeration produces one entry per execution path, so NFs that
// take the same action on many paths (an IDS that alerts — a log-only
// action — and forwards either way) synthesize larger tables than
// necessary; minimization folds them back. The result still partitions
// the input space: merging complementary regions with equal actions is
// semantics-preserving by construction.
func Minimize(m *Model) *Model {
	out := &Model{
		NFName:  m.NFName,
		PktVar:  m.PktVar,
		CfgVars: append([]string{}, m.CfgVars...),
		OISVars: append([]string{}, m.OISVars...),
	}
	type went struct {
		guard []solver.Term
		sig   string
		prio  int
		e     *Entry
	}
	var work []went
	for i := range m.Entries {
		e := &m.Entries[i]
		work = append(work, went{
			guard: dedupLiterals(e.Guard()),
			sig:   EntryActionSig(e),
			prio:  e.Priority,
			e:     e,
		})
	}

	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if work[i].sig != work[j].sig {
					continue
				}
				if g, ok := mergeAdjacent(work[i].guard, work[j].guard); ok {
					work[i].guard = g
					work = append(work[:j], work[j+1:]...)
					merged = true
					continue outer
				}
			}
		}
	}

	for _, w := range work {
		guard := elideImplied(w.guard)
		ne := Entry{Priority: w.prio}
		for _, c := range guard {
			switch classify(c) {
			case condState:
				ne.StateMatch = append(ne.StateMatch, c)
			case condFlow:
				ne.FlowMatch = append(ne.FlowMatch, c)
			default:
				ne.Config = append(ne.Config, c)
			}
		}
		for _, a := range w.e.Sends {
			fields := make(map[string]solver.Term, len(a.Fields))
			for k, v := range a.Fields {
				fields[k] = v
			}
			ne.Sends = append(ne.Sends, Action{Fields: fields, Iface: a.Iface})
		}
		ne.Updates = append(ne.Updates, w.e.Updates...)
		out.Entries = append(out.Entries, ne)
	}
	sort.SliceStable(out.Entries, func(a, b int) bool {
		return out.Entries[a].Priority < out.Entries[b].Priority
	})
	return out
}

func dedupLiterals(g []solver.Term) []solver.Term {
	seen := map[string]bool{}
	var out []solver.Term
	for _, c := range g {
		c = solver.Simplify(c)
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// mergeAdjacent merges two guards differing in exactly one complementary
// literal, returning the common remainder.
func mergeAdjacent(a, b []solver.Term) ([]solver.Term, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	bKeys := map[string]solver.Term{}
	for _, c := range b {
		bKeys[c.Key()] = c
	}
	var onlyA []solver.Term
	var common []solver.Term
	for _, c := range a {
		if _, ok := bKeys[c.Key()]; ok {
			common = append(common, c)
			delete(bKeys, c.Key())
		} else {
			onlyA = append(onlyA, c)
		}
	}
	if len(onlyA) != 1 || len(bKeys) != 1 {
		return nil, false
	}
	var onlyB solver.Term
	for _, c := range bKeys {
		onlyB = c
	}
	if solver.Simplify(solver.Not(onlyA[0])).Key() != onlyB.Key() {
		return nil, false
	}
	return common, true
}

// elideImplied removes literals entailed by the rest of the guard
// (e.g. `x != 23` alongside `x == 80`).
func elideImplied(g []solver.Term) []solver.Term {
	out := append([]solver.Term{}, g...)
	for i := 0; i < len(out); i++ {
		rest := make([]solver.Term, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		if len(rest) > 0 && solver.Implies(rest, out[i]) {
			out = rest
			i--
		}
	}
	return out
}
