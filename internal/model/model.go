// Package model defines NFactor's NF forwarding model (the paper's
// Figure 2a): an OpenFlow-like set of stateful match/action tables. Each
// entry matches on packet fields AND internal state, and its action both
// transforms/forwards the packet and transitions the state.
//
// The model is executable (Instance runs it on concrete traffic, which is
// how the §5 random differential testing compares it against the original
// program) and compilable back to NFLang (Compile), which is how path-set
// equivalence is re-checked with the symbolic executor.
package model

import (
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nfactor/internal/perf"
	"nfactor/internal/solver"
	"nfactor/internal/symexec"
	"nfactor/internal/trace"
)

// Action is one packet emission: the output packet's fields as terms over
// the symbolic inputs (pkt.* and state@0), plus the output interface.
type Action struct {
	Fields map[string]solver.Term
	Iface  solver.Term
}

// FieldNames returns the action's field names, sorted.
func (a Action) FieldNames() []string {
	out := make([]string, 0, len(a.Fields))
	for k := range a.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Assign is one state transition: Name's post-state value as a term over
// the pre-state and packet.
type Assign struct {
	Name string
	Val  solver.Term
}

// Entry is one table entry (one refined execution path, Algorithm 1 lines
// 11-16).
type Entry struct {
	// Config holds the conditions over configuration variables only —
	// the paper's table selector (table[config]).
	Config []solver.Term
	// FlowMatch holds the conditions over packet fields (and config).
	FlowMatch []solver.Term
	// StateMatch holds the conditions that involve the pre-state.
	StateMatch []solver.Term
	// Sends holds the packet actions; empty means the drop action.
	Sends []Action
	// Updates holds the state transitions.
	Updates []Assign
	// Priority orders entries (lower fires first). Entries synthesized
	// from symbolic execution are mutually exclusive, so priority only
	// breaks ties defensively.
	Priority int
	// PathID is the execution-tree coordinate of the path this entry was
	// refined from (symexec.PathID of its fork-decision sequence) — the
	// provenance link `nfactor -why` follows back into the trace.
	PathID string
}

// Guard returns the entry's full match conjunction.
func (e *Entry) Guard() []solver.Term {
	out := append([]solver.Term{}, e.Config...)
	out = append(out, e.FlowMatch...)
	out = append(out, e.StateMatch...)
	return out
}

// Dropped reports whether the entry's packet action is drop.
func (e *Entry) Dropped() bool { return len(e.Sends) == 0 }

// Model is a synthesized NF forwarding model.
type Model struct {
	NFName  string
	PktVar  string   // name of the packet parameter (usually "pkt")
	CfgVars []string // configuration variables (sorted)
	OISVars []string // output-impacting state variables (sorted)
	Entries []Entry  // priority order; implicit lowest-priority drop
}

// ConfigTable groups the entries that share a configuration condition —
// the per-configuration tables (c1, c2, …) of Figure 2a.
type ConfigTable struct {
	Config  []solver.Term
	Entries []*Entry
}

// Tables groups the model's entries by configuration condition, in first-
// appearance order.
func (m *Model) Tables() []ConfigTable {
	var out []ConfigTable
	index := map[string]int{}
	for i := range m.Entries {
		e := &m.Entries[i]
		key := condsKey(e.Config)
		if at, ok := index[key]; ok {
			out[at].Entries = append(out[at].Entries, e)
			continue
		}
		index[key] = len(out)
		out = append(out, ConfigTable{Config: e.Config, Entries: []*Entry{e}})
	}
	return out
}

func condsKey(conds []solver.Term) string {
	keys := make([]string, len(conds))
	for i, c := range conds {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// BuildOptions configure model synthesis from execution paths.
type BuildOptions struct {
	NFName string
	PktVar string
	// CfgVars/OISVars/LogVars come from the StateAlyzer categorization.
	CfgVars map[string]bool
	OISVars map[string]bool
	LogVars map[string]bool
	// Workers bounds the goroutines refining paths into entries
	// (0 = GOMAXPROCS). Entries land at their path's index, so the
	// result is identical at every worker count.
	Workers int
	// Perf, when set, counts the refined entries.
	Perf *perf.Set
	// Trace, when set, records one span per refined entry under
	// TraceParent (usually the pipeline's refine phase span).
	Trace       *trace.Tracer
	TraceParent int64
}

// Build refines symbolic execution paths into a model (Algorithm 1,
// lines 11-16): for each path, the condition conjunction is split into
// config / flow-match / state-match by the variables it mentions, the
// sends become packet actions, and the state updates (restricted to
// output-impacting variables — log variables are not part of the
// forwarding model) become state transitions.
func Build(paths []*symexec.Path, opts BuildOptions) *Model {
	m := &Model{
		NFName:  opts.NFName,
		PktVar:  opts.PktVar,
		CfgVars: sortedNames(opts.CfgVars),
		OISVars: sortedNames(opts.OISVars),
	}
	if m.PktVar == "" {
		m.PktVar = "pkt"
	}
	m.Entries = make([]Entry, len(paths))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	entries := opts.Perf.Counter(perf.CModelEntries)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				var sp *trace.Span
				if opts.Trace != nil {
					sp = opts.Trace.Start(trace.CatRefine, "entry "+strconv.Itoa(i), opts.TraceParent)
				}
				m.Entries[i] = refine(paths[i], i, opts)
				if sp != nil {
					e := &m.Entries[i]
					sp.SetStr("path", e.PathID)
					sp.SetInt("conds", int64(len(paths[i].Conds)))
					sp.SetInt("sends", int64(len(e.Sends)))
					sp.SetInt("updates", int64(len(e.Updates)))
					sp.End()
				}
				entries.Inc()
			}
		}()
	}
	wg.Wait()
	return m
}

// refine turns one execution path into the table entry at priority i
// (Algorithm 1 lines 11-16, for a single path).
func refine(p *symexec.Path, i int, opts BuildOptions) Entry {
	e := Entry{Priority: i, PathID: symexec.PathID(p.Seq)}
	for _, c := range p.Conds {
		switch classify(c) {
		case condState:
			e.StateMatch = append(e.StateMatch, c)
		case condFlow:
			e.FlowMatch = append(e.FlowMatch, c)
		default:
			e.Config = append(e.Config, c)
		}
	}
	for _, s := range p.Sends {
		fields := make(map[string]solver.Term, len(s.Fields))
		for k, v := range s.Fields {
			fields[k] = v
		}
		e.Sends = append(e.Sends, Action{Fields: fields, Iface: s.Iface})
	}
	for _, u := range p.Updates {
		if opts.LogVars[u.Name] {
			continue
		}
		e.Updates = append(e.Updates, Assign{Name: u.Name, Val: u.Val})
	}
	return e
}

type condClass int

const (
	condConfig condClass = iota
	condFlow
	condState
)

// classify buckets a condition literal: anything reading pre-state is a
// state match; otherwise anything reading the packet is a flow match;
// conditions over configuration only select the table.
func classify(c solver.Term) condClass {
	state, pkt := false, false
	for _, v := range solver.Vars(c) {
		if strings.HasSuffix(v, "@0") {
			state = true
		}
		if strings.HasPrefix(v, "pkt.") {
			pkt = true
		}
	}
	switch {
	case state:
		return condState
	case pkt:
		return condFlow
	default:
		return condConfig
	}
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
