package model

import (
	"strings"
	"testing"

	"nfactor/internal/solver"
	"nfactor/internal/symexec"
	"nfactor/internal/value"
)

func iv(i int64) solver.Term  { return solver.Const{V: value.Int(i)} }
func sv(s string) solver.Term { return solver.Const{V: value.Str(s)} }

// a tiny hand-built path set: a counter NF that forwards port-80 packets
// and counts them.
func toyPaths() []*symexec.Path {
	eq80 := solver.Bin{Op: "==", X: solver.Var{Name: "pkt.dport"}, Y: iv(80)}
	rrMode := solver.Bin{Op: "==", X: solver.Var{Name: "mode"}, Y: sv("RR")}
	inc := solver.Bin{Op: "+", X: solver.Var{Name: "count@0"}, Y: iv(1)}
	return []*symexec.Path{
		{
			Conds: []solver.Term{rrMode, eq80},
			Sends: []symexec.SendRec{{
				Fields: map[string]solver.Term{
					"dport": solver.Var{Name: "pkt.dport"},
					"ttl":   solver.Bin{Op: "-", X: solver.Var{Name: "pkt.ttl"}, Y: iv(1)},
				},
				Iface: sv("eth1"),
			}},
			Updates: []symexec.Update{
				{Name: "count", Val: inc},
				{Name: "log_seen", Val: inc},
			},
		},
		{
			Conds: []solver.Term{rrMode, solver.Not(eq80)},
		},
	}
}

func toyModel() *Model {
	return Build(toyPaths(), BuildOptions{
		NFName:  "toy",
		PktVar:  "pkt",
		CfgVars: map[string]bool{"mode": true},
		OISVars: map[string]bool{"count": true},
		LogVars: map[string]bool{"log_seen": true},
	})
}

func TestBuildClassification(t *testing.T) {
	m := toyModel()
	if len(m.Entries) != 2 {
		t.Fatalf("entries = %d", len(m.Entries))
	}
	e := m.Entries[0]
	if len(e.Config) != 1 || !strings.Contains(e.Config[0].String(), "mode") {
		t.Errorf("config = %v", e.Config)
	}
	if len(e.FlowMatch) != 1 || !strings.Contains(e.FlowMatch[0].String(), "pkt.dport") {
		t.Errorf("flow match = %v", e.FlowMatch)
	}
	if len(e.StateMatch) != 0 {
		t.Errorf("state match = %v", e.StateMatch)
	}
	// Log update filtered, state update kept.
	if len(e.Updates) != 1 || e.Updates[0].Name != "count" {
		t.Errorf("updates = %v", e.Updates)
	}
	if m.Entries[1].Dropped() != true {
		t.Error("second entry should be a drop")
	}
}

func TestStateMatchClassification(t *testing.T) {
	p := &symexec.Path{
		Conds: []solver.Term{
			solver.In{K: solver.Var{Name: "pkt.sip"}, M: solver.MapVar{Name: "seen@0"}},
		},
	}
	m := Build([]*symexec.Path{p}, BuildOptions{OISVars: map[string]bool{"seen": true}})
	if len(m.Entries[0].StateMatch) != 1 {
		t.Errorf("membership condition not classified as state match: %+v", m.Entries[0])
	}
}

func TestTablesGroupByConfig(t *testing.T) {
	m := toyModel()
	tables := m.Tables()
	if len(tables) != 1 {
		t.Fatalf("tables = %d, want 1 (both entries share mode==RR)", len(tables))
	}
	if len(tables[0].Entries) != 2 {
		t.Errorf("entries in table = %d", len(tables[0].Entries))
	}
}

func TestInstanceProcess(t *testing.T) {
	m := toyModel()
	inst, err := NewInstance(m,
		map[string]value.Value{"mode": value.Str("RR")},
		map[string]value.Value{"count": value.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	pkt := value.NewPacket(map[string]value.Value{
		"dport": value.Int(80), "ttl": value.Int(64),
	})
	out, err := inst.Process(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped || len(out.Sent) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out.Sent[0].Iface != "eth1" {
		t.Errorf("iface = %q", out.Sent[0].Iface)
	}
	if out.Sent[0].Pkt.Pkt.Fields["ttl"].I != 63 {
		t.Errorf("ttl = %v", out.Sent[0].Pkt.Pkt.Fields["ttl"])
	}
	if inst.State()["count"].I != 1 {
		t.Errorf("count = %v", inst.State()["count"])
	}
	// Non-matching packet: default drop, no state change.
	out, err = inst.Process(value.NewPacket(map[string]value.Value{
		"dport": value.Int(22), "ttl": value.Int(64),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Error("port-22 packet not dropped")
	}
	if inst.State()["count"].I != 1 {
		t.Error("drop changed state")
	}
}

func TestInstanceMissingConfig(t *testing.T) {
	m := toyModel()
	if _, err := NewInstance(m, nil, map[string]value.Value{"count": value.Int(0)}); err == nil {
		t.Error("missing config did not error")
	}
	if _, err := NewInstance(m, map[string]value.Value{"mode": value.Str("RR")}, nil); err == nil {
		t.Error("missing state did not error")
	}
}

func TestInstanceRejectsNonPacket(t *testing.T) {
	m := toyModel()
	inst, _ := NewInstance(m,
		map[string]value.Value{"mode": value.Str("RR")},
		map[string]value.Value{"count": value.Int(0)})
	if _, err := inst.Process(value.Int(1)); err == nil {
		t.Error("non-packet did not error")
	}
}

func TestCompileToyModel(t *testing.T) {
	m := toyModel()
	prog, err := Compile(m,
		map[string]value.Value{"mode": value.Str("RR")},
		map[string]value.Value{"count": value.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	src := lang_Print(prog)
	for _, want := range []string{"mode = \"RR\"", "count = 0", "send(pkt", "return;"} {
		if !strings.Contains(src, want) {
			t.Errorf("compiled source missing %q:\n%s", want, src)
		}
	}
}

func TestRenderToy(t *testing.T) {
	out := Render(toyModel())
	for _, want := range []string{
		"NFactor model for toy",
		"config: (mode == \"RR\")",
		"ttl := (pkt.ttl - 1)",
		"count := (count@0 + 1)",
		"drop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Identity field (dport := pkt.dport) must not clutter the action.
	if strings.Contains(out, "dport := pkt.dport") {
		t.Errorf("identity transform rendered:\n%s", out)
	}
}

func TestCompileMapUpdateOrdering(t *testing.T) {
	// An entry storing two keys whose values read the pre-state must
	// evaluate both before committing either.
	m0 := solver.MapVar{Name: "m@0"}
	sel := solver.Select{M: m0, K: sv("a")}
	p := &symexec.Path{
		Conds: []solver.Term{solver.In{K: sv("a"), M: m0}},
		Updates: []symexec.Update{{
			Name: "m",
			Val: solver.Store{
				M: solver.Store{M: m0, K: sv("a"), V: iv(99)},
				K: sv("b"),
				V: sel, // reads pre-state m@0["a"], NOT the stored 99
			},
		}},
	}
	m := Build([]*symexec.Path{p}, BuildOptions{OISVars: map[string]bool{"m": true}})
	init := value.NewMap()
	_ = init.Map.Set(value.Str("a"), value.Int(7))
	prog, err := Compile(m, nil, map[string]value.Value{"m": init})
	if err != nil {
		t.Fatal(err)
	}
	// Execute the compiled program and check m["b"] == 7 (the pre-state
	// value), not 99.
	in, err := newInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	pkt := value.NewPacket(nil)
	if _, err := in.Process(pkt); err != nil {
		t.Fatal(err)
	}
	got, _, _ := in.Globals()["m"].Map.Get(value.Str("b"))
	if got.I != 7 {
		t.Errorf("m[b] = %v, want 7 (pre-state read ordering violated)", got)
	}
}
