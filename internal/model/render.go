package model

import (
	"fmt"
	"strings"

	"nfactor/internal/solver"
	"nfactor/internal/telemetry"
)

// Render prints the model in the paper's Figure 6 layout: one section per
// configuration condition, one row per entry with flow match, state
// match, flow action and state action columns.
func Render(m *Model) string {
	return render(m, nil)
}

// RenderWithHits is Render annotated with live telemetry: each entry row
// carries its hit counter from the snapshot (the OpenFlow per-entry
// counters the match/action abstraction calls for), and the implicit
// default drop shows its count. Zero-hit entries are flagged — the raw
// material for dead-entry detection.
func RenderWithHits(m *Model, snap telemetry.Snapshot) string {
	return render(m, &snap)
}

func render(m *Model, snap *telemetry.Snapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NFactor model for %s\n", m.NFName)
	fmt.Fprintf(&sb, "configuration variables: %s\n", strings.Join(m.CfgVars, ", "))
	fmt.Fprintf(&sb, "state variables:         %s\n", strings.Join(m.OISVars, ", "))
	if snap != nil {
		fmt.Fprintf(&sb, "traffic: %d packets (%d forward, %d drop, %d error) via %s\n",
			snap.Packets, snap.Forwards, snap.Drops, snap.Errors, snap.Backend)
	}
	sb.WriteString(strings.Repeat("=", 78) + "\n")

	// Tables() hands out pointers into m.Entries; recover each entry's
	// model index for the hit-counter lookup.
	entryIdx := make(map[*Entry]int, len(m.Entries))
	for i := range m.Entries {
		entryIdx[&m.Entries[i]] = i
	}

	for _, tbl := range m.Tables() {
		if len(tbl.Config) == 0 {
			sb.WriteString("config: *\n")
		} else {
			fmt.Fprintf(&sb, "config: %s\n", joinConds(tbl.Config))
		}
		sb.WriteString(strings.Repeat("-", 78) + "\n")
		for _, e := range tbl.Entries {
			if snap != nil {
				idx := entryIdx[e]
				var hits int64
				if idx < len(snap.EntryHits) {
					hits = snap.EntryHits[idx]
				}
				note := ""
				if hits == 0 {
					note = "  (never hit)"
				}
				fmt.Fprintf(&sb, "  entry %-3d hits: %d%s\n", idx, hits, note)
			}
			fmt.Fprintf(&sb, "  match  flow:  %s\n", orStar(joinConds(e.FlowMatch)))
			fmt.Fprintf(&sb, "         state: %s\n", orStar(joinConds(e.StateMatch)))
			if e.Dropped() {
				sb.WriteString("  action flow:  drop\n")
			} else {
				for _, a := range e.Sends {
					fmt.Fprintf(&sb, "  action flow:  %s\n", renderSend(a))
				}
			}
			if len(e.Updates) == 0 {
				sb.WriteString("         state: *\n")
			} else {
				for _, u := range e.Updates {
					fmt.Fprintf(&sb, "         state: %s := %s\n", u.Name, u.Val)
				}
			}
			sb.WriteString("\n")
		}
	}
	if snap != nil {
		fmt.Fprintf(&sb, "default: drop (lowest priority)  hits: %d\n", snap.DefaultDrops)
	} else {
		sb.WriteString("default: drop (lowest priority)\n")
	}
	return sb.String()
}

func joinConds(conds []solver.Term) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

func renderSend(a Action) string {
	var parts []string
	for _, f := range a.FieldNames() {
		t := a.Fields[f]
		// Unchanged fields (identity terms) are noise; show transforms.
		if v, ok := t.(solver.Var); ok && v.Name == "pkt."+f {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s := %s", f, t))
	}
	iface := a.Iface.String()
	send := "send(pkt"
	if iface != `""` {
		send += ", " + iface
	}
	send += ")"
	if len(parts) > 0 {
		send += " with " + strings.Join(parts, ", ")
	}
	return send
}
