package model

import (
	"fmt"
	"strings"

	"nfactor/internal/solver"
)

// Render prints the model in the paper's Figure 6 layout: one section per
// configuration condition, one row per entry with flow match, state
// match, flow action and state action columns.
func Render(m *Model) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NFactor model for %s\n", m.NFName)
	fmt.Fprintf(&sb, "configuration variables: %s\n", strings.Join(m.CfgVars, ", "))
	fmt.Fprintf(&sb, "state variables:         %s\n", strings.Join(m.OISVars, ", "))
	sb.WriteString(strings.Repeat("=", 78) + "\n")

	for _, tbl := range m.Tables() {
		if len(tbl.Config) == 0 {
			sb.WriteString("config: *\n")
		} else {
			fmt.Fprintf(&sb, "config: %s\n", joinConds(tbl.Config))
		}
		sb.WriteString(strings.Repeat("-", 78) + "\n")
		for _, e := range tbl.Entries {
			fmt.Fprintf(&sb, "  match  flow:  %s\n", orStar(joinConds(e.FlowMatch)))
			fmt.Fprintf(&sb, "         state: %s\n", orStar(joinConds(e.StateMatch)))
			if e.Dropped() {
				sb.WriteString("  action flow:  drop\n")
			} else {
				for _, a := range e.Sends {
					fmt.Fprintf(&sb, "  action flow:  %s\n", renderSend(a))
				}
			}
			if len(e.Updates) == 0 {
				sb.WriteString("         state: *\n")
			} else {
				for _, u := range e.Updates {
					fmt.Fprintf(&sb, "         state: %s := %s\n", u.Name, u.Val)
				}
			}
			sb.WriteString("\n")
		}
	}
	sb.WriteString("default: drop (lowest priority)\n")
	return sb.String()
}

func joinConds(conds []solver.Term) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

func renderSend(a Action) string {
	var parts []string
	for _, f := range a.FieldNames() {
		t := a.Fields[f]
		// Unchanged fields (identity terms) are noise; show transforms.
		if v, ok := t.(solver.Var); ok && v.Name == "pkt."+f {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s := %s", f, t))
	}
	iface := a.Iface.String()
	send := "send(pkt"
	if iface != `""` {
		send += ", " + iface
	}
	send += ")"
	if len(parts) > 0 {
		send += " with " + strings.Join(parts, ", ")
	}
	return send
}
