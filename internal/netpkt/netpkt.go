// Package netpkt models the packets that flow through NF programs: a
// TCP/UDP-ish header (5-tuple, flags, TTL) plus capture metadata. It
// converts between the wire-level struct and the interpreter's field-bag
// representation (value.PacketVal), following the flow/endpoint design of
// packet libraries like gopacket but reduced to what the paper's NFs
// inspect.
package netpkt

import (
	"fmt"
	"strings"

	"nfactor/internal/value"
)

// Packet is a decoded packet header.
type Packet struct {
	SrcIP   string
	DstIP   string
	SrcPort int
	DstPort int
	Proto   string // "tcp", "udp", "icmp"
	Flags   string // TCP flag letters, e.g. "S", "SA", "A", "F", "R"
	TTL     int
	Length  int    // payload length in bytes
	Payload string // application payload excerpt (for DPI)
	InIface string // capture interface
}

// Field names used in the interpreter representation.
const (
	FieldSrcIP   = "sip"
	FieldDstIP   = "dip"
	FieldSrcPort = "sport"
	FieldDstPort = "dport"
	FieldProto   = "proto"
	FieldFlags   = "flags"
	FieldTTL     = "ttl"
	FieldLength  = "length"
	FieldPayload = "payload"
	FieldInIface = "in_iface"
)

// ToValue converts the packet to the interpreter's field bag.
func (p Packet) ToValue() value.Value {
	return value.NewPacket(map[string]value.Value{
		FieldSrcIP:   value.Str(p.SrcIP),
		FieldDstIP:   value.Str(p.DstIP),
		FieldSrcPort: value.Int(int64(p.SrcPort)),
		FieldDstPort: value.Int(int64(p.DstPort)),
		FieldProto:   value.Str(p.Proto),
		FieldFlags:   value.Str(p.Flags),
		FieldTTL:     value.Int(int64(p.TTL)),
		FieldLength:  value.Int(int64(p.Length)),
		FieldPayload: value.Str(p.Payload),
		FieldInIface: value.Str(p.InIface),
	})
}

// FromValue converts a field bag back to a Packet. Unknown fields are
// ignored (programs may annotate packets with scratch fields); missing
// standard fields default to zero values.
func FromValue(v value.Value) (Packet, error) {
	if v.Kind != value.KindPacket {
		return Packet{}, fmt.Errorf("netpkt: not a packet value: %s", v.Kind)
	}
	var p Packet
	f := v.Pkt.Fields
	str := func(name string) string {
		if x, ok := f[name]; ok && x.Kind == value.KindStr {
			return x.S
		}
		return ""
	}
	num := func(name string) int {
		if x, ok := f[name]; ok && x.Kind == value.KindInt {
			return int(x.I)
		}
		return 0
	}
	p.SrcIP = str(FieldSrcIP)
	p.DstIP = str(FieldDstIP)
	p.SrcPort = num(FieldSrcPort)
	p.DstPort = num(FieldDstPort)
	p.Proto = str(FieldProto)
	p.Flags = str(FieldFlags)
	p.TTL = num(FieldTTL)
	p.Length = num(FieldLength)
	p.Payload = str(FieldPayload)
	p.InIface = str(FieldInIface)
	return p, nil
}

// String renders a tcpdump-ish one-liner.
func (p Packet) String() string {
	flags := p.Flags
	if flags == "" {
		flags = "."
	}
	return fmt.Sprintf("%s %s:%d > %s:%d [%s] ttl=%d len=%d",
		p.Proto, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, flags, p.TTL, p.Length)
}

// Flow is a directed 5-tuple.
type Flow struct {
	SrcIP   string
	SrcPort int
	DstIP   string
	DstPort int
	Proto   string
}

// Flow returns the packet's directed flow.
func (p Packet) Flow() Flow {
	return Flow{SrcIP: p.SrcIP, SrcPort: p.SrcPort, DstIP: p.DstIP, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow {
	return Flow{SrcIP: f.DstIP, SrcPort: f.DstPort, DstIP: f.SrcIP, DstPort: f.SrcPort, Proto: f.Proto}
}

// Key returns a canonical encoding of the flow, usable as a map key.
func (f Flow) Key() string {
	return fmt.Sprintf("%s|%s:%d>%s:%d", f.Proto, f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
}

// Tuple returns the flow as the 4-tuple value (sip, sport, dip, dport)
// the NFLang corpus keys its dictionaries with.
func (f Flow) Tuple() value.Value {
	return value.TupleOf(
		value.Str(f.SrcIP), value.Int(int64(f.SrcPort)),
		value.Str(f.DstIP), value.Int(int64(f.DstPort)),
	)
}

// String renders the flow.
func (f Flow) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", f.Proto, f.SrcIP, f.SrcPort, f.DstIP, f.DstPort)
}

// HasFlag reports whether the packet's TCP flags contain the flag letter.
func (p Packet) HasFlag(flag string) bool { return strings.Contains(p.Flags, flag) }

// Equal reports field equality of two packets.
func Equal(a, b Packet) bool { return a == b }

// Canonical returns a canonical string for output comparison in
// differential tests (all fields, fixed order).
func (p Packet) Canonical() string {
	return fmt.Sprintf("%s|%s|%d|%s|%d|%s|%d|%d|%q|%s",
		p.Proto, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Flags, p.TTL, p.Length, p.Payload, p.InIface)
}
