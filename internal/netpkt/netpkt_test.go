package netpkt

import (
	"testing"
	"testing/quick"

	"nfactor/internal/value"
)

func samplePkt() Packet {
	return Packet{
		SrcIP: "10.0.0.1", DstIP: "10.0.0.2",
		SrcPort: 1234, DstPort: 80,
		Proto: "tcp", Flags: "SA", TTL: 64, Length: 512, InIface: "eth0",
	}
}

func TestToValueFromValueRoundTrip(t *testing.T) {
	p := samplePkt()
	v := p.ToValue()
	q, err := FromValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(p, q) {
		t.Errorf("round trip changed packet: %+v vs %+v", p, q)
	}
}

func TestFromValueRejectsNonPacket(t *testing.T) {
	if _, err := FromValue(value.Int(1)); err == nil {
		t.Error("non-packet value accepted")
	}
}

func TestFromValueIgnoresScratchFields(t *testing.T) {
	v := samplePkt().ToValue()
	v.Pkt.Fields["scratch"] = value.Int(99)
	q, err := FromValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(samplePkt(), q) {
		t.Error("scratch field changed decoding")
	}
}

func TestFlowReverse(t *testing.T) {
	f := samplePkt().Flow()
	r := f.Reverse()
	if r.SrcIP != f.DstIP || r.SrcPort != f.DstPort || r.DstIP != f.SrcIP {
		t.Errorf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double reverse is not identity")
	}
}

func TestFlowKeyDistinguishesDirection(t *testing.T) {
	f := samplePkt().Flow()
	if f.Key() == f.Reverse().Key() {
		t.Error("flow key is direction-insensitive")
	}
}

func TestFlowTuple(t *testing.T) {
	tup := samplePkt().Flow().Tuple()
	if tup.Kind != value.KindTuple || len(tup.Tuple) != 4 {
		t.Fatalf("tuple = %s", tup)
	}
	if tup.Tuple[0].S != "10.0.0.1" || tup.Tuple[1].I != 1234 {
		t.Errorf("tuple = %s", tup)
	}
}

func TestHasFlag(t *testing.T) {
	p := samplePkt()
	if !p.HasFlag("S") || !p.HasFlag("A") || p.HasFlag("F") {
		t.Errorf("flag tests wrong for %q", p.Flags)
	}
}

func TestCanonicalInjective(t *testing.T) {
	a := samplePkt()
	b := a
	b.DstPort = 81
	if a.Canonical() == b.Canonical() {
		t.Error("canonical strings collide")
	}
}

// Property: ToValue→FromValue is the identity for arbitrary field values.
func TestRoundTripProperty(t *testing.T) {
	f := func(sport, dport uint16, ttl uint8, flags uint8) bool {
		pool := []string{"", "S", "SA", "A", "R"}
		p := Packet{
			SrcIP: "1.2.3.4", DstIP: "5.6.7.8",
			SrcPort: int(sport), DstPort: int(dport),
			Proto: "tcp", Flags: pool[int(flags)%len(pool)],
			TTL: int(ttl), Length: 100, InIface: "eth0",
		}
		q, err := FromValue(p.ToValue())
		return err == nil && Equal(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
