package netpkt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace text format: one packet per line,
//
//	tcp 10.0.0.1:1234 > 10.0.0.2:80 [SA] ttl=64 len=512 iface=eth0 payload="GET /"
//
// `[.]` means no flags; ttl/len/iface/payload are optional (defaults 64,
// 0, "eth0", ""). Lines starting with '#' and blank lines are skipped.
// This is the on-disk interchange for cmd/nfreplay and test fixtures.

// FormatTrace writes packets in the trace text format.
func FormatTrace(w io.Writer, pkts []Packet) error {
	for _, p := range pkts {
		if _, err := fmt.Fprintln(w, FormatLine(p)); err != nil {
			return err
		}
	}
	return nil
}

// FormatLine renders one packet as a trace line.
func FormatLine(p Packet) string {
	flags := p.Flags
	if flags == "" {
		flags = "."
	}
	line := fmt.Sprintf("%s %s:%d > %s:%d [%s] ttl=%d len=%d iface=%s",
		p.Proto, p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, flags, p.TTL, p.Length, p.InIface)
	if p.Payload != "" {
		line += fmt.Sprintf(" payload=%q", p.Payload)
	}
	return line
}

// ParseTrace reads a whole trace.
func ParseTrace(r io.Reader) ([]Packet, error) {
	var out []Packet
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("netpkt: trace line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseLine parses one trace line.
func ParseLine(line string) (Packet, error) {
	p := Packet{TTL: 64, InIface: "eth0"}

	// Optional quoted payload suffix first (it may contain spaces).
	if i := strings.Index(line, ` payload="`); i >= 0 {
		quoted := strings.TrimSpace(line[i+len(" payload="):])
		s, err := strconv.Unquote(quoted)
		if err != nil {
			return Packet{}, fmt.Errorf("bad payload %s: %v", quoted, err)
		}
		p.Payload = s
		line = line[:i]
	}

	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Packet{}, fmt.Errorf("want `proto src:port > dst:port [flags] k=v...`, got %q", line)
	}
	p.Proto = fields[0]
	var err error
	p.SrcIP, p.SrcPort, err = hostPort(fields[1])
	if err != nil {
		return Packet{}, err
	}
	if fields[2] != ">" {
		return Packet{}, fmt.Errorf("expected '>' between endpoints, got %q", fields[2])
	}
	p.DstIP, p.DstPort, err = hostPort(fields[3])
	if err != nil {
		return Packet{}, err
	}

	for _, f := range fields[4:] {
		switch {
		case strings.HasPrefix(f, "[") && strings.HasSuffix(f, "]"):
			fl := f[1 : len(f)-1]
			if fl != "." {
				p.Flags = fl
			}
		case strings.HasPrefix(f, "ttl="):
			p.TTL, err = strconv.Atoi(f[4:])
		case strings.HasPrefix(f, "len="):
			p.Length, err = strconv.Atoi(f[4:])
		case strings.HasPrefix(f, "iface="):
			p.InIface = f[6:]
		default:
			return Packet{}, fmt.Errorf("unknown trace field %q", f)
		}
		if err != nil {
			return Packet{}, fmt.Errorf("bad trace field %q: %v", f, err)
		}
	}
	return p, nil
}

func hostPort(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("bad port in %q", s)
	}
	return s[:i], port, nil
}
