package netpkt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseLineBasic(t *testing.T) {
	p, err := ParseLine(`tcp 10.0.0.1:1234 > 10.0.0.2:80 [SA] ttl=63 len=512 iface=lan payload="GET / HTTP/1.1"`)
	if err != nil {
		t.Fatal(err)
	}
	want := Packet{
		SrcIP: "10.0.0.1", SrcPort: 1234, DstIP: "10.0.0.2", DstPort: 80,
		Proto: "tcp", Flags: "SA", TTL: 63, Length: 512,
		Payload: "GET / HTTP/1.1", InIface: "lan",
	}
	if p != want {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
}

func TestParseLineDefaults(t *testing.T) {
	p, err := ParseLine(`udp 1.1.1.1:53 > 2.2.2.2:5353 [.]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Flags != "" || p.TTL != 64 || p.InIface != "eth0" || p.Payload != "" {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func TestParseTraceSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
tcp 1.1.1.1:1 > 2.2.2.2:80 [S]

tcp 1.1.1.1:1 > 2.2.2.2:80 [A] len=100
`
	pkts, err := ParseTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("parsed %d packets", len(pkts))
	}
	if pkts[1].Length != 100 {
		t.Errorf("second packet = %+v", pkts[1])
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		``,
		`tcp 1.1.1.1:1 2.2.2.2:80 [S]`,     // missing >
		`tcp 1.1.1.1 > 2.2.2.2:80 [S]`,     // missing src port
		`tcp 1.1.1.1:x > 2.2.2.2:80 [S]`,   // bad port
		`tcp 1.1.1.1:1 > 2.2.2.2:80 wat=1`, // unknown field
		`tcp 1.1.1.1:1 > 2.2.2.2:80 ttl=x`, // bad ttl
		`tcp 1.1.1.1:1 > 2.2.2.2:80 payload="unterminated`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) did not error", line)
		}
	}
	if _, err := ParseTrace(strings.NewReader("garbage line\n")); err == nil {
		t.Error("ParseTrace of garbage did not error")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	pkts := []Packet{
		{SrcIP: "1.2.3.4", SrcPort: 1, DstIP: "5.6.7.8", DstPort: 2, Proto: "tcp", Flags: "S", TTL: 64, Length: 0, InIface: "eth0"},
		{SrcIP: "9.9.9.9", SrcPort: 53, DstIP: "8.8.8.8", DstPort: 53, Proto: "udp", TTL: 12, Length: 77, InIface: "wan", Payload: `quoted "stuff" here`},
	}
	var sb strings.Builder
	if err := FormatTrace(&sb, pkts); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if len(back) != len(pkts) {
		t.Fatalf("round trip count %d", len(back))
	}
	for i := range pkts {
		if back[i] != pkts[i] {
			t.Errorf("packet %d: %+v != %+v", i, back[i], pkts[i])
		}
	}
}

// Property: FormatLine/ParseLine round-trips arbitrary well-formed
// packets.
func TestTraceRoundTripProperty(t *testing.T) {
	pool := []string{"", "S", "SA", "PA", "R"}
	payloads := []string{"", "abc", `with "quotes"`, "tab\tand\nnewline"}
	f := func(sport, dport uint16, ttl uint8, fl, pl uint8) bool {
		p := Packet{
			SrcIP: "10.1.2.3", SrcPort: int(sport), DstIP: "10.4.5.6", DstPort: int(dport),
			Proto: "tcp", Flags: pool[int(fl)%len(pool)], TTL: int(ttl),
			Length: int(dport) % 1500, Payload: payloads[int(pl)%len(payloads)],
			InIface: "eth1",
		}
		q, err := ParseLine(FormatLine(p))
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
