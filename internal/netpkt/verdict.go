package netpkt

import (
	"fmt"
	"strings"
)

// Verdict is one packet's observable outcome during replay or serving:
// dropped, or forwarded as one or more (possibly rewritten) packets on
// their interfaces. It is the output domain every execution backend —
// original program, model instance, compiled engine, sharded engine,
// fused chain — is compared and served in.
type Verdict struct {
	Dropped bool
	Sent    []Packet
	Ifaces  []string
}

// String renders the verdict compactly.
func (v Verdict) String() string {
	if v.Dropped {
		return "DROP"
	}
	parts := make([]string, len(v.Sent))
	for i := range v.Sent {
		dst := fmt.Sprintf("%s:%d", v.Sent[i].DstIP, v.Sent[i].DstPort)
		if v.Ifaces[i] != "" {
			dst += " via " + v.Ifaces[i]
		}
		parts[i] = dst
	}
	return "FORWARD -> " + strings.Join(parts, ", ")
}
