package nfs_test

import (
	"strings"
	"testing"

	"nfactor/internal/nfs"

	"nfactor/internal/core"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// TestBalanceTCPStateMachine extracts the FSM the TCP unfolding made
// explicit: ∅ → SYN_RCVD → ESTABLISHED, the diagram the paper's §2.4
// says testing tools like BUZZ build from the state transition logic.
func TestBalanceTCPStateMachine(t *testing.T) {
	nf := nfs.MustLoad("balance")
	an, err := core.Analyze("balance", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := model.ExtractFSM(an.Model, "tcp_state")
	if err != nil {
		t.Fatal(err)
	}
	wantStates := []string{"ESTABLISHED", "SYN_RCVD", model.StateAbsent}
	for _, w := range wantStates {
		found := false
		for _, s := range fsm.States {
			if s == w {
				found = true
			}
		}
		if !found {
			t.Errorf("FSM missing state %q: %v", w, fsm.States)
		}
	}
	hasEdge := func(from, to string) bool {
		for _, tr := range fsm.Trans {
			if tr.From == from && tr.To == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(model.StateAbsent, "SYN_RCVD") {
		t.Errorf("missing ∅→SYN_RCVD edge:\n%s", model.RenderFSM(fsm))
	}
	if !hasEdge("SYN_RCVD", "ESTABLISHED") {
		t.Errorf("missing SYN_RCVD→ESTABLISHED edge:\n%s", model.RenderFSM(fsm))
	}
	dot := fsm.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "SYN_RCVD") {
		t.Errorf("dot rendering broken:\n%s", dot)
	}
}

// TestFirewallMatchesHandWrittenModel demonstrates the paper's planned
// comparison with manually-built models: a domain expert writes the
// stateful firewall's four entries by hand (in the model vocabulary);
// the solver-backed comparator proves them equivalent to NFactor's
// synthesized output.
func TestFirewallMatchesHandWrittenModel(t *testing.T) {
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze("firewall", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	pf := func(f string) solver.Term { return solver.Var{Name: "pkt." + f} }
	ic := func(i int64) solver.Term { return solver.Const{V: value.Int(i)} }
	egress := value.NewMap()
	_ = egress.Map.Set(value.Int(80), value.Str("http"))
	_ = egress.Map.Set(value.Int(443), value.Str("https"))
	_ = egress.Map.Set(value.Int(53), value.Str("dns"))
	_ = egress.Map.Set(value.Int(22), value.Str("ssh"))
	egressTerm := solver.NamedConst{Name: "egress_ports", V: egress}
	conns := solver.MapVar{Name: "conns@0"}
	fwdKey := solver.Tuple{Elems: []solver.Term{pf("sip"), pf("sport"), pf("dip"), pf("dport")}}
	revKey := solver.Tuple{Elems: []solver.Term{pf("dip"), pf("dport"), pf("sip"), pf("sport")}}
	trusted := solver.Bin{Op: "==", X: pf("in_iface"), Y: solver.Var{Name: "TRUSTED_IFACE"}}
	inEgress := solver.In{K: pf("dport"), M: egressTerm}
	established := solver.In{K: revKey, M: conns}

	hand := &model.Model{
		NFName: "firewall-by-hand", PktVar: "pkt",
		CfgVars: []string{"TRUSTED_IFACE", "UNTRUSTED_IFACE", "egress_ports"},
		OISVars: []string{"conns"},
		Entries: []model.Entry{
			{ // outbound, policy allows: forward to wan, record the flow
				FlowMatch: []solver.Term{trusted, inEgress},
				Sends: []model.Action{{
					Fields: map[string]solver.Term{},
					Iface:  solver.Var{Name: "UNTRUSTED_IFACE"},
				}},
				Updates: []model.Assign{{
					Name: "conns",
					Val:  solver.Store{M: conns, K: fwdKey, V: ic(1)},
				}},
			},
			{ // outbound, policy denies: drop
				FlowMatch: []solver.Term{trusted, solver.Not(inEgress)},
			},
			{ // inbound, established: forward to lan
				FlowMatch:  []solver.Term{solver.Not(trusted)},
				StateMatch: []solver.Term{established},
				Sends: []model.Action{{
					Fields: map[string]solver.Term{},
					Iface:  solver.Var{Name: "TRUSTED_IFACE"},
				}},
			},
			{ // inbound, unsolicited: drop
				FlowMatch:  []solver.Term{solver.Not(trusted)},
				StateMatch: []solver.Term{solver.Not(established)},
			},
		},
	}

	rep := model.Compare(an.Model, hand)
	if !rep.Equivalent() {
		t.Errorf("synthesized firewall does not match the hand-written model: %s\nsynthesized:\n%s",
			rep, model.Render(an.Model))
	}
}

// TestMirrorMultiSendPath checks that the mirror NF's monitored-new-flow
// entry carries two packet actions (tap copy + forward) and that the
// model executes both.
func TestMirrorMultiSendPath(t *testing.T) {
	nf := nfs.MustLoad("mirror")
	an, err := core.Analyze("mirror", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dual *model.Entry
	for i := range an.Model.Entries {
		if len(an.Model.Entries[i].Sends) == 2 {
			dual = &an.Model.Entries[i]
		}
	}
	if dual == nil {
		t.Fatal("no entry with two sends")
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	ssh := value.NewPacket(map[string]value.Value{
		"sip": value.Str("1.2.3.4"), "sport": value.Int(999),
		"dip": value.Str("5.6.7.8"), "dport": value.Int(22),
		"proto": value.Str("tcp"), "flags": value.Str("S"),
	})
	out, err := inst.Process(ssh)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sent) != 2 {
		t.Fatalf("first ssh packet sent %d copies, want 2 (tap + forward)", len(out.Sent))
	}
	ifaces := map[string]bool{out.Sent[0].Iface: true, out.Sent[1].Iface: true}
	if !ifaces["tap"] || !ifaces["out"] {
		t.Errorf("ifaces = %v", ifaces)
	}
	// Second packet of the same flow: forwarded only.
	out, err = inst.Process(ssh)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sent) != 1 || out.Sent[0].Iface != "out" {
		t.Errorf("repeat packet: %d sends via %q", len(out.Sent), out.Sent[0].Iface)
	}
}

// TestRatelimitInterproceduralModel checks the helper-function NF: the
// inlined pipeline must produce a model whose counting logic works.
func TestRatelimitInterproceduralModel(t *testing.T) {
	nf := nfs.MustLoad("ratelimit")
	an, err := core.Analyze("ratelimit", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	pkt := value.NewPacket(map[string]value.Value{
		"sip": value.Str("9.9.9.9"), "dip": value.Str("8.8.8.8"),
		"sport": value.Int(1), "dport": value.Int(2),
		"proto": value.Str("udp"), "flags": value.Str(""),
	})
	forwarded := 0
	for i := 0; i < 8; i++ {
		out, err := inst.Process(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Dropped {
			forwarded++
		}
	}
	if forwarded != 5 {
		t.Errorf("forwarded %d packets, want LIMIT=5", forwarded)
	}
}

// TestDPIQuarantineAcrossInvocations checks the strike-counter →
// quarantine-set pattern that forced the oisVar transitive closure: the
// model must quarantine a source after STRIKE_LIMIT bad payloads and then
// drop even its clean traffic — state flowing across invocations through
// two coupled maps.
func TestDPIQuarantineAcrossInvocations(t *testing.T) {
	nf := nfs.MustLoad("dpi")
	an, err := core.Analyze("dpi", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// strikes must have been promoted to output-impacting.
	found := false
	for _, v := range an.Model.OISVars {
		if v == "strikes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("strikes not promoted to oisVar: %v", an.Model.OISVars)
	}

	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(payload string) value.Value {
		return value.NewPacket(map[string]value.Value{
			"sip": value.Str("6.6.6.6"), "dip": value.Str("7.7.7.7"),
			"sport": value.Int(1), "dport": value.Int(80),
			"proto": value.Str("tcp"), "flags": value.Str(""),
			"payload": value.Str(payload),
		})
	}
	bad := mk("GET /etc/passwd HTTP/1.0")
	clean := mk("GET /index.html")

	// Clean traffic passes initially.
	out, err := inst.Process(clean)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Fatal("clean packet dropped before any strikes")
	}
	// Three bad payloads: all dropped, strikes accumulate.
	for i := 0; i < 3; i++ {
		out, err = inst.Process(bad)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Dropped {
			t.Fatalf("bad packet %d forwarded", i)
		}
	}
	// Now even clean traffic from the offender is quarantined.
	out, err = inst.Process(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Error("quarantined source's clean packet forwarded by the model")
	}
	// A different source is unaffected.
	other := mk("GET /index.html")
	other.Pkt.Fields["sip"] = value.Str("9.9.9.9")
	out, err = inst.Process(other)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("innocent source quarantined")
	}
}

// TestDPIDiffTestRepeatOffender replays the exact cross-invocation
// scenario through program and model side by side.
func TestDPIDiffTestRepeatOffender(t *testing.T) {
	nf := nfs.MustLoad("dpi")
	opts := core.Options{}
	an, err := core.Analyze("dpi", nf.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	var trace []netpkt.Packet
	offender := netpkt.Packet{
		SrcIP: "6.6.6.6", DstIP: "7.7.7.7", SrcPort: 1, DstPort: 80,
		Proto: "tcp", TTL: 64, InIface: "eth0",
	}
	for i := 0; i < 5; i++ {
		p := offender
		p.Payload = "SELECT * FROM secrets"
		trace = append(trace, p)
		q := offender
		q.Payload = "harmless"
		trace = append(trace, q)
	}
	res, err := an.DiffTest(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Errorf("repeat-offender difftest diverged: %s", res.FirstDiff)
	}
}
