package nfs_test

import (
	"testing"

	"nfactor/internal/nfs"

	"nfactor/internal/core"
	"nfactor/internal/interp"
	"nfactor/internal/model"
	"nfactor/internal/workload"
)

func newCorpusInterp(nf *nfs.NF) (*interp.Interp, error) {
	return interp.New(nf.Prog, "process", interp.Options{})
}

// Minimization must shrink (or keep) every corpus model while preserving
// behaviour: the minimized model must still agree with the original
// program on random traffic and cover all original entries.
func TestMinimizeCorpusModelsPreserveBehaviour(t *testing.T) {
	for _, name := range nfs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			nf := nfs.MustLoad(name)
			opts := core.Options{}
			an, err := core.Analyze(name, nf.Prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			min := model.Minimize(an.Model)
			if len(min.Entries) > len(an.Model.Entries) {
				t.Errorf("minimize grew the model: %d -> %d",
					len(an.Model.Entries), len(min.Entries))
			}
			// Every original entry must be covered by a minimized entry.
			if ok, uncovered := model.Covers(an.Model, min); !ok {
				t.Errorf("minimized model does not cover entries %v", uncovered)
			}

			// Behavioural check: minimized model vs original program.
			config, state, err := an.ConfigAndState(nil)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := model.NewInstance(min, config, state)
			if err != nil {
				t.Fatal(err)
			}
			orig, err := newCorpusInterp(nf)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range workload.New(123).RandomTrace(300) {
				pv := p.ToValue()
				mo, err1 := inst.Process(pv)
				oo, err2 := orig.Process(pv)
				if (err1 != nil) != (err2 != nil) {
					t.Fatalf("packet %d error mismatch: model=%v orig=%v", i, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if mo.Dropped != oo.Dropped || len(mo.Sent) != len(oo.Sent) {
					t.Fatalf("packet %d (%s): minimized model diverged (drop %v/%v, sends %d/%d)",
						i, p, mo.Dropped, oo.Dropped, len(mo.Sent), len(oo.Sent))
				}
			}
		})
	}
}

// A branch with no behavioural difference (a dead local assignment on
// each arm) yields two paths with identical actions; minimization merges
// them into a single unconditional entry.
func TestMinimizeMergesBehaviourallyEqualPaths(t *testing.T) {
	// Both arms perform the same packet action, so the two paths differ
	// only in their (complementary) guard. The static slicer keeps the
	// branch (it writes an output field); minimization folds it.
	nf, err := nfs.FromSource("equalarms", `
func process(pkt) {
    if pkt.ttl > 10 {
        pkt.mark = 1;
    } else {
        pkt.mark = 1;
    }
    send(pkt);
}`)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze("deadbranch", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Model.Entries) != 2 {
		t.Fatalf("expected 2 raw entries, got %d", len(an.Model.Entries))
	}
	min := model.Minimize(an.Model)
	if len(min.Entries) != 1 {
		t.Fatalf("minimize did not merge complementary entries: %d", len(min.Entries))
	}
	if len(min.Entries[0].Guard()) != 0 {
		t.Errorf("merged entry should be unconditional, guard = %v", min.Entries[0].Guard())
	}
}

// Minimization is idempotent and stable on an already-minimal model.
func TestMinimizeIdempotent(t *testing.T) {
	nf := nfs.MustLoad("snortlite")
	an, err := core.Analyze("snortlite", nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	once := model.Minimize(an.Model)
	twice := model.Minimize(once)
	if len(once.Entries) != len(twice.Entries) {
		t.Errorf("minimize not idempotent: %d vs %d", len(once.Entries), len(twice.Entries))
	}
	// snortlite's 12 slice paths are pairwise behaviour-distinct; the
	// model is already minimal in conjunction form.
	if len(once.Entries) != len(an.Model.Entries) {
		t.Logf("snortlite reduced %d -> %d", len(an.Model.Entries), len(once.Entries))
	}
}
