// Package nfs is the NF corpus: the network functions the paper studies
// (the Figure 1 load balancer, balance 3.5 in socket style, a snort-
// shaped IDS/IPS) plus two additional stateful NFs (dynamic NAT, stateful
// firewall), all written in NFLang and embedded in the binary.
//
// Load parses and — where the code structure requires it (balance's
// nested socket loops) — normalizes each program to the canonical
// process(pkt) form before handing it to the pipeline.
package nfs

import (
	"embed"
	"fmt"
	"sort"

	"nfactor/internal/lang"
	"nfactor/internal/normalize"
)

//go:embed programs/*.nfl
var programs embed.FS

// NF is one corpus entry.
type NF struct {
	Name        string
	Description string
	// Source is the original NFLang text.
	Source string
	// Raw is the parsed original program (possibly socket-style).
	Raw *lang.Program
	// Prog is the normalized program with a process(pkt) entry.
	Prog *lang.Program
	// Kind is the detected Figure 4 code structure.
	Kind normalize.Kind
}

var descriptions = map[string]string{
	"lb":        "layer-4 load balancer (the paper's Figure 1)",
	"balance":   "balance 3.5 — socket-style TCP load balancer (Figure 3), TCP-unfolded",
	"snortlite": "snort-shaped inline IDS/IPS with SYN-flood state and a rule table",
	"nat":       "dynamic source NAT gateway",
	"firewall":  "stateful perimeter firewall",
	"mirror":    "flow-sampled port mirroring tap (multi-send paths)",
	"dpi":       "payload signature filter with strike-based quarantine",
	"ratelimit": "per-source-pair rate limiter (helper functions, inter-procedural)",
}

// Names returns the corpus NF names, sorted.
func Names() []string {
	entries, err := programs.ReadDir("programs")
	if err != nil {
		panic(fmt.Sprintf("nfs: embedded corpus unreadable: %v", err))
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		out = append(out, name[:len(name)-len(".nfl")])
	}
	sort.Strings(out)
	return out
}

// Load parses and normalizes the named corpus NF.
func Load(name string) (*NF, error) {
	src, err := programs.ReadFile("programs/" + name + ".nfl")
	if err != nil {
		return nil, fmt.Errorf("nfs: unknown NF %q (have %v)", name, Names())
	}
	return FromSource(name, string(src))
}

// FromSource parses and normalizes an NFLang program given as text.
func FromSource(name, src string) (*NF, error) {
	raw, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("nfs: parsing %s: %w", name, err)
	}
	prog, kind, err := normalize.Normalize(raw)
	if err != nil {
		return nil, fmt.Errorf("nfs: normalizing %s: %w", name, err)
	}
	return &NF{
		Name:        name,
		Description: descriptions[name],
		Source:      src,
		Raw:         raw,
		Prog:        prog,
		Kind:        kind,
	}, nil
}

// MustLoad is Load panicking on error; for tests and benchmarks over the
// embedded (compile-time validated) corpus.
func MustLoad(name string) *NF {
	nf, err := Load(name)
	if err != nil {
		panic(err)
	}
	return nf
}
