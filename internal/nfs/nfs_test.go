package nfs_test

import (
	"strings"
	"testing"

	"nfactor/internal/nfs"

	"nfactor/internal/core"
	"nfactor/internal/lang"
	"nfactor/internal/model"
	"nfactor/internal/normalize"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

func TestNamesListsCorpus(t *testing.T) {
	names := nfs.Names()
	want := []string{"balance", "dpi", "firewall", "lb", "mirror", "nat", "ratelimit", "snortlite"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestLoadAllParsesAndNormalizes(t *testing.T) {
	for _, name := range nfs.Names() {
		nf, err := nfs.Load(name)
		if err != nil {
			t.Errorf("Load(%s): %v", name, err)
			continue
		}
		if nf.Prog.Func("process") == nil {
			t.Errorf("%s: no process() after normalization", name)
		}
		if nf.Description == "" {
			t.Errorf("%s: missing description", name)
		}
	}
}

func TestBalanceIsNestedLoop(t *testing.T) {
	nf := nfs.MustLoad("balance")
	if nf.Kind != normalize.KindNestedLoop {
		t.Errorf("balance kind = %v", nf.Kind)
	}
	printed := lang.Print(nf.Prog)
	if !strings.Contains(printed, "tcp_state") {
		t.Error("balance not TCP-unfolded")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := nfs.Load("doesnotexist"); err == nil {
		t.Error("unknown nfs.NF did not error")
	}
}

// Every corpus nfs.NF must survive the full pipeline and pass the accuracy
// checks — the paper's §5 methodology applied corpus-wide.
func TestPipelineOverCorpus(t *testing.T) {
	for _, name := range nfs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			nf := nfs.MustLoad(name)
			opts := core.Options{MaxPaths: 2048}
			an, err := core.Analyze(nf.Name, nf.Prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Model.Entries) == 0 {
				t.Fatal("empty model")
			}
			// The slice is never larger than the analyzed program; it is
			// strictly smaller whenever the nfs.NF has log/failure-handling
			// code (balance's unfolded form is already minimal).
			if an.Metrics.LoCSlice > an.Metrics.LoCOrig {
				t.Errorf("slice LoC %d > orig LoC %d", an.Metrics.LoCSlice, an.Metrics.LoCOrig)
			}

			rep, err := an.CheckPathEquivalence(opts)
			if err != nil {
				t.Fatalf("path equivalence: %v", err)
			}
			if !rep.Equivalent() {
				t.Errorf("path sets differ:\nuncovered: %v\nmismatched: %v",
					rep.UncoveredProgram, rep.MismatchedModel)
			}

			trace := workload.New(11).RandomTrace(400)
			res, err := an.DiffTest(trace, opts)
			if err != nil {
				t.Fatalf("difftest: %v", err)
			}
			if !res.Matches() {
				t.Errorf("differential test failed: %s", res.FirstDiff)
			}
		})
	}
}

func TestSnortliteOrigPathExplosion(t *testing.T) {
	nf := nfs.MustLoad("snortlite")
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{MaxPaths: 1024, MeasureOriginal: true})
	if err != nil {
		t.Fatal(err)
	}
	if !an.Metrics.EPOrigCapped {
		t.Errorf("snortlite original SE did not exhaust the path budget: %d paths", an.Metrics.EPOrig)
	}
	if an.Metrics.SliceEPCapped {
		t.Errorf("snortlite slice SE hit the budget: %d paths", an.Metrics.EPSlice)
	}
	if an.Metrics.EPSlice >= 100 {
		t.Errorf("snortlite slice paths = %d, want a small model", an.Metrics.EPSlice)
	}
	// The slice strips the statistics section: a large LoC reduction.
	if an.Metrics.LoCSlice*3 > an.Metrics.LoCOrig {
		t.Errorf("snortlite slice %d LoC vs orig %d: reduction below 3x", an.Metrics.LoCSlice, an.Metrics.LoCOrig)
	}
}

func TestSnortliteIDSvsIPSMode(t *testing.T) {
	nf := nfs.MustLoad("snortlite")
	// In IDS mode a rule hit still forwards; in IPS mode it drops.
	mk := func(mode string) *core.Analysis {
		an, err := core.Analyze(nf.Name, nf.Prog, core.Options{
			ConfigOverride: map[string]value.Value{"mode": value.Str(mode)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	ips := mk("IPS")
	ids := mk("IDS")
	drops := func(an *core.Analysis) int {
		n := 0
		for _, e := range an.Model.Entries {
			if e.Dropped() {
				n++
			}
		}
		return n
	}
	if drops(ips) <= drops(ids) {
		t.Errorf("IPS drop entries (%d) not more than IDS (%d)", drops(ips), drops(ids))
	}
}

func TestBalanceFigure6Shape(t *testing.T) {
	nf := nfs.MustLoad("balance")
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rendered := model.Render(an.Model)
	// Figure 6: under RR config, the new-flow entry sends to
	// servers[rr_idx@0] and advances the index circularly; under HASH the
	// backend is hash-picked and no index state is read.
	for _, want := range []string{
		`mode == "RR"`,
		"rr_idx := ((rr_idx@0 + 1) % 2)",
		"servers[rr_idx@0]",
		"hash(pkt.sip)",
		"tcp_state",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("balance model missing %q:\n%s", want, rendered)
		}
	}
}

func TestFirewallModelBlocksUnsolicitedInbound(t *testing.T) {
	nf := nfs.MustLoad("firewall")
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	inbound := value.NewPacket(map[string]value.Value{
		"in_iface": value.Str("wan"),
		"sip":      value.Str("8.8.8.8"), "sport": value.Int(443),
		"dip": value.Str("10.0.0.5"), "dport": value.Int(55000),
		"proto": value.Str("tcp"), "flags": value.Str("S"),
	})
	out, err := inst.Process(inbound)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Dropped {
		t.Error("unsolicited inbound packet not dropped by model")
	}
	// Outbound opens the hole; the reverse packet then passes.
	outbound := value.NewPacket(map[string]value.Value{
		"in_iface": value.Str("lan"),
		"sip":      value.Str("10.0.0.5"), "sport": value.Int(55000),
		"dip": value.Str("8.8.8.8"), "dport": value.Int(443),
		"proto": value.Str("tcp"), "flags": value.Str("S"),
	})
	if _, err := inst.Process(outbound); err != nil {
		t.Fatal(err)
	}
	out, err = inst.Process(inbound)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped {
		t.Error("reverse packet of established flow dropped by model")
	}
}

func TestNATModelTranslatesAndReverses(t *testing.T) {
	nf := nfs.MustLoad("nat")
	an, err := core.Analyze(nf.Name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(an.Model, config, state)
	if err != nil {
		t.Fatal(err)
	}
	lanPkt := value.NewPacket(map[string]value.Value{
		"in_iface": value.Str("lan"),
		"sip":      value.Str("192.168.1.9"), "sport": value.Int(4242),
		"dip": value.Str("1.1.1.1"), "dport": value.Int(80),
		"proto": value.Str("tcp"), "flags": value.Str("S"),
	})
	out, err := inst.Process(lanPkt)
	if err != nil {
		t.Fatal(err)
	}
	sent := out.Sent[0].Pkt.Pkt.Fields
	if sent["sip"].S != "5.5.5.5" {
		t.Errorf("source not rewritten: %v", sent["sip"])
	}
	natPort := sent["sport"].I
	if natPort != 20000 {
		t.Errorf("nat port = %d, want 20000", natPort)
	}
	// Reverse packet to the allocated port maps back.
	wanPkt := value.NewPacket(map[string]value.Value{
		"in_iface": value.Str("wan"),
		"sip":      value.Str("1.1.1.1"), "sport": value.Int(80),
		"dip": value.Str("5.5.5.5"), "dport": value.Int(natPort),
		"proto": value.Str("tcp"), "flags": value.Str("SA"),
	})
	out, err = inst.Process(wanPkt)
	if err != nil {
		t.Fatal(err)
	}
	back := out.Sent[0].Pkt.Pkt.Fields
	if back["dip"].S != "192.168.1.9" || back["dport"].I != 4242 {
		t.Errorf("reverse translation wrong: dip=%v dport=%v", back["dip"], back["dport"])
	}
}
