// Package normalize canonicalizes the four typical NF code structures of
// the paper's Figure 4 into the single-processing-loop form NFactor
// analyzes (a per-packet `process(pkt)` function):
//
//	(a) one processing loop   — while true { pkt = recv(IF); … }
//	(b) callback              — sniff(IF, callback)
//	(c) consumer-producer     — a recv loop qpush-ing into a queue and a
//	                            processing loop qpop-ing from it
//	(d) nested loop (sockets) — accept/fork/connect/read/write, unfolded
//	                            into packet-level operations guarded by an
//	                            explicit TCP state machine (Figure 5,
//	                            §3.2 "Hidden States")
//
// Structures (a)-(c) are recognized and rewritten syntactically; (d) is
// template-unfolded: socket calls are replaced by packet operations and
// the OS's hidden TCP connection state becomes an explicit tcp_state map.
package normalize

import (
	"fmt"
	"strings"

	"nfactor/internal/lang"
)

// Kind is the detected source-code structure.
type Kind int

// The Figure 4 structures (plus the already-canonical form).
const (
	KindProcess Kind = iota // already has process(pkt)
	KindSingleLoop
	KindCallback
	KindConsumerProducer
	KindNestedLoop
)

// String names the structure as in Figure 4.
func (k Kind) String() string {
	switch k {
	case KindProcess:
		return "canonical"
	case KindSingleLoop:
		return "one processing loop"
	case KindCallback:
		return "callback"
	case KindConsumerProducer:
		return "consumer-producer"
	case KindNestedLoop:
		return "nested loop"
	default:
		return "unknown"
	}
}

// Detect classifies the program's code structure.
func Detect(prog *lang.Program) (Kind, error) {
	if prog.Func("process") != nil {
		return KindProcess, nil
	}
	main := prog.Func("main")
	if main == nil {
		return 0, fmt.Errorf("normalize: no process() and no main()")
	}
	if cb := callbackOf(main); cb != "" {
		return KindCallback, nil
	}
	if consumerFunc(prog) != nil {
		return KindConsumerProducer, nil
	}
	if loop, ok := mainWhileLoop(main); ok {
		if _, ok := recvAssign(loop); ok {
			return KindSingleLoop, nil
		}
		if _, ok := acceptAssign(loop); ok {
			return KindNestedLoop, nil
		}
	}
	return 0, fmt.Errorf("normalize: unrecognized code structure")
}

// Normalize rewrites prog into canonical form. The result always has a
// process(pkt) entry function.
func Normalize(prog *lang.Program) (*lang.Program, Kind, error) {
	kind, err := Detect(prog)
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case KindProcess:
		return lang.CloneProgram(prog), kind, nil
	case KindCallback:
		out, err := normalizeCallback(prog)
		return out, kind, err
	case KindSingleLoop:
		out, err := normalizeSingleLoop(prog)
		return out, kind, err
	case KindConsumerProducer:
		out, err := normalizeConsumerProducer(prog)
		return out, kind, err
	case KindNestedLoop:
		out, err := UnfoldSockets(prog)
		return out, kind, err
	}
	return nil, 0, fmt.Errorf("normalize: unhandled kind %v", kind)
}

// --- structure (b): callback ---

// callbackOf returns the callback function name when main's body is a
// sniff(IFACE, callback) call.
func callbackOf(main *lang.FuncDecl) string {
	for _, s := range main.Body.Stmts {
		es, ok := s.(*lang.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*lang.CallExpr)
		if !ok || call.Fun != "sniff" || len(call.Args) != 2 {
			continue
		}
		if id, ok := call.Args[1].(*lang.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func normalizeCallback(prog *lang.Program) (*lang.Program, error) {
	cbName := callbackOf(prog.Func("main"))
	cb := prog.Func(cbName)
	if cb == nil {
		return nil, fmt.Errorf("normalize: callback %q not found", cbName)
	}
	if len(cb.Params) != 1 {
		return nil, fmt.Errorf("normalize: callback %q must take one packet parameter", cbName)
	}
	out := lang.CloneProgram(prog)
	var funcs []*lang.FuncDecl
	for _, f := range out.Funcs {
		switch f.Name {
		case "main":
			// dropped
		case cbName:
			f.Name = "process"
			funcs = append(funcs, f)
		default:
			funcs = append(funcs, f)
		}
	}
	out.Funcs = funcs
	out.IndexProgram()
	return out, nil
}

// --- structure (a): one processing loop ---

func mainWhileLoop(main *lang.FuncDecl) (*lang.WhileStmt, bool) {
	for _, s := range main.Body.Stmts {
		if w, ok := s.(*lang.WhileStmt); ok {
			if b, ok := w.Cond.(*lang.BoolLit); ok && b.Val {
				return w, true
			}
		}
	}
	return nil, false
}

// recvAssign finds `pkt = recv(IFACE);` as the loop's first statement.
func recvAssign(loop *lang.WhileStmt) (*lang.AssignStmt, bool) {
	if len(loop.Body.Stmts) == 0 {
		return nil, false
	}
	as, ok := loop.Body.Stmts[0].(*lang.AssignStmt)
	if !ok || len(as.LHS) != 1 || len(as.RHS) != 1 {
		return nil, false
	}
	call, ok := as.RHS[0].(*lang.CallExpr)
	if !ok || call.Fun != "recv" {
		return nil, false
	}
	if _, ok := as.LHS[0].(*lang.Ident); !ok {
		return nil, false
	}
	return as, true
}

func normalizeSingleLoop(prog *lang.Program) (*lang.Program, error) {
	out := lang.CloneProgram(prog)
	main := out.Func("main")
	loop, _ := mainWhileLoop(main)
	ra, ok := recvAssign(loop)
	if !ok {
		return nil, fmt.Errorf("normalize: main loop does not start with pkt = recv(...)")
	}
	pktVar := ra.LHS[0].(*lang.Ident).Name
	body := &lang.BlockStmt{Stmts: loop.Body.Stmts[1:]}
	var funcs []*lang.FuncDecl
	for _, f := range out.Funcs {
		if f.Name != "main" {
			funcs = append(funcs, f)
		}
	}
	funcs = append(funcs, &lang.FuncDecl{
		Name:   "process",
		Params: []string{pktVar},
		Body:   body,
		Pos:    main.Pos,
	})
	out.Funcs = funcs
	out.IndexProgram()
	return out, nil
}

// --- structure (c): consumer-producer ---

// consumerFunc finds the function whose while-true loop starts with
// `pkt = qpop(queue);` — the processing half of the consumer-producer
// pair.
func consumerFunc(prog *lang.Program) *lang.FuncDecl {
	for _, f := range prog.Funcs {
		if f.Name == "main" {
			continue
		}
		if loop, ok := funcWhileLoop(f); ok {
			if len(loop.Body.Stmts) == 0 {
				continue
			}
			if as, ok := loop.Body.Stmts[0].(*lang.AssignStmt); ok && len(as.RHS) == 1 {
				if call, ok := as.RHS[0].(*lang.CallExpr); ok && call.Fun == "qpop" {
					return f
				}
			}
		}
	}
	return nil
}

func funcWhileLoop(f *lang.FuncDecl) (*lang.WhileStmt, bool) {
	for _, s := range f.Body.Stmts {
		if w, ok := s.(*lang.WhileStmt); ok {
			if b, ok := w.Cond.(*lang.BoolLit); ok && b.Val {
				return w, true
			}
		}
	}
	return nil, false
}

func normalizeConsumerProducer(prog *lang.Program) (*lang.Program, error) {
	out := lang.CloneProgram(prog)
	consumer := consumerFunc(out)
	if consumer == nil {
		return nil, fmt.Errorf("normalize: no consumer loop found")
	}
	loop, _ := funcWhileLoop(consumer)
	as := loop.Body.Stmts[0].(*lang.AssignStmt)
	pktVar, ok := as.LHS[0].(*lang.Ident)
	if !ok {
		return nil, fmt.Errorf("normalize: qpop target must be a variable")
	}
	body := &lang.BlockStmt{Stmts: loop.Body.Stmts[1:]}
	var funcs []*lang.FuncDecl
	for _, f := range out.Funcs {
		// Drop main, the producer (recv/qpush) loop and the consumer; the
		// merged per-packet function replaces the pipeline: the queue
		// only reorders packets, it does not change per-packet behaviour.
		if f.Name == "main" || f.Name == consumer.Name || isProducer(f) {
			continue
		}
		funcs = append(funcs, f)
	}
	funcs = append(funcs, &lang.FuncDecl{
		Name:   "process",
		Params: []string{pktVar.Name},
		Body:   body,
		Pos:    consumer.Pos,
	})
	out.Funcs = funcs
	out.IndexProgram()
	return out, nil
}

func isProducer(f *lang.FuncDecl) bool {
	found := false
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		for _, c := range lang.CallsIn(s) {
			if c == "qpush" {
				found = true
			}
		}
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, c := range st.Stmts {
				walk(c)
			}
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			walk(st.Body)
		}
	}
	for _, s := range f.Body.Stmts {
		walk(s)
	}
	return found
}

// globalNames returns the set of global variable names.
func globalNames(prog *lang.Program) map[string]bool {
	out := map[string]bool{}
	for _, g := range prog.Globals {
		for _, l := range g.LHS {
			out[l.(*lang.Ident).Name] = true
		}
	}
	return out
}

// freshGlobal picks a name not colliding with existing globals.
func freshGlobal(prog *lang.Program, base string) string {
	names := globalNames(prog)
	if !names[base] {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !names[cand] {
			return cand
		}
	}
}

var _ = strings.TrimSpace
