package normalize

import (
	"strings"
	"testing"

	"nfactor/internal/lang"
)

const callbackSrc = `
count = 0;
func pkt_callback(pkt) {
    count = count + 1;
    send(pkt);
}
func main() {
    sniff("eth0", pkt_callback);
}
`

const singleLoopSrc = `
count = 0;
func main() {
    while true {
        pkt = recv("eth0");
        count = count + 1;
        send(pkt);
    }
}
`

const consumerProducerSrc = `
q = {};
count = 0;
func read_loop() {
    while true {
        pkt = recv("eth0");
        qpush(q, pkt);
    }
}
func proc_loop() {
    while true {
        pkt = qpop(q);
        count = count + 1;
        send(pkt);
    }
}
func main() {
    spawn(read_loop);
    spawn(proc_loop);
}
`

const nestedLoopSrc = `
LB_PORT = 80;
servers = [("1.1.1.1", 80), ("2.2.2.2", 80)];
idx = 0;
func main() {
    lfd = listen(LB_PORT);
    while true {
        cfd = accept(lfd);
        server = servers[idx];
        idx = (idx + 1) % len(servers);
        if fork() == 0 {
            sfd = connect(server[0], server[1]);
            while true {
                buf = sockread(cfd);
                sockwrite(sfd, buf);
            }
        }
    }
}
`

func TestDetectKinds(t *testing.T) {
	cases := []struct {
		src  string
		want Kind
	}{
		{`func process(pkt) { send(pkt); }`, KindProcess},
		{callbackSrc, KindCallback},
		{singleLoopSrc, KindSingleLoop},
		{consumerProducerSrc, KindConsumerProducer},
		{nestedLoopSrc, KindNestedLoop},
	}
	for _, c := range cases {
		got, err := Detect(lang.MustParse(c.src))
		if err != nil {
			t.Errorf("Detect(%v): %v", c.want, err)
			continue
		}
		if got != c.want {
			t.Errorf("Detect = %v, want %v", got, c.want)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	bad := []string{
		`x = 1;`,                                // no functions at all
		`func main() { x = 1; }`,                // unrecognized main
		`func main() { while true { x = 1; } }`, // loop without I/O
		`func other(pkt) { send(pkt); }`,        // wrong entry name
	}
	for _, src := range bad {
		if _, err := Detect(lang.MustParse(src)); err == nil {
			t.Errorf("Detect(%q) did not error", src)
		}
	}
}

func normalizeOK(t *testing.T, src string) (*lang.Program, Kind) {
	t.Helper()
	out, kind, err := Normalize(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if out.Func("process") == nil {
		t.Fatalf("normalized program has no process():\n%s", lang.Print(out))
	}
	return out, kind
}

func TestNormalizeCallback(t *testing.T) {
	out, kind := normalizeOK(t, callbackSrc)
	if kind != KindCallback {
		t.Errorf("kind = %v", kind)
	}
	if out.Func("main") != nil {
		t.Error("main survived normalization")
	}
	printed := lang.Print(out)
	if !strings.Contains(printed, "count = count + 1") {
		t.Errorf("callback body lost:\n%s", printed)
	}
}

func TestNormalizeSingleLoop(t *testing.T) {
	out, _ := normalizeOK(t, singleLoopSrc)
	p := out.Func("process")
	if len(p.Params) != 1 || p.Params[0] != "pkt" {
		t.Errorf("params = %v", p.Params)
	}
	printed := lang.Print(out)
	if strings.Contains(printed, "recv(") {
		t.Errorf("recv survived:\n%s", printed)
	}
	if strings.Contains(printed, "while true") {
		t.Errorf("outer loop survived:\n%s", printed)
	}
}

func TestNormalizeConsumerProducer(t *testing.T) {
	out, _ := normalizeOK(t, consumerProducerSrc)
	printed := lang.Print(out)
	if strings.Contains(printed, "qpop") || strings.Contains(printed, "qpush") {
		t.Errorf("queue operations survived:\n%s", printed)
	}
	if !strings.Contains(printed, "count = count + 1") {
		t.Errorf("consumer body lost:\n%s", printed)
	}
	if out.Func("read_loop") != nil || out.Func("proc_loop") != nil {
		t.Error("loop functions survived")
	}
}

func TestUnfoldNestedLoop(t *testing.T) {
	out, kind := normalizeOK(t, nestedLoopSrc)
	if kind != KindNestedLoop {
		t.Errorf("kind = %v", kind)
	}
	printed := lang.Print(out)
	for _, want := range []string{
		"tcp_state", "SYN_RCVD", "ESTABLISHED",
		`tcp_flag(pkt, "S")`, `tcp_flag(pkt, "A")`,
		"idx = (idx + 1) % len(servers)", // setup spliced in
		"backend[k] = (server[0], server[1])",
		"send(pkt)",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("unfolded program missing %q:\n%s", want, printed)
		}
	}
	for _, gone := range []string{"accept(", "fork(", "connect(", "sockread", "sockwrite", "listen("} {
		if strings.Contains(printed, gone) {
			t.Errorf("socket call %q survived unfolding:\n%s", gone, printed)
		}
	}
}

func TestUnfoldPeerIPRewrite(t *testing.T) {
	src := strings.Replace(nestedLoopSrc,
		"server = servers[idx];",
		"server = servers[hash(peer_ip(cfd)) % len(servers)];", 1)
	out, _, err := Normalize(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(out)
	if !strings.Contains(printed, "hash(pkt.sip)") {
		t.Errorf("peer_ip not rewritten to pkt.sip:\n%s", printed)
	}
}

func TestUnfoldRejectsRawDescriptorUse(t *testing.T) {
	src := strings.Replace(nestedLoopSrc,
		"server = servers[idx];",
		"server = servers[cfd % len(servers)];", 1)
	if _, _, err := Normalize(lang.MustParse(src)); err == nil {
		t.Error("raw descriptor use in setup did not error")
	}
}

func TestUnfoldRejectsMissingConnect(t *testing.T) {
	src := strings.Replace(nestedLoopSrc, "sfd = connect(server[0], server[1]);", "", 1)
	if _, _, err := Normalize(lang.MustParse(src)); err == nil {
		t.Error("missing connect did not error")
	}
}

func TestUnfoldFreshGlobalNames(t *testing.T) {
	// A program that already has a tcp_state global must get a fresh name.
	src := "tcp_state = 7;\n" + nestedLoopSrc
	out, _, err := Normalize(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	printed := lang.Print(out)
	if !strings.Contains(printed, "tcp_state2") {
		t.Errorf("no fresh name for colliding tcp_state:\n%s", printed)
	}
}

func TestNormalizedNestedLoopReparses(t *testing.T) {
	out, _ := normalizeOK(t, nestedLoopSrc)
	if _, err := lang.Parse(lang.Print(out)); err != nil {
		t.Fatalf("unfolded program does not re-parse: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindProcess:          "canonical",
		KindSingleLoop:       "one processing loop",
		KindCallback:         "callback",
		KindConsumerProducer: "consumer-producer",
		KindNestedLoop:       "nested loop",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
