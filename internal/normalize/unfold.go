package normalize

import (
	"fmt"
	"strings"

	"nfactor/internal/lang"
)

// socketShape is the recognized accept/fork/connect structure of a
// nested-loop NF (the paper's Figure 3 / Figure 4d).
type socketShape struct {
	lportExpr string   // listen(port) argument
	setup     []string // printed statements between accept() and fork()
	hostExpr  string   // connect(host, port) arguments
	portExpr  string
}

// UnfoldSockets transforms a nested-loop socket NF into the Figure 5
// single-loop form: socket calls become packet-level operations and the
// OS's hidden per-connection TCP state becomes an explicit state map
// (LISTEN → SYN_RCVD → ESTABLISHED), exactly as §3.2 proposes for
// "Hidden States".
//
// The per-connection setup code (everything between accept() and fork(),
// e.g. balance's backend selection) runs when a SYN opens a new
// connection; connect()'s target address becomes the packet rewrite
// applied by the relay; the inner read/write loop becomes the
// ESTABLISHED-state relay action.
func UnfoldSockets(prog *lang.Program) (*lang.Program, error) {
	shape, err := recognize(prog)
	if err != nil {
		return nil, err
	}

	tcpVar := freshGlobal(prog, "tcp_state")
	bkVar := freshGlobal(prog, "backend")

	var sb strings.Builder
	for _, g := range prog.Globals {
		sb.WriteString(lang.PrintStmt(g) + "\n")
	}
	fmt.Fprintf(&sb, "%s = {};\n", tcpVar)
	fmt.Fprintf(&sb, "%s = {};\n", bkVar)
	// Keep helper functions other than main.
	for _, f := range prog.Funcs {
		if f.Name == "main" {
			continue
		}
		sub := &lang.Program{Funcs: []*lang.FuncDecl{f}}
		sb.WriteString("\n" + lang.Print(sub))
	}

	var setup strings.Builder
	for _, s := range shape.setup {
		for _, line := range strings.Split(s, "\n") {
			setup.WriteString("                " + strings.TrimRight(line, "\n") + "\n")
		}
	}

	fmt.Fprintf(&sb, `
func process(pkt) {
    if pkt.dport == %[1]s {
        k = (pkt.sip, pkt.sport);
        if !(k in %[2]s) {
            if tcp_flag(pkt, "S") {
%[3]s                %[4]s[k] = (%[5]s, %[6]s);
                %[2]s[k] = "SYN_RCVD";
                srv = %[4]s[k];
                pkt.dip = srv[0];
                pkt.dport = srv[1];
                send(pkt);
            }
        } else {
            if %[2]s[k] == "SYN_RCVD" {
                if tcp_flag(pkt, "A") {
                    %[2]s[k] = "ESTABLISHED";
                    srv = %[4]s[k];
                    pkt.dip = srv[0];
                    pkt.dport = srv[1];
                    send(pkt);
                }
            } else {
                srv = %[4]s[k];
                pkt.dip = srv[0];
                pkt.dport = srv[1];
                send(pkt);
            }
        }
    } else {
        rk = (pkt.dip, pkt.dport);
        if rk in %[2]s {
            send(pkt);
        }
    }
}
`, shape.lportExpr, tcpVar, setup.String(), bkVar, shape.hostExpr, shape.portExpr)

	out, err := lang.Parse(sb.String())
	if err != nil {
		return nil, fmt.Errorf("normalize: unfolded program does not parse: %w\n%s", err, sb.String())
	}
	return out, nil
}

// recognize extracts the socketShape from main().
func recognize(prog *lang.Program) (*socketShape, error) {
	main := prog.Func("main")
	if main == nil {
		return nil, fmt.Errorf("normalize: no main()")
	}
	shape := &socketShape{}

	var listenVar string
	for _, s := range main.Body.Stmts {
		if as, ok := s.(*lang.AssignStmt); ok && len(as.RHS) == 1 {
			if call, ok := as.RHS[0].(*lang.CallExpr); ok && call.Fun == "listen" && len(call.Args) == 1 {
				shape.lportExpr = lang.ExprString(call.Args[0])
				if id, ok := as.LHS[0].(*lang.Ident); ok {
					listenVar = id.Name
				}
			}
		}
	}
	if shape.lportExpr == "" {
		return nil, fmt.Errorf("normalize: no listen() call in main")
	}

	loop, ok := mainWhileLoop(main)
	if !ok {
		return nil, fmt.Errorf("normalize: no accept loop in main")
	}
	acceptIdx := -1
	var acceptVar string
	for i, s := range loop.Body.Stmts {
		if as, ok := s.(*lang.AssignStmt); ok && len(as.RHS) == 1 {
			if call, ok := as.RHS[0].(*lang.CallExpr); ok && call.Fun == "accept" {
				acceptIdx = i
				if id, ok := as.LHS[0].(*lang.Ident); ok {
					acceptVar = id.Name
				}
			}
		}
	}
	if acceptIdx < 0 {
		return nil, fmt.Errorf("normalize: no accept() in main loop")
	}

	forkIdx := -1
	var forkIf *lang.IfStmt
	for i := acceptIdx + 1; i < len(loop.Body.Stmts); i++ {
		ifs, ok := loop.Body.Stmts[i].(*lang.IfStmt)
		if !ok {
			continue
		}
		if isForkCond(ifs.Cond) {
			forkIdx, forkIf = i, ifs
			break
		}
	}
	if forkIf == nil {
		return nil, fmt.Errorf("normalize: no fork() branch after accept()")
	}
	// peer_ip(clientfd) has a direct packet-level equivalent — the source
	// address of the connection's packets — so it is rewritten to
	// pkt.sip. Any other use of a raw socket descriptor in the setup code
	// has no packet-level meaning and is rejected.
	for i := acceptIdx + 1; i < forkIdx; i++ {
		s := loop.Body.Stmts[i]
		printed := lang.PrintStmt(s)
		printed = strings.ReplaceAll(printed, "peer_ip("+acceptVar+")", "pkt.sip")
		if usesIdent(printed, acceptVar) || usesIdent(printed, listenVar) {
			return nil, fmt.Errorf("normalize: setup statement at %s uses a socket descriptor", s.NodePos())
		}
		shape.setup = append(shape.setup, printed)
	}

	var findConnect func(stmts []lang.Stmt)
	findConnect = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *lang.AssignStmt:
				if len(st.RHS) == 1 {
					if call, ok := st.RHS[0].(*lang.CallExpr); ok && call.Fun == "connect" && len(call.Args) == 2 {
						shape.hostExpr = lang.ExprString(call.Args[0])
						shape.portExpr = lang.ExprString(call.Args[1])
					}
				}
			case *lang.WhileStmt:
				findConnect(st.Body.Stmts)
			case *lang.IfStmt:
				findConnect(st.Then.Stmts)
				if st.Else != nil {
					findConnect(st.Else.Stmts)
				}
			}
		}
	}
	findConnect(forkIf.Then.Stmts)
	if shape.hostExpr == "" {
		return nil, fmt.Errorf("normalize: no connect() inside the fork branch")
	}
	return shape, nil
}

// isForkCond matches `fork() == 0` (and `0 == fork()`).
func isForkCond(e lang.Expr) bool {
	b, ok := e.(*lang.BinaryExpr)
	if !ok || b.Op != "==" {
		return false
	}
	isFork := func(x lang.Expr) bool {
		c, ok := x.(*lang.CallExpr)
		return ok && c.Fun == "fork" && len(c.Args) == 0
	}
	isZero := func(x lang.Expr) bool {
		i, ok := x.(*lang.IntLit)
		return ok && i.Val == 0
	}
	return (isFork(b.X) && isZero(b.Y)) || (isZero(b.X) && isFork(b.Y))
}

// acceptAssign reports whether the loop contains `x = accept(...)`.
func acceptAssign(loop *lang.WhileStmt) (*lang.AssignStmt, bool) {
	for _, s := range loop.Body.Stmts {
		if as, ok := s.(*lang.AssignStmt); ok && len(as.RHS) == 1 {
			if call, ok := as.RHS[0].(*lang.CallExpr); ok && call.Fun == "accept" {
				return as, true
			}
		}
	}
	return nil, false
}

// usesIdent reports whether the printed statement references name as an
// identifier token.
func usesIdent(printed, name string) bool {
	if name == "" {
		return false
	}
	toks, err := lang.Lex(printed)
	if err != nil {
		return true // be conservative
	}
	for _, t := range toks {
		if t.Kind == lang.TokIdent && t.Text == name {
			return true
		}
	}
	return false
}
