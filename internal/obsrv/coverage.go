package obsrv

import (
	"fmt"
	"strings"

	"nfactor/internal/telemetry"
)

// The /coverage view: live entry-hit coverage of the synthesized model
// (per stage, generation-local — engine counters reset when a swap
// installs a new generation) plus the gap-hit detector's counts. An
// entry that never fired is a staleness candidate — table mass the live
// traffic does not exercise; a non-zero gap-hit count is the repair
// trigger — live traffic the model provably never captured.

// StageCoverage is one stage's coverage report.
type StageCoverage struct {
	Stage   int    `json:"stage"`
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Fired   int    `json:"fired"`
	// Hits is the per-entry fire count (index = entry).
	Hits []int64 `json:"hits"`
	// Stale lists entries that never fired, with their guards.
	Stale []StaleEntry `json:"stale,omitempty"`
	// DefaultDrops is the engine's implicit-default drop counter;
	// DefaultHits/GapHits are the collector's (they agree for a single
	// NF; for chains the engine counter is per-stage too).
	DefaultDrops int64 `json:"default_drops"`
	// Witness renders the NFL103 gap class ("" when covered).
	Witness     string   `json:"witness,omitempty"`
	DefaultHits int64    `json:"default_hits"`
	GapHits     int64    `json:"gap_hits"`
	GapSamples  []string `json:"gap_samples,omitempty"`
}

// StaleEntry is one never-fired entry.
type StaleEntry struct {
	Entry int    `json:"entry"`
	Guard string `json:"guard,omitempty"`
}

// BuildCoverage joins the per-stage engine snapshots (entry hits,
// default drops) with the collector snapshot (entry guards, gap-hit
// counts). obs may be nil (collectors off): guards and gap counts are
// then absent.
func BuildCoverage(stages []telemetry.Snapshot, obs *Snapshot) []StageCoverage {
	out := make([]StageCoverage, len(stages))
	for i := range stages {
		sn := &stages[i]
		cov := &out[i]
		cov.Stage = i
		cov.Hits = sn.EntryHits
		cov.DefaultDrops = sn.DefaultDrops
		cov.Entries = len(sn.EntryHits)
		var gs *GapStats
		if obs != nil && i < len(obs.Stages) {
			gs = &obs.Stages[i]
			cov.Name = gs.Name
			cov.Witness = gs.Witness
			cov.DefaultHits = gs.DefaultHits
			cov.GapHits = gs.GapHits
			cov.GapSamples = gs.Samples
		}
		for e, h := range sn.EntryHits {
			if h > 0 {
				cov.Fired++
				continue
			}
			se := StaleEntry{Entry: e}
			if gs != nil {
				se.Guard = gs.EntryGuard(e)
			}
			cov.Stale = append(cov.Stale, se)
		}
	}
	return out
}

// RenderCoverage formats the report for humans.
func RenderCoverage(cov []StageCoverage) string {
	var b strings.Builder
	for i := range cov {
		c := &cov[i]
		fmt.Fprintf(&b, "--- stage %d: %s ---\n", c.Stage, c.Name)
		fmt.Fprintf(&b, "entries fired: %d/%d; implicit-default drops: %d\n", c.Fired, c.Entries, c.DefaultDrops)
		for _, s := range c.Stale {
			fmt.Fprintf(&b, "  stale entry %d: %s\n", s.Entry, s.Guard)
		}
		if c.Witness != "" {
			fmt.Fprintf(&b, "gap class: %s\n", c.Witness)
			fmt.Fprintf(&b, "  gap hits: %d (of %d default drops)\n", c.GapHits, c.DefaultHits)
			for _, p := range c.GapSamples {
				fmt.Fprintf(&b, "  sample: %s\n", p)
			}
		} else {
			fmt.Fprintf(&b, "match space covered: no gap class\n")
		}
	}
	return b.String()
}
