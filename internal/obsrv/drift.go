package obsrv

import "nfactor/internal/netpkt"

// The windowed drift detector: every DriftWindow packets it closes a
// window of verdict-mix counters and a sampled top-K flow sketch, and
// compares both against the baseline window — the first window
// completed after the generation installed (the engine-publish
// baseline). Divergence is scored two ways:
//
//   - mix score: total-variation distance between the normalized
//     verdict mixes (forward / explicit drop / implicit-default drop),
//     in [0,1];
//   - top score: the fraction of baseline top-K flows that vanished
//     from the current top-K.
//
// Either score crossing its threshold flags the window as drifting —
// the signal that live traffic no longer resembles what the serving
// model was last validated against.
//
// Everything runs on the serving goroutine inside Observe. Window rolls
// are branch-on-counter and reuse preallocated buffers (the sketch is
// cleared, not rebuilt), so the steady path stays allocation-free.

// Mix is one window's verdict-mix counters. DefaultDrops is the subset
// of Drops killed by an implicit default.
type Mix struct {
	Forwards     int64 `json:"forwards"`
	Drops        int64 `json:"drops"`
	DefaultDrops int64 `json:"default_drops"`
}

func (m Mix) total() int64 { return m.Forwards + m.Drops }

// FlowCount is one heavy-hitter flow with its (sampled) sketch count.
type FlowCount struct {
	Flow  string `json:"flow"`
	Count int64  `json:"count"`
}

// DriftStats is the drift detector's published state.
type DriftStats struct {
	Window int `json:"window"`
	TopK   int `json:"top_k"`
	// Windows counts completed windows since the collector installed
	// (the baseline is window 1).
	Windows      int64 `json:"windows"`
	HaveBaseline bool  `json:"have_baseline"`
	Baseline     Mix   `json:"baseline"`
	Current      Mix   `json:"current"`
	// MixScore is the total-variation distance between the normalized
	// baseline and current verdict mixes; TopScore the fraction of
	// baseline top-K flows missing from the current top-K. Both for the
	// most recently completed window.
	MixScore float64 `json:"mix_score"`
	TopScore float64 `json:"top_score"`
	Drifting bool    `json:"drifting"`

	BaselineTop []FlowCount `json:"baseline_top,omitempty"`
	CurrentTop  []FlowCount `json:"current_top,omitempty"`
}

// drift is the detector's serving-goroutine state.
type drift struct {
	window      int
	topK        int
	mixThresh   float64
	topThresh   float64
	sketchEvery int

	skip int // packets until the next sketch sample (down-counter)
	cur  Mix
	curN int

	sketch spaceSaving

	windows  int64
	haveBase bool
	baseMix  Mix
	baseTop  []ssSlot // preallocated, rolled into at baseline close
	lastMix  Mix
	lastTop  []ssSlot
	mixScore float64
	topScore float64
	drifting bool
}

func (d *drift) init(opts Options) {
	d.window = opts.DriftWindow
	d.topK = opts.TopK
	d.mixThresh = opts.MixThreshold
	d.topThresh = opts.TopThreshold
	d.sketchEvery = opts.SketchSample
	d.skip = opts.SketchSample
	// 3x slots over-provisioning keeps space-saving's count error low
	// for the flows that actually make the reported top-K.
	d.sketch.init(3 * opts.TopK)
	d.baseTop = make([]ssSlot, 0, 3*opts.TopK)
	d.lastTop = make([]ssSlot, 0, 3*opts.TopK)
}

func (d *drift) observe(p *netpkt.Packet, dropped, isDefault bool) {
	if dropped {
		d.cur.Drops++
		if isDefault {
			d.cur.DefaultDrops++
		}
	} else {
		d.cur.Forwards++
	}
	// Down-counter, not modulo: a divide per packet is measurable at
	// data-plane rates.
	d.skip--
	if d.skip <= 0 {
		d.skip = d.sketchEvery
		d.sketch.observe(p.Flow())
	}
	d.curN++
	if d.curN >= d.window {
		d.roll()
	}
}

// roll closes the current window: the first one becomes the baseline,
// every later one is scored against it. Reuses preallocated buffers —
// no allocation.
func (d *drift) roll() {
	d.windows++
	if !d.haveBase {
		d.haveBase = true
		d.baseMix = d.cur
		d.baseTop = d.sketch.sortedInto(d.baseTop)
		d.lastMix = d.cur
		d.lastTop = append(d.lastTop[:0], d.baseTop...)
	} else {
		d.lastMix = d.cur
		d.lastTop = d.sketch.sortedInto(d.lastTop)
		d.mixScore = mixDistance(d.baseMix, d.lastMix)
		d.topScore = d.topMissing()
		d.drifting = d.mixScore > d.mixThresh || d.topScore > d.topThresh
	}
	d.cur = Mix{}
	d.curN = 0
	d.sketch.reset()
}

// topMissing is the fraction of baseline top-K flows absent from the
// current top-K.
func (d *drift) topMissing() float64 {
	base := d.baseTop
	if len(base) > d.topK {
		base = base[:d.topK]
	}
	cur := d.lastTop
	if len(cur) > d.topK {
		cur = cur[:d.topK]
	}
	if len(base) == 0 {
		return 0
	}
	missing := 0
	for i := range base {
		found := false
		for j := range cur {
			if base[i].flow == cur[j].flow {
				found = true
				break
			}
		}
		if !found {
			missing++
		}
	}
	return float64(missing) / float64(len(base))
}

// mixDistance is the total-variation distance between the normalized
// mixes over {forward, explicit drop, implicit-default drop}, in [0,1].
func mixDistance(a, b Mix) float64 {
	at, bt := a.total(), b.total()
	if at == 0 || bt == 0 {
		return 0
	}
	frac := func(n, t int64) float64 { return float64(n) / float64(t) }
	d := abs(frac(a.Forwards, at)-frac(b.Forwards, bt)) +
		abs(frac(a.Drops-a.DefaultDrops, at)-frac(b.Drops-b.DefaultDrops, bt)) +
		abs(frac(a.DefaultDrops, at)-frac(b.DefaultDrops, bt))
	return d / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// snapshot copies the detector state (allocates; publish-path only).
func (d *drift) snapshot() DriftStats {
	s := DriftStats{
		Window:       d.window,
		TopK:         d.topK,
		Windows:      d.windows,
		HaveBaseline: d.haveBase,
		Baseline:     d.baseMix,
		Current:      d.lastMix,
		MixScore:     d.mixScore,
		TopScore:     d.topScore,
		Drifting:     d.drifting,
	}
	top := func(slots []ssSlot) []FlowCount {
		n := len(slots)
		if n > d.topK {
			n = d.topK
		}
		out := make([]FlowCount, n)
		for i := 0; i < n; i++ {
			out[i] = FlowCount{Flow: slots[i].flow.String(), Count: slots[i].count}
		}
		return out
	}
	s.BaselineTop = top(d.baseTop)
	s.CurrentTop = top(d.lastTop)
	return s
}

// spaceSaving is the Metwally et al. heavy-hitters sketch over flows:
// at most k tracked flows; an untracked flow evicts the minimum-count
// slot and inherits its count + 1 (the classic overestimate bound).
// Flows are identified by a 64-bit FNV-1a hash and matched by a single
// scan of the slot table that doubles as the min-slot search — no map,
// so a sampled packet costs one short hash plus k integer compares
// instead of a string-keyed map lookup (and, on the high-cardinality
// miss path, a map delete + insert). A hash collision merges two flows'
// counts; at k<=tens of slots against a 64-bit space that is vanishingly
// unlikely and harmless for a sketch. Fixed storage, zero allocation.
type spaceSaving struct {
	slots []ssSlot
	used  int
}

type ssSlot struct {
	hash  uint64
	flow  netpkt.Flow
	count int64
}

func (s *spaceSaving) init(k int) {
	s.slots = make([]ssSlot, k)
}

func (s *spaceSaving) observe(f netpkt.Flow) {
	h := flowHash(f)
	min := 0
	for i := 0; i < s.used; i++ {
		if s.slots[i].hash == h {
			s.slots[i].count++
			return
		}
		if s.slots[i].count < s.slots[min].count {
			min = i
		}
	}
	if s.used < len(s.slots) {
		s.slots[s.used] = ssSlot{hash: h, flow: f, count: 1}
		s.used++
		return
	}
	s.slots[min] = ssSlot{hash: h, flow: f, count: s.slots[min].count + 1}
}

// flowHash is FNV-1a over the directed 5-tuple.
func flowHash(f netpkt.Flow) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
	}
	str(f.SrcIP)
	h = (h ^ uint64(uint32(f.SrcPort))) * prime
	str(f.DstIP)
	h = (h ^ uint64(uint32(f.DstPort))) * prime
	str(f.Proto)
	return h
}

// reset clears the sketch for the next window (the slot table is
// length-managed by used, so this is a store).
func (s *spaceSaving) reset() {
	s.used = 0
}

// sortedInto copies the used slots into dst (reusing its backing array)
// sorted by descending count — insertion sort: the table is tiny and
// sort.Slice would allocate.
func (s *spaceSaving) sortedInto(dst []ssSlot) []ssSlot {
	dst = append(dst[:0], s.slots[:s.used]...)
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].count > dst[j-1].count; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}
