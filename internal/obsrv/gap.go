package obsrv

import (
	"strings"

	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/solver"
	"nfactor/internal/value"
)

// GapMatcher is an NFL103 gap witness compiled into a cheap concrete
// matcher: it decides whether a live packet falls inside the
// solver-proved uncovered match class — traffic the synthesized model
// can only kill with its implicit default drop, i.e. behavior the model
// never captured. The serving loop evaluates it only on packets that
// already hit the implicit default, so a healthy model pays nothing.
//
// At compile time every literal with no packet variable is folded
// against the stage's pristine state and config: for the corpus
// witnesses (negated memberships over initially empty flow maps, config
// comparisons) this leaves only pure packet-field literals, which
// evaluate allocation-free.
type GapMatcher struct {
	lits []solver.Term // packet-dependent (or unfoldable) literals
	env  matchEnv
	desc string // rendered witness, for reports
}

// CompileGap runs the NFL103 witness search over the model and compiles
// the witness. Returns nil when the model covers its match space (or
// the search budget ran out — no witness, nothing to match).
func CompileGap(m *model.Model, config, init map[string]value.Value, maxWork int) *GapMatcher {
	w := lint.GapWitness(m, maxWork)
	if w == nil {
		return nil
	}
	g := &GapMatcher{desc: lint.RenderGuard(w), env: matchEnv{state: init, config: config}}
	for _, lit := range w {
		lit = foldEmptyMembership(lit, &g.env)
		if !mentionsPkt(lit) {
			// Ground literal: decide it once against the pristine frame.
			// True folds away; false (or uneval) keeps the literal, so
			// Match stays faithful to the witness semantics.
			if ok, err := solver.EvalBool(lit, &g.env); err == nil && ok {
				continue
			}
		}
		g.lits = append(g.lits, lit)
	}
	return g
}

// Witness renders the gap class.
func (g *GapMatcher) Witness() string { return g.desc }

// Match reports whether the packet satisfies every witness literal
// under the stage's pristine state frame. Call only from the serving
// goroutine (the env is reused across calls).
func (g *GapMatcher) Match(p *netpkt.Packet) bool {
	g.env.pkt = p
	for _, lit := range g.lits {
		ok, err := solver.EvalBool(lit, &g.env)
		if err != nil || !ok {
			g.env.pkt = nil
			return false
		}
	}
	g.env.pkt = nil
	return true
}

// matchEnv resolves witness variables without building a packet value:
// "pkt.FIELD" reads the wire packet directly, "VAR@0" the pristine
// state frame, anything else the config — the same resolution buzz
// and the model interpreter use, minus the allocation.
type matchEnv struct {
	pkt    *netpkt.Packet
	state  map[string]value.Value
	config map[string]value.Value
}

// Lookup implements solver.Env.
func (e *matchEnv) Lookup(name string) (value.Value, bool) {
	if f, ok := strings.CutPrefix(name, "pkt."); ok {
		if e.pkt == nil {
			return value.Value{}, false
		}
		return pktField(e.pkt, f)
	}
	if base, ok := strings.CutSuffix(name, "@0"); ok {
		v, ok := e.state[base]
		return v, ok
	}
	v, ok := e.config[name]
	return v, ok
}

// pktField mirrors netpkt.Packet.ToValue field by field, without the
// map and packet-value allocations.
func pktField(p *netpkt.Packet, f string) (value.Value, bool) {
	switch f {
	case netpkt.FieldSrcIP:
		return value.Str(p.SrcIP), true
	case netpkt.FieldDstIP:
		return value.Str(p.DstIP), true
	case netpkt.FieldSrcPort:
		return value.Int(int64(p.SrcPort)), true
	case netpkt.FieldDstPort:
		return value.Int(int64(p.DstPort)), true
	case netpkt.FieldProto:
		return value.Str(p.Proto), true
	case netpkt.FieldFlags:
		return value.Str(p.Flags), true
	case netpkt.FieldTTL:
		return value.Int(int64(p.TTL)), true
	case netpkt.FieldLength:
		return value.Int(int64(p.Length)), true
	case netpkt.FieldPayload:
		return value.Str(p.Payload), true
	case netpkt.FieldInIface:
		return value.Str(p.InIface), true
	}
	return value.Value{}, false
}

// foldEmptyMembership rewrites membership tests over maps that are
// empty in the pristine frame to a false constant: `k in {}` holds for
// no key, so the rewrite is sound even when k depends on the packet.
// This is what makes the corpus witnesses (negated memberships over
// initially empty flow maps) allocation-free to match — the tuple-key
// construction the membership would need per packet folds away, and the
// enclosing negation then folds to ground truth in CompileGap.
func foldEmptyMembership(t solver.Term, env solver.Env) solver.Term {
	switch x := t.(type) {
	case solver.In:
		if mv, ok := x.M.(solver.MapVar); ok {
			if v, ok := env.Lookup(mv.Name); ok && v.Kind == value.KindMap && v.Map != nil && v.Map.Len() == 0 {
				return solver.Const{V: value.Bool(false)}
			}
		}
		return x
	case solver.Un:
		return solver.Un{Op: x.Op, X: foldEmptyMembership(x.X, env)}
	case solver.Bin:
		return solver.Bin{Op: x.Op, X: foldEmptyMembership(x.X, env), Y: foldEmptyMembership(x.Y, env)}
	}
	return t
}

// mentionsPkt reports whether the term reads any packet field.
func mentionsPkt(t solver.Term) bool {
	switch x := t.(type) {
	case solver.Const, solver.NamedConst, solver.MapVar:
		return false
	case solver.Var:
		return strings.HasPrefix(x.Name, "pkt.")
	case solver.Bin:
		return mentionsPkt(x.X) || mentionsPkt(x.Y)
	case solver.Un:
		return mentionsPkt(x.X)
	case solver.Call:
		for _, a := range x.Args {
			if mentionsPkt(a) {
				return true
			}
		}
		return false
	case solver.Tuple:
		for _, e := range x.Elems {
			if mentionsPkt(e) {
				return true
			}
		}
		return false
	case solver.Index:
		return mentionsPkt(x.X) || mentionsPkt(x.I)
	case solver.Select:
		return mentionsPkt(x.M) || mentionsPkt(x.K)
	case solver.Store:
		return mentionsPkt(x.M) || mentionsPkt(x.K) || mentionsPkt(x.V)
	case solver.Del:
		return mentionsPkt(x.M) || mentionsPkt(x.K)
	case solver.In:
		return mentionsPkt(x.K) || mentionsPkt(x.M)
	}
	return true // unknown term shape: be conservative, evaluate per packet
}
