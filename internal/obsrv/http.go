package obsrv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"nfactor/internal/telemetry"
)

// Observable is the HTTP layer's view of the serving daemon. Everything
// except InspectState reads atomically published snapshots and never
// blocks the serving loop; InspectState is serviced at the next batch
// barrier (the quiescence point) and may time out.
type Observable interface {
	// Stats and Snapshot are the serve loop's published stats and the
	// merged engine telemetry.
	Stats() telemetry.ServeStats
	Snapshot() telemetry.Snapshot
	// StageSnapshots is the per-stage engine telemetry (len 1 for a
	// single NF; nil when the server publishes no per-stage view).
	StageSnapshots() []telemetry.Snapshot
	// Observed is the collectors' snapshot (nil: collectors disabled).
	Observed() *Snapshot
	// InspectState walks the quiesced live state at the next batch
	// barrier (nil on timeout or shutdown).
	InspectState(timeout time.Duration) []StageState
	// SwapEvents is the bounded swap audit trail, oldest first.
	SwapEvents() []SwapEvent
	// Generation is the serving generation's number and name.
	Generation() (uint64, string)
}

// HTTPConfig tunes the observability HTTP server.
type HTTPConfig struct {
	// NF labels every metric series (the NF or chain name).
	NF string
	// ExtraProm appenders run after the built-in /metrics writers —
	// the synthesis pipeline's perf counters ride here.
	ExtraProm []func(io.Writer) error
	// InspectTimeout bounds how long /state waits for a batch barrier.
	// Default 2s.
	InspectTimeout time.Duration
	// StateSample bounds sampled entries per state variable. Default 8.
	StateSample int
}

// HTTP is the embedded observability server: /metrics, /state,
// /coverage, /swaps and /debug/pprof/ over an Observable.
type HTTP struct {
	obs Observable
	cfg HTTPConfig
	ln  net.Listener
	srv *http.Server
}

// NewHTTP binds addr and starts serving in a background goroutine.
// Close to stop.
func NewHTTP(addr string, obs Observable, cfg HTTPConfig) (*HTTP, error) {
	if cfg.InspectTimeout <= 0 {
		cfg.InspectTimeout = 2 * time.Second
	}
	if cfg.StateSample <= 0 {
		cfg.StateSample = 8
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &HTTP{obs: obs, cfg: cfg, ln: ln}
	h.srv = &http.Server{Handler: h.mux()}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr is the bound listen address (resolves ":0" requests).
func (h *HTTP) Addr() string { return h.ln.Addr().String() }

// Close stops the server.
func (h *HTTP) Close() error { return h.srv.Close() }

// Handler returns the route mux (also used standalone in tests).
func (h *HTTP) Handler() http.Handler { return h.mux() }

func (h *HTTP) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.handleIndex)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/state", h.handleState)
	mux.HandleFunc("/coverage", h.handleCoverage)
	mux.HandleFunc("/swaps", h.handleSwaps)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (h *HTTP) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	gen, name := h.obs.Generation()
	fmt.Fprintf(w, "nfactor observability — serving %q, generation %d\n\n", name, gen)
	fmt.Fprintf(w, "/metrics   Prometheus scrape: serve stats, engine telemetry, gap-hit and drift gauges\n")
	fmt.Fprintf(w, "/state     live flow-state inspector (quiesced at a batch barrier; ?format=json)\n")
	fmt.Fprintf(w, "/coverage  entry-hit coverage, staleness candidates and NFL103 gap hits (?format=json)\n")
	fmt.Fprintf(w, "/swaps     generation-swap audit trail (?format=json)\n")
	fmt.Fprintf(w, "/debug/pprof/  runtime profiles\n")
}

// WriteAllMetrics renders the full scrape payload for an Observable:
// serve stats, merged engine telemetry, collector gauges, coverage
// gauges, then the extra appenders. /metrics and the periodic -prom
// file rewrite share this renderer.
func WriteAllMetrics(w io.Writer, obs Observable, nf string, extra []func(io.Writer) error) error {
	if err := obs.Stats().WriteServePrometheus(w, nf); err != nil {
		return err
	}
	if err := obs.Snapshot().WritePrometheus(w, nf); err != nil {
		return err
	}
	if snap := obs.Observed(); snap != nil {
		if err := snap.WritePrometheus(w, nf); err != nil {
			return err
		}
		if stages := obs.StageSnapshots(); stages != nil {
			if err := WriteCoveragePrometheus(w, nf, BuildCoverage(stages, snap)); err != nil {
				return err
			}
		}
	}
	for _, fn := range extra {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetrics renders the full /metrics payload.
func (h *HTTP) WriteMetrics(w io.Writer) error {
	return WriteAllMetrics(w, h.obs, h.cfg.NF, h.cfg.ExtraProm)
}

func (h *HTTP) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := h.WriteMetrics(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (h *HTTP) handleState(w http.ResponseWriter, r *http.Request) {
	states := h.obs.InspectState(h.cfg.InspectTimeout)
	if states == nil {
		http.Error(w, "state inspection timed out: no batch barrier inside the window (is the server running?)", http.StatusServiceUnavailable)
		return
	}
	if wantJSON(r) {
		writeJSON(w, states)
		return
	}
	gen, name := h.obs.Generation()
	fmt.Fprintf(w, "live state — %q generation %d (quiesced at a batch barrier)\n", name, gen)
	io.WriteString(w, RenderStates(states))
}

func (h *HTTP) handleCoverage(w http.ResponseWriter, r *http.Request) {
	stages := h.obs.StageSnapshots()
	if stages == nil {
		stages = []telemetry.Snapshot{h.obs.Snapshot()}
	}
	cov := BuildCoverage(stages, h.obs.Observed())
	if wantJSON(r) {
		writeJSON(w, cov)
		return
	}
	gen, name := h.obs.Generation()
	fmt.Fprintf(w, "coverage — %q generation %d (counters reset at each swap)\n", name, gen)
	io.WriteString(w, RenderCoverage(cov))
}

func (h *HTTP) handleSwaps(w http.ResponseWriter, r *http.Request) {
	events := h.obs.SwapEvents()
	if wantJSON(r) {
		writeJSON(w, events)
		return
	}
	st := h.obs.Stats()
	fmt.Fprintf(w, "swap audit — %d applied, %d blocked\n", st.Swaps, st.SwapsBlocked)
	for i := range events {
		io.WriteString(w, events[i].Render())
	}
}

func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
