// Package obsrv is the live observability plane of the serving daemon:
// the data-path collectors (gap-hit detection against NFL103 witnesses,
// windowed verdict-mix and top-K flow drift) plus the embedded HTTP
// server that exposes them, together with the serve loop's published
// state, as /metrics, /state, /coverage, /swaps and /debug/pprof/.
//
// The package deliberately does not import internal/serve: serve owns
// the hot loop and imports obsrv for its collectors, and the HTTP layer
// sees the server only through the Observable interface. Everything the
// collectors do on the packet path is allocation-free: sampling
// decisions are branch-on-counter, the heavy-hitter sketch and the gap
// sample rings live in preallocated fixed-size storage, and gap
// matchers evaluate only on packets that already hit a model's implicit
// default drop.
package obsrv

import (
	"time"

	"nfactor/internal/lint"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/value"
)

// Options tunes the collectors. The zero value of every field selects
// its default.
type Options struct {
	// DriftWindow is the packet count of one drift comparison window;
	// the first completed window after a generation install becomes the
	// baseline. Default 4096.
	DriftWindow int
	// TopK is how many heavy-hitter flows the space-saving sketch
	// reports per window. Default 8.
	TopK int
	// MixThreshold is the total-variation distance between the baseline
	// and current verdict mixes above which the window counts as
	// drifting. Default 0.25.
	MixThreshold float64
	// TopThreshold is the fraction of baseline top-K flows allowed to
	// vanish from the current top-K before the window counts as
	// drifting. Default 0.5.
	TopThreshold float64
	// SketchSample feeds every Nth packet to the flow sketch (the
	// verdict mix counts every packet). Default 16 — 256 samples per
	// default window, ample to rank a top-8 of heavy hitters, and the
	// sampled hash+scan stays under a nanosecond per packet amortized.
	SketchSample int
	// GapMaxWork bounds the NFL103 gap-witness search per stage.
	// Default 4096 (the lint default).
	GapMaxWork int
	// GapSamples bounds the ring of concrete gap-hitting packets kept
	// per stage. Default 8.
	GapSamples int
	// SwapLog bounds the ring of retained swap events. Default 64.
	SwapLog int
}

func (o Options) withDefaults() Options {
	if o.DriftWindow <= 0 {
		o.DriftWindow = 4096
	}
	if o.TopK <= 0 {
		o.TopK = 8
	}
	if o.MixThreshold <= 0 {
		o.MixThreshold = 0.25
	}
	if o.TopThreshold <= 0 {
		o.TopThreshold = 0.5
	}
	if o.SketchSample <= 0 {
		o.SketchSample = 16
	}
	if o.GapMaxWork <= 0 {
		o.GapMaxWork = 4096
	}
	if o.GapSamples <= 0 {
		o.GapSamples = 8
	}
	if o.SwapLog <= 0 {
		o.SwapLog = 64
	}
	return o
}

// StageInfo describes one stage of the serving generation to the
// collector: the synthesized model plus the concrete config and
// PRISTINE initial state the gap witness is grounded against (witness
// semantics are defined from pristine state — the implicit default drop
// performs no updates, so gap traffic never perturbs them).
type StageInfo struct {
	Name   string
	Model  *model.Model
	Config map[string]value.Value
	Init   map[string]value.Value
}

// Collector is the per-generation data-path observer: per-stage gap-hit
// detection and the windowed drift detector. Observe belongs to the
// serving goroutine; Snapshot is called at the publish point (same
// goroutine) and returns an immutable copy for cross-goroutine readers.
type Collector struct {
	stages []stageObs
	drift  drift
	opts   Options
}

// stageObs is one stage's gap-hit state.
type stageObs struct {
	name    string
	entries int
	guards  []string // rendered entry guards, for staleness reports

	gap *GapMatcher // nil: the model covers its match space

	defaultHits int64 // packets killed by this stage's implicit default
	gapHits     int64 // ... that also satisfied the gap witness

	samples  []netpkt.Packet // ring of gap-hitting packets, cap GapSamples
	sampleAt int64           // total ring writes
}

// NewCollector compiles the per-stage gap matchers and sizes the drift
// detector. Building is control-plane work (it runs the NFL103 witness
// search); do it once per generation install, not per packet.
func NewCollector(stages []StageInfo, opts Options) *Collector {
	opts = opts.withDefaults()
	c := &Collector{opts: opts}
	c.stages = make([]stageObs, len(stages))
	for i := range stages {
		si := &stages[i]
		so := &c.stages[i]
		so.name = si.Name
		so.entries = len(si.Model.Entries)
		so.guards = make([]string, len(si.Model.Entries))
		for e := range si.Model.Entries {
			so.guards[e] = lint.RenderGuard(si.Model.Entries[e].Guard())
		}
		so.gap = CompileGap(si.Model, si.Config, si.Init, opts.GapMaxWork)
		so.samples = make([]netpkt.Packet, 0, opts.GapSamples)
	}
	c.drift.init(opts)
	return c
}

// Observe records one served packet's outcome. defaultStage is the
// stage whose implicit lowest-priority drop killed the packet (-1: an
// explicit entry decided it). Allocation-free on the steady path: the
// gap matcher runs only on implicit-default drops, the sketch is
// sampled branch-on-counter, and window rolls reuse preallocated
// buffers.
func (c *Collector) Observe(p *netpkt.Packet, dropped bool, defaultStage int) {
	if defaultStage >= 0 && defaultStage < len(c.stages) {
		so := &c.stages[defaultStage]
		so.defaultHits++
		if so.gap != nil && so.gap.Match(p) {
			so.gapHits++
			so.pushSample(p)
		}
	}
	c.drift.observe(p, dropped, defaultStage >= 0)
}

// pushSample records a gap-hitting packet in the bounded ring.
func (so *stageObs) pushSample(p *netpkt.Packet) {
	if len(so.samples) < cap(so.samples) {
		so.samples = append(so.samples, *p)
	} else {
		so.samples[so.sampleAt%int64(cap(so.samples))] = *p
	}
	so.sampleAt++
}

// Snapshot copies the collector state for cross-goroutine readers.
// Call from the serving goroutine only (the publish point).
func (c *Collector) Snapshot(generation uint64, name string) *Snapshot {
	s := &Snapshot{Generation: generation, Name: name, Taken: time.Now()}
	s.Stages = make([]GapStats, len(c.stages))
	for i := range c.stages {
		so := &c.stages[i]
		gs := &s.Stages[i]
		gs.Stage = i
		gs.Name = so.name
		gs.Entries = so.entries
		gs.DefaultHits = so.defaultHits
		gs.GapHits = so.gapHits
		if so.gap != nil {
			gs.Witness = so.gap.Witness()
		}
		gs.Samples = make([]string, len(so.samples))
		for j := range so.samples {
			gs.Samples[j] = netpkt.FormatLine(so.samples[j])
		}
		gs.guards = so.guards
	}
	s.Drift = c.drift.snapshot()
	return s
}

// Snapshot is the collectors' published state: immutable once built.
type Snapshot struct {
	Generation uint64     `json:"generation"`
	Name       string     `json:"name"`
	Taken      time.Time  `json:"taken"`
	Stages     []GapStats `json:"stages"`
	Drift      DriftStats `json:"drift"`
}

// GapStats is one stage's gap-hit state: how often live traffic fell
// into the model's implicit default, and how often it landed inside the
// solver-proved uncovered match class — the concrete repair trigger.
type GapStats struct {
	Stage   int    `json:"stage"`
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	// Witness renders the NFL103 gap class ("" when the model covers
	// its match space and no gap matcher is installed).
	Witness string `json:"witness,omitempty"`
	// DefaultHits counts packets this stage's implicit default dropped;
	// GapHits counts the subset that satisfied the gap witness.
	DefaultHits int64 `json:"default_hits"`
	GapHits     int64 `json:"gap_hits"`
	// Samples are recently captured gap-hitting packets (trace-line
	// format, replayable).
	Samples []string `json:"samples,omitempty"`

	// guards carries the rendered entry guards for coverage reports
	// (shared immutable backing, not serialized per scrape).
	guards []string
}

// EntryGuard renders entry i's guard conjunction ("" when unknown).
func (g *GapStats) EntryGuard(i int) string {
	if i < 0 || i >= len(g.guards) {
		return ""
	}
	return g.guards[i]
}
