package obsrv

import (
	"testing"

	"nfactor/internal/core"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/workload"
)

func natCollector(b *testing.B) *Collector {
	b.Helper()
	nf := nfs.MustLoad("nat")
	an, err := core.Analyze("nat", nf.Prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		b.Fatal(err)
	}
	return NewCollector([]StageInfo{{Name: "nat", Model: an.Model, Config: config, Init: state}}, Options{})
}

func BenchmarkObserveMixed(b *testing.B) {
	c := natCollector(b)
	pkts := workload.New(42).RandomTrace(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &pkts[i%len(pkts)]
		c.Observe(p, i%3 == 0, -1)
	}
}

func BenchmarkObserveDefaultDrop(b *testing.B) {
	c := natCollector(b)
	pkts := workload.New(42).RandomTrace(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &pkts[i%len(pkts)]
		c.Observe(p, true, 0)
	}
}

func BenchmarkSketchObserve(b *testing.B) {
	var s spaceSaving
	s.init(24)
	pkts := workload.New(42).RandomTrace(4096)
	flows := make([]netpkt.Flow, len(pkts))
	for i := range pkts {
		flows[i] = pkts[i].Flow()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.observe(flows[i%len(flows)])
	}
}

func BenchmarkCollectorSnapshot(b *testing.B) {
	c := natCollector(b)
	pkts := workload.New(42).RandomTrace(4096)
	for i := range pkts {
		c.Observe(&pkts[i], i%3 == 0, -1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Snapshot(1, "nat")
	}
}
