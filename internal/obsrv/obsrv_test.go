package obsrv

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/nfs"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
	"nfactor/internal/workload"
)

// prunedAnalysis synthesizes a corpus model and strips its explicit
// drop entries: the corpus models cover their match spaces (NFL103
// clean), so the drop entries are removed to open exactly the gap they
// used to close — the same construction the workload gap-trace tests
// use.
func prunedAnalysis(t *testing.T, name string) (*model.Model, map[string]value.Value, map[string]value.Value) {
	t.Helper()
	nf := nfs.MustLoad(name)
	an, err := core.Analyze(name, nf.Prog, core.Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	config, state, err := an.ConfigAndState(nil)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	pruned := &model.Model{
		NFName: an.Model.NFName, PktVar: an.Model.PktVar,
		CfgVars: an.Model.CfgVars, OISVars: an.Model.OISVars,
	}
	for _, e := range an.Model.Entries {
		if !e.Dropped() {
			pruned.Entries = append(pruned.Entries, e)
		}
	}
	return pruned, config, state
}

// TestGapMatcherMatchesGapTrace pins the matcher against the gap-trace
// generator: every solver-concretized gap packet must match, and every
// packet that fires a model entry must not (the witness is disjoint
// from every entry guard by construction).
func TestGapMatcherMatchesGapTrace(t *testing.T) {
	pruned, config, state := prunedAnalysis(t, "firewall")
	g := CompileGap(pruned, config, state, 0)
	if g == nil {
		t.Fatal("pruned firewall model has no gap matcher; expected an open gap")
	}
	if g.Witness() == "" {
		t.Error("empty witness rendering")
	}

	gap := workload.New(7).GapTrace(pruned, config, state, 32)
	if len(gap) == 0 {
		t.Fatal("no gap trace concretized")
	}
	for i := range gap {
		if !g.Match(&gap[i]) {
			t.Errorf("gap packet %d (%s) did not match the compiled witness", i, gap[i])
		}
	}

	// Traffic that fires an entry under the PRISTINE frame must never
	// match (the witness is grounded at pristine state, so each packet
	// gets a fresh instance — a warmed instance can fire state-dependent
	// entries on packets the pristine witness legitimately covers).
	trace := workload.New(8).RandomTrace(256)
	for i := range trace {
		if i%2 == 0 {
			// Trusted iface + egress-policy port: fires the outbound entry.
			trace[i].InIface = "lan"
			trace[i].DstPort = 443
		}
	}
	hits := 0
	for i := range trace {
		inst, err := model.NewInstance(pruned, config, state)
		if err != nil {
			t.Fatal(err)
		}
		_, fired, err := inst.ProcessTraced(trace[i].ToValue())
		if err != nil {
			t.Fatal(err)
		}
		if fired < 0 {
			continue
		}
		hits++
		if g.Match(&trace[i]) {
			t.Errorf("packet %d (%s) fired entry %d AND matched the gap witness — witness not disjoint", i, trace[i], fired)
		}
	}
	if hits == 0 {
		t.Fatal("trace fired no entries; disjointness unexercised")
	}
}

// TestObserveZeroAlloc pins the whole per-packet observer path —
// gap-hit matching, sample ring, verdict mix, sampled sketch, window
// rolls — at zero allocations once warm.
func TestObserveZeroAlloc(t *testing.T) {
	pruned, config, state := prunedAnalysis(t, "firewall")
	c := NewCollector([]StageInfo{{Name: "firewall", Model: pruned, Config: config, Init: state}},
		Options{DriftWindow: 256, GapSamples: 4})
	if c.stages[0].gap == nil {
		t.Fatal("no gap matcher compiled")
	}

	gap := workload.New(7).GapTrace(pruned, config, state, 16)
	if len(gap) == 0 {
		t.Fatal("no gap trace")
	}
	mixed := workload.New(9).RandomTrace(512)

	observeAll := func() {
		for i := range mixed {
			c.Observe(&mixed[i], i%2 == 0, -1)
		}
		for i := range gap {
			c.Observe(&gap[i], true, 0)
		}
	}
	observeAll() // warm: sample ring filled, sketch map buckets grown

	if avg := testing.AllocsPerRun(50, observeAll); avg != 0 {
		t.Errorf("Observe allocates %.2f times per %d packets, want 0", avg, len(mixed)+len(gap))
	}
	if c.stages[0].gapHits == 0 || c.stages[0].defaultHits < c.stages[0].gapHits {
		t.Errorf("counter sanity: defaultHits=%d gapHits=%d", c.stages[0].defaultHits, c.stages[0].gapHits)
	}
}

// TestDriftFlip pins the detector's core behavior: a stable mix keeps
// drifting=false; inverting the verdict mix flips it.
func TestDriftFlip(t *testing.T) {
	c := NewCollector(nil, Options{DriftWindow: 64, TopK: 4})
	p := netpkt.Packet{Proto: "tcp", SrcIP: "1.1.1.1", DstIP: "2.2.2.2", SrcPort: 1, DstPort: 2}

	// Baseline + one stable window: all forwards.
	for i := 0; i < 128; i++ {
		c.Observe(&p, false, -1)
	}
	s := c.Snapshot(1, "t")
	if !s.Drift.HaveBaseline || s.Drift.Windows != 2 {
		t.Fatalf("windows=%d haveBaseline=%v, want 2/true", s.Drift.Windows, s.Drift.HaveBaseline)
	}
	if s.Drift.Drifting || s.Drift.MixScore != 0 {
		t.Errorf("stable traffic flagged drifting (mix=%g)", s.Drift.MixScore)
	}

	// Inverted mix: all implicit-default drops.
	for i := 0; i < 64; i++ {
		c.Observe(&p, true, -1) // stage out of range: drift-only default
	}
	s = c.Snapshot(1, "t")
	if !s.Drift.Drifting || s.Drift.MixScore != 1 {
		t.Errorf("inverted mix not flagged: drifting=%v mix=%g", s.Drift.Drifting, s.Drift.MixScore)
	}
}

// TestSpaceSavingHeavyHitter pins that a dominant flow survives
// eviction pressure and sorts first.
func TestSpaceSavingHeavyHitter(t *testing.T) {
	var s spaceSaving
	s.init(8)
	heavy := netpkt.Flow{Proto: "tcp", SrcIP: "9.9.9.9", SrcPort: 99, DstIP: "8.8.8.8", DstPort: 80}
	for i := 0; i < 100; i++ {
		s.observe(heavy)
		s.observe(netpkt.Flow{Proto: "udp", SrcIP: fmt.Sprintf("10.0.%d.%d", i/250, i%250), SrcPort: i + 1, DstIP: "1.1.1.1", DstPort: 53})
	}
	top := s.sortedInto(nil)
	if len(top) == 0 || top[0].flow != heavy {
		t.Fatalf("heavy flow not ranked first: %+v", top)
	}
	if top[0].count < 100 {
		t.Errorf("space-saving undercounted the heavy flow: %d < 100", top[0].count)
	}
}

// TestSwapLogRingBound pins the ring semantics: bounded, oldest
// evicted, sequence numbers monotone across eviction.
func TestSwapLogRingBound(t *testing.T) {
	l := NewSwapLog(8)
	for i := 0; i < 100; i++ {
		l.Record(SwapEvent{Name: fmt.Sprintf("gen%d", i)})
	}
	ev := l.Events()
	if len(ev) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(ev))
	}
	for i := range ev {
		if want := int64(93 + i); ev[i].Seq != want {
			t.Errorf("event %d: seq=%d want %d", i, ev[i].Seq, want)
		}
	}
}

// TestBuildStageState covers the classification-less walk: map sampling
// in canonical key order, scalar rendering, the "more" elision.
func TestBuildStageState(t *testing.T) {
	m := value.NewMap()
	for i := 0; i < 20; i++ {
		if err := m.Map.Set(value.Int(int64(i)), value.Str(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	view := dataplane.StateView{
		Vars:  map[string]value.Value{"tbl": m, "ctr": value.Int(42)},
		Sizes: map[string]int{"tbl": 20, "ctr": 1},
	}
	st := BuildStageState(0, "x", nil, view, 4)
	if len(st.Vars) != 2 {
		t.Fatalf("vars=%d want 2", len(st.Vars))
	}
	if st.Vars[0].Name != "ctr" || st.Vars[0].Class != "scalar" || st.Vars[0].Value != "42" {
		t.Errorf("scalar var wrong: %+v", st.Vars[0])
	}
	tbl := st.Vars[1]
	if tbl.Class != "map" || tbl.Size != 20 || len(tbl.Sample) != 4 {
		t.Errorf("map var wrong: class=%s size=%d sample=%d", tbl.Class, tbl.Size, len(tbl.Sample))
	}
	out := RenderStates([]StageState{st})
	if !strings.Contains(out, "... 16 more") {
		t.Errorf("elision line missing:\n%s", out)
	}
	if strings.Contains(out, "... 1 more\n    = 42") || strings.Count(out, "more") != 1 {
		t.Errorf("scalar rendered a 'more' line:\n%s", out)
	}
}

// promLine matches one Prometheus text-exposition sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+$`)

// checkPromParses asserts every non-comment, non-blank line is a valid
// sample — the "scrape output parses" assertion.
func checkPromParses(t *testing.T, body string) {
	t.Helper()
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable metric line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Error("scrape body carried no samples")
	}
}

// TestHTTPEndpoints drives every route over a fake Observable.
func TestHTTPEndpoints(t *testing.T) {
	pruned, config, state := prunedAnalysis(t, "firewall")
	c := NewCollector([]StageInfo{{Name: "firewall", Model: pruned, Config: config, Init: state}}, Options{})
	gap := workload.New(7).GapTrace(pruned, config, state, 4)
	for i := range gap {
		c.Observe(&gap[i], true, 0)
	}
	obs := &fakeObservable{snap: c.Snapshot(3, "firewall")}
	obs.swaps.Record(SwapEvent{From: 2, To: 3, Name: "firewall", WindowLen: 9, Carried: 1})

	h := &HTTP{obs: obs, cfg: HTTPConfig{NF: "firewall", InspectTimeout: time.Millisecond, StateSample: 4}}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 {
		t.Errorf("/metrics: %d", code)
	} else {
		checkPromParses(t, body)
		for _, want := range []string{
			"nfactor_serve_packets_total", "nfactor_obsrv_gap_hits_total",
			"nfactor_obsrv_drifting", "nfactor_obsrv_entries",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %s", want)
			}
		}
	}
	if code, body := get("/coverage"); code != 200 || !strings.Contains(body, "gap hits: 4") {
		t.Errorf("/coverage: %d\n%s", code, body)
	}
	if code, body := get("/coverage?format=json"); code != 200 || !strings.Contains(body, `"gap_hits": 4`) {
		t.Errorf("/coverage json: %d\n%s", code, body)
	}
	if code, body := get("/state"); code != 200 || !strings.Contains(body, "scalar") {
		t.Errorf("/state: %d\n%s", code, body)
	}
	if code, body := get("/swaps"); code != 200 || !strings.Contains(body, "swapped generation 2 -> 3") {
		t.Errorf("/swaps: %d\n%s", code, body)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "generation 3") {
		t.Errorf("index: %d\n%s", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: %d, want 404", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	// Inspection timeout surfaces as 503, not a hang or a torn page.
	obs.stateNil = true
	if code, _ := get("/state"); code != 503 {
		t.Errorf("/state with no barrier: %d, want 503", code)
	}
}

type fakeObservable struct {
	snap     *Snapshot
	swaps    SwapLog
	stateNil bool
}

func (f *fakeObservable) Stats() telemetry.ServeStats {
	return telemetry.ServeStats{Packets: 100, Generation: 3}
}

func (f *fakeObservable) Snapshot() telemetry.Snapshot {
	return telemetry.Snapshot{Backend: "compiled", Packets: 100}
}

func (f *fakeObservable) StageSnapshots() []telemetry.Snapshot {
	return []telemetry.Snapshot{{Backend: "compiled", Packets: 100,
		EntryHits: make([]int64, len(f.snap.Stages[0].guards))}}
}

func (f *fakeObservable) Observed() *Snapshot { return f.snap }

func (f *fakeObservable) InspectState(time.Duration) []StageState {
	if f.stateNil {
		return nil
	}
	return []StageState{BuildStageState(0, "firewall", nil, dataplane.StateView{
		Vars:  map[string]value.Value{"ctr": value.Int(1)},
		Sizes: map[string]int{"ctr": 1},
	}, 4)}
}

func (f *fakeObservable) SwapEvents() []SwapEvent      { return f.swaps.Events() }
func (f *fakeObservable) Generation() (uint64, string) { return 3, "firewall" }

// TestWriteFileAtomic pins the rename discipline: the path always holds
// a complete render and failed renders leave no temp litter.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.prom")
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf("metric %d\n", i)
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := w.Write([]byte(body))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != body {
			t.Fatalf("round %d: read %q err %v", i, got, err)
		}
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error { return fmt.Errorf("render failed") }); err == nil {
		t.Fatal("render error swallowed")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "m.prom" {
		t.Errorf("temp litter left behind: %v", ents)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "metric 2\n" {
		t.Errorf("failed render clobbered the file: %q", got)
	}
}
