package obsrv

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WritePrometheus renders the collector snapshot as Prometheus text
// exposition: the gap-hit counters per stage and the drift gauges. The
// serve stats and engine counters have their own writers (telemetry);
// /metrics concatenates all three.
func (s *Snapshot) WritePrometheus(w io.Writer, nf string) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP nfactor_obsrv_default_hits_total Packets killed by a stage's implicit default drop.\n# TYPE nfactor_obsrv_default_hits_total counter\n"); err != nil {
		return err
	}
	for i := range s.Stages {
		g := &s.Stages[i]
		if err := p("nfactor_obsrv_default_hits_total{nf=%q,stage=\"%d\",stage_name=%q} %d\n", nf, g.Stage, g.Name, g.DefaultHits); err != nil {
			return err
		}
	}
	if err := p("# HELP nfactor_obsrv_gap_hits_total Packets inside the solver-proved NFL103 gap class (model repair trigger).\n# TYPE nfactor_obsrv_gap_hits_total counter\n"); err != nil {
		return err
	}
	for i := range s.Stages {
		g := &s.Stages[i]
		if err := p("nfactor_obsrv_gap_hits_total{nf=%q,stage=\"%d\",stage_name=%q} %d\n", nf, g.Stage, g.Name, g.GapHits); err != nil {
			return err
		}
	}
	d := &s.Drift
	lbl := fmt.Sprintf("nf=%q", nf)
	rows := []struct {
		name, help, typ string
		v               float64
	}{
		{"nfactor_obsrv_drift_windows_total", "Completed drift windows this generation.", "counter", float64(d.Windows)},
		{"nfactor_obsrv_drift_mix_score", "Total-variation distance of the current verdict mix from the baseline window.", "gauge", d.MixScore},
		{"nfactor_obsrv_drift_top_score", "Fraction of baseline top-K flows missing from the current top-K.", "gauge", d.TopScore},
		{"nfactor_obsrv_drifting", "1 when either drift score exceeds its threshold.", "gauge", b2f(d.Drifting)},
	}
	for _, r := range rows {
		if err := p("# HELP %s %s\n# TYPE %s %s\n%s{%s} %g\n", r.name, r.help, r.name, r.typ, r.name, lbl, r.v); err != nil {
			return err
		}
	}
	if err := p("# HELP nfactor_obsrv_mix_packets Verdict mix of the baseline and most recent drift windows.\n# TYPE nfactor_obsrv_mix_packets gauge\n"); err != nil {
		return err
	}
	for _, win := range []struct {
		name string
		m    Mix
	}{{"baseline", d.Baseline}, {"current", d.Current}} {
		for _, v := range []struct {
			verdict string
			n       int64
		}{
			{"forward", win.m.Forwards},
			{"drop", win.m.Drops - win.m.DefaultDrops},
			{"default_drop", win.m.DefaultDrops},
		} {
			if err := p("nfactor_obsrv_mix_packets{%s,window=%q,verdict=%q} %d\n", lbl, win.name, v.verdict, v.n); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCoveragePrometheus renders the per-stage coverage gauges.
func WriteCoveragePrometheus(w io.Writer, nf string, cov []StageCoverage) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP nfactor_obsrv_entries Synthesized table entries per stage.\n# TYPE nfactor_obsrv_entries gauge\n# HELP nfactor_obsrv_entries_fired Entries that fired at least once this generation.\n# TYPE nfactor_obsrv_entries_fired gauge\n"); err != nil {
		return err
	}
	for i := range cov {
		c := &cov[i]
		if err := p("nfactor_obsrv_entries{nf=%q,stage=\"%d\",stage_name=%q} %d\nnfactor_obsrv_entries_fired{nf=%q,stage=\"%d\",stage_name=%q} %d\n",
			nf, c.Stage, c.Name, c.Entries, nf, c.Stage, c.Name, c.Fired); err != nil {
			return err
		}
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteFileAtomic renders into path via a temp file in the same
// directory plus rename, so concurrent readers (Prometheus textfile
// collectors, curl in a loop) always see a complete snapshot.
func WriteFileAtomic(path string, render func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := render(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
