package obsrv

import (
	"fmt"
	"sort"
	"strings"

	"nfactor/internal/dataplane"
	"nfactor/internal/value"
)

// The /state inspector: a walk over one quiesced stage state, organized
// by the dataplane classification (the generalized Table 1 classes) so
// an operator sees not just what each OIS variable holds but how the
// engine shards it — flow-partitioned, owner-routed, replicated,
// allocator, rotor.

// StageState is one stage's live state tables.
type StageState struct {
	Stage int        `json:"stage"`
	Name  string     `json:"name"`
	Vars  []VarState `json:"vars"`
}

// VarState is one OIS variable's live value.
type VarState struct {
	Name string `json:"name"`
	// Class is the sharding lowering ("flow-map", "owned-map",
	// "replica-map", "allocator", "rotor", "frozen"), "scalar"/"map"
	// when the model has no classification.
	Class string `json:"class"`
	// Detail explains the class the way nfreplay -shards reports do
	// (allocator init/step, the owning allocator of an owned-map, ...).
	Detail string `json:"detail,omitempty"`
	// Size is the entry count for maps (the true table size, even
	// though Sample is bounded), 1 for scalars.
	Size int `json:"size"`
	// Value renders scalars; Sample holds up to sampleN map entries,
	// sorted for stable rendering (which entries land in the sample is
	// up to the engine's bounded export).
	Value  string  `json:"value,omitempty"`
	Sample []Entry `json:"sample,omitempty"`
}

// Entry is one sampled map entry.
type Entry struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// BuildStageState renders one stage's quiesced state. cls may be nil
// (no sharding lowering); view is the BOUNDED per-stage export the
// serve plane builds at the barrier — true sizes, sampled tables — so
// rendering here touches at most sampleN entries per variable and an
// inspection never costs O(table) on the serving goroutine. Call only
// on quiesced state — the serve loop services inspection requests at
// batch barriers.
func BuildStageState(stage int, name string, cls *dataplane.Classification, view dataplane.StateView, sampleN int) StageState {
	if sampleN <= 0 {
		sampleN = 8
	}
	out := StageState{Stage: stage, Name: name}
	names := make([]string, 0, len(view.Vars))
	for n := range view.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := view.Vars[n]
		vs := VarState{Name: n}
		if cls != nil && cls.Vars[n] != nil {
			vc := cls.Vars[n]
			vs.Class = vc.Class.String()
			vs.Detail = classDetail(vc)
		} else if v.Kind == value.KindMap {
			vs.Class = "map"
		} else {
			vs.Class = "scalar"
		}
		if v.Kind == value.KindMap && v.Map != nil {
			vs.Size = view.Sizes[n]
			keys := v.Map.Keys() // the sampled map: at most max entries
			if len(keys) > sampleN {
				keys = keys[:sampleN]
			}
			for _, k := range keys {
				val, _, err := v.Map.Get(k)
				if err != nil {
					continue
				}
				vs.Sample = append(vs.Sample, Entry{Key: k.String(), Val: val.String()})
			}
		} else {
			vs.Size = 1
			vs.Value = v.String()
		}
		out.Vars = append(out.Vars, vs)
	}
	return out
}

// classDetail mirrors the classification's describe() phrasing without
// repeating the variable name.
func classDetail(vc *dataplane.VarClass) string {
	switch vc.Class {
	case dataplane.ClassFlowMap:
		return "shard-local, keys hash by packet-field values"
	case dataplane.ClassReplicaMap:
		return "read-only after init, copied per shard"
	case dataplane.ClassOwnedMap:
		return fmt.Sprintf("keys carry %s values; owner shard decoded from the key", vc.Alloc)
	case dataplane.ClassAllocator:
		return fmt.Sprintf("init %d, step %d; interleaved per-shard sub-ranges", vc.Init, vc.Step)
	case dataplane.ClassRotor:
		return fmt.Sprintf("mod %d; independent per-shard rotors", vc.Mod)
	case dataplane.ClassFrozen:
		return "never written, replicated"
	}
	return ""
}

// RenderStates renders the inspector output for humans.
func RenderStates(states []StageState) string {
	var b strings.Builder
	for i := range states {
		st := &states[i]
		fmt.Fprintf(&b, "--- stage %d: %s ---\n", st.Stage, st.Name)
		for _, v := range st.Vars {
			fmt.Fprintf(&b, "%-12s %-11s size=%d", v.Name, v.Class, v.Size)
			if v.Detail != "" {
				fmt.Fprintf(&b, "  (%s)", v.Detail)
			}
			b.WriteByte('\n')
			if v.Value != "" {
				fmt.Fprintf(&b, "    = %s\n", v.Value)
			}
			for _, e := range v.Sample {
				fmt.Fprintf(&b, "    %s -> %s\n", e.Key, e.Val)
			}
			if v.Value == "" && len(v.Sample) < v.Size {
				fmt.Fprintf(&b, "    ... %d more\n", v.Size-len(v.Sample))
			}
		}
	}
	return b.String()
}
