package obsrv

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"nfactor/internal/dataplane"
)

// SwapEvent is one generation-swap decision, structured for the /swaps
// audit trail. It mirrors serve.SwapReport (obsrv cannot import serve)
// plus when it happened and how much traffic had been served.
type SwapEvent struct {
	// Seq numbers events 1.. since the server started; the ring may
	// have dropped older ones.
	Seq           int64     `json:"seq"`
	Time          time.Time `json:"time"`
	PacketsServed int64     `json:"packets_served"`

	From    uint64 `json:"from"`
	To      uint64 `json:"to"`
	Name    string `json:"name"`
	Blocked bool   `json:"blocked"`
	Reason  string `json:"reason,omitempty"`
	// GuardDiff names the first guard whose outcome differed when the
	// gate blocked the swap (empty when not guard-attributable).
	GuardDiff        string `json:"guard_diff,omitempty"`
	DivergencePacket int    `json:"divergence_packet"`
	WindowLen        int    `json:"window_len"`

	EntriesAdded   int `json:"entries_added"`
	EntriesRemoved int `json:"entries_removed"`

	// Decisions is the per-variable carry-over audit.
	Decisions []dataplane.CarryDecision `json:"decisions,omitempty"`
	Carried   int                       `json:"carried"`
	Reset     int                       `json:"reset"`

	PauseNs int64 `json:"pause_ns"`
}

// Render formats one event the way the serve loop's stderr report does,
// prefixed with the audit metadata.
func (e *SwapEvent) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] %s after %d packets: ", e.Seq, e.Time.Format(time.RFC3339), e.PacketsServed)
	if e.Blocked {
		fmt.Fprintf(&b, "swap to %q BLOCKED (generation %d keeps serving): %s\n", e.Name, e.From, e.Reason)
		if e.GuardDiff != "" {
			fmt.Fprintf(&b, "  diverging guard: %s\n", e.GuardDiff)
		}
		fmt.Fprintf(&b, "  gated over %d live packets\n", e.WindowLen)
		return b.String()
	}
	fmt.Fprintf(&b, "swapped generation %d -> %d (%q) in %s\n", e.From, e.To, e.Name, time.Duration(e.PauseNs))
	fmt.Fprintf(&b, "  entry table: +%d -%d; gated over %d live packets\n", e.EntriesAdded, e.EntriesRemoved, e.WindowLen)
	fmt.Fprintf(&b, "  state carry-over: %d carried, %d reset\n", e.Carried, e.Reset)
	for _, d := range e.Decisions {
		verb := "reset"
		if d.Carried {
			verb = "carried"
		}
		fmt.Fprintf(&b, "    %-7s %s: %s\n", verb, d.Var, d.Reason)
	}
	return b.String()
}

// SwapLog is a bounded ring of swap events. Record runs on the serving
// goroutine at the swap barrier; Events may be called from any
// goroutine — a mutex is fine here, swaps are control-plane rare.
type SwapLog struct {
	mu   sync.Mutex
	ring []SwapEvent
	seq  int64
}

// NewSwapLog bounds the ring at n events (n <= 0: 64).
func NewSwapLog(n int) *SwapLog {
	if n <= 0 {
		n = 64
	}
	return &SwapLog{ring: make([]SwapEvent, 0, n)}
}

// Record appends an event, assigning its sequence number and evicting
// the oldest once full.
func (l *SwapLog) Record(e SwapEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.ring) == 0 {
		l.ring = make([]SwapEvent, 0, 64) // zero-value log: default bound
	}
	l.seq++
	e.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		return
	}
	copy(l.ring, l.ring[1:])
	l.ring[len(l.ring)-1] = e
}

// Events returns the retained events, oldest first.
func (l *SwapLog) Events() []SwapEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SwapEvent, len(l.ring))
	copy(out, l.ring)
	return out
}
