// Package pdg builds the program dependence graph (Ferrante, Ottenstein &
// Warren — the paper's reference [11]) over a function's CFG: data
// dependence edges from reaching definitions and control dependence edges
// from postdominators. Backward slicing (internal/slice) is reachability
// on this graph.
package pdg

import (
	"sort"

	"nfactor/internal/cfg"
	"nfactor/internal/dataflow"
)

// Graph is a program dependence graph. Edges point from a dependent node
// to the node it depends on (the direction a backward slice traverses).
type Graph struct {
	CFG *cfg.Graph
	// DataDeps[n] lists nodes whose definitions node n's uses depend on.
	DataDeps map[int][]int
	// CtrlDeps[n] lists branch nodes that control whether n executes.
	CtrlDeps map[int][]int
}

// Build computes the PDG for g; params are the entry function's
// parameters (synthetically defined at ENTRY).
func Build(g *cfg.Graph, params []string) *Graph {
	rd := dataflow.Reaching(g, params)
	p := &Graph{
		CFG:      g,
		DataDeps: make(map[int][]int),
		CtrlDeps: make(map[int][]int),
	}

	// Data dependence: for every use of v at node n, an edge to every
	// reaching definition of v.
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		seen := map[int]bool{}
		for _, v := range dataflow.NodeUses(g, n.ID) {
			for _, d := range rd.UseDefs(n.ID, v) {
				if d != n.ID && !seen[d] {
					seen[d] = true
					p.DataDeps[n.ID] = append(p.DataDeps[n.ID], d)
				}
			}
		}
		sort.Ints(p.DataDeps[n.ID])
	}

	// Control dependence: node w is control dependent on branch u when u
	// has an edge to v such that w postdominates v but not u. Computed by
	// walking the postdominator tree from v up to (exclusive) ipdom(u).
	ipdom := g.ImmediatePostdominators()
	for _, u := range g.Nodes {
		succs := g.Succs(u.ID)
		if len(succs) < 2 {
			continue
		}
		for _, v := range succs {
			w := v
			for w != -1 && w != ipdom[u.ID] && w != u.ID {
				p.addCtrl(w, u.ID)
				if w == ipdom[w] { // EXIT self-loop guard
					break
				}
				w = ipdom[w]
			}
			// Loop headers are control dependent on themselves (the back
			// edge re-tests the condition); we record that explicitly when
			// the walk hits u itself.
			if w == u.ID {
				p.addCtrl(u.ID, u.ID)
			}
		}
	}
	for n := range p.CtrlDeps {
		sort.Ints(p.CtrlDeps[n])
	}
	return p
}

func (p *Graph) addCtrl(node, on int) {
	for _, e := range p.CtrlDeps[node] {
		if e == on {
			return
		}
	}
	p.CtrlDeps[node] = append(p.CtrlDeps[node], on)
}

// Deps returns all PDG dependencies (data then control) of node n.
func (p *Graph) Deps(n int) []int {
	out := append([]int{}, p.DataDeps[n]...)
	out = append(out, p.CtrlDeps[n]...)
	return out
}
