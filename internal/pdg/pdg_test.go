package pdg

import (
	"testing"

	"nfactor/internal/cfg"
	"nfactor/internal/lang"
)

func build(t *testing.T, src string) (*Graph, *cfg.Graph) {
	t.Helper()
	prog := lang.MustParse(src)
	g, err := cfg.Build(prog, "process")
	if err != nil {
		t.Fatal(err)
	}
	return Build(g, prog.Func("process").Params), g
}

func findNode(t *testing.T, g *cfg.Graph, pred func(lang.Stmt) bool) *cfg.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Stmt != nil && pred(n.Stmt) {
			return n
		}
	}
	t.Fatal("node not found")
	return nil
}

func TestDataDependence(t *testing.T) {
	p, g := build(t, `
func process(pkt) {
    a = pkt.sip;
    b = a;
}`)
	aN := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "a"
	})
	bN := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "b"
	})
	found := false
	for _, d := range p.DataDeps[bN.ID] {
		if d == aN.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("b has no data dep on a: %v", p.DataDeps[bN.ID])
	}
	// a depends on pkt's entry def
	if len(p.DataDeps[aN.ID]) != 1 || p.DataDeps[aN.ID][0] != g.Entry.ID {
		t.Errorf("a deps = %v, want [entry]", p.DataDeps[aN.ID])
	}
}

func TestControlDependence(t *testing.T) {
	p, g := build(t, `
func process(pkt) {
    if pkt.dport == 80 {
        a = 1;
    }
    b = 2;
}`)
	branch := findNode(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.IfStmt); return ok })
	aN := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "a"
	})
	bN := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "b"
	})
	if len(p.CtrlDeps[aN.ID]) != 1 || p.CtrlDeps[aN.ID][0] != branch.ID {
		t.Errorf("a ctrl deps = %v, want [branch]", p.CtrlDeps[aN.ID])
	}
	for _, d := range p.CtrlDeps[bN.ID] {
		if d == branch.ID {
			t.Error("b after the join should not be control dependent on the branch")
		}
	}
}

func TestControlDependenceAfterEarlyReturn(t *testing.T) {
	p, g := build(t, `
func process(pkt) {
    if pkt.dport == 80 { return; }
    send(pkt);
}`)
	branch := findNode(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.IfStmt); return ok })
	sendN := findNode(t, g, func(s lang.Stmt) bool {
		es, ok := s.(*lang.ExprStmt)
		return ok && lang.ExprString(es.X) == "send(pkt)"
	})
	found := false
	for _, d := range p.CtrlDeps[sendN.ID] {
		if d == branch.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("send after early return not control dependent on guard: %v", p.CtrlDeps[sendN.ID])
	}
}

func TestLoopBodyControlDependentOnHeader(t *testing.T) {
	p, g := build(t, `
func process(pkt) {
    i = 0;
    while i < 3 {
        i = i + 1;
    }
}`)
	head := findNode(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.WhileStmt); return ok })
	inc := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.RHS[0]) == "i + 1"
	})
	found := false
	for _, d := range p.CtrlDeps[inc.ID] {
		if d == head.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("loop body not control dependent on header: %v", p.CtrlDeps[inc.ID])
	}
	// The header is control dependent on itself via the back edge.
	self := false
	for _, d := range p.CtrlDeps[head.ID] {
		if d == head.ID {
			self = true
		}
	}
	if !self {
		t.Error("loop header not self-control-dependent")
	}
}

func TestDepsMergesDataAndControl(t *testing.T) {
	p, g := build(t, `
func process(pkt) {
    if pkt.ttl > 0 {
        a = pkt.sip;
    }
}`)
	aN := findNode(t, g, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		return ok && lang.ExprString(as.LHS[0]) == "a"
	})
	deps := p.Deps(aN.ID)
	if len(deps) != len(p.DataDeps[aN.ID])+len(p.CtrlDeps[aN.ID]) {
		t.Errorf("Deps = %v", deps)
	}
	if len(p.CtrlDeps[aN.ID]) == 0 || len(p.DataDeps[aN.ID]) == 0 {
		t.Errorf("expected both kinds of deps: data=%v ctrl=%v", p.DataDeps[aN.ID], p.CtrlDeps[aN.ID])
	}
}
