//go:build linux

package perf

import (
	"syscall"
	"time"
)

// CPUSupported reports whether the process CPU clock is available; phase
// CPU columns render as n/a when it is not.
const CPUSupported = true

// cpuTime returns the process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
