//go:build !linux

package perf

import "time"

// CPUSupported reports whether the process CPU clock is available; phase
// CPU columns render as n/a when it is not.
const CPUSupported = false

// cpuTime is unavailable off Linux; only wall time is meaningful and
// reports annotate the CPU column as n/a rather than printing 0.
func cpuTime() time.Duration { return 0 }
