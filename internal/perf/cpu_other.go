//go:build !linux

package perf

import "time"

// cpuTime is unavailable off Linux; phases then report CPU as 0 and only
// wall time is meaningful.
func cpuTime() time.Duration { return 0 }
