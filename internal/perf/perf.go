// Package perf is the pipeline-wide observability surface: named atomic
// counters (states explored, forks, solver calls, cache hits, …) and
// per-phase wall/CPU timers, threaded through symexec/solver/core and
// printed by cmd/nfactor -stats and cmd/nfbench.
//
// All methods are safe for concurrent use and nil-safe: a nil *Set (or a
// nil *Counter obtained from one) is a no-op, so hot paths never need a
// nil check.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Standard counter names. Packages may add their own; these are the ones
// the pipeline always maintains.
const (
	CStates        = "symexec.states"         // machine states popped from the frontier
	CForks         = "symexec.forks"          // child states created at branches
	CPaths         = "symexec.paths"          // completed paths recorded
	CPruned        = "symexec.pruned"         // branch alternatives pruned as infeasible
	CSteps         = "symexec.steps"          // statements executed
	CSolverCalls   = "solver.satconj.calls"   // SatConj queries issued by the executor
	CSatCacheHit   = "solver.satconj.hits"    // SatConj answered from the cache
	CSatCacheMiss  = "solver.satconj.misses"  // SatConj computed and inserted
	CSimpCacheHit  = "solver.simplify.hits"   // Simplify answered from the cache
	CSimpCacheMiss = "solver.simplify.misses" // Simplify computed and inserted
	CDiffTrials    = "accuracy.diff.trials"   // differential-test packets compared
	CEquivChecks   = "accuracy.equiv.implies" // path-implication queries
	CModelEntries  = "refine.entries"         // table entries refined from paths

	// Data-plane counters (internal/dataplane). The engine accumulates
	// plain per-shard counters and flushes them here in bulk, keeping
	// atomics off the per-packet fast path.
	CDataplanePkts    = "dataplane.packets" // packets processed by compiled engines
	CDataplaneDrops   = "dataplane.drops"   // packets dropped (incl. implicit drop)
	CDataplaneBatches = "dataplane.batches" // ProcessBatch calls
	CDataplaneShards  = "dataplane.shards"  // shards spun up by sharded engines

	// CFrontier is a gauge (Add(+n)/Add(-1)), not a monotonic counter:
	// the number of machine states currently waiting on the symbolic
	// executor's frontier. The live -progress reporter polls it; a
	// non-zero value after a run means states were abandoned by a budget.
	CFrontier = "symexec.frontier"
)

// Counter is one atomic counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count. Nil-safe (returns 0).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

type phase struct {
	wall  atomic.Int64 // cumulative nanoseconds
	cpu   atomic.Int64 // cumulative process-CPU nanoseconds
	calls atomic.Int64
}

// Set is a collection of named counters and phase timers.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
	phases   map[string]*phase
}

// New returns an empty Set.
func New() *Set {
	return &Set{counters: map[string]*Counter{}, phases: map[string]*phase{}}
}

// Counter returns the named counter, creating it on first use. On a nil
// Set it returns nil, whose methods are no-ops.
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Add increments the named counter. Nil-safe.
func (s *Set) Add(name string, d int64) { s.Counter(name).Add(d) }

// Get returns the named counter's value (0 when absent or s is nil).
func (s *Set) Get(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	c := s.counters[name]
	s.mu.Unlock()
	return c.Load()
}

func (s *Set) phaseFor(name string) *phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.phases[name]
	if !ok {
		p = &phase{}
		s.phases[name] = p
	}
	return p
}

// Phase starts timing the named phase and returns the stop function.
// Wall and process-CPU time between start and stop accumulate under the
// phase's name. Nil-safe: on a nil Set the returned func is a no-op.
//
//	defer perfSet.Phase("se.slice")()
func (s *Set) Phase(name string) func() {
	if s == nil {
		return func() {}
	}
	p := s.phaseFor(name)
	wall0 := time.Now()
	cpu0 := cpuTime()
	return func() {
		p.wall.Add(int64(time.Since(wall0)))
		p.cpu.Add(int64(cpuTime() - cpu0))
		p.calls.Add(1)
	}
}

// AddPhase folds an externally measured interval into the named phase.
// It is how trace spans contribute their durations, so the span tree and
// the perf report are two views of one measurement and cannot disagree.
// Nil-safe.
func (s *Set) AddPhase(name string, wall, cpu time.Duration) {
	if s == nil {
		return
	}
	p := s.phaseFor(name)
	p.wall.Add(int64(wall))
	p.cpu.Add(int64(cpu))
	p.calls.Add(1)
}

// CPUTime returns the process's cumulative user+system CPU time, or 0 on
// platforms without rusage support (see CPUSupported).
func CPUTime() time.Duration { return cpuTime() }

// PhaseWall returns the cumulative wall time of the named phase.
func (s *Set) PhaseWall(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	p := s.phases[name]
	s.mu.Unlock()
	if p == nil {
		return 0
	}
	return time.Duration(p.wall.Load())
}

// Snapshot returns all counters plus per-phase wall/cpu nanoseconds
// (under "phase.<name>.wall_ns" / "phase.<name>.cpu_ns" keys).
func (s *Set) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		out[name] = c.Load()
	}
	for name, p := range s.phases {
		out["phase."+name+".wall_ns"] = p.wall.Load()
		out["phase."+name+".cpu_ns"] = p.cpu.Load()
		out["phase."+name+".calls"] = p.calls.Load()
	}
	return out
}

// PhaseJSON is one phase's timings in WriteJSON output.
type PhaseJSON struct {
	WallNs int64 `json:"wall_ns"`
	// CPUNs is meaningful only when CPUSupported; off Linux the process
	// CPU clock is unavailable and the field is reported as -1, not a
	// misleading 0.
	CPUNs int64 `json:"cpu_ns"`
	Calls int64 `json:"calls"`
}

// SetJSON is the machine-readable form of a Set (nfactor -stats -json).
type SetJSON struct {
	Counters     map[string]int64     `json:"counters"`
	Phases       map[string]PhaseJSON `json:"phases"`
	CPUSupported bool                 `json:"cpu_supported"`
}

// JSON returns the Set's counters and phase timers as a serializable
// document. Nil-safe (returns an empty document).
func (s *Set) JSON() SetJSON {
	doc := SetJSON{
		Counters:     map[string]int64{},
		Phases:       map[string]PhaseJSON{},
		CPUSupported: CPUSupported,
	}
	if s == nil {
		return doc
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		doc.Counters[name] = c.Load()
	}
	for name, p := range s.phases {
		pj := PhaseJSON{WallNs: p.wall.Load(), CPUNs: p.cpu.Load(), Calls: p.calls.Load()}
		if !CPUSupported {
			pj.CPUNs = -1
		}
		doc.Phases[name] = pj
	}
	return doc
}

// WriteJSON writes the Set as indented JSON. Nil-safe.
func (s *Set) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.JSON(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Report renders the Set sorted by name: counters first, then phases with
// wall and CPU columns. Derived cache hit rates are appended when the
// underlying counters exist.
func (s *Set) Report() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	counterNames := make([]string, 0, len(s.counters))
	for name := range s.counters {
		counterNames = append(counterNames, name)
	}
	phaseNames := make([]string, 0, len(s.phases))
	for name := range s.phases {
		phaseNames = append(phaseNames, name)
	}
	s.mu.Unlock()
	sort.Strings(counterNames)
	sort.Strings(phaseNames)

	var sb strings.Builder
	for _, name := range counterNames {
		sb.WriteString(fmt.Sprintf("%-28s %12d\n", name, s.Get(name)))
	}
	for _, hm := range [][3]string{
		{CSatCacheHit, CSatCacheMiss, "solver.satconj.hit_rate"},
		{CSimpCacheHit, CSimpCacheMiss, "solver.simplify.hit_rate"},
	} {
		h, m := s.Get(hm[0]), s.Get(hm[1])
		if h+m > 0 {
			sb.WriteString(fmt.Sprintf("%-28s %11.1f%%\n", hm[2], 100*float64(h)/float64(h+m)))
		}
	}
	for _, name := range phaseNames {
		s.mu.Lock()
		p := s.phases[name]
		s.mu.Unlock()
		// Off Linux the process CPU clock is unavailable; annotate the
		// column instead of printing a misleading 0s.
		cpu := "n/a"
		if CPUSupported {
			cpu = time.Duration(p.cpu.Load()).Round(time.Microsecond).String()
		}
		sb.WriteString(fmt.Sprintf("%-28s wall=%-12v cpu=%-12s calls=%d\n",
			"phase."+name,
			time.Duration(p.wall.Load()).Round(time.Microsecond),
			cpu,
			p.calls.Load()))
	}
	return sb.String()
}
