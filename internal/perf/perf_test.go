package perf

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersBasic(t *testing.T) {
	s := New()
	s.Add(CStates, 3)
	s.Counter(CStates).Inc()
	if got := s.Get(CStates); got != 4 {
		t.Errorf("Get(CStates) = %d, want 4", got)
	}
	if got := s.Get("never.touched"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	// The same name returns the same counter.
	if s.Counter(CStates) != s.Counter(CStates) {
		t.Error("Counter not idempotent per name")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Set
	s.Add(CForks, 1) // must not panic
	if s.Get(CForks) != 0 {
		t.Error("nil Set Get != 0")
	}
	var c *Counter = s.Counter(CForks)
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil Counter Load != 0")
	}
	s.Phase("p")() // no-op stop func
	if s.PhaseWall("p") != 0 {
		t.Error("nil Set PhaseWall != 0")
	}
	if s.Report() != "" {
		t.Error("nil Set Report non-empty")
	}
	if len(s.Snapshot()) != 0 {
		t.Error("nil Set Snapshot non-empty")
	}
}

func TestConcurrentCounters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Counter(CSteps)
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Get(CSteps); got != 8000 {
		t.Errorf("concurrent count = %d, want 8000", got)
	}
}

func TestPhaseAccumulates(t *testing.T) {
	s := New()
	for i := 0; i < 2; i++ {
		stop := s.Phase("work")
		time.Sleep(2 * time.Millisecond)
		stop()
	}
	if w := s.PhaseWall("work"); w < 4*time.Millisecond {
		t.Errorf("phase wall = %v, want >= 4ms over two 2ms calls", w)
	}
	snap := s.Snapshot()
	if snap["phase.work.wall_ns"] <= 0 {
		t.Errorf("snapshot missing phase wall: %v", snap)
	}
	if _, ok := snap["phase.work.cpu_ns"]; !ok {
		t.Errorf("snapshot missing phase cpu: %v", snap)
	}
}

func TestReport(t *testing.T) {
	s := New()
	s.Add(CStates, 7)
	s.Add(CSatCacheHit, 3)
	s.Add(CSatCacheMiss, 1)
	s.Phase("se.slice")()
	rep := s.Report()
	for _, want := range []string{CStates, "7", "solver.satconj.hit_rate", "75.0%", "phase.se.slice"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSnapshotCounters(t *testing.T) {
	s := New()
	s.Add(CPaths, 12)
	snap := s.Snapshot()
	if snap[CPaths] != 12 {
		t.Errorf("snapshot[%s] = %d, want 12", CPaths, snap[CPaths])
	}
}
