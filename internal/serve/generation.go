package serve

import (
	"fmt"
	"strings"

	"nfactor/internal/chain"
	"nfactor/internal/core"
	"nfactor/internal/dataplane"
	"nfactor/internal/model"
	"nfactor/internal/netpkt"
	"nfactor/internal/telemetry"
	"nfactor/internal/value"
)

// Candidate describes one engine generation to build and serve: a
// synthesized single NF (Analysis) or a service chain (Stages), at a
// shard count. The same Candidate type feeds both the initial
// generation and every hot-swap request.
type Candidate struct {
	// Analysis is the synthesized single NF. Exactly one of Analysis
	// and Stages must be set.
	Analysis *core.Analysis
	// Opts are the analysis options the generation inherits (config
	// override, perf set). Only meaningful with Analysis.
	Opts core.Options
	// Stages is the service chain, each stage with its concrete config
	// and pristine initial state (core.Analysis.Named fills them).
	Stages []chain.NamedModel
	// Shards > 1 builds the flow-partitioned engine (Sharded /
	// ShardedChain); otherwise the sequential one.
	Shards int
	// Name labels the generation in reports; defaults to the NF or
	// chain name.
	Name string
}

// name derives the display label.
func (c *Candidate) name() string {
	if c.Name != "" {
		return c.Name
	}
	if c.Analysis != nil {
		return c.Analysis.NFName
	}
	names := make([]string, len(c.Stages))
	for i := range c.Stages {
		names[i] = c.Stages[i].Name
	}
	return strings.Join(names, "->")
}

// Outcome is one served packet's result: the verdict plus the serving
// provenance — which entry fired (deepest stage for chains) and which
// engine generation processed it. The epoch stamp is the per-packet
// consistency witness: during a correct swap the stream of epochs is
// non-decreasing with exactly one transition, and uniform within every
// batch.
type Outcome struct {
	Verdict netpkt.Verdict
	Entry   int
	Epoch   uint64
	// DefaultStage is the stage whose implicit lowest-priority drop
	// killed the packet (0 for a single NF), -1 when an explicit entry
	// decided it — the gap-hit detector's trigger.
	DefaultStage int
}

// genStage is the pristine description of one stage of a generation:
// the synthesized model, its concrete configuration, its own
// synthesized initial state, and the state classification computed
// against that PRISTINE init. Carry-over matching must compare what the
// models declare (allocator seed/stride, state classes), not how far a
// live instance has advanced — classifying against live state would
// make a second swap see the allocator's current position as its
// "init" and wrongly reset it.
type genStage struct {
	name   string
	m      *model.Model
	config map[string]value.Value
	init   map[string]value.Value
	cls    *dataplane.Classification // nil: no sharding lowering; carry falls back to name+kind
}

// Generation is one built engine generation serving traffic.
type Generation struct {
	// Num is the generation number: the epoch every Output it produces
	// is stamped with.
	Num  uint64
	Name string

	cand   Candidate
	stages []genStage
	plane  plane
}

// normalize turns a candidate into its pristine stage descriptions:
// model, concrete config, synthesized init state and the classification
// against that pristine init. The swap gate and carry-over matching run
// over these before any plane is built.
func normalize(c Candidate) ([]genStage, error) {
	var stages []genStage
	switch {
	case c.Analysis != nil && len(c.Stages) > 0:
		return nil, fmt.Errorf("serve: candidate has both a single NF and a chain")
	case c.Analysis != nil:
		config, state, err := c.Analysis.ConfigAndState(c.Opts.ConfigOverride)
		if err != nil {
			return nil, err
		}
		stages = []genStage{{name: c.Analysis.NFName, m: c.Analysis.Model, config: config, init: state}}
	case len(c.Stages) > 0:
		for i := range c.Stages {
			nm := &c.Stages[i]
			if nm.Model == nil || nm.Config == nil || nm.State == nil {
				return nil, fmt.Errorf("serve: chain stage %d (%s): missing model/config/state (use core.Analysis.Named)", i, nm.Name)
			}
			stages = append(stages, genStage{name: nm.Name, m: nm.Model, config: nm.Config, init: nm.State})
		}
	default:
		return nil, fmt.Errorf("serve: empty candidate")
	}
	for i := range stages {
		st := &stages[i]
		st.cls, _ = dataplane.Classify(st.m, st.config, st.init) // nil on no-lowering: carry degrades gracefully
	}
	return stages, nil
}

// buildGeneration applies the carried state to normalized stages (nil
// carry: each stage starts from its pristine init), builds the data
// plane and stamps it with num. The plane is built FROM the carried
// state but the kept classification is against the pristine init (see
// genStage); NewSharded/NewShardedChain internally re-derive what they
// need from the carried build state, which is exactly what gives shard
// s a carried allocator position of carried+s*step.
func buildGeneration(c Candidate, num uint64, stages []genStage, carry []map[string]value.Value) (*Generation, error) {
	g := &Generation{Num: num, Name: c.name(), cand: c, stages: stages}
	if carry != nil && len(carry) != len(g.stages) {
		return nil, fmt.Errorf("serve: carried state for %d stages, candidate has %d", len(carry), len(g.stages))
	}
	buildState := make([]map[string]value.Value, len(g.stages))
	for i := range g.stages {
		if carry != nil && carry[i] != nil {
			buildState[i] = carry[i]
		} else {
			buildState[i] = g.stages[i].init
		}
	}
	var err error
	g.plane, err = buildPlane(g, buildState)
	if err != nil {
		return nil, err
	}
	g.plane.setEpoch(num)
	return g, nil
}

// buildPlane compiles the stages into the right engine shape.
func buildPlane(g *Generation, state []map[string]value.Value) (plane, error) {
	if g.cand.Analysis != nil {
		st := &g.stages[0]
		if g.cand.Shards > 1 {
			sh, err := dataplane.NewSharded(st.m, st.config, state[0], g.cand.Shards)
			if err != nil {
				return nil, err
			}
			return &enginePlane{eng: sh}, nil
		}
		eng, err := dataplane.Compile(st.m, st.config, state[0])
		if err != nil {
			return nil, err
		}
		return &enginePlane{eng: eng}, nil
	}
	spec := make([]chain.NamedModel, len(g.stages))
	for i := range g.stages {
		st := &g.stages[i]
		spec[i] = chain.NamedModel{Name: st.name, Model: st.m, Config: st.config, State: state[i]}
	}
	if g.cand.Shards > 1 {
		sh, err := dataplane.NewShardedChain(spec, g.cand.Shards)
		if err != nil {
			return nil, err
		}
		return &chainPlane{eng: sh, stages: len(spec)}, nil
	}
	eng, err := dataplane.CompileChain(spec)
	if err != nil {
		return nil, err
	}
	return &chainPlane{eng: eng, stages: len(spec)}, nil
}

// --- plane adapters ---------------------------------------------------

// plane is what the serving loop needs from any engine shape: batch
// processing into Outcomes, epoch stamping at the barrier, per-stage
// state export for carry-over, and a telemetry snapshot.
type plane interface {
	processBatch(pkts []netpkt.Packet, outs []Outcome) error
	setEpoch(v uint64)
	// stageStates exports the live state per stage (len 1 for a single
	// NF), merged across shards. A full deep copy — swap gating needs
	// exact state. Call only between batches.
	stageStates() []map[string]value.Value
	// stageViews exports a bounded per-stage view for the /state
	// inspector: true sizes, at most max sampled entries per table.
	// O(vars + max), safe to run at every barrier. Call only between
	// batches.
	stageViews(max int) []dataplane.StateView
	snapshot() telemetry.Snapshot
	// stageSnapshots exports per-stage telemetry (len 1 for a single
	// NF, where it equals snapshot()) — the /coverage granularity.
	stageSnapshots() []telemetry.Snapshot
}

// engineLike is the single-NF engine surface (Engine and Sharded).
type engineLike interface {
	ProcessBatch(pkts []netpkt.Packet, outs []dataplane.Output) error
	SetEpoch(v uint64)
	State() map[string]value.Value
	StateView(max int) dataplane.StateView
	Telemetry() telemetry.Snapshot
}

type enginePlane struct {
	eng  engineLike
	outs []dataplane.Output
}

func (ep *enginePlane) processBatch(pkts []netpkt.Packet, outs []Outcome) error {
	if cap(ep.outs) < len(pkts) {
		ep.outs = make([]dataplane.Output, len(pkts))
	}
	ep.outs = ep.outs[:len(pkts)]
	if err := ep.eng.ProcessBatch(pkts, ep.outs); err != nil {
		return err
	}
	for i := range pkts {
		o := &ep.outs[i]
		ds := -1
		if o.Dropped && o.Entry < 0 {
			ds = 0 // implicit default: no entry matched
		}
		outs[i] = Outcome{Verdict: verdictOfOutput(o), Entry: o.Entry, Epoch: o.Epoch, DefaultStage: ds}
	}
	return nil
}

func (ep *enginePlane) setEpoch(v uint64) { ep.eng.SetEpoch(v) }

func (ep *enginePlane) stageStates() []map[string]value.Value {
	return []map[string]value.Value{ep.eng.State()}
}

func (ep *enginePlane) stageViews(max int) []dataplane.StateView {
	return []dataplane.StateView{ep.eng.StateView(max)}
}

func (ep *enginePlane) snapshot() telemetry.Snapshot { return ep.eng.Telemetry() }

func (ep *enginePlane) stageSnapshots() []telemetry.Snapshot {
	return []telemetry.Snapshot{ep.eng.Telemetry()}
}

// verdictOfOutput deep-copies an engine-owned Output into a Verdict
// (the engine reuses the Output's backing arrays across batches).
func verdictOfOutput(o *dataplane.Output) netpkt.Verdict {
	v := netpkt.Verdict{Dropped: o.Dropped}
	for _, s := range o.Sent {
		v.Sent = append(v.Sent, s.Pkt)
		v.Ifaces = append(v.Ifaces, s.Iface)
	}
	return v
}

// chainLike is the fused-chain surface (ChainEngine and ShardedChain).
type chainLike interface {
	ProcessBatch(pkts []netpkt.Packet, outs []dataplane.ChainOutput) error
	SetEpoch(v uint64)
	StageState(i int) map[string]value.Value
	StageStateView(i, max int) dataplane.StateView
	StageTelemetry(i int) telemetry.Snapshot
	ChainTelemetry() telemetry.Snapshot
}

type chainPlane struct {
	eng    chainLike
	stages int
	outs   []dataplane.ChainOutput
}

func (cp *chainPlane) processBatch(pkts []netpkt.Packet, outs []Outcome) error {
	if cap(cp.outs) < len(pkts) {
		cp.outs = make([]dataplane.ChainOutput, len(pkts))
	}
	cp.outs = cp.outs[:len(pkts)]
	if err := cp.eng.ProcessBatch(pkts, cp.outs); err != nil {
		return err
	}
	for i := range pkts {
		o := &cp.outs[i]
		entry, ds := chainEntry(o)
		outs[i] = Outcome{Verdict: verdictOfChainOutput(o), Entry: entry, Epoch: o.Epoch, DefaultStage: ds}
	}
	return nil
}

func (cp *chainPlane) setEpoch(v uint64) { cp.eng.SetEpoch(v) }

func (cp *chainPlane) stageStates() []map[string]value.Value {
	out := make([]map[string]value.Value, cp.stages)
	for i := range out {
		out[i] = cp.eng.StageState(i)
	}
	return out
}

func (cp *chainPlane) stageViews(max int) []dataplane.StateView {
	out := make([]dataplane.StateView, cp.stages)
	for i := range out {
		out[i] = cp.eng.StageStateView(i, max)
	}
	return out
}

func (cp *chainPlane) snapshot() telemetry.Snapshot { return cp.eng.ChainTelemetry() }

func (cp *chainPlane) stageSnapshots() []telemetry.Snapshot {
	out := make([]telemetry.Snapshot, cp.stages)
	for i := range out {
		out[i] = cp.eng.StageTelemetry(i)
	}
	return out
}

// verdictOfChainOutput deep-copies an engine-owned ChainOutput.
func verdictOfChainOutput(o *dataplane.ChainOutput) netpkt.Verdict {
	v := netpkt.Verdict{Dropped: o.Dropped}
	for _, s := range o.Sent {
		v.Sent = append(v.Sent, s.Pkt)
		v.Ifaces = append(v.Ifaces, s.Iface)
	}
	return v
}

// chainEntry reports the entry fired at the deepest stage the packet
// reached (the chain analogue of Output.Entry) and, when that stage's
// implicit default dropped it, the stage index (-1 otherwise).
func chainEntry(o *dataplane.ChainOutput) (entry, defaultStage int) {
	for i := len(o.Entries) - 1; i >= 0; i-- {
		if o.Entries[i] != dataplane.EntryNotReached {
			if o.Entries[i] < 0 && o.Dropped {
				return o.Entries[i], i
			}
			return o.Entries[i], -1
		}
	}
	return -1, -1
}
